type t = {
  id : int;
  first : int;
  last : int;
  offset : int;
  byte_size : int;
  succs : int list;
  preds : int list;
}

let instr_count t = t.last - t.first + 1

let instructions t instrs =
  let acc = ref [] in
  for i = t.last downto t.first do
    acc := instrs.(i) :: !acc
  done;
  !acc

let terminator t instrs = instrs.(t.last)
