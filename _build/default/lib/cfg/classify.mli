(** Basic-block type classification, matching the fcb_* features of the
    paper's Table I. *)

type block_class =
  | Normal  (** falls through or jumps within the function *)
  | Indjump  (** ends with an indirect (table) jump *)
  | Ret  (** return block *)
  | Cndret  (** conditionally reaches an immediate return block *)
  | Noret  (** terminated by a no-return call *)
  | Enoret  (** jumps to a no-return target outside the function *)
  | Extern  (** jumps to a normal target outside the function *)
  | Error  (** execution passes the function end *)

val classify : ?is_noret_target:(int -> bool) -> Graph.t -> Block.t -> block_class
(** [is_noret_target off] distinguishes {!Enoret} from {!Extern} for jumps
    leaving the function at byte target [off]; defaults to never. *)

val histogram : ?is_noret_target:(int -> bool) -> Graph.t -> (block_class * int) list
(** Count of each class over all blocks (classes with zero count
    included, in declaration order). *)

val to_string : block_class -> string
val all : block_class list
