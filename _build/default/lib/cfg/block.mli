(** Basic blocks of a recovered control-flow graph. *)

type t = {
  id : int;
  first : int;  (** index of the first instruction in the listing *)
  last : int;  (** index of the last instruction (inclusive) *)
  offset : int;  (** byte offset of the first instruction *)
  byte_size : int;  (** total encoded size of the block *)
  succs : int list;  (** successor block ids *)
  preds : int list;  (** predecessor block ids *)
}

val instr_count : t -> int

val instructions : t -> 'lbl Isa.Instr.t array -> 'lbl Isa.Instr.t list
(** The block's instruction slice of a listing. *)

val terminator : t -> 'lbl Isa.Instr.t array -> 'lbl Isa.Instr.t
(** Last instruction of the block. *)
