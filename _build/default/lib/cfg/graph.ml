type t = {
  listing : Isa.Disasm.listing;
  blocks : Block.t array;
  external_targets : (int * int) list;
  falls_off_end : int list;
  noret_call_blocks : int list;
}

let never _ = false

(* Byte targets of a terminator instruction, within-function only checks
   happen at edge-construction time. *)
let branch_targets (ins : int Isa.Instr.t) =
  match ins with
  | Jmp t -> [ t ]
  | Jcc (_, t) -> [ t ]
  | Jtable (_, ts) -> Array.to_list ts
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Store _ | Lea _ | Cmp _ | Fcmp _ | Call _ | Ret | Push _ | Pop _
  | Syscall _ ->
    []

let has_fallthrough (ins : int Isa.Instr.t) ~noret =
  match ins with
  | Jmp _ | Jtable _ | Ret -> false
  | Call _ -> not noret
  | Jcc _ | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
  | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Push _ | Pop _ | Syscall _ ->
    true

let build ?(is_noret_call = never) (listing : Isa.Disasm.listing) =
  let n = Array.length listing.instrs in
  if n = 0 then
    {
      listing;
      blocks = [||];
      external_targets = [];
      falls_off_end = [];
      noret_call_blocks = [];
    }
  else begin
    let is_noret_ins (ins : int Isa.Instr.t) =
      match ins with
      | Call idx -> is_noret_call idx
      | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
      | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _
      | Ret | Push _ | Pop _ | Syscall _ ->
        false
    in
    let ends_block ins = Isa.Instr.is_terminator ins || is_noret_ins ins in
    (* 1. leaders *)
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun i ins ->
        List.iter
          (fun target ->
            match Isa.Disasm.index_of_offset listing target with
            | Some j -> leader.(j) <- true
            | None -> ())
          (branch_targets ins);
        if ends_block ins && i + 1 < n then leader.(i + 1) <- true)
      listing.instrs;
    (* 2. partition into blocks *)
    let starts = ref [] in
    for i = n - 1 downto 0 do
      if leader.(i) then starts := i :: !starts
    done;
    let starts = Array.of_list !starts in
    let nb = Array.length starts in
    let block_of_index = Array.make n 0 in
    let bounds =
      Array.mapi
        (fun b first ->
          let last = if b + 1 < nb then starts.(b + 1) - 1 else n - 1 in
          for i = first to last do
            block_of_index.(i) <- b
          done;
          (first, last))
        starts
    in
    (* 3. edges *)
    let succs = Array.make nb [] in
    let preds = Array.make nb [] in
    let external_targets = ref [] in
    let falls_off_end = ref [] in
    let noret_call_blocks = ref [] in
    let add_edge a b =
      if not (List.mem b succs.(a)) then begin
        succs.(a) <- b :: succs.(a);
        preds.(b) <- a :: preds.(b)
      end
    in
    Array.iteri
      (fun b (_, last) ->
        let term = listing.instrs.(last) in
        List.iter
          (fun target ->
            match Isa.Disasm.index_of_offset listing target with
            | Some j -> add_edge b block_of_index.(j)
            | None -> external_targets := (b, target) :: !external_targets)
          (branch_targets term);
        if is_noret_ins term then noret_call_blocks := b :: !noret_call_blocks
        else if has_fallthrough term ~noret:false then begin
          if last + 1 < n then add_edge b block_of_index.(last + 1)
          else falls_off_end := b :: !falls_off_end
        end)
      bounds;
    let blocks =
      Array.mapi
        (fun b (first, last) ->
          let offset = listing.offsets.(first) in
          let next_offset =
            if last + 1 < n then listing.offsets.(last + 1) else listing.size
          in
          {
            Block.id = b;
            first;
            last;
            offset;
            byte_size = next_offset - offset;
            succs = List.rev succs.(b);
            preds = List.rev preds.(b);
          })
        bounds
    in
    {
      listing;
      blocks;
      external_targets = List.rev !external_targets;
      falls_off_end = List.rev !falls_off_end;
      noret_call_blocks = List.rev !noret_call_blocks;
    }
  end

let block_count t = Array.length t.blocks

let edge_count t =
  Array.fold_left (fun acc b -> acc + List.length b.Block.succs) 0 t.blocks

let entry t = if Array.length t.blocks > 0 then Some t.blocks.(0) else None

let cyclomatic_complexity t =
  if block_count t = 0 then 0 else edge_count t - block_count t + 2

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%d..%d] -> %a@." b.Block.id b.Block.first
        b.Block.last
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        b.Block.succs)
    t.blocks
