type block_class =
  | Normal
  | Indjump
  | Ret
  | Cndret
  | Noret
  | Enoret
  | Extern
  | Error

let all = [ Normal; Indjump; Ret; Cndret; Noret; Enoret; Extern; Error ]

let to_string = function
  | Normal -> "normal"
  | Indjump -> "indjump"
  | Ret -> "ret"
  | Cndret -> "cndret"
  | Noret -> "noret"
  | Enoret -> "enoret"
  | Extern -> "extern"
  | Error -> "error"

(* A successor block consisting of a lone Ret instruction. *)
let is_immediate_ret_block (g : Graph.t) id =
  let b = g.blocks.(id) in
  Block.instr_count b = 1
  &&
  match Block.terminator b g.listing.instrs with
  | Ret -> true
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _
  | Push _ | Pop _ | Syscall _ ->
    false

let classify ?(is_noret_target = fun _ -> false) (g : Graph.t) (b : Block.t) =
  if List.mem b.id g.falls_off_end then Error
  else if List.mem b.id g.noret_call_blocks then Noret
  else begin
    let external_target =
      List.find_opt (fun (id, _) -> id = b.id) g.external_targets
    in
    let external_class target =
      if is_noret_target target then Enoret else Extern
    in
    match Block.terminator b g.listing.instrs with
    | Ret -> Ret
    | Jtable _ -> Indjump
    | Jmp _ -> (
      match external_target with
      | Some (_, target) -> external_class target
      | None -> Normal)
    | Jcc _ -> (
      match external_target with
      | Some (_, target) -> external_class target
      | None ->
        if List.exists (is_immediate_ret_block g) b.succs then Cndret
        else Normal)
    | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
    | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Call _ | Push _ | Pop _
    | Syscall _ ->
      Normal
  end

let histogram ?is_noret_target g =
  let counts = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace counts c 0) all;
  Array.iter
    (fun b ->
      let c = classify ?is_noret_target g b in
      Hashtbl.replace counts c (Hashtbl.find counts c + 1))
    g.blocks;
  List.map (fun c -> (c, Hashtbl.find counts c)) all
