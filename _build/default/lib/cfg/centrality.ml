(* Brandes, "A faster algorithm for betweenness centrality" (2001):
   one BFS per source accumulating pair dependencies. *)
let betweenness (g : Graph.t) =
  let n = Graph.block_count g in
  let bc = Array.make n 0.0 in
  let succs = Array.map (fun b -> b.Block.succs) g.blocks in
  for s = 0 to n - 1 do
    let dist = Array.make n (-1) in
    let sigma = Array.make n 0.0 in
    let preds = Array.make n [] in
    let order = ref [] in
    let queue = Queue.create () in
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      order := v :: !order;
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            preds.(w) <- v :: preds.(w)
          end)
        succs.(v)
    done;
    let delta = Array.make n 0.0 in
    List.iter
      (fun w ->
        List.iter
          (fun v ->
            delta.(v) <-
              delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
          preds.(w);
        if w <> s then bc.(w) <- bc.(w) +. delta.(w))
      !order
  done;
  bc

let zero_count bc =
  Array.fold_left (fun acc v -> if abs_float v < 1e-12 then acc + 1 else acc) 0 bc
