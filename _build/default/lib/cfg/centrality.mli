(** Betweenness centrality of basic blocks (Brandes' algorithm on the
    unweighted block graph), feeding the four betweenness features and the
    zero-centrality count of Table I. *)

val betweenness : Graph.t -> float array
(** One value per block, in block-id order. *)

val zero_count : float array -> int
(** How many nodes have (near-)zero betweenness. *)
