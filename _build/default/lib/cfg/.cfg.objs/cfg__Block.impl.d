lib/cfg/block.ml: Array
