lib/cfg/dominators.ml: Array Block Graph Hashtbl List
