lib/cfg/graph.ml: Array Block Format Isa List
