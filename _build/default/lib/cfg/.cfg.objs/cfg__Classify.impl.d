lib/cfg/classify.ml: Array Block Graph Hashtbl List
