lib/cfg/classify.mli: Block Graph
