lib/cfg/centrality.mli: Graph
