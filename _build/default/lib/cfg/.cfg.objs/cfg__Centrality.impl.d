lib/cfg/centrality.ml: Array Block Graph List Queue
