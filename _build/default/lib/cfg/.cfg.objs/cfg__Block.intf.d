lib/cfg/block.mli: Isa
