(** Control-flow graph recovery from a disassembled function.

    Leaders are the entry instruction, branch targets, and instructions
    following a terminator or a no-return call; edges follow the usual
    fallthrough/branch/table rules.  Jumps whose target lies outside the
    function are kept as "external" successors (recorded separately); a
    block that runs past the end of the function is flagged — both cases
    feed the fcb_extern / fcb_error features of Table I. *)

type t = {
  listing : Isa.Disasm.listing;
  blocks : Block.t array;
  external_targets : (int * int) list;
      (** (block id, out-of-function byte target) pairs *)
  falls_off_end : int list;  (** ids of blocks running past function end *)
  noret_call_blocks : int list;
      (** ids of blocks terminated by a no-return call *)
}

val build : ?is_noret_call:(int -> bool) -> Isa.Disasm.listing -> t
(** [is_noret_call idx] says whether call-table entry [idx] never returns
    (e.g. an [exit]/[abort] import); such calls terminate blocks. *)

val block_count : t -> int
val edge_count : t -> int
val entry : t -> Block.t option
val cyclomatic_complexity : t -> int
(** Edges - nodes + 2, as in Table I. *)

val pp : Format.formatter -> t -> unit
