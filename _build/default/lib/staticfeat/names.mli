(** Canonical order and names of the 48 static function features
    (Table I of the paper). *)

val count : int
(** 48. *)

val all : string array
(** Feature names, index-aligned with the vectors produced by
    {!Extract}. *)

val index : string -> int option
