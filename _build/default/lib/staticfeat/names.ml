let all =
  [|
    "num_constant";
    "num_string";
    "num_inst";
    "size_local";
    "fun_flag";
    "num_import";
    "num_ox";
    "num_cx";
    "size_fun";
    "min_i_b";
    "max_i_b";
    "avg_i_b";
    "std_i_b";
    "min_s_b";
    "max_s_b";
    "avg_s_b";
    "std_s_b";
    "num_bb";
    "num_edge";
    "cyclomatic_complexity";
    "fcb_normal";
    "fcb_indjump";
    "fcb_ret";
    "fcb_cndret";
    "fcb_noret";
    "fcb_enoret";
    "fcb_extern";
    "fcb_error";
    "min_call_b";
    "max_call_b";
    "avg_call_b";
    "std_call_b";
    "sum_call_b";
    "min_arith_b";
    "max_arith_b";
    "avg_arith_b";
    "std_arith_b";
    "sum_arith_b";
    "min_arith_fp_b";
    "max_arith_fp_b";
    "avg_arith_fp_b";
    "std_arith_fp_b";
    "sum_arith_fp_b";
    "min_betweeness_cent";
    "max_betweeness_cent";
    "avg_betweeness_cent";
    "std_betweeness_cent";
    "betweeness_cent_zero";
  |]

let count = Array.length all

let index name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name && !found = None then found := Some i) all;
  !found
