lib/staticfeat/extract.mli: Format Loader Util
