lib/staticfeat/names.ml: Array
