lib/staticfeat/extract.ml: Array Cfg Format Int Int64 Isa List Loader Names Set Util
