lib/staticfeat/names.mli:
