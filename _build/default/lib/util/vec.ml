type t = float array

let zeros n = Array.make n 0.0

let of_ints = Array.map float_of_int

let concat a b = Array.append a b

let check_len a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec: dimension mismatch"

let map2 f a b =
  check_len a b;
  Array.map2 f a b

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale k = Array.map (fun x -> k *. x)

let dot a b =
  check_len a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let l1_distance a b =
  check_len a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. abs_float (a.(i) -. b.(i))
  done;
  !acc

let l2_distance a b = norm2 (sub a b)

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         if abs_float (a.(i) -. b.(i)) > eps then ok := false
       done;
       !ok
     end

let pp ppf v =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "]"
