(** Deterministic pseudo-random number generation.

    Every randomised component of the reproduction (corpus generation,
    dataset pairing, fuzzing, weight initialisation) draws from an explicit
    generator state so that experiments are reproducible bit-for-bit from a
    seed.  The core generator is splitmix64. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]; used to give sub-tasks their own streams. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive; requires
    [lo <= hi]. *)

val int64_any : t -> int64
(** Uniform over all 64-bit values. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements (k <= length). *)
