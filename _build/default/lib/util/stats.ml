let min_max_avg_std xs =
  let n = Array.length xs in
  if n = 0 then (0.0, 0.0, 0.0, 0.0)
  else begin
    let mn = ref xs.(0) and mx = ref xs.(0) and sum = ref 0.0 in
    Array.iter
      (fun x ->
        if x < !mn then mn := x;
        if x > !mx then mx := x;
        sum := !sum +. x)
      xs;
    let mean = !sum /. float_of_int n in
    let var = ref 0.0 in
    Array.iter (fun x -> var := !var +. ((x -. mean) *. (x -. mean))) xs;
    (!mn, !mx, mean, sqrt (!var /. float_of_int n))
  end

let of_ints xs = min_max_avg_std (Array.map float_of_int xs)

let mean xs =
  let _, _, m, _ = min_max_avg_std xs in
  m

let std xs =
  let _, _, _, s = min_max_avg_std xs in
  s

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    sorted.(idx)
  end
