(** Dense float vectors used for feature vectors throughout the pipeline. *)

type t = float array

val zeros : int -> t
val of_ints : int array -> t

val concat : t -> t -> t
(** Concatenation, used to build the 96-element NN input from two
    48-feature vectors. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm2 : t -> float

val l1_distance : t -> t -> float
val l2_distance : t -> t -> float

val map2 : (float -> float -> float) -> t -> t -> t

val equal : ?eps:float -> t -> t -> bool
(** Component-wise equality within [eps] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
