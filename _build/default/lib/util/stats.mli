(** Descriptive statistics over integer and float samples.

    Table I and Table II of the paper summarise per-basic-block and
    per-trace observations as min / max / average / standard deviation;
    this module centralises those reductions. *)

val min_max_avg_std : float array -> float * float * float * float
(** [(min, max, mean, population std)] of a sample; all zero when empty. *)

val of_ints : int array -> float * float * float * float
(** Same as {!min_max_avg_std} on integer samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 when empty. *)

val std : float array -> float
(** Population standard deviation; 0 when empty. *)

val median : float array -> float
(** Median (average of middle two for even lengths); 0 when empty. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0,100\], nearest-rank; 0 when empty. *)
