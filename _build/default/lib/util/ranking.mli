(** Ranking of scored candidates (smaller score = better match).

    The dynamic stage of the paper produces a ranked list of
    (candidate, similarity distance) pairs; this module sorts, ranks and
    answers "at which position does the true function land" queries used by
    Tables IV-VII. *)

type 'a scored = { item : 'a; score : float }

val rank : ('a * float) list -> 'a scored list
(** Sorted ascending by score; stable for equal scores. *)

val position : equal:('a -> 'a -> bool) -> 'a -> 'a scored list -> int option
(** 1-based rank of the first matching item, if present. *)

val top : int -> 'a scored list -> 'a scored list
(** First [n] entries (fewer if the list is shorter). *)
