type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finaliser: state advances by the golden gamma, output is the
   mixed value.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators". *)
let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next64 t)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let int64_any t = next64 t

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p = float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  assert (k <= Array.length arr);
  let pool = Array.copy arr in
  shuffle t pool;
  Array.sub pool 0 k
