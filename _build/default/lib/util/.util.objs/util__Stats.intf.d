lib/util/stats.mli:
