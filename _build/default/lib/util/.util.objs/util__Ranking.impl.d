lib/util/ranking.ml: List
