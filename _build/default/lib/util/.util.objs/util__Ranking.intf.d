lib/util/ranking.mli:
