lib/util/vec.ml: Array Format
