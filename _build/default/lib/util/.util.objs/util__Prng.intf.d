lib/util/prng.mli:
