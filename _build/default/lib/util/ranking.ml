type 'a scored = { item : 'a; score : float }

let rank pairs =
  let scored = List.map (fun (item, score) -> { item; score }) pairs in
  List.stable_sort (fun a b -> compare a.score b.score) scored

let position ~equal x ranked =
  let rec loop i = function
    | [] -> None
    | { item; _ } :: rest -> if equal item x then Some i else loop (i + 1) rest
  in
  loop 1 ranked

let top n ranked =
  let rec take i = function
    | [] -> []
    | x :: rest -> if i >= n then [] else x :: take (i + 1) rest
  in
  take 0 ranked
