(** The vulnerability database (the paper's Dataset II): per CVE, the
    static feature vectors of the vulnerable and patched reference
    functions, the compact reference images to execute them from, and the
    fuzzable prototype. *)

type entry = {
  cve_id : string;
  description : string;
  vuln_image : Loader.Image.t;
  vuln_findex : int;
  patched_image : Loader.Image.t;
  patched_findex : int;
  vuln_static : Util.Vec.t;
  patched_static : Util.Vec.t;
  shape : Fuzz.Shape.t;
}

type t

val create : entry list -> t
val entries : t -> entry list
val find : t -> string -> entry option
val size : t -> int

val make_entry :
  cve_id:string ->
  description:string ->
  shape:Fuzz.Shape.t ->
  vuln:Loader.Image.t * int ->
  patched:Loader.Image.t * int ->
  entry
(** Computes the static feature vectors from the images. *)

val reference_static : entry -> patched:bool -> Util.Vec.t
val reference_image : entry -> patched:bool -> Loader.Image.t * int
