lib/patchecko/dynamic_stage.mli: Fuzz Loader Similarity Util Vm
