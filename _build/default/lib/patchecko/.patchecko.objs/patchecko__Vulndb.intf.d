lib/patchecko/vulndb.mli: Fuzz Loader Util
