lib/patchecko/pipeline.mli: Differential Dynamic_stage Loader Static_stage Vulndb
