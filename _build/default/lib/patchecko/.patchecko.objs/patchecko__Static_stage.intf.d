lib/patchecko/static_stage.mli: Loader Nn Util
