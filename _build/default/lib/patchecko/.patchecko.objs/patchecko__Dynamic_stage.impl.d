lib/patchecko/dynamic_stage.ml: Fuzz List Similarity Sys Util Vm
