lib/patchecko/vulndb.ml: Fuzz List Loader Staticfeat Util
