lib/patchecko/differential.mli: Loader Util
