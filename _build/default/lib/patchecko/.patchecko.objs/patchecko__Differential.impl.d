lib/patchecko/differential.ml: Array Cfg Isa List Loader Staticfeat
