lib/patchecko/static_stage.ml: Array Loader Nn Staticfeat Sys Util
