lib/patchecko/scanner.ml: Array Buffer Char Differential Dynamic_stage List Loader Printf Similarity Static_stage String Vulndb
