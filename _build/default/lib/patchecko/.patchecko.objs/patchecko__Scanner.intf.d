lib/patchecko/scanner.mli: Differential Dynamic_stage Loader Static_stage Vulndb
