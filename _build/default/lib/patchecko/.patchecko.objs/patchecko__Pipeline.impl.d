lib/patchecko/pipeline.ml: Differential Dynamic_stage Int List Loader Option Similarity Static_stage Vm Vulndb
