type classifier = {
  model : Nn.Model.t;
  normalizer : Nn.Data.normalizer;
  threshold : float;
}

let default_threshold = 0.5

type result = {
  candidates : int list;
  scores : float array;
  seconds : float;
}

let pair_score clf ~reference ~candidate =
  let input = Nn.Data.normalize_vec clf.normalizer (Util.Vec.concat reference candidate) in
  Nn.Model.predict_one clf.model input

let scan clf ~reference img =
  let start = Sys.time () in
  let n = Loader.Image.function_count img in
  let rows =
    Array.init n (fun i ->
        let feats = Staticfeat.Extract.of_function img i in
        Nn.Data.normalize_vec clf.normalizer (Util.Vec.concat reference feats))
  in
  let scores = Nn.Model.predict clf.model (Nn.Matrix.of_rows rows) in
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if scores.(i) >= clf.threshold then candidates := i :: !candidates
  done;
  { candidates = !candidates; scores; seconds = Sys.time () -. start }
