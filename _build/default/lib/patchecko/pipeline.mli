(** The full PATCHECKO pipeline for one CVE against one target image:
    static scan → dynamic prune/rank → differential patch verdict — the
    per-row computation behind Tables VI, VII and VIII. *)

type classification = {
  tp : int;
  tn : int;
  fp : int;
  fn : int;
  total : int;
  fp_rate : float;
}

type report = {
  cve_id : string;
  reference_patched : bool;  (** which reference version drove the query *)
  static : Static_stage.result;
  classification : classification option;  (** needs ground truth *)
  dynamic : Dynamic_stage.result option;  (** absent when no candidates *)
  true_rank : int option;  (** rank of the ground-truth function *)
  located : int option;  (** top-ranked candidate *)
  verdict : (Differential.verdict * float) option;
      (** differential decision on the located function *)
}

val analyze :
  ?dyn_config:Dynamic_stage.config ->
  ?ground_truth:int ->
  classifier:Static_stage.classifier ->
  db_entry:Vulndb.entry ->
  reference_patched:bool ->
  target:Loader.Image.t ->
  unit ->
  report

val classify :
  candidates:int list -> total:int -> ground_truth:int -> classification
