(** Stage 1: deep-learning candidate selection.

    Every function of the (stripped) target image is paired with the CVE
    reference vector; the trained similarity model scores each pair, and
    functions above the threshold become dynamic-stage candidates. *)

type classifier = {
  model : Nn.Model.t;
  normalizer : Nn.Data.normalizer;
  threshold : float;
}

val default_threshold : float

type result = {
  candidates : int list;  (** function indices flagged as similar *)
  scores : float array;  (** per-function similarity probabilities *)
  seconds : float;
}

val scan : classifier -> reference:Util.Vec.t -> Loader.Image.t -> result

val pair_score :
  classifier -> reference:Util.Vec.t -> candidate:Util.Vec.t -> float
(** Probability the two feature vectors come from the same source — also
    used to compare a vulnerable reference against its patched version
    (§V-D's similarity check). *)
