(** Canonical order and names of the 21 dynamic features (Table II). *)

val count : int
(** 21. *)

val all : string array
val index : string -> int option
