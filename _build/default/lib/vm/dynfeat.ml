let all =
  [|
    "binary_defined_fun_call_num";
    "min_stack_depth";
    "max_stack_depth";
    "avg_stack_depth";
    "std_stack_depth";
    "instruction_num";
    "unique_instruction_num";
    "call_instruction_num";
    "arithmetic_instruction_num";
    "branch_instruction_num";
    "load_instruction_num";
    "store_instruction_num";
    "max_branch_frequency";
    "max_arith_frequency";
    "mem_heap_access";
    "mem_stack_access";
    "mem_lib_access";
    "mem_anon_access";
    "mem_others_access";
    "library_call_num";
    "syscall_num";
  |]

let count = Array.length all

let index name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name && !found = None then found := Some i) all;
  !found
