type outcome =
  | Finished of int64
  | Exited of int
  | Crashed of Machine.trap

type result = {
  outcome : outcome;
  features : Util.Vec.t;
  stdout : string;
  instructions : int;
}

let run_machine m fidx =
  let outcome =
    match Machine.call_function m ~handler:Runtime.dispatch fidx with
    | () -> Finished (Machine.regs m).(Isa.Reg.ret)
    | exception Machine.Trap trap -> Crashed trap
    | exception Machine.Exit_program code -> Exited code
    | exception Isa.Encoding.Invalid_encoding msg ->
      Crashed (Machine.Import_error ("invalid encoding: " ^ msg))
  in
  let trace = Machine.trace m in
  {
    outcome;
    features = Trace.features trace;
    stdout = Machine.stdout_contents m;
    instructions = Trace.instructions_executed trace;
  }

let run ?fuel img fidx env = run_machine (Machine.create ?fuel img env) fidx

let run_traced ?fuel ?(limit = 10_000) img fidx env =
  let lines = ref [] in
  let count = ref 0 in
  let on_instr ~fidx ~pc ins =
    if !count < limit then begin
      incr count;
      lines :=
        Format.asprintf "f%d+%d: %a" fidx pc
          (Isa.Instr.pp Format.pp_print_int)
          ins
        :: !lines
    end
  in
  let m = Machine.create ?fuel ~on_instr img env in
  let result = run_machine m fidx in
  (result, List.rev !lines)

let survives ?fuel img fidx env =
  match (run ?fuel img fidx env).outcome with
  | Finished _ | Exited _ -> true
  | Crashed _ -> false

let outcome_to_string = function
  | Finished v -> Printf.sprintf "finished (r0=%Ld)" v
  | Exited code -> Printf.sprintf "exited (%d)" code
  | Crashed trap -> "crashed: " ^ Machine.trap_to_string trap
