lib/vm/env.ml: Bytes Format Isa List
