lib/vm/region.mli:
