lib/vm/dynfeat.ml: Array
