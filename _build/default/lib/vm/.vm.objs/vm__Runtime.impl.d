lib/vm/runtime.ml: Array Int64 Isa Machine String
