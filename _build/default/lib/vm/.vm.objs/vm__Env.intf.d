lib/vm/env.mli: Format
