lib/vm/trace.mli: Isa Region Util
