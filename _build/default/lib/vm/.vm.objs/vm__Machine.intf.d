lib/vm/machine.mli: Env Isa Loader Trace
