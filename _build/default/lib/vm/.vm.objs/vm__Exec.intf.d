lib/vm/exec.mli: Env Loader Machine Util
