lib/vm/exec.ml: Array Format Isa List Machine Printf Runtime Trace Util
