lib/vm/machine.ml: Array Buffer Bytes Char Env Float Hashtbl Int64 Isa List Loader Printf Region Trace
