lib/vm/trace.ml: Array Hashtbl Isa List Region Util
