lib/vm/runtime.mli: Machine
