lib/vm/region.ml: Bytes Int64 Loader
