lib/vm/dynfeat.mli:
