type value =
  | Vint of int64
  | Vbuf of bytes

type t = {
  args : value list;
  global_patches : (int64 * bytes) list;
  stdin : bytes;
  seed : int64;
}

let make ?(global_patches = []) ?(stdin = Bytes.empty) ?(seed = 1L) args =
  if List.length args > Isa.Reg.max_args then
    invalid_arg "Env.make: too many arguments";
  { args; global_patches; stdin; seed }

let buf_of_string s = Vbuf (Bytes.of_string s)

let pp ppf t =
  Format.fprintf ppf "env(seed=%Ld, args=[" t.seed;
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      match v with
      | Vint n -> Format.fprintf ppf "%Ld" n
      | Vbuf b -> Format.fprintf ppf "buf[%d]" (Bytes.length b))
    t.args;
  Format.fprintf ppf "])"
