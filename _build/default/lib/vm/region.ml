type kind = Rlib | Rheap | Rstack | Ranon | Rothers

type t = {
  kind : kind;
  base : int64;
  data : bytes;
}

let lib_base = Loader.Image.data_base_default
let heap_base = 0x0100_0000L
let heap_size = 1 lsl 20
let anon_base = 0x2000_0000L
let mmio_base = 0x4000_0000L
let mmio_size = 4096
let stack_top = 0x7000_0000L
let stack_size = 1 lsl 18

let contains t addr =
  addr >= t.base && addr < Int64.add t.base (Int64.of_int (Bytes.length t.data))

let offset t addr = Int64.to_int (Int64.sub addr t.base)

let kind_to_string = function
  | Rlib -> "lib"
  | Rheap -> "heap"
  | Rstack -> "stack"
  | Ranon -> "anon"
  | Rothers -> "others"
