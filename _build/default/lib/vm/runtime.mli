(** Implementations of the libc-like imports (the VM-side half of
    {!Minic.Builtins}).  Arguments arrive in r0..r5, results return in r0;
    builtin-internal memory traffic is not counted as instruction-level
    accesses, matching trace collection at the binary's own instructions
    only. *)

val dispatch : Machine.t -> string -> unit
(** Raises [Machine.Trap (Unknown_import _)] for names outside the
    runtime, [Machine.Exit_program] for [exit], and
    [Machine.Trap (Aborted _)] for [abort]/[panic]. *)

val names : string list
(** Every import the runtime implements. *)
