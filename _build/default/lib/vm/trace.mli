(** Trace accumulator: the dynamic engine streams per-instruction and
    per-event observations in; [features] reduces them to the 21-element
    vector of Table II. *)

type t

val create : unit -> t

val record_instr : t -> fidx:int -> pc:int -> int Isa.Instr.t -> unit
(** Called once per executed instruction with its address. *)

val record_depth : t -> int -> unit
(** Sample of the call-stack depth. *)

val record_internal_call : t -> unit
val record_library_call : t -> unit
val record_syscall : t -> unit
val record_mem_access : t -> Region.kind -> unit

val instructions_executed : t -> int
val features : t -> Util.Vec.t
