(** Execution environments for single-function runs.

    An environment fixes everything the paper's dynamic engine fixes: the
    concrete argument values (scalars or input buffers mapped into an
    anonymous region), optional overrides of global state in the data
    section, a stdin byte stream for [sys_read], and a deterministic seed
    for the MMIO window.  Running the same function in the same
    environment is fully deterministic. *)

type value =
  | Vint of int64
  | Vbuf of bytes  (** mapped into the anonymous region; the argument
                       receives its address *)

type t = {
  args : value list;  (** at most {!Isa.Reg.max_args} *)
  global_patches : (int64 * bytes) list;
      (** (data-section address, replacement bytes) *)
  stdin : bytes;
  seed : int64;
}

val make : ?global_patches:(int64 * bytes) list -> ?stdin:bytes -> ?seed:int64
  -> value list -> t

val buf_of_string : string -> value
val pp : Format.formatter -> t -> unit
