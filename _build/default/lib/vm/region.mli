(** Virtual memory regions of the emulated process.

    The classification mirrors what the paper reads out of
    /proc/pid/maps: heap, stack, mapped library (our image data section),
    anonymous mappings (fuzzer-provided input buffers) and "others" (a
    small MMIO-like window some device code pokes). *)

type kind = Rlib | Rheap | Rstack | Ranon | Rothers

type t = {
  kind : kind;
  base : int64;
  data : bytes;
}

val lib_base : int64  (** = {!Loader.Image.data_base_default} *)

val heap_base : int64
val heap_size : int
val anon_base : int64
val mmio_base : int64
val mmio_size : int
val stack_top : int64
val stack_size : int

val contains : t -> int64 -> bool
val offset : t -> int64 -> int
val kind_to_string : kind -> string
