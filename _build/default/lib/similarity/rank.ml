type 'a entry = { candidate : 'a; distance : float }

let by_distance ?p ~reference candidates =
  let k = List.length reference in
  candidates
  |> List.filter_map (fun (candidate, feats) ->
         if List.length feats <> k || k = 0 then None
         else Some { candidate; distance = Score.averaged ?p reference feats })
  |> List.stable_sort (fun a b -> compare a.distance b.distance)

let rank_of ~equal x entries =
  let rec loop i = function
    | [] -> None
    | { candidate; _ } :: rest ->
      if equal candidate x then Some i else loop (i + 1) rest
  in
  loop 1 entries

let top n entries =
  let rec take i = function
    | [] -> []
    | x :: rest -> if i >= n then [] else x :: take (i + 1) rest
  in
  take 0 entries
