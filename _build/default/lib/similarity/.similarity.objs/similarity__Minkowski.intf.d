lib/similarity/minkowski.mli: Util
