lib/similarity/score.mli: Util
