lib/similarity/minkowski.ml: Array
