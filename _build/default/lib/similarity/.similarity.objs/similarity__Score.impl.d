lib/similarity/score.ml: List Minkowski
