lib/similarity/rank.mli: Util
