lib/similarity/rank.ml: List Score
