let default_p = 3.0

let distance ?(p = default_p) x y =
  if Array.length x <> Array.length y then
    invalid_arg "Minkowski.distance: dimension mismatch";
  if p <= 0.0 then invalid_arg "Minkowski.distance: p must be positive";
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (abs_float (x.(i) -. y.(i)) ** p)
  done;
  !acc ** (1.0 /. p)
