let pair ?p x y = Minkowski.distance ?p x y

let averaged ?p fs gs =
  let n = List.length fs in
  if n = 0 || n <> List.length gs then
    invalid_arg "Score.averaged: environment lists must align";
  let total =
    List.fold_left2 (fun acc f g -> acc +. Minkowski.distance ?p f g) 0.0 fs gs
  in
  total /. float_of_int n
