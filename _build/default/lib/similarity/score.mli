(** Function semantic similarity (equation 2): the Minkowski distance of
    two dynamic feature vectors, averaged over the K execution
    environments both functions were run in.  Smaller is more similar. *)

val pair : ?p:float -> Util.Vec.t -> Util.Vec.t -> float
(** Distance for a single environment. *)

val averaged : ?p:float -> Util.Vec.t list -> Util.Vec.t list -> float
(** [averaged fs gs] averages the per-environment distances; the lists are
    index-aligned by environment and must have equal non-zero length. *)
