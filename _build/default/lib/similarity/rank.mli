(** Candidate ranking by averaged dynamic-feature distance (the output of
    the paper's Figure 5 / Tables IV-V). *)

type 'a entry = { candidate : 'a; distance : float }

val by_distance :
  ?p:float ->
  reference:Util.Vec.t list ->
  ('a * Util.Vec.t list) list ->
  'a entry list
(** [by_distance ~reference candidates] scores each candidate's
    per-environment feature vectors against the reference function's and
    sorts ascending (best match first).  Candidates whose environment list
    length differs from the reference are skipped. *)

val rank_of : equal:('a -> 'a -> bool) -> 'a -> 'a entry list -> int option
(** 1-based position of a candidate. *)

val top : int -> 'a entry list -> 'a entry list
