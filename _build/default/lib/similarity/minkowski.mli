(** Minkowski distance (equation 1 of the paper); the paper fixes p = 3,
    generalising Manhattan (p=1) and Euclidean (p=2). *)

val distance : ?p:float -> Util.Vec.t -> Util.Vec.t -> float
(** Raises [Invalid_argument] on dimension mismatch or p <= 0. *)

val default_p : float
(** 3.0 *)
