type elem = Byte | Word

type ty = Tint | Tfloat | Tptr of elem | Tvoid

type unop = Uneg | Ubnot

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Bandb
  | Borb
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Bland
  | Blor

type expr =
  | Eint of int64
  | Efloat of float
  | Estr of string
  | Evar of string
  | Eindex of expr * expr
  | Eaddr of expr * expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list

type stmt =
  | Sdecl of string * ty * expr option
  | Sarray of string * elem * int
  | Sassign of string * expr
  | Sindexset of expr * expr * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of string * expr * expr * expr * stmt list
  | Sswitch of expr * (int64 * stmt list) list * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sexpr of expr

type param = { pname : string; pty : ty }

type func = {
  fname : string;
  params : param list;
  ret : ty;
  body : stmt list;
}

type ginit =
  | Gint of int64
  | Gfloat of float
  | Gbytes of int * string
  | Gwords of int * int64 list

type global = { gname : string; gini : ginit }

type program = { pname : string; globals : global list; funcs : func list }

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tptr Byte -> "byte*"
  | Tptr Word -> "word*"
  | Tvoid -> "void"

let binop_to_string = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Brem -> "%"
  | Bandb -> "&"
  | Borb -> "|"
  | Bxor -> "^"
  | Bshl -> "<<"
  | Bshr -> ">>"
  | Beq -> "=="
  | Bne -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Bland -> "&&"
  | Blor -> "||"

(* Binding strength for parenthesisation when pretty-printing. *)
let binop_prec = function
  | Bmul | Bdiv | Brem -> 7
  | Badd | Bsub -> 6
  | Bshl | Bshr -> 5
  | Blt | Ble | Bgt | Bge -> 4
  | Beq | Bne -> 3
  | Bandb | Bxor | Borb -> 2
  | Bland -> 1
  | Blor -> 0

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr ?(prec = -1) ppf e =
  let p fmt = Format.fprintf ppf fmt in
  match e with
  | Eint v -> p "%Ld" v
  | Efloat v -> p "%h" v
  | Estr s -> p "\"%s\"" (escape_string s)
  | Evar name -> p "%s" name
  | Eindex (base, idx) ->
    p "%a[%a]" (pp_expr ~prec:10) base (pp_expr ~prec:(-1)) idx
  | Eaddr (base, idx) ->
    p "&%a[%a]" (pp_expr ~prec:10) base (pp_expr ~prec:(-1)) idx
  | Eunop (Uneg, e) -> p "-%a" (pp_expr ~prec:9) e
  | Eunop (Ubnot, e) -> p "~%a" (pp_expr ~prec:9) e
  | Ebinop (op, a, b) ->
    let my = binop_prec op in
    if my < prec then
      p "(%a %s %a)" (pp_expr ~prec:my) a (binop_to_string op)
        (pp_expr ~prec:(my + 1)) b
    else
      p "%a %s %a" (pp_expr ~prec:my) a (binop_to_string op)
        (pp_expr ~prec:(my + 1)) b
  | Ecall (name, args) ->
    p "%s(" name;
    List.iteri
      (fun i a ->
        if i > 0 then p ", ";
        pp_expr ~prec:(-1) ppf a)
      args;
    p ")"

let rec pp_stmt ppf s =
  let p fmt = Format.fprintf ppf fmt in
  match s with
  | Sdecl (name, ty, None) -> p "var %s: %s;" name (ty_to_string ty)
  | Sdecl (name, ty, Some e) ->
    p "var %s: %s = %a;" name (ty_to_string ty) (pp_expr ~prec:(-1)) e
  | Sarray (name, Byte, n) -> p "var %s: byte[%d];" name n
  | Sarray (name, Word, n) -> p "var %s: word[%d];" name n
  | Sassign (name, e) -> p "%s = %a;" name (pp_expr ~prec:(-1)) e
  | Sindexset (base, idx, e) ->
    p "%a[%a] = %a;" (pp_expr ~prec:10) base (pp_expr ~prec:(-1)) idx
      (pp_expr ~prec:(-1)) e
  | Sif (cond, thens, []) ->
    p "@[<v 2>if (%a) {%a@]@,}" (pp_expr ~prec:(-1)) cond pp_body thens
  | Sif (cond, thens, elses) ->
    p "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" (pp_expr ~prec:(-1)) cond
      pp_body thens pp_body elses
  | Swhile (cond, body) ->
    p "@[<v 2>while (%a) {%a@]@,}" (pp_expr ~prec:(-1)) cond pp_body body
  | Sfor (v, start, bound, step, body) ->
    p "@[<v 2>for (%s = %a; %s < %a; %s = %s + %a) {%a@]@,}" v
      (pp_expr ~prec:(-1)) start v (pp_expr ~prec:(-1)) bound v v
      (pp_expr ~prec:(-1)) step pp_body body
  | Sswitch (e, cases, default) ->
    p "@[<v 2>switch (%a) {" (pp_expr ~prec:(-1)) e;
    List.iter
      (fun (v, body) -> p "@,@[<v 2>case %Ld: {%a@]@,}" v pp_body body)
      cases;
    p "@,@[<v 2>default: {%a@]@,}" pp_body default;
    p "@]@,}"
  | Sreturn None -> p "return;"
  | Sreturn (Some e) -> p "return %a;" (pp_expr ~prec:(-1)) e
  | Sbreak -> p "break;"
  | Scontinue -> p "continue;"
  | Sexpr e -> p "%a;" (pp_expr ~prec:(-1)) e

and pp_body ppf body =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) body

let pp_param ppf { pname; pty } =
  Format.fprintf ppf "%s: %s" pname (ty_to_string pty)

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>fn %s(" f.fname;
  List.iteri
    (fun i par ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_param ppf par)
    f.params;
  Format.fprintf ppf ")";
  (match f.ret with
  | Tvoid -> ()
  | ty -> Format.fprintf ppf ": %s" (ty_to_string ty));
  Format.fprintf ppf " {%a@]@,}" pp_body f.body

let pp_global ppf { gname; gini } =
  match gini with
  | Gint v -> Format.fprintf ppf "global %s: int = %Ld;" gname v
  | Gfloat v -> Format.fprintf ppf "global %s: float = %h;" gname v
  | Gbytes (size, init) ->
    if init = "" then Format.fprintf ppf "global %s: byte[%d];" gname size
    else
      Format.fprintf ppf "global %s: byte[%d] = \"%s\";" gname size
        (escape_string init)
  | Gwords (size, init) ->
    if init = [] then Format.fprintf ppf "global %s: word[%d];" gname size
    else begin
      Format.fprintf ppf "global %s: word[%d] = {" gname size;
      List.iteri
        (fun i v ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%Ld" v)
        init;
      Format.fprintf ppf "};"
    end

let pp_program ppf prog =
  Format.fprintf ppf "@[<v 0>lib %s;@,@," prog.pname;
  List.iter (fun g -> Format.fprintf ppf "%a@," pp_global g) prog.globals;
  if prog.globals <> [] then Format.fprintf ppf "@,";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%a@," pp_func f)
    prog.funcs;
  Format.fprintf ppf "@]"

let program_to_string prog = Format.asprintf "%a" pp_program prog
