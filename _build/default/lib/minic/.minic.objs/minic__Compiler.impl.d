lib/minic/compiler.ml: Array Ast Codegen Format Hashtbl Ir Isa Layout Lexer List Loader Lower Opt Optlevel Parser Peephole Regalloc Typecheck
