lib/minic/lower.ml: Array Ast Builtins Format Int64 Ir Isa Layout List Optlevel
