lib/minic/regalloc.ml: Array Hashtbl Int Ir Isa List Set
