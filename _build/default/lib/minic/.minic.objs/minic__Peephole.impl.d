lib/minic/peephole.ml: Isa List
