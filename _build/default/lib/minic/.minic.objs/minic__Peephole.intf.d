lib/minic/peephole.mli: Isa
