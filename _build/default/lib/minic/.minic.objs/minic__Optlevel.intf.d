lib/minic/optlevel.mli:
