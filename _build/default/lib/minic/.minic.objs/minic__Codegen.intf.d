lib/minic/codegen.mli: Ir Isa Regalloc
