lib/minic/codegen.ml: Array Format Int64 Ir Isa List Printf Regalloc
