lib/minic/opt.ml: Array Float Fun Hashtbl Int64 Ir Isa List Option Optlevel Printf
