lib/minic/compiler.mli: Ast Isa Loader Optlevel
