lib/minic/builtins.ml: Ast List
