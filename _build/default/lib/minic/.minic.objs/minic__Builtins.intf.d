lib/minic/builtins.mli: Ast
