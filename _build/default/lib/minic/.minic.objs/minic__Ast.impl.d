lib/minic/ast.ml: Buffer Char Format List Printf String
