lib/minic/layout.ml: Array Ast Buffer Char Hashtbl Int64 List Loader String
