lib/minic/regalloc.mli: Ir Isa
