lib/minic/optlevel.ml:
