lib/minic/layout.mli: Ast
