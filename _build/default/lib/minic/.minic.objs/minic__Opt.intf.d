lib/minic/opt.mli: Ir Optlevel
