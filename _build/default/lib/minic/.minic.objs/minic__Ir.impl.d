lib/minic/ir.ml: Array Format Isa List
