lib/minic/typecheck.ml: Ast Builtins Format Hashtbl Isa List
