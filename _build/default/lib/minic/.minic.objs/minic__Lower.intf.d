lib/minic/lower.mli: Ast Ir Layout Optlevel
