lib/minic/lexer.ml: Buffer Char Format Int64 List Printf String
