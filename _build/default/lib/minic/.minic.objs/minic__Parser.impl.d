lib/minic/parser.ml: Ast Format Int64 Lexer List
