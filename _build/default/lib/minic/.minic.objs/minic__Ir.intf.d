lib/minic/ir.mli: Format Isa
