lib/minic/lexer.mli:
