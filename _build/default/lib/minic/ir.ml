type vreg = int

type operand = Ovreg of vreg | Oimm of int64

type callee = Cinternal of string | Cimport of string

type ins =
  | Imov of vreg * operand
  | Ibin of Isa.Instr.binop * vreg * vreg * operand
  | Ifbin of Isa.Instr.fbinop * vreg * vreg * vreg
  | Ineg of vreg * vreg
  | Inot of vreg * vreg
  | Ii2f of vreg * vreg
  | If2i of vreg * vreg
  | Iload of Isa.Instr.width * vreg * vreg * int
  | Istore of Isa.Instr.width * vreg * vreg * int
  | Ilea_slot of vreg * int
  | Ilea_data of vreg * int64
  | Icall of vreg option * callee * vreg list
  | Isyscall of vreg option * int * vreg list

type terminator =
  | Tjmp of int
  | Tbr of Isa.Cond.t * vreg * operand * int * int
  | Tfbr of Isa.Cond.t * vreg * vreg * int * int
  | Tswitch of vreg * int array * int
  | Tret of vreg option
  | Tunreachable

type block = { mutable body : ins list; mutable term : terminator }

type fundef = {
  name : string;
  nparams : int;
  param_vregs : vreg list;
  mutable nvregs : int;
  mutable blocks : block array;
  mutable slot_sizes : int array;
}

let defs = function
  | Imov (d, _)
  | Ibin (_, d, _, _)
  | Ifbin (_, d, _, _)
  | Ineg (d, _)
  | Inot (d, _)
  | Ii2f (d, _)
  | If2i (d, _)
  | Iload (_, d, _, _)
  | Ilea_slot (d, _)
  | Ilea_data (d, _) ->
    [ d ]
  | Istore _ -> []
  | Icall (Some d, _, _) | Isyscall (Some d, _, _) -> [ d ]
  | Icall (None, _, _) | Isyscall (None, _, _) -> []

let operand_uses = function Ovreg v -> [ v ] | Oimm _ -> []

let uses = function
  | Imov (_, o) -> operand_uses o
  | Ibin (_, _, a, o) -> a :: operand_uses o
  | Ifbin (_, _, a, b) -> [ a; b ]
  | Ineg (_, a) | Inot (_, a) | Ii2f (_, a) | If2i (_, a) -> [ a ]
  | Iload (_, _, addr, _) -> [ addr ]
  | Istore (_, src, addr, _) -> [ src; addr ]
  | Ilea_slot _ | Ilea_data _ -> []
  | Icall (_, _, args) | Isyscall (_, _, args) -> args

let term_uses = function
  | Tjmp _ | Tunreachable | Tret None -> []
  | Tbr (_, v, o, _, _) -> v :: operand_uses o
  | Tfbr (_, a, b, _, _) -> [ a; b ]
  | Tswitch (v, _, _) -> [ v ]
  | Tret (Some v) -> [ v ]

let successors = function
  | Tjmp b -> [ b ]
  | Tbr (_, _, _, b1, b2) | Tfbr (_, _, _, b1, b2) -> [ b1; b2 ]
  | Tswitch (_, targets, default) -> default :: Array.to_list targets
  | Tret _ | Tunreachable -> []

let map_successors f = function
  | Tjmp b -> Tjmp (f b)
  | Tbr (c, v, o, b1, b2) -> Tbr (c, v, o, f b1, f b2)
  | Tfbr (c, a, b, b1, b2) -> Tfbr (c, a, b, f b1, f b2)
  | Tswitch (v, targets, default) ->
    Tswitch (v, Array.map f targets, f default)
  | (Tret _ | Tunreachable) as t -> t

let has_side_effect = function
  | Istore _ | Icall _ | Isyscall _ -> true
  | Imov _ | Ibin _ | Ifbin _ | Ineg _ | Inot _ | Ii2f _ | If2i _ | Iload _
  | Ilea_slot _ | Ilea_data _ ->
    false

let fresh_vreg f =
  let v = f.nvregs in
  f.nvregs <- v + 1;
  v

let add_slot f size =
  let id = Array.length f.slot_sizes in
  f.slot_sizes <- Array.append f.slot_sizes [| size |];
  id

let instruction_count f =
  Array.fold_left (fun acc b -> acc + List.length b.body + 1) 0 f.blocks

let pp_operand ppf = function
  | Ovreg v -> Format.fprintf ppf "v%d" v
  | Oimm i -> Format.fprintf ppf "#%Ld" i

let pp_callee ppf = function
  | Cinternal name -> Format.fprintf ppf "%s" name
  | Cimport name -> Format.fprintf ppf "@%s" name

let pp_ins ppf ins =
  let p fmt = Format.fprintf ppf fmt in
  match ins with
  | Imov (d, o) -> p "v%d <- %a" d pp_operand o
  | Ibin (op, d, a, o) ->
    p "v%d <- %s v%d, %a" d (Isa.Instr.mnemonic (Binop (op, 0, 0, Reg 0))) a
      pp_operand o
  | Ifbin (op, d, a, b) ->
    p "v%d <- %s v%d, v%d" d (Isa.Instr.mnemonic (Fbinop (op, 0, 0, 0))) a b
  | Ineg (d, a) -> p "v%d <- neg v%d" d a
  | Inot (d, a) -> p "v%d <- not v%d" d a
  | Ii2f (d, a) -> p "v%d <- i2f v%d" d a
  | If2i (d, a) -> p "v%d <- f2i v%d" d a
  | Iload (W8, d, a, off) -> p "v%d <- ld [v%d%+d]" d a off
  | Iload (W1, d, a, off) -> p "v%d <- ldb [v%d%+d]" d a off
  | Istore (W8, s, a, off) -> p "st v%d, [v%d%+d]" s a off
  | Istore (W1, s, a, off) -> p "stb v%d, [v%d%+d]" s a off
  | Ilea_slot (d, slot) -> p "v%d <- slot %d" d slot
  | Ilea_data (d, addr) -> p "v%d <- data 0x%Lx" d addr
  | Icall (dst, callee, args) ->
    (match dst with Some d -> p "v%d <- " d | None -> ());
    p "call %a(" pp_callee callee;
    List.iteri
      (fun i a ->
        if i > 0 then p ", ";
        p "v%d" a)
      args;
    p ")"
  | Isyscall (dst, n, args) ->
    (match dst with Some d -> p "v%d <- " d | None -> ());
    p "syscall %d(" n;
    List.iteri
      (fun i a ->
        if i > 0 then p ", ";
        p "v%d" a)
      args;
    p ")"

let pp_term ppf term =
  let p fmt = Format.fprintf ppf fmt in
  match term with
  | Tjmp b -> p "jmp B%d" b
  | Tbr (c, v, o, b1, b2) ->
    p "br %s v%d, %a ? B%d : B%d" (Isa.Cond.to_string c) v pp_operand o b1 b2
  | Tfbr (c, a, b, b1, b2) ->
    p "fbr %s v%d, v%d ? B%d : B%d" (Isa.Cond.to_string c) a b b1 b2
  | Tswitch (v, targets, default) ->
    p "switch v%d [" v;
    Array.iteri
      (fun i t ->
        if i > 0 then p " ";
        p "B%d" t)
      targets;
    p "] default B%d" default
  | Tret None -> p "ret"
  | Tret (Some v) -> p "ret v%d" v
  | Tunreachable -> p "unreachable"

let pp_fundef ppf f =
  Format.fprintf ppf "fn %s (%d params, %d vregs)@." f.name f.nparams f.nvregs;
  Array.iteri
    (fun i b ->
      Format.fprintf ppf "B%d:@." i;
      List.iter (fun ins -> Format.fprintf ppf "  %a@." pp_ins ins) b.body;
      Format.fprintf ppf "  %a@." pp_term b.term)
    f.blocks
