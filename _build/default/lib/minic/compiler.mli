(** The MinC compiler driver: typecheck, lay out data, lower, optimise,
    allocate registers, generate code per function and link everything
    into an SFF image with a populated call table and symbol table (strip
    the image afterwards for the PATCHECKO analysis path). *)

exception Compile_error of string

val compile :
  arch:Isa.Arch.t -> opt:Optlevel.level -> Ast.program -> Loader.Image.t
(** Raises {!Compile_error} (wrapping type/lowering/codegen failures). *)

val compile_source :
  arch:Isa.Arch.t -> opt:Optlevel.level -> string -> Loader.Image.t
(** Parse then {!compile}. *)

val compile_matrix :
  archs:Isa.Arch.t list ->
  opts:Optlevel.level list ->
  Ast.program ->
  ((Isa.Arch.t * Optlevel.level) * Loader.Image.t) list
(** Every (architecture, optimisation level) combination, as used to build
    the paper's Dataset I. *)
