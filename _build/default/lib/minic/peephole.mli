(** Peephole optimisation over symbolic assembly (O1 and above):
    self-moves, arithmetic no-ops, jumps to the immediately following
    label, adjacent push/pop of the same register, and reloads of a value
    just stored to the same stack slot. *)

val run : Isa.Asm.item list -> Isa.Asm.item list
(** Iterates to a fixpoint; semantics-preserving. *)
