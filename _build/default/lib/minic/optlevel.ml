type level = O0 | O1 | O2 | O3 | Oz | Ofast

type options = {
  fold : bool;
  dce : bool;
  cse : bool;
  simplify : bool;
  strength : bool;
  inline_limit : int;
  unroll_limit : int;
  fast_float : bool;
  locals_in_slots : bool;
  spill_all : bool;
  use_jtable : bool;
  peephole : bool;
  licm : bool;
}

let all = [ O0; O1; O2; O3; Oz; Ofast ]

let base =
  {
    fold = false;
    dce = false;
    cse = false;
    simplify = false;
    strength = false;
    inline_limit = 0;
    unroll_limit = 0;
    fast_float = false;
    locals_in_slots = false;
    spill_all = false;
    use_jtable = false;
    peephole = false;
    licm = false;
  }

let of_level = function
  | O0 -> { base with locals_in_slots = true; spill_all = true }
  | O1 -> { base with fold = true; dce = true; simplify = true; peephole = true }
  | O2 ->
    {
      base with
      fold = true;
      dce = true;
      cse = true;
      simplify = true;
      strength = true;
      inline_limit = 16;
      use_jtable = true;
      peephole = true;
    }
  | O3 ->
    {
      base with
      fold = true;
      dce = true;
      cse = true;
      simplify = true;
      strength = true;
      inline_limit = 48;
      unroll_limit = 8;
      use_jtable = true;
      peephole = true;
      licm = true;
    }
  | Oz ->
    {
      base with
      fold = true;
      dce = true;
      cse = true;
      simplify = true;
      strength = true;
      use_jtable = true;
      peephole = true;
    }
  | Ofast ->
    {
      base with
      fold = true;
      dce = true;
      cse = true;
      simplify = true;
      strength = true;
      inline_limit = 48;
      unroll_limit = 8;
      use_jtable = true;
      fast_float = true;
      peephole = true;
      licm = true;
    }

let to_string = function
  | O0 -> "O0"
  | O1 -> "O1"
  | O2 -> "O2"
  | O3 -> "O3"
  | Oz -> "Oz"
  | Ofast -> "Ofast"

let of_string = function
  | "O0" -> Some O0
  | "O1" -> Some O1
  | "O2" -> Some O2
  | "O3" -> Some O3
  | "Oz" -> Some Oz
  | "Ofast" -> Some Ofast
  | _ -> None
