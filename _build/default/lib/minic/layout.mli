(** Data-section layout: assigns addresses to globals at creation and
    interns string literals on demand during lowering; [finish] produces
    the final data bytes, string ranges and the global symbol list. *)

type t

val create : ?base:int64 -> Ast.program -> t
val global_addr : t -> string -> int64
(** Raises [Not_found] for unknown globals. *)

val intern_string : t -> string -> int64
(** Address of a NUL-terminated copy of the literal; deduplicated. *)

val finish : t -> bytes * (int64 * int) array * (string * int64) array
(** (data section, string ranges, global symbols). *)
