(** Register allocation.

    Linear scan over liveness-derived intervals.  Allocatable registers
    are r6..r11 only — r0..r5 stay free for the calling convention, r12
    and r13 are codegen scratch — and any interval live across a call is
    assigned a stack slot (there are no callee-saved registers).  With
    [spill_all] (O0) every vreg gets a slot. *)

type location = Preg of Isa.Reg.t | Pslot of int

type assignment = {
  locations : location array;  (** indexed by vreg *)
  slot_sizes : int array;  (** original slots extended with spill slots *)
}

val allocatable : Isa.Reg.t list

val allocate : spill_all:bool -> Ir.fundef -> assignment
