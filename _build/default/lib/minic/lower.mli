(** Lowering from checked MinC ASTs to {!Ir} function definitions.

    Optimisation-level knobs consulted here: [locals_in_slots] (O0 keeps
    scalar locals in stack slots), [unroll_limit] (full unrolling of small
    constant-trip-count [for] loops), [use_jtable] (dense switches become
    jump tables), [fast_float] (float division by a constant becomes a
    multiply). *)

exception Unsupported of string

val lower_function :
  Ast.program -> Layout.t -> Optlevel.options -> Ast.func -> Ir.fundef
