(** Static semantics of MinC.

    Checks name resolution, arity and types of every function in a
    program against locals, globals, other program functions, imports,
    syscall intrinsics and compiler intrinsics.  Lowering assumes a
    checked program and reuses {!expr_type}. *)

exception Type_error of string

type env
(** Typing context for one function body. *)

val check_program : Ast.program -> unit
(** Raises {!Type_error} with a descriptive message. *)

val env_of_function : Ast.program -> Ast.func -> env
val expr_type : env -> Ast.expr -> Ast.ty
(** Type of a well-formed expression; raises {!Type_error} otherwise. *)
