exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

let scratch1 = Isa.Reg.tmp (* r12 *)
let scratch2 = 13

(* fp-relative byte offset of each slot: slot k occupies
   [fp - off(k) - size(k), fp - off(k)). *)
let slot_offsets sizes =
  let n = Array.length sizes in
  let offs = Array.make n 0 in
  let cum = ref 0 in
  for k = 0 to n - 1 do
    cum := !cum + sizes.(k);
    offs.(k) <- - !cum
  done;
  (offs, !cum)

type ctx = {
  loc : Regalloc.location array;
  offs : int array;
  mutable items : Isa.Asm.item list;  (* reversed *)
}

let emit ctx ins = ctx.items <- Isa.Asm.Ins ins :: ctx.items
let label ctx name = ctx.items <- Isa.Asm.Label name :: ctx.items

let slot_off ctx s =
  if s < 0 || s >= Array.length ctx.offs then fail "bad slot %d" s
  else ctx.offs.(s)

(* Register currently holding vreg [v], loading from its slot into
   [scratch] when spilled. *)
let read ctx v ~scratch =
  match ctx.loc.(v) with
  | Regalloc.Preg r -> r
  | Regalloc.Pslot s ->
    emit ctx (Isa.Instr.Load (W8, scratch, Isa.Reg.fp, slot_off ctx s));
    scratch

(* Register codegen may write vreg [v]'s result into. *)
let write_reg ctx v ~scratch =
  match ctx.loc.(v) with Regalloc.Preg r -> r | Regalloc.Pslot _ -> scratch

(* Store the result register back when [v] lives in a slot. *)
let write_back ctx v reg =
  match ctx.loc.(v) with
  | Regalloc.Preg r -> if r <> reg then emit ctx (Isa.Instr.Mov (r, Reg reg))
  | Regalloc.Pslot s ->
    emit ctx (Isa.Instr.Store (W8, reg, Isa.Reg.fp, slot_off ctx s))

let operand ctx (o : Ir.operand) ~scratch : Isa.Instr.operand =
  match o with
  | Ir.Oimm v -> Imm v
  | Ir.Ovreg v -> Reg (read ctx v ~scratch)

let block_label i = Printf.sprintf "B%d" i
let ret_label = "Lret"

let gen_ins ctx call_index (ins : Ir.ins) =
  match ins with
  | Ir.Imov (d, o) ->
    let o = operand ctx o ~scratch:scratch1 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.Mov (rd, o));
    write_back ctx d rd
  | Ir.Ibin (op, d, a, o) ->
    let ra = read ctx a ~scratch:scratch1 in
    let o = operand ctx o ~scratch:scratch2 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.Binop (op, rd, ra, o));
    write_back ctx d rd
  | Ir.Ifbin (op, d, a, b) ->
    let ra = read ctx a ~scratch:scratch1 in
    let rb = read ctx b ~scratch:scratch2 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.Fbinop (op, rd, ra, rb));
    write_back ctx d rd
  | Ir.Ineg (d, a) ->
    let ra = read ctx a ~scratch:scratch1 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.Neg (rd, ra));
    write_back ctx d rd
  | Ir.Inot (d, a) ->
    let ra = read ctx a ~scratch:scratch1 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.Not (rd, ra));
    write_back ctx d rd
  | Ir.Ii2f (d, a) ->
    let ra = read ctx a ~scratch:scratch1 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.I2f (rd, ra));
    write_back ctx d rd
  | Ir.If2i (d, a) ->
    let ra = read ctx a ~scratch:scratch1 in
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.F2i (rd, ra));
    write_back ctx d rd
  | Ir.Iload (w, d, addr, off) ->
    let raddr = read ctx addr ~scratch:scratch1 in
    let rd = write_reg ctx d ~scratch:scratch2 in
    emit ctx (Isa.Instr.Load (w, rd, raddr, off));
    write_back ctx d rd
  | Ir.Istore (w, src, addr, off) ->
    let rsrc = read ctx src ~scratch:scratch1 in
    let raddr = read ctx addr ~scratch:scratch2 in
    emit ctx (Isa.Instr.Store (w, rsrc, raddr, off))
  | Ir.Ilea_slot (d, slot) ->
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx
      (Isa.Instr.Binop
         (Add, rd, Isa.Reg.fp, Imm (Int64.of_int (slot_off ctx slot))));
    write_back ctx d rd
  | Ir.Ilea_data (d, addr) ->
    let rd = write_reg ctx d ~scratch:scratch1 in
    emit ctx (Isa.Instr.Lea (rd, addr));
    write_back ctx d rd
  | Ir.Icall (dst, callee, args) ->
    if List.length args > Isa.Reg.max_args then
      fail "call with too many arguments";
    List.iteri
      (fun i a ->
        match ctx.loc.(a) with
        | Regalloc.Preg r -> emit ctx (Isa.Instr.Mov (Isa.Reg.arg i, Reg r))
        | Regalloc.Pslot s ->
          emit ctx (Isa.Instr.Load (W8, Isa.Reg.arg i, Isa.Reg.fp, slot_off ctx s)))
      args;
    emit ctx (Isa.Instr.Call (call_index callee));
    (match dst with None -> () | Some d -> write_back ctx d Isa.Reg.ret)
  | Ir.Isyscall (dst, n, args) ->
    if List.length args > Isa.Reg.max_args then
      fail "syscall with too many arguments";
    List.iteri
      (fun i a ->
        match ctx.loc.(a) with
        | Regalloc.Preg r -> emit ctx (Isa.Instr.Mov (Isa.Reg.arg i, Reg r))
        | Regalloc.Pslot s ->
          emit ctx (Isa.Instr.Load (W8, Isa.Reg.arg i, Isa.Reg.fp, slot_off ctx s)))
      args;
    emit ctx (Isa.Instr.Syscall n);
    (match dst with None -> () | Some d -> write_back ctx d Isa.Reg.ret)

let gen_term ctx (f : Ir.fundef) bid (term : Ir.terminator) =
  let fallthrough target = target = bid + 1 && target < Array.length f.blocks in
  let jmp_unless_fallthrough target =
    if not (fallthrough target) then emit ctx (Isa.Instr.Jmp (block_label target))
  in
  match term with
  | Ir.Tjmp b -> jmp_unless_fallthrough b
  | Ir.Tbr (c, v, o, bthen, belse) ->
    let rv = read ctx v ~scratch:scratch1 in
    let o = operand ctx o ~scratch:scratch2 in
    emit ctx (Isa.Instr.Cmp (rv, o));
    if fallthrough belse then
      emit ctx (Isa.Instr.Jcc (c, block_label bthen))
    else if fallthrough bthen then
      emit ctx (Isa.Instr.Jcc (Isa.Cond.negate c, block_label belse))
    else begin
      emit ctx (Isa.Instr.Jcc (c, block_label bthen));
      emit ctx (Isa.Instr.Jmp (block_label belse))
    end
  | Ir.Tfbr (c, a, b, bthen, belse) ->
    let ra = read ctx a ~scratch:scratch1 in
    let rb = read ctx b ~scratch:scratch2 in
    emit ctx (Isa.Instr.Fcmp (ra, rb));
    if fallthrough belse then
      emit ctx (Isa.Instr.Jcc (c, block_label bthen))
    else if fallthrough bthen then
      emit ctx (Isa.Instr.Jcc (Isa.Cond.negate c, block_label belse))
    else begin
      emit ctx (Isa.Instr.Jcc (c, block_label bthen));
      emit ctx (Isa.Instr.Jmp (block_label belse))
    end
  | Ir.Tswitch (v, targets, _default) ->
    let rv = read ctx v ~scratch:scratch1 in
    emit ctx (Isa.Instr.Jtable (rv, Array.map block_label targets))
  | Ir.Tret None ->
    if bid <> Array.length f.blocks - 1 then
      emit ctx (Isa.Instr.Jmp ret_label)
  | Ir.Tret (Some v) ->
    (match ctx.loc.(v) with
    | Regalloc.Preg r ->
      if r <> Isa.Reg.ret then emit ctx (Isa.Instr.Mov (Isa.Reg.ret, Reg r))
    | Regalloc.Pslot s ->
      emit ctx (Isa.Instr.Load (W8, Isa.Reg.ret, Isa.Reg.fp, slot_off ctx s)));
    if bid <> Array.length f.blocks - 1 then
      emit ctx (Isa.Instr.Jmp ret_label)
  | Ir.Tunreachable -> ()

let generate ~call_index (assignment : Regalloc.assignment) (f : Ir.fundef) =
  let offs, frame = slot_offsets assignment.slot_sizes in
  let ctx = { loc = assignment.locations; offs; items = [] } in
  (* prologue *)
  emit ctx (Isa.Instr.Push Isa.Reg.fp);
  emit ctx (Isa.Instr.Mov (Isa.Reg.fp, Reg Isa.Reg.sp));
  if frame > 0 then
    emit ctx
      (Isa.Instr.Binop (Sub, Isa.Reg.sp, Isa.Reg.sp, Imm (Int64.of_int frame)));
  (* home the incoming arguments *)
  List.iteri
    (fun i v ->
      match ctx.loc.(v) with
      | Regalloc.Preg r ->
        if r <> Isa.Reg.arg i then emit ctx (Isa.Instr.Mov (r, Reg (Isa.Reg.arg i)))
      | Regalloc.Pslot s ->
        emit ctx (Isa.Instr.Store (W8, Isa.Reg.arg i, Isa.Reg.fp, slot_off ctx s)))
    f.param_vregs;
  (* body *)
  Array.iteri
    (fun bid (blk : Ir.block) ->
      label ctx (block_label bid);
      List.iter (gen_ins ctx call_index) blk.body;
      gen_term ctx f bid blk.term)
    f.blocks;
  (* shared epilogue *)
  label ctx ret_label;
  emit ctx (Isa.Instr.Mov (Isa.Reg.sp, Reg Isa.Reg.fp));
  emit ctx (Isa.Instr.Pop Isa.Reg.fp);
  emit ctx Isa.Instr.Ret;
  List.rev ctx.items
