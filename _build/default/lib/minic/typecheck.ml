exception Type_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = {
  prog : Ast.program;
  fname : string;
  ret : Ast.ty;
  mutable vars : (string * Ast.ty) list;  (** params + locals, innermost first *)
}

let global_type (g : Ast.global) =
  match g.gini with
  | Ast.Gint _ -> Ast.Tint
  | Ast.Gfloat _ -> Ast.Tfloat
  | Ast.Gbytes _ -> Ast.Tptr Ast.Byte
  | Ast.Gwords _ -> Ast.Tptr Ast.Word

let find_global prog name =
  List.find_opt (fun (g : Ast.global) -> g.gname = name) prog.Ast.globals

let find_function prog name =
  List.find_opt (fun (f : Ast.func) -> f.fname = name) prog.Ast.funcs

let var_type env name =
  match List.assoc_opt name env.vars with
  | Some ty -> Some ty
  | None -> (
    match find_global env.prog name with
    | Some g -> Some (global_type g)
    | None -> None)

let callee_signature env name : Builtins.signature =
  match find_function env.prog name with
  | Some f ->
    { Builtins.args = List.map (fun p -> p.Ast.pty) f.params; ret = f.ret }
  | None -> (
    match Builtins.import_signature name with
    | Some s -> s
    | None -> (
      match Builtins.syscall_signature name with
      | Some (_, s) -> s
      | None -> (
        match Builtins.intrinsic_signature name with
        | Some s -> s
        | None -> fail "%s: call to unknown function %s" env.fname name)))

let is_numeric = function
  | Ast.Tint | Ast.Tfloat -> true
  | Ast.Tptr _ | Ast.Tvoid -> false

let rec expr_type env (e : Ast.expr) : Ast.ty =
  match e with
  | Eint _ -> Tint
  | Efloat _ -> Tfloat
  | Estr _ -> Tptr Byte
  | Evar name -> (
    match var_type env name with
    | Some ty -> ty
    | None -> fail "%s: unknown variable %s" env.fname name)
  | Eindex (base, idx) -> begin
    (match expr_type env idx with
    | Tint -> ()
    | ty -> fail "%s: index must be int, got %s" env.fname (Ast.ty_to_string ty));
    match expr_type env base with
    | Tptr Byte -> Tint  (* bytes load as zero-extended ints *)
    | Tptr Word -> Tint
    | ty -> fail "%s: cannot index %s" env.fname (Ast.ty_to_string ty)
  end
  | Eaddr (base, idx) -> begin
    (match expr_type env idx with
    | Tint -> ()
    | ty -> fail "%s: index must be int, got %s" env.fname (Ast.ty_to_string ty));
    match expr_type env base with
    | Tptr elem -> Tptr elem
    | ty -> fail "%s: cannot take address into %s" env.fname (Ast.ty_to_string ty)
  end
  | Eunop (_, e) -> begin
    match expr_type env e with
    | Tint -> Tint
    | ty -> fail "%s: unary operator needs int, got %s" env.fname (Ast.ty_to_string ty)
  end
  | Ebinop (op, a, b) -> begin
    let ta = expr_type env a in
    let tb = expr_type env b in
    match op with
    | Badd | Bsub | Bmul | Bdiv -> begin
      match (ta, tb) with
      | Tint, Tint -> Tint
      | Tfloat, Tfloat -> Tfloat
      | _, _ ->
        fail "%s: arithmetic needs matching numeric types (%s vs %s)" env.fname
          (Ast.ty_to_string ta) (Ast.ty_to_string tb)
    end
    | Brem | Bandb | Borb | Bxor | Bshl | Bshr -> begin
      match (ta, tb) with
      | Tint, Tint -> Tint
      | _, _ ->
        fail "%s: bitwise/shift needs ints (%s vs %s)" env.fname
          (Ast.ty_to_string ta) (Ast.ty_to_string tb)
    end
    | Beq | Bne | Blt | Ble | Bgt | Bge ->
      if ta = tb && (is_numeric ta || (match ta with Tptr _ -> true | _ -> false))
      then Tint
      else
        fail "%s: comparison needs matching types (%s vs %s)" env.fname
          (Ast.ty_to_string ta) (Ast.ty_to_string tb)
    | Bland | Blor -> begin
      match (ta, tb) with
      | Tint, Tint -> Tint
      | _, _ -> fail "%s: logical operator needs ints" env.fname
    end
  end
  | Ecall (name, args) ->
    let sg = callee_signature env name in
    if List.length args <> List.length sg.args then
      fail "%s: %s expects %d arguments, got %d" env.fname name
        (List.length sg.args) (List.length args);
    List.iter2
      (fun arg expected ->
        let actual = expr_type env arg in
        (* byte* plays the role of void*: any pointer converts to it *)
        let compatible =
          actual = expected
          ||
          match (expected, actual) with
          | Ast.Tptr Ast.Byte, Ast.Tptr _ -> true
          | (Ast.Tint | Ast.Tfloat | Ast.Tvoid | Ast.Tptr _), _ -> false
        in
        if not compatible then
          fail "%s: argument of %s has type %s, expected %s" env.fname name
            (Ast.ty_to_string actual) (Ast.ty_to_string expected))
      args sg.args;
    sg.ret

let rec check_stmt env ~in_loop (s : Ast.stmt) =
  match s with
  | Sdecl (name, ty, init) ->
    (match ty with
    | Tvoid -> fail "%s: variable %s cannot be void" env.fname name
    | Tint | Tfloat | Tptr _ -> ());
    (match init with
    | None -> ()
    | Some e ->
      let te = expr_type env e in
      if te <> ty then
        fail "%s: initialiser of %s has type %s, expected %s" env.fname name
          (Ast.ty_to_string te) (Ast.ty_to_string ty));
    env.vars <- (name, ty) :: env.vars
  | Sarray (name, elem, size) ->
    if size <= 0 then fail "%s: array %s must have positive size" env.fname name;
    env.vars <- (name, Ast.Tptr elem) :: env.vars
  | Sassign (name, e) -> begin
    match var_type env name with
    | None -> fail "%s: assignment to unknown variable %s" env.fname name
    | Some ty ->
      let te = expr_type env e in
      if te <> ty then
        fail "%s: assigning %s to %s of type %s" env.fname (Ast.ty_to_string te)
          name (Ast.ty_to_string ty)
  end
  | Sindexset (base, idx, e) -> begin
    (match expr_type env idx with
    | Tint -> ()
    | ty -> fail "%s: index must be int, got %s" env.fname (Ast.ty_to_string ty));
    (match expr_type env base with
    | Tptr _ -> ()
    | ty -> fail "%s: cannot index %s" env.fname (Ast.ty_to_string ty));
    match expr_type env e with
    | Tint -> ()
    | ty -> fail "%s: stored value must be int, got %s" env.fname (Ast.ty_to_string ty)
  end
  | Sif (cond, thens, elses) ->
    check_cond env cond;
    check_body env ~in_loop thens;
    check_body env ~in_loop elses
  | Swhile (cond, body) ->
    check_cond env cond;
    check_body env ~in_loop:true body
  | Sfor (v, start, bound, step, body) ->
    (match expr_type env start with
    | Tint -> ()
    | ty -> fail "%s: for start must be int, got %s" env.fname (Ast.ty_to_string ty));
    (match expr_type env bound with
    | Tint -> ()
    | ty -> fail "%s: for bound must be int, got %s" env.fname (Ast.ty_to_string ty));
    (match expr_type env step with
    | Tint -> ()
    | ty -> fail "%s: for step must be int, got %s" env.fname (Ast.ty_to_string ty));
    let saved = env.vars in
    env.vars <- (v, Ast.Tint) :: env.vars;
    check_body env ~in_loop:true body;
    env.vars <- saved
  | Sswitch (e, cases, default) ->
    (match expr_type env e with
    | Tint -> ()
    | ty -> fail "%s: switch needs int, got %s" env.fname (Ast.ty_to_string ty));
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (v, body) ->
        if Hashtbl.mem seen v then fail "%s: duplicate case %Ld" env.fname v;
        Hashtbl.add seen v ();
        check_body env ~in_loop body)
      cases;
    check_body env ~in_loop default
  | Sreturn None ->
    if env.ret <> Ast.Tvoid then
      fail "%s: return without value in non-void function" env.fname
  | Sreturn (Some e) ->
    let te = expr_type env e in
    if te <> env.ret then
      fail "%s: returning %s, expected %s" env.fname (Ast.ty_to_string te)
        (Ast.ty_to_string env.ret)
  | Sbreak -> if not in_loop then fail "%s: break outside loop" env.fname
  | Scontinue -> if not in_loop then fail "%s: continue outside loop" env.fname
  | Sexpr e -> ignore (expr_type env e)

and check_cond env cond =
  match expr_type env cond with
  | Tint -> ()
  | ty -> fail "%s: condition must be int, got %s" env.fname (Ast.ty_to_string ty)

and check_body env ~in_loop body =
  (* Declarations are scoped to the enclosing block. *)
  let saved = env.vars in
  List.iter (check_stmt env ~in_loop) body;
  env.vars <- saved

let env_of_function prog (f : Ast.func) =
  {
    prog;
    fname = f.fname;
    ret = f.ret;
    vars = List.map (fun (p : Ast.param) -> (p.pname, p.pty)) f.params;
  }

let check_function prog (f : Ast.func) =
  if List.length f.params > Isa.Reg.max_args then
    fail "%s: too many parameters (max %d)" f.fname Isa.Reg.max_args;
  let env = env_of_function prog f in
  check_body env ~in_loop:false f.body

let check_program prog =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem seen g.gname then fail "duplicate global %s" g.gname;
      Hashtbl.add seen g.gname ())
    prog.Ast.globals;
  let seen_f = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem seen_f f.fname then fail "duplicate function %s" f.fname;
      Hashtbl.add seen_f f.fname ())
    prog.Ast.funcs;
  List.iter (check_function prog) prog.Ast.funcs
