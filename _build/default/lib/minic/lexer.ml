type token =
  | Tident of string
  | Tint_lit of int64
  | Tfloat_lit of float
  | Tstring_lit of string
  | Tkw of string
  | Tpunct of string
  | Teof

exception Lex_error of int * string

type t = {
  src : string;
  mutable pos : int;
  mutable line_no : int;
  mutable lookahead : token option;
}

let keywords =
  [
    "lib"; "global"; "fn"; "var"; "if"; "else"; "while"; "for"; "switch";
    "case"; "default"; "return"; "break"; "continue"; "int"; "float"; "byte";
    "word"; "void";
  ]

let of_string src = { src; pos = 0; line_no = 1; lookahead = None }

let fail t fmt = Format.kasprintf (fun s -> raise (Lex_error (t.line_no, s))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  (match peek_char t with Some '\n' -> t.line_no <- t.line_no + 1 | _ -> ());
  t.pos <- t.pos + 1

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
    while peek_char t <> None && peek_char t <> Some '\n' do
      advance t
    done;
    skip_ws t
  | Some _ | None -> ()

let lex_ident t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_ident c | None -> false) do
    advance t
  done;
  let s = String.sub t.src start (t.pos - start) in
  if List.mem s keywords then Tkw s else Tident s

(* Numbers: decimal or 0x hex integers; floats only in OCaml hex-float
   notation (as emitted by the pretty-printer) or simple decimal-point
   form. *)
let lex_number t =
  let start = t.pos in
  if
    peek_char t = Some '0'
    && t.pos + 1 < String.length t.src
    && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
  then begin
    advance t;
    advance t;
    let hstart = t.pos in
    while
      match peek_char t with
      | Some c -> is_hex c || c = '.' || c = 'p' || c = '+' || c = '-'
      | None -> false
    do
      advance t
    done;
    let text = String.sub t.src start (t.pos - start) in
    let digits = String.sub t.src hstart (t.pos - hstart) in
    if String.contains digits '.' || String.contains digits 'p' then
      match float_of_string_opt text with
      | Some f -> Tfloat_lit f
      | None -> fail t "bad hex float %S" text
    else begin
      match Int64.of_string_opt text with
      | Some v -> Tint_lit v
      | None -> fail t "bad hex integer %S" text
    end
  end
  else begin
    while (match peek_char t with Some c -> is_digit c | None -> false) do
      advance t
    done;
    let is_float =
      peek_char t = Some '.'
      && t.pos + 1 < String.length t.src
      && is_digit t.src.[t.pos + 1]
    in
    if is_float then begin
      advance t;
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done;
      let text = String.sub t.src start (t.pos - start) in
      Tfloat_lit (float_of_string text)
    end
    else begin
      let text = String.sub t.src start (t.pos - start) in
      match Int64.of_string_opt text with
      | Some v -> Tint_lit v
      | None -> fail t "bad integer %S" text
    end
  end

let lex_string t =
  advance t;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char t with
    | None -> fail t "unterminated string"
    | Some '"' -> advance t
    | Some '\\' -> begin
      advance t;
      (match peek_char t with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some 'x' ->
        advance t;
        let h1 = match peek_char t with Some c -> c | None -> fail t "bad \\x" in
        advance t;
        let h2 = match peek_char t with Some c -> c | None -> fail t "bad \\x" in
        let v = int_of_string (Printf.sprintf "0x%c%c" h1 h2) in
        Buffer.add_char buf (Char.chr v)
      | Some c -> fail t "bad escape \\%c" c
      | None -> fail t "unterminated escape");
      advance t;
      loop ()
    end
    | Some c ->
      Buffer.add_char buf c;
      advance t;
      loop ()
  in
  loop ();
  Tstring_lit (Buffer.contents buf)

let two_char_puncts =
  [ "=="; "!="; "<="; ">="; "<<"; ">>"; "&&"; "||" ]

let lex_punct t =
  let c1 = t.src.[t.pos] in
  let two =
    if t.pos + 1 < String.length t.src then
      Printf.sprintf "%c%c" c1 t.src.[t.pos + 1]
    else ""
  in
  if List.mem two two_char_puncts then begin
    advance t;
    advance t;
    Tpunct two
  end
  else begin
    advance t;
    Tpunct (String.make 1 c1)
  end

let lex_token t =
  skip_ws t;
  match peek_char t with
  | None -> Teof
  | Some c when is_ident_start c -> lex_ident t
  | Some c when is_digit c -> lex_number t
  | Some '"' -> lex_string t
  | Some
      ( '(' | ')' | '{' | '}' | '[' | ']' | ';' | ':' | ',' | '=' | '+' | '-'
      | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '<' | '>' | '!' ) ->
    lex_punct t
  | Some c -> fail t "unexpected character %C" c

let peek t =
  match t.lookahead with
  | Some tok -> tok
  | None ->
    let tok = lex_token t in
    t.lookahead <- Some tok;
    tok

let next t =
  match t.lookahead with
  | Some tok ->
    t.lookahead <- None;
    tok
  | None -> lex_token t

let line t = t.line_no

let token_to_string = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint_lit v -> Printf.sprintf "integer %Ld" v
  | Tfloat_lit f -> Printf.sprintf "float %g" f
  | Tstring_lit s -> Printf.sprintf "string %S" s
  | Tkw s -> Printf.sprintf "keyword %S" s
  | Tpunct s -> Printf.sprintf "%S" s
  | Teof -> "end of input"
