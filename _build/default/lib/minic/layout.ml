type t = {
  base : int64;
  buf : Buffer.t;
  globals : (string, int64) Hashtbl.t;
  global_order : string list ref;
  strings : (string, int64) Hashtbl.t;
  string_ranges : (int64 * int) list ref;
}

let align8 buf =
  while Buffer.length buf mod 8 <> 0 do
    Buffer.add_char buf '\000'
  done

let add_u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let create ?(base = Loader.Image.data_base_default) (prog : Ast.program) =
  let t =
    {
      base;
      buf = Buffer.create 1024;
      globals = Hashtbl.create 16;
      global_order = ref [];
      strings = Hashtbl.create 16;
      string_ranges = ref [];
    }
  in
  List.iter
    (fun (g : Ast.global) ->
      align8 t.buf;
      let addr = Int64.add base (Int64.of_int (Buffer.length t.buf)) in
      Hashtbl.replace t.globals g.gname addr;
      t.global_order := g.gname :: !(t.global_order);
      match g.gini with
      | Ast.Gint v -> add_u64 t.buf v
      | Ast.Gfloat f -> add_u64 t.buf (Int64.bits_of_float f)
      | Ast.Gbytes (size, init) ->
        let n = String.length init in
        (* byte arrays with a text initialiser behave like string data;
           record them so the num_string feature sees references to them *)
        if n > 0 then t.string_ranges := (addr, size) :: !(t.string_ranges);
        Buffer.add_string t.buf init;
        for _ = n to size - 1 do
          Buffer.add_char t.buf '\000'
        done
      | Ast.Gwords (size, init) ->
        List.iter (add_u64 t.buf) init;
        for _ = List.length init to size - 1 do
          add_u64 t.buf 0L
        done)
    prog.Ast.globals;
  t

let global_addr t name = Hashtbl.find t.globals name

let intern_string t s =
  match Hashtbl.find_opt t.strings s with
  | Some addr -> addr
  | None ->
    align8 t.buf;
    let addr = Int64.add t.base (Int64.of_int (Buffer.length t.buf)) in
    Buffer.add_string t.buf s;
    Buffer.add_char t.buf '\000';
    Hashtbl.replace t.strings s addr;
    t.string_ranges := (addr, String.length s + 1) :: !(t.string_ranges);
    addr

let finish t =
  let data = Buffer.to_bytes t.buf in
  let strings = Array.of_list (List.rev !(t.string_ranges)) in
  let globals =
    Array.of_list
      (List.rev_map (fun name -> (name, Hashtbl.find t.globals name))
         !(t.global_order))
  in
  (data, strings, globals)
