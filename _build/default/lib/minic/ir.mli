(** Intermediate representation: virtual-register three-address code over
    explicit basic blocks.  Produced by {!Lower}, transformed by {!Opt},
    consumed by {!Codegen}. *)

type vreg = int

type operand = Ovreg of vreg | Oimm of int64

type callee = Cinternal of string | Cimport of string

type ins =
  | Imov of vreg * operand
  | Ibin of Isa.Instr.binop * vreg * vreg * operand
  | Ifbin of Isa.Instr.fbinop * vreg * vreg * vreg
  | Ineg of vreg * vreg
  | Inot of vreg * vreg
  | Ii2f of vreg * vreg
  | If2i of vreg * vreg
  | Iload of Isa.Instr.width * vreg * vreg * int
  | Istore of Isa.Instr.width * vreg * vreg * int
      (** [Istore (w, src, addr, off)] *)
  | Ilea_slot of vreg * int  (** address of stack slot *)
  | Ilea_data of vreg * int64  (** absolute data-section address *)
  | Icall of vreg option * callee * vreg list
  | Isyscall of vreg option * int * vreg list

type terminator =
  | Tjmp of int
  | Tbr of Isa.Cond.t * vreg * operand * int * int
      (** compare-and-branch: then-block, else-block *)
  | Tfbr of Isa.Cond.t * vreg * vreg * int * int
  | Tswitch of vreg * int array * int
      (** normalised jump table and (unreachable) default *)
  | Tret of vreg option
  | Tunreachable  (** after a no-return call *)

type block = { mutable body : ins list; mutable term : terminator }

type fundef = {
  name : string;
  nparams : int;
  param_vregs : vreg list;
  mutable nvregs : int;
  mutable blocks : block array;
  mutable slot_sizes : int array;  (** byte size of each stack slot *)
}

val defs : ins -> vreg list
val uses : ins -> vreg list
val term_uses : terminator -> vreg list
val successors : terminator -> int list
val map_successors : (int -> int) -> terminator -> terminator

val has_side_effect : ins -> bool
(** Calls, syscalls and stores; everything else is removable when its
    definitions are dead. *)

val fresh_vreg : fundef -> vreg
val add_slot : fundef -> int -> int
(** [add_slot f size] returns the new slot's id. *)

val instruction_count : fundef -> int
val pp_fundef : Format.formatter -> fundef -> unit
