(** Recursive-descent parser for MinC.

    The grammar is exactly what {!Ast.pp_program} emits, so
    [parse (Ast.program_to_string p)] reproduces [p]. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> Ast.program
val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests). *)
