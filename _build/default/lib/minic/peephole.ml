let is_noop_ins (ins : string Isa.Instr.t) =
  match ins with
  | Mov (d, Reg s) -> d = s
  | Binop ((Add | Sub | Or | Xor | Shl | Shr), d, a, Imm 0L) -> d = a
  | Nop -> true
  | Mov (_, Imm _) | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
  | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _
  | Call _ | Ret | Push _ | Pop _ | Syscall _ ->
    false

(* does the item list start with labels followed by [target]? *)
let rec jump_lands_next target (items : Isa.Asm.item list) =
  match items with
  | Isa.Asm.Label l :: rest -> l = target || jump_lands_next target rest
  | Isa.Asm.Ins _ :: _ | [] -> false

let rec rewrite (items : Isa.Asm.item list) =
  match items with
  | [] -> []
  | Isa.Asm.Ins ins :: rest when is_noop_ins ins -> rewrite rest
  | Isa.Asm.Ins (Jmp target) :: rest when jump_lands_next target rest ->
    rewrite rest
  | Isa.Asm.Ins (Push a) :: Isa.Asm.Ins (Pop b) :: rest when a = b ->
    rewrite rest
  | Isa.Asm.Ins (Store (W8, src, base, off))
    :: Isa.Asm.Ins (Load (W8, dst, base', off'))
    :: rest
    when base = base' && off = off' && src = dst ->
    (* the stored value is still in [src]; keep the store, drop the
       reload *)
    Isa.Asm.Ins (Store (W8, src, base, off)) :: rewrite rest
  | item :: rest -> item :: rewrite rest

let run items =
  let rec fixpoint items =
    let next = rewrite items in
    if List.length next = List.length items then next else fixpoint next
  in
  fixpoint items
