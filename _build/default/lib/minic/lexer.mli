(** Hand-written lexer for MinC source text. *)

type token =
  | Tident of string
  | Tint_lit of int64
  | Tfloat_lit of float
  | Tstring_lit of string
  | Tkw of string  (** lib, global, fn, var, if, else, while, for, switch,
                       case, default, return, break, continue, int, float,
                       byte, word, void *)
  | Tpunct of string  (** operators and delimiters *)
  | Teof

exception Lex_error of int * string
(** Line number and message. *)

type t

val of_string : string -> t
val peek : t -> token
val next : t -> token
val line : t -> int
val token_to_string : token -> string
