(** Optimisation levels mirroring the paper's Clang configurations
    (O0, O1, O2, O3, Oz, Ofast) as concrete pass/knob selections. *)

type level = O0 | O1 | O2 | O3 | Oz | Ofast

type options = {
  fold : bool;  (** block-local constant folding and copy propagation *)
  dce : bool;  (** dead-code elimination *)
  cse : bool;  (** block-local common-subexpression elimination *)
  simplify : bool;  (** CFG simplification (jump threading, merging) *)
  strength : bool;  (** strength reduction and algebraic identities *)
  inline_limit : int;  (** max callee IR size to inline; 0 disables *)
  unroll_limit : int;  (** max constant trip count to fully unroll; 0 off *)
  fast_float : bool;  (** Ofast: divide-by-constant as multiply *)
  locals_in_slots : bool;  (** O0: scalar locals live in stack slots *)
  spill_all : bool;  (** O0: no register allocation *)
  use_jtable : bool;  (** lower dense switches to jump tables *)
  peephole : bool;  (** post-codegen peephole cleanup *)
  licm : bool;  (** loop-invariant code motion (O3/Ofast) *)
}

val all : level list
val of_level : level -> options
val to_string : level -> string
val of_string : string -> level option
