type location = Preg of Isa.Reg.t | Pslot of int

type assignment = {
  locations : location array;
  slot_sizes : int array;
}

let allocatable = [ 6; 7; 8; 9; 10; 11 ]

type interval = {
  vreg : int;
  mutable lo : int;
  mutable hi : int;
}

(* Linear positions: block i instructions occupy a contiguous range;
   the terminator counts as one position. *)
let linearise (f : Ir.fundef) =
  let starts = Array.make (Array.length f.blocks) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i (blk : Ir.block) ->
      starts.(i) <- !pos;
      pos := !pos + List.length blk.body + 1)
    f.blocks;
  (starts, !pos)

module Iset = Set.Make (Int)

let block_use_def (blk : Ir.block) =
  let use = ref Iset.empty and def = ref Iset.empty in
  List.iter
    (fun ins ->
      List.iter
        (fun v -> if not (Iset.mem v !def) then use := Iset.add v !use)
        (Ir.uses ins);
      List.iter (fun v -> def := Iset.add v !def) (Ir.defs ins))
    blk.body;
  List.iter
    (fun v -> if not (Iset.mem v !def) then use := Iset.add v !use)
    (Ir.term_uses blk.term);
  (!use, !def)

let liveness (f : Ir.fundef) =
  let n = Array.length f.blocks in
  let use_def = Array.map block_use_def f.blocks in
  let live_in = Array.make n Iset.empty in
  let live_out = Array.make n Iset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Iset.union acc live_in.(s))
          Iset.empty
          (Ir.successors f.blocks.(i).term)
      in
      let use, def = use_def.(i) in
      let inn = Iset.union use (Iset.diff out def) in
      if not (Iset.equal out live_out.(i)) || not (Iset.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let build_intervals (f : Ir.fundef) =
  let starts, total = linearise f in
  let live_in, live_out = liveness f in
  let table : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch v pos =
    match Hashtbl.find_opt table v with
    | Some iv ->
      if pos < iv.lo then iv.lo <- pos;
      if pos > iv.hi then iv.hi <- pos
    | None -> Hashtbl.replace table v { vreg = v; lo = pos; hi = pos }
  in
  (* parameters are defined at entry *)
  List.iter (fun v -> touch v 0) f.param_vregs;
  let calls = ref [] in
  Array.iteri
    (fun i (blk : Ir.block) ->
      let base = starts.(i) in
      let block_end = base + List.length blk.body in
      Iset.iter (fun v -> touch v base) live_in.(i);
      Iset.iter (fun v -> touch v block_end) live_out.(i);
      List.iteri
        (fun k ins ->
          let pos = base + k in
          List.iter (fun v -> touch v pos) (Ir.uses ins);
          List.iter (fun v -> touch v pos) (Ir.defs ins);
          match ins with
          | Ir.Icall _ | Ir.Isyscall _ -> calls := pos :: !calls
          | Ir.Imov _ | Ibin _ | Ifbin _ | Ineg _ | Inot _ | Ii2f _ | If2i _
          | Iload _ | Istore _ | Ilea_slot _ | Ilea_data _ ->
            ())
        blk.body;
      List.iter (fun v -> touch v block_end) (Ir.term_uses blk.term))
    f.blocks;
  let intervals =
    Hashtbl.fold (fun _ iv acc -> iv :: acc) table []
    |> List.sort (fun a b -> compare (a.lo, a.vreg) (b.lo, b.vreg))
  in
  (intervals, List.rev !calls, total)

let crosses_call calls iv =
  List.exists (fun c -> iv.lo < c && iv.hi > c) calls

let allocate ~spill_all (f : Ir.fundef) =
  let locations = Array.make (max f.nvregs 1) (Pslot (-1)) in
  let slot_sizes = ref (Array.to_list f.slot_sizes) in
  let nslots = ref (Array.length f.slot_sizes) in
  let new_spill () =
    let id = !nslots in
    incr nslots;
    slot_sizes := !slot_sizes @ [ 8 ];
    id
  in
  let intervals, calls, _total = build_intervals f in
  if spill_all then
    List.iter (fun iv -> locations.(iv.vreg) <- Pslot (new_spill ())) intervals
  else begin
    let active : (interval * Isa.Reg.t) list ref = ref [] in
    let free = ref allocatable in
    List.iter
      (fun iv ->
        (* expire finished intervals *)
        let still, done_ =
          List.partition (fun (a, _) -> a.hi >= iv.lo) !active
        in
        active := still;
        List.iter (fun (_, r) -> free := r :: !free) done_;
        if crosses_call calls iv then
          locations.(iv.vreg) <- Pslot (new_spill ())
        else begin
          match !free with
          | r :: rest ->
            free := rest;
            locations.(iv.vreg) <- Preg r;
            active := (iv, r) :: !active
          | [] ->
            (* spill the active interval ending last *)
            let victim, vr =
              List.fold_left
                (fun (bi, br) (a, r) -> if a.hi > bi.hi then (a, r) else (bi, br))
                (iv, -1) !active
            in
            if vr >= 0 && victim.hi > iv.hi then begin
              locations.(victim.vreg) <- Pslot (new_spill ());
              active := (iv, vr) :: List.filter (fun (a, _) -> a != victim) !active;
              locations.(iv.vreg) <- Preg vr
            end
            else locations.(iv.vreg) <- Pslot (new_spill ())
        end)
      intervals
  end;
  (* vregs with no occurrences (e.g. unused parameters) still need a home *)
  Array.iteri
    (fun v loc ->
      match loc with
      | Pslot -1 -> locations.(v) <- Pslot (new_spill ())
      | Pslot _ | Preg _ -> ())
    locations;
  { locations; slot_sizes = Array.of_list !slot_sizes }
