(** IR optimisation passes.  All passes mutate the fundef in place.

    [run] applies the passes selected by the options in a fixed order:
    inlining (callee lookup via [resolve]), then two rounds of constant
    folding / copy propagation, CSE, strength reduction, dead-code
    elimination and CFG simplification. *)

val fold_constants : Ir.fundef -> unit
val strength_reduce : Ir.fundef -> unit
val cse : Ir.fundef -> unit
val dce : Ir.fundef -> unit
val simplify_cfg : Ir.fundef -> unit
val inline_calls : limit:int -> resolve:(string -> Ir.fundef option) -> Ir.fundef -> unit
val licm : Ir.fundef -> unit
(** Loop-invariant code motion: hoists pure, non-trapping, single-definition
    computations whose operands are loop-invariant into a fresh preheader. *)

val run :
  Optlevel.options -> resolve:(string -> Ir.fundef option) -> Ir.fundef -> unit
