(** Code generation: allocated IR to symbolic assembly.

    Emits the standard frame (push fp / mov fp,sp / sub sp), moves incoming
    arguments from r0..r5 to their homes, lowers each IR block under its
    label, and routes every return through a single shared epilogue.
    The call-table mapping from callee to index is provided by the
    {!Compiler} linker. *)

exception Codegen_error of string

val generate :
  call_index:(Ir.callee -> int) ->
  Regalloc.assignment ->
  Ir.fundef ->
  Isa.Asm.item list
