(** Synthetic library generator — the stand-in for the paper's 100 Android
    libraries.  Each library draws a set of template-family instances, a
    few wrapper functions that call them (so call graphs and inlining are
    exercised), and library-local globals.  Generation is deterministic in
    the seed. *)

val generate : seed:int64 -> index:int -> nfuncs:int -> Minic.Ast.program
(** A library named [libNN] with roughly [nfuncs] functions. *)

val with_cves :
  Minic.Ast.program -> (Cves.t * bool) list -> Minic.Ast.program
(** Append CVE functions ([true] = patched version) to a library. *)

val library_name : int -> string
