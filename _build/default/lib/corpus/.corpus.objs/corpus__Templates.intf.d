lib/corpus/templates.mli: Fuzz Minic Util
