lib/corpus/devices.ml: Array Cves Genlib Isa List Loader Minic
