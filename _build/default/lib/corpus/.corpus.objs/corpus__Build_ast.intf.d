lib/corpus/build_ast.mli: Minic
