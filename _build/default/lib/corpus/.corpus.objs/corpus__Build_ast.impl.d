lib/corpus/build_ast.ml: Int64 List Minic
