lib/corpus/genlib.ml: Array Build_ast Cves Fuzz Int64 List Minic Printf Templates Util
