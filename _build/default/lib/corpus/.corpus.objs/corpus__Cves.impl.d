lib/corpus/cves.ml: Build_ast Fuzz Int64 List Minic String Util
