lib/corpus/dataset.mli: Cves Isa Loader Minic Nn
