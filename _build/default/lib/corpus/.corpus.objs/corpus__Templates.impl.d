lib/corpus/templates.ml: Build_ast Fuzz Int64 List Minic Util
