lib/corpus/devices.mli: Cves Isa Loader Minic
