lib/corpus/genlib.mli: Cves Minic
