lib/corpus/dataset.ml: Array Cves Genlib Isa List Loader Minic Nn Staticfeat Util
