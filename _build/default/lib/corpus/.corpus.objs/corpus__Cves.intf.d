lib/corpus/cves.mli: Fuzz Minic
