type device = {
  device_name : string;
  arch : Isa.Arch.t;
  opt : Minic.Optlevel.level;
  os_version : string;
  security_patch : string;
  is_patched : string -> bool;
}

(* Ground truth of Table VIII (Android Things): 10 of the 25 CVEs are
   patched. *)
let things_patched =
  [
    "CVE-2017-13232"; "CVE-2017-13210"; "CVE-2017-13209"; "CVE-2017-13252";
    "CVE-2017-13253"; "CVE-2017-13278"; "CVE-2017-13208"; "CVE-2017-13279";
    "CVE-2017-13180"; "CVE-2017-13182";
  ]

(* The Pixel 2 XL image carries an older (07/2017) patch level: only the
   earliest 2017 issues are fixed. *)
let pixel_patched =
  [ "CVE-2017-13208"; "CVE-2017-13209"; "CVE-2017-13210"; "CVE-2017-13232" ]

let android_things =
  {
    device_name = "Android Things 1.0";
    arch = Isa.Arch.Arm32;
    opt = Minic.Optlevel.O2;
    os_version = "Android Things 1.0";
    security_patch = "2018-05";
    is_patched = (fun id -> List.mem id things_patched);
  }

let pixel2xl =
  {
    device_name = "Google Pixel 2 XL";
    arch = Isa.Arch.Arm64;
    opt = Minic.Optlevel.Ofast;
    os_version = "Android 8.0";
    security_patch = "2017-07";
    is_patched = (fun id -> List.mem id pixel_patched);
  }

let all = [ android_things; pixel2xl ]

type truth = {
  cve : Cves.t;
  image_name : string;
  findex : int;
  patched : bool;
}

let cve_lib_count = 5

let build_firmware ?(seed = 0xF1A5L) ?(nlibs = 6) ?(nfuncs_base = 28) device =
  let nlibs = max nlibs cve_lib_count in
  let truths = ref [] in
  let images =
    Array.init nlibs (fun idx ->
        (* library sizes vary, echoing the paper's 116..13729 spread *)
        let nfuncs = nfuncs_base + (idx * 7) in
        let base = Genlib.generate ~seed ~index:idx ~nfuncs in
        let hosted =
          List.filter (fun (c : Cves.t) -> c.host_library = idx) Cves.all
        in
        let prog =
          Genlib.with_cves base
            (List.map (fun c -> (c, device.is_patched c.Cves.id)) hosted)
        in
        let img = Minic.Compiler.compile ~arch:device.arch ~opt:device.opt prog in
        List.iter
          (fun (c : Cves.t) ->
            match Loader.Image.find_function img c.fname with
            | Some findex ->
              truths :=
                {
                  cve = c;
                  image_name = prog.Minic.Ast.pname;
                  findex;
                  patched = device.is_patched c.id;
                }
                :: !truths
            | None -> ())
          hosted;
        img)
  in
  let firmware =
    {
      Loader.Firmware.device = device.device_name;
      os_version = device.os_version;
      security_patch = device.security_patch;
      images;
    }
  in
  (firmware, List.rev !truths)
