(** Function templates: parameterised generators covering the kinds of
    code the paper's 100 Android libraries contain (codecs, parsers,
    checksums, string and maths kernels, state machines, device pokes).
    Each draw from the generator varies constants, loop shapes and
    optional branches, so two instances of one family are related but not
    identical — realistic hard negatives for the similarity model. *)

type family = {
  name : string;  (** family tag used in generated function names *)
  make : Util.Prng.t -> fname:string -> Minic.Ast.func;
  shape : Fuzz.Shape.t;  (** fuzzable prototype of generated instances *)
}

val all : family list
(** Every template family. *)

val find : string -> family option
