(** Small combinators for building MinC ASTs programmatically — the
    corpus generator's vocabulary. *)

open Minic.Ast

val i : int -> expr
val i64 : int64 -> expr
val v : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( ^: ) : expr -> expr -> expr
val ( &: ) : expr -> expr -> expr
val ( |: ) : expr -> expr -> expr
val ( <<: ) : expr -> expr -> expr
val ( >>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val idx : expr -> expr -> expr
val addr : expr -> expr -> expr
val call : string -> expr list -> expr

val let_ : string -> ty -> expr -> stmt
val letbuf : string -> elem -> int -> stmt
val set : string -> expr -> stmt
val setidx : expr -> expr -> expr -> stmt
val if_ : expr -> stmt list -> stmt
val ifelse : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
(** step 1 *)

val ret : expr -> stmt
val ret_void : stmt
val expr : expr -> stmt

val fn : string -> (string * ty) list -> ty -> stmt list -> func
