open Build_ast
open Minic.Ast

let library_name index = Printf.sprintf "lib%02d" index

(* Functions with the (byte*, int) -> int prototype can be composed by
   wrappers. *)
let byte_buf_families =
  List.filter
    (fun f -> f.Templates.shape = [ Fuzz.Shape.Abuf 64; Fuzz.Shape.Alen ])
    Templates.all

let make_globals rng index =
  let bias = Util.Prng.int_in rng 1 100 in
  let table =
    List.init 8 (fun k -> Int64.of_int ((k * Util.Prng.int_in rng 3 17) + bias))
  in
  [
    { gname = "g_counter"; gini = Gint (Int64.of_int bias) };
    { gname = "g_table"; gini = Gwords (8, table) };
    {
      gname = "g_banner";
      gini = Gbytes (24, Printf.sprintf "lib%02d-build-%d" index bias);
    };
  ]

(* Library-local helpers that touch the globals. *)
let global_helpers rng =
  let step = Util.Prng.int_in rng 1 7 in
  [
    fn "lib_tick" [] Tint
      [
        set "g_counter" (v "g_counter" +: i step);
        ret (v "g_counter");
      ];
    fn "lib_lookup"
      [ ("k", Tint) ]
      Tint
      [ ret (idx (v "g_table") (v "k" %: i 8)) ];
    fn "lib_banner_len" [] Tint [ ret (call "strlen" [ v "g_banner" ]) ];
  ]

let make_wrapper rng ~fname callees =
  match callees with
  | [ a; b ] ->
    let use_branch = Util.Prng.bool rng in
    let threshold = Util.Prng.int_in rng 2 40 in
    if use_branch then
      fn fname
        [ ("data", Tptr Byte); ("len", Tint) ]
        Tint
        [
          ifelse
            (v "len" >: i threshold)
            [ ret (call a [ v "data"; v "len" ]) ]
            [ ret (call b [ v "data"; v "len" ]) ];
        ]
    else
      fn fname
        [ ("data", Tptr Byte); ("len", Tint) ]
        Tint
        [
          let_ "first" Tint (call a [ v "data"; v "len" ]);
          let_ "second" Tint (call b [ v "data"; v "len" ]);
          ret (v "first" ^: (v "second" *: i threshold));
        ]
  | _ -> invalid_arg "make_wrapper: needs exactly two callees"

let generate ~seed ~index ~nfuncs =
  let rng = Util.Prng.create (Int64.add seed (Int64.of_int (index * 7907))) in
  let globals = make_globals rng index in
  let helpers = global_helpers rng in
  let n_templates = max 4 (nfuncs - List.length helpers - 3) in
  let instances = ref [] in
  let buf_names = ref [] in
  for k = 0 to n_templates - 1 do
    let family = Util.Prng.choose rng (Array.of_list Templates.all) in
    let fname = Printf.sprintf "%s_%s_%d" (library_name index) family.Templates.name k in
    let func = family.Templates.make rng ~fname in
    instances := func :: !instances;
    if List.memq family byte_buf_families then buf_names := fname :: !buf_names
  done;
  let wrappers =
    match !buf_names with
    | a :: b :: _ ->
      List.init
        (min 3 (List.length !buf_names / 2))
        (fun k ->
          let pool = Array.of_list !buf_names in
          let x = if k = 0 then a else Util.Prng.choose rng pool in
          let y = if k = 0 then b else Util.Prng.choose rng pool in
          make_wrapper rng
            ~fname:(Printf.sprintf "%s_wrap_%d" (library_name index) k)
            [ x; y ])
    | _ :: [] | [] -> []
  in
  {
    pname = library_name index;
    globals;
    funcs = helpers @ List.rev !instances @ wrappers;
  }

let with_cves prog cve_versions =
  let extra =
    List.map (fun (cve, patched) -> Cves.func cve ~patched) cve_versions
  in
  { prog with funcs = prog.funcs @ extra }
