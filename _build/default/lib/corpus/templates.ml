open Build_ast
open Minic.Ast

type family = {
  name : string;
  make : Util.Prng.t -> fname:string -> Minic.Ast.func;
  shape : Fuzz.Shape.t;
}

let byte_buf_shape : Fuzz.Shape.t = [ Abuf 64; Alen ]
let two_ints_shape : Fuzz.Shape.t = [ Aint (0L, 1000L); Aint (0L, 1000L) ]
let one_int_shape : Fuzz.Shape.t = [ Aint (0L, 255L) ]

(* 1. checksum / rolling hash over a byte buffer *)
let checksum rng ~fname =
  let mult = Util.Prng.choose rng [| 31; 33; 37; 131; 257 |] in
  let modv = Util.Prng.choose rng [| 1000003; 65521; 262139 |] in
  let seed = Util.Prng.int_in rng 1 97 in
  let mix =
    if Util.Prng.bool rng then v "acc" ^: idx (v "data") (v "k")
    else v "acc" +: idx (v "data") (v "k")
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "acc" Tint (i seed);
      for_ "k" (i 0) (v "len")
        [ set "acc" (((v "acc" *: i mult) +: mix) %: i modv) ];
      ret (v "acc");
    ]

(* 2. fletcher-style dual-accumulator checksum *)
let fletcher rng ~fname =
  let modv = Util.Prng.choose rng [| 255; 65535; 251 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "a" Tint (i (Util.Prng.int_in rng 0 5));
      let_ "b" Tint (i 0);
      for_ "k" (i 0) (v "len")
        [
          set "a" ((v "a" +: idx (v "data") (v "k")) %: i modv);
          set "b" ((v "b" +: v "a") %: i modv);
        ];
      ret ((v "b" <<: i 16) |: v "a");
    ]

(* 3. count bytes matching a predicate *)
let count_matching rng ~fname =
  let threshold = Util.Prng.int_in rng 32 128 in
  let also_even = Util.Prng.bool rng in
  let cond =
    if also_even then
      (idx (v "data") (v "k") >: i threshold)
      &&: ((idx (v "data") (v "k") &: i 1) =: i 0)
    else idx (v "data") (v "k") >: i threshold
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "n" Tint (i 0);
      for_ "k" (i 0) (v "len") [ if_ cond [ set "n" (v "n" +: i 1) ] ];
      ret (v "n");
    ]

(* 4. find first occurrence of a marker byte *)
let find_marker rng ~fname =
  let marker = Util.Prng.int_in rng 1 255 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "k" Tint (i 0);
      while_
        (v "k" <: v "len")
        [
          if_ (idx (v "data") (v "k") =: i marker) [ ret (v "k") ];
          set "k" (v "k" +: i 1);
        ];
      ret (i 0 -: i 1);
    ]

(* 5. TLV parser: walk tag/length records, sum payloads of one tag *)
let tlv_parse rng ~fname =
  let want = Util.Prng.int_in rng 1 7 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "pos" Tint (i 0);
      let_ "total" Tint (i 0);
      while_
        (v "pos" +: i 2 <=: v "len")
        [
          let_ "tag" Tint (idx (v "data") (v "pos"));
          let_ "tlen" Tint (idx (v "data") (v "pos" +: i 1));
          set "pos" (v "pos" +: i 2);
          if_ (v "pos" +: v "tlen" >: v "len") [ ret (i 0 -: i 1) ];
          if_
            ((v "tag" %: i 8) =: i want)
            [
              for_ "j" (i 0) (v "tlen")
                [ set "total" (v "total" +: idx (v "data") (v "pos" +: v "j")) ];
            ];
          set "pos" (v "pos" +: v "tlen");
        ];
      ret (v "total");
    ]

(* 6. RLE-style expansion into a bounded stack buffer *)
let rle_expand rng ~fname =
  let cap = Util.Prng.choose rng [| 64; 96; 128 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      letbuf "out" Byte cap;
      let_ "w" Tint (i 0);
      let_ "k" Tint (i 0);
      while_
        (v "k" +: i 1 <: v "len")
        [
          let_ "run" Tint (idx (v "data") (v "k") %: i 9);
          let_ "value" Tint (idx (v "data") (v "k" +: i 1));
          for_ "j" (i 0) (v "run")
            [
              if_ (v "w" <: i cap)
                [
                  setidx (v "out") (v "w") (v "value");
                  set "w" (v "w" +: i 1);
                ];
            ];
          set "k" (v "k" +: i 2);
        ];
      ret (v "w");
    ]

(* 7. byte histogram peak via a stack table *)
let histogram_peak rng ~fname =
  let buckets = Util.Prng.choose rng [| 16; 32; 64 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      letbuf "hist" Word buckets;
      for_ "k" (i 0) (i buckets) [ setidx (v "hist") (v "k") (i 0) ];
      for_ "k" (i 0) (v "len")
        [
          let_ "b" Tint (idx (v "data") (v "k") %: i buckets);
          setidx (v "hist") (v "b") (idx (v "hist") (v "b") +: i 1);
        ];
      let_ "best" Tint (i 0);
      for_ "k" (i 0) (i buckets)
        [ if_ (idx (v "hist") (v "k") >: v "best") [ set "best" (idx (v "hist") (v "k")) ] ];
      ret (v "best");
    ]

(* 8. state machine over the input bytes (switch in a loop) *)
let state_machine rng ~fname =
  let nstates = Util.Prng.int_in rng 3 5 in
  let cases =
    List.init nstates (fun s ->
        let next = Util.Prng.int rng nstates in
        let bump = Util.Prng.int_in rng 1 5 in
        ( Int64.of_int s,
          [
            set "score" (v "score" +: (idx (v "data") (v "k") *: i bump));
            set "state" (i next);
          ] ))
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "state" Tint (i 0);
      let_ "score" Tint (i 0);
      for_ "k" (i 0) (v "len")
        [
          if_ (idx (v "data") (v "k") =: i 0) [ set "state" (i 0) ];
          Sswitch (v "state", cases, [ set "state" (i 0) ]);
          set "score" (v "score" %: i 1000000007);
        ];
      ret (v "score");
    ]

(* 9. bubble sort of words copied from bytes, returns median *)
let sort_median rng ~fname =
  let cap = Util.Prng.choose rng [| 16; 24; 32 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      letbuf "buf" Word cap;
      let_ "n" Tint (v "len");
      if_ (v "n" >: i cap) [ set "n" (i cap) ];
      for_ "k" (i 0) (v "n") [ setidx (v "buf") (v "k") (idx (v "data") (v "k")) ];
      for_ "a" (i 0) (v "n")
        [
          for_ "b" (i 0) (v "n" -: i 1)
            [
              if_
                (idx (v "buf") (v "b") >: idx (v "buf") (v "b" +: i 1))
                [
                  let_ "tmp" Tint (idx (v "buf") (v "b"));
                  setidx (v "buf") (v "b") (idx (v "buf") (v "b" +: i 1));
                  setidx (v "buf") (v "b" +: i 1) (v "tmp");
                ];
            ];
        ];
      if_ (v "n" =: i 0) [ ret (i 0) ];
      ret (idx (v "buf") (v "n" /: i 2));
    ]

(* 10. bit tricks: popcount / parity mix of two ints *)
let bit_mix rng ~fname =
  let rounds = Util.Prng.int_in rng 2 5 in
  let shift = Util.Prng.choose rng [| 7; 13; 17; 21 |] in
  let body =
    List.concat
      (List.init rounds (fun _ ->
           [
             set "x" (v "x" ^: (v "x" >>: i shift));
             set "x" ((v "x" *: i 2654435761) &: i64 0xFFFFFFFFL);
             set "x" (v "x" +: v "y");
           ]))
  in
  fn fname
    [ ("x", Tint); ("y", Tint) ]
    Tint
    (body @ [ ret (v "x") ])

(* 11. popcount loop *)
let popcount rng ~fname =
  let use_and = Util.Prng.bool rng in
  fn fname
    [ ("x", Tint) ]
    Tint
    [
      let_ "n" Tint (i 0);
      let_ "w" Tint (v "x" &: i64 0xFFFFFFFFL);
      while_
        (v "w" <>: i 0)
        (if use_and then
           [ set "w" (v "w" &: (v "w" -: i 1)); set "n" (v "n" +: i 1) ]
         else
           [
             set "n" (v "n" +: (v "w" &: i 1));
             set "w" (v "w" >>: i 1);
           ]);
      ret (v "n");
    ]

(* 12. polynomial evaluation over an int argument *)
let poly_eval rng ~fname =
  let degree = Util.Prng.int_in rng 3 6 in
  let coeffs = List.init degree (fun _ -> Util.Prng.int_in rng 1 50) in
  let body =
    List.concat_map
      (fun c ->
        [ set "acc" (((v "acc" *: v "x") +: i c) %: i 1000000007) ])
      coeffs
  in
  fn fname [ ("x", Tint) ] Tint
    ((let_ "acc" Tint (i 1) :: body) @ [ ret (v "acc") ])

(* 13. float kernel: mean of squares with a scale factor *)
let float_kernel rng ~fname =
  let scale = float_of_int (Util.Prng.int_in rng 2 9) /. 4.0 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "sum" Tfloat (Efloat 0.0);
      for_ "k" (i 0) (v "len")
        [
          let_ "x" Tfloat (call "int_to_float" [ idx (v "data") (v "k") ]);
          set "sum" (v "sum" +: (v "x" *: v "x" *: Efloat scale));
        ];
      if_ (v "len" >: i 0)
        [ ret (call "float_to_int" [ v "sum" /: call "int_to_float" [ v "len" ] ]) ];
      ret (i 0);
    ]

(* 14. string utility built on imports *)
let string_probe rng ~fname =
  let lim = Util.Prng.choose rng [| 16; 32; 48 |] in
  fn fname
    [ ("s", Tptr Byte) ]
    Tint
    [
      let_ "n" Tint (call "strlen" [ v "s" ]);
      if_ (v "n" >: i lim) [ set "n" (i lim) ];
      let_ "acc" Tint (i 0);
      for_ "k" (i 0) (v "n") [ set "acc" (v "acc" +: idx (v "s") (v "k")) ];
      ret (v "acc" *: v "n");
    ]

(* 15. copy with a transformation, via heap staging *)
let heap_transform rng ~fname =
  let delta = Util.Prng.int_in rng 1 16 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "n" Tint (v "len");
      if_ (v "n" >: i 48) [ set "n" (i 48) ];
      let_ "tmp" (Tptr Byte) (call "alloc_bytes" [ v "n" +: i 1 ]);
      for_ "k" (i 0) (v "n")
        [ setidx (v "tmp") (v "k") ((idx (v "data") (v "k") +: i delta) %: i 256) ];
      let_ "acc" Tint (i 0);
      for_ "k" (i 0) (v "n") [ set "acc" (v "acc" ^: idx (v "tmp") (v "k")) ];
      expr (call "free" [ v "tmp" ]);
      ret (v "acc");
    ]

(* 16. device poke: reads the MMIO window at a fixed absolute address
   (the "others" memory-region flavour of Table III) *)
let device_poke rng ~fname =
  let off = Util.Prng.int_in rng 0 64 * 8 in
  let words = Util.Prng.int_in rng 2 6 in
  fn fname
    [ ("x", Tint) ]
    Tint
    [
      let_ "reg" (Tptr Word) (call "as_wptr" [ i64 0x4000_0000L +: i off ]);
      let_ "acc" Tint (v "x");
      for_ "k" (i 0) (i words)
        [ set "acc" (v "acc" ^: idx (v "reg") (v "k")) ];
      ret (v "acc");
    ]

(* 17. clamp and scale (branchy integer math) *)
let clamp_scale rng ~fname =
  let lo = Util.Prng.int_in rng 0 10 in
  let hi = lo + Util.Prng.int_in rng 20 200 in
  let mul = Util.Prng.int_in rng 2 9 in
  fn fname
    [ ("x", Tint); ("y", Tint) ]
    Tint
    [
      let_ "t" Tint (v "x" +: v "y");
      if_ (v "t" <: i lo) [ set "t" (i lo) ];
      if_ (v "t" >: i hi) [ set "t" (i hi) ];
      ret (v "t" *: i mul);
    ]

(* 18. dispatcher: dense switch over a code argument *)
let dispatcher rng ~fname =
  let ncases = Util.Prng.int_in rng 4 8 in
  let cases =
    List.init ncases (fun k ->
        let r = Util.Prng.int_in rng 1 500 in
        (Int64.of_int k, [ ret (i (r + (k * 3))) ]))
  in
  fn fname
    [ ("code", Tint) ]
    Tint
    [ Sswitch (v "code", cases, [ ret (i 0 -: i 1) ]) ]

(* 19. saturating accumulator with early exit *)
let saturating_sum rng ~fname =
  let cap = Util.Prng.int_in rng 500 5000 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "acc" Tint (i 0);
      let_ "k" Tint (i 0);
      while_
        (v "k" <: v "len")
        [
          set "acc" (v "acc" +: idx (v "data") (v "k"));
          if_ (v "acc" >: i cap) [ ret (i cap) ];
          set "k" (v "k" +: i 1);
        ];
      ret (v "acc");
    ]

(* 20. xor cipher into caller-provided buffer (in-place mutation) *)
let xor_cipher rng ~fname =
  let key = Util.Prng.int_in rng 1 255 in
  let rot = Util.Prng.int_in rng 1 7 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "k" Tint (i key);
      for_ "j" (i 0) (v "len")
        [
          setidx (v "data") (v "j") (idx (v "data") (v "j") ^: v "k");
          set "k" (((v "k" <<: i rot) |: (v "k" >>: i (8 - rot))) &: i 255);
        ];
      ret (v "k");
    ]

(* 21. CRC-style table checksum over a global-less inline table *)
let crc_table rng ~fname =
  let poly = Util.Prng.choose rng [| 0xEDB88320; 0x82F63B78; 0xA833982B |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "crc" Tint (i64 0xFFFFFFFFL);
      for_ "k" (i 0) (v "len")
        [
          set "crc" (v "crc" ^: idx (v "data") (v "k"));
          for_ "b" (i 0) (i 8)
            [
              ifelse
                ((v "crc" &: i 1) =: i 1)
                [ set "crc" ((v "crc" >>: i 1) ^: i poly) ]
                [ set "crc" (v "crc" >>: i 1) ];
            ];
        ];
      ret (v "crc" &: i64 0xFFFFFFFFL);
    ]

(* 22. varint (LEB128-style) decoder *)
let varint_decode rng ~fname =
  let max_bytes = Util.Prng.int_in rng 4 9 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "value" Tint (i 0);
      let_ "shift" Tint (i 0);
      let_ "k" Tint (i 0);
      while_
        (v "k" <: v "len" &&: (v "k" <: i max_bytes))
        [
          let_ "b" Tint (idx (v "data") (v "k"));
          set "value" (v "value" |: ((v "b" &: i 127) <<: v "shift"));
          set "shift" (v "shift" +: i 7);
          set "k" (v "k" +: i 1);
          if_ ((v "b" &: i 128) =: i 0) [ ret (v "value") ];
        ];
      ret (i 0 -: i 1);
    ]

(* 23. base64-ish encoder length + checksum via an alphabet string *)
let base64_probe rng ~fname =
  let alphabet =
    if Util.Prng.bool rng then
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
    else "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "acc" Tint (i 0);
      let_ "k" Tint (i 0);
      while_
        (v "k" +: i 2 <: v "len")
        [
          let_ "chunk" Tint
            ((idx (v "data") (v "k") <<: i 16)
            |: (idx (v "data") (v "k" +: i 1) <<: i 8)
            |: idx (v "data") (v "k" +: i 2));
          set "acc"
            (v "acc" +: idx (Estr alphabet) ((v "chunk" >>: i 18) &: i 63));
          set "acc" (v "acc" +: idx (Estr alphabet) ((v "chunk" >>: i 12) &: i 63));
          set "acc" (v "acc" +: idx (Estr alphabet) ((v "chunk" >>: i 6) &: i 63));
          set "acc" (v "acc" +: idx (Estr alphabet) (v "chunk" &: i 63));
          set "k" (v "k" +: i 3);
        ];
      ret (v "acc");
    ]

(* 24. UTF-8-style validator: multi-byte sequences with continuation
   checks *)
let utf8_validate rng ~fname =
  let strict = Util.Prng.bool rng in
  let continuation off =
    (idx (v "data") (v "k" +: off) &: i 192) =: i 128
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "count" Tint (i 0);
      let_ "k" Tint (i 0);
      while_
        (v "k" <: v "len")
        [
          let_ "b" Tint (idx (v "data") (v "k"));
          ifelse (v "b" <: i 128)
            [ set "k" (v "k" +: i 1) ]
            [
              ifelse
                ((v "b" &: i 224) =: i 192 &&: (v "k" +: i 1 <: v "len"))
                [
                  ifelse (continuation (i 1))
                    [ set "k" (v "k" +: i 2) ]
                    (if strict then [ ret (i 0 -: i 1) ]
                     else [ set "k" (v "k" +: i 1) ]);
                ]
                [
                  ifelse
                    ((v "b" &: i 240) =: i 224 &&: (v "k" +: i 2 <: v "len"))
                    [
                      ifelse
                        (continuation (i 1) &&: continuation (i 2))
                        [ set "k" (v "k" +: i 3) ]
                        (if strict then [ ret (i 0 -: i 1) ]
                         else [ set "k" (v "k" +: i 1) ]);
                    ]
                    [ set "k" (v "k" +: i 1) ];
                ];
            ];
          set "count" (v "count" +: i 1);
        ];
      ret (v "count");
    ]

(* 25. Luhn-style checksum over digit bytes *)
let luhn rng ~fname =
  let modulus = Util.Prng.choose rng [| 10; 11; 13 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "sum" Tint (i 0);
      for_ "k" (i 0) (v "len")
        [
          let_ "d" Tint (idx (v "data") (v "k") %: i 10);
          ifelse
            ((v "k" &: i 1) =: i 1)
            [
              let_ "doubled" Tint (v "d" *: i 2);
              ifelse (v "doubled" >: i 9)
                [ set "sum" (v "sum" +: v "doubled" -: i 9) ]
                [ set "sum" (v "sum" +: v "doubled") ];
            ]
            [ set "sum" (v "sum" +: v "d") ];
        ];
      ret (v "sum" %: i modulus);
    ]

(* 26. binary search over a heap-built sorted word array *)
let binary_search rng ~fname =
  let n = Util.Prng.choose rng [| 16; 32 |] in
  let stride = Util.Prng.int_in rng 3 9 in
  fn fname
    [ ("needle", Tint) ]
    Tint
    [
      let_ "table" (Tptr Word) (call "alloc_words" [ i n ]);
      for_ "k" (i 0) (i n) [ setidx (v "table") (v "k") (v "k" *: i stride) ];
      let_ "lo" Tint (i 0);
      let_ "hi" Tint (i (n - 1));
      let_ "found" Tint (i 0 -: i 1);
      while_
        (v "lo" <=: v "hi")
        [
          let_ "mid" Tint ((v "lo" +: v "hi") /: i 2);
          let_ "x" Tint (idx (v "table") (v "mid"));
          ifelse (v "x" =: v "needle")
            [ set "found" (v "mid"); Sbreak ]
            [
              ifelse (v "x" <: v "needle")
                [ set "lo" (v "mid" +: i 1) ]
                [ set "hi" (v "mid" -: i 1) ];
            ];
        ];
      expr (call "free" [ v "table" ]);
      ret (v "found");
    ]

(* 27. moving-average smoothing filter (float) *)
let moving_average rng ~fname =
  let window = Util.Prng.int_in rng 2 5 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "best" Tfloat (Efloat 0.0);
      let_ "k" Tint (i 0);
      while_
        (v "k" +: i window <=: v "len")
        [
          let_ "sum" Tfloat (Efloat 0.0);
          for_ "j" (i 0) (i window)
            [
              set "sum"
                (v "sum" +: call "int_to_float" [ idx (v "data") (v "k" +: v "j") ]);
            ];
          let_ "avg" Tfloat (v "sum" /: Efloat (float_of_int window));
          if_ (v "avg" >: v "best") [ set "best" (v "avg") ];
          set "k" (v "k" +: i 1);
        ];
      ret (call "float_to_int" [ v "best" ]);
    ]

(* 28. tiny fixed-size matrix multiply on the stack *)
let matrix_multiply rng ~fname =
  let n = Util.Prng.choose rng [| 3; 4 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      letbuf "a" Word (n * n);
      letbuf "b" Word (n * n);
      letbuf "c" Word (n * n);
      for_ "k" (i 0) (i (n * n))
        [
          ifelse (v "k" <: v "len")
            [
              setidx (v "a") (v "k") (idx (v "data") (v "k"));
              setidx (v "b") (v "k") (idx (v "data") (v "k") +: i 1);
            ]
            [
              setidx (v "a") (v "k") (i 1);
              setidx (v "b") (v "k") (i 2);
            ];
        ];
      for_ "r" (i 0) (i n)
        [
          for_ "col" (i 0) (i n)
            [
              let_ "acc" Tint (i 0);
              for_ "t" (i 0) (i n)
                [
                  set "acc"
                    (v "acc"
                    +: (idx (v "a") ((v "r" *: i n) +: v "t")
                       *: idx (v "b") ((v "t" *: i n) +: v "col")));
                ];
              setidx (v "c") ((v "r" *: i n) +: v "col") (v "acc" %: i 1000003);
            ];
        ];
      let_ "out" Tint (i 0);
      for_ "k" (i 0) (i (n * n)) [ set "out" (v "out" ^: idx (v "c") (v "k")) ];
      ret (v "out");
    ]

(* 29. run-length counter: longest run of equal bytes *)
let longest_run rng ~fname =
  let tie_break = Util.Prng.bool rng in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      if_ (v "len" =: i 0) [ ret (i 0) ];
      let_ "best" Tint (i 1);
      let_ "cur" Tint (i 1);
      for_ "k" (i 1) (v "len")
        [
          ifelse
            (idx (v "data") (v "k") =: idx (v "data") (v "k" -: i 1))
            [ set "cur" (v "cur" +: i 1) ]
            [ set "cur" (i 1) ];
          (if tie_break then if_ (v "cur" >=: v "best") [ set "best" (v "cur") ]
           else if_ (v "cur" >: v "best") [ set "best" (v "cur") ]);
        ];
      ret (v "best");
    ]

(* 30. byte-pair frequency pick (nested loop over a small alphabet) *)
let pair_frequency rng ~fname =
  let alphabet = Util.Prng.choose rng [| 8; 16 |] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      letbuf "freq" Word (alphabet * alphabet);
      for_ "k" (i 0) (i (alphabet * alphabet)) [ setidx (v "freq") (v "k") (i 0) ];
      for_ "k" (i 1) (v "len")
        [
          let_ "a" Tint (idx (v "data") (v "k" -: i 1) %: i alphabet);
          let_ "b" Tint (idx (v "data") (v "k") %: i alphabet);
          let_ "slot" Tint ((v "a" *: i alphabet) +: v "b");
          setidx (v "freq") (v "slot") (idx (v "freq") (v "slot") +: i 1);
        ];
      let_ "best" Tint (i 0);
      for_ "k" (i 0) (i (alphabet * alphabet))
        [ if_ (idx (v "freq") (v "k") >: v "best") [ set "best" (idx (v "freq") (v "k")) ] ];
      ret (v "best");
    ]

let all =
  [
    { name = "checksum"; make = checksum; shape = byte_buf_shape };
    { name = "fletcher"; make = fletcher; shape = byte_buf_shape };
    { name = "count"; make = count_matching; shape = byte_buf_shape };
    { name = "find"; make = find_marker; shape = byte_buf_shape };
    { name = "tlv"; make = tlv_parse; shape = byte_buf_shape };
    { name = "rle"; make = rle_expand; shape = byte_buf_shape };
    { name = "hist"; make = histogram_peak; shape = byte_buf_shape };
    { name = "fsm"; make = state_machine; shape = byte_buf_shape };
    { name = "sort"; make = sort_median; shape = byte_buf_shape };
    { name = "bitmix"; make = bit_mix; shape = two_ints_shape };
    { name = "popcount"; make = popcount; shape = one_int_shape };
    { name = "poly"; make = poly_eval; shape = one_int_shape };
    { name = "floatk"; make = float_kernel; shape = byte_buf_shape };
    { name = "strprobe"; make = string_probe; shape = [ Abuf 48 ] };
    { name = "heaptx"; make = heap_transform; shape = byte_buf_shape };
    { name = "devpoke"; make = device_poke; shape = one_int_shape };
    { name = "clamp"; make = clamp_scale; shape = two_ints_shape };
    { name = "dispatch"; make = dispatcher; shape = one_int_shape };
    { name = "satsum"; make = saturating_sum; shape = byte_buf_shape };
    { name = "xorcipher"; make = xor_cipher; shape = byte_buf_shape };
    { name = "crc"; make = crc_table; shape = byte_buf_shape };
    { name = "varint"; make = varint_decode; shape = byte_buf_shape };
    { name = "base64"; make = base64_probe; shape = byte_buf_shape };
    { name = "utf8"; make = utf8_validate; shape = byte_buf_shape };
    { name = "luhn"; make = luhn; shape = byte_buf_shape };
    { name = "bsearch"; make = binary_search; shape = one_int_shape };
    { name = "movavg"; make = moving_average; shape = byte_buf_shape };
    { name = "matmul"; make = matrix_multiply; shape = byte_buf_shape };
    { name = "runlen"; make = longest_run; shape = byte_buf_shape };
    { name = "pairfreq"; make = pair_frequency; shape = byte_buf_shape };
  ]

let find name = List.find_opt (fun f -> f.name = name) all
