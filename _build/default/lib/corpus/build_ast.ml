open Minic.Ast

let i n = Eint (Int64.of_int n)
let i64 n = Eint n
let v name = Evar name
let ( +: ) a b = Ebinop (Badd, a, b)
let ( -: ) a b = Ebinop (Bsub, a, b)
let ( *: ) a b = Ebinop (Bmul, a, b)
let ( /: ) a b = Ebinop (Bdiv, a, b)
let ( %: ) a b = Ebinop (Brem, a, b)
let ( ^: ) a b = Ebinop (Bxor, a, b)
let ( &: ) a b = Ebinop (Bandb, a, b)
let ( |: ) a b = Ebinop (Borb, a, b)
let ( <<: ) a b = Ebinop (Bshl, a, b)
let ( >>: ) a b = Ebinop (Bshr, a, b)
let ( <: ) a b = Ebinop (Blt, a, b)
let ( <=: ) a b = Ebinop (Ble, a, b)
let ( >: ) a b = Ebinop (Bgt, a, b)
let ( >=: ) a b = Ebinop (Bge, a, b)
let ( =: ) a b = Ebinop (Beq, a, b)
let ( <>: ) a b = Ebinop (Bne, a, b)
let ( &&: ) a b = Ebinop (Bland, a, b)
let ( ||: ) a b = Ebinop (Blor, a, b)
let idx base index = Eindex (base, index)
let addr base index = Eaddr (base, index)
let call name args = Ecall (name, args)

let let_ name ty e = Sdecl (name, ty, Some e)
let letbuf name elem n = Sarray (name, elem, n)
let set name e = Sassign (name, e)
let setidx base index e = Sindexset (base, index, e)
let if_ cond thens = Sif (cond, thens, [])
let ifelse cond thens elses = Sif (cond, thens, elses)
let while_ cond body = Swhile (cond, body)
let for_ var start bound body = Sfor (var, start, bound, i 1, body)
let ret e = Sreturn (Some e)
let ret_void = Sreturn None
let expr e = Sexpr e

let fn fname params ret body =
  {
    fname;
    params = List.map (fun (pname, pty) -> { pname; pty }) params;
    ret;
    body;
  }
