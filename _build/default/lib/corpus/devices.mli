(** The two evaluation targets — "Android Things 1.0" and "Google Pixel 2
    XL" — as synthetic devices: an architecture, an optimisation level and
    a per-CVE patch status.  The Android Things patch map reproduces the
    ground-truth column of the paper's Table VIII. *)

type device = {
  device_name : string;
  arch : Isa.Arch.t;
  opt : Minic.Optlevel.level;
  os_version : string;
  security_patch : string;
  is_patched : string -> bool;  (** CVE id -> ground truth *)
}

val android_things : device
val pixel2xl : device
val all : device list

type truth = {
  cve : Cves.t;
  image_name : string;  (** library image hosting the CVE function *)
  findex : int;  (** function index inside that image *)
  patched : bool;
}

val build_firmware :
  ?seed:int64 ->
  ?nlibs:int ->
  ?nfuncs_base:int ->
  device ->
  Loader.Firmware.t * truth list
(** Compile the device's firmware: the first five libraries host the 25
    CVE functions (vulnerable or patched per the device's map).  The
    returned firmware keeps its symbol tables (evaluation ground truth);
    strip it with {!Loader.Firmware.strip} before handing it to the
    pipeline, as the paper does with its debug-built Dataset I. *)
