(** Binary persistence of trained models and normalizers, so a classifier
    trained once can be shipped with the vulnerability database instead of
    being retrained per scan.  Little-endian, magic-tagged, exact float
    round trip (IEEE-754 bit patterns). *)

exception Corrupt of string

val model_to_bytes : Model.t -> bytes
val model_of_bytes : bytes -> Model.t
(** Raises {!Corrupt}. *)

val normalizer_to_bytes : Data.normalizer -> bytes
val normalizer_of_bytes : bytes -> Data.normalizer

val write_classifier : string -> Model.t -> Data.normalizer -> unit
(** Both artifacts in one file. *)

val read_classifier : string -> Model.t * Data.normalizer
