(** Training loop with per-epoch history — the data behind the paper's
    Figure 8 (training accuracy and loss curves). *)

type epoch_stats = {
  epoch : int;
  train_loss : float;
  train_accuracy : float;
  val_loss : float;
  val_accuracy : float;
}

type config = {
  epochs : int;
  batch_size : int;
  seed : int64;
}

val default_config : config

val fit :
  ?config:config ->
  ?progress:(epoch_stats -> unit) ->
  Model.t ->
  train:Data.t ->
  validation:Data.t ->
  Model.t * epoch_stats list

val evaluate : Model.t -> Data.t -> float * float
(** (loss, accuracy) over a dataset. *)
