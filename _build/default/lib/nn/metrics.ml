type confusion = { tp : int; tn : int; fp : int; fn : int }

let confusion ?(threshold = 0.5) ~predictions ~labels () =
  let tp = ref 0 and tn = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i p ->
      let predicted = p >= threshold in
      let actual = labels.(i) >= 0.5 in
      match (predicted, actual) with
      | true, true -> incr tp
      | false, false -> incr tn
      | true, false -> incr fp
      | false, true -> incr fn)
    predictions;
  { tp = !tp; tn = !tn; fp = !fp; fn = !fn }

let accuracy ?threshold ~predictions ~labels () =
  let c = confusion ?threshold ~predictions ~labels () in
  let total = c.tp + c.tn + c.fp + c.fn in
  if total = 0 then 0.0 else float_of_int (c.tp + c.tn) /. float_of_int total

let false_positive_rate c =
  let denom = c.fp + c.tn in
  if denom = 0 then 0.0 else float_of_int c.fp /. float_of_int denom

(* Exact AUC via the rank-sum (Mann-Whitney U) statistic with average
   ranks for ties. *)
let auc ~predictions ~labels =
  let n = Array.length predictions in
  if n = 0 || n <> Array.length labels then invalid_arg "Metrics.auc: mismatch";
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare predictions.(a) predictions.(b)) order;
  let ranks = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && predictions.(order.(!j + 1)) = predictions.(order.(!i))
    do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      ranks.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  let pos = ref 0 and rank_sum = ref 0.0 in
  Array.iteri
    (fun k y ->
      if y >= 0.5 then begin
        incr pos;
        rank_sum := !rank_sum +. ranks.(k)
      end)
    labels;
  let npos = !pos and nneg = n - !pos in
  if npos = 0 || nneg = 0 then 0.5
  else begin
    let u =
      !rank_sum -. (float_of_int npos *. float_of_int (npos + 1) /. 2.0)
    in
    u /. (float_of_int npos *. float_of_int nneg)
  end
