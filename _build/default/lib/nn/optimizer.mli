(** Parameter-update rules.  Each layer owns one optimiser state per
    tensor; [step] maps a gradient to a delta to add to the parameters. *)

type algo = Sgd of float  (** learning rate *) | Adam of adam_config
and adam_config = { lr : float; beta1 : float; beta2 : float; eps : float }

val default_adam : algo

type state

val create : algo -> rows:int -> cols:int -> state
val step : state -> Matrix.t -> Matrix.t
(** Delta for a matrix-shaped parameter. *)

val step_vec : state -> Util.Vec.t -> Util.Vec.t
(** Delta for a vector-shaped parameter (uses row 0 of the state). *)
