type epoch_stats = {
  epoch : int;
  train_loss : float;
  train_accuracy : float;
  val_loss : float;
  val_accuracy : float;
}

type config = {
  epochs : int;
  batch_size : int;
  seed : int64;
}

let default_config = { epochs = 10; batch_size = 64; seed = 77L }

let evaluate model (data : Data.t) =
  if Data.size data = 0 then (0.0, 0.0)
  else begin
    let feats = Matrix.of_rows data.Data.features in
    let predictions = Model.predict model feats in
    let loss = Loss.bce ~predictions ~labels:data.Data.labels in
    let acc = Metrics.accuracy ~predictions ~labels:data.Data.labels () in
    (loss, acc)
  end

let fit ?(config = default_config) ?(progress = fun _ -> ()) model ~train ~validation =
  let rng = Util.Prng.create config.seed in
  let rec epoch_loop model history e =
    if e > config.epochs then (model, List.rev history)
    else begin
      let shuffled = Data.shuffle rng train in
      let model, _ =
        List.fold_left
          (fun (model, _) (batch, labels) -> Model.train_batch model batch labels)
          (model, 0.0)
          (Data.batches shuffled config.batch_size)
      in
      let train_loss, train_accuracy = evaluate model train in
      let val_loss, val_accuracy = evaluate model validation in
      let stats = { epoch = e; train_loss; train_accuracy; val_loss; val_accuracy } in
      progress stats;
      epoch_loop model (stats :: history) (e + 1)
    end
  in
  epoch_loop model [] 1
