let eps = 1e-7

let clamp p = max eps (min (1.0 -. eps) p)

let bce ~predictions ~labels =
  let n = Array.length predictions in
  if n = 0 || n <> Array.length labels then invalid_arg "Loss.bce: mismatch";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let p = clamp predictions.(i) in
    let y = labels.(i) in
    total := !total -. ((y *. log p) +. ((1.0 -. y) *. log (1.0 -. p)))
  done;
  !total /. float_of_int n

let bce_gradient ~predictions ~labels =
  let n = Array.length predictions in
  if n = 0 || n <> Array.length labels then invalid_arg "Loss.bce_gradient: mismatch";
  Array.init n (fun i ->
      let p = clamp predictions.(i) in
      let y = labels.(i) in
      ((p -. y) /. (p *. (1.0 -. p))) /. float_of_int n)
