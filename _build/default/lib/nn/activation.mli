(** Activation functions and their derivatives (as functions of the
    pre-activation input). *)

type t = Relu | Sigmoid | Tanh | Identity

val apply : t -> float -> float
val derivative : t -> float -> float
(** Derivative at the pre-activation value. *)

val to_string : t -> string
