(** Binary cross-entropy over sigmoid outputs. *)

val bce : predictions:Util.Vec.t -> labels:Util.Vec.t -> float
(** Mean BCE; predictions are post-sigmoid probabilities, clamped away
    from 0/1 for stability. *)

val bce_gradient : predictions:Util.Vec.t -> labels:Util.Vec.t -> Util.Vec.t
(** d(mean BCE)/d(prediction), same clamping. *)
