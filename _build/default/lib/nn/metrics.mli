(** Classifier quality metrics: accuracy at a threshold, ROC AUC (exact,
    rank-based) and the confusion counts behind Tables VI/VII. *)

type confusion = { tp : int; tn : int; fp : int; fn : int }

val confusion :
  ?threshold:float -> predictions:Util.Vec.t -> labels:Util.Vec.t -> unit -> confusion
val accuracy :
  ?threshold:float -> predictions:Util.Vec.t -> labels:Util.Vec.t -> unit -> float
val false_positive_rate : confusion -> float
val auc : predictions:Util.Vec.t -> labels:Util.Vec.t -> float
(** Mann-Whitney formulation with tie correction; 0.5 when a class is
    absent. *)
