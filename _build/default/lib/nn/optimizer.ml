type algo = Sgd of float | Adam of adam_config
and adam_config = { lr : float; beta1 : float; beta2 : float; eps : float }

let default_adam = Adam { lr = 1e-3; beta1 = 0.9; beta2 = 0.999; eps = 1e-8 }

type state = {
  algo : algo;
  m : float array;  (* first moment *)
  v : float array;  (* second moment *)
  mutable t : int;
}

let create algo ~rows ~cols =
  let n = max (rows * cols) 1 in
  { algo; m = Array.make n 0.0; v = Array.make n 0.0; t = 0 }

let step_flat state (g : float array) =
  match state.algo with
  | Sgd lr -> Array.map (fun x -> -.lr *. x) g
  | Adam { lr; beta1; beta2; eps } ->
    state.t <- state.t + 1;
    let t = float_of_int state.t in
    let bc1 = 1.0 -. (beta1 ** t) in
    let bc2 = 1.0 -. (beta2 ** t) in
    Array.mapi
      (fun i gi ->
        state.m.(i) <- (beta1 *. state.m.(i)) +. ((1.0 -. beta1) *. gi);
        state.v.(i) <- (beta2 *. state.v.(i)) +. ((1.0 -. beta2) *. gi *. gi);
        let mhat = state.m.(i) /. bc1 in
        let vhat = state.v.(i) /. bc2 in
        -.lr *. mhat /. (sqrt vhat +. eps))
      g

let step state (g : Matrix.t) = { g with Matrix.data = step_flat state g.Matrix.data }

let step_vec state g = step_flat state g
