type t = Relu | Sigmoid | Tanh | Identity

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let apply t x =
  match t with
  | Relu -> if x > 0.0 then x else 0.0
  | Sigmoid -> sigmoid x
  | Tanh -> tanh x
  | Identity -> x

let derivative t x =
  match t with
  | Relu -> if x > 0.0 then 1.0 else 0.0
  | Sigmoid ->
    let s = sigmoid x in
    s *. (1.0 -. s)
  | Tanh ->
    let th = tanh x in
    1.0 -. (th *. th)
  | Identity -> 1.0

let to_string = function
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Identity -> "identity"
