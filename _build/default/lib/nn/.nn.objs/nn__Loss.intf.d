lib/nn/loss.mli: Util
