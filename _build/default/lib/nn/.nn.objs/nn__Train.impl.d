lib/nn/train.ml: Data List Loss Matrix Metrics Model Util
