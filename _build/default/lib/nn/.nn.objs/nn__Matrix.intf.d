lib/nn/matrix.mli: Util
