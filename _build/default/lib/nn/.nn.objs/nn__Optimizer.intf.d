lib/nn/optimizer.mli: Matrix Util
