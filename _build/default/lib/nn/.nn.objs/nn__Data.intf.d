lib/nn/data.mli: Matrix Util
