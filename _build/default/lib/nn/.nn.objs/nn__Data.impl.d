lib/nn/data.ml: Array Fun List Matrix Util
