lib/nn/optimizer.ml: Array Matrix
