lib/nn/metrics.mli: Util
