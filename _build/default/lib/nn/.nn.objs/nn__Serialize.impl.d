lib/nn/serialize.ml: Activation Array Buffer Bytes Char Data Format Int64 List Matrix Model
