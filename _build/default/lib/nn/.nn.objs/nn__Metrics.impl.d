lib/nn/metrics.ml: Array Fun
