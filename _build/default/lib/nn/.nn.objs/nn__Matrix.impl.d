lib/nn/matrix.ml: Array
