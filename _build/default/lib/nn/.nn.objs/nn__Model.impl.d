lib/nn/model.ml: Activation Array Layer List Loss Matrix Optimizer
