lib/nn/layer.mli: Activation Matrix Util
