lib/nn/train.mli: Data Model
