lib/nn/model.mli: Activation Matrix Util
