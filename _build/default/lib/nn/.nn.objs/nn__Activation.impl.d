lib/nn/activation.ml:
