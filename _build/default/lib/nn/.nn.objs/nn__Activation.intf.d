lib/nn/activation.mli:
