lib/nn/serialize.mli: Data Model
