lib/nn/loss.ml: Array
