lib/nn/layer.ml: Activation Matrix Util
