exception Corrupt of string

let fail fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let model_magic = "PNN1"
let normalizer_magic = "PNZ1"
let classifier_magic = "PCL1"

(* --- primitives ------------------------------------------------------- *)

let put_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let put_vec buf v =
  put_u32 buf (Array.length v);
  Array.iter (put_f64 buf) v

type cursor = { data : bytes; mutable pos : int }

let get_u8 c =
  if c.pos >= Bytes.length c.data then fail "truncated at %d" c.pos;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (get_u8 c lsl (8 * i))
  done;
  !v

let get_f64 c =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (get_u8 c)) (8 * i))
  done;
  Int64.float_of_bits !bits

let get_vec c =
  let n = get_u32 c in
  if n > 100_000_000 then fail "implausible vector length %d" n;
  Array.init n (fun _ -> get_f64 c)

let expect_magic c magic =
  if c.pos + 4 > Bytes.length c.data then fail "missing magic";
  let got = Bytes.sub_string c.data c.pos 4 in
  if got <> magic then fail "bad magic %S (wanted %S)" got magic;
  c.pos <- c.pos + 4

(* --- activations -------------------------------------------------------- *)

let activation_tag : Activation.t -> int = function
  | Relu -> 0
  | Sigmoid -> 1
  | Tanh -> 2
  | Identity -> 3

let activation_of_tag : int -> Activation.t = function
  | 0 -> Relu
  | 1 -> Sigmoid
  | 2 -> Tanh
  | 3 -> Identity
  | t -> fail "bad activation tag %d" t

(* --- model --------------------------------------------------------------- *)

let put_model buf model =
  let input, layers = Model.export model in
  Buffer.add_string buf model_magic;
  put_u32 buf input;
  put_u32 buf (List.length layers);
  List.iter
    (fun ((w : Matrix.t), bias, activation) ->
      Buffer.add_char buf (Char.chr (activation_tag activation));
      put_u32 buf w.Matrix.rows;
      put_u32 buf w.Matrix.cols;
      Array.iter (put_f64 buf) w.Matrix.data;
      put_vec buf bias)
    layers

let get_model c =
  expect_magic c model_magic;
  let input = get_u32 c in
  let nlayers = get_u32 c in
  if nlayers > 1000 then fail "implausible layer count %d" nlayers;
  let layers =
    List.init nlayers (fun _ ->
        let activation = activation_of_tag (get_u8 c) in
        let rows = get_u32 c in
        let cols = get_u32 c in
        if rows * cols > 100_000_000 then fail "implausible matrix size";
        let data = Array.init (rows * cols) (fun _ -> get_f64 c) in
        let w = { Matrix.rows; cols; data } in
        let bias = get_vec c in
        if Array.length bias <> cols then fail "bias/width mismatch";
        (w, bias, activation))
  in
  Model.import ~input layers

let model_to_bytes model =
  let buf = Buffer.create 4096 in
  put_model buf model;
  Buffer.to_bytes buf

let model_of_bytes b = get_model { data = b; pos = 0 }

(* --- normalizer ------------------------------------------------------------ *)

let put_normalizer buf nz =
  let means, stds = Data.normalizer_stats nz in
  Buffer.add_string buf normalizer_magic;
  put_vec buf means;
  put_vec buf stds

let get_normalizer c =
  expect_magic c normalizer_magic;
  let means = get_vec c in
  let stds = get_vec c in
  if Array.length means <> Array.length stds then fail "means/stds mismatch";
  Data.normalizer_of_stats ~means ~stds

let normalizer_to_bytes nz =
  let buf = Buffer.create 1024 in
  put_normalizer buf nz;
  Buffer.to_bytes buf

let normalizer_of_bytes b = get_normalizer { data = b; pos = 0 }

(* --- combined classifier file ----------------------------------------------- *)

let write_classifier path model nz =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf classifier_magic;
  put_model buf model;
  put_normalizer buf nz;
  let oc = open_out_bin path in
  (try Buffer.output_buffer oc buf
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read_classifier path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  (try really_input ic b 0 len
   with e ->
     close_in_noerr ic;
     raise e);
  close_in ic;
  let c = { data = b; pos = 0 } in
  expect_magic c classifier_magic;
  let model = get_model c in
  let nz = get_normalizer c in
  (model, nz)
