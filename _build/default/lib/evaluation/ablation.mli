(** Ablations of PATCHECKO's design choices (DESIGN.md §5).

    - Minkowski exponent: re-rank the recorded dynamic profiles with
      p ∈ {1, 2, 3} and compare where the true function lands.
    - Static-only vs hybrid: rank candidates by the classifier score alone
      and compare against the dynamic ranking.
    - Environment count K: re-run the dynamic stage of a CVE subset at
      several K and report rank/cost.
    - Feature groups: retrain the model with one group of the 48 static
      features zeroed out and report the held-out accuracy drop. *)

val minkowski_p : Format.formatter -> Grid.run list -> unit
val static_vs_hybrid : Format.formatter -> Grid.run list -> unit
val env_count :
  Format.formatter -> Context.t -> ks:int list -> cve_ids:string list -> unit
val feature_groups :
  Format.formatter -> ?dataset:Corpus.Dataset.config -> ?epochs:int -> unit -> unit

val feature_group_names : (string * int list) list
(** Named index groups over the 48 static features. *)

val db_build :
  Format.formatter ->
  Context.t ->
  opts:Minic.Optlevel.level list ->
  cve_ids:string list ->
  unit
(** Sensitivity to the vulnerability-database build configuration: rebuild
    the reference images at several optimisation levels and report static
    detection (was the true function flagged?) and dynamic rank per level.
    Shows the dynamic profile's optimisation sensitivity — the reason the
    default database build is O1. *)
