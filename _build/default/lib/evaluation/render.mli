(** Plain-text rendering of every table and figure of the paper's §V,
    from the evaluation grid. *)

val fig8 : Format.formatter -> Context.t -> unit
(** Training accuracy/loss per epoch (Figure 8) plus held-out test
    accuracy and AUC. *)

val fig7 : Format.formatter -> Grid.run list -> unit
(** False-positive rate per CVE, per device, for vulnerable- and
    patched-reference queries (Figure 7). *)

val tab3 : Format.formatter -> Context.t -> Grid.run list -> unit
(** Dynamic feature profiling of the CVE-2018-9412 candidates on Android
    Things (Table III). *)

val tab45 : Format.formatter -> Context.t -> Grid.run list -> unit
(** Top-10 similarity rankings for CVE-2018-9412, vulnerable- and
    patched-based (Tables IV and V). *)

val tab6 : Format.formatter -> Grid.run list -> unit
(** Per-CVE accuracy on Android Things, vulnerable-reference (Table VI). *)

val tab7 : Format.formatter -> Grid.run list -> unit
(** As Table VI with patched references (Table VII). *)

val tab8 : Format.formatter -> Grid.run list -> unit
(** Final patch-detection results vs ground truth (Table VIII). *)

val speed : Format.formatter -> Grid.run list -> unit
(** Stage timing summary (§V-E). *)

val simcheck : Format.formatter -> Context.t -> unit
(** §V-D's sanity experiment: the model's similarity score between the
    vulnerable and patched version of each CVE function.  Scores below the
    0.5 threshold are the pairs a vulnerable-reference search can miss —
    why Table VII runs the patched reference too. *)
