lib/evaluation/grid.ml: Context Corpus List Loader Option Patchecko Printf Similarity
