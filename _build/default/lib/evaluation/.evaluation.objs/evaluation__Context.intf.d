lib/evaluation/context.mli: Corpus Loader Nn Patchecko
