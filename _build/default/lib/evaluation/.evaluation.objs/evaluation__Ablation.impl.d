lib/evaluation/ablation.ml: Array Context Corpus Format Grid Int List Loader Minic Nn Patchecko Similarity Staticfeat Util
