lib/evaluation/render.mli: Context Format Grid
