lib/evaluation/baselines.mli: Context Format Grid
