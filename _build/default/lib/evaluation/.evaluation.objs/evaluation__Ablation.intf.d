lib/evaluation/ablation.mli: Context Corpus Format Grid Minic
