lib/evaluation/context.ml: Corpus List Loader Nn Patchecko Printf Staticfeat Util
