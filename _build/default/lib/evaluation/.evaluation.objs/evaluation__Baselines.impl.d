lib/evaluation/baselines.ml: Array Baseline Context Corpus Format Grid List Loader Patchecko
