lib/evaluation/grid.mli: Context Corpus Patchecko
