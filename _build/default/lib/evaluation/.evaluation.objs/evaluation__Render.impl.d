lib/evaluation/render.ml: Array Context Corpus Format Grid List Nn Option Patchecko Printf Similarity Util Vm
