(** The common instruction set.

    Instructions are parametric in the branch-target type ['lbl]: the
    assembler works over [string t] (symbolic labels) and the disassembler
    yields [int t] (byte offsets within the enclosing function).  All four
    architecture encodings serialise this one instruction set with
    different opcode maps, endianness, immediate widths and alignment, so a
    function compiled for two architectures has different bytes but
    round-trips to comparable instruction streams — mirroring how the
    paper's IDA plugin normalises heterogeneous binaries. *)

type operand = Reg of Reg.t | Imm of int64

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type width = W1 | W8
(** Byte and 64-bit word memory accesses. *)

type 'lbl t =
  | Nop
  | Mov of Reg.t * operand
  | Binop of binop * Reg.t * Reg.t * operand
  | Fbinop of fbinop * Reg.t * Reg.t * Reg.t
      (** Operates on registers holding IEEE-754 bit patterns. *)
  | Neg of Reg.t * Reg.t
  | Not of Reg.t * Reg.t
  | I2f of Reg.t * Reg.t
  | F2i of Reg.t * Reg.t
  | Load of width * Reg.t * Reg.t * int  (** [dst <- mem\[base+off\]]. *)
  | Store of width * Reg.t * Reg.t * int  (** [mem\[base+off\] <- src]. *)
  | Lea of Reg.t * int64  (** Absolute data-section address. *)
  | Cmp of Reg.t * operand  (** Sets flags (signed compare). *)
  | Fcmp of Reg.t * Reg.t
  | Jmp of 'lbl
  | Jcc of Cond.t * 'lbl
  | Jtable of Reg.t * 'lbl array
      (** Indirect jump through an inline table (switch lowering); the
          register selects the entry, out-of-range traps. *)
  | Call of int  (** Index into the image call table. *)
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Syscall of int

val map_label : ('a -> 'b) -> 'a t -> 'b t

val is_arith : 'lbl t -> bool
(** Integer arithmetic/logic (Binop, Neg, Not) — the "arithmetic
    instruction" class of Tables I and II. *)

val is_arith_fp : 'lbl t -> bool
val is_branch : 'lbl t -> bool
(** Control transfers other than call/ret. *)

val is_call : 'lbl t -> bool
val is_load : 'lbl t -> bool
val is_store : 'lbl t -> bool

val is_terminator : 'lbl t -> bool
(** Ends a basic block: jumps, conditional jumps, table jumps, returns. *)

val constants : 'lbl t -> int64 list
(** Immediate constants appearing in the instruction (for the
    [num_constant] feature). *)

val data_refs : 'lbl t -> int64 list
(** Absolute data addresses referenced ([Lea]); used for the
    [num_string] feature. *)

val mnemonic : 'lbl t -> string
val pp : (Format.formatter -> 'lbl -> unit) -> Format.formatter -> 'lbl t -> unit
