type operand = Reg of Reg.t | Imm of int64

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type width = W1 | W8

type 'lbl t =
  | Nop
  | Mov of Reg.t * operand
  | Binop of binop * Reg.t * Reg.t * operand
  | Fbinop of fbinop * Reg.t * Reg.t * Reg.t
  | Neg of Reg.t * Reg.t
  | Not of Reg.t * Reg.t
  | I2f of Reg.t * Reg.t
  | F2i of Reg.t * Reg.t
  | Load of width * Reg.t * Reg.t * int
  | Store of width * Reg.t * Reg.t * int
  | Lea of Reg.t * int64
  | Cmp of Reg.t * operand
  | Fcmp of Reg.t * Reg.t
  | Jmp of 'lbl
  | Jcc of Cond.t * 'lbl
  | Jtable of Reg.t * 'lbl array
  | Call of int
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Syscall of int

let map_label f = function
  | Nop -> Nop
  | Mov (d, o) -> Mov (d, o)
  | Binop (op, d, a, o) -> Binop (op, d, a, o)
  | Fbinop (op, d, a, b) -> Fbinop (op, d, a, b)
  | Neg (d, a) -> Neg (d, a)
  | Not (d, a) -> Not (d, a)
  | I2f (d, a) -> I2f (d, a)
  | F2i (d, a) -> F2i (d, a)
  | Load (w, d, b, off) -> Load (w, d, b, off)
  | Store (w, s, b, off) -> Store (w, s, b, off)
  | Lea (d, addr) -> Lea (d, addr)
  | Cmp (a, o) -> Cmp (a, o)
  | Fcmp (a, b) -> Fcmp (a, b)
  | Jmp l -> Jmp (f l)
  | Jcc (c, l) -> Jcc (c, f l)
  | Jtable (r, ls) -> Jtable (r, Array.map f ls)
  | Call i -> Call i
  | Ret -> Ret
  | Push r -> Push r
  | Pop r -> Pop r
  | Syscall n -> Syscall n

let is_arith = function
  | Binop _ | Neg _ | Not _ -> true
  | Nop | Mov _ | Fbinop _ | I2f _ | F2i _ | Load _ | Store _ | Lea _ | Cmp _
  | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _ | Ret | Push _ | Pop _
  | Syscall _ ->
    false

let is_arith_fp = function
  | Fbinop _ | I2f _ | F2i _ -> true
  | Nop | Mov _ | Binop _ | Neg _ | Not _ | Load _ | Store _ | Lea _ | Cmp _
  | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _ | Ret | Push _ | Pop _
  | Syscall _ ->
    false

let is_branch = function
  | Jmp _ | Jcc _ | Jtable _ -> true
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Store _ | Lea _ | Cmp _ | Fcmp _ | Call _ | Ret | Push _ | Pop _
  | Syscall _ ->
    false

let is_call = function
  | Call _ -> true
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Ret | Push _
  | Pop _ | Syscall _ ->
    false

let is_load = function
  | Load _ | Pop _ -> true
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Store _
  | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _ | Ret | Push _
  | Syscall _ ->
    false

let is_store = function
  | Store _ | Push _ -> true
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _ | Ret | Pop _
  | Syscall _ ->
    false

let is_terminator = function
  | Jmp _ | Jcc _ | Jtable _ | Ret -> true
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Store _ | Lea _ | Cmp _ | Fcmp _ | Call _ | Push _ | Pop _ | Syscall _ ->
    false

let constants = function
  | Mov (_, Imm v) | Binop (_, _, _, Imm v) | Cmp (_, Imm v) -> [ v ]
  | Nop | Mov (_, Reg _) | Binop (_, _, _, Reg _) | Fbinop _ | Neg _ | Not _
  | I2f _ | F2i _ | Load _ | Store _ | Lea _ | Cmp (_, Reg _) | Fcmp _ | Jmp _
  | Jcc _ | Jtable _ | Call _ | Ret | Push _ | Pop _ | Syscall _ ->
    []

let data_refs = function
  | Lea (_, addr) -> [ addr ]
  | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _ | Load _
  | Store _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _ | Ret
  | Push _ | Pop _ | Syscall _ ->
    []

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let mnemonic = function
  | Nop -> "nop"
  | Mov _ -> "mov"
  | Binop (op, _, _, _) -> binop_name op
  | Fbinop (op, _, _, _) -> fbinop_name op
  | Neg _ -> "neg"
  | Not _ -> "not"
  | I2f _ -> "i2f"
  | F2i _ -> "f2i"
  | Load (W8, _, _, _) -> "ld"
  | Load (W1, _, _, _) -> "ldb"
  | Store (W8, _, _, _) -> "st"
  | Store (W1, _, _, _) -> "stb"
  | Lea _ -> "lea"
  | Cmp _ -> "cmp"
  | Fcmp _ -> "fcmp"
  | Jmp _ -> "jmp"
  | Jcc (c, _) -> "j" ^ Cond.to_string c
  | Jtable _ -> "jtab"
  | Call _ -> "call"
  | Ret -> "ret"
  | Push _ -> "push"
  | Pop _ -> "pop"
  | Syscall _ -> "syscall"

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm v -> Format.fprintf ppf "#%Ld" v

let pp pp_lbl ppf t =
  let p fmt = Format.fprintf ppf fmt in
  match t with
  | Nop -> p "nop"
  | Mov (d, o) -> p "mov %a, %a" Reg.pp d pp_operand o
  | Binop (op, d, a, o) ->
    p "%s %a, %a, %a" (binop_name op) Reg.pp d Reg.pp a pp_operand o
  | Fbinop (op, d, a, b) ->
    p "%s %a, %a, %a" (fbinop_name op) Reg.pp d Reg.pp a Reg.pp b
  | Neg (d, a) -> p "neg %a, %a" Reg.pp d Reg.pp a
  | Not (d, a) -> p "not %a, %a" Reg.pp d Reg.pp a
  | I2f (d, a) -> p "i2f %a, %a" Reg.pp d Reg.pp a
  | F2i (d, a) -> p "f2i %a, %a" Reg.pp d Reg.pp a
  | Load (w, d, b, off) ->
    p "%s %a, [%a%+d]" (mnemonic (Load (w, d, b, off))) Reg.pp d Reg.pp b off
  | Store (w, s, b, off) ->
    p "%s %a, [%a%+d]" (mnemonic (Store (w, s, b, off))) Reg.pp s Reg.pp b off
  | Lea (d, addr) -> p "lea %a, 0x%Lx" Reg.pp d addr
  | Cmp (a, o) -> p "cmp %a, %a" Reg.pp a pp_operand o
  | Fcmp (a, b) -> p "fcmp %a, %a" Reg.pp a Reg.pp b
  | Jmp l -> p "jmp %a" pp_lbl l
  | Jcc (c, l) -> p "j%s %a" (Cond.to_string c) pp_lbl l
  | Jtable (r, ls) ->
    p "jtab %a, [" Reg.pp r;
    Array.iteri
      (fun i l ->
        if i > 0 then p ", ";
        pp_lbl ppf l)
      ls;
    p "]"
  | Call i -> p "call @%d" i
  | Ret -> p "ret"
  | Push r -> p "push %a" Reg.pp r
  | Pop r -> p "pop %a" Reg.pp r
  | Syscall n -> p "syscall %d" n
