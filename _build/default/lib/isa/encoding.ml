type params = {
  arch : Arch.t;
  opcode_of : int -> int;
  logical_of : int -> int;
  big_endian : bool;
  prefix : int option;
  unit_size : int;
  compact_imm : bool;
}

exception Invalid_encoding of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_encoding s)) fmt

(* Logical opcode numbers; each arch permutes them onto the wire. *)
let op_nop = 0
and op_mov_reg = 1
and op_mov_imm = 2
and op_binop_reg = 3
and op_binop_imm = 4
and op_fbinop = 5
and op_neg = 6
and op_not = 7
and op_i2f = 8
and op_f2i = 9
and op_load8 = 10
and op_load1 = 11
and op_store8 = 12
and op_store1 = 13
and op_lea = 14
and op_cmp_reg = 15
and op_cmp_imm = 16
and op_fcmp = 17
and op_jmp = 18
and op_jcc = 19
and op_jtable = 20
and op_call = 21
and op_ret = 22
and op_push = 23
and op_pop = 24
and op_syscall = 25

let binop_code : Instr.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let binop_of_code : int -> Instr.binop = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | 4 -> Rem
  | 5 -> And
  | 6 -> Or
  | 7 -> Xor
  | 8 -> Shl
  | 9 -> Shr
  | n -> fail "bad binop code %d" n

let fbinop_code : Instr.fbinop -> int = function
  | Fadd -> 0
  | Fsub -> 1
  | Fmul -> 2
  | Fdiv -> 3

let fbinop_of_code : int -> Instr.fbinop = function
  | 0 -> Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | n -> fail "bad fbinop code %d" n

(* Per-architecture permutation of the opcode byte, derived from a seeded
   shuffle so that the four wire formats share no opcode values by
   accident of layout. *)
let make_perm seed =
  let rng = Util.Prng.create seed in
  let perm = Array.init 256 (fun i -> i) in
  Util.Prng.shuffle rng perm;
  let inv = Array.make 256 0 in
  Array.iteri (fun i v -> inv.(v) <- i) perm;
  (perm, inv)

let params_of_arch arch =
  let seed, big_endian, prefix, unit_size, compact_imm =
    match arch with
    | Arch.X86 -> (0x8601L, false, None, 1, true)
    | Arch.Amd64 -> (0x6464L, false, Some 0x66, 1, true)
    | Arch.Arm32 -> (0x3232L, true, None, 4, true)
    | Arch.Arm64 -> (0x6446L, false, None, 8, false)
  in
  let perm, inv = make_perm seed in
  {
    arch;
    opcode_of = (fun i -> perm.(i));
    logical_of = (fun i -> inv.(i));
    big_endian;
    prefix;
    unit_size;
    compact_imm;
  }

(* --- primitive writers/readers ------------------------------------- *)

let write_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let write_bytes p buf ~len v =
  (* little- or big-endian [len]-byte two's complement of [v] *)
  if p.big_endian then
    for i = len - 1 downto 0 do
      write_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done
  else
    for i = 0 to len - 1 do
      write_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let read_u8 code pos =
  if pos >= Bytes.length code then fail "truncated at %d" pos;
  Char.code (Bytes.get code pos)

let read_bytes p code pos ~len =
  if pos + len > Bytes.length code then fail "truncated field at %d" pos;
  let v = ref 0L in
  if p.big_endian then
    for i = 0 to len - 1 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 code (pos + i)))
    done
  else
    for i = len - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 code (pos + i)))
    done;
  !v

let sign_extend v bits =
  let shift = 64 - bits in
  Int64.shift_right (Int64.shift_left v shift) shift

(* Signed immediates: with [compact_imm] a tag byte selects 1/2/4/8 data
   bytes; otherwise a fixed 8 bytes. *)
let write_imm p buf v =
  if not p.compact_imm then write_bytes p buf ~len:8 v
  else begin
    let fits bits =
      let m = Int64.shift_left 1L (bits - 1) in
      v >= Int64.neg m && v < m
    in
    if fits 8 then begin
      write_u8 buf 0;
      write_bytes p buf ~len:1 v
    end
    else if fits 16 then begin
      write_u8 buf 1;
      write_bytes p buf ~len:2 v
    end
    else if fits 32 then begin
      write_u8 buf 2;
      write_bytes p buf ~len:4 v
    end
    else begin
      write_u8 buf 3;
      write_bytes p buf ~len:8 v
    end
  end

let read_imm p code pos =
  if not p.compact_imm then (read_bytes p code pos ~len:8, pos + 8)
  else begin
    let tag = read_u8 code pos in
    let len =
      match tag with
      | 0 -> 1
      | 1 -> 2
      | 2 -> 4
      | 3 -> 8
      | t -> fail "bad imm tag %d at %d" t pos
    in
    let raw = read_bytes p code (pos + 1) ~len in
    (sign_extend raw (8 * len), pos + 1 + len)
  end

let write_i32 p buf v = write_bytes p buf ~len:4 (Int64.of_int v)

let read_i32 p code pos =
  let v = sign_extend (read_bytes p code pos ~len:4) 32 in
  (Int64.to_int v, pos + 4)

let write_u16 p buf v = write_bytes p buf ~len:2 (Int64.of_int v)

let read_u16 p code pos =
  let v = read_bytes p code pos ~len:2 in
  (Int64.to_int v, pos + 2)

let check_reg r = if r < 0 || r >= Reg.count then fail "bad register %d" r else r

(* --- instruction encode --------------------------------------------- *)

let encode_body p buf (ins : int Instr.t) =
  let op logical = write_u8 buf (p.opcode_of logical) in
  let reg r = write_u8 buf r in
  match ins with
  | Nop -> op op_nop
  | Mov (d, Reg s) ->
    op op_mov_reg;
    reg d;
    reg s
  | Mov (d, Imm v) ->
    op op_mov_imm;
    reg d;
    write_imm p buf v
  | Binop (k, d, a, Reg b) ->
    op op_binop_reg;
    write_u8 buf (binop_code k);
    reg d;
    reg a;
    reg b
  | Binop (k, d, a, Imm v) ->
    op op_binop_imm;
    write_u8 buf (binop_code k);
    reg d;
    reg a;
    write_imm p buf v
  | Fbinop (k, d, a, b) ->
    op op_fbinop;
    write_u8 buf (fbinop_code k);
    reg d;
    reg a;
    reg b
  | Neg (d, a) ->
    op op_neg;
    reg d;
    reg a
  | Not (d, a) ->
    op op_not;
    reg d;
    reg a
  | I2f (d, a) ->
    op op_i2f;
    reg d;
    reg a
  | F2i (d, a) ->
    op op_f2i;
    reg d;
    reg a
  | Load (W8, d, b, off) ->
    op op_load8;
    reg d;
    reg b;
    write_i32 p buf off
  | Load (W1, d, b, off) ->
    op op_load1;
    reg d;
    reg b;
    write_i32 p buf off
  | Store (W8, s, b, off) ->
    op op_store8;
    reg s;
    reg b;
    write_i32 p buf off
  | Store (W1, s, b, off) ->
    op op_store1;
    reg s;
    reg b;
    write_i32 p buf off
  | Lea (d, addr) ->
    op op_lea;
    reg d;
    write_imm p buf addr
  | Cmp (a, Reg b) ->
    op op_cmp_reg;
    reg a;
    reg b
  | Cmp (a, Imm v) ->
    op op_cmp_imm;
    reg a;
    write_imm p buf v
  | Fcmp (a, b) ->
    op op_fcmp;
    reg a;
    reg b
  | Jmp target ->
    op op_jmp;
    write_i32 p buf target
  | Jcc (c, target) ->
    op op_jcc;
    write_u8 buf (Cond.to_int c);
    write_i32 p buf target
  | Jtable (r, targets) ->
    op op_jtable;
    reg r;
    write_u16 p buf (Array.length targets);
    Array.iter (fun t -> write_i32 p buf t) targets
  | Call idx ->
    op op_call;
    write_i32 p buf idx
  | Ret -> op op_ret
  | Push r ->
    op op_push;
    reg r
  | Pop r ->
    op op_pop;
    reg r
  | Syscall n ->
    op op_syscall;
    write_u8 buf n

let encode p buf ins =
  (match p.prefix with None -> () | Some b -> write_u8 buf b);
  encode_body p buf ins;
  if p.unit_size > 1 then begin
    let rem = Buffer.length buf mod p.unit_size in
    if rem <> 0 then
      for _ = 1 to p.unit_size - rem do
        write_u8 buf 0xEE
      done
  end

(* Padding correctness relies on every encoded stream starting at a
   unit-aligned boundary, which holds because functions are encoded from
   offset 0 of their own byte array. *)

let decode_body p code pos =
  let opcode = p.logical_of (read_u8 code pos) in
  let pos = pos + 1 in
  let reg at = check_reg (read_u8 code at) in
  if opcode = op_nop then ((Instr.Nop : int Instr.t), pos)
  else if opcode = op_mov_reg then (Mov (reg pos, Reg (reg (pos + 1))), pos + 2)
  else if opcode = op_mov_imm then begin
    let d = reg pos in
    let v, pos = read_imm p code (pos + 1) in
    (Mov (d, Imm v), pos)
  end
  else if opcode = op_binop_reg then
    let k = binop_of_code (read_u8 code pos) in
    (Binop (k, reg (pos + 1), reg (pos + 2), Reg (reg (pos + 3))), pos + 4)
  else if opcode = op_binop_imm then begin
    let k = binop_of_code (read_u8 code pos) in
    let d = reg (pos + 1) in
    let a = reg (pos + 2) in
    let v, pos = read_imm p code (pos + 3) in
    (Binop (k, d, a, Imm v), pos)
  end
  else if opcode = op_fbinop then
    let k = fbinop_of_code (read_u8 code pos) in
    (Fbinop (k, reg (pos + 1), reg (pos + 2), reg (pos + 3)), pos + 4)
  else if opcode = op_neg then (Neg (reg pos, reg (pos + 1)), pos + 2)
  else if opcode = op_not then (Not (reg pos, reg (pos + 1)), pos + 2)
  else if opcode = op_i2f then (I2f (reg pos, reg (pos + 1)), pos + 2)
  else if opcode = op_f2i then (F2i (reg pos, reg (pos + 1)), pos + 2)
  else if opcode = op_load8 || opcode = op_load1 then begin
    let w : Instr.width = if opcode = op_load8 then W8 else W1 in
    let d = reg pos in
    let b = reg (pos + 1) in
    let off, pos = read_i32 p code (pos + 2) in
    (Load (w, d, b, off), pos)
  end
  else if opcode = op_store8 || opcode = op_store1 then begin
    let w : Instr.width = if opcode = op_store8 then W8 else W1 in
    let s = reg pos in
    let b = reg (pos + 1) in
    let off, pos = read_i32 p code (pos + 2) in
    (Store (w, s, b, off), pos)
  end
  else if opcode = op_lea then begin
    let d = reg pos in
    let v, pos = read_imm p code (pos + 1) in
    (Lea (d, v), pos)
  end
  else if opcode = op_cmp_reg then (Cmp (reg pos, Reg (reg (pos + 1))), pos + 2)
  else if opcode = op_cmp_imm then begin
    let a = reg pos in
    let v, pos = read_imm p code (pos + 1) in
    (Cmp (a, Imm v), pos)
  end
  else if opcode = op_fcmp then (Fcmp (reg pos, reg (pos + 1)), pos + 2)
  else if opcode = op_jmp then begin
    let t, pos = read_i32 p code pos in
    (Jmp t, pos)
  end
  else if opcode = op_jcc then begin
    let c =
      match Cond.of_int (read_u8 code pos) with
      | Some c -> c
      | None -> fail "bad condition at %d" pos
    in
    let t, pos = read_i32 p code (pos + 1) in
    (Jcc (c, t), pos)
  end
  else if opcode = op_jtable then begin
    let r = reg pos in
    let n, pos = read_u16 p code (pos + 1) in
    let targets = Array.make n 0 in
    let pos = ref pos in
    for i = 0 to n - 1 do
      let t, next = read_i32 p code !pos in
      targets.(i) <- t;
      pos := next
    done;
    (Jtable (r, targets), !pos)
  end
  else if opcode = op_call then begin
    let idx, pos = read_i32 p code pos in
    (Call idx, pos)
  end
  else if opcode = op_ret then (Ret, pos)
  else if opcode = op_push then (Push (reg pos), pos + 1)
  else if opcode = op_pop then (Pop (reg pos), pos + 1)
  else if opcode = op_syscall then (Syscall (read_u8 code pos), pos + 1)
  else fail "unknown opcode %d at %d" opcode (pos - 1)

let decode p code pos =
  let pos =
    match p.prefix with
    | None -> pos
    | Some b ->
      if read_u8 code pos <> b then fail "missing prefix at %d" pos;
      pos + 1
  in
  let ins, next = decode_body p code pos in
  let next =
    if p.unit_size > 1 then begin
      let rem = next mod p.unit_size in
      if rem = 0 then next else next + (p.unit_size - rem)
    end
    else next
  in
  (ins, next)

let encoded_size p ins =
  let buf = Buffer.create 16 in
  encode p buf ins;
  Buffer.length buf
