(** Machine encodings of the common instruction set.

    Each architecture serialises {!Instr.t} with its own opcode map
    (a seeded permutation), endianness, immediate compaction, optional
    instruction prefix and alignment unit.  Branch targets are encoded as
    4-byte function-relative byte offsets in every architecture so that
    instruction sizes do not depend on label values (single-pass layout in
    the assembler). *)

type params = {
  arch : Arch.t;
  opcode_of : int -> int;  (** logical opcode -> wire opcode *)
  logical_of : int -> int;  (** inverse map *)
  big_endian : bool;
  prefix : int option;  (** mandatory per-instruction prefix byte *)
  unit_size : int;  (** instructions padded to a multiple of this *)
  compact_imm : bool;  (** variable-width immediates vs fixed 8 bytes *)
}

exception Invalid_encoding of string
(** Raised by {!decode} on malformed byte streams. *)

val params_of_arch : Arch.t -> params

val encode : params -> Buffer.t -> int Instr.t -> unit
(** Append the encoding of one instruction (targets are byte offsets). *)

val decode : params -> bytes -> int -> int Instr.t * int
(** [decode p code pos] returns the instruction at [pos] and the offset of
    the next instruction.  Raises {!Invalid_encoding}. *)

val encoded_size : params -> int Instr.t -> int
(** Size in bytes of one encoded instruction. *)
