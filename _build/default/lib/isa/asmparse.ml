exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

(* tokens: words, numbers, punctuation , [ ] : ; *)
let tokenize line text =
  let tokens = ref [] in
  let n = String.length text in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '@' || c = '#' || c = '-' || c = '+' || c = 'x'
  in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = ';' then i := n (* comment *)
    else if c = ',' || c = '[' || c = ']' || c = ':' then begin
      tokens := String.make 1 c :: !tokens;
      incr i
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word text.[!i] do
        incr i
      done;
      tokens := String.sub text start (!i - start) :: !tokens
    end
    else fail line "unexpected character %C" c
  done;
  List.rev !tokens

let reg_of_token line tok =
  if tok = "sp" then Reg.sp
  else if tok = "fp" then Reg.fp
  else if String.length tok >= 2 && tok.[0] = 'r' then begin
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i when i >= 0 && i < Reg.count -> i
    | Some _ | None -> fail line "bad register %S" tok
  end
  else fail line "expected register, got %S" tok

let imm_of_token line tok =
  if String.length tok >= 1 && tok.[0] = '#' then begin
    match Int64.of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some v -> v
    | None -> fail line "bad immediate %S" tok
  end
  else fail line "expected immediate, got %S" tok

let operand_of_token line tok : Instr.operand =
  if String.length tok >= 1 && tok.[0] = '#' then Imm (imm_of_token line tok)
  else Reg (reg_of_token line tok)

(* memory operand written as  [ base+off ]  or  [ base-off ]  or [ base ] *)
let parse_mem line tokens =
  match tokens with
  | "[" :: base :: "]" :: rest ->
    (* base token may embed the offset: "fp-16" / "r3+8" / "fp+0" *)
    let split_at_sign s =
      let rec find i =
        if i >= String.length s then None
        else if (s.[i] = '+' || s.[i] = '-') && i > 0 then Some i
        else find (i + 1)
      in
      find 0
    in
    (match split_at_sign base with
    | None -> ((reg_of_token line base, 0), rest)
    | Some i ->
      let reg = reg_of_token line (String.sub base 0 i) in
      let off_text = String.sub base i (String.length base - i) in
      (match int_of_string_opt off_text with
      | Some off -> ((reg, off), rest)
      | None -> fail line "bad memory offset %S" off_text))
  | _ -> fail line "expected memory operand"

let binop_of_mnemonic = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | _ -> None

let fbinop_of_mnemonic = function
  | "fadd" -> Some Instr.Fadd
  | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul
  | "fdiv" -> Some Instr.Fdiv
  | _ -> None

let cond_of_mnemonic m =
  if String.length m >= 2 && m.[0] = 'j' then
    List.find_opt
      (fun c -> "j" ^ Cond.to_string c = m)
      Cond.all
  else None

let parse_instr_tokens line tokens : string Instr.t =
  let comma rest =
    match rest with
    | "," :: tail -> tail
    | _ -> fail line "expected ','"
  in
  match tokens with
  | [] -> fail line "empty instruction"
  | [ "nop" ] -> Nop
  | [ "ret" ] -> Ret
  | "mov" :: d :: rest ->
    let rest = comma rest in
    (match rest with
    | [ o ] -> Mov (reg_of_token line d, operand_of_token line o)
    | _ -> fail line "mov needs two operands")
  | "neg" :: d :: rest -> (
    match comma rest with
    | [ a ] -> Neg (reg_of_token line d, reg_of_token line a)
    | _ -> fail line "neg needs two registers")
  | "not" :: d :: rest -> (
    match comma rest with
    | [ a ] -> Not (reg_of_token line d, reg_of_token line a)
    | _ -> fail line "not needs two registers")
  | "i2f" :: d :: rest -> (
    match comma rest with
    | [ a ] -> I2f (reg_of_token line d, reg_of_token line a)
    | _ -> fail line "i2f needs two registers")
  | "f2i" :: d :: rest -> (
    match comma rest with
    | [ a ] -> F2i (reg_of_token line d, reg_of_token line a)
    | _ -> fail line "f2i needs two registers")
  | ("ld" | "ldb") :: d :: rest ->
    let width : Instr.width = if List.hd tokens = "ld" then W8 else W1 in
    let rest = comma rest in
    let (base, off), rest = parse_mem line rest in
    if rest <> [] then fail line "trailing tokens after load";
    Load (width, reg_of_token line d, base, off)
  | ("st" | "stb") :: s :: rest ->
    let width : Instr.width = if List.hd tokens = "st" then W8 else W1 in
    let rest = comma rest in
    let (base, off), rest = parse_mem line rest in
    if rest <> [] then fail line "trailing tokens after store";
    Store (width, reg_of_token line s, base, off)
  | "lea" :: d :: rest -> (
    match comma rest with
    | [ addr ] -> (
      match Int64.of_string_opt addr with
      | Some v -> Lea (reg_of_token line d, v)
      | None -> fail line "bad address %S" addr)
    | _ -> fail line "lea needs a register and an address")
  | "cmp" :: a :: rest -> (
    match comma rest with
    | [ o ] -> Cmp (reg_of_token line a, operand_of_token line o)
    | _ -> fail line "cmp needs two operands")
  | "fcmp" :: a :: rest -> (
    match comma rest with
    | [ b ] -> Fcmp (reg_of_token line a, reg_of_token line b)
    | _ -> fail line "fcmp needs two registers")
  | [ "jmp"; target ] -> Jmp target
  | "jtab" :: r :: rest -> begin
    let rest = comma rest in
    match rest with
    | "[" :: tail ->
      let rec targets acc = function
        | "]" :: [] -> List.rev acc
        | t :: "]" :: [] -> List.rev (t :: acc)
        | t :: "," :: more -> targets (t :: acc) more
        | t :: more -> targets (t :: acc) more
        | [] -> fail line "unterminated jump table"
      in
      Jtable (reg_of_token line r, Array.of_list (targets [] tail))
    | _ -> fail line "jtab needs a [targets] list"
  end
  | [ "call"; target ] ->
    if String.length target >= 2 && target.[0] = '@' then begin
      match int_of_string_opt (String.sub target 1 (String.length target - 1)) with
      | Some idx -> Call idx
      | None -> fail line "bad call index %S" target
    end
    else fail line "call target must be @index"
  | [ "push"; r ] -> Push (reg_of_token line r)
  | [ "pop"; r ] -> Pop (reg_of_token line r)
  | [ "syscall"; n ] -> (
    match int_of_string_opt n with
    | Some v -> Syscall v
    | None -> fail line "bad syscall number %S" n)
  | mnemonic :: d :: rest -> begin
    match binop_of_mnemonic mnemonic with
    | Some op -> begin
      let rest = comma rest in
      match rest with
      | a :: rest -> begin
        match comma rest with
        | [ o ] ->
          Binop (op, reg_of_token line d, reg_of_token line a, operand_of_token line o)
        | _ -> fail line "%s needs three operands" mnemonic
      end
      | [] -> fail line "%s needs three operands" mnemonic
    end
    | None -> (
      match fbinop_of_mnemonic mnemonic with
      | Some op -> begin
        let rest = comma rest in
        match rest with
        | a :: rest -> begin
          match comma rest with
          | [ b ] ->
            Fbinop (op, reg_of_token line d, reg_of_token line a, reg_of_token line b)
          | _ -> fail line "%s needs three registers" mnemonic
        end
        | [] -> fail line "%s needs three registers" mnemonic
      end
      | None -> (
        match cond_of_mnemonic mnemonic with
        | Some c -> (
          match d :: rest with
          | [ target ] -> Jcc (c, target)
          | _ -> fail line "%s needs a target" mnemonic)
        | None -> fail line "unknown mnemonic %S" mnemonic))
  end
  | [ other ] -> fail line "unknown instruction %S" other

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun idx raw ->
         let line = idx + 1 in
         let trimmed = String.trim raw in
         if trimmed = "" || trimmed.[0] = ';' then []
         else begin
           match tokenize line trimmed with
           | [] -> []
           | [ name; ":" ] -> [ Asm.Label name ]
           | name :: ":" :: rest when rest <> [] ->
             [ Asm.Label name; Asm.Ins (parse_instr_tokens line rest) ]
           | tokens -> [ Asm.Ins (parse_instr_tokens line tokens) ]
         end)
       lines)

let parse_instr text =
  match parse text with
  | [ Asm.Ins ins ] -> ins
  | _ -> raise (Parse_error (1, "expected exactly one instruction"))

let print items =
  let buf = Buffer.create 256 in
  List.iter
    (fun item ->
      match item with
      | Asm.Label name -> Buffer.add_string buf (name ^ ":\n")
      | Asm.Ins ins ->
        Buffer.add_string buf
          ("  " ^ Format.asprintf "%a" (Instr.pp Format.pp_print_string) ins ^ "\n"))
    items;
  Buffer.contents buf
