type t = X86 | Amd64 | Arm32 | Arm64

let all = [ X86; Amd64; Arm32; Arm64 ]

let to_string = function
  | X86 -> "x86"
  | Amd64 -> "amd64"
  | Arm32 -> "arm32"
  | Arm64 -> "arm64"

let of_string = function
  | "x86" -> Some X86
  | "amd64" -> Some Amd64
  | "arm32" -> Some Arm32
  | "arm64" -> Some Arm64
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = a = b
let compare = Stdlib.compare
