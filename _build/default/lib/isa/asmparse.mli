(** Textual assembly parser — the inverse of {!Instr.pp} with string
    labels.  One item per line: either a label definition ("loop:") or an
    instruction ("add r1, r2, #5"); ';' and '#'-at-start comments and blank
    lines are skipped.  Lets tests and tools write functions by hand and
    round-trip printed listings. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> Asm.item list
val parse_instr : string -> string Instr.t
(** A single instruction, no label definitions. *)

val print : Asm.item list -> string
(** Render items in the accepted syntax ([parse (print items) = items]). *)
