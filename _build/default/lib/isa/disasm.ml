type listing = {
  arch : Arch.t;
  instrs : int Instr.t array;
  offsets : int array;
  size : int;
}

let disassemble params code =
  let size = Bytes.length code in
  let instrs = ref [] in
  let offsets = ref [] in
  let pos = ref 0 in
  while !pos < size do
    let ins, next = Encoding.decode params code !pos in
    instrs := ins :: !instrs;
    offsets := !pos :: !offsets;
    pos := next
  done;
  {
    arch = params.Encoding.arch;
    instrs = Array.of_list (List.rev !instrs);
    offsets = Array.of_list (List.rev !offsets);
    size;
  }

let index_of_offset listing off =
  (* offsets are sorted; binary search *)
  let lo = ref 0 and hi = ref (Array.length listing.offsets - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = listing.offsets.(mid) in
    if v = off then begin
      found := Some mid;
      lo := !hi + 1
    end
    else if v < off then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let pp ppf listing =
  Array.iteri
    (fun i ins ->
      Format.fprintf ppf "%4d: %a@." listing.offsets.(i)
        (Instr.pp (fun ppf off -> Format.fprintf ppf "%d" off))
        ins)
    listing.instrs
