(** Two-level assembler: symbolic items with string labels are laid out and
    encoded to machine bytes for one architecture.

    Branch targets occupy a fixed 4 bytes in every encoding, so layout is
    single-pass: label offsets computed with placeholder targets are exact. *)

type item = Label of string | Ins of string Instr.t

exception Undefined_label of string
exception Duplicate_label of string

val assemble : Encoding.params -> item list -> bytes
(** Encode a function body.  Raises {!Undefined_label} or
    {!Duplicate_label}. *)

val label_offsets : Encoding.params -> item list -> (string * int) list
(** Byte offset of each label after layout (mainly for tests). *)
