(** Machine registers.

    Sixteen general-purpose 64-bit registers.  By convention [r0] carries
    return values, [r0]..[r5] carry the first six arguments, [r6]..[r11]
    are caller-saved scratch, [r12] is the assembler temporary, [fp]=r14 is
    the frame pointer and [sp]=r15 the stack pointer. *)

type t = int

val count : int
val r : int -> t
(** [r i] for [0 <= i < count]; raises [Invalid_argument] otherwise. *)

val sp : t
val fp : t
val tmp : t
(** Assembler/compiler scratch register (r12). *)

val ret : t
(** Return-value register (r0). *)

val arg : int -> t
(** [arg i] is the i-th argument register, [0 <= i <= 5]. *)

val max_args : int
(** Number of register-passed arguments supported by the ABI. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
