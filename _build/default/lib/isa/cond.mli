(** Branch conditions over the flags set by [Cmp]/[Fcmp]. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val all : t list
val negate : t -> t
val holds : t -> int -> bool
(** [holds c sign] where [sign] is the signum of [lhs - rhs]. *)

val to_int : t -> int
val of_int : int -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
