type item = Label of string | Ins of string Instr.t

exception Undefined_label of string
exception Duplicate_label of string

let layout params items =
  let table = Hashtbl.create 16 in
  let offset = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label name ->
        if Hashtbl.mem table name then raise (Duplicate_label name);
        Hashtbl.add table name !offset
      | Ins ins ->
        let sized = Instr.map_label (fun _ -> 0) ins in
        offset := !offset + Encoding.encoded_size params sized)
    items;
  table

let resolve table name =
  match Hashtbl.find_opt table name with
  | Some off -> off
  | None -> raise (Undefined_label name)

let assemble params items =
  let table = layout params items in
  let buf = Buffer.create 256 in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Ins ins ->
        Encoding.encode params buf (Instr.map_label (resolve table) ins))
    items;
  Buffer.to_bytes buf

let label_offsets params items =
  let table = layout params items in
  List.filter_map
    (fun item ->
      match item with
      | Label name -> Some (name, Hashtbl.find table name)
      | Ins _ -> None)
    items
