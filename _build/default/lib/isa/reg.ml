type t = int

let count = 16

let r i =
  if i < 0 || i >= count then invalid_arg "Reg.r: out of range";
  i

let sp = 15
let fp = 14
let tmp = 12
let ret = 0
let max_args = 6

let arg i =
  if i < 0 || i >= max_args then invalid_arg "Reg.arg: out of range";
  i

let name t =
  if t = sp then "sp"
  else if t = fp then "fp"
  else "r" ^ string_of_int t

let pp ppf t = Format.pp_print_string ppf (name t)
