(** Linear-sweep disassembler.

    Stands in for the paper's IDA Pro front end: given the raw bytes of one
    function it recovers the instruction stream with the byte offset of
    every instruction, from which CFG recovery and feature extraction
    proceed. *)

type listing = {
  arch : Arch.t;
  instrs : int Instr.t array;  (** decoded instructions in address order *)
  offsets : int array;  (** byte offset of each instruction *)
  size : int;  (** total byte size of the function *)
}

val disassemble : Encoding.params -> bytes -> listing
(** Raises {!Encoding.Invalid_encoding} on malformed input. *)

val index_of_offset : listing -> int -> int option
(** Instruction index starting at the given byte offset. *)

val pp : Format.formatter -> listing -> unit
