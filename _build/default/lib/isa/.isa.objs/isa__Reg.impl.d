lib/isa/reg.ml: Format
