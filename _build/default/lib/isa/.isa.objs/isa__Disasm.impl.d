lib/isa/disasm.ml: Arch Array Bytes Encoding Format Instr List
