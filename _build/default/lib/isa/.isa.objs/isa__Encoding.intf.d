lib/isa/encoding.mli: Arch Buffer Instr
