lib/isa/arch.mli: Format
