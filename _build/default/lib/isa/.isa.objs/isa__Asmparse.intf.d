lib/isa/asmparse.mli: Asm Instr
