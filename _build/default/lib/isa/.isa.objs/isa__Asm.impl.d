lib/isa/asm.ml: Buffer Encoding Hashtbl Instr List
