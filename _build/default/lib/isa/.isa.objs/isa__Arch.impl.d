lib/isa/arch.ml: Format Stdlib
