lib/isa/asm.mli: Encoding Instr
