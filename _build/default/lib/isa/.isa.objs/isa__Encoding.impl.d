lib/isa/encoding.ml: Arch Array Buffer Bytes Char Cond Format Instr Int64 Reg Util
