lib/isa/instr.ml: Array Cond Format Reg
