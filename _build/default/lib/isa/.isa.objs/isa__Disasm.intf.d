lib/isa/disasm.mli: Arch Encoding Format Instr
