lib/isa/asmparse.ml: Array Asm Buffer Cond Format Instr Int64 List Reg String
