(** Target architectures.

    The paper evaluates cross-platform similarity over x86, amd64, ARM
    32-bit and ARM 64-bit binaries; we model four machine encodings of the
    common instruction set (see {!Encoding}). *)

type t = X86 | Amd64 | Arm32 | Arm64

val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
