type t = Eq | Ne | Lt | Le | Gt | Ge

let all = [ Eq; Ne; Lt; Le; Gt; Ge ]

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let holds c sign =
  match c with
  | Eq -> sign = 0
  | Ne -> sign <> 0
  | Lt -> sign < 0
  | Le -> sign <= 0
  | Gt -> sign > 0
  | Ge -> sign >= 0

let to_int = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let of_int = function
  | 0 -> Some Eq
  | 1 -> Some Ne
  | 2 -> Some Lt
  | 3 -> Some Le
  | 4 -> Some Gt
  | 5 -> Some Ge
  | _ -> None

let to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp ppf t = Format.pp_print_string ppf (to_string t)
