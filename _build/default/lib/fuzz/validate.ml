type report = {
  survivors : int list;
  crashed : (int * Vm.Machine.trap) list;
  executions : int;
}

let filter_envs ?fuel img fidx envs =
  List.filter (fun env -> Vm.Exec.survives ?fuel img fidx env) envs

let run ?fuel img ~candidates envs =
  let executions = ref 0 in
  let survivors = ref [] in
  let crashed = ref [] in
  List.iter
    (fun fidx ->
      let rec try_envs = function
        | [] -> survivors := fidx :: !survivors
        | env :: rest -> begin
          incr executions;
          match (Vm.Exec.run ?fuel img fidx env).outcome with
          | Vm.Exec.Finished _ | Vm.Exec.Exited _ -> try_envs rest
          | Vm.Exec.Crashed trap -> crashed := (fidx, trap) :: !crashed
        end
      in
      try_envs envs)
    candidates;
  {
    survivors = List.rev !survivors;
    crashed = List.rev !crashed;
    executions = !executions;
  }
