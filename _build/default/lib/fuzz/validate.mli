(** Candidate execution validation (the paper's §III-B step): run every
    candidate function on the environments that work for the reference
    function and keep only those that survive all of them — crashing
    candidates are pruned before expensive feature profiling. *)

type report = {
  survivors : int list;  (** function indices that survived every run *)
  crashed : (int * Vm.Machine.trap) list;
      (** first trap seen for each pruned candidate *)
  executions : int;  (** total runs performed *)
}

val filter_envs :
  ?fuel:int -> Loader.Image.t -> int -> Vm.Env.t list -> Vm.Env.t list
(** Keep the environments under which the given (reference) function runs
    to completion. *)

val run :
  ?fuel:int -> Loader.Image.t -> candidates:int list -> Vm.Env.t list -> report
