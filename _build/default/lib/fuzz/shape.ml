type arg =
  | Aint of int64 * int64
  | Afloat of float * float
  | Abuf of int
  | Alen

type t = arg list

let pp ppf t =
  Format.fprintf ppf "[";
  List.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf "; ";
      match a with
      | Aint (lo, hi) -> Format.fprintf ppf "int[%Ld..%Ld]" lo hi
      | Afloat (lo, hi) -> Format.fprintf ppf "float[%g..%g]" lo hi
      | Abuf n -> Format.fprintf ppf "buf[%d]" n
      | Alen -> Format.fprintf ppf "len")
    t;
  Format.fprintf ppf "]"
