lib/fuzz/shape.ml: Format List
