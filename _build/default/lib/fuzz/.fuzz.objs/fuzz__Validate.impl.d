lib/fuzz/validate.ml: List Vm
