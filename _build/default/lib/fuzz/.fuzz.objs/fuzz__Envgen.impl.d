lib/fuzz/envgen.ml: Bytes Char Int64 List Shape Util Vm
