lib/fuzz/shape.mli: Format
