lib/fuzz/validate.mli: Loader Vm
