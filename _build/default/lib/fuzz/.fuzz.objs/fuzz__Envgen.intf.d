lib/fuzz/envgen.mli: Shape Util Vm
