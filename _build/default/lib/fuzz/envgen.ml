let printable rng =
  Char.chr (Util.Prng.int_in rng 32 126)

let random_buffer rng max_len =
  let len = Util.Prng.int_in rng 1 (max max_len 1) in
  let style = Util.Prng.int rng 3 in
  Bytes.init len (fun i ->
      match style with
      | 0 -> printable rng
      | 1 -> Char.chr (Util.Prng.int rng 256)
      | _ ->
        (* structured-ish: runs with 0xff / 0x00 markers, the pattern the
           ID3 unsynchronisation case study cares about *)
        if i mod 7 = 3 then '\xff'
        else if i mod 7 = 4 then '\x00'
        else printable rng)

let generate rng (shape : Shape.t) =
  let rec build acc last_buf_len = function
    | [] -> List.rev acc
    | Shape.Aint (lo, hi) :: rest ->
      let span = Int64.sub hi lo in
      let v =
        if span <= 0L then lo
        else Int64.add lo (Int64.rem (Int64.abs (Util.Prng.int64_any rng)) (Int64.add span 1L))
      in
      build (Vm.Env.Vint v :: acc) last_buf_len rest
    | Shape.Afloat (lo, hi) :: rest ->
      let v = lo +. Util.Prng.float rng (hi -. lo) in
      build (Vm.Env.Vint (Int64.bits_of_float v) :: acc) last_buf_len rest
    | Shape.Abuf max_len :: rest ->
      let b = random_buffer rng max_len in
      build (Vm.Env.Vbuf b :: acc) (Bytes.length b) rest
    | Shape.Alen :: rest ->
      build (Vm.Env.Vint (Int64.of_int last_buf_len) :: acc) last_buf_len rest
  in
  Vm.Env.make ~seed:(Util.Prng.int64_any rng) (build [] 0 shape)

let mutate_buffer rng b =
  let b = Bytes.copy b in
  let n = Bytes.length b in
  if n > 0 then begin
    let mutations = 1 + Util.Prng.int rng 4 in
    for _ = 1 to mutations do
      let i = Util.Prng.int rng n in
      match Util.Prng.int rng 3 with
      | 0 -> Bytes.set b i (Char.chr (Util.Prng.int rng 256))
      | 1 ->
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Util.Prng.int rng 8)))
      | _ -> Bytes.set b i (if Util.Prng.bool rng then '\xff' else '\x00')
    done
  end;
  b

let mutate rng (env : Vm.Env.t) =
  (* jitter one argument; lengths are left alone so buffer/length pairs
     stay consistent *)
  let args =
    List.map
      (fun v ->
        match v with
        | Vm.Env.Vbuf b when Util.Prng.chance rng 0.7 ->
          Vm.Env.Vbuf (mutate_buffer rng b)
        | Vm.Env.Vint n when Util.Prng.chance rng 0.2 ->
          Vm.Env.Vint (Int64.add n (Int64.of_int (Util.Prng.int_in rng (-2) 2)))
        | Vm.Env.Vint _ | Vm.Env.Vbuf _ -> v)
      env.Vm.Env.args
  in
  { env with Vm.Env.args; seed = Util.Prng.int64_any rng }

let environments rng shape k =
  let rec loop acc i =
    if i >= k then List.rev acc
    else begin
      let env =
        match acc with
        | prev :: _ when i mod 3 = 2 -> mutate rng prev
        | _ :: _ | [] -> generate rng shape
      in
      loop (env :: acc) (i + 1)
    end
  in
  loop [] 0
