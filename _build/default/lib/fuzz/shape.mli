(** Argument shapes: what the fuzzer knows about a CVE function's
    prototype (the paper runs LibFuzzer against the known vulnerable
    function, then replays the generated inputs on every candidate). *)

type arg =
  | Aint of int64 * int64  (** integer in \[lo, hi\] *)
  | Afloat of float * float
  | Abuf of int  (** byte buffer of the given maximum length *)
  | Alen  (** the exact length of the most recent buffer argument *)

type t = arg list

val pp : Format.formatter -> t -> unit
