(** Generation and mutation of execution environments (the LibFuzzer
    analog): seeded generation from an argument shape, plus byte-level
    mutation of existing environments for corpus diversification. *)

val generate : Util.Prng.t -> Shape.t -> Vm.Env.t
(** Fresh environment respecting the shape (buffer/length consistency:
    [Alen] arguments equal the actual length of the preceding buffer). *)

val mutate : Util.Prng.t -> Vm.Env.t -> Vm.Env.t
(** Flip/insert/overwrite bytes of buffer arguments and jitter scalars;
    never changes the argument count. *)

val environments : Util.Prng.t -> Shape.t -> int -> Vm.Env.t list
(** [environments rng shape k] yields [k] diverse environments: fresh
    generations interleaved with mutations of earlier ones. *)
