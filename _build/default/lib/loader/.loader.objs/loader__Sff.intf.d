lib/loader/sff.mli: Image
