lib/loader/sff.ml: Array Buffer Bytes Char Format Image Int64 Isa String Symtab
