lib/loader/symtab.ml: Array
