lib/loader/symtab.mli:
