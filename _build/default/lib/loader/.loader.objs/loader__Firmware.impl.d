lib/loader/firmware.ml: Array Buffer Bytes Char Image Sff String
