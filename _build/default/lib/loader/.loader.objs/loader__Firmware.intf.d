lib/loader/firmware.mli: Image
