lib/loader/image.mli: Isa Symtab
