lib/loader/image.ml: Array Bytes Int64 Isa Symtab
