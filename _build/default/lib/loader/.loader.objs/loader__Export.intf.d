lib/loader/export.mli: Image
