lib/loader/verify.ml: Array Bytes Image Int64 Isa List Printf
