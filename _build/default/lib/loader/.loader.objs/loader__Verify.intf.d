lib/loader/verify.mli: Image
