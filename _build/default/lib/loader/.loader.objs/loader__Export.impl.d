lib/loader/export.ml: Array Hashtbl Image Isa List Printf Symtab
