type t = {
  image : Image.t;
  origin_index : int;
  included : int array;
}

(* Internal call targets reachable from one function, found by decoding its
   code and chasing the call table. *)
let callees_of_function (img : Image.t) i =
  let listing = Image.disassemble img i in
  Array.to_list listing.instrs
  |> List.filter_map (fun ins ->
         match ins with
         | Isa.Instr.Call idx -> (
           match Image.call_target img idx with
           | Some (Image.Internal j) -> Some j
           | Some (Image.Import _) | None -> None)
         | Isa.Instr.Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _
         | F2i _ | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _
         | Jtable _ | Ret | Push _ | Pop _ | Syscall _ ->
           None)

let transitive_closure img root =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit i =
    if not (Hashtbl.mem visited i) then begin
      Hashtbl.add visited i ();
      order := i :: !order;
      List.iter visit (callees_of_function img i)
    end
  in
  visit root;
  List.rev !order

let extract (img : Image.t) i =
  if i < 0 || i >= Image.function_count img then
    invalid_arg "Export.extract: function index out of range";
  let included = Array.of_list (transitive_closure img i) in
  let new_index = Hashtbl.create 16 in
  Array.iteri (fun ni oi -> Hashtbl.add new_index oi ni) included;
  (* Rewrite the call table: internal targets now refer to new indices;
     calls to functions outside the closure cannot occur by construction. *)
  let calls =
    Array.map
      (fun target ->
        match target with
        | Image.Import _ -> target
        | Image.Internal j -> (
          match Hashtbl.find_opt new_index j with
          | Some nj -> Image.Internal nj
          | None -> target))
      img.calls
  in
  let functions = Array.map (fun oi -> img.functions.(oi)) included in
  let symtab =
    match img.symtab with
    | None -> None
    | Some sym ->
      let functions =
        Array.map
          (fun oi ->
            match Symtab.function_name sym oi with
            | Some n -> n
            | None -> Printf.sprintf "fun_%d" oi)
          included
      in
      Some { sym with Symtab.functions }
  in
  let image =
    {
      img with
      Image.name = img.Image.name ^ "!" ^ string_of_int i;
      functions;
      calls;
      symtab;
    }
  in
  { image; origin_index = i; included }

let entry _ = 0
