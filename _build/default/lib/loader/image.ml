type call_target = Internal of int | Import of string

type t = {
  name : string;
  arch : Isa.Arch.t;
  functions : bytes array;
  calls : call_target array;
  data : bytes;
  data_base : int64;
  strings : (int64 * int) array;
  symtab : Symtab.t option;
}

let data_base_default = 0x10000L

let strip t = { t with symtab = None }

let is_stripped t = t.symtab = None

let function_count t = Array.length t.functions

let function_code t i = t.functions.(i)

let function_name t i =
  match t.symtab with
  | None -> None
  | Some sym -> Symtab.function_name sym i

let find_function t name =
  match t.symtab with
  | None -> None
  | Some sym -> Symtab.find_function sym name

let call_target t i =
  if i >= 0 && i < Array.length t.calls then Some t.calls.(i) else None

let is_string_addr t addr =
  Array.exists
    (fun (base, len) -> addr >= base && addr < Int64.add base (Int64.of_int len))
    t.strings

let total_code_size t =
  Array.fold_left (fun acc code -> acc + Bytes.length code) 0 t.functions

let disassemble t i =
  let params = Isa.Encoding.params_of_arch t.arch in
  Isa.Disasm.disassemble params t.functions.(i)
