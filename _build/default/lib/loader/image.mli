(** SFF (Simple Firmware Format) library images.

    An image is the unit the pipeline scans: one shared library compiled
    for one architecture.  It carries the encoded bytes of every function,
    a call table (the PLT analog: internal targets by index, imports by
    name — import names survive stripping, as dynamic linking requires),
    a data section holding globals and string literals, and optionally a
    symbol table. *)

type call_target = Internal of int | Import of string

type t = {
  name : string;
  arch : Isa.Arch.t;
  functions : bytes array;  (** encoded code of each function *)
  calls : call_target array;
  data : bytes;
  data_base : int64;  (** virtual address of the data section *)
  strings : (int64 * int) array;  (** string-literal ranges in data *)
  symtab : Symtab.t option;
}

val data_base_default : int64

val strip : t -> t
(** Remove the symbol table (function and global names); the result is the
    stripped COTS binary PATCHECKO analyses. *)

val is_stripped : t -> bool
val function_count : t -> int
val function_code : t -> int -> bytes
val function_name : t -> int -> string option
(** [None] on stripped images or out-of-range indices. *)

val find_function : t -> string -> int option
val call_target : t -> int -> call_target option

val is_string_addr : t -> int64 -> bool
(** Does the address fall inside a string-literal range?  Used by the
    [num_string] static feature. *)

val total_code_size : t -> int

val disassemble : t -> int -> Isa.Disasm.listing
(** Disassemble function [i] with the image's architecture parameters. *)
