type issue =
  | Undecodable of int * string
  | Bad_call_index of int * int
  | Bad_internal_target of int * int
  | Branch_out_of_function of int * int
  | Data_ref_outside_section of int * int64

let check (img : Image.t) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let nfun = Image.function_count img in
  (* call-table slots must point at existing functions *)
  Array.iteri
    (fun slot target ->
      match target with
      | Image.Internal j when j < 0 || j >= nfun -> add (Bad_internal_target (slot, j))
      | Image.Internal _ | Image.Import _ -> ())
    img.calls;
  let data_end =
    Int64.add img.data_base (Int64.of_int (Bytes.length img.data))
  in
  for fidx = 0 to nfun - 1 do
    match Image.disassemble img fidx with
    | exception Isa.Encoding.Invalid_encoding msg -> add (Undecodable (fidx, msg))
    | listing ->
      Array.iter
        (fun (ins : int Isa.Instr.t) ->
          (match ins with
          | Call idx ->
            if Image.call_target img idx = None then add (Bad_call_index (fidx, idx))
          | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
          | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _
          | Jtable _ | Ret | Push _ | Pop _ | Syscall _ ->
            ());
          (match ins with
          | Jmp t | Jcc (_, t) ->
            if Isa.Disasm.index_of_offset listing t = None then
              add (Branch_out_of_function (fidx, t))
          | Jtable (_, ts) ->
            Array.iter
              (fun t ->
                if Isa.Disasm.index_of_offset listing t = None then
                  add (Branch_out_of_function (fidx, t)))
              ts
          | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
          | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Call _ | Ret | Push _
          | Pop _ | Syscall _ ->
            ());
          List.iter
            (fun addr ->
              if addr < img.data_base || addr >= data_end then
                add (Data_ref_outside_section (fidx, addr)))
            (Isa.Instr.data_refs ins))
        listing.Isa.Disasm.instrs
  done;
  List.rev !issues

let issue_to_string = function
  | Undecodable (f, msg) -> Printf.sprintf "function %d: undecodable (%s)" f msg
  | Bad_call_index (f, idx) ->
    Printf.sprintf "function %d: call index %d out of table" f idx
  | Bad_internal_target (slot, j) ->
    Printf.sprintf "call slot %d: internal target %d out of range" slot j
  | Branch_out_of_function (f, t) ->
    Printf.sprintf "function %d: branch target %d outside function" f t
  | Data_ref_outside_section (f, addr) ->
    Printf.sprintf "function %d: data reference 0x%Lx outside data section" f addr
