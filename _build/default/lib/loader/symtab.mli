(** Symbol table of an SFF image.

    Present only in debug builds: stripping an image removes it.  The
    evaluation harness keeps a symtab'd copy of every image as ground
    truth while PATCHECKO itself only ever sees stripped images, mirroring
    the paper's Dataset I construction ("compiled with a debug flag to
    establish ground truth, then stripped"). *)

type t = {
  functions : string array;  (** name of function [i] *)
  globals : (string * int64) array;  (** global name and data address *)
}

val empty : t
val function_name : t -> int -> string option
val find_function : t -> string -> int option
val global_addr : t -> string -> int64 option
