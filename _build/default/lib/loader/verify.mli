(** Image integrity verification: every function must decode cleanly,
    every call-table reference must resolve, every branch must stay inside
    its function, and data references must land in the data section.  Used
    by the CLI before analysis and by the test suite as a corpus-wide
    invariant. *)

type issue =
  | Undecodable of int * string  (** function index, decoder message *)
  | Bad_call_index of int * int  (** function index, call index *)
  | Bad_internal_target of int * int  (** call-table slot, function index *)
  | Branch_out_of_function of int * int  (** function index, byte target *)
  | Data_ref_outside_section of int * int64  (** function index, address *)

val check : Image.t -> issue list
(** Empty list = image is well-formed. *)

val issue_to_string : issue -> string
