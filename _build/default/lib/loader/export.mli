(** Function-level export (the LIEF + dlopen/dlsym analog).

    The paper's dynamic engine never loads a whole firmware binary: it
    exports a single candidate function into a compact executable together
    with everything it transitively needs.  [extract img i] does exactly
    that: a new single-purpose image whose function 0 is function [i] of
    [img], whose function table holds only the transitive internal callees
    and whose call table is rewritten accordingly.  The data section is
    shared wholesale (as a mapped library's would be). *)

type t = {
  image : Image.t;  (** the compact image; entry point is function 0 *)
  origin_index : int;  (** index of the function in the source image *)
  included : int array;  (** source indices included, in new-index order *)
}

val extract : Image.t -> int -> t
(** Raises [Invalid_argument] if the index is out of range. *)

val entry : t -> int
(** Entry function index in the exported image (always 0). *)
