type t = {
  functions : string array;
  globals : (string * int64) array;
}

let empty = { functions = [||]; globals = [||] }

let function_name t i =
  if i >= 0 && i < Array.length t.functions then Some t.functions.(i) else None

let find_function t name =
  let found = ref None in
  Array.iteri
    (fun i n -> if n = name && !found = None then found := Some i)
    t.functions;
  !found

let global_addr t name =
  let found = ref None in
  Array.iter
    (fun (n, addr) -> if n = name && !found = None then found := Some addr)
    t.globals;
  !found
