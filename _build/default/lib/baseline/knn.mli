(** Nearest-neighbour baseline over the 48 static features — the
    embedding-distance approach of the graph-embedding line of work the
    paper compares against ([17], [41]): no learned pair classifier, just
    a distance in feature space. *)

val distance : Util.Vec.t -> Util.Vec.t -> float
(** Scale-normalised per-feature distance (so unbounded features don't
    dominate). *)

val rank : reference:Util.Vec.t -> Util.Vec.t array -> (int * float) list
(** Function indices sorted by ascending distance to the reference. *)

val rank_image : reference:Util.Vec.t -> Loader.Image.t -> (int * float) list
(** Extract features for every function of the image and rank. *)

val rank_of : int -> (int * float) list -> int option
(** 1-based position of a function index in a ranking. *)
