lib/baseline/knn.mli: Loader Util
