lib/baseline/graphmatch.mli: Loader
