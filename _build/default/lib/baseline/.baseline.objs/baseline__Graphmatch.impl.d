lib/baseline/graphmatch.ml: Array Cfg Isa Knn List Loader
