lib/baseline/knn.ml: Array List Staticfeat
