(** CFG bipartite-matching baseline (the discovRE / Genius style the
    paper's related work describes): each basic block is summarised by a
    small attribute vector, two functions are compared by greedily
    matching their block sets and summing attribute distances, with a
    penalty for unmatched blocks. *)

type block_attrs = float array

val block_attributes : Loader.Image.t -> int -> block_attrs array
(** Per-block attributes of one function: instruction count, byte size,
    arithmetic / call / load / store counts, out-degree, in-degree. *)

val similarity : block_attrs array -> block_attrs array -> float
(** Matching cost; 0 for identical block multisets, grows with
    structural difference.  Symmetric. *)

val rank : reference:block_attrs array -> Loader.Image.t -> (int * float) list
(** Rank every function of the image by matching cost to the reference. *)

val rank_of : int -> (int * float) list -> int option
