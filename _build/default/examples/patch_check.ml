(* Patch presence check: the paper's §IV case study (CVE-2018-9412,
   ID3::removeUnsynchronization) in miniature.  Compile the vulnerable
   and patched versions, show that a patch as small as "remove the
   memmove, add one if" separates them on static features, dynamic
   behaviour and the differential signature — without source access on
   the target side.

   Run with: dune exec examples/patch_check.exe *)

let () =
  let cve =
    match Corpus.Cves.find "CVE-2018-9412" with
    | Some c -> c
    | None -> failwith "case-study CVE missing"
  in
  Printf.printf "%s: %s\n\n" cve.Corpus.Cves.id cve.Corpus.Cves.description;

  (* show the actual source diff the patch makes *)
  let vuln_src =
    Minic.Ast.program_to_string
      { pname = "vuln"; globals = []; funcs = [ Corpus.Cves.vulnerable_func cve ] }
  in
  let patched_src =
    Minic.Ast.program_to_string
      { pname = "patched"; globals = []; funcs = [ Corpus.Cves.patched_func cve ] }
  in
  Printf.printf "--- vulnerable source ---\n%s\n" vuln_src;
  Printf.printf "--- patched source ---\n%s\n" patched_src;

  (* compile both; the target is the patched build at a different
     architecture and optimisation level, stripped *)
  let vuln = Corpus.Dataset.compile_cve cve ~patched:false in
  let patched = Corpus.Dataset.compile_cve cve ~patched:true in
  let target =
    Loader.Image.strip
      (Corpus.Dataset.compile_cve ~arch:Isa.Arch.Arm32 ~opt:Minic.Optlevel.O2
         cve ~patched:true)
  in

  (* static + signature differential *)
  let evidence =
    Patchecko.Differential.gather ~vuln:(vuln, 0) ~patched:(patched, 0)
      ~target:(target, 0) ()
  in
  Printf.printf "static distance:    to vulnerable %.4f, to patched %.4f\n"
    evidence.Patchecko.Differential.static_to_vuln
    evidence.Patchecko.Differential.static_to_patched;
  Printf.printf "signature distance: to vulnerable %.4f, to patched %.4f\n"
    evidence.Patchecko.Differential.signature_to_vuln
    evidence.Patchecko.Differential.signature_to_patched;
  Printf.printf "vulnerable imports: %s\n"
    (String.concat ", " (Patchecko.Differential.import_calls vuln 0));
  Printf.printf "target imports:     %s\n"
    (String.concat ", "
       (match Patchecko.Differential.import_calls target 0 with
       | [] -> [ "(none)" ]
       | l -> l));

  (* dynamic differential: run all three on shared fuzzed inputs *)
  let rng = Util.Prng.create 7L in
  let envs =
    Fuzz.Validate.filter_envs vuln 0 (Fuzz.Envgen.environments rng cve.shape 12)
  in
  let profile img = List.map (fun e -> (Vm.Exec.run img 0 e).Vm.Exec.features) envs in
  let pv = profile vuln and pp = profile patched and pt = profile target in
  let dv = Similarity.Score.averaged pv pt in
  let dp = Similarity.Score.averaged pp pt in
  Printf.printf "dynamic distance:   to vulnerable %.2f, to patched %.2f\n" dv dp;

  let verdict, confidence =
    Patchecko.Differential.decide
      { evidence with dynamic_to_vuln = Some dv; dynamic_to_patched = Some dp }
  in
  Printf.printf "\nverdict: the target function is %s (confidence %.2f)\n"
    (Patchecko.Differential.verdict_to_string verdict)
    confidence
