examples/cross_arch_search.mli:
