examples/handwritten_asm.mli:
