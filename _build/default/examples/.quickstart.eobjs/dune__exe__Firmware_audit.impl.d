examples/firmware_audit.ml: Array Evaluation List Loader Patchecko Printf Similarity Sys
