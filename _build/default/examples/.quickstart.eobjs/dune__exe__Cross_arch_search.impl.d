examples/cross_arch_search.ml: Corpus Isa List Loader Minic Patchecko Printf Staticfeat
