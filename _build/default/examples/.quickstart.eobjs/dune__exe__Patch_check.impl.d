examples/patch_check.ml: Corpus Fuzz Isa List Loader Minic Patchecko Printf Similarity String Util Vm
