examples/patch_check.mli:
