examples/firmware_audit.mli:
