examples/quickstart.mli:
