examples/handwritten_asm.ml: Array Bytes Isa List Loader Option Printf Staticfeat Vm
