examples/quickstart.ml: Array Cfg Isa Loader Minic Printf Staticfeat Vm
