(* Handwritten assembly: write a function in textual assembly, assemble
   it for two architectures, verify the image, execute it, and watch the
   static features agree across encodings — the toolchain under the
   pipeline, usable on its own.

   Run with: dune exec examples/handwritten_asm.exe *)

(* greatest common divisor by repeated subtraction *)
let gcd_source =
  {|
; r0 = gcd(r0, r1)
  push fp
  mov fp, sp
loop:
  cmp r1, #0
  jeq done
  cmp r0, r1
  jlt swap
  sub r0, r0, r1
  jmp loop
swap:
  mov r12, r0
  mov r0, r1
  mov r1, r12
  jmp loop
done:
  mov sp, fp
  pop fp
  ret
|}

let image_for arch =
  let items = Isa.Asmparse.parse gcd_source in
  let params = Isa.Encoding.params_of_arch arch in
  {
    Loader.Image.name = "gcd";
    arch;
    functions = [| Isa.Asm.assemble params items |];
    calls = [||];
    data = Bytes.empty;
    data_base = Loader.Image.data_base_default;
    strings = [||];
    symtab = None;
  }

let () =
  let items = Isa.Asmparse.parse gcd_source in
  Printf.printf "parsed %d assembly items:\n%s\n" (List.length items)
    (Isa.Asmparse.print items);
  List.iter
    (fun arch ->
      let img = image_for arch in
      (match Loader.Verify.check img with
      | [] -> ()
      | issues ->
        List.iter (fun i -> prerr_endline (Loader.Verify.issue_to_string i)) issues;
        failwith "verification failed");
      let run a b =
        match
          (Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.Vint a; Vm.Env.Vint b ]))
            .Vm.Exec.outcome
        with
        | Vm.Exec.Finished v -> v
        | other -> failwith (Vm.Exec.outcome_to_string other)
      in
      Printf.printf "%-6s: code %3d bytes  gcd(54,24)=%Ld  gcd(17,5)=%Ld  gcd(0,9)=%Ld\n"
        (Isa.Arch.to_string arch)
        (Loader.Image.total_code_size img)
        (run 54L 24L) (run 17L 5L) (run 0L 9L))
    Isa.Arch.all;
  (* identical static features across all four encodings, size aside *)
  let feats =
    List.map (fun arch -> Staticfeat.Extract.of_function (image_for arch) 0) Isa.Arch.all
  in
  let num_inst v = v.(Option.get (Staticfeat.Names.index "num_inst")) in
  let num_bb v = v.(Option.get (Staticfeat.Names.index "num_bb")) in
  match feats with
  | first :: rest ->
    Printf.printf "\nall encodings decode to %d instructions in %d blocks: %b\n"
      (int_of_float (num_inst first))
      (int_of_float (num_bb first))
      (List.for_all
         (fun v -> num_inst v = num_inst first && num_bb v = num_bb first)
         rest)
  | [] -> ()
