(* Quickstart: compile a tiny MinC library for two architectures, strip
   it, disassemble a function, extract its 48 static features and execute
   it in the dynamic engine.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
lib quickstart;

global greeting: byte[16] = "hello patchecko";

fn weighted_sum(data: byte*, len: int): int {
  var acc: int = 0;
  for (k = 0; k < len; k = k + 1) {
    acc = acc + data[k] * (k + 1);
  }
  return acc;
}

fn greet(): int {
  print_str(greeting);
  return strlen(greeting);
}
|}

let () =
  (* 1. compile the same source for two architectures *)
  let arm = Minic.Compiler.compile_source ~arch:Isa.Arch.Arm64 ~opt:Minic.Optlevel.O2 source in
  let x86 = Minic.Compiler.compile_source ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O0 source in
  Printf.printf "compiled %s: arm64/O2 %d bytes, x86/O0 %d bytes\n"
    arm.Loader.Image.name
    (Loader.Image.total_code_size arm)
    (Loader.Image.total_code_size x86);

  (* 2. strip, as PATCHECKO would receive it *)
  let stripped = Loader.Image.strip arm in
  Printf.printf "stripped image has symbols: %b\n"
    (not (Loader.Image.is_stripped stripped));

  (* 3. disassemble function 0 and recover its CFG *)
  let listing = Loader.Image.disassemble stripped 0 in
  let graph = Cfg.Graph.build listing in
  Printf.printf "function 0: %d instructions, %d basic blocks, %d edges\n"
    (Array.length listing.Isa.Disasm.instrs)
    (Cfg.Graph.block_count graph) (Cfg.Graph.edge_count graph);

  (* 4. the 48 static features of Table I *)
  let features = Staticfeat.Extract.of_function stripped 0 in
  Printf.printf "static features (first 9):\n";
  Array.iteri
    (fun i name ->
      if i < 9 then Printf.printf "  %-14s %g\n" name features.(i))
    Staticfeat.Names.all;

  (* 5. run it in the dynamic engine with a concrete environment *)
  let env =
    Vm.Env.make [ Vm.Env.buf_of_string "firmware"; Vm.Env.Vint 8L ]
  in
  let result = Vm.Exec.run stripped 0 env in
  Printf.printf "dynamic run: %s after %d instructions\n"
    (Vm.Exec.outcome_to_string result.Vm.Exec.outcome)
    result.Vm.Exec.instructions;
  let dyn = result.Vm.Exec.features in
  Printf.printf "dynamic features: %d loads, %d stores, %d branches\n"
    (int_of_float dyn.(10)) (int_of_float dyn.(11)) (int_of_float dyn.(9))
