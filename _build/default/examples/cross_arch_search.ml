(* Cross-architecture similarity: the same source compiled for the four
   architectures at six optimisation levels yields 24 different binaries;
   show that the 48 static features stay close for the same function and
   far for different functions — the property the deep learning model
   exploits.

   Run with: dune exec examples/cross_arch_search.exe *)

let () =
  let prog = Corpus.Genlib.generate ~seed:0xCAFEL ~index:0 ~nfuncs:16 in
  let images =
    Minic.Compiler.compile_matrix ~archs:Isa.Arch.all ~opts:Minic.Optlevel.all
      prog
  in
  Printf.printf "compiled %s into %d binaries\n" prog.Minic.Ast.pname
    (List.length images);

  (* pick one function; compare its feature vector across configurations *)
  let fname =
    match prog.Minic.Ast.funcs with
    | _ :: _ :: _ :: f :: _ -> f.Minic.Ast.fname
    | _ -> failwith "library too small"
  in
  let reference_img = snd (List.hd images) in
  let fidx =
    match Loader.Image.find_function reference_img fname with
    | Some i -> i
    | None -> failwith "function not found"
  in
  let reference = Staticfeat.Extract.of_function reference_img fidx in
  Printf.printf "reference function: %s\n\n" fname;
  Printf.printf "%-14s %10s %14s %14s@\n" "config" "same-fn" "other-fn"
    "gap";
  List.iter
    (fun ((arch, opt), img) ->
      let same =
        Patchecko.Differential.static_distance reference
          (Staticfeat.Extract.of_function img fidx)
      in
      (* compare against a different function of the same binary *)
      let other_idx = (fidx + 3) mod Loader.Image.function_count img in
      let other =
        Patchecko.Differential.static_distance reference
          (Staticfeat.Extract.of_function img other_idx)
      in
      Printf.printf "%-7s/%-6s %10.4f %14.4f %14.4f\n"
        (Isa.Arch.to_string arch)
        (Minic.Optlevel.to_string opt)
        same other (other -. same))
    images;
  (* aggregate: same-function distances should sit well below
     different-function distances *)
  let same_ds, other_ds =
    List.fold_left
      (fun (ss, os) ((_, _), img) ->
        let s =
          Patchecko.Differential.static_distance reference
            (Staticfeat.Extract.of_function img fidx)
        in
        let o =
          Patchecko.Differential.static_distance reference
            (Staticfeat.Extract.of_function img
               ((fidx + 3) mod Loader.Image.function_count img))
        in
        (s :: ss, o :: os))
      ([], []) images
  in
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Printf.printf "\naverage same-function distance:      %.4f\n" (avg same_ds);
  Printf.printf "average different-function distance: %.4f\n" (avg other_ds)
