(* Minkowski distance and candidate ranking. *)

let minkowski_known () =
  let a = [| 0.0; 0.0 |] and b = [| 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "p=1" 7.0 (Similarity.Minkowski.distance ~p:1.0 a b);
  Alcotest.(check (float 1e-9)) "p=2" 5.0 (Similarity.Minkowski.distance ~p:2.0 a b);
  Alcotest.(check (float 1e-6)) "p=3"
    ((27.0 +. 64.0) ** (1.0 /. 3.0))
    (Similarity.Minkowski.distance ~p:3.0 a b);
  Alcotest.(check (float 0.0)) "default p" 3.0 Similarity.Minkowski.default_p

let minkowski_errors () =
  (match Similarity.Minkowski.distance [| 1.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch accepted");
  match Similarity.Minkowski.distance ~p:0.0 [| 1.0 |] [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p=0 accepted"

(* metric properties on random vectors *)
let metric_properties =
  let vec = QCheck.(list_of_size (Gen.return 5) (float_range (-100.) 100.)) in
  QCheck.Test.make ~name:"minkowski-metric" ~count:300
    QCheck.(pair vec vec)
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let d = Similarity.Minkowski.distance a b in
      let d_sym = Similarity.Minkowski.distance b a in
      let d_self = Similarity.Minkowski.distance a a in
      d >= 0.0 && abs_float (d -. d_sym) < 1e-9 && d_self < 1e-9)

let averaged_score () =
  let fs = [ [| 0.0 |]; [| 0.0 |] ] in
  let gs = [ [| 2.0 |]; [| 4.0 |] ] in
  Alcotest.(check (float 1e-9)) "mean of distances" 3.0
    (Similarity.Score.averaged ~p:2.0 fs gs)

let averaged_misaligned () =
  match Similarity.Score.averaged [ [| 1.0 |] ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "misaligned env lists accepted"

let ranking () =
  let reference = [ [| 0.0; 0.0 |] ] in
  let candidates =
    [ ("far", [ [| 10.0; 10.0 |] ]); ("near", [ [| 1.0; 0.0 |] ]);
      ("mid", [ [| 3.0; 0.0 |] ]) ]
  in
  let ranked = Similarity.Rank.by_distance ~reference candidates in
  Alcotest.(check (list string)) "order" [ "near"; "mid"; "far" ]
    (List.map (fun e -> e.Similarity.Rank.candidate) ranked);
  Alcotest.(check (option int)) "rank_of mid" (Some 2)
    (Similarity.Rank.rank_of ~equal:String.equal "mid" ranked);
  Alcotest.(check int) "top 2" 2 (List.length (Similarity.Rank.top 2 ranked))

let ranking_skips_misaligned () =
  let reference = [ [| 0.0 |]; [| 0.0 |] ] in
  let candidates = [ ("bad", [ [| 1.0 |] ]); ("good", [ [| 1.0 |]; [| 2.0 |] ]) ] in
  let ranked = Similarity.Rank.by_distance ~reference candidates in
  Alcotest.(check (list string)) "only aligned" [ "good" ]
    (List.map (fun e -> e.Similarity.Rank.candidate) ranked)

let suite =
  [
    Alcotest.test_case "minkowski-known" `Quick minkowski_known;
    Alcotest.test_case "minkowski-errors" `Quick minkowski_errors;
    QCheck_alcotest.to_alcotest metric_properties;
    Alcotest.test_case "averaged-score" `Quick averaged_score;
    Alcotest.test_case "averaged-misaligned" `Quick averaged_misaligned;
    Alcotest.test_case "ranking" `Quick ranking;
    Alcotest.test_case "ranking-misaligned" `Quick ranking_skips_misaligned;
  ]
