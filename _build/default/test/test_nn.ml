(* Neural network: matrix algebra, gradient checking, training on
   separable data, metrics. *)

let mat_of l = Nn.Matrix.of_rows (Array.of_list (List.map Array.of_list l))

let matmul_basics () =
  let a = mat_of [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let b = mat_of [ [ 5.0; 6.0 ]; [ 7.0; 8.0 ] ] in
  let c = Nn.Matrix.matmul a b in
  Alcotest.(check (float 1e-9)) "c00" 19.0 (Nn.Matrix.get c 0 0);
  Alcotest.(check (float 1e-9)) "c01" 22.0 (Nn.Matrix.get c 0 1);
  Alcotest.(check (float 1e-9)) "c10" 43.0 (Nn.Matrix.get c 1 0);
  Alcotest.(check (float 1e-9)) "c11" 50.0 (Nn.Matrix.get c 1 1)

let transpose_variants_agree () =
  let rng = Util.Prng.create 5L in
  let a = Nn.Matrix.init 4 3 (fun _ _ -> Util.Prng.gaussian rng) in
  let b = Nn.Matrix.init 4 5 (fun _ _ -> Util.Prng.gaussian rng) in
  (* aᵀ·b computed directly vs via explicit transpose *)
  let at = Nn.Matrix.init 3 4 (fun i j -> Nn.Matrix.get a j i) in
  let direct = Nn.Matrix.matmul_transpose_a a b in
  let via = Nn.Matrix.matmul at b in
  Alcotest.(check bool) "transpose_a agrees" true
    (Util.Vec.equal ~eps:1e-9 direct.Nn.Matrix.data via.Nn.Matrix.data);
  let c = Nn.Matrix.init 6 3 (fun _ _ -> Util.Prng.gaussian rng) in
  let bt_rows = Nn.Matrix.init 2 3 (fun _ _ -> Util.Prng.gaussian rng) in
  let btt = Nn.Matrix.init 3 2 (fun i j -> Nn.Matrix.get bt_rows j i) in
  let direct2 = Nn.Matrix.matmul_transpose_b c bt_rows in
  let via2 = Nn.Matrix.matmul c btt in
  Alcotest.(check bool) "transpose_b agrees" true
    (Util.Vec.equal ~eps:1e-9 direct2.Nn.Matrix.data via2.Nn.Matrix.data)

let activations () =
  Alcotest.(check (float 1e-9)) "relu+" 3.0 (Nn.Activation.apply Relu 3.0);
  Alcotest.(check (float 1e-9)) "relu-" 0.0 (Nn.Activation.apply Relu (-3.0));
  Alcotest.(check (float 1e-9)) "sigmoid(0)" 0.5 (Nn.Activation.apply Sigmoid 0.0);
  Alcotest.(check (float 1e-6)) "sigmoid'(0)" 0.25
    (Nn.Activation.derivative Sigmoid 0.0)

(* finite-difference gradient check on a tiny 2-layer network *)
let gradient_check () =
  let rng = Util.Prng.create 11L in
  let layer = Nn.Layer.create rng ~inputs:3 ~outputs:2 Nn.Activation.Tanh in
  let x = Nn.Matrix.init 4 3 (fun _ _ -> Util.Prng.gaussian rng) in
  (* scalar loss = sum of outputs; d(loss)/d(out) = ones *)
  let loss l =
    let out, _ = Nn.Layer.forward l x in
    Array.fold_left ( +. ) 0.0 out.Nn.Matrix.data
  in
  let _, cache = Nn.Layer.forward layer x in
  let dout = Nn.Matrix.init 4 2 (fun _ _ -> 1.0) in
  let grads = Nn.Layer.backward layer cache dout in
  (* check dW numerically at a few coordinates *)
  let eps = 1e-5 in
  List.iter
    (fun (i, j) ->
      let bump delta =
        let w = Nn.Matrix.copy layer.Nn.Layer.weights in
        Nn.Matrix.set w i j (Nn.Matrix.get w i j +. delta);
        loss { layer with Nn.Layer.weights = w }
      in
      let numeric = (bump eps -. bump (-.eps)) /. (2.0 *. eps) in
      let analytic = Nn.Matrix.get grads.Nn.Layer.gw i j in
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "dW[%d,%d]" i j)
        numeric analytic)
    [ (0, 0); (1, 1); (2, 0) ]

let trains_on_separable_data () =
  let rng = Util.Prng.create 21L in
  (* two gaussian blobs in 4d *)
  let sample label =
    let center = if label > 0.5 then 2.0 else -2.0 in
    (Array.init 4 (fun _ -> center +. Util.Prng.gaussian rng), label)
  in
  let pairs =
    List.init 400 (fun i -> sample (if i mod 2 = 0 then 1.0 else 0.0))
  in
  let data = Nn.Data.make pairs in
  let train, validation, test = Nn.Data.split3 data ~train:0.6 ~validation:0.2 in
  let model =
    Nn.Model.create rng ~input:4
      ~layers:[ (8, Nn.Activation.Relu); (1, Nn.Activation.Sigmoid) ]
  in
  let config = { Nn.Train.default_config with epochs = 20; batch_size = 16 } in
  let model, history = Nn.Train.fit ~config model ~train ~validation in
  let predictions = Nn.Model.predict model (Nn.Matrix.of_rows test.Nn.Data.features) in
  let acc = Nn.Metrics.accuracy ~predictions ~labels:test.Nn.Data.labels () in
  Alcotest.(check bool) "test accuracy > 0.95" true (acc > 0.95);
  Alcotest.(check int) "history length" 20 (List.length history);
  (* loss decreased *)
  let first = List.hd history and last = List.nth history 19 in
  Alcotest.(check bool) "loss decreased" true
    (last.Nn.Train.train_loss < first.Nn.Train.train_loss)

let normalizer_zscore () =
  let data =
    Nn.Data.make [ ([| 0.0; 10.0 |], 0.0); ([| 2.0; 20.0 |], 1.0) ]
  in
  let nz = Nn.Data.fit_normalizer data in
  let n = Nn.Data.normalize_vec nz [| 1.0; 15.0 |] in
  Alcotest.(check (float 1e-9)) "centered 0" 0.0 n.(0);
  Alcotest.(check (float 1e-9)) "centered 1" 0.0 n.(1);
  let means, stds = Nn.Data.normalizer_stats nz in
  Alcotest.(check (float 1e-9)) "mean" 1.0 means.(0);
  Alcotest.(check (float 1e-9)) "std" 1.0 stds.(0)

let auc_metric () =
  let predictions = [| 0.9; 0.8; 0.3; 0.1 |] in
  let labels = [| 1.0; 1.0; 0.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "perfect AUC" 1.0 (Nn.Metrics.auc ~predictions ~labels);
  let inverted = [| 0.1; 0.2; 0.8; 0.9 |] in
  Alcotest.(check (float 1e-9)) "inverted AUC" 0.0
    (Nn.Metrics.auc ~predictions:inverted ~labels);
  let random = [| 0.5; 0.5; 0.5; 0.5 |] in
  Alcotest.(check (float 1e-9)) "ties AUC" 0.5 (Nn.Metrics.auc ~predictions:random ~labels)

let confusion_counts () =
  let predictions = [| 0.9; 0.2; 0.8; 0.4 |] in
  let labels = [| 1.0; 1.0; 0.0; 0.0 |] in
  let c = Nn.Metrics.confusion ~predictions ~labels () in
  Alcotest.(check int) "tp" 1 c.Nn.Metrics.tp;
  Alcotest.(check int) "fn" 1 c.Nn.Metrics.fn;
  Alcotest.(check int) "fp" 1 c.Nn.Metrics.fp;
  Alcotest.(check int) "tn" 1 c.Nn.Metrics.tn;
  Alcotest.(check (float 1e-9)) "fpr" 0.5 (Nn.Metrics.false_positive_rate c)

let bce_gradient_direction () =
  (* gradient is negative when the prediction is below the label *)
  let g = Nn.Loss.bce_gradient ~predictions:[| 0.2 |] ~labels:[| 1.0 |] in
  Alcotest.(check bool) "pushes up" true (g.(0) < 0.0);
  let g2 = Nn.Loss.bce_gradient ~predictions:[| 0.8 |] ~labels:[| 0.0 |] in
  Alcotest.(check bool) "pushes down" true (g2.(0) > 0.0)

let paper_architecture_shape () =
  let layers = Nn.Model.paper_architecture ~input:96 in
  Alcotest.(check int) "6 layers" 6 (List.length layers);
  let rng = Util.Prng.create 1L in
  let model = Nn.Model.create rng ~input:96 ~layers in
  Alcotest.(check (list int)) "sizes" [ 96; 64; 32; 16; 8; 1 ]
    (Nn.Model.layer_sizes model)

let suite =
  [
    Alcotest.test_case "matmul-basics" `Quick matmul_basics;
    Alcotest.test_case "transpose-variants" `Quick transpose_variants_agree;
    Alcotest.test_case "activations" `Quick activations;
    Alcotest.test_case "gradient-check" `Quick gradient_check;
    Alcotest.test_case "trains-separable" `Quick trains_on_separable_data;
    Alcotest.test_case "normalizer" `Quick normalizer_zscore;
    Alcotest.test_case "auc" `Quick auc_metric;
    Alcotest.test_case "confusion" `Quick confusion_counts;
    Alcotest.test_case "bce-gradient" `Quick bce_gradient_direction;
    Alcotest.test_case "paper-architecture" `Quick paper_architecture_shape;
  ]
