(* End-to-end: compile MinC, execute in the VM, check semantics are
   preserved across architectures and optimisation levels. *)

let source =
  {|
lib vmtest;

global counter: int = 5;
global bias: word[4] = {10, 20, 30, 40};

fn fib(n: int): int {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}

fn checksum(data: byte*, len: int): int {
  var acc: int = 7;
  for (i = 0; i < len; i = i + 1) {
    acc = acc * 31 + data[i];
    acc = acc % 1000003;
  }
  return acc;
}

fn classify(v: int): int {
  switch (v) {
    case 0: { return 100; }
    case 1: { return 200; }
    case 2: { return 300; }
    case 3: { return 400; }
    default: { return 0 - 1; }
  }
}

fn bump(): int {
  counter = counter + 1;
  return counter;
}

fn table_sum(): int {
  var total: int = 0;
  for (i = 0; i < 4; i = i + 1) {
    total = total + bias[i];
  }
  return total;
}

fn scale(x: float): float {
  return x * 2.5 + 1.0;
}

fn buffer_play(n: int): int {
  var buf: byte[32];
  memset(buf, 0, 32);
  var i: int = 0;
  while (i < n) {
    buf[i] = i * 3;
    i = i + 1;
  }
  return checksum(buf, n);
}

fn shout(msg: byte*): int {
  print_str(msg);
  print_str("!");
  return strlen(msg);
}

fn divide(a: int, b: int): int {
  return a / b;
}

fn maybe_quit(code: int): int {
  if (code > 0) {
    exit(code);
  }
  return 7;
}

fn heap_dance(n: int): int {
  var p: word* = alloc_words(n);
  for (i = 0; i < n; i = i + 1) {
    p[i] = i * i;
  }
  var total: int = 0;
  for (i = 0; i < n; i = i + 1) {
    total = total + p[i];
  }
  free(p);
  return total;
}

fn spin() {
  while (1) {
  }
}

fn echo(buf: byte*, n: int): int {
  return sys_write(1, buf, n);
}
|}

let prog = Minic.Parser.parse source

let images =
  lazy
    (List.concat_map
       (fun arch ->
         List.map
           (fun opt ->
             ((arch, opt), Minic.Compiler.compile ~arch ~opt prog))
           Minic.Optlevel.all)
       Isa.Arch.all)

let run_named img name env =
  match Loader.Image.find_function img name with
  | Some i -> Vm.Exec.run img i env
  | None -> Alcotest.failf "function %s not found" name

let check_everywhere name env expected =
  List.iter
    (fun ((arch, opt), img) ->
      let r = run_named img name env in
      match r.Vm.Exec.outcome with
      | Vm.Exec.Finished v ->
        Alcotest.(check int64)
          (Printf.sprintf "%s %s/%s" name (Isa.Arch.to_string arch)
             (Minic.Optlevel.to_string opt))
          expected v
      | other ->
        Alcotest.failf "%s %s/%s: %s" name (Isa.Arch.to_string arch)
          (Minic.Optlevel.to_string opt)
          (Vm.Exec.outcome_to_string other))
    (Lazy.force images)

let fib_everywhere () =
  check_everywhere "fib" (Vm.Env.make [ Vm.Env.Vint 10L ]) 55L

let checksum_everywhere () =
  let data = "The quick brown fox" in
  let env =
    Vm.Env.make [ Vm.Env.buf_of_string data; Vint (Int64.of_int (String.length data)) ]
  in
  (* reference computation *)
  let expected =
    let acc = ref 7L in
    String.iter
      (fun c ->
        acc := Int64.add (Int64.mul !acc 31L) (Int64.of_int (Char.code c));
        acc := Int64.rem !acc 1000003L)
      data;
    !acc
  in
  check_everywhere "checksum" env expected

let switch_everywhere () =
  check_everywhere "classify" (Vm.Env.make [ Vint 2L ]) 300L;
  check_everywhere "classify" (Vm.Env.make [ Vint 9L ]) (-1L)

let globals_everywhere () =
  check_everywhere "bump" (Vm.Env.make []) 6L;
  check_everywhere "table_sum" (Vm.Env.make []) 100L

let float_everywhere () =
  List.iter
    (fun ((arch, opt), img) ->
      let env = Vm.Env.make [ Vm.Env.Vint (Int64.bits_of_float 4.0) ] in
      let r = run_named img "scale" env in
      match r.Vm.Exec.outcome with
      | Vm.Exec.Finished bits ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "scale %s/%s" (Isa.Arch.to_string arch)
             (Minic.Optlevel.to_string opt))
          11.0
          (Int64.float_of_bits bits)
      | other -> Alcotest.failf "scale: %s" (Vm.Exec.outcome_to_string other))
    (Lazy.force images)

let stack_buffers_everywhere () =
  check_everywhere "buffer_play" (Vm.Env.make [ Vint 8L ]) (
    let acc = ref 7L in
    for i = 0 to 7 do
      acc := Int64.add (Int64.mul !acc 31L) (Int64.of_int (i * 3));
      acc := Int64.rem !acc 1000003L
    done;
    !acc)

let heap_everywhere () =
  (* sum of squares 0..9 = 285 *)
  check_everywhere "heap_dance" (Vm.Env.make [ Vint 10L ]) 285L

let stdout_capture () =
  let _, img = List.hd (Lazy.force images) in
  let r = run_named img "shout" (Vm.Env.make [ Vm.Env.buf_of_string "hey\000" ]) in
  Alcotest.(check string) "stdout" "hey!" r.Vm.Exec.stdout;
  match r.Vm.Exec.outcome with
  | Vm.Exec.Finished v -> Alcotest.(check int64) "strlen" 3L v
  | other -> Alcotest.failf "shout: %s" (Vm.Exec.outcome_to_string other)

let crash_on_div_zero () =
  let _, img = List.hd (Lazy.force images) in
  let r = run_named img "divide" (Vm.Env.make [ Vint 10L; Vint 0L ]) in
  match r.Vm.Exec.outcome with
  | Vm.Exec.Crashed Vm.Machine.Div_by_zero -> ()
  | other -> Alcotest.failf "expected div-by-zero, got %s" (Vm.Exec.outcome_to_string other)

let crash_on_wild_pointer () =
  let _, img = List.hd (Lazy.force images) in
  (* checksum with a bogus buffer address *)
  let r = run_named img "checksum" (Vm.Env.make [ Vint 0xDEAD0000L; Vint 4L ]) in
  match r.Vm.Exec.outcome with
  | Vm.Exec.Crashed (Vm.Machine.Mem_fault _) -> ()
  | other -> Alcotest.failf "expected fault, got %s" (Vm.Exec.outcome_to_string other)

let exit_detected () =
  let _, img = List.hd (Lazy.force images) in
  let r = run_named img "maybe_quit" (Vm.Env.make [ Vint 3L ]) in
  (match r.Vm.Exec.outcome with
  | Vm.Exec.Exited 3 -> ()
  | other -> Alcotest.failf "expected exit 3, got %s" (Vm.Exec.outcome_to_string other));
  let r2 = run_named img "maybe_quit" (Vm.Env.make [ Vint 0L ]) in
  match r2.Vm.Exec.outcome with
  | Vm.Exec.Finished 7L -> ()
  | other -> Alcotest.failf "expected 7, got %s" (Vm.Exec.outcome_to_string other)

let infinite_loop_detected () =
  let _, img = List.hd (Lazy.force images) in
  let r =
    match Loader.Image.find_function img "spin" with
    | Some i -> Vm.Exec.run ~fuel:10_000 img i (Vm.Env.make [])
    | None -> Alcotest.fail "spin not found"
  in
  match r.Vm.Exec.outcome with
  | Vm.Exec.Crashed Vm.Machine.Step_limit -> ()
  | other -> Alcotest.failf "expected step limit, got %s" (Vm.Exec.outcome_to_string other)

let syscall_write () =
  let _, img = List.hd (Lazy.force images) in
  let r = run_named img "echo" (Vm.Env.make [ Vm.Env.buf_of_string "abc"; Vint 3L ]) in
  Alcotest.(check string) "syscall stdout" "abc" r.Vm.Exec.stdout;
  let feats = r.Vm.Exec.features in
  (match Vm.Dynfeat.index "syscall_num" with
  | Some i -> Alcotest.(check (float 0.0)) "one syscall" 1.0 feats.(i)
  | None -> Alcotest.fail "no syscall feature")

let dynamic_features_sane () =
  let _, img = List.hd (Lazy.force images) in
  let env = Vm.Env.make [ Vm.Env.Vint 10L ] in
  let r = run_named img "fib" env in
  let feats = r.Vm.Exec.features in
  Alcotest.(check int) "21 features" Vm.Dynfeat.count (Array.length feats);
  let get name =
    match Vm.Dynfeat.index name with
    | Some i -> feats.(i)
    | None -> Alcotest.failf "missing feature %s" name
  in
  Alcotest.(check bool) "instructions > 0" true (get "instruction_num" > 0.0);
  Alcotest.(check bool)
    "unique <= total" true
    (get "unique_instruction_num" <= get "instruction_num");
  (* fib(10) calls fib 176 times follow-on: at least many internal calls *)
  Alcotest.(check bool) "internal calls > 100" true
    (get "binary_defined_fun_call_num" > 100.0);
  Alcotest.(check bool) "max depth >= 10" true (get "max_stack_depth" >= 10.0)

let deterministic_trace () =
  let _, img = List.hd (Lazy.force images) in
  let env = Vm.Env.make [ Vm.Env.buf_of_string "abcdefgh"; Vint 8L ] in
  let r1 = run_named img "checksum" env in
  let r2 = run_named img "checksum" env in
  Alcotest.(check bool) "same features" true
    (Util.Vec.equal r1.Vm.Exec.features r2.Vm.Exec.features)

let suite =
  [
    Alcotest.test_case "fib-everywhere" `Quick fib_everywhere;
    Alcotest.test_case "checksum-everywhere" `Quick checksum_everywhere;
    Alcotest.test_case "switch-everywhere" `Quick switch_everywhere;
    Alcotest.test_case "globals-everywhere" `Quick globals_everywhere;
    Alcotest.test_case "float-everywhere" `Quick float_everywhere;
    Alcotest.test_case "stack-buffers-everywhere" `Quick stack_buffers_everywhere;
    Alcotest.test_case "heap-everywhere" `Quick heap_everywhere;
    Alcotest.test_case "stdout-capture" `Quick stdout_capture;
    Alcotest.test_case "crash-div-zero" `Quick crash_on_div_zero;
    Alcotest.test_case "crash-wild-pointer" `Quick crash_on_wild_pointer;
    Alcotest.test_case "exit-detected" `Quick exit_detected;
    Alcotest.test_case "infinite-loop-detected" `Quick infinite_loop_detected;
    Alcotest.test_case "syscall-write" `Quick syscall_write;
    Alcotest.test_case "dynamic-features-sane" `Quick dynamic_features_sane;
    Alcotest.test_case "deterministic-trace" `Quick deterministic_trace;
  ]
