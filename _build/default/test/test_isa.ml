(* Round-trip and layout tests for the instruction encodings. *)

let sample_instrs : int Isa.Instr.t list =
  [
    Nop;
    Mov (3, Reg 4);
    Mov (0, Imm 42L);
    Mov (1, Imm (-1L));
    Mov (2, Imm 0x123456789ABCDEFL);
    Binop (Add, 1, 2, Reg 3);
    Binop (Sub, 4, 5, Imm 100L);
    Binop (Mul, 6, 7, Imm (-7L));
    Binop (Shl, 8, 9, Imm 3L);
    Fbinop (Fmul, 1, 2, 3);
    Neg (1, 2);
    Not (3, 4);
    I2f (5, 6);
    F2i (7, 8);
    Load (W8, 1, 14, -16);
    Load (W1, 2, 3, 0);
    Store (W8, 4, 15, 8);
    Store (W1, 5, 6, 1024);
    Lea (7, 0x10000L);
    Cmp (1, Reg 2);
    Cmp (3, Imm 0L);
    Fcmp (4, 5);
    Jmp 128;
    Jcc (Isa.Cond.Ne, 4);
    Jtable (2, [| 0; 8; 16; 24 |]);
    Call 3;
    Ret;
    Push 14;
    Pop 14;
    Syscall 1;
  ]

let instr_testable =
  let pp ppf i = Isa.Instr.pp Format.pp_print_int ppf i in
  Alcotest.testable pp ( = )

let roundtrip_arch arch () =
  let params = Isa.Encoding.params_of_arch arch in
  let buf = Buffer.create 256 in
  List.iter (Isa.Encoding.encode params buf) sample_instrs;
  let code = Buffer.to_bytes buf in
  let listing = Isa.Disasm.disassemble params code in
  Alcotest.(check int)
    "instruction count" (List.length sample_instrs)
    (Array.length listing.instrs);
  List.iteri
    (fun i expected ->
      Alcotest.check instr_testable
        (Printf.sprintf "instr %d" i)
        expected listing.instrs.(i))
    sample_instrs

let encodings_differ () =
  let encode arch =
    let params = Isa.Encoding.params_of_arch arch in
    let buf = Buffer.create 256 in
    List.iter (Isa.Encoding.encode params buf) sample_instrs;
    Buffer.to_bytes buf
  in
  let all = List.map encode Isa.Arch.all in
  let rec distinct = function
    | [] -> true
    | x :: rest -> (not (List.mem x rest)) && distinct rest
  in
  Alcotest.(check bool) "four distinct byte streams" true (distinct all)

let arm64_alignment () =
  let params = Isa.Encoding.params_of_arch Isa.Arch.Arm64 in
  let buf = Buffer.create 64 in
  List.iter (Isa.Encoding.encode params buf) sample_instrs;
  Alcotest.(check int) "8-byte aligned" 0 (Buffer.length buf mod 8)

let asm_labels () =
  let params = Isa.Encoding.params_of_arch Isa.Arch.X86 in
  let items : Isa.Asm.item list =
    [
      Label "start";
      Ins (Mov (0, Imm 1L));
      Ins (Jmp "end");
      Label "mid";
      Ins (Binop (Add, 0, 0, Imm 1L));
      Label "end";
      Ins Ret;
    ]
  in
  let code = Isa.Asm.assemble params items in
  let listing = Isa.Disasm.disassemble params code in
  (* the jmp targets the byte offset of "end" *)
  let offsets = Isa.Asm.label_offsets params items in
  let end_off = List.assoc "end" offsets in
  match listing.instrs.(1) with
  | Jmp target -> Alcotest.(check int) "jmp resolves to end" end_off target
  | _ -> Alcotest.fail "expected jmp"

let asm_undefined_label () =
  let params = Isa.Encoding.params_of_arch Isa.Arch.X86 in
  Alcotest.check_raises "undefined label" (Isa.Asm.Undefined_label "nowhere")
    (fun () -> ignore (Isa.Asm.assemble params [ Ins (Jmp "nowhere") ]))

let asm_duplicate_label () =
  let params = Isa.Encoding.params_of_arch Isa.Arch.X86 in
  Alcotest.check_raises "duplicate label" (Isa.Asm.Duplicate_label "a")
    (fun () -> ignore (Isa.Asm.assemble params [ Label "a"; Label "a" ]))

let decode_garbage () =
  let params = Isa.Encoding.params_of_arch Isa.Arch.Amd64 in
  (* missing mandatory prefix byte *)
  let bad = Bytes.make 4 '\x00' in
  match Isa.Disasm.disassemble params bad with
  | exception Isa.Encoding.Invalid_encoding _ -> ()
  | _ -> Alcotest.fail "expected Invalid_encoding"

let cond_negate_involutive () =
  List.iter
    (fun c ->
      Alcotest.(check string)
        "negate twice"
        (Isa.Cond.to_string c)
        (Isa.Cond.to_string (Isa.Cond.negate (Isa.Cond.negate c))))
    Isa.Cond.all

let cond_negation_semantics () =
  List.iter
    (fun c ->
      List.iter
        (fun sign ->
          Alcotest.(check bool)
            (Printf.sprintf "%s vs neg at %d" (Isa.Cond.to_string c) sign)
            (Isa.Cond.holds c sign)
            (not (Isa.Cond.holds (Isa.Cond.negate c) sign)))
        [ -1; 0; 1 ])
    Isa.Cond.all

(* Property: any single instruction round-trips on any architecture. *)
let arbitrary_instr =
  let open QCheck.Gen in
  let reg = int_range 0 15 in
  let operand =
    oneof
      [
        map (fun r -> Isa.Instr.Reg r) reg;
        map (fun v -> Isa.Instr.Imm v) int64;
      ]
  in
  let binop =
    oneofl
      [
        Isa.Instr.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr;
      ]
  in
  let gen : int Isa.Instr.t QCheck.Gen.t =
    oneof
      [
        return Isa.Instr.Nop;
        map2 (fun d o -> Isa.Instr.Mov (d, o)) reg operand;
        map3 (fun op (d, a) o -> Isa.Instr.Binop (op, d, a, o)) binop (pair reg reg) operand;
        map3 (fun d b off -> Isa.Instr.Load (W8, d, b, off)) reg reg (int_range (-4096) 4096);
        map3 (fun s b off -> Isa.Instr.Store (W1, s, b, off)) reg reg (int_range (-4096) 4096);
        map (fun t -> Isa.Instr.Jmp (t * 4)) (int_range 0 1000);
        map (fun i -> Isa.Instr.Call i) (int_range 0 1000);
        return Isa.Instr.Ret;
        map (fun r -> Isa.Instr.Push r) reg;
        map (fun n -> Isa.Instr.Syscall n) (int_range 0 255);
      ]
  in
  QCheck.make gen

let prop_roundtrip arch =
  QCheck.Test.make
    ~name:(Printf.sprintf "roundtrip-%s" (Isa.Arch.to_string arch))
    ~count:500 arbitrary_instr (fun ins ->
      let params = Isa.Encoding.params_of_arch arch in
      let buf = Buffer.create 32 in
      Isa.Encoding.encode params buf ins;
      let code = Buffer.to_bytes buf in
      let decoded, _ = Isa.Encoding.decode params code 0 in
      decoded = ins)

let suite =
  let roundtrips =
    List.map
      (fun arch ->
        Alcotest.test_case
          (Printf.sprintf "roundtrip-%s" (Isa.Arch.to_string arch))
          `Quick (roundtrip_arch arch))
      Isa.Arch.all
  in
  let props =
    List.map
      (fun arch -> QCheck_alcotest.to_alcotest (prop_roundtrip arch))
      Isa.Arch.all
  in
  roundtrips
  @ [
      Alcotest.test_case "encodings-differ" `Quick encodings_differ;
      Alcotest.test_case "arm64-alignment" `Quick arm64_alignment;
      Alcotest.test_case "asm-labels" `Quick asm_labels;
      Alcotest.test_case "asm-undefined-label" `Quick asm_undefined_label;
      Alcotest.test_case "asm-duplicate-label" `Quick asm_duplicate_label;
      Alcotest.test_case "decode-garbage" `Quick decode_garbage;
      Alcotest.test_case "cond-negate-involutive" `Quick cond_negate_involutive;
      Alcotest.test_case "cond-negation-semantics" `Quick cond_negation_semantics;
    ]
  @ props
