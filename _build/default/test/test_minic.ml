(* Parser round-trips and compiler smoke tests. *)

let sample_source =
  {|
lib demo;

global counter: int = 7;
global table: word[4] = {1, 2, 3, 4};
global msg: byte[16] = "hello";

fn add(a: int, b: int): int {
  return a + b;
}

fn checksum(data: byte*, len: int): int {
  var acc: int = 0;
  for (i = 0; i < len; i = i + 1) {
    acc = acc ^ (data[i] * 31 + i);
  }
  return acc;
}

fn classify(v: int): int {
  switch (v) {
    case 0: { return 10; }
    case 1: { return 20; }
    case 2: { return 30; }
    case 5: { return 60; }
    default: { return 0; }
  }
}

fn sum_table(): int {
  var total: int = 0;
  var i: int = 0;
  while (i < 4) {
    total = total + table[i];
    i = i + 1;
  }
  counter = counter + 1;
  return total;
}

fn hypot2(x: float, y: float): float {
  return x * x + y * y;
}
|}

let parse_roundtrip () =
  let prog = Minic.Parser.parse sample_source in
  let printed = Minic.Ast.program_to_string prog in
  let reparsed = Minic.Parser.parse printed in
  Alcotest.(check bool) "pp/parse round-trip" true (prog = reparsed)

let typecheck_ok () = Minic.Typecheck.check_program (Minic.Parser.parse sample_source)

let typecheck_rejects src msg =
  match Minic.Typecheck.check_program (Minic.Parser.parse src) with
  | exception Minic.Typecheck.Type_error _ -> ()
  | () -> Alcotest.fail msg

let typecheck_unknown_var () =
  typecheck_rejects {|
lib t;
fn f(): int { return nosuch; }
|} "unknown variable accepted"

let typecheck_bad_call_arity () =
  typecheck_rejects
    {|
lib t;
fn g(a: int): int { return a; }
fn f(): int { return g(1, 2); }
|}
    "bad arity accepted"

let typecheck_float_int_mix () =
  typecheck_rejects
    {|
lib t;
fn f(x: float): float { return x + 1; }
|}
    "float+int accepted"

let typecheck_break_outside_loop () =
  typecheck_rejects {|
lib t;
fn f() { break; }
|} "stray break accepted"

let compile_all_configs () =
  let prog = Minic.Parser.parse sample_source in
  List.iter
    (fun arch ->
      List.iter
        (fun opt ->
          let img = Minic.Compiler.compile ~arch ~opt prog in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s function count" (Isa.Arch.to_string arch)
               (Minic.Optlevel.to_string opt))
            5
            (Loader.Image.function_count img);
          (* every function disassembles cleanly *)
          for i = 0 to Loader.Image.function_count img - 1 do
            let listing = Loader.Image.disassemble img i in
            Alcotest.(check bool)
              "non-empty function" true
              (Array.length listing.instrs > 0)
          done)
        Minic.Optlevel.all)
    Isa.Arch.all

let o0_larger_than_o2 () =
  let prog = Minic.Parser.parse sample_source in
  let size opt =
    Loader.Image.total_code_size
      (Minic.Compiler.compile ~arch:Isa.Arch.Arm64 ~opt prog)
  in
  Alcotest.(check bool)
    "O0 code is larger than O2 code" true
    (size Minic.Optlevel.O0 > size Minic.Optlevel.O2)

let cross_arch_same_stream () =
  (* the same program at the same level decodes to the same instruction
     stream on every architecture (only the bytes differ); branch targets
     are byte offsets, so normalise them to instruction indices first *)
  let prog = Minic.Parser.parse sample_source in
  let normalise listing =
    Array.map
      (Isa.Instr.map_label (fun off ->
           match Isa.Disasm.index_of_offset listing off with
           | Some i -> i
           | None -> -1))
      listing.Isa.Disasm.instrs
  in
  let streams =
    List.map
      (fun arch ->
        let img = Minic.Compiler.compile ~arch ~opt:Minic.Optlevel.O1 prog in
        Array.to_list
          (Array.init (Loader.Image.function_count img) (fun i ->
               normalise (Loader.Image.disassemble img i))))
      Isa.Arch.all
  in
  match streams with
  | first :: rest ->
    List.iter
      (fun s -> Alcotest.(check bool) "same decoded stream" true (s = first))
      rest
  | [] -> Alcotest.fail "no architectures"

let strip_removes_names () =
  let prog = Minic.Parser.parse sample_source in
  let img = Minic.Compiler.compile ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O1 prog in
  Alcotest.(check bool) "has symtab" false (Loader.Image.is_stripped img);
  let stripped = Loader.Image.strip img in
  Alcotest.(check bool) "stripped" true (Loader.Image.is_stripped stripped);
  Alcotest.(check (option string)) "no names" None
    (Loader.Image.function_name stripped 0);
  Alcotest.(check (option string))
    "names in debug image" (Some "add")
    (Loader.Image.function_name img 0)

let parse_error_line () =
  match Minic.Parser.parse "lib t;\nfn f( {" with
  | exception Minic.Parser.Parse_error (line, _) ->
    Alcotest.(check int) "error line" 2 line
  | _ -> Alcotest.fail "expected parse error"

let suite =
  [
    Alcotest.test_case "parse-roundtrip" `Quick parse_roundtrip;
    Alcotest.test_case "typecheck-ok" `Quick typecheck_ok;
    Alcotest.test_case "typecheck-unknown-var" `Quick typecheck_unknown_var;
    Alcotest.test_case "typecheck-bad-arity" `Quick typecheck_bad_call_arity;
    Alcotest.test_case "typecheck-float-int-mix" `Quick typecheck_float_int_mix;
    Alcotest.test_case "typecheck-stray-break" `Quick typecheck_break_outside_loop;
    Alcotest.test_case "compile-all-configs" `Quick compile_all_configs;
    Alcotest.test_case "O0-larger-than-O2" `Quick o0_larger_than_o2;
    Alcotest.test_case "cross-arch-same-stream" `Quick cross_arch_same_stream;
    Alcotest.test_case "strip-removes-names" `Quick strip_removes_names;
    Alcotest.test_case "parse-error-line" `Quick parse_error_line;
  ]
