(* Textual assembly: parse, print, round-trip, and end-to-end execution of
   a handwritten function. *)

let simple_program =
  {|
; compute r0 = r0 * 2 + 1
  push fp
  mov fp, sp
  mul r6, r0, #2
  add r0, r6, #1
  mov sp, fp
  pop fp
  ret
|}

let parses_simple () =
  let items = Isa.Asmparse.parse simple_program in
  Alcotest.(check int) "seven instructions" 7 (List.length items)

let print_parse_roundtrip () =
  let items = Isa.Asmparse.parse simple_program in
  let printed = Isa.Asmparse.print items in
  Alcotest.(check bool) "round trip" true (Isa.Asmparse.parse printed = items)

let labels_and_branches () =
  let items =
    Isa.Asmparse.parse
      {|
loop:
  cmp r1, #10
  jge done
  add r1, r1, #1
  jmp loop
done:
  ret
|}
  in
  (match items with
  | Isa.Asm.Label "loop" :: _ -> ()
  | _ -> Alcotest.fail "label missing");
  Alcotest.(check bool) "round trip" true
    (Isa.Asmparse.parse (Isa.Asmparse.print items) = items)

let memory_operands () =
  (match Isa.Asmparse.parse_instr "ld r3, [fp-16]" with
  | Load (W8, 3, base, -16) when base = Isa.Reg.fp -> ()
  | _ -> Alcotest.fail "bad load parse");
  match Isa.Asmparse.parse_instr "stb r2, [r5+8]" with
  | Store (W1, 2, 5, 8) -> ()
  | _ -> Alcotest.fail "bad store parse"

let jump_tables () =
  match Isa.Asmparse.parse_instr "jtab r2, [a, b, c]" with
  | Jtable (2, targets) ->
    Alcotest.(check (array string)) "targets" [| "a"; "b"; "c" |] targets
  | _ -> Alcotest.fail "bad jtab parse"

let rejects_garbage () =
  (match Isa.Asmparse.parse "frobnicate r1" with
  | exception Isa.Asmparse.Parse_error (1, _) -> ()
  | _ -> Alcotest.fail "unknown mnemonic accepted");
  match Isa.Asmparse.parse "mov r99, #1" with
  | exception Isa.Asmparse.Parse_error (1, _) -> ()
  | _ -> Alcotest.fail "bad register accepted"

let handwritten_function_executes () =
  let items = Isa.Asmparse.parse simple_program in
  let params = Isa.Encoding.params_of_arch Isa.Arch.Arm64 in
  let code = Isa.Asm.assemble params items in
  let img =
    {
      Loader.Image.name = "handwritten";
      arch = Isa.Arch.Arm64;
      functions = [| code |];
      calls = [||];
      data = Bytes.empty;
      data_base = Loader.Image.data_base_default;
      strings = [||];
      symtab = None;
    }
  in
  match (Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.Vint 20L ])).Vm.Exec.outcome with
  | Vm.Exec.Finished 41L -> ()
  | other -> Alcotest.failf "expected 41, got %s" (Vm.Exec.outcome_to_string other)

(* round-trip every instruction produced by disassembling a compiled
   corpus function: pp -> parse must be the identity on label-free text *)
let roundtrip_disassembly () =
  let prog = Corpus.Genlib.generate ~seed:0xA5A5L ~index:0 ~nfuncs:10 in
  let img = Minic.Compiler.compile ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O1 prog in
  for fidx = 0 to min 4 (Loader.Image.function_count img - 1) do
    let listing = Loader.Image.disassemble img fidx in
    Array.iter
      (fun ins ->
        (* render with symbolic labels so the parser can read it back *)
        let sym = Isa.Instr.map_label (fun off -> Printf.sprintf "L%d" off) ins in
        let text = Format.asprintf "%a" (Isa.Instr.pp Format.pp_print_string) sym in
        match Isa.Asmparse.parse_instr text with
        | parsed ->
          if parsed <> sym then Alcotest.failf "round-trip failed for %S" text
        | exception Isa.Asmparse.Parse_error (_, msg) ->
          Alcotest.failf "cannot parse %S: %s" text msg)
      listing.Isa.Disasm.instrs
  done

let suite =
  [
    Alcotest.test_case "parses-simple" `Quick parses_simple;
    Alcotest.test_case "print-parse-roundtrip" `Quick print_parse_roundtrip;
    Alcotest.test_case "labels-and-branches" `Quick labels_and_branches;
    Alcotest.test_case "memory-operands" `Quick memory_operands;
    Alcotest.test_case "jump-tables" `Quick jump_tables;
    Alcotest.test_case "rejects-garbage" `Quick rejects_garbage;
    Alcotest.test_case "handwritten-executes" `Quick handwritten_function_executes;
    Alcotest.test_case "roundtrip-disassembly" `Quick roundtrip_disassembly;
  ]
