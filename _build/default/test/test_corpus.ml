(* Corpus generation: libraries, CVE pairs, devices, dataset builder. *)

let library_generation_deterministic () =
  let a = Corpus.Genlib.generate ~seed:1L ~index:3 ~nfuncs:20 in
  let b = Corpus.Genlib.generate ~seed:1L ~index:3 ~nfuncs:20 in
  Alcotest.(check bool) "same program" true (a = b);
  let c = Corpus.Genlib.generate ~seed:2L ~index:3 ~nfuncs:20 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let libraries_typecheck () =
  for idx = 0 to 7 do
    let prog = Corpus.Genlib.generate ~seed:99L ~index:idx ~nfuncs:24 in
    Minic.Typecheck.check_program prog
  done

let libraries_parse_roundtrip () =
  let prog = Corpus.Genlib.generate ~seed:5L ~index:1 ~nfuncs:18 in
  let printed = Minic.Ast.program_to_string prog in
  let reparsed = Minic.Parser.parse printed in
  Alcotest.(check bool) "round trip" true (prog = reparsed)

let cve_count_and_ids () =
  Alcotest.(check int) "25 CVEs" 25 (List.length Corpus.Cves.all);
  let ids = List.map (fun (c : Corpus.Cves.t) -> c.id) Corpus.Cves.all in
  Alcotest.(check bool) "case study present" true
    (List.mem "CVE-2018-9412" ids);
  let uniq = List.sort_uniq compare ids in
  Alcotest.(check int) "ids unique" 25 (List.length uniq)

let cve_pair_minimal_diff () =
  (* the vulnerable and patched versions share their name and signature *)
  List.iter
    (fun (c : Corpus.Cves.t) ->
      let v = Corpus.Cves.vulnerable_func c in
      let p = Corpus.Cves.patched_func c in
      Alcotest.(check string) "same name" v.Minic.Ast.fname p.Minic.Ast.fname;
      Alcotest.(check bool) "same params" true
        (v.Minic.Ast.params = p.Minic.Ast.params);
      Alcotest.(check bool) "bodies differ" true
        (v.Minic.Ast.body <> p.Minic.Ast.body))
    Corpus.Cves.all

let cve_pairs_compile_and_run () =
  (* spot-check three families end to end *)
  List.iter
    (fun id ->
      match Corpus.Cves.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some c ->
        let vimg = Corpus.Dataset.compile_cve c ~patched:false in
        let pimg = Corpus.Dataset.compile_cve c ~patched:true in
        let rng = Util.Prng.create 31L in
        let envs = Fuzz.Envgen.environments rng c.shape 6 in
        let ok = Fuzz.Validate.filter_envs pimg 0 envs in
        Alcotest.(check bool) (id ^ " patched survives sth") true (ok <> []);
        ignore vimg)
    [ "CVE-2018-9412"; "CVE-2018-9470"; "CVE-2018-9499" ]

let missing_increment_dos () =
  (* the DoS family: an input with the marker byte hangs the vulnerable
     version but not the patched one *)
  let c =
    match Corpus.Cves.find "CVE-2018-9499" with
    | Some c -> c
    | None -> Alcotest.fail "missing CVE"
  in
  let vimg = Corpus.Dataset.compile_cve c ~patched:false in
  let pimg = Corpus.Dataset.compile_cve c ~patched:true in
  let evil = Vm.Env.make [ Vm.Env.Vbuf (Bytes.make 4 '\xff'); Vm.Env.Vint 4L ] in
  (match (Vm.Exec.run ~fuel:50_000 vimg 0 evil).Vm.Exec.outcome with
  | Vm.Exec.Crashed Vm.Machine.Step_limit -> ()
  | other ->
    Alcotest.failf "vulnerable should hang, got %s" (Vm.Exec.outcome_to_string other));
  match (Vm.Exec.run ~fuel:50_000 pimg 0 evil).Vm.Exec.outcome with
  | Vm.Exec.Finished _ -> ()
  | other ->
    Alcotest.failf "patched should finish, got %s" (Vm.Exec.outcome_to_string other)

let case_study_semantics () =
  (* removeUnsynchronization: both versions strip 0x00 after 0xff; on a
     clean buffer both return the input size *)
  let c =
    match Corpus.Cves.find "CVE-2018-9412" with
    | Some c -> c
    | None -> Alcotest.fail "missing CVE"
  in
  let vimg = Corpus.Dataset.compile_cve c ~patched:false in
  let pimg = Corpus.Dataset.compile_cve c ~patched:true in
  let clean = Vm.Env.make [ Vm.Env.buf_of_string "abcdef"; Vm.Env.Vint 6L ] in
  let run img = (Vm.Exec.run img 0 clean).Vm.Exec.outcome in
  (match (run vimg, run pimg) with
  | Vm.Exec.Finished a, Vm.Exec.Finished b ->
    Alcotest.(check int64) "clean input: same size" a b;
    Alcotest.(check int64) "size preserved" 6L a
  | a, b ->
    Alcotest.failf "unexpected: %s / %s" (Vm.Exec.outcome_to_string a)
      (Vm.Exec.outcome_to_string b));
  (* with an unsynchronisation pair, both shrink the buffer by one *)
  let dirty =
    Vm.Env.make
      [ Vm.Env.Vbuf (Bytes.of_string "ab\xff\x00cd"); Vm.Env.Vint 6L ]
  in
  match
    ( (Vm.Exec.run vimg 0 dirty).Vm.Exec.outcome,
      (Vm.Exec.run pimg 0 dirty).Vm.Exec.outcome )
  with
  | Vm.Exec.Finished a, Vm.Exec.Finished b ->
    Alcotest.(check int64) "both shrink" 5L a;
    Alcotest.(check int64) "patched agrees" 5L b
  | a, b ->
    Alcotest.failf "unexpected: %s / %s" (Vm.Exec.outcome_to_string a)
      (Vm.Exec.outcome_to_string b)

let devices_ground_truth () =
  let things = Corpus.Devices.android_things in
  Alcotest.(check bool) "13232 patched on Things" true
    (things.Corpus.Devices.is_patched "CVE-2017-13232");
  Alcotest.(check bool) "9412 unpatched on Things" false
    (things.Corpus.Devices.is_patched "CVE-2018-9412");
  let patched_count =
    List.length
      (List.filter
         (fun (c : Corpus.Cves.t) -> things.Corpus.Devices.is_patched c.id)
         Corpus.Cves.all)
  in
  Alcotest.(check int) "10 of 25 patched (Table VIII)" 10 patched_count

let firmware_contains_cves () =
  let fw, truths =
    Corpus.Devices.build_firmware ~nlibs:5 ~nfuncs_base:12
      Corpus.Devices.android_things
  in
  Alcotest.(check int) "25 truth entries" 25 (List.length truths);
  List.iter
    (fun (t : Corpus.Devices.truth) ->
      match Loader.Firmware.find_image fw t.image_name with
      | None -> Alcotest.failf "image %s missing" t.image_name
      | Some img ->
        Alcotest.(check (option string))
          (t.cve.Corpus.Cves.id ^ " at index")
          (Some t.cve.Corpus.Cves.fname)
          (Loader.Image.function_name img t.findex))
    truths

let dataset_balanced () =
  let data = Corpus.Dataset.build_pairs Corpus.Dataset.small_config in
  let n = Nn.Data.size data in
  Alcotest.(check bool) "non-empty" true (n > 50);
  let positives =
    Array.fold_left (fun acc l -> if l > 0.5 then acc + 1 else acc) 0
      data.Nn.Data.labels
  in
  Alcotest.(check int) "balanced" n (2 * positives);
  (* pair vectors have 96 entries *)
  Alcotest.(check int) "pair width" (2 * Staticfeat.Names.count)
    (Array.length data.Nn.Data.features.(0))

let suite =
  [
    Alcotest.test_case "library-deterministic" `Quick library_generation_deterministic;
    Alcotest.test_case "libraries-typecheck" `Quick libraries_typecheck;
    Alcotest.test_case "library-parse-roundtrip" `Quick libraries_parse_roundtrip;
    Alcotest.test_case "cve-count-ids" `Quick cve_count_and_ids;
    Alcotest.test_case "cve-minimal-diff" `Quick cve_pair_minimal_diff;
    Alcotest.test_case "cve-compile-run" `Quick cve_pairs_compile_and_run;
    Alcotest.test_case "missing-increment-dos" `Quick missing_increment_dos;
    Alcotest.test_case "case-study-semantics" `Quick case_study_semantics;
    Alcotest.test_case "devices-ground-truth" `Quick devices_ground_truth;
    Alcotest.test_case "firmware-contains-cves" `Quick firmware_contains_cves;
    Alcotest.test_case "dataset-balanced" `Quick dataset_balanced;
  ]
