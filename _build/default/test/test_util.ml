(* PRNG determinism, statistics, vectors and ranking helpers. *)

let prng_deterministic () =
  let a = Util.Prng.create 42L in
  let b = Util.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Prng.next64 a) (Util.Prng.next64 b)
  done

let prng_split_independent () =
  let a = Util.Prng.create 42L in
  let c = Util.Prng.split a in
  let xs = List.init 50 (fun _ -> Util.Prng.next64 a) in
  let ys = List.init 50 (fun _ -> Util.Prng.next64 c) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prng_bounds =
  QCheck.Test.make ~name:"prng-int-in-bounds" ~count:500
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Util.Prng.create (Int64.of_int (a + (b * 1000))) in
      let v = Util.Prng.int_in rng lo hi in
      v >= lo && v <= hi)

let prng_shuffle_permutes () =
  let rng = Util.Prng.create 7L in
  let arr = Array.init 100 Fun.id in
  let orig = Array.copy arr in
  Util.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = orig);
  Alcotest.(check bool) "actually shuffled" true (arr <> orig)

let stats_basics () =
  let mn, mx, avg, std = Util.Stats.min_max_avg_std [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "min" 1.0 mn;
  Alcotest.(check (float 1e-9)) "max" 4.0 mx;
  Alcotest.(check (float 1e-9)) "avg" 2.5 avg;
  Alcotest.(check (float 1e-9)) "std" (sqrt 1.25) std

let stats_empty () =
  let mn, mx, avg, std = Util.Stats.min_max_avg_std [||] in
  Alcotest.(check (float 0.0)) "all zero" 0.0 (mn +. mx +. avg +. std)

let stats_median () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Util.Stats.median [| 5.0; 3.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Util.Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let stats_std_nonneg =
  QCheck.Test.make ~name:"std-nonnegative" ~count:200
    QCheck.(list (float_range (-1000.) 1000.))
    (fun l -> Util.Stats.std (Array.of_list l) >= 0.0)

let vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-9)) "dot" 32.0 (Util.Vec.dot a b);
  Alcotest.(check (float 1e-9)) "l1" 9.0 (Util.Vec.l1_distance a b);
  Alcotest.(check bool) "concat" true
    (Util.Vec.concat a b = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |]);
  Alcotest.(check bool) "add" true (Util.Vec.add a b = [| 5.0; 7.0; 9.0 |])

let vec_mismatch () =
  match Util.Vec.dot [| 1.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected dimension mismatch"

let ranking_order () =
  let ranked = Util.Ranking.rank [ ("a", 3.0); ("b", 1.0); ("c", 2.0) ] in
  Alcotest.(check (list string)) "sorted" [ "b"; "c"; "a" ]
    (List.map (fun e -> e.Util.Ranking.item) ranked);
  Alcotest.(check (option int)) "position" (Some 3)
    (Util.Ranking.position ~equal:String.equal "a" ranked);
  Alcotest.(check int) "top" 2 (List.length (Util.Ranking.top 2 ranked))

let suite =
  [
    Alcotest.test_case "prng-deterministic" `Quick prng_deterministic;
    Alcotest.test_case "prng-split" `Quick prng_split_independent;
    QCheck_alcotest.to_alcotest prng_bounds;
    Alcotest.test_case "prng-shuffle" `Quick prng_shuffle_permutes;
    Alcotest.test_case "stats-basics" `Quick stats_basics;
    Alcotest.test_case "stats-empty" `Quick stats_empty;
    Alcotest.test_case "stats-median" `Quick stats_median;
    QCheck_alcotest.to_alcotest stats_std_nonneg;
    Alcotest.test_case "vec-ops" `Quick vec_ops;
    Alcotest.test_case "vec-mismatch" `Quick vec_mismatch;
    Alcotest.test_case "ranking-order" `Quick ranking_order;
  ]
