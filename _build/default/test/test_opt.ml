(* Unit tests of individual IR optimisation passes on hand-built
   functions (the compiler-diff suite covers whole-pipeline semantics). *)

let mk_fundef ?(nparams = 0) ?(param_vregs = []) ~nvregs blocks =
  {
    Minic.Ir.name = "t";
    nparams;
    param_vregs;
    nvregs;
    blocks = Array.of_list blocks;
    slot_sizes = [||];
  }

let block body term = { Minic.Ir.body; term }

let count_ins (f : Minic.Ir.fundef) =
  Array.fold_left (fun acc (b : Minic.Ir.block) -> acc + List.length b.body) 0 f.blocks

let fold_constants () =
  (* v0=2; v1=3; v2=v0+v1; ret v2  ==> ret 5 via mov *)
  let f =
    mk_fundef ~nvregs:3
      [
        block
          [
            Minic.Ir.Imov (0, Oimm 2L);
            Minic.Ir.Imov (1, Oimm 3L);
            Minic.Ir.Ibin (Add, 2, 0, Ovreg 1);
          ]
          (Minic.Ir.Tret (Some 2));
      ]
  in
  Minic.Opt.fold_constants f;
  let has_fold =
    List.exists
      (fun ins -> ins = Minic.Ir.Imov (2, Minic.Ir.Oimm 5L))
      f.Minic.Ir.blocks.(0).body
  in
  Alcotest.(check bool) "addition folded" true has_fold

let fold_branch () =
  (* constant compare folds the branch to a jump *)
  let f =
    mk_fundef ~nvregs:1
      [
        block [ Minic.Ir.Imov (0, Oimm 7L) ] (Minic.Ir.Tbr (Gt, 0, Oimm 3L, 1, 2));
        block [] (Minic.Ir.Tret (Some 0));
        block [] (Minic.Ir.Tret None);
      ]
  in
  Minic.Opt.fold_constants f;
  (match f.Minic.Ir.blocks.(0).term with
  | Minic.Ir.Tjmp 1 -> ()
  | _ -> Alcotest.fail "branch not folded to then-target")

let dce_removes_dead () =
  let f =
    mk_fundef ~nvregs:3
      [
        block
          [
            Minic.Ir.Imov (0, Oimm 1L);
            Minic.Ir.Imov (1, Oimm 2L);  (* dead *)
            Minic.Ir.Ibin (Mul, 2, 1, Oimm 0L);  (* dead *)
          ]
          (Minic.Ir.Tret (Some 0));
      ]
  in
  Minic.Opt.dce f;
  Alcotest.(check int) "only the live mov remains" 1 (count_ins f)

let dce_keeps_side_effects () =
  let f =
    mk_fundef ~nvregs:2
      [
        block
          [
            Minic.Ir.Imov (0, Oimm 1L);
            Minic.Ir.Icall (Some 1, Minic.Ir.Cimport "print_int", [ 0 ]);
          ]
          (Minic.Ir.Tret None);
      ]
  in
  Minic.Opt.dce f;
  Alcotest.(check int) "call and its argument kept" 2 (count_ins f)

let strength_reduction () =
  let f =
    mk_fundef ~nvregs:4
      [
        block
          [
            Minic.Ir.Ibin (Mul, 1, 0, Oimm 8L);
            Minic.Ir.Ibin (Mul, 2, 0, Oimm 1L);
            Minic.Ir.Ibin (Add, 3, 0, Oimm 0L);
          ]
          (Minic.Ir.Tret (Some 1));
      ]
  in
  Minic.Opt.strength_reduce f;
  (match f.Minic.Ir.blocks.(0).body with
  | [ Minic.Ir.Ibin (Shl, 1, 0, Oimm 3L); Minic.Ir.Imov (2, Ovreg 0);
      Minic.Ir.Imov (3, Ovreg 0) ] ->
    ()
  | _ -> Alcotest.fail "strength reduction did not rewrite as expected")

let cse_reuses () =
  let f =
    mk_fundef ~nvregs:4 ~nparams:1 ~param_vregs:[ 0 ]
      [
        block
          [
            Minic.Ir.Ibin (Add, 1, 0, Oimm 5L);
            Minic.Ir.Ibin (Add, 2, 0, Oimm 5L);  (* same expression *)
            Minic.Ir.Ibin (Mul, 3, 1, Ovreg 2);
          ]
          (Minic.Ir.Tret (Some 3));
      ]
  in
  Minic.Opt.cse f;
  (match f.Minic.Ir.blocks.(0).body with
  | [ _; Minic.Ir.Imov (2, Ovreg 1); _ ] -> ()
  | _ -> Alcotest.fail "second computation not replaced by a move")

let cse_respects_redefinition () =
  let f =
    mk_fundef ~nvregs:4 ~nparams:1 ~param_vregs:[ 0 ]
      [
        block
          [
            Minic.Ir.Ibin (Add, 1, 0, Oimm 5L);
            Minic.Ir.Imov (0, Oimm 9L);  (* v0 changes! *)
            Minic.Ir.Ibin (Add, 2, 0, Oimm 5L);
          ]
          (Minic.Ir.Tret (Some 2));
      ]
  in
  Minic.Opt.cse f;
  (match f.Minic.Ir.blocks.(0).body with
  | [ _; _; Minic.Ir.Ibin (Add, 2, 0, Oimm 5L) ] -> ()
  | _ -> Alcotest.fail "stale expression reused after redefinition")

let simplify_threads_jumps () =
  let f =
    mk_fundef ~nvregs:1
      [
        block [ Minic.Ir.Imov (0, Oimm 1L) ] (Minic.Ir.Tjmp 1);
        block [] (Minic.Ir.Tjmp 2);  (* empty forwarder *)
        block [] (Minic.Ir.Tret (Some 0));
      ]
  in
  Minic.Opt.simplify_cfg f;
  (* the forwarder disappears and blocks merge *)
  Alcotest.(check int) "single block" 1 (Array.length f.Minic.Ir.blocks);
  (match f.Minic.Ir.blocks.(0).term with
  | Minic.Ir.Tret (Some 0) -> ()
  | _ -> Alcotest.fail "terminator not merged")

let simplify_drops_unreachable () =
  let f =
    mk_fundef ~nvregs:1
      [
        block [] (Minic.Ir.Tret None);
        block [ Minic.Ir.Imov (0, Oimm 9L) ] (Minic.Ir.Tret (Some 0));
        (* unreachable *)
      ]
  in
  Minic.Opt.simplify_cfg f;
  Alcotest.(check int) "unreachable dropped" 1 (Array.length f.Minic.Ir.blocks)

let inline_splices_leaf () =
  let leaf =
    mk_fundef ~nvregs:2 ~nparams:1 ~param_vregs:[ 0 ]
      [
        block [ Minic.Ir.Ibin (Add, 1, 0, Oimm 1L) ] (Minic.Ir.Tret (Some 1));
      ]
  in
  let caller =
    mk_fundef ~nvregs:2
      [
        block
          [
            Minic.Ir.Imov (0, Oimm 41L);
            Minic.Ir.Icall (Some 1, Minic.Ir.Cinternal "leaf", [ 0 ]);
          ]
          (Minic.Ir.Tret (Some 1));
      ]
  in
  let leaf = { leaf with Minic.Ir.name = "leaf" } in
  let caller = { caller with Minic.Ir.name = "caller" } in
  Minic.Opt.inline_calls ~limit:10
    ~resolve:(fun n -> if n = "leaf" then Some leaf else None)
    caller;
  (* no internal call remains *)
  let has_call =
    Array.exists
      (fun (b : Minic.Ir.block) ->
        List.exists
          (fun ins ->
            match ins with
            | Minic.Ir.Icall (_, Minic.Ir.Cinternal _, _) -> true
            | _ -> false)
          b.body)
      caller.Minic.Ir.blocks
  in
  Alcotest.(check bool) "call inlined away" false has_call;
  Alcotest.(check bool) "blocks spliced" true
    (Array.length caller.Minic.Ir.blocks > 1)

let licm_hoists_invariant () =
  (* B0 -> B1(header): v2 = v0*3 (invariant, single def); loop back via
     B2; exit B3 *)
  let f =
    mk_fundef ~nvregs:5 ~nparams:1 ~param_vregs:[ 0 ]
      [
        block [ Minic.Ir.Imov (1, Oimm 0L) ] (Minic.Ir.Tjmp 1);
        block
          [
            Minic.Ir.Ibin (Mul, 2, 0, Oimm 3L);  (* invariant *)
            Minic.Ir.Ibin (Add, 3, 1, Ovreg 2);
            Minic.Ir.Imov (1, Ovreg 3);
          ]
          (Minic.Ir.Tbr (Lt, 1, Oimm 100L, 1, 2));
        block [] (Minic.Ir.Tret (Some 1));
      ]
  in
  Minic.Opt.licm f;
  (* a preheader appeared and the invariant left the loop body *)
  Alcotest.(check int) "preheader added" 4 (Array.length f.Minic.Ir.blocks);
  let header_has_mul =
    List.exists
      (fun ins ->
        match ins with Minic.Ir.Ibin (Mul, _, _, _) -> true | _ -> false)
      f.Minic.Ir.blocks.(1).body
  in
  Alcotest.(check bool) "multiply hoisted out of header" false header_has_mul;
  let pre = f.Minic.Ir.blocks.(3) in
  Alcotest.(check bool) "preheader holds it" true
    (List.exists
       (fun ins ->
         match ins with Minic.Ir.Ibin (Mul, 2, 0, _) -> true | _ -> false)
       pre.Minic.Ir.body);
  (* entry now jumps to the preheader, latch still targets the header *)
  (match f.Minic.Ir.blocks.(0).term with
  | Minic.Ir.Tjmp 3 -> ()
  | _ -> Alcotest.fail "entry not redirected to preheader");
  match f.Minic.Ir.blocks.(1).term with
  | Minic.Ir.Tbr (_, _, _, 1, 2) -> ()
  | _ -> Alcotest.fail "back edge must keep targeting the header"

let licm_leaves_loop_variant () =
  let f =
    mk_fundef ~nvregs:3 ~nparams:1 ~param_vregs:[ 0 ]
      [
        block [ Minic.Ir.Imov (1, Oimm 0L) ] (Minic.Ir.Tjmp 1);
        block
          [ Minic.Ir.Ibin (Add, 1, 1, Oimm 1L) ]  (* multi-def: stays *)
          (Minic.Ir.Tbr (Lt, 1, Oimm 10L, 1, 2));
        block [] (Minic.Ir.Tret (Some 1));
      ]
  in
  Minic.Opt.licm f;
  Alcotest.(check int) "no preheader" 3 (Array.length f.Minic.Ir.blocks)

let suite =
  [
    Alcotest.test_case "licm-hoists" `Quick licm_hoists_invariant;
    Alcotest.test_case "licm-variant-stays" `Quick licm_leaves_loop_variant;
    Alcotest.test_case "fold-constants" `Quick fold_constants;
    Alcotest.test_case "fold-branch" `Quick fold_branch;
    Alcotest.test_case "dce-removes-dead" `Quick dce_removes_dead;
    Alcotest.test_case "dce-keeps-side-effects" `Quick dce_keeps_side_effects;
    Alcotest.test_case "strength-reduction" `Quick strength_reduction;
    Alcotest.test_case "cse-reuses" `Quick cse_reuses;
    Alcotest.test_case "cse-redefinition" `Quick cse_respects_redefinition;
    Alcotest.test_case "simplify-threads" `Quick simplify_threads_jumps;
    Alcotest.test_case "simplify-unreachable" `Quick simplify_drops_unreachable;
    Alcotest.test_case "inline-leaf" `Quick inline_splices_leaf;
  ]
