(* Peephole rewrites and image integrity verification. *)

let removes_self_moves () =
  let items : Isa.Asm.item list =
    [ Ins (Mov (1, Reg 1)); Ins (Mov (1, Imm 5L)); Ins Ret ]
  in
  let out = Minic.Peephole.run items in
  Alcotest.(check int) "self-move dropped" 2 (List.length out)

let removes_arith_noop () =
  let items : Isa.Asm.item list =
    [ Ins (Binop (Add, 3, 3, Imm 0L)); Ins (Binop (Add, 3, 4, Imm 0L)); Ins Ret ]
  in
  let out = Minic.Peephole.run items in
  (* add r3, r3, #0 dropped; add r3, r4, #0 kept (it moves r4 into r3) *)
  Alcotest.(check int) "only the no-op dropped" 2 (List.length out)

let removes_jump_to_next () =
  let items : Isa.Asm.item list =
    [ Ins (Jmp "next"); Label "next"; Ins Ret ]
  in
  let out = Minic.Peephole.run items in
  Alcotest.(check int) "jump dropped" 2 (List.length out)

let keeps_jump_elsewhere () =
  let items : Isa.Asm.item list =
    [ Ins (Jmp "far"); Label "next"; Ins (Mov (0, Imm 1L)); Label "far"; Ins Ret ]
  in
  let out = Minic.Peephole.run items in
  Alcotest.(check int) "kept" 5 (List.length out)

let removes_push_pop_pair () =
  let items : Isa.Asm.item list = [ Ins (Push 5); Ins (Pop 5); Ins Ret ] in
  Alcotest.(check int) "pair dropped" 1 (List.length (Minic.Peephole.run items));
  let different : Isa.Asm.item list = [ Ins (Push 5); Ins (Pop 6); Ins Ret ] in
  Alcotest.(check int) "different regs kept" 3
    (List.length (Minic.Peephole.run different))

let removes_store_reload () =
  let items : Isa.Asm.item list =
    [
      Ins (Store (W8, 4, Isa.Reg.fp, -16));
      Ins (Load (W8, 4, Isa.Reg.fp, -16));
      Ins Ret;
    ]
  in
  let out = Minic.Peephole.run items in
  Alcotest.(check int) "reload dropped" 2 (List.length out);
  (* different register: reload must stay *)
  let different : Isa.Asm.item list =
    [
      Ins (Store (W8, 4, Isa.Reg.fp, -16));
      Ins (Load (W8, 5, Isa.Reg.fp, -16));
      Ins Ret;
    ]
  in
  Alcotest.(check int) "different reg kept" 3
    (List.length (Minic.Peephole.run different))

let oz_smaller_than_o1 () =
  (* with peephole everywhere, higher levels still shrink code *)
  let prog = Corpus.Genlib.generate ~seed:0xFEEDL ~index:1 ~nfuncs:16 in
  let size opt =
    Loader.Image.total_code_size
      (Minic.Compiler.compile ~arch:Isa.Arch.X86 ~opt prog)
  in
  Alcotest.(check bool) "O0 > Oz" true
    (size Minic.Optlevel.O0 > size Minic.Optlevel.Oz)

let verify_clean_corpus () =
  for idx = 0 to 3 do
    let prog = Corpus.Genlib.generate ~seed:0xABCL ~index:idx ~nfuncs:20 in
    List.iter
      (fun opt ->
        let img = Minic.Compiler.compile ~arch:Isa.Arch.Arm32 ~opt prog in
        Alcotest.(check (list string)) "no issues" []
          (List.map Loader.Verify.issue_to_string (Loader.Verify.check img)))
      Minic.Optlevel.all
  done

let verify_catches_corruption () =
  let src = {|
lib v;
fn f(x: int): int { return f(x - 1) + 1; }
|} in
  let img = Minic.Compiler.compile_source ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O1 src in
  (* corrupt the call table: internal target out of range *)
  let bad = { img with Loader.Image.calls = [| Loader.Image.Internal 99 |] } in
  Alcotest.(check bool) "bad internal target detected" true
    (List.exists
       (fun i ->
         match i with
         | Loader.Verify.Bad_internal_target _ -> true
         | Loader.Verify.Undecodable _ | Bad_call_index _
         | Branch_out_of_function _ | Data_ref_outside_section _ ->
           false)
       (Loader.Verify.check bad));
  (* corrupt the code bytes *)
  let garbled =
    {
      img with
      Loader.Image.functions = [| Bytes.make 7 '\xAA' |];
    }
  in
  Alcotest.(check bool) "garbage detected" true
    (Loader.Verify.check garbled <> [])

let suite =
  [
    Alcotest.test_case "self-moves" `Quick removes_self_moves;
    Alcotest.test_case "arith-noop" `Quick removes_arith_noop;
    Alcotest.test_case "jump-to-next" `Quick removes_jump_to_next;
    Alcotest.test_case "jump-elsewhere" `Quick keeps_jump_elsewhere;
    Alcotest.test_case "push-pop-pair" `Quick removes_push_pop_pair;
    Alcotest.test_case "store-reload" `Quick removes_store_reload;
    Alcotest.test_case "oz-smaller" `Quick oz_smaller_than_o1;
    Alcotest.test_case "verify-clean-corpus" `Quick verify_clean_corpus;
    Alcotest.test_case "verify-catches-corruption" `Quick verify_catches_corruption;
  ]

(* Property: peephole is idempotent — a second pass changes nothing. *)
let peephole_idempotent =
  QCheck.Test.make ~name:"peephole-idempotent" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      (* representative instruction pattern with randomly sprinkled
         self-moves; one pass must reach the fixpoint *)
      let rng = Util.Prng.create (Int64.of_int (seed + 17)) in
      let base : Isa.Asm.item list =
        [
          Ins (Isa.Instr.Push Isa.Reg.fp);
          Ins (Mov (Isa.Reg.fp, Reg Isa.Reg.sp));
          Ins (Mov (1, Imm 5L));
          Ins (Binop (Add, 2, 1, Imm 1L));
          Label "x";
          Ins (Jmp "x2");
          Label "x2";
          Ins Ret;
        ]
      in
      let noisy =
        List.concat_map
          (fun item ->
            if Util.Prng.chance rng 0.4 then
              [ Isa.Asm.Ins (Isa.Instr.Mov (3, Reg 3)); item ]
            else [ item ])
          base
      in
      let once = Minic.Peephole.run noisy in
      Minic.Peephole.run once = once)

let suite = suite @ [ QCheck_alcotest.to_alcotest peephole_idempotent ]
