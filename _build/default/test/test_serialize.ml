(* Model / normalizer persistence round trips. *)

let make_model () =
  let rng = Util.Prng.create 0x51AL in
  Nn.Model.create rng ~input:8
    ~layers:
      [ (6, Nn.Activation.Relu); (4, Nn.Activation.Tanh); (1, Nn.Activation.Sigmoid) ]

let model_roundtrip_exact () =
  let model = make_model () in
  let back = Nn.Serialize.model_of_bytes (Nn.Serialize.model_to_bytes model) in
  (* identical predictions bit for bit on random inputs *)
  let rng = Util.Prng.create 9L in
  for _ = 1 to 50 do
    let x = Array.init 8 (fun _ -> Util.Prng.gaussian rng) in
    Alcotest.(check (float 0.0)) "identical prediction"
      (Nn.Model.predict_one model x)
      (Nn.Model.predict_one back x)
  done

let normalizer_roundtrip () =
  let data =
    Nn.Data.make [ ([| 1.0; 5.0 |], 0.0); ([| 3.0; 9.0 |], 1.0) ]
  in
  let nz = Nn.Data.fit_normalizer data in
  let back =
    Nn.Serialize.normalizer_of_bytes (Nn.Serialize.normalizer_to_bytes nz)
  in
  let v = [| 2.5; 7.0 |] in
  Alcotest.(check bool) "identical normalisation" true
    (Util.Vec.equal ~eps:0.0 (Nn.Data.normalize_vec nz v)
       (Nn.Data.normalize_vec back v))

let classifier_file_roundtrip () =
  let model = make_model () in
  let data = Nn.Data.make [ (Array.make 8 1.0, 1.0); (Array.make 8 3.0, 0.0) ] in
  let nz = Nn.Data.fit_normalizer data in
  let path = Filename.temp_file "patchecko" ".pnn" in
  Nn.Serialize.write_classifier path model nz;
  let model', nz' = Nn.Serialize.read_classifier path in
  Sys.remove path;
  let x = Array.init 8 float_of_int in
  Alcotest.(check (float 0.0)) "prediction preserved"
    (Nn.Model.predict_one model (Nn.Data.normalize_vec nz x))
    (Nn.Model.predict_one model' (Nn.Data.normalize_vec nz' x))

let corrupt_rejected () =
  (match Nn.Serialize.model_of_bytes (Bytes.of_string "JUNKJUNK") with
  | exception Nn.Serialize.Corrupt _ -> ()
  | _ -> Alcotest.fail "junk accepted");
  let good = Nn.Serialize.model_to_bytes (make_model ()) in
  let truncated = Bytes.sub good 0 (Bytes.length good - 9) in
  match Nn.Serialize.model_of_bytes truncated with
  | exception Nn.Serialize.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncation accepted"

let trained_model_survives () =
  (* train briefly, persist, and check accuracy is unchanged *)
  let rng = Util.Prng.create 12L in
  let sample label =
    let c = if label > 0.5 then 1.5 else -1.5 in
    (Array.init 4 (fun _ -> c +. Util.Prng.gaussian rng), label)
  in
  let pairs = List.init 200 (fun i -> sample (if i mod 2 = 0 then 1.0 else 0.0)) in
  let data = Nn.Data.make pairs in
  let model =
    Nn.Model.create rng ~input:4
      ~layers:[ (6, Nn.Activation.Relu); (1, Nn.Activation.Sigmoid) ]
  in
  let config = { Nn.Train.default_config with epochs = 10; batch_size = 16 } in
  let model, _ = Nn.Train.fit ~config model ~train:data ~validation:data in
  let back = Nn.Serialize.model_of_bytes (Nn.Serialize.model_to_bytes model) in
  let acc m =
    let p = Nn.Model.predict m (Nn.Matrix.of_rows data.Nn.Data.features) in
    Nn.Metrics.accuracy ~predictions:p ~labels:data.Nn.Data.labels ()
  in
  Alcotest.(check (float 0.0)) "accuracy preserved" (acc model) (acc back)

let suite =
  [
    Alcotest.test_case "model-roundtrip" `Quick model_roundtrip_exact;
    Alcotest.test_case "normalizer-roundtrip" `Quick normalizer_roundtrip;
    Alcotest.test_case "classifier-file" `Quick classifier_file_roundtrip;
    Alcotest.test_case "corrupt-rejected" `Quick corrupt_rejected;
    Alcotest.test_case "trained-model-survives" `Quick trained_model_survives;
  ]
