(* Differential testing of the compiler: every template-family instance
   must behave identically at every (architecture, optimisation level)
   pair — same outcome, same return value, same stdout — on fuzzed
   environments accepted by the O0 build.  This is the property the whole
   reproduction rests on: dynamic features may differ across levels, but
   semantics may not. *)

let archs = Isa.Arch.[ X86; Arm64 ]
let opts = Minic.Optlevel.all

let outcomes_agree (a : Vm.Exec.outcome) (b : Vm.Exec.outcome) =
  match (a, b) with
  | Vm.Exec.Finished x, Vm.Exec.Finished y -> x = y
  | Vm.Exec.Exited x, Vm.Exec.Exited y -> x = y
  | Vm.Exec.Crashed _, Vm.Exec.Crashed _ ->
    (* both crash: accept (the trap kind may legitimately differ when an
       optimisation reorders the first faulting operation) *)
    true
  | Vm.Exec.Finished _, (Vm.Exec.Exited _ | Vm.Exec.Crashed _)
  | Vm.Exec.Exited _, (Vm.Exec.Finished _ | Vm.Exec.Crashed _)
  | Vm.Exec.Crashed _, (Vm.Exec.Finished _ | Vm.Exec.Exited _) ->
    false

let check_family (family : Corpus.Templates.family) seed =
  let rng = Util.Prng.create (Int64.of_int seed) in
  let func = family.Corpus.Templates.make rng ~fname:"probe" in
  let prog = { Minic.Ast.pname = "diff"; globals = []; funcs = [ func ] } in
  let images =
    List.concat_map
      (fun arch ->
        List.map
          (fun opt ->
            ((arch, opt), Minic.Compiler.compile ~arch ~opt prog))
          opts)
      archs
  in
  let env_rng = Util.Prng.create (Int64.of_int (seed * 31)) in
  let envs = Fuzz.Envgen.environments env_rng family.Corpus.Templates.shape 3 in
  let _, reference_img = List.hd images in
  List.for_all
    (fun env ->
      let fuel = 150_000 in
      let reference = Vm.Exec.run ~fuel reference_img 0 env in
      List.for_all
        (fun ((arch, opt), img) ->
          let r = Vm.Exec.run ~fuel img 0 env in
          let ok =
            outcomes_agree reference.Vm.Exec.outcome r.Vm.Exec.outcome
            && reference.Vm.Exec.stdout = r.Vm.Exec.stdout
          in
          if not ok then
            Printf.eprintf "divergence: %s seed=%d %s/%s: %s vs %s\n%!"
              family.Corpus.Templates.name seed (Isa.Arch.to_string arch)
              (Minic.Optlevel.to_string opt)
              (Vm.Exec.outcome_to_string reference.Vm.Exec.outcome)
              (Vm.Exec.outcome_to_string r.Vm.Exec.outcome);
          ok)
        images)
    envs

let prop_family family =
  QCheck.Test.make
    ~name:(Printf.sprintf "diff-%s" family.Corpus.Templates.name)
    ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed -> check_family family seed)

(* the CVE pairs also must agree across configurations *)
let cve_cross_level () =
  List.iter
    (fun id ->
      match Corpus.Cves.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some c ->
        List.iter
          (fun patched ->
            let images =
              List.map
                (fun opt ->
                  Corpus.Dataset.compile_cve ~arch:Isa.Arch.Arm32 ~opt c ~patched)
                opts
            in
            let rng = Util.Prng.create 0xC0DEL in
            let envs = Fuzz.Envgen.environments rng c.Corpus.Cves.shape 4 in
            List.iter
              (fun env ->
                let outcomes =
                  List.map
                    (fun img -> (Vm.Exec.run ~fuel:100_000 img 0 env).Vm.Exec.outcome)
                    images
                in
                match outcomes with
                | first :: rest ->
                  List.iter
                    (fun o ->
                      Alcotest.(check bool)
                        (Printf.sprintf "%s patched=%b agrees" id patched)
                        true (outcomes_agree first o))
                    rest
                | [] -> ())
              envs)
          [ false; true ])
    [ "CVE-2018-9412"; "CVE-2018-9470"; "CVE-2018-9340"; "CVE-2017-13208" ]

let suite =
  List.map (fun f -> QCheck_alcotest.to_alcotest (prop_family f)) Corpus.Templates.all
  @ [ Alcotest.test_case "cve-cross-level" `Quick cve_cross_level ]
