(* Environment generation/mutation and execution validation. *)

let shape : Fuzz.Shape.t = [ Abuf 32; Alen; Aint (0L, 100L) ]

let generation_respects_shape () =
  let rng = Util.Prng.create 3L in
  for _ = 1 to 50 do
    let env = Fuzz.Envgen.generate rng shape in
    match env.Vm.Env.args with
    | [ Vm.Env.Vbuf b; Vm.Env.Vint len; Vm.Env.Vint x ] ->
      Alcotest.(check bool) "len matches buffer" true
        (Int64.to_int len = Bytes.length b);
      Alcotest.(check bool) "buffer within max" true (Bytes.length b <= 32);
      Alcotest.(check bool) "int in range" true (x >= 0L && x <= 100L)
    | _ -> Alcotest.fail "wrong argument shape"
  done

let generation_deterministic () =
  let e1 = Fuzz.Envgen.generate (Util.Prng.create 9L) shape in
  let e2 = Fuzz.Envgen.generate (Util.Prng.create 9L) shape in
  Alcotest.(check bool) "same env from same seed" true
    (e1.Vm.Env.args = e2.Vm.Env.args)

let mutation_preserves_arity () =
  let rng = Util.Prng.create 5L in
  let env = Fuzz.Envgen.generate rng shape in
  let mutated = Fuzz.Envgen.mutate rng env in
  Alcotest.(check int) "same arity"
    (List.length env.Vm.Env.args)
    (List.length mutated.Vm.Env.args)

let environments_count () =
  let rng = Util.Prng.create 1L in
  Alcotest.(check int) "k environments" 10
    (List.length (Fuzz.Envgen.environments rng shape 10))

let crashing_candidates_pruned () =
  let src =
    {|
lib fz;
fn safe(data: byte*, len: int): int {
  var acc: int = 0;
  for (k = 0; k < len; k = k + 1) {
    acc = acc + data[k];
  }
  return acc;
}
fn crasher(data: byte*, len: int): int {
  return data[0] / (data[1] % 1);
}
fn hang(data: byte*, len: int): int {
  while (1) {
  }
  return 0;
}
|}
  in
  let img = Minic.Compiler.compile_source ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O1 src in
  let rng = Util.Prng.create 17L in
  let envs = Fuzz.Envgen.environments rng [ Fuzz.Shape.Abuf 16; Alen ] 4 in
  let report =
    Fuzz.Validate.run ~fuel:20_000 img ~candidates:[ 0; 1; 2 ] envs
  in
  Alcotest.(check (list int)) "only safe survives" [ 0 ]
    report.Fuzz.Validate.survivors;
  Alcotest.(check int) "two crashed" 2 (List.length report.Fuzz.Validate.crashed);
  Alcotest.(check bool) "executions counted" true
    (report.Fuzz.Validate.executions >= 3)

let filter_envs_keeps_surviving () =
  let src =
    {|
lib fz2;
fn picky(data: byte*, len: int): int {
  if (data[0] > 128) {
    abort();
  }
  return len;
}
|}
  in
  let img = Minic.Compiler.compile_source ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O1 src in
  let rng = Util.Prng.create 23L in
  let envs = Fuzz.Envgen.environments rng [ Fuzz.Shape.Abuf 16; Alen ] 30 in
  let kept = Fuzz.Validate.filter_envs img 0 envs in
  Alcotest.(check bool) "some filtered" true (List.length kept < 30);
  List.iter
    (fun env ->
      Alcotest.(check bool) "kept env survives" true (Vm.Exec.survives img 0 env))
    kept

let suite =
  [
    Alcotest.test_case "generation-shape" `Quick generation_respects_shape;
    Alcotest.test_case "generation-deterministic" `Quick generation_deterministic;
    Alcotest.test_case "mutation-arity" `Quick mutation_preserves_arity;
    Alcotest.test_case "environments-count" `Quick environments_count;
    Alcotest.test_case "crashers-pruned" `Quick crashing_candidates_pruned;
    Alcotest.test_case "filter-envs" `Quick filter_envs_keeps_surviving;
  ]
