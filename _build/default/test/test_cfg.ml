(* CFG recovery: block splitting, edges, classification, centrality. *)

let params = Isa.Encoding.params_of_arch Isa.Arch.X86

let listing_of items =
  Isa.Disasm.disassemble params (Isa.Asm.assemble params items)

(* if/else diamond:
     B0: cmp, jcc Lelse
     B1: ..., jmp Lend
     B2 (Lelse): ...
     B3 (Lend): ret *)
let diamond : Isa.Asm.item list =
  [
    Ins (Cmp (0, Imm 0L));
    Ins (Jcc (Isa.Cond.Eq, "else"));
    Ins (Mov (1, Imm 1L));
    Ins (Jmp "end");
    Label "else";
    Ins (Mov (1, Imm 2L));
    Label "end";
    Ins Ret;
  ]

let diamond_structure () =
  let g = Cfg.Graph.build (listing_of diamond) in
  Alcotest.(check int) "blocks" 4 (Cfg.Graph.block_count g);
  Alcotest.(check int) "edges" 4 (Cfg.Graph.edge_count g);
  Alcotest.(check int) "cyclomatic" 2 (Cfg.Graph.cyclomatic_complexity g);
  (* entry has two successors *)
  match Cfg.Graph.entry g with
  | Some b -> Alcotest.(check int) "entry succs" 2 (List.length b.Cfg.Block.succs)
  | None -> Alcotest.fail "no entry"

let loop_structure () =
  let items : Isa.Asm.item list =
    [
      Label "head";
      Ins (Cmp (0, Imm 10L));
      Ins (Jcc (Isa.Cond.Ge, "exit"));
      Ins (Binop (Add, 0, 0, Imm 1L));
      Ins (Jmp "head");
      Label "exit";
      Ins Ret;
    ]
  in
  let g = Cfg.Graph.build (listing_of items) in
  Alcotest.(check int) "blocks" 3 (Cfg.Graph.block_count g);
  (* back edge present: body block's successor is the head *)
  let body = g.Cfg.Graph.blocks.(1) in
  Alcotest.(check bool) "back edge" true (List.mem 0 body.Cfg.Block.succs)

let classify_ret_and_cndret () =
  let items : Isa.Asm.item list =
    [
      Ins (Cmp (0, Imm 0L));
      Ins (Jcc (Isa.Cond.Eq, "quick"));
      Ins (Mov (1, Imm 5L));
      Ins Ret;
      Label "quick";
      Ins Ret;
    ]
  in
  let g = Cfg.Graph.build (listing_of items) in
  let classes = List.map (Cfg.Classify.classify g) (Array.to_list g.Cfg.Graph.blocks) in
  Alcotest.(check bool) "has cndret" true (List.mem Cfg.Classify.Cndret classes);
  Alcotest.(check bool) "has ret" true (List.mem Cfg.Classify.Ret classes)

let classify_indjump () =
  let items : Isa.Asm.item list =
    [
      Ins (Jtable (0, [| "a"; "b" |]));
      Label "a";
      Ins Ret;
      Label "b";
      Ins Ret;
    ]
  in
  let g = Cfg.Graph.build (listing_of items) in
  Alcotest.(check bool) "indjump classified" true
    (List.exists
       (fun b -> Cfg.Classify.classify g b = Cfg.Classify.Indjump)
       (Array.to_list g.Cfg.Graph.blocks));
  (* jtable produced two successors *)
  Alcotest.(check int) "two successors" 2
    (List.length g.Cfg.Graph.blocks.(0).Cfg.Block.succs)

let classify_noret_call () =
  (* a call flagged no-return terminates its block with Noret class *)
  let items : Isa.Asm.item list =
    [ Ins (Mov (0, Imm 1L)); Ins (Call 7); Ins (Mov (0, Imm 2L)); Ins Ret ]
  in
  let listing = listing_of items in
  let g = Cfg.Graph.build ~is_noret_call:(fun idx -> idx = 7) listing in
  Alcotest.(check int) "split at noret call" 2 (Cfg.Graph.block_count g);
  Alcotest.(check bool) "noret class" true
    (Cfg.Classify.classify g g.Cfg.Graph.blocks.(0) = Cfg.Classify.Noret)

let classify_error_falloff () =
  (* no terminator at the end: execution passes the function end *)
  let items : Isa.Asm.item list = [ Ins (Mov (0, Imm 1L)) ] in
  let g = Cfg.Graph.build (listing_of items) in
  Alcotest.(check bool) "error class" true
    (Cfg.Classify.classify g g.Cfg.Graph.blocks.(0) = Cfg.Classify.Error)

let classify_extern_jump () =
  (* jump beyond the function body *)
  let items : Isa.Asm.item list = [ Ins (Jmp "far"); Label "far" ] in
  (* "far" is at the very end = function size, i.e. outside *)
  let g = Cfg.Graph.build (listing_of items) in
  let c = Cfg.Classify.classify g g.Cfg.Graph.blocks.(0) in
  Alcotest.(check string) "extern" "extern" (Cfg.Classify.to_string c);
  let c2 =
    Cfg.Classify.classify ~is_noret_target:(fun _ -> true) g
      g.Cfg.Graph.blocks.(0)
  in
  Alcotest.(check string) "enoret" "enoret" (Cfg.Classify.to_string c2)

let centrality_diamond () =
  let g = Cfg.Graph.build (listing_of diamond) in
  let bc = Cfg.Centrality.betweenness g in
  (* the two middle blocks lie on one shortest path each; entry/exit on none *)
  Alcotest.(check (float 1e-9)) "entry zero" 0.0 bc.(0);
  Alcotest.(check bool) "middles positive" true (bc.(1) > 0.0 && bc.(2) > 0.0);
  Alcotest.(check int) "zero count" 2 (Cfg.Centrality.zero_count bc)

let histogram_sums_to_blocks () =
  let g = Cfg.Graph.build (listing_of diamond) in
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Cfg.Classify.histogram g)
  in
  Alcotest.(check int) "histogram total" (Cfg.Graph.block_count g) total

let empty_function () =
  let g = Cfg.Graph.build (listing_of []) in
  Alcotest.(check int) "no blocks" 0 (Cfg.Graph.block_count g);
  Alcotest.(check int) "cyclomatic" 0 (Cfg.Graph.cyclomatic_complexity g)

let suite =
  [
    Alcotest.test_case "diamond-structure" `Quick diamond_structure;
    Alcotest.test_case "loop-structure" `Quick loop_structure;
    Alcotest.test_case "classify-ret-cndret" `Quick classify_ret_and_cndret;
    Alcotest.test_case "classify-indjump" `Quick classify_indjump;
    Alcotest.test_case "classify-noret-call" `Quick classify_noret_call;
    Alcotest.test_case "classify-error" `Quick classify_error_falloff;
    Alcotest.test_case "classify-extern" `Quick classify_extern_jump;
    Alcotest.test_case "centrality-diamond" `Quick centrality_diamond;
    Alcotest.test_case "histogram-total" `Quick histogram_sums_to_blocks;
    Alcotest.test_case "empty-function" `Quick empty_function;
  ]
