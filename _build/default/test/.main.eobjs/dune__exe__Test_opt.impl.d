test/test_opt.ml: Alcotest Array List Minic
