test/test_similarity.ml: Alcotest Array Gen List QCheck QCheck_alcotest Similarity String
