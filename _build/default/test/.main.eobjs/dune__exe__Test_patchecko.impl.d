test/test_patchecko.ml: Alcotest Array Corpus Fun Isa List Loader Minic Nn Patchecko Similarity Staticfeat String Util
