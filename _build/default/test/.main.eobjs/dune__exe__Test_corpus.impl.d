test/test_corpus.ml: Alcotest Array Bytes Corpus Fuzz List Loader Minic Nn Staticfeat Util Vm
