test/test_vm_details.ml: Alcotest Array Bytes Isa List Loader Minic Option String Vm
