test/test_compiler_diff.ml: Alcotest Corpus Fuzz Int64 Isa List Minic Printf QCheck QCheck_alcotest Util Vm
