test/test_minic.ml: Alcotest Array Isa List Loader Minic Printf
