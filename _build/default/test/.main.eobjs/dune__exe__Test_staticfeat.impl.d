test/test_staticfeat.ml: Alcotest Array Corpus Float Hashtbl Int64 Isa Loader Minic QCheck QCheck_alcotest Staticfeat
