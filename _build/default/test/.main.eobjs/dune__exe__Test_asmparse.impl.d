test/test_asmparse.ml: Alcotest Array Bytes Corpus Format Isa List Loader Minic Printf Vm
