test/test_fuzz.ml: Alcotest Bytes Fuzz Int64 Isa List Minic Util Vm
