test/test_evaluation.ml: Alcotest Array Buffer Evaluation Format Lazy List Loader Patchecko
