test/test_isa.ml: Alcotest Array Buffer Bytes Format Isa List Printf QCheck QCheck_alcotest
