test/test_nn.ml: Alcotest Array List Nn Printf Util
