test/test_baseline.ml: Alcotest Array Baseline Corpus Isa Loader Minic Printf Staticfeat
