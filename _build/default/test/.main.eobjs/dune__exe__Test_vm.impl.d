test/test_vm.ml: Alcotest Array Char Int64 Isa Lazy List Loader Minic Printf String Util Vm
