test/test_util.ml: Alcotest Array Fun Int64 List QCheck QCheck_alcotest String Util
