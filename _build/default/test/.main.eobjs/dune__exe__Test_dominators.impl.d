test/test_dominators.ml: Alcotest Array Cfg Corpus Isa List Loader Minic
