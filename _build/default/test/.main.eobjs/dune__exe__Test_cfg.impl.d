test/test_cfg.ml: Alcotest Array Cfg Isa List
