test/test_peephole.ml: Alcotest Bytes Corpus Int64 Isa List Loader Minic QCheck QCheck_alcotest Util
