test/test_serialize.ml: Alcotest Array Bytes Filename List Nn Sys Util
