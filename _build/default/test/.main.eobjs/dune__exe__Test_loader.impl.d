test/test_loader.ml: Alcotest Array Bytes Corpus Filename Int64 Isa Loader Minic QCheck QCheck_alcotest Sys Vm
