test/main.mli:
