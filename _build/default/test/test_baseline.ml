(* The kNN and CFG-matching baseline comparators. *)

let sample_image arch opt =
  let prog = Corpus.Genlib.generate ~seed:0xBA5EL ~index:0 ~nfuncs:14 in
  Minic.Compiler.compile ~arch ~opt prog

let knn_self_distance_zero () =
  let img = sample_image Isa.Arch.X86 Minic.Optlevel.O1 in
  let feats = Staticfeat.Extract.of_image img in
  Array.iter
    (fun f ->
      Alcotest.(check (float 1e-9)) "d(x,x)=0" 0.0 (Baseline.Knn.distance f f))
    feats

let knn_finds_same_function_across_configs () =
  let a = sample_image Isa.Arch.X86 Minic.Optlevel.O1 in
  let b = sample_image Isa.Arch.Arm64 Minic.Optlevel.O2 in
  (* for most functions, the same index in the other build is the nearest *)
  let feats_a = Staticfeat.Extract.of_image a in
  let hits = ref 0 in
  Array.iteri
    (fun i f ->
      match Baseline.Knn.rank_image ~reference:f b with
      | (best, _) :: _ when best = i -> incr hits
      | _ -> ())
    feats_a;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d top-1 hits" !hits (Array.length feats_a))
    true
    (!hits * 3 >= Array.length feats_a * 2)

let knn_rank_of () =
  Alcotest.(check (option int)) "found" (Some 2)
    (Baseline.Knn.rank_of 9 [ (3, 0.1); (9, 0.2); (1, 0.3) ]);
  Alcotest.(check (option int)) "missing" None
    (Baseline.Knn.rank_of 7 [ (3, 0.1) ])

let graphmatch_self_zero () =
  let img = sample_image Isa.Arch.Arm32 Minic.Optlevel.O2 in
  for i = 0 to min 5 (Loader.Image.function_count img - 1) do
    let blocks = Baseline.Graphmatch.block_attributes img i in
    Alcotest.(check (float 1e-9)) "self cost 0" 0.0
      (Baseline.Graphmatch.similarity blocks blocks)
  done

let graphmatch_symmetric () =
  let img = sample_image Isa.Arch.Arm32 Minic.Optlevel.O2 in
  let a = Baseline.Graphmatch.block_attributes img 0 in
  let b = Baseline.Graphmatch.block_attributes img 1 in
  Alcotest.(check (float 1e-9)) "symmetric"
    (Baseline.Graphmatch.similarity a b)
    (Baseline.Graphmatch.similarity b a)

let graphmatch_penalises_size_difference () =
  let img = sample_image Isa.Arch.Arm32 Minic.Optlevel.O0 in
  (* find two functions with very different block counts *)
  let attrs =
    Array.init (Loader.Image.function_count img) (fun i ->
        Baseline.Graphmatch.block_attributes img i)
  in
  let sizes = Array.map Array.length attrs in
  let small = ref 0 and big = ref 0 in
  Array.iteri
    (fun i n ->
      if n < sizes.(!small) then small := i;
      if n > sizes.(!big) then big := i)
    sizes;
  if sizes.(!big) > sizes.(!small) then
    Alcotest.(check bool) "different shapes cost more than self" true
      (Baseline.Graphmatch.similarity attrs.(!small) attrs.(!big) > 0.0)

let graphmatch_ranks_same_function () =
  let a = sample_image Isa.Arch.X86 Minic.Optlevel.O1 in
  let b = sample_image Isa.Arch.Arm64 Minic.Optlevel.O1 in
  let hits = ref 0 in
  let n = Loader.Image.function_count a in
  for i = 0 to n - 1 do
    let reference = Baseline.Graphmatch.block_attributes a i in
    match Baseline.Graphmatch.rank ~reference b with
    | (best, _) :: _ when best = i -> incr hits
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d top-1" !hits n)
    true
    (!hits * 3 >= n * 2)

let suite =
  [
    Alcotest.test_case "knn-self-zero" `Quick knn_self_distance_zero;
    Alcotest.test_case "knn-cross-config" `Quick knn_finds_same_function_across_configs;
    Alcotest.test_case "knn-rank-of" `Quick knn_rank_of;
    Alcotest.test_case "graphmatch-self-zero" `Quick graphmatch_self_zero;
    Alcotest.test_case "graphmatch-symmetric" `Quick graphmatch_symmetric;
    Alcotest.test_case "graphmatch-size-penalty" `Quick graphmatch_penalises_size_difference;
    Alcotest.test_case "graphmatch-cross-config" `Quick graphmatch_ranks_same_function;
  ]
