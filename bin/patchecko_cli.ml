(* The patchecko command-line tool.

   compile       MinC source -> SFF image
   inspect       list functions / disassemble / static features
   verify        structural integrity check of an image
   run           execute one function in the dynamic engine
   trace         single-step a function and print its instructions
   gen-firmware  build a synthetic device firmware file
   train         train the similarity model and save it to a file
   scan          hybrid scan of a firmware file for one or all CVEs
   stats         per-span timing summary of a scan trace file
   db            vulnerability-database inspection (signature index stats)
   analyze       static memory-safety alarm report for an image
   evaluate      train the model and print its quality summary *)

open Cmdliner

let arch_conv =
  let parse s =
    match Isa.Arch.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown architecture %S" s))
  in
  Arg.conv (parse, fun ppf a -> Format.fprintf ppf "%s" (Isa.Arch.to_string a))

let opt_conv =
  let parse s =
    match Minic.Optlevel.of_string s with
    | Some o -> Ok o
    | None -> Error (`Msg (Printf.sprintf "unknown optimisation level %S" s))
  in
  Arg.conv
    (parse, fun ppf o -> Format.fprintf ppf "%s" (Minic.Optlevel.to_string o))

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  Bytes.to_string b

(* --- compile ----------------------------------------------------------- *)

let compile_cmd =
  let src =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.minc")
  in
  let output =
    Arg.(value & opt string "out.sff" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let arch =
    Arg.(value & opt arch_conv Isa.Arch.Arm64 & info [ "arch" ] ~docv:"ARCH")
  in
  let level =
    Arg.(value & opt opt_conv Minic.Optlevel.O2 & info [ "O"; "opt" ] ~docv:"LEVEL")
  in
  let strip = Arg.(value & flag & info [ "strip" ] ~doc:"Strip the symbol table.") in
  let run src output arch level strip =
    match Minic.Compiler.compile_source ~arch ~opt:level (read_file src) with
    | img ->
      let img = if strip then Loader.Image.strip img else img in
      Loader.Sff.write_image output img;
      Printf.printf "wrote %s (%d functions, %d code bytes)\n" output
        (Loader.Image.function_count img)
        (Loader.Image.total_code_size img);
      0
    | exception Minic.Compiler.Compile_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a MinC source file to an SFF image.")
    Term.(const run $ src $ output $ arch $ level $ strip)

(* --- inspect ------------------------------------------------------------ *)

let inspect_cmd =
  let image =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE.sff")
  in
  let disasm =
    Arg.(value & opt (some int) None & info [ "disasm" ] ~docv:"INDEX")
  in
  let features =
    Arg.(value & opt (some int) None & info [ "features" ] ~docv:"INDEX")
  in
  let run image disasm features =
    let img = Loader.Sff.read_image image in
    Printf.printf "%s: %s, %d functions, %d data bytes, stripped=%b\n"
      img.Loader.Image.name
      (Isa.Arch.to_string img.Loader.Image.arch)
      (Loader.Image.function_count img)
      (Bytes.length img.Loader.Image.data)
      (Loader.Image.is_stripped img);
    (match disasm with
    | None -> ()
    | Some i ->
      Format.printf "%a" Isa.Disasm.pp (Loader.Image.disassemble img i));
    (match features with
    | None -> ()
    | Some i ->
      Format.printf "%a" Staticfeat.Extract.pp
        (Staticfeat.Extract.of_function img i));
    if disasm = None && features = None then
      for i = 0 to Loader.Image.function_count img - 1 do
        let listing = Loader.Image.disassemble img i in
        Printf.printf "  %4d %-32s %5d bytes %4d instrs\n" i
          (match Loader.Image.function_name img i with
          | Some n -> n
          | None -> "<stripped>")
          listing.Isa.Disasm.size
          (Array.length listing.Isa.Disasm.instrs)
      done;
    0
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"List or disassemble the functions of an image.")
    Term.(const run $ image $ disasm $ features)

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let image =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE.sff")
  in
  let fn = Arg.(value & opt int 0 & info [ "fn" ] ~docv:"INDEX") in
  let ints =
    Arg.(value & opt_all int64 [] & info [ "int" ] ~docv:"N" ~doc:"Integer argument.")
  in
  let bufs =
    Arg.(value & opt_all string [] & info [ "buf" ] ~docv:"BYTES" ~doc:"Buffer argument.")
  in
  let fuel = Arg.(value & opt int 1_000_000 & info [ "fuel" ] ~docv:"STEPS") in
  let run image fn ints bufs fuel =
    let img = Loader.Sff.read_image image in
    let args =
      List.map (fun v -> Vm.Env.Vint v) ints
      @ List.map (fun s -> Vm.Env.buf_of_string s) bufs
    in
    let result = Vm.Exec.run ~fuel img fn (Vm.Env.make args) in
    Printf.printf "%s\n" (Vm.Exec.outcome_to_string result.Vm.Exec.outcome);
    if result.Vm.Exec.stdout <> "" then
      Printf.printf "stdout: %s\n" result.Vm.Exec.stdout;
    Printf.printf "%d instructions executed\n" result.Vm.Exec.instructions;
    Array.iteri
      (fun i name -> Printf.printf "  %-28s %g\n" name result.Vm.Exec.features.(i))
      Vm.Dynfeat.all;
    0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute one function in the dynamic analysis engine.")
    Term.(const run $ image $ fn $ ints $ bufs $ fuel)

(* --- verify ----------------------------------------------------------------- *)

let verify_cmd =
  let image =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE.sff")
  in
  let run image =
    let img = Loader.Sff.read_image image in
    match Loader.Verify.check img with
    | [] ->
      Printf.printf "%s: OK (%d functions verified)\n" img.Loader.Image.name
        (Loader.Image.function_count img);
      0
    | issues ->
      List.iter
        (fun issue -> Printf.printf "%s\n" (Loader.Verify.issue_to_string issue))
        issues;
      1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check an image's structural integrity (decode, calls, branches).")
    Term.(const run $ image)

(* --- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let image =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE.sff")
  in
  let fn = Arg.(value & opt int 0 & info [ "fn" ] ~docv:"INDEX") in
  let ints = Arg.(value & opt_all int64 [] & info [ "int" ] ~docv:"N") in
  let bufs = Arg.(value & opt_all string [] & info [ "buf" ] ~docv:"BYTES") in
  let limit = Arg.(value & opt int 200 & info [ "limit" ] ~docv:"LINES") in
  let run image fn ints bufs limit =
    let img = Loader.Sff.read_image image in
    let args =
      List.map (fun v -> Vm.Env.Vint v) ints
      @ List.map (fun s -> Vm.Env.buf_of_string s) bufs
    in
    let result, trace = Vm.Exec.run_traced ~limit img fn (Vm.Env.make args) in
    List.iter print_endline trace;
    Printf.printf "%s (%d instructions%s)\n"
      (Vm.Exec.outcome_to_string result.Vm.Exec.outcome)
      result.Vm.Exec.instructions
      (if result.Vm.Exec.instructions > limit then
         Printf.sprintf "; trace capped at %d lines" limit
       else "");
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Single-step a function and print the executed instructions.")
    Term.(const run $ image $ fn $ ints $ bufs $ limit)

(* --- gen-firmware --------------------------------------------------------- *)

let gen_firmware_cmd =
  let device =
    Arg.(
      value
      & opt (enum [ ("things", `Things); ("pixel", `Pixel) ]) `Things
      & info [ "device" ] ~docv:"DEVICE")
  in
  let output =
    Arg.(value & opt string "firmware.sfw" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let strip = Arg.(value & flag & info [ "strip" ]) in
  let run device output strip =
    let dev =
      match device with
      | `Things -> Corpus.Devices.android_things
      | `Pixel -> Corpus.Devices.pixel2xl
    in
    let fw, truths = Corpus.Devices.build_firmware dev in
    let fw = if strip then Loader.Firmware.strip fw else fw in
    Loader.Firmware.write output fw;
    Printf.printf "wrote %s: %s, %d libraries, %d functions, %d CVE sites\n"
      output fw.Loader.Firmware.device
      (Array.length fw.Loader.Firmware.images)
      (Loader.Firmware.total_functions fw)
      (List.length truths);
    0
  in
  Cmd.v
    (Cmd.info "gen-firmware" ~doc:"Build a synthetic device firmware file.")
    Term.(const run $ device $ output $ strip)

(* --- train ------------------------------------------------------------------ *)

let train_cmd =
  let output =
    Arg.(value & opt string "classifier.pnn" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let fast = Arg.(value & flag & info [ "fast" ]) in
  let run output fast =
    let classifier, _, (acc, auc) =
      Evaluation.Context.train_classifier ~fast ~progress:prerr_endline ()
    in
    Nn.Serialize.write_classifier output classifier.Patchecko.Static_stage.model
      classifier.Patchecko.Static_stage.normalizer;
    Printf.printf "wrote %s (test accuracy %.4f, AUC %.4f)\n" output acc auc;
    0
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Train the similarity model and save it for later scans.")
    Term.(const run $ output $ fast)

(* --- scan ------------------------------------------------------------------ *)

let scan_cmd =
  let firmware =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FIRMWARE.sfw")
  in
  let cve =
    Arg.(value & opt (some string) None & info [ "cve" ] ~docv:"CVE-ID")
  in
  let fast = Arg.(value & flag & info [ "fast" ] ~doc:"Weaker but quicker model.") in
  let model_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Load a classifier saved by the train command instead of training.")
  in
  let max_distance =
    Arg.(
      value
      & opt float Patchecko.Scanner.prune_safe_distance
      & info [ "max-distance" ] ~docv:"D"
          ~doc:
            "Only report matches whose dynamic distance is below this; raise \
             it to see weak matches.  Raising it above the default \
             (production) threshold also auto-disables candidate pruning, \
             since the index is calibrated against that threshold.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON findings.") in
  let max_retries =
    Arg.(
      value
      & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Supervised retries per scan cell before it is recorded as \
             failed in the fault ledger.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a span trace of the scan as JSON lines (same format as \
             the PATCHECKO_TRACE environment variable; read it back with \
             the stats subcommand).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the pipeline metrics table to stderr after the scan.")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable the inverted-index candidate pruning stage and score \
             every (CVE, library) cell exhaustively.  The exhaustive scan is \
             the correctness oracle: its findings must be byte-identical to \
             the pruned scan's.")
  in
  let run firmware cve fast model_file max_distance json max_retries trace_file
      stats no_prune =
    (match trace_file with
    | Some path -> Obs.Trace.set_sink (Some (Obs.Trace.jsonl_sink path))
    | None -> ());
    Fun.protect ~finally:Obs.Trace.flush @@ fun () ->
    match Loader.Firmware.read_result firmware with
    | Error fault ->
      Printf.eprintf "error: cannot load %s: %s\n" firmware
        (Robust.Fault.to_string fault);
      3
    | Ok fw ->
    let fw = Loader.Firmware.strip fw in
    (* the classifier and the vulnerability database are trusted fixtures
       built from the repo's own corpus: chaos injection
       (PATCHECKO_FAULTS) targets the scan of the firmware under test,
       so it is suspended while they are constructed *)
    let classifier, db =
      Robust.Inject.suspend (fun () ->
          let classifier =
            match model_file with
            | Some path ->
              let model, normalizer = Nn.Serialize.read_classifier path in
              {
                Patchecko.Static_stage.model;
                normalizer;
                threshold = Patchecko.Static_stage.default_threshold;
              }
            | None ->
              let classifier, _, _ =
                Evaluation.Context.train_classifier ~fast
                  ~progress:prerr_endline ()
              in
              classifier
          in
          (classifier, Evaluation.Context.build_db ()))
    in
    let db =
      match cve with
      | None -> db
      | Some id -> (
        match Patchecko.Vulndb.find db id with
        | Some e -> Patchecko.Vulndb.create [ e ]
        | None ->
          Printf.eprintf "unknown CVE %s\n" id;
          exit 1)
    in
    let report =
      Patchecko.Scanner.scan_firmware ~max_distance ~max_retries ~classifier
        ~db ~prune:(not no_prune) fw
    in
    if json then print_string (Patchecko.Scanner.report_to_json report)
    else begin
      (match report.Patchecko.Scanner.findings with
      | [] -> print_endline "no findings"
      | findings ->
        List.iter
          (fun f -> print_endline (Patchecko.Scanner.finding_to_string f))
          findings);
      match report.Patchecko.Scanner.ledger with
      | [] -> ()
      | ledger ->
        Printf.eprintf "fault ledger (%d record%s, %d of %d cells failed):\n"
          (List.length ledger)
          (if List.length ledger = 1 then "" else "s")
          report.Patchecko.Scanner.failed_cells report.Patchecko.Scanner.cells;
        List.iter
          (fun r ->
            Printf.eprintf "  %s\n" (Patchecko.Scanner.fault_record_to_string r))
          ledger
    end;
    if stats then prerr_string (Obs.Metrics.render ());
    (* degraded results are still results: fail only when nothing scanned *)
    if
      report.Patchecko.Scanner.cells > 0
      && report.Patchecko.Scanner.failed_cells = report.Patchecko.Scanner.cells
    then 2
    else 0
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:"Hybrid vulnerability + patch-presence scan of a firmware file.")
    Term.(
      const run $ firmware $ cve $ fast $ model_file $ max_distance $ json
      $ max_retries $ trace_file $ stats $ no_prune)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let trace =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")
  in
  let run trace =
    match Obs.Trace.read_jsonl trace with
    | exception Obs.Trace.Parse_error msg ->
      (* empty, truncated and garbage trace files all land here with a
         message naming the file and offending line *)
      Printf.eprintf "stats: %s is not a readable trace: %s\n" trace msg;
      2
    | exception Sys_error msg ->
      Printf.eprintf "stats: %s\n" msg;
      2
    | events ->
      let violations = Obs.Trace.check events in
      List.iter
        (fun v ->
          Printf.eprintf "warning: %s\n" (Obs.Trace.violation_to_string v))
        violations;
      (* aggregate per span name: count, total and mean self time *)
      let tbl = Hashtbl.create 16 in
      let rec visit (s : Obs.Trace.span) =
        let count, total =
          match Hashtbl.find_opt tbl s.Obs.Trace.name with
          | Some (c, t) -> (c, t)
          | None -> (0, 0)
        in
        Hashtbl.replace tbl s.Obs.Trace.name
          (count + 1, total + s.Obs.Trace.dur_ns);
        List.iter visit s.Obs.Trace.children
      in
      List.iter visit (Obs.Trace.completed events);
      let rows =
        Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl []
        |> List.sort (fun (_, _, t1) (_, _, t2) -> compare t2 t1)
      in
      Printf.printf "%-24s %8s %12s %12s\n" "span" "count" "total ms"
        "mean ms";
      List.iter
        (fun (name, count, total) ->
          Printf.printf "%-24s %8d %12.3f %12.3f\n" name count
            (float_of_int total /. 1e6)
            (float_of_int total /. 1e6 /. float_of_int count))
        rows;
      Printf.printf "%d events, %d completed spans%s\n" (List.length events)
        (List.fold_left (fun acc (_, c, _) -> acc + c) 0 rows)
        (if violations = [] then ""
         else Printf.sprintf ", %d violations" (List.length violations));
      if violations = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarise a span trace written by scan --trace (or \
          PATCHECKO_TRACE) as a per-span timing table.")
    Term.(const run $ trace)

(* --- db --------------------------------------------------------------------- *)

let db_index_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report.") in
  let tokens =
    Arg.(
      value & flag
      & info [ "tokens" ]
          ~doc:"Also print each signature's token lists (text mode only).")
  in
  let synthetic =
    Arg.(
      value & opt int 0
      & info [ "synthetic" ] ~docv:"N"
          ~doc:
            "Enlarge the database with $(docv) generated CVE entries before \
             indexing (the scale configuration the prune bench measures).")
  in
  let run json tokens synthetic =
    match
      let cves =
        Corpus.Cves.all
        @ (if synthetic > 0 then Corpus.Cves.synthetic ~count:synthetic ()
           else [])
      in
      (* trusted fixture construction, as in scan: chaos injection off *)
      Robust.Inject.suspend (fun () -> Evaluation.Context.build_db ~cves ())
    with
    | exception Patchecko.Vulndb.Corrupt msg ->
      Printf.eprintf "db index: corrupt database: %s\n" msg;
      2
    | db ->
      let entries = Patchecko.Vulndb.entries db in
      let index = Patchecko.Vulndb.index db in
      if json then begin
        let b = Buffer.create 4096 in
        Buffer.add_string b "{\n  \"entries\": [";
        List.iteri
          (fun k (e : Patchecko.Vulndb.entry) ->
            if k > 0 then Buffer.add_string b ",";
            let s = e.Patchecko.Vulndb.signature in
            Buffer.add_string b
              (Printf.sprintf
                 "\n    {\"cve\": %S, \"anchor\": %d, \"vuln_anchor\": %d, \
                  \"patched_anchor\": %d, \"vuln_only\": %d, \
                  \"patched_only\": %d, \"configs\": %d, \"prunable\": %b}"
                 e.Patchecko.Vulndb.cve_id
                 (List.length s.Signature.Diffsig.anchor)
                 (List.length s.Signature.Diffsig.vuln_anchor)
                 (List.length s.Signature.Diffsig.patched_anchor)
                 (List.length s.Signature.Diffsig.vuln_only)
                 (List.length s.Signature.Diffsig.patched_only)
                 s.Signature.Diffsig.configs
                 (Signature.Diffsig.prunable s)))
          entries;
        Buffer.add_string b
          (Printf.sprintf
             "\n  ],\n  \"index\": {\"entries\": %d, \"prunable\": %d, \
              \"distinct_tokens\": %d, \"postings\": %d, \"mean_anchor\": \
              %.2f}\n}\n"
             (Signature.Index.entry_count index)
             (Signature.Index.prunable_count index)
             (Signature.Index.distinct_tokens index)
             (Signature.Index.postings index)
             (Signature.Index.mean_anchor index));
        print_string (Buffer.contents b)
      end
      else begin
        List.iter
          (fun (e : Patchecko.Vulndb.entry) ->
            Printf.printf "%-16s %s\n" e.Patchecko.Vulndb.cve_id
              (Signature.Diffsig.summary e.Patchecko.Vulndb.signature);
            if tokens then begin
              let s = e.Patchecko.Vulndb.signature in
              let dump label l =
                if l <> [] then
                  Printf.printf "    %-12s %s\n" label
                    (String.concat ", "
                       (List.map Signature.Token.to_string l))
              in
              dump "anchor" s.Signature.Diffsig.anchor;
              dump "vuln_anchor" s.Signature.Diffsig.vuln_anchor;
              dump "patched_anchor" s.Signature.Diffsig.patched_anchor;
              dump "vuln_only" s.Signature.Diffsig.vuln_only;
              dump "patched_only" s.Signature.Diffsig.patched_only
            end)
          entries;
        Printf.printf
          "index: %d entries (%d prunable), %d distinct anchor tokens, %d \
           postings, mean anchor %.2f\n"
          (Signature.Index.entry_count index)
          (Signature.Index.prunable_count index)
          (Signature.Index.distinct_tokens index)
          (Signature.Index.postings index)
          (Signature.Index.mean_anchor index)
      end;
      0
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:
         "Build the vulnerability database, print each CVE's diff-derived \
          signature summary and the inverted candidate index's statistics.")
    Term.(const run $ json $ tokens $ synthetic)

let db_cmd =
  Cmd.group
    (Cmd.info "db"
       ~doc:"Inspect the vulnerability database (Dataset II) and its index.")
    [ db_index_cmd ]

(* --- analyze ---------------------------------------------------------------- *)

let analyze_cmd =
  let image =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE.sff")
  in
  let fn =
    Arg.(
      value
      & opt (some int) None
      & info [ "fn" ] ~docv:"INDEX"
          ~doc:"Only analyze this function (default: all).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report.") in
  let structural =
    Arg.(
      value & flag
      & info [ "struct" ]
          ~doc:
            "Also report each function's structural fingerprint (canonical \
             shape tree, operator profile summary).")
  in
  let run image fn json structural =
    match
      match Loader.Sff.read_image image with
      | img -> Ok img
      | exception Loader.Sff.Corrupt msg ->
        Error
          (Printf.sprintf "analyze: %s is not a valid SFF image: %s" image msg)
      | exception Sys_error msg -> Error (Printf.sprintf "analyze: %s" msg)
    with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok img ->
    let count = Loader.Image.function_count img in
    match fn with
    | Some i when i < 0 || i >= count ->
      Printf.eprintf
        "analyze: --fn %d is out of range: %s has %d function%s (valid \
         indices 0..%d)\n"
        i image count
        (if count = 1 then "" else "s")
        (count - 1);
      2
    | _ ->
    let indices =
      match fn with
      | Some i -> [ i ]
      | None -> List.init count Fun.id
    in
    let reports =
      List.map (fun i -> (i, Analysis.Boundcheck.analyze img i)) indices
    in
    let fps =
      if structural then
        List.map (fun i -> (i, Analysis.Struct_enc.of_binary img i)) indices
      else []
    in
    let name i =
      match Loader.Image.function_name img i with
      | Some n -> n
      | None -> Printf.sprintf "fn%d" i
    in
    if json then begin
      let b = Buffer.create 1024 in
      Buffer.add_string b "[";
      List.iteri
        (fun k (i, (r : Analysis.Boundcheck.report)) ->
          if k > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf
               "\n  {\"function\": %d, \"name\": %S, \"signature\": [%s], \
                \"alarms\": [%s]%s}"
               i (name i)
               (String.concat ", "
                  (List.map string_of_int (Array.to_list r.counts)))
               (String.concat ", "
                  (List.map
                     (fun (a : Analysis.Boundcheck.alarm) ->
                       Printf.sprintf
                         "{\"class\": %S, \"block\": %d, \"index\": %d, \
                          \"detail\": %S}"
                         (Analysis.Boundcheck.class_name a.cls)
                         a.block a.index a.detail)
                     r.alarms))
               (match List.assoc_opt i fps with
               | None -> ""
               | Some fp ->
                 Printf.sprintf ", \"struct\": {\"summary\": %S, \"tree\": %S}"
                   (Similarity.Structfp.summary fp)
                   (Similarity.Structfp.tree_to_string
                      (Similarity.Structfp.tree fp)))))
        reports;
      Buffer.add_string b "\n]\n";
      print_string (Buffer.contents b)
    end
    else begin
      let flagged = ref 0 in
      List.iter
        (fun (i, (r : Analysis.Boundcheck.report)) ->
          if r.alarms <> [] then begin
            incr flagged;
            Printf.printf "%4d %-32s %d alarm%s\n" i (name i)
              (List.length r.alarms)
              (if List.length r.alarms = 1 then "" else "s");
            List.iter
              (fun (a : Analysis.Boundcheck.alarm) ->
                Printf.printf "       [%s] block %d, instr %d: %s\n"
                  (Analysis.Boundcheck.class_name a.cls)
                  a.block a.index a.detail)
              r.alarms
          end)
        reports;
      if structural then begin
        Printf.printf "structural fingerprints:\n";
        List.iter
          (fun (i, fp) ->
            Printf.printf "%4d %-32s %s\n" i (name i)
              (Similarity.Structfp.summary fp))
          fps
      end;
      Printf.printf "%d of %d function%s flagged\n" !flagged
        (List.length reports)
        (if List.length reports = 1 then "" else "s")
    end;
    0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static memory-safety checker (interval abstract \
          interpretation) over an image and report alarms; with \
          $(b,--struct), also the structural-fingerprint encoder.")
    Term.(const run $ image $ fn $ json $ structural)

(* --- evaluate --------------------------------------------------------------- *)

let evaluate_cmd =
  let fast = Arg.(value & flag & info [ "fast" ]) in
  let run fast =
    Printf.printf
      "use `dune exec bench/main.exe` (optionally PATCHECKO_FAST=1) to \
       reproduce the tables;\nthis subcommand prints the model quality \
       summary only.\n";
    let ctx = Evaluation.Context.build ~fast ~progress:prerr_endline () in
    Format.printf "%a" Evaluation.Render.fig8 ctx;
    0
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Train the model and print its quality summary.")
    Term.(const run $ fast)

let main =
  Cmd.group
    (Cmd.info "patchecko" ~version:"1.0.0"
       ~doc:
         "Hybrid firmware analysis for known mobile and IoT security \
          vulnerabilities (DSN 2020 reproduction).")
    [
      compile_cmd; inspect_cmd; verify_cmd; run_cmd; trace_cmd;
      gen_firmware_cmd; train_cmd; scan_cmd; stats_cmd; db_cmd; analyze_cmd;
      evaluate_cmd;
    ]

let () =
  Analysis.Sanitize.install ();
  exit (Cmd.eval' main)
