(* Firmware audit: the end-to-end PATCHECKO workflow on a whole device
   image — train the similarity model, build the vulnerability database,
   scan every library of the Android Things firmware for one CVE and
   report where it is and whether it is patched.

   Run with: dune exec examples/firmware_audit.exe  (about a minute; set
   PATCHECKO_FAST=1 for a quick pass with a weaker model) *)

let fast = Sys.getenv_opt "PATCHECKO_FAST" <> None

let () =
  let ctx = Evaluation.Context.build ~fast ~progress:prerr_endline () in
  let dev = List.hd ctx.Evaluation.Context.devices in
  let firmware = dev.Evaluation.Context.firmware in
  Printf.printf "auditing %s (%d libraries, %d functions)\n"
    firmware.Loader.Firmware.device
    (Array.length firmware.Loader.Firmware.images)
    (Loader.Firmware.total_functions firmware);

  let cve_id = "CVE-2018-9412" in
  let entry = Evaluation.Context.db_entry ctx cve_id in
  Printf.printf "searching for %s (%s)\n" cve_id
    entry.Patchecko.Vulndb.description;

  (* scan every library image of the firmware *)
  Array.iter
    (fun image ->
      let reference = entry.Patchecko.Vulndb.vuln_static in
      let static =
        Patchecko.Static_stage.scan ctx.Evaluation.Context.classifier
          ~reference image
      in
      match static.Patchecko.Static_stage.candidates with
      | [] ->
        Printf.printf "  %-8s clean (0 of %d functions flagged)\n"
          image.Loader.Image.name
          (Loader.Image.function_count image)
      | candidates ->
        Printf.printf "  %-8s %d candidate(s) of %d functions; running dynamic stage\n"
          image.Loader.Image.name (List.length candidates)
          (Loader.Image.function_count image);
        let dyn =
          Patchecko.Dynamic_stage.run ~config:ctx.Evaluation.Context.dyn_config
            ~reference:
              (entry.Patchecko.Vulndb.vuln_image, entry.Patchecko.Vulndb.vuln_findex)
            ~shape:entry.Patchecko.Vulndb.shape ~target:image ~candidates ()
        in
        (match dyn.Patchecko.Dynamic_stage.ranking with
        | [] -> Printf.printf "           all candidates pruned by execution validation\n"
        | best :: _ ->
          Printf.printf "           best match: function %d (distance %.1f)\n"
            best.Similarity.Rank.candidate best.Similarity.Rank.distance;
          let evidence =
            Patchecko.Differential.gather
              ~vuln:
                ( entry.Patchecko.Vulndb.vuln_image,
                  entry.Patchecko.Vulndb.vuln_findex )
              ~patched:
                ( entry.Patchecko.Vulndb.patched_image,
                  entry.Patchecko.Vulndb.patched_findex )
              ~target:(image, best.Similarity.Rank.candidate)
              ()
          in
          let verdict, confidence = Patchecko.Differential.decide evidence in
          Printf.printf "           differential verdict: %s (confidence %.2f)\n"
            (Patchecko.Differential.verdict_to_string verdict)
            confidence))
    firmware.Loader.Firmware.images;

  (* the same audit as one call: weak matches (large distance) filtered *)
  print_newline ();
  Printf.printf "one-call scanner with the default distance cutoff:\n";
  let db =
    match Patchecko.Vulndb.find ctx.Evaluation.Context.db cve_id with
    | Some e -> Patchecko.Vulndb.create [ e ]
    | None -> failwith "missing entry"
  in
  List.iter
    (fun f -> Printf.printf "  %s\n" (Patchecko.Scanner.finding_to_string f))
    (Patchecko.Scanner.scan_firmware ~classifier:ctx.Evaluation.Context.classifier
       ~db firmware)
      .Patchecko.Scanner.findings
