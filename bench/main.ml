(* Benchmark and reproduction harness.

   With no arguments (or "all"): rebuild every table and figure of the
   paper's evaluation section and then run the per-artifact Bechamel
   micro-benchmarks.  Individual artifacts: fig7 fig8 tab3 tab4 tab5 tab6
   tab7 tab8 speed scanpar prune analysis baseline ablate micro.

   PATCHECKO_FAST=1 shrinks the corpus and training so the whole run
   finishes in seconds (used by CI); the default configuration matches
   EXPERIMENTS.md.

   "chaos" measures the fault-injection robustness run (E14): supervision
   overhead with injection disarmed, then a 5%-everywhere armed scan whose
   (findings, ledger) must be identical at 1 and N domains.

   "obs" measures the observability overhead (E15): the same supervised
   scan with tracing disabled (the shipping configuration, budget < 2%
   over the pre-instrumentation chaos baseline), then with the ring and
   JSONL sinks armed.

   "prune" measures the inverted-index candidate pruning stage (E18):
   pruned-vs-exhaustive parity on the seeded corpus, Table VIII under
   pruning, and candidate-set reduction / end-to-end speedup on an
   enlarged generated database. *)

let fast =
  match Sys.getenv_opt "PATCHECKO_FAST" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let progress msg = Format.eprintf "[patchecko] %s@." msg

let ctx = lazy (Evaluation.Context.build ~fast ~progress ())

let runs =
  lazy
    (progress "running the evaluation grid (25 CVEs x 2 devices x 2 references)";
     Evaluation.Grid.run_all ~progress:(fun _ -> ()) (Lazy.force ctx))

let ppf = Format.std_formatter

let section name f =
  Format.fprintf ppf "==== %s ====@." name;
  f ();
  Format.pp_print_flush ppf ()

(* every scan-level bench (scanpar, chaos, obs, prune) consumes the same
   assets: the first device's stripped firmware plus the context's
   classifier, database and dynamic-stage configuration *)
let scan_assets bench =
  let ctx = Lazy.force ctx in
  let dev =
    match ctx.Evaluation.Context.devices with
    | d :: _ -> d
    | [] -> failwith (bench ^ ": no devices")
  in
  ( ctx,
    dev.Evaluation.Context.firmware,
    ctx.Evaluation.Context.classifier,
    ctx.Evaluation.Context.db,
    ctx.Evaluation.Context.dyn_config )

(* both builds of all 25 CVE pairs at the database configuration — the
   corpus the analysis and struct throughput benches sweep *)
let compiled_pairs () =
  List.map
    (fun cve ->
      ( Corpus.Dataset.compile_cve cve ~patched:false,
        Corpus.Dataset.compile_cve cve ~patched:true ))
    Corpus.Cves.all

(* --- report sections --------------------------------------------------- *)

let fig8 () = Evaluation.Render.fig8 ppf (Lazy.force ctx)
let fig7 () = Evaluation.Render.fig7 ppf (Lazy.force runs)
let tab3 () = Evaluation.Render.tab3 ppf (Lazy.force ctx) (Lazy.force runs)
let tab45 () = Evaluation.Render.tab45 ppf (Lazy.force ctx) (Lazy.force runs)
let tab6 () = Evaluation.Render.tab6 ppf (Lazy.force runs)
let tab7 () = Evaluation.Render.tab7 ppf (Lazy.force runs)
let tab8 () = Evaluation.Render.tab8 ppf (Lazy.force runs)
let speed () = Evaluation.Render.speed ppf (Lazy.force runs)
let simcheck () = Evaluation.Render.simcheck ppf (Lazy.force ctx)

let baselines () =
  Evaluation.Baselines.compare_detection ppf (Lazy.force ctx) (Lazy.force runs)

let ablate () =
  Evaluation.Ablation.minkowski_p ppf (Lazy.force runs);
  Evaluation.Ablation.static_vs_hybrid ppf (Lazy.force runs);
  Evaluation.Ablation.env_count ppf (Lazy.force ctx)
    ~ks:[ 2; 4; 8 ]
    ~cve_ids:[ "CVE-2018-9412"; "CVE-2018-9345"; "CVE-2018-9499" ];
  Evaluation.Ablation.db_build ppf (Lazy.force ctx)
    ~opts:Minic.Optlevel.[ O0; O1; O2; O3 ]
    ~cve_ids:
      [ "CVE-2018-9412"; "CVE-2018-9345"; "CVE-2018-9424"; "CVE-2018-9440" ];
  let dataset =
    if fast then Corpus.Dataset.small_config
    else { Corpus.Dataset.default_config with nlibs = 12 }
  in
  Evaluation.Ablation.feature_groups ppf ~dataset ~epochs:(if fast then 3 else 8) ()

(* --- scanpar: whole-firmware scan, before/after engines across domain
   counts + per-span attribution (E16) ----------------------------------- *)

(* crude float extractor for our own single-line bench artifacts *)
let json_field_float file field =
  try
    let ic = open_in file in
    let line = input_line ic in
    close_in ic;
    let pat = "\"" ^ field ^ "\": " in
    let plen = String.length pat and llen = String.length line in
    let rec find i =
      if i + plen > llen then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some j ->
      let k = ref j in
      while
        !k < llen
        && (match line.[!k] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
           | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub line j (!k - j))
  with _ -> None

let scanpar () =
  let _ctx, fw, classifier, db, dyn_config = scan_assets "scanpar" in
  let scan_new () =
    (Patchecko.Scanner.scan_firmware ~dyn_config ~classifier ~db fw)
      .Patchecko.Scanner.findings
  in
  let scan_legacy () =
    Patchecko.Scanner.scan_firmware_plain ~dyn_config ~classifier ~db fw
  in
  (* one warmup run (settles the domain pool and the per-domain VM /
     kernel scratch), then min-of-2 timed runs; every run starts from a
     cold feature cache because extraction is part of the scan *)
  let time_with domains f =
    Parallel.Pool.set_default_size domains;
    let run () =
      Staticfeat.Cache.clear ();
      let t0 = Util.Clock.now () in
      let r = f () in
      (Util.Clock.since t0, r)
    in
    ignore (run ());
    let t1, r = run () in
    let t2, _ = run () in
    (min t1 t2, r)
  in
  let saved = Parallel.Pool.domain_count () in
  let domain_counts = [ 1; 2; 4 ] in
  let curve f = List.map (fun d -> (d, time_with d f)) domain_counts in
  let new_curve = curve scan_new in
  let legacy_curve = curve scan_legacy in
  let seconds_of curve d = fst (List.assoc d curve) in
  let findings_of curve d = snd (List.assoc d curve) in
  let findings_1 = findings_of new_curve 1 in
  let json_1 = Patchecko.Scanner.findings_to_json findings_1 in
  let identical =
    List.for_all
      (fun d ->
        Patchecko.Scanner.findings_to_json (findings_of new_curve d) = json_1
        && Patchecko.Scanner.findings_to_json (findings_of legacy_curve d)
           = json_1)
      domain_counts
  in
  (* per-span attribution: one traced (untimed) run of the new engine at
     2 domains, inclusive nanoseconds aggregated per span name *)
  Parallel.Pool.set_default_size 2;
  Staticfeat.Cache.clear ();
  let _, events = Obs.Trace.with_ring (fun () -> scan_new ()) in
  Parallel.Pool.set_default_size saved;
  let spans = Hashtbl.create 16 in
  let rec visit (s : Obs.Trace.span) =
    let count, ns =
      match Hashtbl.find_opt spans s.Obs.Trace.name with
      | Some (c, n) -> (c, n)
      | None -> (0, 0)
    in
    Hashtbl.replace spans s.Obs.Trace.name (count + 1, ns + s.Obs.Trace.dur_ns);
    List.iter visit s.Obs.Trace.children
  in
  List.iter visit (Obs.Trace.completed events);
  let span_rows =
    List.sort
      (fun (_, (_, a)) (_, (_, b)) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans [])
  in
  let span_json =
    String.concat ", "
      (List.map
         (fun (name, (count, ns)) ->
           Printf.sprintf "\"%s\": {\"count\": %d, \"seconds\": %.4f}" name
             count
             (float_of_int ns /. 1e9))
         span_rows)
  in
  let curve_json curve =
    String.concat ", "
      (List.map
         (fun d -> Printf.sprintf "\"d%d\": %.4f" d (seconds_of curve d))
         domain_counts)
  in
  let speedup_same_build = seconds_of legacy_curve 2 /. seconds_of new_curve 2 in
  (* the headline before/after: the seed revision's engine, re-measured
     on this host and recorded in BENCH_scan_seed.json (regenerable from
     git history).  The in-binary legacy curve is a conservative floor —
     it silently shares this build's VM-scratch and flat-kernel wins. *)
  let speedup, speedup_definition =
    match json_field_float "BENCH_scan_seed.json" "seconds_n" with
    | Some seed_d2 ->
      ( seed_d2 /. seconds_of new_curve 2,
        "seed-engine wall clock at 2 domains (BENCH_scan_seed.json, \
         measured on this host from the seed revision) / rearchitected \
         engine at 2 domains" )
    | None ->
      ( speedup_same_build,
        "same-build legacy per-cell engine at 2 domains / rearchitected \
         engine at 2 domains (seed baseline file missing; conservative: \
         the legacy engine shares this build's VM and kernel \
         optimizations)" )
  in
  let summary =
    Printf.sprintf
      "{\"bench\": \"scanpar\", \"device\": \"%s\", \"images\": %d, \
       \"functions\": %d, \"cves\": %d, \"findings\": %d, \"engine_new\": \
       {%s}, \"engine_legacy\": {%s}, \"speedup\": %.3f, \
       \"speedup_definition\": \"%s\", \"speedup_same_build\": %.3f, \
       \"parallel_efficiency\": {\"d2\": %.3f, \"d4\": %.3f}, \
       \"identical\": %b, \"spans_2dom\": {%s}}"
      fw.Loader.Firmware.device
      (Array.length fw.Loader.Firmware.images)
      (Loader.Firmware.total_functions fw)
      (Patchecko.Vulndb.size db)
      (List.length findings_1) (curve_json new_curve)
      (curve_json legacy_curve) speedup speedup_definition speedup_same_build
      (seconds_of new_curve 1 /. seconds_of new_curve 2)
      (seconds_of new_curve 1 /. seconds_of new_curve 4)
      identical span_json
  in
  Format.fprintf ppf "%s@." summary;
  let oc = open_out "BENCH_scan.json" in
  output_string oc (summary ^ "\n");
  close_out oc;
  if not identical then
    Format.eprintf
      "[patchecko] WARNING: findings differ across engines or domain counts@."

(* --- chaos: fault-injection robustness + supervision overhead ---------- *)

let chaos () =
  let _ctx, fw, classifier, db, dyn_config = scan_assets "chaos" in
  let scan () =
    Staticfeat.Cache.clear ();
    Patchecko.Scanner.scan_firmware ~dyn_config ~classifier ~db fw
  in
  (* 1. supervision overhead, injection disarmed: the supervised grid vs
     the plain PR-1 grid.  The two are interleaved and each timed as the
     min of 3 runs (cold cache every run) so thermal/GC drift between
     the measurement blocks cancels instead of biasing the ratio *)
  Robust.Inject.disarm ();
  let once f =
    let t0 = Util.Clock.now () in
    let r = f () in
    (Util.Clock.since t0, r)
  in
  let plain () =
    Staticfeat.Cache.clear ();
    Patchecko.Scanner.scan_firmware_plain ~dyn_config ~classifier ~db fw
  in
  let seconds_plain = ref infinity
  and seconds_sup = ref infinity
  and plain_findings = ref []
  and baseline = ref None in
  for _ = 1 to 3 do
    let sp, fp = once plain in
    let ss, b = once scan in
    if sp < !seconds_plain then seconds_plain := sp;
    if ss < !seconds_sup then seconds_sup := ss;
    plain_findings := fp;
    baseline := Some b
  done;
  let seconds_plain = !seconds_plain
  and seconds_sup = !seconds_sup
  and plain_findings = !plain_findings
  and baseline = Option.get !baseline in
  let overhead =
    if seconds_plain > 0.0 then (seconds_sup -. seconds_plain) /. seconds_plain
    else 0.0
  in
  (* 2. armed at 5% on every site: the scan must complete, degrade
     bounded, and be byte-identical across domain counts *)
  let saved = Parallel.Pool.domain_count () in
  let ndomains = max 2 (Domain.recommended_domain_count ()) in
  Robust.Inject.arm "all:0.05:42";
  Parallel.Pool.set_default_size 1;
  let r1 = scan () in
  Parallel.Pool.set_default_size ndomains;
  let rn = scan () in
  Parallel.Pool.set_default_size saved;
  Robust.Inject.disarm ();
  Staticfeat.Cache.clear ();
  let identical =
    Patchecko.Scanner.report_to_json r1 = Patchecko.Scanner.report_to_json rn
  in
  let retained =
    let base = List.length baseline.Patchecko.Scanner.findings in
    if base = 0 then 1.0
    else
      float_of_int (List.length r1.Patchecko.Scanner.findings)
      /. float_of_int base
  in
  let count o =
    List.length
      (List.filter
         (fun (r : Patchecko.Scanner.fault_record) -> r.outcome = o)
         r1.Patchecko.Scanner.ledger)
  in
  let summary =
    Printf.sprintf
      "{\"bench\": \"chaos\", \"device\": \"%s\", \"cells\": %d, \
       \"seconds_plain\": %.4f, \"seconds_supervised\": %.4f, \
       \"overhead\": %.4f, \"plain_findings\": %d, \"findings_clean\": %d, \
       \"findings_armed\": %d, \"retained\": %.3f, \"ledger\": %d, \
       \"recovered\": %d, \"degraded\": %d, \"failed\": %d, \
       \"failed_cells\": %d, \"domains\": %d, \"identical\": %b}"
      fw.Loader.Firmware.device r1.Patchecko.Scanner.cells seconds_plain
      seconds_sup overhead
      (List.length plain_findings)
      (List.length baseline.Patchecko.Scanner.findings)
      (List.length r1.Patchecko.Scanner.findings)
      retained
      (List.length r1.Patchecko.Scanner.ledger)
      (count Patchecko.Scanner.Recovered)
      (count Patchecko.Scanner.Degraded)
      (count Patchecko.Scanner.Failed)
      r1.Patchecko.Scanner.failed_cells ndomains identical
  in
  Format.fprintf ppf "%s@." summary;
  let oc = open_out "BENCH_chaos.json" in
  output_string oc (summary ^ "\n");
  close_out oc;
  if not identical then
    Format.eprintf
      "[patchecko] WARNING: chaos reports differ between 1 and %d domains@."
      ndomains

(* --- obs: tracing/metrics overhead (E15) -------------------------------- *)

let obs () =
  let _ctx, fw, classifier, db, dyn_config = scan_assets "obs" in
  Robust.Inject.disarm ();
  let scan () =
    Staticfeat.Cache.clear ();
    Patchecko.Scanner.scan_firmware ~dyn_config ~classifier ~db fw
  in
  let plain () =
    Staticfeat.Cache.clear ();
    Patchecko.Scanner.scan_firmware_plain ~dyn_config ~classifier ~db fw
  in
  let once f =
    let t0 = Util.Clock.now () in
    let r = f () in
    (Util.Clock.since t0, r)
  in
  (* four variants of the same scan, interleaved and each taken as the
     min of 5 so drift between measurement blocks cancels: the
     unsupervised grid, the supervised scan with tracing disabled (the
     shipping configuration), with the in-memory ring sink, and with
     the JSONL file sink *)
  let jsonl_path = Filename.temp_file "patchecko_bench" ".jsonl" in
  let s_plain = ref infinity
  and s_disabled = ref infinity
  and s_ring = ref infinity
  and s_jsonl = ref infinity
  and ring_events = ref 0 in
  for _ = 1 to 5 do
    let tp, _ = once plain in
    Obs.Trace.set_sink None;
    let td, _ = once scan in
    let (tr, _), events = Obs.Trace.with_ring (fun () -> once scan) in
    Obs.Trace.set_sink (Some (Obs.Trace.jsonl_sink jsonl_path));
    let tj, _ = once scan in
    Obs.Trace.set_sink None;
    if tp < !s_plain then s_plain := tp;
    if td < !s_disabled then s_disabled := td;
    if tr < !s_ring then s_ring := tr;
    if tj < !s_jsonl then s_jsonl := tj;
    ring_events := List.length events
  done;
  let jsonl_events = List.length (Obs.Trace.read_jsonl jsonl_path) in
  Sys.remove jsonl_path;
  let over base v = if base > 0.0 then (v -. base) /. base else 0.0 in
  (* the PR-3 chaos bench timed the identical supervised scan before any
     instrumentation existed; its committed number is the cross-PR
     baseline for the disabled-tracing budget *)
  let chaos_supervised =
    match open_in "BENCH_chaos.json" with
    | exception Sys_error _ -> None
    | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      let tag = "\"seconds_supervised\": " in
      let rec find i =
        if i + String.length tag > String.length line then None
        else if String.sub line i (String.length tag) = tag then
          Some (Scanf.sscanf (String.sub line (i + String.length tag)
                                (String.length line - i - String.length tag))
                  "%f" Fun.id)
        else find (i + 1)
      in
      (try find 0 with Scanf.Scan_failure _ | Failure _ -> None)
  in
  let summary =
    Printf.sprintf
      "{\"bench\": \"obs\", \"device\": \"%s\", \"seconds_plain\": %.4f, \
       \"seconds_disabled\": %.4f, \"seconds_ring\": %.4f, \
       \"seconds_jsonl\": %.4f, \"overhead_disabled\": %.4f, \
       \"overhead_ring\": %.4f, \"overhead_jsonl\": %.4f%s, \
       \"events_per_scan\": %d, \"jsonl_events\": %d}"
      fw.Loader.Firmware.device !s_plain !s_disabled !s_ring !s_jsonl
      (over !s_plain !s_disabled)
      (over !s_disabled !s_ring)
      (over !s_disabled !s_jsonl)
      (match chaos_supervised with
      | Some base ->
        Printf.sprintf ", \"chaos_supervised\": %.4f, \"overhead_vs_chaos\": %.4f"
          base (over base !s_disabled)
      | None -> "")
      !ring_events jsonl_events
  in
  Format.fprintf ppf "%s@." summary;
  let oc = open_out "BENCH_obs.json" in
  output_string oc (summary ^ "\n");
  close_out oc;
  let budget =
    match chaos_supervised with
    | Some base -> over base !s_disabled
    | None -> over !s_plain !s_disabled
  in
  if budget > 0.02 then
    Format.eprintf
      "[patchecko] WARNING: disabled-tracing overhead %.1f%% exceeds the 2%% \
       budget@."
      (100.0 *. budget)

(* --- prune: inverted-index candidate pruning (E18) ---------------------- *)

let prune_bench () =
  let ctx, fw, classifier, db, dyn_config = scan_assets "prune" in
  Robust.Inject.disarm ();
  (* 1. parity on the seeded corpus: the pruned scan must serialize to
     exactly the exhaustive scan's bytes, on every device *)
  let rows = Evaluation.Parity.run ~progress ctx in
  Evaluation.Parity.render ppf rows;
  let parity_identical = Evaluation.Parity.all_identical rows in
  let seed_reduction =
    match rows with
    | [] -> 1.0
    | _ ->
      List.fold_left (fun a (r : Evaluation.Parity.row) -> a +. r.reduction)
        0.0 rows
      /. float_of_int (List.length rows)
  in
  (* 2. Table VIII under pruning: would the index have kept every
     ground-truth cell the differential engine scores?  A pruned-away
     truth cell counts as a miss whatever the verdict would have been. *)
  let grid = Lazy.force runs in
  let index = Patchecko.Vulndb.index db in
  let entry_pos =
    List.mapi
      (fun i (e : Patchecko.Vulndb.entry) -> (e.Patchecko.Vulndb.cve_id, i))
      (Patchecko.Vulndb.entries db)
  in
  let things = Corpus.Devices.android_things.Corpus.Devices.device_name in
  let things_dev =
    match Evaluation.Context.device_by_name ctx things with
    | Some d -> d
    | None -> failwith "prune: missing device"
  in
  let masks = Hashtbl.create 8 in
  let mask_for image_name =
    match Hashtbl.find_opt masks image_name with
    | Some m -> m
    | None ->
      let img =
        match
          Loader.Firmware.find_image things_dev.Evaluation.Context.firmware
            image_name
        with
        | Some img -> img
        | None -> failwith ("prune: missing image " ^ image_name)
      in
      let m =
        Signature.Index.candidate_mask index (Staticfeat.Cache.token_sets img)
      in
      Hashtbl.add masks image_name m;
      m
  in
  let tab8_total = ref 0 and tab8_correct = ref 0 and kept_truth = ref 0 in
  List.iter
    (fun (r : Evaluation.Grid.run) ->
      if r.Evaluation.Grid.device_name = things then begin
        incr tab8_total;
        let truth = r.Evaluation.Grid.truth in
        let kept =
          match
            List.assoc_opt truth.Corpus.Devices.cve.Corpus.Cves.id entry_pos
          with
          | None -> true
          | Some e -> (mask_for truth.Corpus.Devices.image_name).(e)
        in
        if kept then incr kept_truth;
        let predicted =
          if not kept then None
          else
            match Evaluation.Grid.final_verdict r with
            | Some Patchecko.Differential.Patched -> Some true
            | Some Patchecko.Differential.Vulnerable -> Some false
            | None -> None
        in
        match predicted with
        | Some p when p = truth.Corpus.Devices.patched -> incr tab8_correct
        | Some _ | None -> ()
      end)
    grid;
  (* 3. scale: an enlarged generated database — candidate-set reduction
     of the index alone, then the end-to-end speedup of the pruned scan
     (min of 2 cold-cache runs per mode, interleaving-free because each
     mode re-extracts its own features) *)
  progress "building enlarged database (25 seeded + 100 generated entries)";
  let big_db =
    Robust.Inject.suspend (fun () ->
        Evaluation.Context.build_db
          ~cves:
            (Corpus.Cves.all
            @ Corpus.Cves.synthetic ~structural:true ~count:100 ())
          ())
  in
  let bindex = Patchecko.Vulndb.index big_db in
  let nentries = Patchecko.Vulndb.size big_db in
  let nimages = Array.length fw.Loader.Firmware.images in
  Staticfeat.Cache.clear ();
  let kept_cells =
    Array.fold_left
      (fun acc img ->
        let mask =
          Signature.Index.candidate_mask bindex
            (Staticfeat.Cache.token_sets img)
        in
        Array.fold_left (fun a b -> if b then a + 1 else a) acc mask)
      0 fw.Loader.Firmware.images
  in
  let cells = nentries * nimages in
  let reduction =
    if kept_cells = 0 then float_of_int cells
    else float_of_int cells /. float_of_int kept_cells
  in
  let time ~prune =
    let once () =
      Staticfeat.Cache.clear ();
      let t0 = Util.Clock.now () in
      let r =
        Patchecko.Scanner.scan_firmware ~dyn_config
          ~max_distance:Patchecko.Scanner.prune_safe_distance ~classifier
          ~db:big_db ~prune fw
      in
      (Util.Clock.since t0, r)
    in
    let t1, r1 = once () in
    let t2, _ = once () in
    (min t1 t2, r1)
  in
  let seconds_exhaustive, r_exhaustive = time ~prune:false in
  let seconds_pruned, r_pruned = time ~prune:true in
  Staticfeat.Cache.clear ();
  let big_identical =
    String.equal
      (Patchecko.Scanner.report_to_json r_exhaustive)
      (Patchecko.Scanner.report_to_json r_pruned)
  in
  let speedup =
    if seconds_pruned > 0.0 then seconds_exhaustive /. seconds_pruned else 1.0
  in
  let row_json =
    String.concat ", "
      (List.map
         (fun (r : Evaluation.Parity.row) ->
           Printf.sprintf
             "{\"device\": %S, \"cells\": %d, \"pruned\": %d, \"findings\": \
              %d, \"reduction\": %.2f, \"identical\": %b}"
             r.device r.cells r.pruned_cells r.findings r.reduction
             r.identical)
         rows)
  in
  let summary =
    Printf.sprintf
      "{\"bench\": \"prune\", \"parity\": [%s], \"parity_identical\": %b, \
       \"seed_reduction\": %.2f, \"tab8_correct_pruned\": %d, \
       \"tab8_total\": %d, \"truth_cells_kept\": %d, \"enlarged\": \
       {\"entries\": %d, \"prunable\": %d, \"images\": %d, \"cells\": %d, \
       \"kept\": %d, \"reduction\": %.2f, \"seconds_exhaustive\": %.4f, \
       \"seconds_pruned\": %.4f, \"speedup\": %.3f, \"identical\": %b}}"
      row_json parity_identical seed_reduction !tab8_correct !tab8_total
      !kept_truth nentries
      (Signature.Index.prunable_count bindex)
      nimages cells kept_cells reduction seconds_exhaustive seconds_pruned
      speedup big_identical
  in
  Format.fprintf ppf "%s@." summary;
  let oc = open_out "BENCH_prune.json" in
  output_string oc (summary ^ "\n");
  close_out oc;
  if not (parity_identical && big_identical) then
    Format.eprintf
      "[patchecko] WARNING: pruned scan diverges from the exhaustive oracle@.";
  if reduction < 5.0 then
    Format.eprintf
      "[patchecko] WARNING: candidate-set reduction %.1fx below the 5x \
       target@."
      reduction

(* --- analysis: dataflow solver throughput + alarm discrimination ------- *)

let analysis () =
  (* solver throughput: the Boundcheck abstract interpreter (interval
     lattice over the recovered CFG) on every function of both builds of
     all 25 CVE pairs, compiled at the database configuration *)
  let pairs = compiled_pairs () in
  let functions = ref 0 in
  let t0 = Util.Clock.now () in
  List.iter
    (fun (v, p) ->
      List.iter
        (fun img ->
          for i = 0 to Loader.Image.function_count img - 1 do
            incr functions;
            ignore (Analysis.Boundcheck.analyze img i)
          done)
        [ v; p ])
    pairs;
  let seconds = Util.Clock.since t0 in
  let funcs_per_sec =
    if seconds > 0.0 then float_of_int !functions /. seconds else 0.0
  in
  (* discrimination: does the CVE function's alarm signature separate the
     vulnerable build from the patched one? *)
  let discriminated = ref 0 and tied = ref 0 and inverted = ref 0 in
  Format.fprintf ppf "%-16s %-18s %6s %7s@." "CVE" "family" "vuln" "patched";
  List.iter2
    (fun (cve : Corpus.Cves.t) (v, p) ->
      let tv = Analysis.Boundcheck.total (Analysis.Boundcheck.signature v 0) in
      let tp = Analysis.Boundcheck.total (Analysis.Boundcheck.signature p 0) in
      let verdict =
        if tv > tp then begin incr discriminated; "discriminated" end
        else if tv < tp then begin incr inverted; "INVERTED" end
        else begin incr tied; "tied" end
      in
      Format.fprintf ppf "%-16s %-18s %6d %7d  %s@." cve.Corpus.Cves.id
        cve.Corpus.Cves.family tv tp verdict)
    Corpus.Cves.all pairs;
  let npairs = List.length pairs in
  let precision =
    (* of the pairs where the signal fires at all, how often does it point
       the right way? *)
    if !discriminated + !inverted = 0 then 1.0
    else float_of_int !discriminated /. float_of_int (!discriminated + !inverted)
  in
  let recall = float_of_int !discriminated /. float_of_int npairs in
  let summary =
    Printf.sprintf
      "{\"bench\": \"analysis\", \"functions\": %d, \"seconds\": %.4f, \
       \"funcs_per_sec\": %.1f, \"pairs\": %d, \"discriminated\": %d, \
       \"tied\": %d, \"inverted\": %d, \"precision\": %.3f, \"recall\": \
       %.3f}"
      !functions seconds funcs_per_sec npairs !discriminated !tied !inverted
      precision recall
  in
  Format.fprintf ppf "%s@." summary;
  let oc = open_out "BENCH_analysis.json" in
  output_string oc (summary ^ "\n");
  close_out oc

(* --- struct: fingerprint encoder throughput + cross-arch rank quality -- *)

let struct_bench () =
  (* encoder throughput: the CFG-side structural encoder (dominator-tree
     pruning + loop forest + interval reduction + Zhang-Shasha-ready
     canonical tree) on every function of both builds of all 25 CVE
     pairs at the database configuration *)
  let pairs = compiled_pairs () in
  let functions = ref 0 in
  let t0 = Util.Clock.now () in
  List.iter
    (fun (v, p) ->
      List.iter
        (fun img ->
          for i = 0 to Loader.Image.function_count img - 1 do
            incr functions;
            ignore (Analysis.Struct_enc.of_binary img i)
          done)
        [ v; p ])
    pairs;
  let seconds = Util.Clock.since t0 in
  let funcs_per_sec =
    if seconds > 0.0 then float_of_int !functions /. seconds else 0.0
  in
  (* rank quality: is the AST-side fingerprint of the vulnerable source
     closer to the vulnerable build than to the patched one, for every
     architecture at every optimisation level?  This is the channel's
     cross-representation matching power, the property the struct
     baseline column depends on. *)
  let npairs = List.length Corpus.Cves.all in
  Format.fprintf ppf "%-8s %8s %6s %9s  (%d CVEs x %d arches)@." "opt"
    "discrim" "tied" "inverted" npairs (List.length Isa.Arch.all);
  let per_opt =
    List.map
      (fun opt ->
        let discriminated = ref 0 and tied = ref 0 and inverted = ref 0 in
        List.iter
          (fun arch ->
            List.iter
              (fun (cve : Corpus.Cves.t) ->
                let ast =
                  Analysis.Struct_enc.of_func (Corpus.Cves.vulnerable_func cve)
                in
                let bv =
                  Analysis.Struct_enc.of_binary
                    (Corpus.Dataset.compile_cve ~arch ~opt cve ~patched:false)
                    0
                and bp =
                  Analysis.Struct_enc.of_binary
                    (Corpus.Dataset.compile_cve ~arch ~opt cve ~patched:true)
                    0
                in
                let dv = Similarity.Structfp.distance ast bv
                and dp = Similarity.Structfp.distance ast bp in
                if dv < dp then incr discriminated
                else if dv > dp then incr inverted
                else incr tied)
              Corpus.Cves.all)
          Isa.Arch.all;
        Format.fprintf ppf "%-8s %8d %6d %9d@."
          (Minic.Optlevel.to_string opt)
          !discriminated !tied !inverted;
        (opt, !discriminated, !tied, !inverted))
      Minic.Optlevel.all
  in
  let summary =
    Printf.sprintf
      "{\"bench\": \"struct\", \"functions\": %d, \"seconds\": %.4f, \
       \"funcs_per_sec\": %.1f, \"per_opt\": [%s]}"
      !functions seconds funcs_per_sec
      (String.concat ", "
         (List.map
            (fun (opt, d, t, i) ->
              Printf.sprintf
                "{\"opt\": %S, \"discriminated\": %d, \"tied\": %d, \
                 \"inverted\": %d}"
                (Minic.Optlevel.to_string opt)
                d t i)
            per_opt))
  in
  Format.fprintf ppf "%s@." summary;
  let oc = open_out "BENCH_struct.json" in
  output_string oc (summary ^ "\n");
  close_out oc

(* --- bechamel micro-benchmarks: one Test.make per table/figure --------- *)

let case_study_assets () =
  let ctx = Lazy.force ctx in
  let dev =
    match
      Evaluation.Context.device_by_name ctx
        Corpus.Devices.android_things.Corpus.Devices.device_name
    with
    | Some d -> d
    | None -> failwith "missing device"
  in
  let truth =
    match
      List.find_opt
        (fun (t : Corpus.Devices.truth) -> t.cve.Corpus.Cves.id = "CVE-2018-9412")
        dev.Evaluation.Context.truths
    with
    | Some t -> t
    | None -> failwith "missing case-study CVE"
  in
  let target =
    match
      Loader.Firmware.find_image dev.Evaluation.Context.firmware
        truth.Corpus.Devices.image_name
    with
    | Some img -> img
    | None -> failwith "missing case-study image"
  in
  (ctx, dev, truth, target)

let micro_tests () =
  let ctx, _dev, truth, target = case_study_assets () in
  let entry = Evaluation.Context.db_entry ctx "CVE-2018-9412" in
  let classifier = ctx.Evaluation.Context.classifier in
  let dyn_config =
    { ctx.Evaluation.Context.dyn_config with Patchecko.Dynamic_stage.k_envs = 2 }
  in
  (* shared precomputed inputs *)
  let reference = entry.Patchecko.Vulndb.vuln_static in
  let static_result = Patchecko.Static_stage.scan classifier ~reference target in
  let dyn =
    Patchecko.Dynamic_stage.run ~config:dyn_config
      ~reference:(entry.Patchecko.Vulndb.vuln_image, entry.Patchecko.Vulndb.vuln_findex)
      ~shape:entry.Patchecko.Vulndb.shape ~target
      ~candidates:static_result.Patchecko.Static_stage.candidates ()
  in
  let train_pairs = Corpus.Dataset.build_pairs Corpus.Dataset.small_config in
  let normalizer = Nn.Data.fit_normalizer train_pairs in
  let train_n = Nn.Data.normalize normalizer train_pairs in
  let env =
    match dyn.Patchecko.Dynamic_stage.envs with
    | e :: _ -> e
    | [] -> Vm.Env.make [ Vm.Env.Vint 1L ]
  in
  let open Bechamel in
  [
    (* Figure 8: the training loop — one epoch over a small Dataset I *)
    Test.make ~name:"fig8/train-epoch"
      (Staged.stage (fun () ->
           let rng = Util.Prng.create 3L in
           let model =
             Nn.Model.create rng ~input:(2 * Staticfeat.Names.count)
               ~layers:
                 (Nn.Model.paper_architecture
                    ~input:(2 * Staticfeat.Names.count))
           in
           let config = { Nn.Train.default_config with epochs = 1 } in
           ignore (Nn.Train.fit ~config model ~train:train_n ~validation:train_n)));
    (* Figure 7 / detection accuracy: one whole-image static scan *)
    Test.make ~name:"fig7/static-scan"
      (Staged.stage (fun () ->
           ignore (Patchecko.Static_stage.scan classifier ~reference target)));
    (* Table III: one instrumented execution producing dynamic features *)
    Test.make ~name:"tab3/dynamic-profile"
      (Staged.stage (fun () ->
           ignore
             (Vm.Exec.run entry.Patchecko.Vulndb.vuln_image
                entry.Patchecko.Vulndb.vuln_findex env)));
    (* Table IV: vulnerable-based similarity ranking *)
    Test.make ~name:"tab4/rank-vulnerable"
      (Staged.stage (fun () ->
           ignore
             (Similarity.Rank.by_distance ~p:3.0
                ~reference:dyn.Patchecko.Dynamic_stage.reference_profile
                dyn.Patchecko.Dynamic_stage.profiles)));
    (* Table V: ranking at a different exponent exercises the same path *)
    Test.make ~name:"tab5/rank-patched"
      (Staged.stage (fun () ->
           ignore
             (Similarity.Rank.by_distance ~p:2.0
                ~reference:dyn.Patchecko.Dynamic_stage.reference_profile
                dyn.Patchecko.Dynamic_stage.profiles)));
    (* Table VI: the full vulnerable-reference pipeline for one CVE *)
    Test.make ~name:"tab6/pipeline-vulnerable"
      (Staged.stage (fun () ->
           ignore
             (Patchecko.Pipeline.analyze ~dyn_config
                ~ground_truth:truth.Corpus.Devices.findex ~classifier
                ~db_entry:entry ~reference_patched:false ~target ())));
    (* Table VII: the patched-reference pipeline *)
    Test.make ~name:"tab7/pipeline-patched"
      (Staged.stage (fun () ->
           ignore
             (Patchecko.Pipeline.analyze ~dyn_config
                ~ground_truth:truth.Corpus.Devices.findex ~classifier
                ~db_entry:entry ~reference_patched:true ~target ())));
    (* Table VIII: the differential engine decision *)
    Test.make ~name:"tab8/differential"
      (Staged.stage (fun () ->
           let evidence =
             Patchecko.Differential.gather
               ~vuln:
                 ( entry.Patchecko.Vulndb.vuln_image,
                   entry.Patchecko.Vulndb.vuln_findex )
               ~patched:
                 ( entry.Patchecko.Vulndb.patched_image,
                   entry.Patchecko.Vulndb.patched_findex )
               ~target:(target, truth.Corpus.Devices.findex)
               ()
           in
           ignore (Patchecko.Differential.decide evidence)));
  ]

let micro () =
  let open Bechamel in
  let tests = micro_tests () in
  let cfg =
    Benchmark.cfg ~limit:100
      ~quota:(Time.second (if fast then 0.1 else 0.4))
      ~kde:None ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  Format.fprintf ppf "Micro-benchmarks (one per table/figure; ns per run)@.";
  Format.fprintf ppf "%-26s %16s %10s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Format.fprintf ppf "%-26s %16.1f %10s@." name estimate r2)
        analyzed)
    tests;
  Format.fprintf ppf "@."

let all () =
  section "Figure 8" fig8;
  section "Vulnerable-vs-patched similarity" simcheck;
  section "Tables VI" tab6;
  section "Table VII" tab7;
  section "Figure 7" fig7;
  section "Table III" tab3;
  section "Tables IV and V" tab45;
  section "Table VIII" tab8;
  section "Processing time" speed;
  section "Baseline comparison" baselines;
  section "Parallel scan" scanpar;
  section "Chaos scan" chaos;
  section "Observability overhead" obs;
  section "Index pruning" prune_bench;
  section "Static memory-safety analysis" analysis;
  section "Structural fingerprints" struct_bench;
  section "Ablations" ablate;
  section "Micro-benchmarks" micro

let () =
  Analysis.Sanitize.install ();
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ :: [] | [] -> [ "all" ]
  in
  List.iter
    (fun t ->
      match t with
      | "all" -> all ()
      | "fig8" -> section "Figure 8" fig8
      | "fig7" -> section "Figure 7" fig7
      | "tab3" -> section "Table III" tab3
      | "tab4" | "tab5" | "tab45" -> section "Tables IV and V" tab45
      | "tab6" -> section "Table VI" tab6
      | "tab7" -> section "Table VII" tab7
      | "tab8" -> section "Table VIII" tab8
      | "speed" -> section "Processing time" speed
      | "scanpar" -> section "Parallel scan" scanpar
      | "chaos" -> section "Chaos scan" chaos
      | "obs" -> section "Observability overhead" obs
      | "prune" -> section "Index pruning" prune_bench
      | "analysis" -> section "Static memory-safety analysis" analysis
      | "struct" -> section "Structural fingerprints" struct_bench
      | "baseline" -> section "Baseline comparison" baselines
      | "simcheck" -> section "Vulnerable-vs-patched similarity" simcheck
      | "ablate" -> section "Ablations" ablate
      | "micro" -> section "Micro-benchmarks" micro
      | other ->
        Format.eprintf
          "unknown target %S (use fig7 fig8 tab3 tab4 tab5 tab6 tab7 tab8 \
           simcheck speed scanpar chaos obs prune analysis struct baseline \
           ablate micro all)@."
          other;
        exit 2)
    targets
