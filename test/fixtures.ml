(* Shared seeded fixtures for the integration suites.

   The "planted CVE" scanner fixture (one clean generated library, one
   carrying CVE-2018-9412, a permissive classifier so every function
   passes the static stage) was duplicated across test_parallel,
   test_chaos and test_patchecko; the parallel/chaos/obs suites all
   build on it, so it lives here once.  Everything is seeded — two calls
   build byte-identical inputs. *)

let with_domains n f =
  let saved = Parallel.Pool.domain_count () in
  Parallel.Pool.set_default_size n;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_default_size saved) f

let case_cve () =
  match Corpus.Cves.find "CVE-2018-9412" with
  | Some c -> c
  | None -> Alcotest.fail "case-study CVE missing"

let db_entry () =
  let c = case_cve () in
  Patchecko.Vulndb.make_entry
    ~source:(Corpus.Cves.vulnerable_func c, Corpus.Cves.patched_func c)
    ~cve_id:c.id ~description:c.description ~shape:c.shape
    ~vuln:(Corpus.Dataset.compile_cve c ~patched:false, 0)
    ~patched:(Corpus.Dataset.compile_cve c ~patched:true, 0)
    ()

(* a permissive classifier: every function is a candidate; the dynamic
   stage and the distance cutoff must isolate the real site *)
let permissive_classifier ?(seed = 2L) () =
  let rng = Util.Prng.create seed in
  let model =
    Nn.Model.create rng ~input:(2 * Staticfeat.Names.count)
      ~layers:(Nn.Model.paper_architecture ~input:(2 * Staticfeat.Names.count))
  in
  let dummy =
    Nn.Data.make [ (Array.make (2 * Staticfeat.Names.count) 1.0, 1.0) ]
  in
  {
    Patchecko.Static_stage.model;
    normalizer = Nn.Data.fit_normalizer dummy;
    threshold = 0.0;
  }

let compile_stripped prog =
  Loader.Image.strip
    (Minic.Compiler.compile ~arch:Isa.Arch.Arm32 ~opt:Minic.Optlevel.O2 prog)

(* firmware with two libraries: one clean, one carrying the CVE *)
let scanner_firmware c =
  let clean = Corpus.Genlib.generate ~seed:5L ~index:1 ~nfuncs:10 in
  let dirty =
    Corpus.Genlib.with_cves
      (Corpus.Genlib.generate ~seed:6L ~index:2 ~nfuncs:10)
      [ (c, false) ]
  in
  {
    Loader.Firmware.device = "testdev";
    os_version = "1";
    security_patch = "none";
    images = [| compile_stripped clean; compile_stripped dirty |];
  }

let scanner_fixture () =
  let c = case_cve () in
  let entry = db_entry () in
  let db = Patchecko.Vulndb.create [ entry ] in
  let fw = scanner_firmware c in
  (entry, db, fw, permissive_classifier ())

let dyn_config =
  { Patchecko.Dynamic_stage.default_config with k_envs = 4; fuel = 100_000 }
