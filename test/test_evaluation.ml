(* The evaluation harness end to end in its fast configuration: context
   building, one grid run, every renderer.  Numbers are weak at this size
   (that is what PATCHECKO_FAST trades away); the test checks shapes and
   that nothing raises. *)

let ctx = lazy (Evaluation.Context.build ~fast:true ())

let context_shapes () =
  let ctx = Lazy.force ctx in
  Alcotest.(check int) "25 db entries" 25
    (Patchecko.Vulndb.size ctx.Evaluation.Context.db);
  Alcotest.(check int) "two devices" 2 (List.length ctx.Evaluation.Context.devices);
  Alcotest.(check bool) "history recorded" true
    (ctx.Evaluation.Context.history <> []);
  List.iter
    (fun dev ->
      Alcotest.(check int) "25 truths" 25 (List.length dev.Evaluation.Context.truths);
      Alcotest.(check bool) "firmware stripped" true
        (Array.for_all Loader.Image.is_stripped
           dev.Evaluation.Context.firmware.Loader.Firmware.images);
      Alcotest.(check bool) "named firmware keeps symbols" true
        (not
           (Array.exists Loader.Image.is_stripped
              dev.Evaluation.Context.named_firmware.Loader.Firmware.images)))
    ctx.Evaluation.Context.devices

let grid_and_renderers () =
  let ctx = Lazy.force ctx in
  let dev = List.hd ctx.Evaluation.Context.devices in
  let truth = List.hd dev.Evaluation.Context.truths in
  let run = Evaluation.Grid.run_cve ctx dev truth in
  (* classifications exist and are consistent *)
  (match run.Evaluation.Grid.vuln_report.Patchecko.Pipeline.classification with
  | Some c ->
    Alcotest.(check int) "tp+tn+fp+fn = total" c.Patchecko.Pipeline.total
      (c.Patchecko.Pipeline.tp + c.Patchecko.Pipeline.tn
      + c.Patchecko.Pipeline.fp + c.Patchecko.Pipeline.fn)
  | None -> Alcotest.fail "classification missing");
  (* renderers run without raising on a one-run grid *)
  let runs = [ run ] in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Evaluation.Render.fig8 ppf ctx;
  Evaluation.Render.fig7 ppf runs;
  Evaluation.Render.tab6 ppf runs;
  Evaluation.Render.tab7 ppf runs;
  Evaluation.Render.tab8 ppf runs;
  Evaluation.Render.speed ppf runs;
  Evaluation.Render.simcheck ppf ctx;
  Evaluation.Ablation.minkowski_p ppf runs;
  Evaluation.Ablation.static_vs_hybrid ppf runs;
  Evaluation.Baselines.compare_detection ppf ctx runs;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "report text produced" true (Buffer.length buf > 500)

let final_verdict_prefers_better_match () =
  let ctx = Lazy.force ctx in
  let dev = List.hd ctx.Evaluation.Context.devices in
  List.iter
    (fun truth ->
      let run = Evaluation.Grid.run_cve ctx dev truth in
      (* the verdict, when present, is one of the two legal values — and
         when neither query located anything it is None *)
      match Evaluation.Grid.final_verdict run with
      | Some Patchecko.Differential.Patched
      | Some Patchecko.Differential.Vulnerable
      | None ->
        ())
    (match dev.Evaluation.Context.truths with
    | a :: b :: _ -> [ a; b ]
    | l -> l)

(* the six-column baseline table (struct included) and Table VIII, with
   the structural differential channel enabled, must render byte-for-byte
   identically whatever the domain count — the channel must not leak
   scheduling nondeterminism into the report *)
let baselines_and_tab8_stable_across_domains () =
  let ctx = Lazy.force ctx in
  let dev =
    match
      Evaluation.Context.device_by_name ctx
        Corpus.Devices.android_things.Corpus.Devices.device_name
    with
    | Some d -> d
    | None -> Alcotest.fail "android_things device missing"
  in
  let truths =
    match
      List.filter
        (fun (t : Corpus.Devices.truth) -> not t.Corpus.Devices.patched)
        dev.Evaluation.Context.truths
    with
    | a :: b :: _ -> [ a; b ]
    | l -> l
  in
  let render () =
    Staticfeat.Cache.clear ();
    let runs = List.map (Evaluation.Grid.run_cve ctx dev) truths in
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    Evaluation.Baselines.compare_detection ppf ctx runs;
    Evaluation.Render.tab8 ppf runs;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let d1 = Fixtures.with_domains 1 render in
  let d4 = Fixtures.with_domains 4 render in
  Alcotest.(check string) "identical at 1 and 4 domains" d1 d4;
  let has_sub sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "struct column present" true (has_sub "struct" d1);
  Alcotest.(check bool) "six rank columns rendered" true (has_sub "hybrid" d1)

let suite =
  [
    Alcotest.test_case "context-shapes" `Quick context_shapes;
    Alcotest.test_case "grid-and-renderers" `Quick grid_and_renderers;
    Alcotest.test_case "final-verdict" `Quick final_verdict_prefers_better_match;
    Alcotest.test_case "baselines-tab8-domains" `Quick
      baselines_and_tab8_stable_across_domains;
  ]
