let () =
  (* honour PATCHECKO_CHECK_IR=1: the dune runtest matrix recompiles the
     corpus with the sanitizer armed after every optimisation pass *)
  Analysis.Sanitize.install ();
  Alcotest.run "patchecko"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("chaos", Test_chaos.suite);
      ("obs", Test_obs.suite);
      ("isa", Test_isa.suite);
      ("asmparse", Test_asmparse.suite);
      ("loader", Test_loader.suite);
      ("cfg", Test_cfg.suite);
      ("dominators", Test_dominators.suite);
      ("struct", Test_struct.suite);
      ("minic", Test_minic.suite);
      ("opt", Test_opt.suite);
      ("analysis", Test_analysis.suite);
      ("peephole", Test_peephole.suite);
      ("vm", Test_vm.suite);
      ("vm-details", Test_vm_details.suite);
      ("staticfeat", Test_staticfeat.suite);
      ("nn", Test_nn.suite);
      ("serialize", Test_serialize.suite);
      ("similarity", Test_similarity.suite);
      ("baseline", Test_baseline.suite);
      ("fuzz", Test_fuzz.suite);
      ("corpus", Test_corpus.suite);
      ("patchecko", Test_patchecko.suite);
      ("prune", Test_prune.suite);
      ("compiler-diff", Test_compiler_diff.suite);
      ("evaluation", Test_evaluation.suite);
      ("perf", Test_perf.suite);
    ]
