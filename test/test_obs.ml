(* The observability layer: golden traces of the seeded scan, metric
   aggregation, sink round-trips, and well-formedness properties.

   The golden tests pin the *normalised* trace — timestamps, span ids
   and domain ids stripped — of the shared planted-CVE fixture, and
   assert it is identical at 1 and 4 domains.  Metric totals are sums of
   per-domain shards, so everything except the pool's own scheduling
   counters must also be domain-count-independent. *)

let with_ring = Obs.Trace.with_ring

(* --- basics ------------------------------------------------------------ *)

let spans_nest () =
  let (), events =
    with_ring (fun () ->
        Obs.Trace.with_span ~name:"a"
          ~attrs:(fun () -> [ ("k", "v") ])
          (fun () ->
            Obs.Trace.with_span ~name:"b" (fun () -> ());
            Obs.Trace.with_span ~name:"c" (fun () ->
                Obs.Trace.with_span ~name:"d" (fun () -> ()))))
  in
  Alcotest.(check int) "eight events" 8 (List.length events);
  Alcotest.(check (list string)) "well-formed" []
    (List.map Obs.Trace.violation_to_string (Obs.Trace.check events));
  Alcotest.(check (list string))
    "normalised tree" [ "a/b"; "a/c"; "a/c/d"; "a{k=v}" ]
    (Obs.Trace.normalize (Obs.Trace.completed events))

let root_span_detaches () =
  let (), events =
    with_ring (fun () ->
        Obs.Trace.with_span ~name:"outer" (fun () ->
            Obs.Trace.root_span ~name:"island" (fun () ->
                Obs.Trace.with_span ~name:"leaf" (fun () -> ()))))
  in
  Alcotest.(check (list string))
    "root span cuts the parent link"
    [ "island"; "island/leaf"; "outer" ]
    (Obs.Trace.normalize (Obs.Trace.completed events))

let span_closes_on_raise () =
  let result =
    with_ring (fun () ->
        try
          Obs.Trace.with_span ~name:"boom" (fun () -> failwith "zap")
        with Failure _ -> ())
  in
  let (), events = result in
  Alcotest.(check int) "start and end" 2 (List.length events);
  Alcotest.(check (list string)) "well-formed after raise" []
    (List.map Obs.Trace.violation_to_string (Obs.Trace.check events))

let disabled_tracing_is_free () =
  let saved = Obs.Trace.current_sink () in
  Obs.Trace.set_sink None;
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_sink saved)
    (fun () ->
      let forced = ref false in
      Obs.Trace.with_span ~name:"x"
        ~attrs:(fun () ->
          forced := true;
          [])
        (fun () -> ());
      Alcotest.(check bool) "attr thunk not forced when disabled" false !forced)

let metrics_basics () =
  let c = Obs.Metrics.counter "test.counter" in
  let g = Obs.Metrics.gauge "test.gauge" in
  let h = Obs.Metrics.histogram "test.histogram" in
  Obs.Metrics.reset ();
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Obs.Metrics.set g 17;
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 900 ];
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "gauge" 17 (Obs.Metrics.gauge_value g);
  let s = Obs.Metrics.histogram_summary h in
  Alcotest.(check int) "histogram count" 5 s.Obs.Metrics.count;
  Alcotest.(check int) "histogram sum" 906 s.Obs.Metrics.sum;
  Alcotest.(check (list (pair int int)))
    "buckets: 0 | [1,2) | [2,4) x2 | [512,1024)"
    [ (0, 1); (2, 1); (4, 2); (1024, 1) ]
    s.Obs.Metrics.by_bucket;
  (* same name returns the same metric; wrong kind is rejected *)
  Obs.Metrics.incr (Obs.Metrics.counter "test.counter");
  Alcotest.(check int) "re-registration shares state" 6
    (Obs.Metrics.get_counter "test.counter");
  (match Obs.Metrics.gauge "test.counter" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.get_counter "test.counter")

(* --- the golden scan trace --------------------------------------------- *)

(* strip metrics whose presence or value depends on anything but the
   scan under test before comparing snapshots: the pool's own counters
   legitimately differ across domain counts, this suite's scratch
   metrics and the per-class fault.<kind> counters are only registered
   once some earlier test exercises them (their totals are covered by
   supervisor.faults, which is always registered) *)
let comparable_metrics () =
  let prefixed p name =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  List.filter
    (fun (name, _) ->
      not (prefixed "pool." name || prefixed "test." name || prefixed "fault." name))
    (Obs.Metrics.snapshot ())

let traced_scan domains =
  let db, fw, classifier =
    Robust.Inject.suspend (fun () ->
        let _entry, db, fw, classifier = Fixtures.scanner_fixture () in
        (db, fw, classifier))
  in
  Fixtures.with_domains domains (fun () ->
      Staticfeat.Cache.clear ();
      Obs.Metrics.reset ();
      let report, events =
        with_ring (fun () ->
            Patchecko.Scanner.scan_firmware ~dyn_config:Fixtures.dyn_config
              ~max_distance:10.0 ~classifier ~db fw)
      in
      let metrics = comparable_metrics () in
      Staticfeat.Cache.clear ();
      (report, events, metrics))

(* the pinned trace of the planted-CVE fixture: one reference context
   prepared per entry and one batched static pass per image, both under
   scan.firmware; then two dynamic cells (one per image) — the
   differential stage only fires in the cell whose dynamic ranking
   survives the distance cutoff, and its structural channel encodes the
   target image's fingerprints there (the reference pair is persisted on
   the db entry); four prefills (two firmware images + the entry's
   vuln/patched references, both rendered from the same CVE corpus
   program) *)
let golden_spans =
  [
    "scan.cell/stage.differential/structfp.image{image=lib02}";
    "scan.cell/stage.differential{image=lib02}";
    "scan.cell/stage.dynamic{candidates=10,image=lib02}";
    "scan.cell/stage.dynamic{candidates=8,image=lib01}";
    "scan.cell{cve=CVE-2018-9412,image=lib01}";
    "scan.cell{cve=CVE-2018-9412,image=lib02}";
    "scan.firmware/scan.prefill{image=cvedb_cve_CVE_2018_9412}";
    "scan.firmware/scan.prefill{image=cvedb_cve_CVE_2018_9412}";
    "scan.firmware/scan.prefill{image=lib01}";
    "scan.firmware/scan.prefill{image=lib02}";
    "scan.firmware/scan.refctx{cve=CVE-2018-9412}";
    "scan.firmware/stage.static{image=lib01,references=1}";
    "scan.firmware/stage.static{image=lib02,references=1}";
    "scan.firmware{cves=1,device=testdev,images=2}";
  ]

(* the pinned aggregate metrics of the same scan: 4 distinct images
   extracted (cache misses) and every later touch a hit; 2 cells, 1
   finding; 9 supervised units (4 prefills + 1 reference context + 2
   static passes + 2 dynamic cells); the reference context is prepared
   once and shared by both cells, so the VM executes 149 seeded runs
   (the per-cell engine re-ran the reference side per image) of which
   one traps (an execution the differential engine tolerates); the one
   struct miss is the single firing differential stage encoding its
   target image *)
let golden_metrics =
  [
    ("cache.hit", "5");
    ("cache.invalidate", "0");
    ("cache.miss", "4");
    ("cache.struct.hit", "0");
    ("cache.struct.miss", "1");
    ("cache.tokens.hit", "0");
    ("cache.tokens.miss", "0");
    ("differential.gathers", "1");
    ("dynamic.candidates_in", "18");
    ("dynamic.executions", "69");
    ("dynamic.faulted", "0");
    ("dynamic.runs", "2");
    ("dynamic.validated", "17");
    ("prune.cells_kept", "0");
    ("prune.cells_pruned", "0");
    ("scan.cells", "2");
    ("scan.failed_cells", "0");
    ("scan.findings", "1");
    ("static.batch_rows", "count 2, sum 18, le16:2");
    ("static.candidates", "18");
    ("static.scans", "2");
    ("static.score_pct", "count 18, sum 1800, le128:18");
    ("supervisor.attempts", "9");
    ("supervisor.faults", "0");
    ("supervisor.gave_up", "0");
    ("supervisor.retries", "0");
    ("supervisor.runs", "9");
    ("vm.executions", "149");
    ( "vm.fuel_consumed",
      "count 149, sum 61263, le16:56 le32:8 le64:1 le128:24 le256:4 le512:19 \
       le1024:10 le2048:23 le4096:4" );
    ("vm.traps", "1");
    ("vm.traps.step_limit", "0");
  ]

let metric_to_string (name, v) =
  Printf.sprintf "%s = %s" name (Obs.Metrics.value_to_string v)

let golden_scan_trace () =
  let _report, events, metrics = traced_scan 1 in
  Alcotest.(check (list string)) "well-formed" []
    (List.map Obs.Trace.violation_to_string (Obs.Trace.check events));
  Alcotest.(check (list string)) "golden span tree" golden_spans
    (Obs.Trace.normalize (Obs.Trace.completed events));
  Alcotest.(check (list string)) "golden metric totals"
    (List.map (fun (n, v) -> Printf.sprintf "%s = %s" n v) golden_metrics)
    (List.map metric_to_string metrics)

let trace_deterministic_across_domains () =
  let _r1, ev1, m1 = traced_scan 1 in
  let _r4, ev4, m4 = traced_scan 4 in
  Alcotest.(check (list string)) "span multiset identical at 1 and 4 domains"
    (Obs.Trace.normalize (Obs.Trace.completed ev1))
    (Obs.Trace.normalize (Obs.Trace.completed ev4));
  Alcotest.(check (list string)) "metric totals identical at 1 and 4 domains"
    (List.map metric_to_string m1)
    (List.map metric_to_string m4);
  Alcotest.(check (list string)) "4-domain trace well-formed" []
    (List.map Obs.Trace.violation_to_string (Obs.Trace.check ev4))

(* --- supervisor metrics under armed injection (regression) ------------- *)

let supervisor_metrics_under_faults () =
  let db, fw, classifier =
    Robust.Inject.suspend (fun () ->
        let _entry, db, fw, classifier = Fixtures.scanner_fixture () in
        (db, fw, classifier))
  in
  let scan () =
    Fixtures.with_domains 4 (fun () ->
        Staticfeat.Cache.clear ();
        Patchecko.Scanner.scan_firmware ~dyn_config:Fixtures.dyn_config
          ~max_distance:10.0 ~classifier ~db fw)
  in
  (* pick the first seed whose run observes faults, as the chaos suite
     does — deterministic, so the chosen seed is stable *)
  let rec with_faulty_seed s =
    if s > 12 then Alcotest.fail "no seed produced a non-empty ledger"
    else begin
      Robust.Inject.arm (Printf.sprintf "all:0.05:%d" s);
      Obs.Metrics.reset ();
      let r = Fun.protect ~finally:Robust.Inject.disarm scan in
      if r.Patchecko.Scanner.ledger <> [] then r else with_faulty_seed (s + 1)
    end
  in
  let r = with_faulty_seed 1 in
  let attempts = Obs.Metrics.get_counter "supervisor.attempts" in
  let faults = Obs.Metrics.get_counter "supervisor.faults" in
  let retries = Obs.Metrics.get_counter "supervisor.retries" in
  Alcotest.(check bool) "faults were drawn" true (faults > 0);
  Alcotest.(check bool)
    (Printf.sprintf "attempts (%d) >= faults drawn (%d)" attempts faults)
    true
    (attempts >= faults);
  Alcotest.(check bool) "every retry follows a fault" true (retries <= faults);
  (* Recovered/Failed ledger records each correspond to a fault the
     supervisor caught and counted; Degraded records are per-candidate
     faults absorbed inside the cell, which the supervisor never sees *)
  let supervised_records =
    List.length
      (List.filter
         (fun (rec_ : Patchecko.Scanner.fault_record) ->
           rec_.Patchecko.Scanner.outcome <> Patchecko.Scanner.Degraded)
         r.Patchecko.Scanner.ledger)
  in
  Alcotest.(check bool)
    (Printf.sprintf "metric faults (%d) cover supervised ledger records (%d)"
       faults supervised_records)
    true
    (faults >= supervised_records);
  Staticfeat.Cache.clear ()

(* --- PATCHECKO_TRACE: validate the armed JSONL sink against the reader - *)

let env_jsonl_sink_round_trips () =
  match Sys.getenv_opt "PATCHECKO_TRACE" with
  | None | Some "" -> ()  (* only meaningful in the trace-armed alias *)
  | Some path ->
    (* run a scan through the env-armed JSONL sink (the golden tests
       divert events into ring sinks, so this is what actually exercises
       the file sink), then read the file back through the reader *)
    let db, fw, classifier =
      Robust.Inject.suspend (fun () ->
          let _entry, db, fw, classifier = Fixtures.scanner_fixture () in
          (db, fw, classifier))
    in
    (ignore
       (Patchecko.Scanner.scan_firmware ~dyn_config:Fixtures.dyn_config
          ~max_distance:10.0 ~classifier ~db fw)
     : unit);
    Staticfeat.Cache.clear ();
    Obs.Trace.flush ();
    let events = Obs.Trace.read_jsonl path in
    Alcotest.(check bool) "sink captured events" true (events <> []);
    Alcotest.(check (list string)) "file replay is well-formed" []
      (List.map Obs.Trace.violation_to_string (Obs.Trace.check events));
    (* every line is stable under a write-read-write cycle *)
    List.iter
      (fun ev ->
        let json = Obs.Trace.event_to_json ev in
        Alcotest.(check string) "print/parse/print fixpoint" json
          (Obs.Trace.event_to_json (Obs.Trace.event_of_json json)))
      events

(* a trace file with no events is an error, not an empty summary: the
   reader must say which file and why (and, for a garbage line, where) *)
let read_jsonl_rejects_bad_files () =
  let with_file contents f =
    let path = Filename.temp_file "patchecko_trace" ".jsonl" in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  let expect_error name contents fragments =
    with_file contents (fun path ->
        match Obs.Trace.read_jsonl path with
        | events ->
          Alcotest.failf "%s: parsed %d events from a bad file" name
            (List.length events)
        | exception Obs.Trace.Parse_error msg ->
          List.iter
            (fun frag ->
              let present =
                let fl = String.length frag and ml = String.length msg in
                let rec at i =
                  i + fl <= ml && (String.sub msg i fl = frag || at (i + 1))
                in
                at 0
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %S mentions %S" name msg frag)
                true present)
            fragments)
  in
  expect_error "empty" "" [ "no trace events"; "empty file" ];
  expect_error "blank-only" "\n  \n\n" [ "no trace events"; "blank lines" ];
  expect_error "garbage" "not json at all\n" [ "line 1" ];
  (* a truncated tail after a valid event still names the bad line *)
  let line =
    Obs.Trace.event_to_json
      (Obs.Trace.Start
         { id = 1; parent = None; name = "t"; attrs = []; domain = 0; ts_ns = 0 })
  in
  expect_error "truncated"
    (line ^ "\n" ^ String.sub line 0 (String.length line / 2))
    [ "line 2" ];
  match Obs.Trace.read_jsonl "/nonexistent/trace.jsonl" with
  | _ -> Alcotest.fail "missing file accepted"
  | exception Sys_error _ -> ()

(* --- properties (qcheck) ------------------------------------------------ *)

(* random span programs: a tree of nested spans, the root's children
   optionally executed on pool domains; whatever the interleaving, the
   event stream must replay well-formed *)
let gen_tree =
  QCheck.Gen.(
    sized_size (int_range 1 24) @@ fix (fun self n ->
        if n <= 1 then map (fun i -> `Leaf i) small_nat
        else
          frequency
            [
              (1, map (fun i -> `Leaf i) small_nat);
              (3, map2 (fun a b -> `Node (a, b)) (self (n / 2)) (self (n / 2)));
            ]))

let rec run_tree = function
  | `Leaf i ->
    Obs.Trace.with_span ~name:(Printf.sprintf "leaf%d" (i mod 3)) (fun () -> ())
  | `Node (a, b) ->
    Obs.Trace.with_span ~name:"node" (fun () ->
        run_tree a;
        run_tree b)

let prop_nesting_well_formed =
  QCheck.Test.make ~name:"span-nesting-always-well-formed" ~count:60
    (QCheck.make gen_tree) (fun tree ->
      let (), events =
        with_ring (fun () ->
            Fixtures.with_domains 4 (fun () ->
                (* run the same tree from several pool workers at once *)
                ignore
                  (Parallel.Pool.map_array ~chunk:1
                     (fun _ -> Obs.Trace.root_span ~name:"worker" (fun () -> run_tree tree))
                     (Array.init 6 Fun.id))))
      in
      Obs.Trace.check events = [])

let prop_counter_order_independent =
  QCheck.Test.make ~name:"metric-aggregation-order-independent" ~count:60
    QCheck.(list small_nat) (fun values ->
      let c = Obs.Metrics.counter "test.prop.counter" in
      let arr = Array.of_list values in
      let total order =
        Obs.Metrics.reset ();
        Fixtures.with_domains 4 (fun () ->
            ignore
              (Parallel.Pool.map_array ~chunk:1
                 (fun v -> Obs.Metrics.add c v)
                 order));
        Obs.Metrics.counter_value c
      in
      let rev = Array.of_list (List.rev values) in
      let expected = List.fold_left ( + ) 0 values in
      total arr = expected && total rev = expected)

let prop_histogram_order_independent =
  QCheck.Test.make ~name:"histogram-aggregation-order-independent" ~count:40
    QCheck.(list (int_range 0 100_000)) (fun values ->
      let h = Obs.Metrics.histogram "test.prop.histogram" in
      let summarize order =
        Obs.Metrics.reset ();
        Fixtures.with_domains 4 (fun () ->
            ignore
              (Parallel.Pool.map_array ~chunk:1
                 (fun v -> Obs.Metrics.observe h v)
                 (Array.of_list order)));
        Obs.Metrics.histogram_summary h
      in
      summarize values = summarize (List.rev values))

(* JSONL round-trip: arbitrary (escaped) strings and ids survive the
   write-read cycle *)
let gen_event =
  QCheck.Gen.(
    let str = string_size ~gen:(char_range '\000' '\255') (int_range 0 12) in
    let id = int_range 1 1_000_000 in
    let ts = int_range 0 max_int in
    bool >>= fun is_start ->
    if is_start then
      map2
        (fun (id, parent, name, domain) (ts, attrs) ->
          Obs.Trace.Start { id; parent; name; attrs; domain; ts_ns = ts })
        (quad id (opt id) str (int_range 0 256))
        (pair ts (list_size (int_range 0 4) (pair str str)))
    else
      map2
        (fun id (domain, ts) -> Obs.Trace.End { id; domain; ts_ns = ts })
        id
        (pair (int_range 0 256) ts))

let prop_jsonl_round_trip =
  QCheck.Test.make ~name:"jsonl-event-round-trip" ~count:300
    (QCheck.make gen_event) (fun ev ->
      Obs.Trace.event_of_json (Obs.Trace.event_to_json ev) = ev)

let suite =
  [
    Alcotest.test_case "spans-nest" `Quick spans_nest;
    Alcotest.test_case "root-span-detaches" `Quick root_span_detaches;
    Alcotest.test_case "span-closes-on-raise" `Quick span_closes_on_raise;
    Alcotest.test_case "disabled-is-free" `Quick disabled_tracing_is_free;
    Alcotest.test_case "metrics-basics" `Quick metrics_basics;
    Alcotest.test_case "golden-scan-trace" `Quick golden_scan_trace;
    Alcotest.test_case "trace-deterministic" `Quick
      trace_deterministic_across_domains;
    Alcotest.test_case "supervisor-metrics" `Quick supervisor_metrics_under_faults;
    Alcotest.test_case "env-jsonl-sink" `Quick env_jsonl_sink_round_trips;
    Alcotest.test_case "read-jsonl-rejects-bad-files" `Quick
      read_jsonl_rejects_bad_files;
    QCheck_alcotest.to_alcotest prop_nesting_well_formed;
    QCheck_alcotest.to_alcotest prop_counter_order_independent;
    QCheck_alcotest.to_alcotest prop_histogram_order_independent;
    QCheck_alcotest.to_alcotest prop_jsonl_round_trip;
  ]
