(* Structural fingerprints: canonical-tree invariants, metric properties
   of the distance, and the two encoders' invariance/totality guarantees
   the baseline column and the differential channel rely on. *)

module S = Similarity.Structfp
module E = Analysis.Struct_enc
module A = Minic.Ast

(* --- random canonical trees ------------------------------------------- *)

(* raw (uncanonicalised) trees, so the same shape can be rebuilt through
   [S.node] with children presented in different orders *)
type raw = R of int * raw list

let gen_raw =
  QCheck.Gen.(
    sized_size (int_range 0 24) @@ fix (fun self n ->
        if n <= 0 then map (fun l -> R (l, [])) (int_range 0 3)
        else
          int_range 0 3 >>= fun l ->
          list_size (int_range 0 3) (self (n / 2)) >>= fun kids ->
          return (R (l, kids))))

let rec canon (R (l, ks)) = S.node l (List.map canon ks)
let rec canon_rev (R (l, ks)) = S.node l (List.rev_map canon_rev ks)

let prop_node_order_canonical =
  QCheck.Test.make ~name:"node-canonicalises-child-order" ~count:200
    (QCheck.make gen_raw) (fun raw ->
      S.compare_tree (canon raw) (canon_rev raw) = 0)

let gen_fp =
  QCheck.Gen.(
    gen_raw >>= fun raw ->
    array_size (return E.ops_length) (float_bound_inclusive 10.0) >>= fun ops ->
    array_size (return S.skel_length) (float_bound_inclusive 50.0) >>= fun skel ->
    return (S.make ~ops ~skel ~tree:(canon raw)))

let prop_distance_metric =
  QCheck.Test.make ~name:"distance-symmetric-bounded-zero-on-self" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_fp gen_fp)) (fun (a, b) ->
      let d = S.distance a b in
      S.distance a a = 0.0 && S.distance b b = 0.0
      && d = S.distance b a
      && d >= 0.0 && d <= 1.0)

let prop_ted_identity =
  QCheck.Test.make ~name:"tree-edit-distance-zero-on-self" ~count:200
    (QCheck.make gen_raw) (fun raw ->
      let t = canon raw in
      S.tree_edit_distance t t = 0)

(* --- encoder invariances on the AST side ------------------------------ *)

(* systematic alpha-renaming: every binder and variable use gets a fresh
   suffix (call targets stay, they are interface, not names) *)
let rec rename_expr tag e =
  match e with
  | A.Eint _ | A.Efloat _ | A.Estr _ -> e
  | A.Evar v -> A.Evar (v ^ tag)
  | A.Eindex (a, b) -> A.Eindex (rename_expr tag a, rename_expr tag b)
  | A.Eaddr (a, b) -> A.Eaddr (rename_expr tag a, rename_expr tag b)
  | A.Eunop (u, a) -> A.Eunop (u, rename_expr tag a)
  | A.Ebinop (op, a, b) -> A.Ebinop (op, rename_expr tag a, rename_expr tag b)
  | A.Ecall (f, args) -> A.Ecall (f, List.map (rename_expr tag) args)

let rec rename_stmt tag s =
  match s with
  | A.Sdecl (n, t, e) -> A.Sdecl (n ^ tag, t, Option.map (rename_expr tag) e)
  | A.Sarray (n, e, sz) -> A.Sarray (n ^ tag, e, sz)
  | A.Sassign (n, e) -> A.Sassign (n ^ tag, rename_expr tag e)
  | A.Sindexset (a, b, c) ->
    A.Sindexset (rename_expr tag a, rename_expr tag b, rename_expr tag c)
  | A.Sif (c, t, e) ->
    A.Sif (rename_expr tag c, rename_stmts tag t, rename_stmts tag e)
  | A.Swhile (c, b) -> A.Swhile (rename_expr tag c, rename_stmts tag b)
  | A.Sfor (v, a, b, c, body) ->
    A.Sfor
      ( v ^ tag,
        rename_expr tag a,
        rename_expr tag b,
        rename_expr tag c,
        rename_stmts tag body )
  | A.Sswitch (e, cases, default) ->
    A.Sswitch
      ( rename_expr tag e,
        List.map (fun (k, b) -> (k, rename_stmts tag b)) cases,
        rename_stmts tag default )
  | A.Sreturn e -> A.Sreturn (Option.map (rename_expr tag) e)
  | A.Sbreak | A.Scontinue -> s
  | A.Sexpr e -> A.Sexpr (rename_expr tag e)

and rename_stmts tag = List.map (rename_stmt tag)

let rename_func tag (f : A.func) =
  {
    f with
    A.fname = f.A.fname ^ tag;
    params =
      List.map
        (fun (p : A.param) -> { A.pname = p.A.pname ^ tag; pty = p.A.pty })
        f.A.params;
    body = rename_stmts tag f.A.body;
  }

let identical a b =
  S.distance a b = 0.0 && S.compare_tree (S.tree a) (S.tree b) = 0

(* reordering statements permutes the floating-point accumulation of the
   constant-magnitude profile, so the distance is only zero up to float
   associativity; the canonical tree must still match exactly *)
let near_identical a b =
  S.distance a b < 1e-9 && S.compare_tree (S.tree a) (S.tree b) = 0

let prop_alpha_renaming =
  QCheck.Test.make ~name:"fingerprint-invariant-under-alpha-renaming" ~count:60
    QCheck.(
      triple
        (int_range 0 (List.length Corpus.Cves.all - 1))
        bool (int_range 0 9999))
    (fun (i, patched, salt) ->
      let cve = List.nth Corpus.Cves.all i in
      let f =
        if patched then Corpus.Cves.patched_func cve
        else Corpus.Cves.vulnerable_func cve
      in
      let tag = Printf.sprintf "_r%d" salt in
      identical (E.of_func f) (E.of_func (rename_func tag f)))

(* a straight-line block of independent assignments (statement i touches
   only variable i): any permutation preserves semantics, and the
   fingerprint must not depend on the order *)
let gen_straightline =
  QCheck.Gen.(
    list_size (int_range 1 8)
      (pair (int_range (-64) 64) (int_range 0 2))
    >>= fun specs ->
    let stmts =
      List.mapi
        (fun i (k, shape) ->
          let v = Printf.sprintf "x%d" i in
          let base = A.Evar v and lit = A.Eint (Int64.of_int k) in
          match shape with
          | 0 -> A.Sassign (v, A.Ebinop (A.Badd, base, lit))
          | 1 -> A.Sassign (v, A.Ebinop (A.Bmul, base, lit))
          | _ -> A.Sassign (v, A.Ebinop (A.Bxor, base, lit)))
        specs
    in
    shuffle_l stmts >>= fun shuffled -> return (stmts, shuffled))

let func_of_body body =
  {
    A.fname = "f";
    params = [ { A.pname = "a"; pty = A.Tint }; { A.pname = "b"; pty = A.Tint } ];
    ret = A.Tint;
    body;
  }

let prop_straightline_permutation =
  QCheck.Test.make ~name:"fingerprint-invariant-under-independent-reorder"
    ~count:200 (QCheck.make gen_straightline) (fun (stmts, shuffled) ->
      let close l = l @ [ A.Sreturn (Some (A.Evar "a")) ] in
      near_identical
        (E.of_func (func_of_body (close stmts)))
        (E.of_func (func_of_body (close shuffled))))

(* swapping the branches of an if while negating its comparison keeps
   the semantics; the canonical child order must absorb the swap *)
let negate = function
  | A.Blt -> A.Bge
  | A.Bge -> A.Blt
  | A.Ble -> A.Bgt
  | A.Bgt -> A.Ble
  | A.Beq -> A.Bne
  | A.Bne -> A.Beq
  | op -> op

let prop_branch_swap =
  QCheck.Test.make ~name:"fingerprint-invariant-under-then-else-swap"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         triple
           (oneofl [ A.Blt; A.Ble; A.Bgt; A.Bge; A.Beq; A.Bne ])
           gen_straightline gen_straightline))
    (fun (op, (thens, _), (elses, _)) ->
      let cond = A.Ebinop (op, A.Evar "a", A.Evar "b") in
      let ncond = A.Ebinop (negate op, A.Evar "a", A.Evar "b") in
      let tail = [ A.Sreturn (Some (A.Evar "a")) ] in
      near_identical
        (E.of_func (func_of_body (A.Sif (cond, thens, elses) :: tail)))
        (E.of_func (func_of_body (A.Sif (ncond, elses, thens) :: tail))))

(* --- totality over the corpus ----------------------------------------- *)

(* both encoders succeed on every corpus function at every optimisation
   level, and the cross-representation distance stays in bounds (this is
   the test @struct-smoke re-runs with the IR sanitizer armed) *)
let encoder_total_on_corpus () =
  List.iter
    (fun (cve : Corpus.Cves.t) ->
      List.iter
        (fun patched ->
          let f =
            if patched then Corpus.Cves.patched_func cve
            else Corpus.Cves.vulnerable_func cve
          in
          let ast = E.of_func f in
          Alcotest.(check bool)
            (cve.Corpus.Cves.id ^ " ast self-distance") true
            (S.distance ast ast = 0.0);
          List.iter
            (fun opt ->
              let img = Corpus.Dataset.compile_cve ~opt cve ~patched in
              for i = 0 to Loader.Image.function_count img - 1 do
                let fp = E.of_binary img i in
                let d = S.distance ast fp in
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s fn%d distance in [0,1]"
                     cve.Corpus.Cves.id
                     (Minic.Optlevel.to_string opt)
                     i)
                  true
                  (d >= 0.0 && d <= 1.0)
              done)
            Minic.Optlevel.all)
        [ false; true ])
    Corpus.Cves.all

(* ... and on generated library code, whose functions are bigger and
   structurally messier than the CVE pairs *)
let encoder_total_on_genlib () =
  let prog = Corpus.Genlib.generate ~seed:0x57ABL ~index:3 ~nfuncs:10 in
  List.iter
    (fun fn ->
      let ast = E.of_func fn in
      Alcotest.(check bool) "genlib ast self-distance" true
        (S.distance ast ast = 0.0))
    prog.A.funcs;
  List.iter
    (fun opt ->
      let img = Minic.Compiler.compile ~arch:Isa.Arch.Arm64 ~opt prog in
      for i = 0 to Loader.Image.function_count img - 1 do
        ignore (E.of_binary img i)
      done)
    Minic.Optlevel.all

let suite =
  [
    QCheck_alcotest.to_alcotest prop_node_order_canonical;
    QCheck_alcotest.to_alcotest prop_distance_metric;
    QCheck_alcotest.to_alcotest prop_ted_identity;
    QCheck_alcotest.to_alcotest prop_alpha_renaming;
    QCheck_alcotest.to_alcotest prop_straightline_permutation;
    QCheck_alcotest.to_alcotest prop_branch_swap;
    Alcotest.test_case "encoder-total-on-corpus" `Quick encoder_total_on_corpus;
    Alcotest.test_case "encoder-total-on-genlib" `Quick encoder_total_on_genlib;
  ]
