(* Diff-derived signatures and the inverted candidate index.

   The load-bearing property is *no false prune*: an entry may only be
   skipped for an image when no function of that image carries all of
   the entry's anchor tokens — so a pruned scan must serialize to
   exactly the exhaustive scan's bytes.  The @prune-smoke alias runs
   this suite at PATCHECKO_DOMAINS=1 and 4. *)

module T = Signature.Token
module D = Signature.Diffsig

let imm n = T.Imm (Int64.of_int n)

(* reference pair plus every signature build configuration — how the
   evaluation context extracts a prunable production signature *)
let all_builds c ~patched =
  (Corpus.Dataset.compile_cve c ~patched, 0)
  :: Corpus.Dataset.signature_builds c ~patched

let cve id =
  match Corpus.Cves.find id with
  | Some c -> c
  | None -> Alcotest.fail ("missing CVE " ^ id)

(* --- Diffsig ------------------------------------------------------------ *)

let test_diffsig_int_clamp () =
  (* the one-integer patch: the clamp limit is 4096 vulnerable, 1024
     patched, and both survive every build configuration — the cleanest
     possible vuln_only / patched_only evidence.  The patch changes no
     control flow, so even the shared anchor keeps the whole-function
     shape hash; the immediates themselves must stay out of every anchor
     (same-family siblings differing only in constants score dynamic
     distance 0, so an immediate anchor would prune cells the exhaustive
     scan still reports). *)
  let c = cve "CVE-2018-9470" in
  let s =
    D.extract ~vuln:(all_builds c ~patched:false)
      ~patched:(all_builds c ~patched:true)
  in
  Alcotest.(check bool) "prunable" true (D.prunable s);
  Alcotest.(check bool) "shared anchor nonempty" true (s.D.anchor <> []);
  Alcotest.(check int) "configs = base + extras" 9 s.D.configs;
  let no_imms l =
    List.for_all (function T.Imm _ -> false | _ -> true) l
  in
  Alcotest.(check bool) "no immediates in vuln anchor" true
    (no_imms s.D.vuln_anchor);
  Alcotest.(check bool) "no immediates in patched anchor" true
    (no_imms s.D.patched_anchor);
  Alcotest.(check bool)
    "vulnerable constant is vuln_only" true
    (List.mem (imm 4096) s.D.vuln_only);
  Alcotest.(check bool)
    "patched constant is patched_only" true
    (List.mem (imm 1024) s.D.patched_only);
  Alcotest.(check bool)
    "sides are disjoint" true
    (List.for_all (fun t -> not (List.mem t s.D.patched_only)) s.D.vuln_only)

let test_diffsig_structural_patch () =
  (* a patch that inserts a bounds check changes the control skeleton:
     the whole-function shape hash differs per side, so it must appear
     in both side anchors but not in the shared anchor *)
  let c = cve "CVE-2018-9451" in
  let s =
    D.extract ~vuln:(all_builds c ~patched:false)
      ~patched:(all_builds c ~patched:true)
  in
  Alcotest.(check bool) "prunable" true (D.prunable s);
  Alcotest.(check bool) "side anchors differ" true
    (s.D.vuln_anchor <> s.D.patched_anchor);
  let shapes l =
    List.filter (function T.Shape _ -> true | _ -> false) l
  in
  Alcotest.(check bool) "vuln side keeps shape tokens" true
    (shapes s.D.vuln_anchor <> []);
  Alcotest.(check bool) "patched side keeps shape tokens" true
    (shapes s.D.patched_anchor <> []);
  Alcotest.(check bool) "shared anchor is the side intersection" true
    (List.for_all
       (fun t -> List.mem t s.D.vuln_anchor && List.mem t s.D.patched_anchor)
       s.D.anchor)

let test_diffsig_single_build_unprunable () =
  let c = cve "CVE-2018-9412" in
  let v = Corpus.Dataset.compile_cve c ~patched:false in
  let p = Corpus.Dataset.compile_cve c ~patched:true in
  let s = D.extract ~vuln:[ (v, 0) ] ~patched:[ (p, 0) ] in
  Alcotest.(check bool) "one config per side" true (s.D.configs = 1);
  Alcotest.(check bool) "never prunable" false (D.prunable s);
  Alcotest.check_raises "empty build list rejected"
    (Invalid_argument "Diffsig.extract: empty build list") (fun () ->
      ignore (D.extract ~vuln:[] ~patched:[ (p, 0) ]))

(* --- Index -------------------------------------------------------------- *)

let test_index_matches () =
  let s0 =
    D.make ~anchor:[ imm 100; imm 200 ] ~vuln_only:[ imm 4 ] ~patched_only:[]
      ~configs:2 ()
  and s1 =
    D.make ~anchor:[ imm 300 ] ~vuln_only:[] ~patched_only:[] ~configs:1 ()
  and s2 = D.make ~anchor:[] ~vuln_only:[] ~patched_only:[] ~configs:3 ()
  and s3 =
    (* a structural patch: the sides anchor on different shape tokens *)
    D.make ~vuln_anchor:[ imm 400 ] ~patched_anchor:[ imm 500 ] ~anchor:[]
      ~vuln_only:[] ~patched_only:[] ~configs:2 ()
  in
  let idx = Signature.Index.build [| s0; s1; s2; s3 |] in
  Alcotest.(check int) "entries" 4 (Signature.Index.entry_count idx);
  (* s1 has one config, s2 empty anchors: both unprunable *)
  Alcotest.(check int) "prunable" 2 (Signature.Index.prunable_count idx);
  Alcotest.(check int) "vuln anchor size" 2
    (Signature.Index.vuln_anchor_size idx 0);
  Alcotest.(check int) "patched anchor size" 2
    (Signature.Index.patched_anchor_size idx 0);
  Alcotest.(check int) "unprunable anchor size" 0
    (Signature.Index.vuln_anchor_size idx 1);
  Alcotest.(check (float 1e-9)) "mean anchor" 1.5
    (Signature.Index.mean_anchor idx);
  let m toks = Signature.Index.matches idx (Signature.Tokens.hash_set toks) in
  Alcotest.(check (list int)) "all anchors present" [ 0; 1; 2 ]
    (m [ imm 100; imm 200; imm 5 ]);
  Alcotest.(check (list int)) "one anchor missing" [ 1; 2 ] (m [ imm 100 ]);
  Alcotest.(check (list int)) "empty set keeps unprunable" [ 1; 2 ] (m []);
  (* either side anchor suffices: a firmware function resembles one of
     the two reference builds, never both at once *)
  Alcotest.(check (list int)) "vulnerable side covers" [ 1; 2; 3 ]
    (m [ imm 400 ]);
  Alcotest.(check (list int)) "patched side covers" [ 1; 2; 3 ]
    (m [ imm 500 ]);
  (* per-image mask: a match needs one function with a whole side
     anchor, not the anchor spread across two functions *)
  let mask sets =
    Signature.Index.candidate_mask idx
      (Array.of_list (List.map Signature.Tokens.hash_set sets))
  in
  Alcotest.(check (array bool)) "anchor split across functions"
    [| false; true; true; false |]
    (mask [ [ imm 100 ]; [ imm 200 ] ]);
  Alcotest.(check (array bool)) "anchor within one function"
    [| true; true; true; false |]
    (mask [ [ imm 100; imm 200 ]; [ imm 7 ] ]);
  Alcotest.(check (array bool)) "side anchors from different functions"
    [| false; true; true; true |]
    (mask [ [ imm 400 ]; [ imm 500 ] ])

(* --- scan parity -------------------------------------------------------- *)

(* three entries with full multi-configuration signatures: the planted
   case-study CVE plus two absent ones — the index must keep the planted
   cell, and the report must not depend on what it pruned *)
let prunable_db () =
  let mk id =
    let c = cve id in
    Patchecko.Vulndb.make_entry
      ~source:(Corpus.Cves.vulnerable_func c, Corpus.Cves.patched_func c)
      ~builds:
        ( Corpus.Dataset.signature_builds c ~patched:false,
          Corpus.Dataset.signature_builds c ~patched:true )
      ~cve_id:c.Corpus.Cves.id ~description:c.Corpus.Cves.description
      ~shape:c.Corpus.Cves.shape
      ~vuln:(Corpus.Dataset.compile_cve c ~patched:false, 0)
      ~patched:(Corpus.Dataset.compile_cve c ~patched:true, 0)
      ()
  in
  Patchecko.Vulndb.create
    [ mk "CVE-2018-9412"; mk "CVE-2018-9470"; mk "CVE-2018-9345" ]

let test_scan_parity () =
  let db, fw, classifier =
    Robust.Inject.suspend (fun () ->
        let c = Fixtures.case_cve () in
        (prunable_db (), Fixtures.scanner_firmware c,
         Fixtures.permissive_classifier ()))
  in
  (* max_distance 1.0: the planted copy matches at distance 0.  The
     permissive fixture classifier admits every function, and at a loose
     cutoff the absent CVEs pick up coincidental weak matches (distance
     4+) on generated functions that share none of their stable tokens —
     matches that exist only in cells the index correctly prunes.  The
     parity oracle is defined over the production cutoff, not over
     admit-everything noise. *)
  let scan ~prune =
    Staticfeat.Cache.clear ();
    Patchecko.Scanner.scan_firmware ~dyn_config:Fixtures.dyn_config
      ~max_distance:1.0 ~classifier ~db ~prune fw
  in
  let exhaustive = scan ~prune:false in
  let pruned = scan ~prune:true in
  Staticfeat.Cache.clear ();
  Alcotest.(check int) "exhaustive prunes nothing" 0
    exhaustive.Patchecko.Scanner.pruned_cells;
  Alcotest.(check bool) "pruned scan skips cells" true
    (pruned.Patchecko.Scanner.pruned_cells > 0);
  Alcotest.(check string) "byte-identical reports"
    (Patchecko.Scanner.report_to_json exhaustive)
    (Patchecko.Scanner.report_to_json pruned);
  Alcotest.(check bool) "planted CVE still found" true
    (List.exists
       (fun (f : Patchecko.Scanner.finding) -> f.cve_id = "CVE-2018-9412")
       pruned.Patchecko.Scanner.findings)

(* --- properties (qcheck) ------------------------------------------------ *)

let prop_extraction_deterministic =
  QCheck.Test.make ~name:"token-extraction-deterministic" ~count:15
    QCheck.(pair (int_range 0 (List.length Corpus.Cves.all - 1)) bool)
    (fun (i, patched) ->
      let c = List.nth Corpus.Cves.all i in
      let a = Corpus.Dataset.compile_cve c ~patched in
      let b = Corpus.Dataset.compile_cve c ~patched in
      Signature.Tokens.of_binary a 0 = Signature.Tokens.of_binary b 0)

let compile_func (f : Minic.Ast.func) =
  Minic.Compiler.compile ~arch:Isa.Arch.Arm64 ~opt:Minic.Optlevel.O1
    { Minic.Ast.pname = "sig_" ^ f.Minic.Ast.fname; globals = []; funcs = [ f ] }

let prop_alpha_renaming =
  QCheck.Test.make ~name:"tokens-invariant-under-alpha-renaming" ~count:15
    QCheck.(
      triple
        (int_range 0 (List.length Corpus.Cves.all - 1))
        bool (int_range 0 9999))
    (fun (i, patched, salt) ->
      let c = List.nth Corpus.Cves.all i in
      let f = Corpus.Cves.func c ~patched in
      let g = Test_struct.rename_func (Printf.sprintf "_r%d" salt) f in
      Signature.Tokens.of_binary (compile_func f) 0
      = Signature.Tokens.of_binary (compile_func g) 0)

(* random signatures joined against random function token sets: whenever
   every anchor token of an entry occurs in some function's set, the
   mask must keep the entry (hashing both sides can collide entries
   *into* the candidate set, never out of it) *)
let gen_token =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> T.Imm (Int64.of_int (n + 2))) (int_bound 40);
        map (fun n -> T.Loops ((1 + (n mod 3)), 1 + (n mod 5))) (int_bound 30);
        map (fun n -> T.Shape n) (int_bound 60);
        map
          (fun i ->
            T.Import (List.nth [ "memcpy"; "strlen"; "malloc" ] (i mod 3)))
          (int_bound 20);
      ])

let gen_no_false_prune =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 10)
         (pair (list_size (int_range 0 4) gen_token) (int_range 1 3)))
      (list_size (int_range 1 6) (list_size (int_range 0 12) gen_token)))

let prop_no_false_prune =
  QCheck.Test.make ~name:"index-never-drops-a-covered-entry" ~count:200
    (QCheck.make gen_no_false_prune)
    (fun (sig_specs, funcs) ->
      let sigs =
        Array.of_list
          (List.map
             (fun (anchor, configs) ->
               D.make ~anchor ~vuln_only:[] ~patched_only:[] ~configs ())
             sig_specs)
      in
      let idx = Signature.Index.build sigs in
      let mask =
        Signature.Index.candidate_mask idx
          (Array.of_list (List.map Signature.Tokens.hash_set funcs))
      in
      Array.for_all Fun.id
        (Array.mapi
           (fun e s ->
             let covered =
               List.exists
                 (fun f ->
                   List.for_all (fun t -> List.exists (T.equal t) f) s.D.anchor)
                 funcs
             in
             (* covered or unprunable => kept; the index may also keep
                more (collisions), which is fine *)
             if covered || not (D.prunable s) then mask.(e) else true)
           sigs))

let suite =
  [
    Alcotest.test_case "diffsig-int-clamp" `Quick test_diffsig_int_clamp;
    Alcotest.test_case "diffsig-structural-patch" `Quick
      test_diffsig_structural_patch;
    Alcotest.test_case "diffsig-single-build-unprunable" `Quick
      test_diffsig_single_build_unprunable;
    Alcotest.test_case "index-matches" `Quick test_index_matches;
    Alcotest.test_case "scan-parity" `Quick test_scan_parity;
    QCheck_alcotest.to_alcotest prop_extraction_deterministic;
    QCheck_alcotest.to_alcotest prop_alpha_renaming;
    QCheck_alcotest.to_alcotest prop_no_false_prune;
  ]
