(* Perf smoke: the parallel-scan tripwire.

   Before the scan rearchitecture a 2-domain scan cost ~1.75x a 1-domain
   scan on a single-core host (generation-barrier scheduling +
   per-execution region allocation serializing the domains on the
   collector).  This guard fails the suite if that class of regression
   comes back: after a warmup run, the min-of-2 wall clock at 2 domains
   must stay within 1.5x of the 1-domain time.  The margin is generous
   against timing noise (the healthy ratio is ~1.1 on one core, ~1.0 or
   below on real multicore) but well under the broken ratio. *)

let scan_seconds ~db ~fw ~classifier domains =
  Fixtures.with_domains domains (fun () ->
      let run () =
        Staticfeat.Cache.clear ();
        let t0 = Util.Clock.now () in
        for _ = 1 to 3 do
          ignore
            (Patchecko.Scanner.scan_firmware ~dyn_config:Fixtures.dyn_config
               ~max_distance:10.0 ~classifier ~db fw)
        done;
        Util.Clock.since t0
      in
      ignore (run ());
      min (run ()) (run ()))

let parallel_tripwire () =
  let _entry, db, fw, classifier = Fixtures.scanner_fixture () in
  let t1 = scan_seconds ~db ~fw ~classifier 1 in
  let t2 = scan_seconds ~db ~fw ~classifier 2 in
  Staticfeat.Cache.clear ();
  Alcotest.(check bool)
    (Printf.sprintf
       "2-domain scan within 1.5x of 1-domain (t1=%.3fs t2=%.3fs ratio %.2f)"
       t1 t2 (t2 /. t1))
    true
    (t2 <= 1.5 *. t1)

let suite = [ Alcotest.test_case "parallel-tripwire" `Quick parallel_tripwire ]
