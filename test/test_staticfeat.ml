(* The 48-feature extractor of Table I. *)

let image_of src arch opt = Minic.Compiler.compile_source ~arch ~opt src

let src =
  {|
lib sf;
global msg: byte[8] = "hiya";
fn looper(data: byte*, len: int): int {
  var acc: int = 3;
  for (k = 0; k < len; k = k + 1) {
    acc = acc ^ data[k] + 11;
  }
  if (acc > 100) {
    print_str(msg);
  }
  return acc;
}
fn leaf(x: int): int { return x + 1; }
fn quitter(x: int): int {
  if (x < 0) {
    abort();
  }
  return x;
}
fn floaty(x: float): float { return x * 0.5 + 2.0; }
|}

let get img i name =
  let v = Staticfeat.Extract.of_function img i in
  match Staticfeat.Names.index name with
  | Some k -> v.(k)
  | None -> Alcotest.failf "no feature %s" name

let feature_count () =
  Alcotest.(check int) "48 features" 48 Staticfeat.Names.count;
  let img = image_of src Isa.Arch.X86 Minic.Optlevel.O1 in
  Alcotest.(check int) "vector length" 48
    (Array.length (Staticfeat.Extract.of_function img 0))

let names_unique () =
  let seen = Hashtbl.create 48 in
  Array.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " unique") false (Hashtbl.mem seen n);
      Hashtbl.add seen n ())
    Staticfeat.Names.all

let looper_features () =
  let img = image_of src Isa.Arch.Arm64 Minic.Optlevel.O1 in
  Alcotest.(check bool) "has blocks" true (get img 0 "num_bb" >= 4.0);
  Alcotest.(check bool) "has edges" true (get img 0 "num_edge" >= 4.0);
  Alcotest.(check (float 0.0)) "one import (print_str)" 1.0 (get img 0 "num_import");
  Alcotest.(check bool) "string reference found" true (get img 0 "num_string" >= 1.0);
  Alcotest.(check bool) "arithmetic present" true (get img 0 "sum_arith_b" > 0.0);
  Alcotest.(check bool) "cyclomatic >= 2" true
    (get img 0 "cyclomatic_complexity" >= 2.0)

let leaf_flag () =
  let img = image_of src Isa.Arch.X86 Minic.Optlevel.O1 in
  let flag = int_of_float (get img 1 "fun_flag") in
  Alcotest.(check bool) "leaf bit" true (flag land Staticfeat.Extract.fun_flag_leaf <> 0)

let noret_flag () =
  let img = image_of src Isa.Arch.X86 Minic.Optlevel.O1 in
  let flag = int_of_float (get img 2 "fun_flag") in
  Alcotest.(check bool) "noret bit" true
    (flag land Staticfeat.Extract.fun_flag_noret <> 0);
  Alcotest.(check bool) "fcb_noret counted" true (get img 2 "fcb_noret" >= 1.0)

let fp_features () =
  let img = image_of src Isa.Arch.X86 Minic.Optlevel.O1 in
  Alcotest.(check bool) "float arithmetic counted" true
    (get img 3 "sum_arith_fp_b" > 0.0);
  Alcotest.(check (float 0.0)) "looper has no fp" 0.0 (get img 0 "sum_arith_fp_b")

let o0_has_larger_frame () =
  let o0 = image_of src Isa.Arch.X86 Minic.Optlevel.O0 in
  let o2 = image_of src Isa.Arch.X86 Minic.Optlevel.O2 in
  Alcotest.(check bool) "O0 locals bigger" true
    (get o0 0 "size_local" > get o2 0 "size_local")

let size_matches_listing () =
  let img = image_of src Isa.Arch.Arm32 Minic.Optlevel.O2 in
  let listing = Loader.Image.disassemble img 0 in
  Alcotest.(check (float 0.0)) "size_fun" (float_of_int listing.Isa.Disasm.size)
    (get img 0 "size_fun");
  Alcotest.(check (float 0.0)) "num_inst"
    (float_of_int (Array.length listing.Isa.Disasm.instrs))
    (get img 0 "num_inst")

let cache_matches_direct () =
  let img = image_of src Isa.Arch.Arm64 Minic.Optlevel.O2 in
  Staticfeat.Cache.clear ();
  let n = Loader.Image.function_count img in
  let direct = Array.init n (fun i -> Staticfeat.Extract.of_function img i) in
  let cached = Staticfeat.Cache.features img in
  Alcotest.(check int) "table length" n (Array.length cached);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "function %d identical" i)
        true (v = cached.(i)))
    direct;
  (* a hit serves the same table without re-extracting *)
  Staticfeat.Extract.reset_extraction_count ();
  let again = Staticfeat.Cache.features img in
  Alcotest.(check bool) "same table" true (again == cached);
  Alcotest.(check int) "no re-extraction" 0
    (Staticfeat.Extract.extraction_count ());
  Alcotest.(check bool) "single-function view" true
    (Staticfeat.Cache.feature img 1 == cached.(1))

let of_image_matches_of_function () =
  (* parallel whole-image extraction equals the per-function loop *)
  let img = image_of src Isa.Arch.X86 Minic.Optlevel.O1 in
  let whole = Staticfeat.Extract.of_image img in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "function %d" i)
        true
        (v = Staticfeat.Extract.of_function img i))
    whole

let cache_failure_releases_and_recovers () =
  (* a fresh image so no other suite's cache entry interferes *)
  let img = image_of src Isa.Arch.Amd64 Minic.Optlevel.O3 in
  Staticfeat.Cache.clear ();
  Robust.Inject.arm "staticfeat.extract:1.0:9";
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Staticfeat.Cache.clear ())
    (fun () ->
      (* the failing attempt reports itself... *)
      (match Staticfeat.Cache.features_result img with
      | Error (Robust.Fault.Extract_failure _) -> ()
      | Error f ->
        Alcotest.failf "unexpected fault %s" (Robust.Fault.to_string f)
      | Ok _ -> Alcotest.fail "armed extraction succeeded");
      (* ...and poisons the entry: later reads fail fast instead of
         wedging on Pending or silently re-extracting *)
      (match Staticfeat.Cache.features_result img with
      | Error (Robust.Fault.Cache_poisoned _) -> ()
      | _ -> Alcotest.fail "expected a poisoned entry");
      (* concurrent readers across pool domains are all released *)
      Test_parallel.with_domains 4 (fun () ->
          let outs =
            Parallel.Pool.map_array ~chunk:1
              (fun _ ->
                match Staticfeat.Cache.features_result img with
                | Error _ -> true
                | Ok _ -> false)
              (Array.init 8 Fun.id)
          in
          Alcotest.(check bool) "every reader fails cleanly" true
            (Array.for_all Fun.id outs));
      (* recovery is explicit: disarm + invalidate, the next read
         re-extracts *)
      Robust.Inject.disarm ();
      Staticfeat.Cache.invalidate img;
      match Staticfeat.Cache.features_result img with
      | Ok v ->
        Alcotest.(check int) "recovered table"
          (Loader.Image.function_count img)
          (Array.length v)
      | Error f -> Alcotest.failf "recovery failed: %s" (Robust.Fault.to_string f))

let cache_raising_extractor_poisons () =
  (* a genuinely raising extractor (garbage function bytes make the
     disassembler raise): the exception is wrapped into a fault, waiters
     are released, and the entry fails fast afterwards *)
  let base = image_of src Isa.Arch.Arm64 Minic.Optlevel.O1 in
  let broken =
    {
      base with
      Loader.Image.name = "broken-extractor";
      functions = [| Bytes.of_string "\xff\xfe\xfd\xfc\xfb\xfa" |];
      symtab = None;
    }
  in
  Staticfeat.Cache.clear ();
  (match Staticfeat.Cache.features_result broken with
  | Error (Robust.Fault.Worker_crash _) -> ()
  | Error f -> Alcotest.failf "unexpected fault %s" (Robust.Fault.to_string f)
  | Ok _ -> Alcotest.fail "garbage function bytes extracted");
  (match Staticfeat.Cache.features_result broken with
  | Error (Robust.Fault.Cache_poisoned _) -> ()
  | _ -> Alcotest.fail "expected a poisoned entry");
  (* the raising path never wedged the lock: other images still work *)
  let ok = image_of src Isa.Arch.Arm64 Minic.Optlevel.O1 in
  (match Staticfeat.Cache.features_result ok with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "healthy image blocked: %s" (Robust.Fault.to_string f));
  Staticfeat.Cache.clear ()

(* Property: every feature is finite and non-negative except none. *)
let features_finite =
  QCheck.Test.make ~name:"features-finite" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let prog =
        Corpus.Genlib.generate ~seed:(Int64.of_int seed) ~index:0 ~nfuncs:8
      in
      let img = Minic.Compiler.compile ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O1 prog in
      let ok = ref true in
      for i = 0 to Loader.Image.function_count img - 1 do
        Array.iter
          (fun x -> if not (Float.is_finite x) then ok := false)
          (Staticfeat.Extract.of_function img i)
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "feature-count" `Quick feature_count;
    Alcotest.test_case "names-unique" `Quick names_unique;
    Alcotest.test_case "looper-features" `Quick looper_features;
    Alcotest.test_case "leaf-flag" `Quick leaf_flag;
    Alcotest.test_case "noret-flag" `Quick noret_flag;
    Alcotest.test_case "fp-features" `Quick fp_features;
    Alcotest.test_case "o0-frame" `Quick o0_has_larger_frame;
    Alcotest.test_case "size-matches-listing" `Quick size_matches_listing;
    Alcotest.test_case "cache-matches-direct" `Quick cache_matches_direct;
    Alcotest.test_case "of-image-parallel" `Quick of_image_matches_of_function;
    Alcotest.test_case "cache-failure-recovery" `Quick
      cache_failure_releases_and_recovers;
    Alcotest.test_case "cache-raising-extractor" `Quick
      cache_raising_extractor_poisons;
    QCheck_alcotest.to_alcotest features_finite;
  ]
