(* VM corner cases: memory regions, MMIO determinism, global patches,
   stdin, call depth, traced runs. *)

let compile src = Minic.Compiler.compile_source ~arch:Isa.Arch.Arm64 ~opt:Minic.Optlevel.O1 src

let mmio_region_counted () =
  let src =
    {|
lib mm;
fn poke(x: int): int {
  var reg: word* = as_wptr(1073741824);
  return x ^ reg[0] ^ reg[1];
}
|}
  in
  let img = compile src in
  let r = Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.Vint 5L ]) in
  (match r.Vm.Exec.outcome with
  | Vm.Exec.Finished _ -> ()
  | other -> Alcotest.failf "mmio read failed: %s" (Vm.Exec.outcome_to_string other));
  let idx name = Option.get (Vm.Dynfeat.index name) in
  Alcotest.(check (float 0.0)) "two others accesses" 2.0
    r.Vm.Exec.features.(idx "mem_others_access");
  (* deterministic across runs with the same seed *)
  let r2 = Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.Vint 5L ]) in
  Alcotest.(check bool) "deterministic mmio" true
    (r.Vm.Exec.outcome = r2.Vm.Exec.outcome);
  (* different seed, different window content *)
  let r3 = Vm.Exec.run img 0 (Vm.Env.make ~seed:99L [ Vm.Env.Vint 5L ]) in
  Alcotest.(check bool) "seeded mmio differs" true
    (r.Vm.Exec.outcome <> r3.Vm.Exec.outcome)

let region_classification () =
  let src =
    {|
lib rg;
global g: int = 1;
fn touch(buf: byte*): int {
  var local: word[2];
  local[0] = 5;
  var h: word* = alloc_words(2);
  h[0] = 7;
  g = g + 1;
  return local[0] + h[0] + buf[0] + g;
}
|}
  in
  let img = compile src in
  let r = Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.buf_of_string "A" ]) in
  let idx name = Option.get (Vm.Dynfeat.index name) in
  let f = r.Vm.Exec.features in
  Alcotest.(check bool) "stack touched" true (f.(idx "mem_stack_access") > 0.0);
  Alcotest.(check bool) "heap touched" true (f.(idx "mem_heap_access") > 0.0);
  Alcotest.(check bool) "lib (globals) touched" true (f.(idx "mem_lib_access") > 0.0);
  Alcotest.(check bool) "anon (input buffer) touched" true
    (f.(idx "mem_anon_access") > 0.0)

let global_patch_applied () =
  let src = {|
lib gp;
global knob: int = 10;
fn get(): int { return knob; }
|} in
  let img = compile src in
  let plain = Vm.Exec.run img 0 (Vm.Env.make []) in
  (match plain.Vm.Exec.outcome with
  | Vm.Exec.Finished 10L -> ()
  | other -> Alcotest.failf "expected 10, got %s" (Vm.Exec.outcome_to_string other));
  (* patch the global through the environment *)
  let addr =
    match img.Loader.Image.symtab with
    | Some sym -> Option.get (Loader.Symtab.global_addr sym "knob")
    | None -> Alcotest.fail "missing symtab"
  in
  let patch = Bytes.create 8 in
  Bytes.set_int64_le patch 0 77L;
  let env = Vm.Env.make ~global_patches:[ (addr, patch) ] [] in
  match (Vm.Exec.run img 0 env).Vm.Exec.outcome with
  | Vm.Exec.Finished 77L -> ()
  | other -> Alcotest.failf "expected 77, got %s" (Vm.Exec.outcome_to_string other)

let stdin_consumed () =
  let src =
    {|
lib si;
fn slurp(): int {
  var buf: byte[16];
  var n: int = sys_read(0, buf, 16);
  var acc: int = 0;
  for (k = 0; k < n; k = k + 1) {
    acc = acc + buf[k];
  }
  return acc;
}
|}
  in
  let img = compile src in
  let env = Vm.Env.make ~stdin:(Bytes.of_string "AB") [] in
  match (Vm.Exec.run img 0 env).Vm.Exec.outcome with
  | Vm.Exec.Finished v -> Alcotest.(check int64) "sum of AB" 131L v
  | other -> Alcotest.failf "unexpected %s" (Vm.Exec.outcome_to_string other)

let deep_recursion_trapped () =
  let src = {|
lib dr;
fn dig(n: int): int { return dig(n + 1); }
|} in
  let img = compile src in
  match (Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.Vint 0L ])).Vm.Exec.outcome with
  | Vm.Exec.Crashed Vm.Machine.Call_depth_exceeded -> ()
  | other -> Alcotest.failf "expected depth trap, got %s" (Vm.Exec.outcome_to_string other)

let traced_run () =
  let src = {|
lib tr;
fn three(): int { return 1 + 2; }
|} in
  let img = compile src in
  let result, lines = Vm.Exec.run_traced img 0 (Vm.Env.make []) in
  Alcotest.(check int) "one line per instruction" result.Vm.Exec.instructions
    (List.length lines);
  Alcotest.(check bool) "trace mentions ret" true
    (List.exists (fun l -> String.length l >= 3 && String.sub l (String.length l - 3) 3 = "ret") lines);
  (* cap respected *)
  let _, capped = Vm.Exec.run_traced ~limit:2 img 0 (Vm.Env.make []) in
  Alcotest.(check int) "capped" 2 (List.length capped)

let null_pointer_faults () =
  let src = {|
lib np;
fn deref(p: word*): int { return p[0]; }
|} in
  let img = compile src in
  match (Vm.Exec.run img 0 (Vm.Env.make [ Vm.Env.Vint 0L ])).Vm.Exec.outcome with
  | Vm.Exec.Crashed (Vm.Machine.Mem_fault 0L) -> ()
  | other -> Alcotest.failf "expected null fault, got %s" (Vm.Exec.outcome_to_string other)

(* Guest-controlled sizes must trap or error-return, never escape as a
   raw OCaml exception (Invalid_argument from Array.init/Bytes.sub,
   overflow in the malloc alignment arithmetic). *)

let guest_sizes_src =
  {|
lib gz;
fn badmove(n: int): int {
  var b: byte[16];
  memmove(b, b, n);
  return 7;
}
fn badwrite(n: int): int {
  var b: byte[8];
  return sys_write(1, b, n);
}
fn badread(n: int): int {
  var b: byte[8];
  return sys_read(0, b, n);
}
fn badalloc(n: int): int {
  var p: byte* = alloc_bytes(n);
  p[0] = 1;
  return 1;
}
|}

let run_guest fidx n =
  let img = compile guest_sizes_src in
  (Vm.Exec.run img fidx (Vm.Env.make [ Vm.Env.Vint n ])).Vm.Exec.outcome

let memmove_bad_length_traps () =
  (match run_guest 0 (-1L) with
  | Vm.Exec.Crashed (Vm.Machine.Import_error _) -> ()
  | other ->
    Alcotest.failf "memmove(-1): expected import-error trap, got %s"
      (Vm.Exec.outcome_to_string other));
  (match run_guest 0 (Int64.of_int (1 lsl 30)) with
  | Vm.Exec.Crashed (Vm.Machine.Import_error _) -> ()
  | other ->
    Alcotest.failf "memmove(2^30): expected import-error trap, got %s"
      (Vm.Exec.outcome_to_string other));
  (* a sane length still works *)
  match run_guest 0 8L with
  | Vm.Exec.Finished 7L -> ()
  | other ->
    Alcotest.failf "memmove(8) broken: %s" (Vm.Exec.outcome_to_string other)

let syscall_bad_lengths_error () =
  (* write with a negative length is an error return, not a crash *)
  (match run_guest 1 (-5L) with
  | Vm.Exec.Finished v -> Alcotest.(check int64) "write(-5) returns -1" (-1L) v
  | other ->
    Alcotest.failf "sys_write(-5): %s" (Vm.Exec.outcome_to_string other));
  (* read with a negative length reads nothing *)
  match run_guest 2 (-5L) with
  | Vm.Exec.Finished 0L -> ()
  | other -> Alcotest.failf "sys_read(-5): %s" (Vm.Exec.outcome_to_string other)

let malloc_bad_size_traps () =
  (match run_guest 3 (Int64.of_int max_int) with
  | Vm.Exec.Crashed (Vm.Machine.Import_error _) -> ()
  | other ->
    Alcotest.failf "malloc(max_int): expected import-error trap, got %s"
      (Vm.Exec.outcome_to_string other));
  (match run_guest 3 (-1L) with
  | Vm.Exec.Crashed (Vm.Machine.Import_error _) -> ()
  | other ->
    Alcotest.failf "malloc(-1): expected import-error trap, got %s"
      (Vm.Exec.outcome_to_string other));
  match run_guest 3 64L with
  | Vm.Exec.Finished 1L -> ()
  | other ->
    Alcotest.failf "malloc(64) broken: %s" (Vm.Exec.outcome_to_string other)

let suite =
  [
    Alcotest.test_case "mmio-region" `Quick mmio_region_counted;
    Alcotest.test_case "region-classification" `Quick region_classification;
    Alcotest.test_case "global-patch" `Quick global_patch_applied;
    Alcotest.test_case "stdin" `Quick stdin_consumed;
    Alcotest.test_case "deep-recursion" `Quick deep_recursion_trapped;
    Alcotest.test_case "traced-run" `Quick traced_run;
    Alcotest.test_case "null-fault" `Quick null_pointer_faults;
    Alcotest.test_case "memmove-bad-length" `Quick memmove_bad_length_traps;
    Alcotest.test_case "syscall-bad-lengths" `Quick syscall_bad_lengths_error;
    Alcotest.test_case "malloc-bad-size" `Quick malloc_bad_size_traps;
  ]
