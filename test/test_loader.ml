(* SFF image/firmware serialisation round trips, stripping, export. *)

let sample_image () =
  let src =
    {|
lib ldr;
global g: int = 9;
fn leaf(x: int): int { return x * 2; }
fn caller(x: int): int { return leaf(x) + g; }
fn noisy(s: byte*): int { print_str(s); return strlen(s); }
|}
  in
  Minic.Compiler.compile_source ~arch:Isa.Arch.Amd64 ~opt:Minic.Optlevel.O1 src

let image_roundtrip () =
  let img = sample_image () in
  let bytes = Loader.Sff.image_to_bytes img in
  let back = Loader.Sff.image_of_bytes bytes in
  Alcotest.(check string) "name" img.Loader.Image.name back.Loader.Image.name;
  Alcotest.(check int) "functions"
    (Loader.Image.function_count img)
    (Loader.Image.function_count back);
  Alcotest.(check bool) "identical bytes" true
    (Loader.Sff.image_to_bytes back = bytes);
  Alcotest.(check (option string)) "symtab survives" (Some "leaf")
    (Loader.Image.function_name back 0)

let stripped_roundtrip () =
  let img = Loader.Image.strip (sample_image ()) in
  let back = Loader.Sff.image_of_bytes (Loader.Sff.image_to_bytes img) in
  Alcotest.(check bool) "still stripped" true (Loader.Image.is_stripped back)

let corrupt_rejected () =
  (match Loader.Sff.image_of_bytes (Bytes.of_string "XXXX") with
  | exception Loader.Sff.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let good = Loader.Sff.image_to_bytes (sample_image ()) in
  let truncated = Bytes.sub good 0 (Bytes.length good / 2) in
  match Loader.Sff.image_of_bytes truncated with
  | exception Loader.Sff.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated image accepted"

let firmware_roundtrip () =
  let fw =
    {
      Loader.Firmware.device = "testdev";
      os_version = "1.0";
      security_patch = "2018-05";
      images = [| sample_image (); Loader.Image.strip (sample_image ()) |];
    }
  in
  let back = Loader.Firmware.of_bytes (Loader.Firmware.to_bytes fw) in
  Alcotest.(check string) "device" fw.Loader.Firmware.device
    back.Loader.Firmware.device;
  Alcotest.(check int) "images" 2 (Array.length back.Loader.Firmware.images);
  Alcotest.(check int) "functions" (Loader.Firmware.total_functions fw)
    (Loader.Firmware.total_functions back)

let firmware_file_io () =
  let fw =
    {
      Loader.Firmware.device = "filedev";
      os_version = "1.0";
      security_patch = "none";
      images = [| sample_image () |];
    }
  in
  let path = Filename.temp_file "patchecko" ".sfw" in
  Loader.Firmware.write path fw;
  let back = Loader.Firmware.read path in
  Sys.remove path;
  Alcotest.(check string) "device" "filedev" back.Loader.Firmware.device

let export_closure () =
  let img = sample_image () in
  let caller_idx =
    match Loader.Image.find_function img "caller" with
    | Some i -> i
    | None -> Alcotest.fail "caller missing"
  in
  let exported = Loader.Export.extract img caller_idx in
  (* caller + leaf *)
  Alcotest.(check int) "closure size" 2
    (Loader.Image.function_count exported.Loader.Export.image);
  Alcotest.(check int) "entry" 0 (Loader.Export.entry exported);
  (* the export still runs and computes the same value *)
  let env = Vm.Env.make [ Vm.Env.Vint 5L ] in
  let direct = Vm.Exec.run img caller_idx env in
  let via_export = Vm.Exec.run exported.Loader.Export.image 0 env in
  match (direct.Vm.Exec.outcome, via_export.Vm.Exec.outcome) with
  | Vm.Exec.Finished a, Vm.Exec.Finished b ->
    Alcotest.(check int64) "same result" a b
  | a, b ->
    Alcotest.failf "unexpected outcomes %s / %s"
      (Vm.Exec.outcome_to_string a) (Vm.Exec.outcome_to_string b)

let export_leaf_only () =
  let img = sample_image () in
  let exported = Loader.Export.extract img 0 in
  Alcotest.(check int) "leaf exports alone" 1
    (Loader.Image.function_count exported.Loader.Export.image)

let is_string_addr () =
  let img = sample_image () in
  (* the compiler interned no string literal here except none; check a
     clearly-out-of-range address *)
  Alcotest.(check bool) "OOB is not string" false
    (Loader.Image.is_string_addr img 1L)

let huge_count_rejected () =
  (* magic, empty name, arch, data_base, empty data, then a string-range
     count far beyond the bytes remaining: the reader must fail cleanly
     instead of attempting the allocation *)
  let buf = Buffer.create 32 in
  Buffer.add_string buf "SFF1";
  Buffer.add_string buf "\x00\x00\x00\x00" (* name len 0 *);
  Buffer.add_char buf '\x02' (* Arm32 *);
  Buffer.add_string buf (String.make 8 '\x00') (* data_base *);
  Buffer.add_string buf "\x00\x00\x00\x00" (* data len 0 *);
  Buffer.add_string buf "\xff\xff\xff\x7f" (* nstr = 0x7fffffff *);
  match Loader.Sff.image_of_bytes (Buffer.to_bytes buf) with
  | exception Loader.Sff.Corrupt msg ->
    Alcotest.(check bool)
      ("count cap mentioned: " ^ msg)
      true
      (String.length msg > 0)
  | _ -> Alcotest.fail "implausible element count accepted"

let result_api () =
  let good = Loader.Sff.image_to_bytes (sample_image ()) in
  (match Loader.Sff.image_of_bytes_result good with
  | Ok img ->
    Alcotest.(check int) "functions" 3 (Loader.Image.function_count img)
  | Error f -> Alcotest.failf "good image rejected: %s" (Robust.Fault.to_string f));
  (match Loader.Sff.image_of_bytes_result (Bytes.of_string "garbage!") with
  | Error (Robust.Fault.Malformed_image _) -> ()
  | Error f -> Alcotest.failf "unexpected fault %s" (Robust.Fault.to_string f)
  | Ok _ -> Alcotest.fail "garbage accepted");
  let fw =
    {
      Loader.Firmware.device = "resdev";
      os_version = "1";
      security_patch = "none";
      images = [| sample_image () |];
    }
  in
  (match Loader.Firmware.of_bytes_result (Loader.Firmware.to_bytes fw) with
  | Ok back ->
    Alcotest.(check string) "device" "resdev" back.Loader.Firmware.device
  | Error f -> Alcotest.failf "good firmware rejected: %s" (Robust.Fault.to_string f));
  (match Loader.Firmware.of_bytes_result (Bytes.of_string "SFW1oops") with
  | Error (Robust.Fault.Malformed_image _) -> ()
  | _ -> Alcotest.fail "corrupt firmware not typed");
  match Loader.Firmware.read_result "/nonexistent/patchecko.sfw" with
  | Error (Robust.Fault.Malformed_image _) -> ()
  | _ -> Alcotest.fail "missing file not typed"

let suite =
  [
    Alcotest.test_case "image-roundtrip" `Quick image_roundtrip;
    Alcotest.test_case "stripped-roundtrip" `Quick stripped_roundtrip;
    Alcotest.test_case "corrupt-rejected" `Quick corrupt_rejected;
    Alcotest.test_case "firmware-roundtrip" `Quick firmware_roundtrip;
    Alcotest.test_case "firmware-file-io" `Quick firmware_file_io;
    Alcotest.test_case "export-closure" `Quick export_closure;
    Alcotest.test_case "export-leaf-only" `Quick export_leaf_only;
    Alcotest.test_case "is-string-addr" `Quick is_string_addr;
    Alcotest.test_case "huge-count-rejected" `Quick huge_count_rejected;
    Alcotest.test_case "result-api" `Quick result_api;
  ]

(* Property: every compiled corpus library round-trips through SFF
   byte-exactly, stripped or not. *)
let sff_roundtrip_property =
  QCheck.Test.make ~name:"sff-roundtrip-random-libraries" ~count:12
    QCheck.(pair (int_range 0 10_000) bool)
    (fun (seed, strip) ->
      let prog =
        Corpus.Genlib.generate ~seed:(Int64.of_int seed) ~index:0 ~nfuncs:10
      in
      let img =
        Minic.Compiler.compile ~arch:Isa.Arch.Arm32 ~opt:Minic.Optlevel.O2 prog
      in
      let img = if strip then Loader.Image.strip img else img in
      let bytes = Loader.Sff.image_to_bytes img in
      let back = Loader.Sff.image_of_bytes bytes in
      Loader.Sff.image_to_bytes back = bytes
      && Loader.Verify.check back = [])

(* Property: no corruption of a valid image or firmware escapes the
   result-typed decode boundary as a raw exception — truncation and byte
   flips either still decode or come back as [Error _]. *)
let corruption_never_escapes_property =
  let good_image = lazy (Loader.Sff.image_to_bytes (sample_image ())) in
  let good_firmware =
    lazy
      (Loader.Firmware.to_bytes
         {
           Loader.Firmware.device = "propdev";
           os_version = "1";
           security_patch = "none";
           images = [| sample_image () |];
         })
  in
  QCheck.Test.make ~name:"corruption-never-escapes" ~count:120
    QCheck.(quad (int_range 0 10_000) (int_range 0 10_000) (int_range 0 255) bool)
    (fun (cut, at, v, firmware) ->
      let good = Lazy.force (if firmware then good_firmware else good_image) in
      let b = Bytes.sub good 0 (cut mod (Bytes.length good + 1)) in
      if Bytes.length b > 0 then Bytes.set b (at mod Bytes.length b) (Char.chr v);
      if firmware then
        match Loader.Firmware.of_bytes_result b with Ok _ | Error _ -> true
      else
        match Loader.Sff.image_of_bytes_result b with Ok _ | Error _ -> true)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest sff_roundtrip_property;
      QCheck_alcotest.to_alcotest corruption_never_escapes_property;
    ]
