(* Fault injection, supervision, and the chaos integration scan:
   deterministic draws, bounded escalated retry, and byte-identical
   (findings, ledger) reports across domain counts under armed faults. *)

let with_armed spec f =
  Robust.Inject.arm spec;
  Fun.protect ~finally:Robust.Inject.disarm f

(* --- Inject ----------------------------------------------------------- *)

let spec_parsing () =
  Alcotest.(check (list string))
    "instrumented sites"
    [ "loader.decode"; "staticfeat.extract"; "nn.score"; "pool.worker"; "vm.step" ]
    Robust.Inject.sites;
  with_armed "vm.step:0.5:7,all:0.01:3" (fun () ->
      Alcotest.(check bool) "armed" true (Robust.Inject.armed ()));
  Alcotest.(check bool) "disarmed" false (Robust.Inject.armed ());
  let rejected spec =
    match Robust.Inject.arm spec with
    | () ->
      Robust.Inject.disarm ();
      Alcotest.failf "accepted malformed spec %S" spec
    | exception Invalid_argument _ -> ()
  in
  rejected "bogus";
  rejected "vm.step:2.0:1";
  rejected "vm.step:0.5";
  rejected "nosuchsite:0.5:1"

let draws () =
  Array.init 2000 (fun i ->
      Robust.Inject.fire ~site:"vm.step" ~key:(string_of_int i) () <> None)

let fire_deterministic () =
  let a = with_armed "vm.step:0.5:42" draws in
  let b = with_armed "vm.step:0.5:42" draws in
  Alcotest.(check bool) "same spec, same draws" true (a = b);
  let fired = Array.fold_left (fun n x -> if x then n + 1 else n) 0 a in
  Alcotest.(check bool) "roughly half fire" true (fired > 800 && fired < 1200);
  let c = with_armed "vm.step:0.5:43" draws in
  Alcotest.(check bool) "different seed, different draws" true (a <> c);
  let none = with_armed "nn.score:1.0:42" draws in
  Alcotest.(check bool) "other site never fires" true
    (Array.for_all not none);
  let all = with_armed "all:1.0:42" draws in
  Alcotest.(check bool) "rate 1 always fires" true (Array.for_all Fun.id all)

let fire_parallel_matches_sequential () =
  (* the draw is a pure hash: computing it on pool domains changes
     nothing *)
  with_armed "vm.step:0.5:42" (fun () ->
      let seq = draws () in
      Fixtures.with_domains 4 (fun () ->
          let par =
            Parallel.Pool.map_array ~chunk:64
              (fun i ->
                Robust.Inject.fire ~site:"vm.step" ~key:(string_of_int i) ()
                <> None)
              (Array.init 2000 Fun.id)
          in
          Alcotest.(check bool) "parallel draws identical" true (par = seq)))

let context_and_suspend () =
  with_armed "vm.step:0.5:42" (fun () ->
      let under ctx =
        Robust.Inject.with_context ctx draws
      in
      Alcotest.(check bool) "context re-rolls draws" true
        (under "cell#1" <> under "cell#2");
      let no_ctx =
        Robust.Inject.with_context "cell#1" (fun () ->
            Array.init 2000 (fun i ->
                Robust.Inject.fire ~use_context:false ~site:"vm.step"
                  ~key:(string_of_int i) ()
                <> None))
      in
      Alcotest.(check bool) "use_context:false ignores context" true
        (no_ctx = draws ());
      let suspended = Robust.Inject.suspend draws in
      Alcotest.(check bool) "suspended never fires" true
        (Array.for_all not suspended))

(* --- Supervisor ------------------------------------------------------- *)

let supervisor_retries_and_recovers () =
  let o =
    Robust.Supervisor.run ~key:"t" (fun esc ->
        if esc.Robust.Supervisor.attempt < 2 then
          raise
            (Robust.Fault.Fault
               (Robust.Fault.Vm_trap { site = "vm.step"; detail = "synthetic" }));
        42)
  in
  Alcotest.(check bool) "recovered" true (o.Robust.Supervisor.result = Ok 42);
  Alcotest.(check int) "two attempts" 2 o.Robust.Supervisor.attempts;
  Alcotest.(check int) "one fault recorded" 1
    (List.length o.Robust.Supervisor.faults)

let supervisor_escalates () =
  let seen = ref [] in
  let o =
    Robust.Supervisor.run ~key:"t" (fun esc ->
        seen := (esc.Robust.Supervisor.fuel_factor,
                 esc.Robust.Supervisor.refresh_cache) :: !seen;
        raise
          (Robust.Fault.Fault
             (if esc.Robust.Supervisor.attempt = 1 then
                Robust.Fault.Fuel_exhausted
                  { site = "vm.step"; detail = "synthetic" }
              else
                Robust.Fault.Extract_failure
                  { site = "staticfeat.extract"; detail = "synthetic" })))
  in
  (match o.Robust.Supervisor.result with
  | Error (Robust.Fault.Extract_failure _) -> ()
  | _ -> Alcotest.fail "expected the last fault");
  Alcotest.(check int) "exhausts retries" 3 o.Robust.Supervisor.attempts;
  Alcotest.(check (list (pair int bool)))
    "fuel x4 after Fuel_exhausted, cache refresh after Extract_failure"
    [ (1, false); (4, false); (4, true) ]
    (List.rev !seen)

let supervisor_permanent_gives_up () =
  let calls = ref 0 in
  let o =
    Robust.Supervisor.run ~max_retries:5 ~key:"t" (fun _ ->
        incr calls;
        raise
          (Robust.Fault.Fault
             (Robust.Fault.Malformed_image
                { site = "loader.decode"; detail = "synthetic" })))
  in
  Alcotest.(check int) "no retry on permanent fault" 1 !calls;
  Alcotest.(check bool) "failed" true
    (match o.Robust.Supervisor.result with Error _ -> true | Ok _ -> false)

let supervisor_wraps_foreign_exceptions () =
  let o =
    Robust.Supervisor.run ~key:"t" (fun esc ->
        if esc.Robust.Supervisor.attempt < 2 then failwith "zap";
        "ok")
  in
  Alcotest.(check bool) "recovered" true (o.Robust.Supervisor.result = Ok "ok");
  match o.Robust.Supervisor.faults with
  | [ Robust.Fault.Worker_crash _ ] -> ()
  | _ -> Alcotest.fail "expected one wrapped Worker_crash"

(* --- pool map_array_result ------------------------------------------- *)

let map_array_result_isolates () =
  Fixtures.with_domains 4 (fun () ->
      let out =
        Parallel.Pool.map_array_result ~chunk:1
          (fun x -> if x = 3 then failwith "boom" else 2 * x)
          (Array.init 8 Fun.id)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "value" (2 * i) v
          | Error (Robust.Fault.Worker_crash _) when i = 3 -> ()
          | Error f ->
            Alcotest.failf "item %d: unexpected %s" i (Robust.Fault.to_string f))
        out;
      with_armed "pool.worker:1.0:1" (fun () ->
          let out =
            Parallel.Pool.map_array_result ~chunk:1 Fun.id (Array.init 6 Fun.id)
          in
          Alcotest.(check bool) "every worker injected" true
            (Array.for_all (function Error _ -> true | Ok _ -> false) out)))

(* --- the chaos integration scan --------------------------------------- *)

(* fixture building must be invisible to the injector: chaos only hits
   the scans under test *)
let fixture () =
  Robust.Inject.suspend (fun () ->
      let _entry, db, fw, classifier = Fixtures.scanner_fixture () in
      (db, fw, classifier))

let scan ~db ~fw ~classifier domains =
  Fixtures.with_domains domains (fun () ->
      Staticfeat.Cache.clear ();
      Patchecko.Scanner.scan_firmware ~dyn_config:Fixtures.dyn_config
        ~max_distance:10.0 ~classifier ~db fw)

let chaos_scan_deterministic () =
  let db, fw, classifier = fixture () in
  let baseline = scan ~db ~fw ~classifier 1 in
  Alcotest.(check (list string))
    "fault-free scan has an empty ledger" []
    (List.map Patchecko.Scanner.fault_record_to_string
       baseline.Patchecko.Scanner.ledger);
  (* pick the first seed whose 5%-everywhere run actually observes
     faults (deterministic, so the chosen seed is stable) *)
  let rec find_seed s =
    if s > 12 then Alcotest.fail "no seed produced a non-empty ledger"
    else
      let spec = Printf.sprintf "all:0.05:%d" s in
      let r = with_armed spec (fun () -> scan ~db ~fw ~classifier 1) in
      if r.Patchecko.Scanner.ledger <> [] then (spec, r) else find_seed (s + 1)
  in
  let spec, r1 = find_seed 1 in
  let r4 = with_armed spec (fun () -> scan ~db ~fw ~classifier 4) in
  Alcotest.(check string)
    "findings AND ledger byte-identical across domain counts"
    (Patchecko.Scanner.report_to_json r1)
    (Patchecko.Scanner.report_to_json r4);
  (* degradation is bounded: the armed scan never invents findings *)
  Alcotest.(check bool) "no invented findings" true
    (List.for_all
       (fun f -> List.mem f baseline.Patchecko.Scanner.findings)
       r1.Patchecko.Scanner.findings);
  Staticfeat.Cache.clear ()

let all_cells_lost_still_completes () =
  let db, fw, classifier = fixture () in
  let r = with_armed "pool.worker:1.0:1" (fun () -> scan ~db ~fw ~classifier 4) in
  Alcotest.(check int) "every cell failed" r.Patchecko.Scanner.cells
    r.Patchecko.Scanner.failed_cells;
  Alcotest.(check bool) "cells were attempted" true (r.Patchecko.Scanner.cells > 0);
  Alcotest.(check (list string)) "no findings" []
    (List.map Patchecko.Scanner.finding_to_string r.Patchecko.Scanner.findings);
  Alcotest.(check bool) "every loss is in the ledger" true
    (List.length r.Patchecko.Scanner.ledger >= r.Patchecko.Scanner.cells);
  Staticfeat.Cache.clear ()

let poisoned_cache_fails_fast_then_recovers () =
  let db, fw, classifier = fixture () in
  let r =
    with_armed "staticfeat.extract:1.0:3" (fun () -> scan ~db ~fw ~classifier 4)
  in
  (* the prefill exhausts its retries, every cell fails fast on the
     poisoned entries — but the scan still returns *)
  Alcotest.(check int) "every cell failed" r.Patchecko.Scanner.cells
    r.Patchecko.Scanner.failed_cells;
  Alcotest.(check bool) "prefill failures ledgered" true
    (List.exists
       (fun (rec_ : Patchecko.Scanner.fault_record) -> rec_.cve = "-")
       r.Patchecko.Scanner.ledger);
  Alcotest.(check bool) "cells report the poisoned cache" true
    (List.exists
       (fun (rec_ : Patchecko.Scanner.fault_record) ->
         match rec_.fault with
         | Robust.Fault.Cache_poisoned _ -> true
         | _ -> false)
       r.Patchecko.Scanner.ledger);
  (* disarm + clear: the same inputs scan cleanly again *)
  let clean = scan ~db ~fw ~classifier 4 in
  Alcotest.(check int) "no failed cells after recovery" 0
    clean.Patchecko.Scanner.failed_cells;
  Alcotest.(check bool) "findings are back" true
    (clean.Patchecko.Scanner.findings <> []);
  Staticfeat.Cache.clear ()

let suite =
  [
    Alcotest.test_case "spec-parsing" `Quick spec_parsing;
    Alcotest.test_case "fire-deterministic" `Quick fire_deterministic;
    Alcotest.test_case "fire-parallel" `Quick fire_parallel_matches_sequential;
    Alcotest.test_case "context-suspend" `Quick context_and_suspend;
    Alcotest.test_case "supervisor-retry" `Quick supervisor_retries_and_recovers;
    Alcotest.test_case "supervisor-escalation" `Quick supervisor_escalates;
    Alcotest.test_case "supervisor-permanent" `Quick supervisor_permanent_gives_up;
    Alcotest.test_case "supervisor-wraps" `Quick supervisor_wraps_foreign_exceptions;
    Alcotest.test_case "map-array-result" `Quick map_array_result_isolates;
    Alcotest.test_case "chaos-scan-deterministic" `Quick chaos_scan_deterministic;
    Alcotest.test_case "all-cells-lost" `Quick all_cells_lost_still_completes;
    Alcotest.test_case "poisoned-cache" `Quick poisoned_cache_fails_fast_then_recovers;
  ]
