(* The dataflow engine: solver fixpoint properties (qcheck), one unit
   test per abstract domain, the IR sanitizer against seeded miscompiles,
   and the binary bound checker against the CVE corpus. *)

module I = Analysis.Interval

let mk_fundef ?(nparams = 0) ?(param_vregs = []) ~nvregs blocks =
  {
    Minic.Ir.name = "t";
    nparams;
    param_vregs;
    nvregs;
    blocks = Array.of_list blocks;
    slot_sizes = [||];
  }

let block body term = { Minic.Ir.body; term }

(* --- interval domain --------------------------------------------------- *)

let interval_arith () =
  let check name expect got = Alcotest.(check string) name expect (I.to_string got) in
  check "add" "[3, 7]" (I.add (I.make 1L 2L) (I.make 2L 5L));
  check "sub" "[-4, 0]" (I.sub (I.make 1L 2L) (I.make 2L 5L));
  check "mul" "[-10, 15]" (I.mul (I.make (-2L) 3L) (I.make 1L 5L));
  check "join" "[1, 5]" (I.join (I.make 1L 2L) (I.make 2L 5L));
  check "meet" "[2, 2]" (I.meet (I.make 1L 2L) (I.make 2L 5L));
  Alcotest.(check bool) "meet empty" true (I.is_bot (I.meet (I.make 1L 2L) (I.make 3L 5L)));
  check "widen hi" "[1, +inf]" (I.widen (I.make 1L 2L) (I.make 1L 3L));
  check "widen lo" "[-inf, 2]" (I.widen (I.make 1L 2L) (I.make 0L 2L));
  Alcotest.(check bool) "rem nonneg" false
    (I.may_be_negative (I.rem (I.make 0L 255L) (I.of_const 16L)));
  Alcotest.(check bool) "rem bounded" true
    (I.is_bounded_above (I.rem I.top (I.of_const 16L)))

let interval_refine () =
  let lt_a, lt_b = I.refine Isa.Cond.Lt (I.make 0L 100L) (I.make 0L 10L) in
  Alcotest.(check string) "lt narrows a" "[0, 9]" (I.to_string lt_a);
  Alcotest.(check string) "lt narrows b" "[1, 10]" (I.to_string lt_b);
  let ne_a, _ = I.refine Isa.Cond.Ne (I.make 0L 15L) (I.of_const 0L) in
  Alcotest.(check string) "ne excludes endpoint" "[1, 15]" (I.to_string ne_a);
  let eq_a, eq_b = I.refine Isa.Cond.Eq (I.make 0L 15L) (I.make 10L 20L) in
  Alcotest.(check string) "eq meets a" "[10, 15]" (I.to_string eq_a);
  Alcotest.(check string) "eq meets b" "[10, 15]" (I.to_string eq_b);
  let dead, _ = I.refine Isa.Cond.Gt (I.make 0L 5L) (I.of_const 9L) in
  Alcotest.(check bool) "gt contradiction" true (I.is_bot dead)

(* --- liveness ---------------------------------------------------------- *)

let liveness_basic () =
  (* v2 = v0 + v1; v3 = v2 + 1 (dead); ret v2 *)
  let f =
    mk_fundef ~nparams:2 ~param_vregs:[ 0; 1 ] ~nvregs:4
      [
        block
          [ Minic.Ir.Ibin (Add, 2, 0, Ovreg 1); Minic.Ir.Ibin (Add, 3, 2, Oimm 1L) ]
          (Minic.Ir.Tret (Some 2));
      ]
  in
  let live = Analysis.Liveness.analyze f in
  let module S = Analysis.Liveness.IntSet in
  Alcotest.(check bool) "params live on entry" true
    (S.mem 0 live.live_in.(0) && S.mem 1 live.live_in.(0));
  Alcotest.(check bool) "dead temp not live" false (S.mem 3 live.live_in.(0));
  Alcotest.(check (list (pair int int))) "dead store found" [ (0, 1) ]
    (Analysis.Liveness.dead_stores f live)

(* --- reaching definitions ---------------------------------------------- *)

let reachdef_basic () =
  let ok =
    mk_fundef ~nparams:1 ~param_vregs:[ 0 ] ~nvregs:2
      [
        block [ Minic.Ir.Ibin (Add, 1, 0, Oimm 1L) ] (Minic.Ir.Tret (Some 1));
      ]
  in
  Alcotest.(check int) "all uses reached" 0
    (List.length (Analysis.Reachdef.unreached_uses ok (Analysis.Reachdef.analyze ok)));
  let bad =
    mk_fundef ~nparams:0 ~param_vregs:[] ~nvregs:2
      [
        block [ Minic.Ir.Ibin (Add, 1, 0, Oimm 1L) ] (Minic.Ir.Tret (Some 1));
      ]
  in
  Alcotest.(check bool) "undefined use detected" true
    (Analysis.Reachdef.unreached_uses bad (Analysis.Reachdef.analyze bad) <> [])

(* --- constant propagation ---------------------------------------------- *)

let constprop_basic () =
  (* diamond: both arms assign v1 = 7 -> constant at the join;
     v2 differs per arm -> not constant *)
  let f =
    mk_fundef ~nparams:1 ~param_vregs:[ 0 ] ~nvregs:3
      [
        block [] (Minic.Ir.Tbr (Isa.Cond.Gt, 0, Oimm 0L, 1, 2));
        block
          [ Minic.Ir.Imov (1, Oimm 7L); Minic.Ir.Imov (2, Oimm 1L) ]
          (Minic.Ir.Tjmp 3);
        block
          [ Minic.Ir.Imov (1, Oimm 7L); Minic.Ir.Imov (2, Oimm 2L) ]
          (Minic.Ir.Tjmp 3);
        block [] (Minic.Ir.Tret (Some 1));
      ]
  in
  let cp = Analysis.Constprop.analyze f in
  Alcotest.(check (option int64)) "agreeing arms fold" (Some 7L)
    (Analysis.Constprop.constant_at_entry cp 3 1);
  Alcotest.(check (option int64)) "disagreeing arms do not" None
    (Analysis.Constprop.constant_at_entry cp 3 2)

(* --- interval analysis with branch refinement --------------------------- *)

let intanalysis_guard () =
  (* if v0 > 10 then v0 = 10; at the join v0 <= 10 *)
  let f =
    mk_fundef ~nparams:1 ~param_vregs:[ 0 ] ~nvregs:1
      [
        block [] (Minic.Ir.Tbr (Isa.Cond.Gt, 0, Oimm 10L, 1, 2));
        block [ Minic.Ir.Imov (0, Oimm 10L) ] (Minic.Ir.Tjmp 2);
        block [] (Minic.Ir.Tret (Some 0));
      ]
  in
  let iv = Analysis.Intanalysis.analyze f in
  let at_join = Analysis.Intanalysis.interval_at_entry iv 2 0 in
  Alcotest.(check bool) "clamped above" true
    (match at_join.I.hi with I.Fin h -> h <= 10L | _ -> false);
  (* loop: v0 = 0; while v0 < 8 do v0 = v0 + 1; counter stays bounded *)
  let loop =
    mk_fundef ~nvregs:1
      [
        block [ Minic.Ir.Imov (0, Oimm 0L) ] (Minic.Ir.Tjmp 1);
        block [] (Minic.Ir.Tbr (Isa.Cond.Lt, 0, Oimm 8L, 2, 3));
        block [ Minic.Ir.Ibin (Add, 0, 0, Oimm 1L) ] (Minic.Ir.Tjmp 1);
        block [] (Minic.Ir.Tret (Some 0));
      ]
  in
  let iv = Analysis.Intanalysis.analyze loop in
  let body = Analysis.Intanalysis.interval_at_entry iv 2 0 in
  Alcotest.(check string) "loop body counter" "[0, 7]" (I.to_string body);
  let exit_ = Analysis.Intanalysis.interval_at_entry iv 3 0 in
  Alcotest.(check bool) "exit counter >= 8" true
    (match exit_.I.lo with I.Fin l -> l >= 8L | _ -> false)

(* --- solver properties (qcheck) ----------------------------------------- *)

(* random directed graph: node 0 is the entry, arbitrary extra edges
   including retreating ones *)
let gen_graph =
  QCheck.Gen.(
    int_range 1 10 >>= fun n ->
    let edge = pair (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
    list_size (int_range 0 (3 * n)) edge >>= fun edges ->
    (* chain edges keep most nodes reachable *)
    let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
    return (n, List.sort_uniq compare (chain @ edges)))

let graph_of_edges (n, edges) =
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    edges;
  {
    Analysis.Dataflow.nnodes = n;
    succs = (fun i -> succs.(i));
    preds = (fun i -> preds.(i));
    entries = [ 0 ];
  }

module IntSet = Set.Make (Int)

module SetL = struct
  type t = IntSet.t

  let bottom = IntSet.empty
  let equal = IntSet.equal
  let join = IntSet.union
  let widen = IntSet.union
end

module SetSolver = Analysis.Dataflow.Make (SetL)

let prop_fixpoint_stable =
  QCheck.Test.make ~name:"solver-fixpoint-is-stable" ~count:100
    (QCheck.make gen_graph) (fun spec ->
      let g = graph_of_edges spec in
      let transfer b s = IntSet.add b s in
      let problem =
        {
          SetSolver.graph = g;
          direction = Analysis.Dataflow.Forward;
          init = IntSet.empty;
          transfer;
          refine = None;
        }
      in
      let sol = SetSolver.solve problem in
      (* re-applying one solver step to the solution changes nothing:
         output = transfer(input) and input absorbs the joined
         predecessor outputs *)
      let ok = ref true in
      for b = 0 to g.Analysis.Dataflow.nnodes - 1 do
        if not (SetL.equal sol.SetSolver.output.(b) (transfer b sol.SetSolver.input.(b)))
        then ok := false;
        let incoming =
          List.fold_left
            (fun acc p -> SetL.join acc sol.SetSolver.output.(p))
            (if b = 0 then IntSet.empty else SetL.bottom)
            (g.Analysis.Dataflow.preds b)
        in
        if not (SetL.equal sol.SetSolver.input.(b)
                  (SetL.join sol.SetSolver.input.(b) incoming))
        then ok := false
      done;
      (* determinism: solving again gives the identical solution *)
      let sol2 = SetSolver.solve problem in
      for b = 0 to g.Analysis.Dataflow.nnodes - 1 do
        if not (SetL.equal sol.SetSolver.input.(b) sol2.SetSolver.input.(b)) then
          ok := false
      done;
      !ok)

module ItvL = struct
  type t = I.t

  let bottom = I.bot
  let equal = I.equal
  let join = I.join
  let widen = I.widen
end

module ItvSolver = Analysis.Dataflow.Make (ItvL)

let prop_widening_terminates =
  QCheck.Test.make ~name:"solver-widening-terminates" ~count:100
    (QCheck.make gen_graph) (fun spec ->
      let g = graph_of_edges spec in
      (* an incrementing transfer would climb forever on any cycle
         without widening *)
      let transfer _ s = if I.is_bot s then s else I.add s (I.of_const 1L) in
      let sol =
        ItvSolver.solve
          {
            ItvSolver.graph = g;
            direction = Analysis.Dataflow.Forward;
            init = I.of_const 0L;
            transfer;
            refine = None;
          }
      in
      sol.ItvSolver.iterations < 1000 * g.Analysis.Dataflow.nnodes)

(* --- IR sanitizer -------------------------------------------------------- *)

let with_check f =
  let old = !Minic.Opt.check_hook in
  Minic.Opt.check_hook := (fun ~stage fn -> Analysis.Sanitize.check ~stage fn);
  Fun.protect ~finally:(fun () -> Minic.Opt.check_hook := old) f

let sanitize_clean_corpus () =
  (* the full optimisation pipeline at every level keeps the IR well
     formed: the hook runs after lowering and after every pass *)
  with_check (fun () ->
      let prog = Corpus.Genlib.generate ~seed:0xDA7AL ~index:0 ~nfuncs:10 in
      List.iter
        (fun opt ->
          ignore (Minic.Compiler.compile ~arch:Isa.Arch.Arm64 ~opt prog))
        Minic.Optlevel.all)

let expect_violation name f =
  match f () with
  | () -> Alcotest.failf "%s: sanitizer accepted broken IR" name
  | exception Analysis.Sanitize.Ir_violation _ -> ()

let sanitize_catches_dropped_def () =
  (* seeded miscompile: an overeager "DCE" deletes the definition of a
     vreg that is still used *)
  let f =
    mk_fundef ~nparams:2 ~param_vregs:[ 0; 1 ] ~nvregs:4
      [
        block
          [ Minic.Ir.Ibin (Add, 2, 0, Ovreg 1); Minic.Ir.Ibin (Add, 3, 2, Oimm 1L) ]
          (Minic.Ir.Tret (Some 3));
      ]
  in
  Analysis.Sanitize.check ~stage:"baseline" f;
  (* the injected bug *)
  f.Minic.Ir.blocks.(0).body <- List.tl f.Minic.Ir.blocks.(0).body;
  with_check (fun () ->
      expect_violation "dropped def" (fun () -> Minic.Opt.run_check "seeded-dce" f))

let sanitize_catches_bad_successor () =
  let f =
    mk_fundef ~nvregs:1
      [ block [ Minic.Ir.Imov (0, Oimm 0L) ] (Minic.Ir.Tjmp 7) ]
  in
  expect_violation "bad successor" (fun () ->
      Analysis.Sanitize.check ~stage:"seeded-simplify" f)

let sanitize_catches_bad_arity () =
  let f =
    mk_fundef ~nparams:1 ~param_vregs:[ 0 ] ~nvregs:1
      [
        block
          [ Minic.Ir.Icall (None, Cimport "memcpy", [ 0 ]) ]
          (Minic.Ir.Tret None);
      ]
  in
  expect_violation "import arity" (fun () ->
      Analysis.Sanitize.check ~stage:"seeded-inline" f)

(* --- binary bound checker ------------------------------------------------ *)

let cve_exn id =
  match Corpus.Cves.find id with
  | Some c -> c
  | None -> Alcotest.failf "unknown CVE %s" id

let signatures cve =
  let v = Corpus.Dataset.compile_cve cve ~patched:false in
  let p = Corpus.Dataset.compile_cve cve ~patched:true in
  (Analysis.Boundcheck.signature v 0, Analysis.Boundcheck.signature p 0)

let boundcheck_missing_bounds () =
  let sv, sp = signatures (cve_exn "CVE-2018-9451") in
  Alcotest.(check bool) "vulnerable raises oob alarms" true
    (sv.(Analysis.Boundcheck.class_index Analysis.Boundcheck.Oob_store) > 0);
  Alcotest.(check int) "patched build is clean" 0 (Analysis.Boundcheck.total sp)

let boundcheck_div_guard () =
  let sv, sp = signatures (cve_exn "CVE-2018-9345") in
  Alcotest.(check bool) "vulnerable raises div alarm" true
    (sv.(Analysis.Boundcheck.class_index Analysis.Boundcheck.Div_zero) > 0);
  Alcotest.(check int) "patched divisor proven nonzero" 0
    (sp.(Analysis.Boundcheck.class_index Analysis.Boundcheck.Div_zero))

let boundcheck_null_check () =
  let sv, sp = signatures (cve_exn "CVE-2018-9420") in
  Alcotest.(check bool) "vulnerable raises div alarm" true
    (Analysis.Boundcheck.total sv > 0);
  Alcotest.(check int) "patched guard kills it" 0 (Analysis.Boundcheck.total sp)

let boundcheck_majority () =
  (* the acceptance bar: strictly more alarms on the vulnerable build for
     a majority of the 25 pairs, and never the other way round *)
  let discriminated = ref 0 and inverted = ref 0 in
  List.iter
    (fun cve ->
      let sv, sp = signatures cve in
      let tv = Analysis.Boundcheck.total sv
      and tp = Analysis.Boundcheck.total sp in
      if tv > tp then incr discriminated else if tv < tp then incr inverted)
    Corpus.Cves.all;
  Alcotest.(check bool)
    (Printf.sprintf "majority discriminated (%d/25)" !discriminated)
    true
    (!discriminated > 12);
  Alcotest.(check int) "no pair inverted" 0 !inverted

let suite =
  [
    ("interval-arith", `Quick, interval_arith);
    ("interval-refine", `Quick, interval_refine);
    ("liveness", `Quick, liveness_basic);
    ("reachdef", `Quick, reachdef_basic);
    ("constprop", `Quick, constprop_basic);
    ("intanalysis-guard", `Quick, intanalysis_guard);
    QCheck_alcotest.to_alcotest prop_fixpoint_stable;
    QCheck_alcotest.to_alcotest prop_widening_terminates;
    ("sanitize-clean-corpus", `Quick, sanitize_clean_corpus);
    ("sanitize-catches-dropped-def", `Quick, sanitize_catches_dropped_def);
    ("sanitize-catches-bad-successor", `Quick, sanitize_catches_bad_successor);
    ("sanitize-catches-bad-arity", `Quick, sanitize_catches_bad_arity);
    ("boundcheck-missing-bounds", `Quick, boundcheck_missing_bounds);
    ("boundcheck-div-guard", `Quick, boundcheck_div_guard);
    ("boundcheck-null-check", `Quick, boundcheck_null_check);
    ("boundcheck-majority", `Quick, boundcheck_majority);
  ]
