(* The domain pool, and end-to-end determinism across domain counts.
   The seeded scan fixture lives in Fixtures (shared with the chaos and
   obs suites). *)

let with_domains = Fixtures.with_domains

let map_array_matches_sequential () =
  let input = Array.init 1000 (fun i -> i - 500) in
  let f x = (x * x) - (3 * x) + 7 in
  let expected = Array.map f input in
  with_domains 4 (fun () ->
      Alcotest.(check (array int))
        "default chunking" expected
        (Parallel.Pool.map_array f input);
      Alcotest.(check (array int))
        "chunk 1" expected
        (Parallel.Pool.map_array ~chunk:1 f input);
      Alcotest.(check (array int))
        "chunk 97" expected
        (Parallel.Pool.map_array ~chunk:97 f input));
  with_domains 1 (fun () ->
      Alcotest.(check (array int))
        "sequential fallback" expected
        (Parallel.Pool.map_array f input))

let parallel_for_covers_all_indices () =
  with_domains 4 (fun () ->
      let n = 517 in
      let out = Array.make n 0 in
      Parallel.Pool.parallel_for n (fun i -> out.(i) <- i + 1);
      Array.iteri
        (fun i v -> if v <> i + 1 then Alcotest.failf "index %d not written" i)
        out;
      (* empty and single-element ranges *)
      Parallel.Pool.parallel_for 0 (fun _ -> Alcotest.fail "body on empty");
      let hit = ref 0 in
      Parallel.Pool.parallel_for 1 (fun _ -> incr hit);
      Alcotest.(check int) "single iteration" 1 !hit)

let map_reduce_sums () =
  let input = Array.init 777 (fun i -> i) in
  let expected = Array.fold_left ( + ) 0 input in
  with_domains 4 (fun () ->
      Alcotest.(check int)
        "sum" expected
        (Parallel.Pool.map_reduce ~map:Fun.id ~reduce:( + ) 0 input);
      Alcotest.(check int)
        "sum chunk 7" expected
        (Parallel.Pool.map_reduce ~chunk:7 ~map:Fun.id ~reduce:( + ) 0 input);
      Alcotest.(check int)
        "empty" 0
        (Parallel.Pool.map_reduce ~map:Fun.id ~reduce:( + ) 0 [||]))

let exceptions_propagate () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "map_array re-raises" (Failure "boom") (fun () ->
          ignore
            (Parallel.Pool.map_array
               (fun x -> if x = 123 then failwith "boom" else x)
               (Array.init 500 Fun.id)));
      (* the pool survives the failed job *)
      Alcotest.(check (array int))
        "pool usable after exception"
        (Array.init 100 (fun i -> 2 * i))
        (Parallel.Pool.map_array (fun x -> 2 * x) (Array.init 100 Fun.id)))

let nested_use_is_safe () =
  with_domains 4 (fun () ->
      let inner i =
        Parallel.Pool.map_reduce ~map:Fun.id ~reduce:( + ) 0
          (Array.init 50 (fun k -> i + k))
      in
      let got = Parallel.Pool.map_array ~chunk:1 inner (Array.init 8 Fun.id) in
      let expected = Array.init 8 inner in
      Alcotest.(check (array int)) "nested matches flat" expected got)

let explicit_pool () =
  let pool = Parallel.Pool.create 3 in
  Alcotest.(check int) "size" 3 (Parallel.Pool.size pool);
  let input = Array.init 300 Fun.id in
  Alcotest.(check (array int))
    "map on explicit pool"
    (Array.map succ input)
    (Parallel.Pool.map_array ~pool succ input);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *)

(* --- end-to-end determinism: 1 domain vs 4 ---------------------------- *)

let scanner_fixture = Fixtures.scanner_fixture
let dyn_config = Fixtures.dyn_config

let scan_firmware_with ~fw ~db ~classifier domains =
  with_domains domains (fun () ->
      Staticfeat.Cache.clear ();
      (Patchecko.Scanner.scan_firmware ~dyn_config ~max_distance:10.0
         ~classifier ~db fw)
        .Patchecko.Scanner.findings)

let static_scan_deterministic () =
  let entry, _db, fw, classifier = scanner_fixture () in
  let target = fw.Loader.Firmware.images.(1) in
  let scan domains =
    with_domains domains (fun () ->
        Staticfeat.Cache.clear ();
        Patchecko.Static_stage.scan classifier
          ~reference:entry.Patchecko.Vulndb.vuln_static target)
  in
  let r1 = scan 1 in
  let r4 = scan 4 in
  Alcotest.(check (list int))
    "candidates identical" r1.Patchecko.Static_stage.candidates
    r4.Patchecko.Static_stage.candidates;
  Alcotest.(check bool)
    "scores byte-identical" true
    (r1.Patchecko.Static_stage.scores = r4.Patchecko.Static_stage.scores)

let scanner_deterministic () =
  let _entry, db, fw, classifier = scanner_fixture () in
  let f1 = scan_firmware_with ~fw ~db ~classifier 1 in
  let f4 = scan_firmware_with ~fw ~db ~classifier 4 in
  Alcotest.(check string)
    "findings byte-identical"
    (Patchecko.Scanner.findings_to_json f1)
    (Patchecko.Scanner.findings_to_json f4);
  Alcotest.(check bool) "non-empty" true (f1 <> [])

let extraction_at_most_once () =
  let entry, db, fw, classifier = scanner_fixture () in
  Staticfeat.Cache.clear ();
  Staticfeat.Extract.reset_extraction_count ();
  let _ =
    with_domains 4 (fun () ->
        Patchecko.Scanner.scan_firmware ~dyn_config ~max_distance:10.0
          ~classifier ~db fw)
  in
  let first_run = Staticfeat.Extract.extraction_count () in
  (* upper bound: every function of every involved image exactly once —
     the firmware's images plus the database's reference images *)
  let bound =
    Loader.Firmware.total_functions fw
    + Loader.Image.function_count entry.Patchecko.Vulndb.vuln_image
    + Loader.Image.function_count entry.Patchecko.Vulndb.patched_image
  in
  Alcotest.(check bool) "extracted something" true (first_run > 0);
  Alcotest.(check bool)
    (Printf.sprintf "at most once per function (%d <= %d)" first_run bound)
    true (first_run <= bound);
  (* a second scan over the warm cache extracts nothing at all *)
  let _ =
    with_domains 4 (fun () ->
        Patchecko.Scanner.scan_firmware ~dyn_config ~max_distance:10.0
          ~classifier ~db fw)
  in
  Alcotest.(check int)
    "warm rescan extracts nothing" first_run
    (Staticfeat.Extract.extraction_count ())

let suite =
  [
    Alcotest.test_case "map-array" `Quick map_array_matches_sequential;
    Alcotest.test_case "parallel-for" `Quick parallel_for_covers_all_indices;
    Alcotest.test_case "map-reduce" `Quick map_reduce_sums;
    Alcotest.test_case "exceptions" `Quick exceptions_propagate;
    Alcotest.test_case "nested" `Quick nested_use_is_safe;
    Alcotest.test_case "explicit-pool" `Quick explicit_pool;
    Alcotest.test_case "static-scan-deterministic" `Quick
      static_scan_deterministic;
    Alcotest.test_case "scanner-deterministic" `Quick scanner_deterministic;
    Alcotest.test_case "extraction-at-most-once" `Quick extraction_at_most_once;
  ]
