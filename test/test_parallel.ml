(* The domain pool, and end-to-end determinism across domain counts.
   The seeded scan fixture lives in Fixtures (shared with the chaos and
   obs suites). *)

let with_domains = Fixtures.with_domains

let map_array_matches_sequential () =
  let input = Array.init 1000 (fun i -> i - 500) in
  let f x = (x * x) - (3 * x) + 7 in
  let expected = Array.map f input in
  with_domains 4 (fun () ->
      Alcotest.(check (array int))
        "default chunking" expected
        (Parallel.Pool.map_array f input);
      Alcotest.(check (array int))
        "chunk 1" expected
        (Parallel.Pool.map_array ~chunk:1 f input);
      Alcotest.(check (array int))
        "chunk 97" expected
        (Parallel.Pool.map_array ~chunk:97 f input));
  with_domains 1 (fun () ->
      Alcotest.(check (array int))
        "sequential fallback" expected
        (Parallel.Pool.map_array f input))

let parallel_for_covers_all_indices () =
  with_domains 4 (fun () ->
      let n = 517 in
      let out = Array.make n 0 in
      Parallel.Pool.parallel_for n (fun i -> out.(i) <- i + 1);
      Array.iteri
        (fun i v -> if v <> i + 1 then Alcotest.failf "index %d not written" i)
        out;
      (* empty and single-element ranges *)
      Parallel.Pool.parallel_for 0 (fun _ -> Alcotest.fail "body on empty");
      let hit = ref 0 in
      Parallel.Pool.parallel_for 1 (fun _ -> incr hit);
      Alcotest.(check int) "single iteration" 1 !hit)

let map_reduce_sums () =
  let input = Array.init 777 (fun i -> i) in
  let expected = Array.fold_left ( + ) 0 input in
  with_domains 4 (fun () ->
      Alcotest.(check int)
        "sum" expected
        (Parallel.Pool.map_reduce ~map:Fun.id ~reduce:( + ) 0 input);
      Alcotest.(check int)
        "sum chunk 7" expected
        (Parallel.Pool.map_reduce ~chunk:7 ~map:Fun.id ~reduce:( + ) 0 input);
      Alcotest.(check int)
        "empty" 0
        (Parallel.Pool.map_reduce ~map:Fun.id ~reduce:( + ) 0 [||]))

let exceptions_propagate () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "map_array re-raises" (Failure "boom") (fun () ->
          ignore
            (Parallel.Pool.map_array
               (fun x -> if x = 123 then failwith "boom" else x)
               (Array.init 500 Fun.id)));
      (* the pool survives the failed job *)
      Alcotest.(check (array int))
        "pool usable after exception"
        (Array.init 100 (fun i -> 2 * i))
        (Parallel.Pool.map_array (fun x -> 2 * x) (Array.init 100 Fun.id)))

let nested_use_is_safe () =
  with_domains 4 (fun () ->
      let inner i =
        Parallel.Pool.map_reduce ~map:Fun.id ~reduce:( + ) 0
          (Array.init 50 (fun k -> i + k))
      in
      let got = Parallel.Pool.map_array ~chunk:1 inner (Array.init 8 Fun.id) in
      let expected = Array.init 8 inner in
      Alcotest.(check (array int)) "nested matches flat" expected got)

let explicit_pool () =
  let pool = Parallel.Pool.create 3 in
  Alcotest.(check int) "size" 3 (Parallel.Pool.size pool);
  let input = Array.init 300 Fun.id in
  Alcotest.(check (array int))
    "map on explicit pool"
    (Array.map succ input)
    (Parallel.Pool.map_array ~pool succ input);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *)

(* --- properties: the adaptive chunk-claiming scheduler ------------------ *)

(* every index runs exactly once, whatever n and the domain count — the
   CAS claim loop must neither drop nor repeat a chunk *)
let prop_parallel_for_exact_coverage =
  QCheck.Test.make ~name:"parallel-for-every-index-exactly-once" ~count:40
    QCheck.(pair (int_range 0 600) (int_range 1 4))
    (fun (n, domains) ->
      with_domains domains (fun () ->
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          Parallel.Pool.parallel_for n (fun i -> Atomic.incr hits.(i));
          Array.for_all (fun a -> Atomic.get a = 1) hits))

(* a body exception surfaces to the caller from any index, and the pool
   survives into the next generation *)
let prop_parallel_for_exceptions =
  QCheck.Test.make ~name:"parallel-for-exception-propagates" ~count:25
    QCheck.(pair (int_range 1 400) (int_range 0 1000))
    (fun (n, bad) ->
      let bad = bad mod n in
      with_domains 4 (fun () ->
          let raised =
            match
              Parallel.Pool.parallel_for n (fun i ->
                  if i = bad then failwith "prop-boom")
            with
            | () -> false
            | exception Failure _ -> true
          in
          raised
          && Parallel.Pool.map_array succ (Array.init 50 Fun.id)
             = Array.init 50 succ))

(* parallel_for issued from inside a pool worker falls back to inline
   execution instead of deadlocking, and still covers every index *)
let prop_nested_parallel_for =
  QCheck.Test.make ~name:"nested-parallel-for-falls-back" ~count:20
    QCheck.(int_range 1 60)
    (fun n ->
      with_domains 4 (fun () ->
          let out = Array.make (8 * n) 0 in
          ignore
            (Parallel.Pool.map_array ~chunk:1
               (fun j ->
                 Parallel.Pool.parallel_for n (fun i ->
                     out.((j * n) + i) <- j + i + 1);
                 j)
               (Array.init 8 Fun.id));
          let ok = ref true in
          for j = 0 to 7 do
            for i = 0 to n - 1 do
              if out.((j * n) + i) <> j + i + 1 then ok := false
            done
          done;
          !ok))

(* --- end-to-end determinism: 1 domain vs 4 ---------------------------- *)

let scanner_fixture = Fixtures.scanner_fixture
let dyn_config = Fixtures.dyn_config

let scan_firmware_with ~fw ~db ~classifier domains =
  with_domains domains (fun () ->
      Staticfeat.Cache.clear ();
      (Patchecko.Scanner.scan_firmware ~dyn_config ~max_distance:10.0
         ~classifier ~db fw)
        .Patchecko.Scanner.findings)

let static_scan_deterministic () =
  let entry, _db, fw, classifier = scanner_fixture () in
  let target = fw.Loader.Firmware.images.(1) in
  let scan domains =
    with_domains domains (fun () ->
        Staticfeat.Cache.clear ();
        Patchecko.Static_stage.scan classifier
          ~reference:entry.Patchecko.Vulndb.vuln_static target)
  in
  let r1 = scan 1 in
  List.iter
    (fun d ->
      let rd = scan d in
      Alcotest.(check (list int))
        (Printf.sprintf "candidates identical at %d domains" d)
        r1.Patchecko.Static_stage.candidates rd.Patchecko.Static_stage.candidates;
      Alcotest.(check bool)
        (Printf.sprintf "scores byte-identical at %d domains" d)
        true
        (r1.Patchecko.Static_stage.scores = rd.Patchecko.Static_stage.scores))
    [ 2; 4 ]

let scanner_deterministic () =
  let _entry, db, fw, classifier = scanner_fixture () in
  let f1 = scan_firmware_with ~fw ~db ~classifier 1 in
  List.iter
    (fun d ->
      let fd = scan_firmware_with ~fw ~db ~classifier d in
      Alcotest.(check string)
        (Printf.sprintf "findings byte-identical at %d domains" d)
        (Patchecko.Scanner.findings_to_json f1)
        (Patchecko.Scanner.findings_to_json fd))
    [ 2; 4 ];
  Alcotest.(check bool) "non-empty" true (f1 <> [])

(* --- flat batched kernels: bit identity with the allocating path -------- *)

let predict_into_matches_predict () =
  let entry, _db, fw, classifier = scanner_fixture () in
  let model = classifier.Patchecko.Static_stage.model in
  let nz = classifier.Patchecko.Static_stage.normalizer in
  let width = Array.length (fst (Nn.Data.normalizer_stats nz)) in
  Staticfeat.Cache.clear ();
  let feats = Staticfeat.Cache.features fw.Loader.Firmware.images.(0) in
  let rows =
    Array.map
      (fun v ->
        Nn.Data.normalize_vec nz
          (Util.Vec.concat entry.Patchecko.Vulndb.vuln_static v))
      feats
  in
  let n = Array.length rows in
  let expected = Nn.Model.predict model (Nn.Matrix.of_rows rows) in
  let input = Array.make (n * width) 0.0 in
  Array.iteri (fun i row -> Array.blit row 0 input (i * width) width) rows;
  let scratch = Nn.Model.make_scratch model ~max_rows:n in
  let dst = Array.make n Float.nan in
  Nn.Model.predict_into model scratch ~rows:n ~input ~dst ~pos:0;
  Alcotest.(check bool) "probabilities bit-identical" true (expected = dst);
  (* a second pass over the same scratch is still exact (buffer reuse
     must not leak state across batches) *)
  Nn.Model.predict_into model scratch ~rows:n ~input ~dst ~pos:0;
  Alcotest.(check bool) "scratch reuse bit-identical" true (expected = dst);
  Staticfeat.Cache.clear ()

let scan_matches_pair_score () =
  let entry, _db, fw, classifier = scanner_fixture () in
  let target = fw.Loader.Firmware.images.(1) in
  with_domains 4 (fun () ->
      Staticfeat.Cache.clear ();
      let r =
        Patchecko.Static_stage.scan classifier
          ~reference:entry.Patchecko.Vulndb.vuln_static target
      in
      let feats = Staticfeat.Cache.features target in
      Array.iteri
        (fun i s ->
          let expected =
            Patchecko.Static_stage.pair_score classifier
              ~reference:entry.Patchecko.Vulndb.vuln_static
              ~candidate:feats.(i)
          in
          if not (Float.equal s expected) then
            Alcotest.failf "batched score %d differs from pair_score" i)
        r.Patchecko.Static_stage.scores;
      Staticfeat.Cache.clear ())

let extraction_at_most_once () =
  let entry, db, fw, classifier = scanner_fixture () in
  Staticfeat.Cache.clear ();
  Staticfeat.Extract.reset_extraction_count ();
  let _ =
    with_domains 4 (fun () ->
        Patchecko.Scanner.scan_firmware ~dyn_config ~max_distance:10.0
          ~classifier ~db fw)
  in
  let first_run = Staticfeat.Extract.extraction_count () in
  (* upper bound: every function of every involved image exactly once —
     the firmware's images plus the database's reference images *)
  let bound =
    Loader.Firmware.total_functions fw
    + Loader.Image.function_count entry.Patchecko.Vulndb.vuln_image
    + Loader.Image.function_count entry.Patchecko.Vulndb.patched_image
  in
  Alcotest.(check bool) "extracted something" true (first_run > 0);
  Alcotest.(check bool)
    (Printf.sprintf "at most once per function (%d <= %d)" first_run bound)
    true (first_run <= bound);
  (* a second scan over the warm cache extracts nothing at all *)
  let _ =
    with_domains 4 (fun () ->
        Patchecko.Scanner.scan_firmware ~dyn_config ~max_distance:10.0
          ~classifier ~db fw)
  in
  Alcotest.(check int)
    "warm rescan extracts nothing" first_run
    (Staticfeat.Extract.extraction_count ())

let suite =
  [
    Alcotest.test_case "map-array" `Quick map_array_matches_sequential;
    Alcotest.test_case "parallel-for" `Quick parallel_for_covers_all_indices;
    Alcotest.test_case "map-reduce" `Quick map_reduce_sums;
    Alcotest.test_case "exceptions" `Quick exceptions_propagate;
    Alcotest.test_case "nested" `Quick nested_use_is_safe;
    Alcotest.test_case "explicit-pool" `Quick explicit_pool;
    QCheck_alcotest.to_alcotest prop_parallel_for_exact_coverage;
    QCheck_alcotest.to_alcotest prop_parallel_for_exceptions;
    QCheck_alcotest.to_alcotest prop_nested_parallel_for;
    Alcotest.test_case "static-scan-deterministic" `Quick
      static_scan_deterministic;
    Alcotest.test_case "scanner-deterministic" `Quick scanner_deterministic;
    Alcotest.test_case "predict-into-bit-identical" `Quick
      predict_into_matches_predict;
    Alcotest.test_case "scan-matches-pair-score" `Quick scan_matches_pair_score;
    Alcotest.test_case "extraction-at-most-once" `Quick extraction_at_most_once;
  ]
