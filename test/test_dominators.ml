(* Dominator analysis and natural-loop detection. *)

let params = Isa.Encoding.params_of_arch Isa.Arch.X86

let graph_of items =
  Cfg.Graph.build (Isa.Disasm.disassemble params (Isa.Asm.assemble params items))

let diamond : Isa.Asm.item list =
  [
    Ins (Cmp (0, Imm 0L));
    Ins (Jcc (Isa.Cond.Eq, "else"));
    Ins (Mov (1, Imm 1L));
    Ins (Jmp "end");
    Label "else";
    Ins (Mov (1, Imm 2L));
    Label "end";
    Ins Ret;
  ]

let diamond_idoms () =
  let g = graph_of diamond in
  let d = Cfg.Dominators.compute g in
  (* blocks: 0 entry, 1 then, 2 else, 3 join *)
  Alcotest.(check (option int)) "entry" None (Cfg.Dominators.idom d 0);
  Alcotest.(check (option int)) "then" (Some 0) (Cfg.Dominators.idom d 1);
  Alcotest.(check (option int)) "else" (Some 0) (Cfg.Dominators.idom d 2);
  Alcotest.(check (option int)) "join dominated by entry" (Some 0)
    (Cfg.Dominators.idom d 3);
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (Cfg.Dominators.dominates d 0) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "then does not dominate join" false
    (Cfg.Dominators.dominates d 1 3)

let loop_items : Isa.Asm.item list =
  [
    Ins (Mov (0, Imm 0L));
    Label "head";
    Ins (Cmp (0, Imm 10L));
    Ins (Jcc (Isa.Cond.Ge, "exit"));
    Ins (Binop (Add, 0, 0, Imm 1L));
    Ins (Jmp "head");
    Label "exit";
    Ins Ret;
  ]

let natural_loop_found () =
  let g = graph_of loop_items in
  let d = Cfg.Dominators.compute g in
  let loops = Cfg.Dominators.natural_loops g d in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  match loops with
  | [ loop ] ->
    Alcotest.(check int) "header is the test block" 1 loop.Cfg.Dominators.header;
    Alcotest.(check bool) "body has the latch" true
      (List.length loop.Cfg.Dominators.body >= 2);
    let depth = Cfg.Dominators.loop_depth g d in
    Alcotest.(check int) "header depth 1" 1 depth.(loop.Cfg.Dominators.header);
    Alcotest.(check int) "entry depth 0" 0 depth.(0)
  | _ -> Alcotest.fail "expected exactly one loop"

(* A block only reachable by falling out of nowhere: nothing jumps to
   "dead", and it jumps back to itself.  Before the reachability guards
   this self-loop pattern-matched as a natural loop (a node trivially
   dominates itself), poisoning the loop forest with a phantom loop. *)
let unreachable_items : Isa.Asm.item list =
  [
    Ins (Mov (0, Imm 1L));
    Ins (Jmp "end");
    Label "dead";
    Ins (Binop (Add, 0, 0, Imm 1L));
    Ins (Jmp "dead");
    Label "end";
    Ins Ret;
  ]

let unreachable_blocks () =
  let g = graph_of unreachable_items in
  let d = Cfg.Dominators.compute g in
  (* blocks: 0 entry, 1 dead (self-loop), 2 end *)
  Alcotest.(check bool) "entry reachable" true (Cfg.Dominators.reachable d 0);
  Alcotest.(check bool) "exit reachable" true (Cfg.Dominators.reachable d 2);
  Alcotest.(check bool) "dead block unreachable" false
    (Cfg.Dominators.reachable d 1);
  Alcotest.(check bool) "out-of-range not reachable" false
    (Cfg.Dominators.reachable d 99);
  Alcotest.(check (option int)) "dead block has no idom" None
    (Cfg.Dominators.idom d 1);
  Alcotest.(check (option int)) "exit reached straight from entry" (Some 0)
    (Cfg.Dominators.idom d 2);
  Alcotest.(check int) "unreachable self-loop is not a natural loop" 0
    (List.length (Cfg.Dominators.natural_loops g d));
  let depth = Cfg.Dominators.loop_depth g d in
  Alcotest.(check int) "dead block loop depth 0" 0 depth.(1)

let straight_line_no_loops () =
  let g = graph_of [ Ins (Mov (0, Imm 1L)); Ins Ret ] in
  let d = Cfg.Dominators.compute g in
  Alcotest.(check int) "no loops" 0 (List.length (Cfg.Dominators.natural_loops g d))

(* on compiled corpus functions the dominator invariants hold everywhere *)
let invariants_on_corpus () =
  let prog = Corpus.Genlib.generate ~seed:0xD0D0L ~index:2 ~nfuncs:14 in
  let img = Minic.Compiler.compile ~arch:Isa.Arch.Arm64 ~opt:Minic.Optlevel.O2 prog in
  for fidx = 0 to Loader.Image.function_count img - 1 do
    let g = Cfg.Graph.build (Loader.Image.disassemble img fidx) in
    let d = Cfg.Dominators.compute g in
    Array.iter
      (fun (b : Cfg.Block.t) ->
        (* entry dominates every reachable block; idom dominates its node *)
        match Cfg.Dominators.idom d b.id with
        | None -> ()
        | Some parent ->
          Alcotest.(check bool) "idom dominates" true
            (Cfg.Dominators.dominates d parent b.id);
          Alcotest.(check bool) "entry dominates" true
            (Cfg.Dominators.dominates d 0 b.id))
      g.Cfg.Graph.blocks
  done

let suite =
  [
    Alcotest.test_case "diamond-idoms" `Quick diamond_idoms;
    Alcotest.test_case "natural-loop" `Quick natural_loop_found;
    Alcotest.test_case "unreachable-blocks" `Quick unreachable_blocks;
    Alcotest.test_case "straight-line" `Quick straight_line_no_loops;
    Alcotest.test_case "invariants-on-corpus" `Quick invariants_on_corpus;
  ]
