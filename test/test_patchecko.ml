(* The PATCHECKO pipeline: vulndb, stages, differential engine.
   The seeded fixtures (case CVE, database entry, planted-CVE firmware,
   permissive classifier) are shared with the parallel/chaos/obs suites
   via Fixtures. *)

let case_cve = Fixtures.case_cve
let db_entry = Fixtures.db_entry

let vulndb_entry_features () =
  let e = db_entry () in
  Alcotest.(check int) "48 static features" 48
    (Array.length e.Patchecko.Vulndb.vuln_static);
  Alcotest.(check bool) "vulnerable and patched features differ" true
    (e.Patchecko.Vulndb.vuln_static <> e.Patchecko.Vulndb.patched_static)

let vulndb_lookup () =
  let e = db_entry () in
  let db = Patchecko.Vulndb.create [ e ] in
  Alcotest.(check int) "size" 1 (Patchecko.Vulndb.size db);
  Alcotest.(check bool) "find hit" true
    (Patchecko.Vulndb.find db "CVE-2018-9412" <> None);
  Alcotest.(check bool) "find miss" true
    (Patchecko.Vulndb.find db "CVE-0000-0000" = None)

let classification_counts () =
  let c =
    Patchecko.Pipeline.classify ~candidates:[ 3; 7; 9 ] ~total:100
      ~ground_truth:7
  in
  Alcotest.(check int) "tp" 1 c.Patchecko.Pipeline.tp;
  Alcotest.(check int) "fp" 2 c.Patchecko.Pipeline.fp;
  Alcotest.(check int) "fn" 0 c.Patchecko.Pipeline.fn;
  Alcotest.(check int) "tn" 97 c.Patchecko.Pipeline.tn;
  let miss =
    Patchecko.Pipeline.classify ~candidates:[ 3 ] ~total:100 ~ground_truth:7
  in
  Alcotest.(check int) "miss fn" 1 miss.Patchecko.Pipeline.fn;
  Alcotest.(check int) "miss tp" 0 miss.Patchecko.Pipeline.tp

let differential_separates_versions () =
  let c = case_cve () in
  let vuln = Corpus.Dataset.compile_cve c ~patched:false in
  let patched = Corpus.Dataset.compile_cve c ~patched:true in
  (* a patched target compiled differently *)
  let target_patched =
    Loader.Image.strip
      (Corpus.Dataset.compile_cve ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O2 c
         ~patched:true)
  in
  let e =
    Patchecko.Differential.gather ~vuln:(vuln, 0) ~patched:(patched, 0)
      ~target:(target_patched, 0) ()
  in
  let verdict, confidence = Patchecko.Differential.decide e in
  Alcotest.(check string) "patched target detected" "patched"
    (Patchecko.Differential.verdict_to_string verdict);
  Alcotest.(check bool) "confidence > 0.5" true (confidence > 0.5);
  (* and the vulnerable target the other way *)
  let target_vuln =
    Loader.Image.strip
      (Corpus.Dataset.compile_cve ~arch:Isa.Arch.X86 ~opt:Minic.Optlevel.O2 c
         ~patched:false)
  in
  let e2 =
    Patchecko.Differential.gather ~vuln:(vuln, 0) ~patched:(patched, 0)
      ~target:(target_vuln, 0) ()
  in
  let verdict2, _ = Patchecko.Differential.decide e2 in
  Alcotest.(check string) "vulnerable target detected" "vulnerable"
    (Patchecko.Differential.verdict_to_string verdict2)

let import_evidence () =
  (* the paper's memmove evidence: the vulnerable version imports
     memmove, the patched one does not *)
  let c = case_cve () in
  let vuln = Corpus.Dataset.compile_cve c ~patched:false in
  let patched = Corpus.Dataset.compile_cve c ~patched:true in
  Alcotest.(check (list string)) "vulnerable imports memmove" [ "memmove" ]
    (Patchecko.Differential.import_calls vuln 0);
  Alcotest.(check (list string)) "patched imports nothing" []
    (Patchecko.Differential.import_calls patched 0)

let dynamic_stage_ranks_true_function () =
  let c = case_cve () in
  let entry = db_entry () in
  (* target: a small library containing the vulnerable function among
     distractors, different arch/opt *)
  let base = Corpus.Genlib.generate ~seed:77L ~index:0 ~nfuncs:10 in
  let prog = Corpus.Genlib.with_cves base [ (c, false) ] in
  let target =
    Loader.Image.strip
      (Minic.Compiler.compile ~arch:Isa.Arch.Arm32 ~opt:Minic.Optlevel.O2 prog)
  in
  let truth =
    match
      Minic.Compiler.compile ~arch:Isa.Arch.Arm32 ~opt:Minic.Optlevel.O2 prog
      |> fun img -> Loader.Image.find_function img c.fname
    with
    | Some i -> i
    | None -> Alcotest.fail "CVE function missing from target"
  in
  let all_candidates =
    List.init (Loader.Image.function_count target) Fun.id
  in
  let result =
    Patchecko.Dynamic_stage.run
      ~config:
        { Patchecko.Dynamic_stage.default_config with k_envs = 4; fuel = 100_000 }
      ~reference:(entry.Patchecko.Vulndb.vuln_image, 0)
      ~shape:c.shape ~target ~candidates:all_candidates ()
  in
  Alcotest.(check bool) "environments found" true (result.Patchecko.Dynamic_stage.envs_used > 0);
  (* validation never grows the candidate set (whether it prunes depends
     on which template instances the generated library drew) *)
  Alcotest.(check bool) "validation is a filter" true
    (List.length result.Patchecko.Dynamic_stage.validated
    <= List.length all_candidates);
  match result.Patchecko.Dynamic_stage.ranking with
  | [] -> Alcotest.fail "empty ranking"
  | best :: _ ->
    Alcotest.(check int) "true function ranked first" truth
      best.Similarity.Rank.candidate

let static_stage_flags_reference_itself () =
  (* sanity: with a permissive threshold the scan returns a superset that
     contains genuinely similar functions and scores are probabilities *)
  let c = case_cve () in
  let entry = db_entry () in
  let classifier = Fixtures.permissive_classifier ~seed:13L () in
  let target = Loader.Image.strip (Corpus.Dataset.compile_cve c ~patched:false) in
  let result =
    Patchecko.Static_stage.scan classifier
      ~reference:entry.Patchecko.Vulndb.vuln_static target
  in
  Alcotest.(check int) "all flagged at threshold 0"
    (Loader.Image.function_count target)
    (List.length result.Patchecko.Static_stage.candidates);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "probability" true (s >= 0.0 && s <= 1.0))
    result.Patchecko.Static_stage.scores

let suite =
  [
    Alcotest.test_case "vulndb-features" `Quick vulndb_entry_features;
    Alcotest.test_case "vulndb-lookup" `Quick vulndb_lookup;
    Alcotest.test_case "classification-counts" `Quick classification_counts;
    Alcotest.test_case "differential-separates" `Quick differential_separates_versions;
    Alcotest.test_case "import-evidence" `Quick import_evidence;
    Alcotest.test_case "dynamic-stage-ranks" `Quick dynamic_stage_ranks_true_function;
    Alcotest.test_case "static-stage-scan" `Quick static_stage_flags_reference_itself;
  ]

let scanner_finds_planted_cve () =
  let _entry, db, fw, classifier = Fixtures.scanner_fixture () in
  let report =
    Patchecko.Scanner.scan_firmware ~max_distance:10.0 ~classifier ~db fw
  in
  Alcotest.(check int) "no faults" 0 (List.length report.Patchecko.Scanner.ledger);
  let findings = report.Patchecko.Scanner.findings in
  (match findings with
  | [ f ] ->
    Alcotest.(check string) "cve id" "CVE-2018-9412" f.Patchecko.Scanner.cve_id;
    Alcotest.(check string) "image"
      fw.Loader.Firmware.images.(1).Loader.Image.name
      f.Patchecko.Scanner.image;
    Alcotest.(check string) "verdict" "vulnerable"
      (Patchecko.Differential.verdict_to_string f.Patchecko.Scanner.verdict)
  | other -> Alcotest.failf "expected one finding, got %d" (List.length other));
  (* JSON output contains the id *)
  let json = Patchecko.Scanner.findings_to_json findings in
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "json mentions cve" true
    (contains ~needle:"CVE-2018-9412" json)

let suite = suite @ [ Alcotest.test_case "scanner" `Quick scanner_finds_planted_cve ]
