type t =
  | Malformed_image of { site : string; detail : string }
  | Decode_error of { site : string; detail : string }
  | Extract_failure of { site : string; detail : string }
  | Vm_trap of { site : string; detail : string }
  | Fuel_exhausted of { site : string; detail : string }
  | Worker_crash of { site : string; detail : string }
  | Cache_poisoned of { site : string; detail : string }

exception Fault of t

let kind = function
  | Malformed_image _ -> "malformed_image"
  | Decode_error _ -> "decode_error"
  | Extract_failure _ -> "extract_failure"
  | Vm_trap _ -> "vm_trap"
  | Fuel_exhausted _ -> "fuel_exhausted"
  | Worker_crash _ -> "worker_crash"
  | Cache_poisoned _ -> "cache_poisoned"

let site = function
  | Malformed_image { site; _ }
  | Decode_error { site; _ }
  | Extract_failure { site; _ }
  | Vm_trap { site; _ }
  | Fuel_exhausted { site; _ }
  | Worker_crash { site; _ }
  | Cache_poisoned { site; _ } ->
    site

let detail = function
  | Malformed_image { detail; _ }
  | Decode_error { detail; _ }
  | Extract_failure { detail; _ }
  | Vm_trap { detail; _ }
  | Fuel_exhausted { detail; _ }
  | Worker_crash { detail; _ }
  | Cache_poisoned { detail; _ } ->
    detail

let to_string f = Printf.sprintf "%s@%s: %s" (kind f) (site f) (detail f)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf "{\"kind\": \"%s\", \"site\": \"%s\", \"detail\": \"%s\"}"
    (kind f) (site f)
    (json_escape (detail f))

(* Permanent faults describe the input itself (or a terminally poisoned
   cache entry): retrying the same work item cannot succeed. *)
let permanent = function
  | Malformed_image _ | Decode_error _ | Cache_poisoned _ -> true
  | Extract_failure _ | Vm_trap _ | Fuel_exhausted _ | Worker_crash _ -> false

let of_exn ~site:s e =
  match e with
  | Fault f -> f
  | e -> Worker_crash { site = s; detail = Printexc.to_string e }
