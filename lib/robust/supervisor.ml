(* Supervised execution of one work item: bounded deterministic retry
   with fault-directed escalation.

   Each attempt runs under an injection context "<key>#<attempt>", so
   injected draws re-roll on retry and the whole attempt sequence is a
   pure function of (spec, key) — independent of domain count. *)

type escalation = {
  attempt : int;  (* 1-based *)
  fuel_factor : int;
  refresh_cache : bool;
}

let initial = { attempt = 1; fuel_factor = 1; refresh_cache = false }

type 'a outcome = {
  result : ('a, Fault.t) result;
  attempts : int;
  faults : Fault.t list;  (* chronological *)
}

let escalate esc (fault : Fault.t) =
  match fault with
  | Fault.Fuel_exhausted _ ->
    (* a wedged/starved execution gets one generous re-run *)
    { attempt = esc.attempt + 1; fuel_factor = esc.fuel_factor * 4;
      refresh_cache = false }
  | Fault.Extract_failure _ ->
    (* extraction faults may live in the cache entry: retry bypasses it *)
    { attempt = esc.attempt + 1; fuel_factor = esc.fuel_factor;
      refresh_cache = true }
  | Fault.Vm_trap _ | Fault.Worker_crash _ | Fault.Decode_error _ ->
    { attempt = esc.attempt + 1; fuel_factor = esc.fuel_factor;
      refresh_cache = false }
  | Fault.Malformed_image _ | Fault.Cache_poisoned _ ->
    (* permanent; never reached because [run] gives up first *)
    { esc with attempt = esc.attempt + 1 }

(* Every run/attempt/fault is also counted in the observability
   registry: the scanner's ledger only surfaces faults that reach a
   report, while these totals let a `stats` reader (or the regression
   test) see retry pressure directly.  Faults are additionally counted
   per class under "fault.<kind>". *)
let m_runs = Obs.Metrics.counter "supervisor.runs"
let m_attempts = Obs.Metrics.counter "supervisor.attempts"
let m_retries = Obs.Metrics.counter "supervisor.retries"
let m_faults = Obs.Metrics.counter "supervisor.faults"
let m_gave_up = Obs.Metrics.counter "supervisor.gave_up"

let count_fault fault =
  Obs.Metrics.incr m_faults;
  Obs.Metrics.incr (Obs.Metrics.counter ("fault." ^ Fault.kind fault))

let run ?(max_retries = 2) ~key f =
  Obs.Metrics.incr m_runs;
  let rec go esc faults =
    Obs.Metrics.incr m_attempts;
    if esc.attempt > 1 then Obs.Metrics.incr m_retries;
    let ctx = Printf.sprintf "%s#%d" key esc.attempt in
    match Inject.with_context ctx (fun () -> f esc) with
    | v -> { result = Ok v; attempts = esc.attempt; faults = List.rev faults }
    | exception e ->
      let fault = Fault.of_exn ~site:"supervisor" e in
      count_fault fault;
      let faults = fault :: faults in
      if esc.attempt > max_retries || Fault.permanent fault then begin
        Obs.Metrics.incr m_gave_up;
        { result = Error fault; attempts = esc.attempt; faults = List.rev faults }
      end
      else go (escalate esc fault) faults
  in
  go initial []
