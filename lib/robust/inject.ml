(* Deterministic, seeded fault injection.

   Armed by PATCHECKO_FAULTS="site:rate:seed,..." (or programmatically by
   [arm]).  Each instrumented site asks [fire ~site ~key] whether this
   particular draw faults.  The decision is a *pure hash* of
   (seed, site, context, key) — there is no shared PRNG state drawn in
   scheduling order — so the same spec and the same work produce the same
   injected faults whatever the domain count, and chaos runs are
   reproducible and diffable. *)

let sites =
  [ "loader.decode"; "staticfeat.extract"; "nn.score"; "pool.worker"; "vm.step" ]

type spec = { site : string; rate : float; seed : int64 }

let specs : spec list ref = ref []
let specs_mutex = Mutex.create ()

(* Context pushed by the supervisor around one attempt of one work item
   (e.g. "CVE-2018-9412@libfoo#2"): draws made while computing that item
   are keyed by it, so a retry re-draws and concurrent items never share
   a decision.  Domain-local — pool workers carry their own. *)
let context : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")
let suspended : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let parse_spec s =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "PATCHECKO_FAULTS: bad entry %S (want site:rate:seed with site one \
          of %s or \"all\")"
         s
         (String.concat "/" sites))
  in
  match String.split_on_char ':' (String.trim s) with
  | [ site; rate; seed ] -> (
    let site = String.trim site in
    if site <> "all" && not (List.mem site sites) then fail ();
    match (float_of_string_opt (String.trim rate), Int64.of_string_opt (String.trim seed)) with
    | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 -> { site; rate; seed }
    | _ -> fail ())
  | _ -> fail ()

let parse s =
  String.split_on_char ',' s
  |> List.filter (fun e -> String.trim e <> "")
  |> List.map parse_spec

let set_specs l =
  Mutex.lock specs_mutex;
  specs := l;
  Mutex.unlock specs_mutex

let arm s = set_specs (parse s)
let disarm () = set_specs []
let armed () = !specs <> []

let () =
  match Sys.getenv_opt "PATCHECKO_FAULTS" with
  | None | Some "" -> ()
  | Some s -> arm s

let with_context ctx f =
  let saved = Domain.DLS.get context in
  Domain.DLS.set context ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set context saved) f

let suspend f =
  let saved = Domain.DLS.get suspended in
  Domain.DLS.set suspended true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suspended saved) f

(* splitmix64 finaliser (same mixer as Util.Prng, restated here so the
   injection layer stays dependency-free and bit-stable). *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_string seed s =
  let h = ref seed in
  String.iter
    (fun c ->
      h :=
        mix64
          (Int64.add (Int64.mul !h 0x100000001B3L) (Int64.of_int (Char.code c))))
    s;
  mix64 !h

let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let fire ?(use_context = true) ~site ~key () =
  match !specs with
  | [] -> None
  | specs -> (
    if Domain.DLS.get suspended then None
    else
      match
        List.find_opt (fun sp -> sp.site = site || sp.site = "all") specs
      with
      | None -> None
      | Some sp ->
        let ctx = if use_context then Domain.DLS.get context else "" in
        let h = hash_string sp.seed (site ^ "\x00" ^ ctx ^ "\x00" ^ key) in
        if unit_float h < sp.rate then Some (mix64 h) else None)
