(** Per-item supervision: bounded deterministic retry with escalation.

    [run ~key f] executes [f] up to [1 + max_retries] times, converting
    any escaped exception into a {!Fault.t} (see {!Fault.of_exn}).  The
    retry is fault-directed: [Fuel_exhausted] re-runs with a 4× larger
    fuel factor, [Extract_failure] re-runs with [refresh_cache] set (the
    caller invalidates the item's cache entry), permanent faults
    ({!Fault.permanent}) give up immediately.

    Each attempt runs inside {!Inject.with_context} ["<key>#<attempt>"],
    so injected faults re-roll per attempt and the attempt sequence is
    deterministic whatever the domain count. *)

type escalation = {
  attempt : int;  (** 1-based attempt number *)
  fuel_factor : int;  (** multiply dynamic-stage fuel by this *)
  refresh_cache : bool;  (** invalidate the item's cache entry first *)
}

val initial : escalation

type 'a outcome = {
  result : ('a, Fault.t) result;  (** last attempt's result *)
  attempts : int;  (** attempts actually made (>= 1) *)
  faults : Fault.t list;  (** every observed fault, chronological *)
}

val run : ?max_retries:int -> key:string -> (escalation -> 'a) -> 'a outcome
(** [max_retries] defaults to 2 (so at most 3 attempts).  Never raises:
    the worst case is [{ result = Error _; _ }]. *)
