(** Deterministic, seeded fault-injection harness.

    Armed by the [PATCHECKO_FAULTS] environment variable (read once at
    startup) or programmatically with {!arm}.  The spec is a
    comma-separated list of [site:rate:seed] entries, e.g.
    ["vm.step:0.05:42,staticfeat.extract:0.05:42"]; site ["all"] matches
    every instrumented site.

    A draw's outcome is a pure hash of (seed, site, supervisor context,
    key) — no mutable PRNG stream — so the injected fault set depends
    only on the work performed, never on domain count or scheduling:
    chaos runs are reproducible and diffable. *)

val sites : string list
(** The instrumented site names: loader decode, static-feature
    extraction, NN scoring, pool workers, the VM step loop. *)

val arm : string -> unit
(** Parse and install a spec.  Raises [Invalid_argument] on a malformed
    entry.  Intended for tests/benchmarks; production arming goes through
    [PATCHECKO_FAULTS]. *)

val disarm : unit -> unit
val armed : unit -> bool

val with_context : string -> (unit -> 'a) -> 'a
(** Run [f] with the domain-local injection context set (the supervisor
    tags each attempt of each work item, e.g. ["CVE-X@img#2"], so draws
    re-roll on retry and never collide across concurrent items). *)

val suspend : (unit -> 'a) -> 'a
(** Run [f] with injection disabled on this domain (used while building
    fixtures/databases so chaos only hits the scan under test). *)

val fire : ?use_context:bool -> site:string -> key:string -> unit -> int64 option
(** [fire ~site ~key ()] is [Some h] (a deterministic 64-bit value the
    caller may use to pick a fault flavour) when the site is armed and
    this draw faults, [None] otherwise.  [~use_context:false] excludes
    the supervisor context from the draw — used by sites whose work is
    shared across items (the per-image extraction cache), where the
    decision must not depend on which item happens to trigger it. *)
