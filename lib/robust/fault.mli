(** Structured fault taxonomy for the scanning pipeline.

    Every recoverable failure that can cross a pipeline boundary (loader
    decode, feature extraction, NN scoring, pool workers, the VM) is
    described by one of these constructors, carrying the [site] (the
    instrumented boundary name, e.g. ["loader.decode"]) and a free-text
    [detail].  Boundaries raise {!Fault} instead of ad-hoc [failwith];
    the supervisor catches it, classifies it, and decides whether the
    work item is retried, degraded, or abandoned. *)

type t =
  | Malformed_image of { site : string; detail : string }
      (** input bytes are not a valid image/firmware (permanent) *)
  | Decode_error of { site : string; detail : string }
      (** decoder failed on otherwise plausible input *)
  | Extract_failure of { site : string; detail : string }
      (** static-feature extraction of an image failed *)
  | Vm_trap of { site : string; detail : string }
      (** a dynamic-stage execution wedged at the host level *)
  | Fuel_exhausted of { site : string; detail : string }
      (** a dynamic-stage execution ran out of fuel at the host level *)
  | Worker_crash of { site : string; detail : string }
      (** a pool worker / scan cell died with an unclassified exception *)
  | Cache_poisoned of { site : string; detail : string }
      (** a cache entry is terminally failed; readers fail fast (permanent) *)

exception Fault of t
(** The carrier: boundaries raise this, supervisors catch it. *)

val kind : t -> string
(** Stable snake_case tag of the constructor. *)

val site : t -> string
val detail : t -> string
val to_string : t -> string
val to_json : t -> string

val permanent : t -> bool
(** [true] when retrying the same work item cannot succeed
    (malformed input, terminally poisoned cache). *)

val of_exn : site:string -> exn -> t
(** Classify an escaped exception at a boundary: {!Fault} payloads pass
    through; anything else becomes [Worker_crash] with the printed
    exception as detail. *)

val json_escape : string -> string
(** Minimal JSON string escaping (shared by the ledger emitters). *)
