type entry = {
  cve_id : string;
  description : string;
  vuln_image : Loader.Image.t;
  vuln_findex : int;
  patched_image : Loader.Image.t;
  patched_findex : int;
  vuln_static : Util.Vec.t;
  patched_static : Util.Vec.t;
  vuln_struct : Similarity.Structfp.t;
  patched_struct : Similarity.Structfp.t;
  shape : Fuzz.Shape.t;
  signature : Signature.Diffsig.t;
}

type t = { entry_list : entry list; index : Signature.Index.t }

exception Corrupt of string

let validate entries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.cve_id = "" then raise (Corrupt "entry with empty CVE id");
      if Hashtbl.mem seen e.cve_id then
        raise (Corrupt (Printf.sprintf "duplicate entry for %s" e.cve_id));
      Hashtbl.add seen e.cve_id ();
      let check what img idx =
        if idx < 0 || idx >= Loader.Image.function_count img then
          raise
            (Corrupt
               (Printf.sprintf "%s: %s function index %d out of range" e.cve_id
                  what idx))
      in
      check "vulnerable" e.vuln_image e.vuln_findex;
      check "patched" e.patched_image e.patched_findex)
    entries

let create entries =
  validate entries;
  {
    entry_list = entries;
    index =
      Signature.Index.build
        (Array.of_list (List.map (fun e -> e.signature) entries));
  }

let entries t = t.entry_list
let index t = t.index
let find t id = List.find_opt (fun e -> e.cve_id = id) t.entry_list
let size t = List.length t.entry_list

let make_entry ?source ?(builds = ([], [])) ~cve_id ~description ~shape
    ~vuln:(vimg, vidx) ~patched:(pimg, pidx) () =
  (* with the MinC sources at hand the structural fingerprints come
     straight from the AST (the paper's source-side channel); otherwise
     fall back to re-deriving them from the reference binaries *)
  let vuln_struct, patched_struct =
    match source with
    | Some (vf, pf) -> (Analysis.Struct_enc.of_func vf, Analysis.Struct_enc.of_func pf)
    | None ->
      ( Staticfeat.Cache.struct_fingerprint vimg vidx,
        Staticfeat.Cache.struct_fingerprint pimg pidx )
  in
  (* diff signature over every supplied build of each side; with only
     the two reference builds the signature stays unprunable (configs=1)
     — the index then always keeps the entry as a candidate *)
  let extra_vuln, extra_patched = builds in
  let signature =
    Signature.Diffsig.extract
      ~vuln:((vimg, vidx) :: extra_vuln)
      ~patched:((pimg, pidx) :: extra_patched)
  in
  {
    cve_id;
    description;
    vuln_image = vimg;
    vuln_findex = vidx;
    patched_image = pimg;
    patched_findex = pidx;
    vuln_static = Staticfeat.Cache.feature vimg vidx;
    patched_static = Staticfeat.Cache.feature pimg pidx;
    vuln_struct;
    patched_struct;
    shape;
    signature;
  }

let reference_static e ~patched = if patched then e.patched_static else e.vuln_static

let reference_image e ~patched =
  if patched then (e.patched_image, e.patched_findex)
  else (e.vuln_image, e.vuln_findex)
