type entry = {
  cve_id : string;
  description : string;
  vuln_image : Loader.Image.t;
  vuln_findex : int;
  patched_image : Loader.Image.t;
  patched_findex : int;
  vuln_static : Util.Vec.t;
  patched_static : Util.Vec.t;
  shape : Fuzz.Shape.t;
}

type t = entry list

let create entries = entries
let entries t = t
let find t id = List.find_opt (fun e -> e.cve_id = id) t
let size = List.length

let make_entry ~cve_id ~description ~shape ~vuln:(vimg, vidx)
    ~patched:(pimg, pidx) =
  {
    cve_id;
    description;
    vuln_image = vimg;
    vuln_findex = vidx;
    patched_image = pimg;
    patched_findex = pidx;
    vuln_static = Staticfeat.Cache.feature vimg vidx;
    patched_static = Staticfeat.Cache.feature pimg pidx;
    shape;
  }

let reference_static e ~patched = if patched then e.patched_static else e.vuln_static

let reference_image e ~patched =
  if patched then (e.patched_image, e.patched_findex)
  else (e.vuln_image, e.vuln_findex)
