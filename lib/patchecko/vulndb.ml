type entry = {
  cve_id : string;
  description : string;
  vuln_image : Loader.Image.t;
  vuln_findex : int;
  patched_image : Loader.Image.t;
  patched_findex : int;
  vuln_static : Util.Vec.t;
  patched_static : Util.Vec.t;
  vuln_struct : Similarity.Structfp.t;
  patched_struct : Similarity.Structfp.t;
  shape : Fuzz.Shape.t;
}

type t = entry list

let create entries = entries
let entries t = t
let find t id = List.find_opt (fun e -> e.cve_id = id) t
let size = List.length

let make_entry ?source ~cve_id ~description ~shape ~vuln:(vimg, vidx)
    ~patched:(pimg, pidx) () =
  (* with the MinC sources at hand the structural fingerprints come
     straight from the AST (the paper's source-side channel); otherwise
     fall back to re-deriving them from the reference binaries *)
  let vuln_struct, patched_struct =
    match source with
    | Some (vf, pf) -> (Analysis.Struct_enc.of_func vf, Analysis.Struct_enc.of_func pf)
    | None ->
      ( Staticfeat.Cache.struct_fingerprint vimg vidx,
        Staticfeat.Cache.struct_fingerprint pimg pidx )
  in
  {
    cve_id;
    description;
    vuln_image = vimg;
    vuln_findex = vidx;
    patched_image = pimg;
    patched_findex = pidx;
    vuln_static = Staticfeat.Cache.feature vimg vidx;
    patched_static = Staticfeat.Cache.feature pimg pidx;
    vuln_struct;
    patched_struct;
    shape;
  }

let reference_static e ~patched = if patched then e.patched_static else e.vuln_static

let reference_image e ~patched =
  if patched then (e.patched_image, e.patched_findex)
  else (e.vuln_image, e.vuln_findex)
