(** Stage 2: dynamic pruning and ranking.

    Fuzz K execution environments for the CVE reference function, keep the
    environments it survives, validate every candidate on them (crashers
    are pruned), profile the survivors' 21 dynamic features per
    environment, and rank by averaged Minkowski distance to the
    reference's profile. *)

type config = {
  k_envs : int;  (** environments to fuzz *)
  fuel : int;  (** per-run instruction budget *)
  seed : int64;
  p : float;  (** Minkowski exponent *)
}

val default_config : config

type result = {
  envs : Vm.Env.t list;  (** the shared environments actually used *)
  envs_used : int;
  validated : int list;  (** candidates surviving execution validation *)
  faulted : (int * Robust.Fault.t) list;
      (** candidates dropped by a host-level fault (chaos injection or a
          runtime bug) during validation or profiling — per-candidate
          isolation keeps the rest of the cell alive.  Faults while
          running the {e reference} instead propagate as
          {!Robust.Fault.Fault}. *)
  ranking : int Similarity.Rank.entry list;  (** ascending distance *)
  reference_profile : Util.Vec.t list;  (** per-env features of the CVE fn *)
  profiles : (int * Util.Vec.t list) list;  (** per-candidate profiles *)
  executions : int;  (** candidate validation runs performed *)
  seconds : float;
}

type ref_ctx
(** The reference side of a cell — surviving environments plus the
    reference function's profile over them.  It depends only on
    (config, reference, shape), so the scanner prepares it once per
    database entry and shares it across every image of the firmware
    instead of re-executing the reference for each cell. *)

val prepare_reference :
  ?config:config ->
  reference:Loader.Image.t * int ->
  shape:Fuzz.Shape.t ->
  unit ->
  ref_ctx
(** Generate and filter the environments and profile the reference.
    Host-level faults propagate as {!Robust.Fault.Fault} (the caller
    supervises).  [run ~ctx] with the result is bit-identical to [run]
    recomputing under the same [config]. *)

val run :
  ?config:config ->
  ?ctx:ref_ctx ->
  reference:Loader.Image.t * int ->
  shape:Fuzz.Shape.t ->
  target:Loader.Image.t ->
  candidates:int list ->
  unit ->
  result
(** [?ctx] supplies a prepared reference context; without it the
    reference side is recomputed in place (identical results, more
    reference executions). *)
