(** Stage 2: dynamic pruning and ranking.

    Fuzz K execution environments for the CVE reference function, keep the
    environments it survives, validate every candidate on them (crashers
    are pruned), profile the survivors' 21 dynamic features per
    environment, and rank by averaged Minkowski distance to the
    reference's profile. *)

type config = {
  k_envs : int;  (** environments to fuzz *)
  fuel : int;  (** per-run instruction budget *)
  seed : int64;
  p : float;  (** Minkowski exponent *)
}

val default_config : config

type result = {
  envs : Vm.Env.t list;  (** the shared environments actually used *)
  envs_used : int;
  validated : int list;  (** candidates surviving execution validation *)
  faulted : (int * Robust.Fault.t) list;
      (** candidates dropped by a host-level fault (chaos injection or a
          runtime bug) during validation or profiling — per-candidate
          isolation keeps the rest of the cell alive.  Faults while
          running the {e reference} instead propagate as
          {!Robust.Fault.Fault}. *)
  ranking : int Similarity.Rank.entry list;  (** ascending distance *)
  reference_profile : Util.Vec.t list;  (** per-env features of the CVE fn *)
  profiles : (int * Util.Vec.t list) list;  (** per-candidate profiles *)
  executions : int;  (** candidate validation runs performed *)
  seconds : float;
}

val run :
  ?config:config ->
  reference:Loader.Image.t * int ->
  shape:Fuzz.Shape.t ->
  target:Loader.Image.t ->
  candidates:int list ->
  unit ->
  result
