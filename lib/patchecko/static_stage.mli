(** Stage 1: deep-learning candidate selection.

    Every function of the (stripped) target image is paired with the CVE
    reference vector; the trained similarity model scores each pair, and
    functions above the threshold become dynamic-stage candidates. *)

type classifier = {
  model : Nn.Model.t;
  normalizer : Nn.Data.normalizer;
  threshold : float;
}

val default_threshold : float

type result = {
  candidates : int list;  (** function indices flagged as similar *)
  scores : float array;  (** per-function similarity probabilities *)
  seconds : float;  (** wall-clock seconds *)
}

val scan :
  ?features:Util.Vec.t array ->
  classifier ->
  reference:Util.Vec.t ->
  Loader.Image.t ->
  result
(** Score every function of the image against the reference vector.
    [?features] supplies the image's (index-aligned) static features —
    normally {!Staticfeat.Cache.features}, which is also the default —
    so repeated scans of one image against many CVE references never
    re-extract.  Scoring is batched across the domain pool; candidates
    and scores are identical whatever the domain count. *)

val pair_score :
  classifier -> reference:Util.Vec.t -> candidate:Util.Vec.t -> float
(** Probability the two feature vectors come from the same source — also
    used to compare a vulnerable reference against its patched version
    (§V-D's similarity check). *)
