(** Stage 1: deep-learning candidate selection.

    Every function of the (stripped) target image is paired with the CVE
    reference vector; the trained similarity model scores each pair, and
    functions above the threshold become dynamic-stage candidates. *)

type classifier = {
  model : Nn.Model.t;
  normalizer : Nn.Data.normalizer;
  threshold : float;
}

val default_threshold : float

type result = {
  candidates : int list;  (** function indices flagged as similar *)
  scores : float array;  (** per-function similarity probabilities *)
  seconds : float;  (** wall-clock seconds *)
}

val scan_many :
  ?features:Util.Vec.t array ->
  classifier ->
  references:Util.Vec.t array ->
  Loader.Image.t ->
  result array
(** Score every function of the image against each reference vector in
    one batched parallel pass (one result per reference, index-aligned).
    The image's features are z-scored into a flat buffer once and reused
    for every reference, and the forward pass runs over preallocated
    per-domain buffers — so scanning one image against a whole database
    does the per-function work once, allocation-free in the hot loop.
    [?features] supplies the image's (index-aligned) static features —
    normally {!Staticfeat.Cache.features}, which is also the default.
    Scores are bit-identical to {!pair_score} per pair, whatever the
    domain count. *)

val scan :
  ?features:Util.Vec.t array ->
  classifier ->
  reference:Util.Vec.t ->
  Loader.Image.t ->
  result
(** [scan_many] with a single reference. *)

val pair_score :
  classifier -> reference:Util.Vec.t -> candidate:Util.Vec.t -> float
(** Probability the two feature vectors come from the same source — also
    used to compare a vulnerable reference against its patched version
    (§V-D's similarity check). *)
