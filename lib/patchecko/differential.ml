type verdict = Patched | Vulnerable

type evidence = {
  static_to_vuln : float;
  static_to_patched : float;
  dynamic_to_vuln : float option;
  dynamic_to_patched : float option;
  signature_to_vuln : float;
  signature_to_patched : float;
  alarm_to_vuln : float option;
  alarm_to_patched : float option;
  struct_to_vuln : float option;
  struct_to_patched : float option;
  token_to_vuln : float option;
  token_to_patched : float option;
}

(* Below this reference-pair distance the vulnerable and patched builds
   are structurally indistinguishable (constant tweaks, off-by-one bound
   changes): the structural channel abstains rather than emit noise.
   Calibrated on the CVE corpus: int_clamp ≈ 0.002 and
   missing_increment ≈ 0.003 sit under it, guard-insertion families
   (null_check, div_guard, missing_bounds, …) sit at ≥ 0.03. *)
let struct_abstain_threshold = 0.02

(* Per-feature relative difference so large-magnitude features (function
   size) don't drown small ones (block-class counts). *)
let static_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Differential.static_distance";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (abs_float (a.(i) -. b.(i)) /. (1.0 +. abs_float a.(i) +. abs_float b.(i)))
  done;
  !acc /. float_of_int (Array.length a)

let import_calls img fidx =
  let listing = Loader.Image.disassemble img fidx in
  Array.to_list listing.Isa.Disasm.instrs
  |> List.filter_map (fun (ins : int Isa.Instr.t) ->
         match ins with
         | Call idx -> (
           match Loader.Image.call_target img idx with
           | Some (Loader.Image.Import name) -> Some name
           | Some (Loader.Image.Internal _) | None -> None)
         | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
         | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _
         | Jtable _ | Ret | Push _ | Pop _ | Syscall _ ->
           None)
  |> List.sort compare

(* Jaccard distance over multisets represented as sorted lists. *)
let multiset_jaccard a b =
  let rec inter_union inter union a b =
    match (a, b) with
    | [], rest | rest, [] -> (inter, union + List.length rest)
    | x :: xs, y :: ys ->
      if x = y then inter_union (inter + 1) (union + 1) xs ys
      else if x < y then inter_union inter (union + 1) xs (y :: ys)
      else inter_union inter (union + 1) (x :: xs) ys
  in
  let inter, union = inter_union 0 0 a b in
  if union = 0 then 0.0 else 1.0 -. (float_of_int inter /. float_of_int union)

let cfg_shape img fidx =
  let listing = Loader.Image.disassemble img fidx in
  let g = Cfg.Graph.build listing in
  ( float_of_int (Cfg.Graph.block_count g),
    float_of_int (Cfg.Graph.edge_count g),
    float_of_int (Cfg.Graph.cyclomatic_complexity g) )

let rel a b = abs_float (a -. b) /. (1.0 +. abs_float a +. abs_float b)

let signature_distance (img_a, ia) (img_b, ib) =
  let imports_a = import_calls img_a ia and imports_b = import_calls img_b ib in
  let ba, ea, ca = cfg_shape img_a ia in
  let bb, eb, cb = cfg_shape img_b ib in
  let shape = (rel ba bb +. rel ea eb +. rel ca cb) /. 3.0 in
  (multiset_jaccard imports_a imports_b +. shape) /. 2.0

let m_gathers = Obs.Metrics.counter "differential.gathers"

(* membership of a hash in a sorted hash set *)
let mem_sorted set h =
  let lo = ref 0 and hi = ref (Array.length set - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Int.compare set.(mid) h in
    if c = 0 then found := true
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let matched_fraction set hashes =
  let n = Array.length hashes in
  if n = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iter (fun h -> if mem_sorted set h then incr hits) hashes;
    float_of_int !hits /. float_of_int n
  end

let gather ~vuln:(vimg, vidx) ~patched:(pimg, pidx) ~target:(timg, tidx)
    ?dynamic ?structs ?diffsig () =
  Obs.Trace.with_span ~name:"stage.differential"
    ~attrs:(fun () -> [ ("image", timg.Loader.Image.name) ])
  @@ fun () ->
  Obs.Metrics.incr m_gathers;
  let sv = Staticfeat.Cache.feature vimg vidx in
  let sp = Staticfeat.Cache.feature pimg pidx in
  let st = Staticfeat.Cache.feature timg tidx in
  let dynamic_to_vuln, dynamic_to_patched =
    match dynamic with
    | Some (dv, dp) -> (Some dv, Some dp)
    | None -> (None, None)
  in
  (* The memory-safety alarm channel only speaks when the two references
     actually disagree: for guard-insertion patches the vulnerable build
     alarms and the patched one does not, while for patches invisible to
     the bound checker (constant tweaks, loop-bound off-by-ones) the
     signatures coincide and the channel abstains rather than dilute the
     other evidence. *)
  let alarm_to_vuln, alarm_to_patched =
    let av = Analysis.Boundcheck.signature vimg vidx in
    let ap = Analysis.Boundcheck.signature pimg pidx in
    if av = ap then (None, None)
    else
      let at = Analysis.Boundcheck.signature timg tidx in
      ( Some (Analysis.Boundcheck.distance at av),
        Some (Analysis.Boundcheck.distance at ap) )
  in
  (* Same abstention discipline for the structural channel: it only
     speaks when the reference pair is structurally far enough apart
     that the shape difference carries signal. *)
  let struct_to_vuln, struct_to_patched =
    let fv, fp =
      match structs with
      | Some (fv, fp) -> (fv, fp)
      | None ->
        ( Staticfeat.Cache.struct_fingerprint vimg vidx,
          Staticfeat.Cache.struct_fingerprint pimg pidx )
    in
    if Similarity.Structfp.distance fv fp < struct_abstain_threshold then
      (None, None)
    else
      let ft = Staticfeat.Cache.struct_fingerprint timg tidx in
      ( Some (Similarity.Structfp.distance ft fv),
        Some (Similarity.Structfp.distance ft fp) )
  in
  (* The signature-token channel reads the diff-derived token deltas: a
     high fraction of vuln-only tokens in the target is evidence of the
     unpatched version, and symmetrically for patched-only tokens.  It
     abstains when the signature has no delta tokens at all, when the
     target exhibits none of them (the deltas may simply not survive the
     target's build configuration), and on ties. *)
  let token_to_vuln, token_to_patched =
    match diffsig with
    | None -> (None, None)
    | Some sg ->
      let vh = Signature.Diffsig.vuln_only_hashes sg in
      let ph = Signature.Diffsig.patched_only_hashes sg in
      if Array.length vh = 0 && Array.length ph = 0 then (None, None)
      else
        let tset = Staticfeat.Cache.token_set timg tidx in
        let fv = matched_fraction tset vh and fp = matched_fraction tset ph in
        if fv = fp then (None, None)
        else (Some (1.0 -. fv), Some (1.0 -. fp))
  in
  {
    static_to_vuln = static_distance st sv;
    static_to_patched = static_distance st sp;
    dynamic_to_vuln;
    dynamic_to_patched;
    signature_to_vuln = signature_distance (timg, tidx) (vimg, vidx);
    signature_to_patched = signature_distance (timg, tidx) (pimg, pidx);
    alarm_to_vuln;
    alarm_to_patched;
    struct_to_vuln;
    struct_to_patched;
    token_to_vuln;
    token_to_patched;
  }

let decide e =
  let channel a b = if a +. b <= 0.0 then 0.5 else a /. (a +. b) in
  let channels =
    [
      channel e.static_to_vuln e.static_to_patched;
      channel e.signature_to_vuln e.signature_to_patched;
    ]
    @ (match (e.dynamic_to_vuln, e.dynamic_to_patched) with
      | Some dv, Some dp -> [ channel dv dp ]
      | Some _, None | None, Some _ | None, None -> [])
    @ (match (e.alarm_to_vuln, e.alarm_to_patched) with
      | Some av, Some ap -> [ channel av ap ]
      | Some _, None | None, Some _ | None, None -> [])
    @ (match (e.struct_to_vuln, e.struct_to_patched) with
      | Some sv, Some sp -> [ channel sv sp ]
      | Some _, None | None, Some _ | None, None -> [])
    @ (match (e.token_to_vuln, e.token_to_patched) with
      | Some tv, Some tp -> [ channel tv tp ]
      | Some _, None | None, Some _ | None, None -> [])
  in
  (* each channel is the share of distance pointing away from the
     vulnerable reference: > 0.5 ⇒ the target sits closer to the patch *)
  let away_from_vuln =
    List.fold_left ( +. ) 0.0 channels /. float_of_int (List.length channels)
  in
  if away_from_vuln > 0.5 then (Patched, away_from_vuln)
  else (Vulnerable, 1.0 -. away_from_vuln)

let verdict_to_string = function
  | Patched -> "patched"
  | Vulnerable -> "vulnerable"
