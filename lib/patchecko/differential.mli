(** Stage 3: the differential engine (patch presence detection).

    Given the located target function, compare it against the vulnerable
    and the patched reference along three channels — static feature
    distance, dynamic semantic similarity scores, and a differential
    signature built from CFG topology plus the set of library calls (the
    paper's j___aeabi_memmove evidence) — and decide which version the
    target is.  A fourth, optional channel compares memory-safety alarm
    signatures ({!Analysis.Boundcheck}) and only participates when the
    two references disagree on their alarms.  A fifth, optional channel
    compares structural fingerprints ({!Similarity.Structfp}) and only
    participates when the reference pair is at least
    {!struct_abstain_threshold} apart.  A sixth, optional channel reads
    the diff-derived signature-token deltas ({!Signature.Diffsig}): the
    fraction of vuln-only / patched-only tokens the target exhibits —
    it abstains when the signature carries no delta tokens, when the
    target matches neither side, and on ties. *)

type verdict = Patched | Vulnerable

type evidence = {
  static_to_vuln : float;
  static_to_patched : float;
  dynamic_to_vuln : float option;  (** averaged Minkowski distance *)
  dynamic_to_patched : float option;
  signature_to_vuln : float;
  signature_to_patched : float;
  alarm_to_vuln : float option;
      (** alarm-signature distance; [None] when the vulnerable and patched
          references produce identical alarm signatures (channel abstains) *)
  alarm_to_patched : float option;
  struct_to_vuln : float option;
      (** structural-fingerprint distance; [None] when the vulnerable and
          patched references are structurally closer than
          {!struct_abstain_threshold} (channel abstains) *)
  struct_to_patched : float option;
  token_to_vuln : float option;
      (** [1 - fraction of vuln-only signature tokens present in the
          target]; [None] when the token channel abstains (no [?diffsig]
          supplied, signature without delta tokens, zero matches on both
          sides, or a tie) *)
  token_to_patched : float option;
}

val struct_abstain_threshold : float
(** Minimum structural distance between the two references for the
    structural channel to speak (0.02: below it, source-invisible
    patches such as constant clamps make the shapes coincide). *)

val static_distance : Util.Vec.t -> Util.Vec.t -> float
(** Scale-normalised per-feature distance of two 48-feature vectors. *)

val import_calls : Loader.Image.t -> int -> string list
(** Sorted multiset of import names the function calls. *)

val signature_distance : Loader.Image.t * int -> Loader.Image.t * int -> float
(** Jaccard distance of import multisets plus normalised CFG-shape
    (blocks, edges, cyclomatic complexity) difference. *)

val gather :
  vuln:Loader.Image.t * int ->
  patched:Loader.Image.t * int ->
  target:Loader.Image.t * int ->
  ?dynamic:(float * float) ->
  ?structs:(Similarity.Structfp.t * Similarity.Structfp.t) ->
  ?diffsig:Signature.Diffsig.t ->
  unit ->
  evidence
(** [dynamic] is (distance to vulnerable profile, distance to patched
    profile) when the dynamic stage ran.  [structs] is the (vulnerable,
    patched) reference fingerprint pair — usually the persisted
    {!Vulndb.entry} fields; when absent they are recovered from the
    reference binaries via {!Staticfeat.Cache.struct_fingerprint}.
    [diffsig] is the entry's persisted diff signature; when supplied the
    token channel reads the target's cached token set
    ({!Staticfeat.Cache.token_set}) against its delta-token hashes.
    The evaluation pipeline ({!Pipeline.analyze}) passes it; the scanner
    deliberately does not — its evidence (and hence its report bytes)
    stays identical whether or not index pruning is enabled. *)

val decide : evidence -> verdict * float
(** Verdict plus a confidence in (0.5, 1\]: the margin between the two
    combined scores. *)

val verdict_to_string : verdict -> string
