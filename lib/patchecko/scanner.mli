(** Whole-firmware scanning — the deployment entry point.

    For every database entry and every library image of the firmware, run
    the hybrid pipeline (vulnerable reference) and report the located
    function with its differential verdict.  Matches whose dynamic
    distance exceeds [max_distance] are suppressed (weak matches are
    almost always the static stage's false positives surviving on
    benign behaviour).

    Each (CVE × image) cell runs under a {!Robust.Supervisor}: a
    host-level fault (a corrupted image, an extraction failure, a chaos
    injection) degrades the report and is recorded in the fault ledger
    instead of aborting the whole scan.  Retries are bounded and
    escalated — [Fuel_exhausted] retries at 4x fuel, [Extract_failure]
    retries after invalidating the image's feature-cache entry,
    permanent faults give up immediately. *)

type finding = {
  cve_id : string;
  description : string;
  image : string;  (** library image name *)
  findex : int;  (** located function index *)
  distance : float;  (** dynamic similarity distance (smaller = closer) *)
  verdict : Differential.verdict;
  confidence : float;
}

type outcome =
  | Recovered  (** the cell faulted but a retry succeeded *)
  | Degraded  (** the cell succeeded but dropped faulting candidates *)
  | Failed  (** the cell (or a prefill) gave up *)

type fault_record = {
  cve : string;
      (** ["-"] for cache-prefill records, ["*"] for per-image static
          batch records (an image-level static fault takes out the
          image's whole column) *)
  target : string;  (** image name *)
  fault : Robust.Fault.t;
  attempts : int;
  outcome : outcome;
}

type report = {
  findings : finding list;  (** in (CVE, image) order *)
  ledger : fault_record list;
      (** every fault observed, in deterministic order: prefill records
          (firmware images then database reference images), then
          per-entry reference-context records, then per-image static
          records, then dynamic cell records in grid order.  Empty on a
          fault-free scan. *)
  cells : int;  (** grid size: entries × images *)
  failed_cells : int;  (** cells that produced no result at all *)
}

val scan_firmware :
  ?dyn_config:Dynamic_stage.config ->
  ?max_distance:float ->
  ?max_retries:int ->
  classifier:Static_stage.classifier ->
  db:Vulndb.t ->
  Loader.Firmware.t ->
  report
(** [max_distance] defaults to 50; [max_retries] (per supervised unit,
    default 2) bounds supervised retries.  The scan runs in four phases:
    cache prefill, then one supervised reference-context preparation per
    database entry (environments + reference profile, shared by every
    cell of the entry's row), then one supervised batched static pass
    per image against the whole database (the parallelism is inside the
    batch kernel), then the dynamic half of the (entry × image) grid
    fanned out over the default domain pool — only cells with static
    candidates carry work.  Findings AND ledger are identical whatever
    the domain count, including under armed fault injection. *)

val scan_firmware_plain :
  ?dyn_config:Dynamic_stage.config ->
  ?max_distance:float ->
  classifier:Static_stage.classifier ->
  db:Vulndb.t ->
  Loader.Firmware.t ->
  finding list
(** The original per-cell engine (no supervisor, no ledger, no
    reference-context sharing or batched static pass; faults escape as
    exceptions).  Kept as the before-rearchitecture baseline for the
    scan and chaos benchmarks; only meaningful with injection
    disarmed. *)

val finding_to_string : finding -> string
val fault_record_to_string : fault_record -> string
val outcome_to_string : outcome -> string

val findings_to_json : finding list -> string
(** Machine-readable report (a small hand-rolled JSON emitter — no
    external dependency). *)

val ledger_to_json : fault_record list -> string

val report_to_json : report -> string
(** Findings, ledger and cell counts in one JSON object — the byte
    string compared across domain counts by the chaos tests. *)
