(** Whole-firmware scanning — the deployment entry point.

    For every database entry and every library image of the firmware, run
    the hybrid pipeline (vulnerable reference) and report the located
    function with its differential verdict.  Matches whose dynamic
    distance exceeds [max_distance] are suppressed (weak matches are
    almost always the static stage's false positives surviving on
    benign behaviour).

    Each (CVE × image) cell runs under a {!Robust.Supervisor}: a
    host-level fault (a corrupted image, an extraction failure, a chaos
    injection) degrades the report and is recorded in the fault ledger
    instead of aborting the whole scan.  Retries are bounded and
    escalated — [Fuel_exhausted] retries at 4x fuel, [Extract_failure]
    retries after invalidating the image's feature-cache entry,
    permanent faults give up immediately. *)

type finding = {
  cve_id : string;
  description : string;
  image : string;  (** library image name *)
  findex : int;  (** located function index *)
  distance : float;  (** dynamic similarity distance (smaller = closer) *)
  verdict : Differential.verdict;
  confidence : float;
}

type outcome =
  | Recovered  (** the cell faulted but a retry succeeded *)
  | Degraded  (** the cell succeeded but dropped faulting candidates *)
  | Failed  (** the cell (or a prefill) gave up *)

type fault_record = {
  cve : string;
      (** ["-"] for cache-prefill records, ["~"] for per-image pruning
          records (a permanently failing token extraction degrades to
          keeping the image's whole column), ["*"] for per-image static
          batch records (an image-level static fault takes out the
          image's whole column) *)
  target : string;  (** image name *)
  fault : Robust.Fault.t;
  attempts : int;
  outcome : outcome;
}

type report = {
  findings : finding list;  (** in (CVE, image) order *)
  ledger : fault_record list;
      (** every fault observed, in deterministic order: firmware prefill
          records, then (with pruning) per-image prune records, then
          database reference prefill records, then per-entry
          reference-context records, then per-image static records, then
          dynamic cell records in grid order.  Empty on a fault-free
          scan. *)
  cells : int;  (** grid size: entries × images *)
  failed_cells : int;  (** cells that produced no result at all *)
  pruned_cells : int;
      (** cells skipped by the candidate index (0 without [~prune]).
          Deliberately absent from {!report_to_json}: on a fault-free
          corpus a pruned and an exhaustive report serialize to the same
          bytes, which is exactly the parity oracle the tests compare. *)
}

val prune_safe_distance : float
(** The reporting threshold candidate pruning is calibrated against
    (3.0).  Below it every reported match is structural — the same
    function across build configurations, or a same-family sibling at
    dynamic distance 0 — and covers one of its entry's side anchors; the
    nearest structural cross-family match sits at 4.0 and the nearest
    unrelated library function at 5.8.  {!scan_firmware} silently
    disables [~prune] when [max_distance] exceeds this, because the
    weak cross matches a looser cutoff admits live in cells the index
    correctly skips. *)

val scan_firmware :
  ?dyn_config:Dynamic_stage.config ->
  ?max_distance:float ->
  ?max_retries:int ->
  ?prune:bool ->
  classifier:Static_stage.classifier ->
  db:Vulndb.t ->
  Loader.Firmware.t ->
  report
(** [max_distance] defaults to 50; [max_retries] (per supervised unit,
    default 2) bounds supervised retries.  The scan runs in four phases:
    cache prefill, then one supervised reference-context preparation per
    database entry (environments + reference profile, shared by every
    cell of the entry's row), then one supervised batched static pass
    per image against the database (the parallelism is inside the batch
    kernel), then the dynamic half of the (entry × image) grid fanned
    out over the default domain pool — only cells with static candidates
    carry work.  Findings AND ledger are identical whatever the domain
    count, including under armed fault injection.

    [prune] (default false — the exhaustive correctness oracle) inserts
    a candidate-pruning phase after the firmware prefill: each image's
    cached signature-token sets ({!Staticfeat.Cache.token_sets}) are
    joined against the database's inverted anchor index
    ({!Signature.Index}), and cells whose entry has no candidate
    function in the image are skipped before any reference prefill,
    reference-context preparation, NN scoring or VM execution — the
    expensive stages run on O(candidates) cells instead of
    O(entries × images).  The index never prunes an entry whose anchor
    tokens all appear in some function (and unprunable entries are
    always kept), and batched static scores are bit-identical whatever
    the batch composition, so on a fault-free corpus the pruned report
    serializes to exactly the same bytes as the exhaustive one.
    Pruning only engages when [max_distance] is at most
    {!prune_safe_distance}; above that the scan silently falls back to
    the exhaustive path so weak-match exploration stays complete. *)

val scan_firmware_plain :
  ?dyn_config:Dynamic_stage.config ->
  ?max_distance:float ->
  classifier:Static_stage.classifier ->
  db:Vulndb.t ->
  Loader.Firmware.t ->
  finding list
(** The original per-cell engine (no supervisor, no ledger, no
    reference-context sharing or batched static pass; faults escape as
    exceptions).  Kept as the before-rearchitecture baseline for the
    scan and chaos benchmarks; only meaningful with injection
    disarmed. *)

val finding_to_string : finding -> string
val fault_record_to_string : fault_record -> string
val outcome_to_string : outcome -> string

val findings_to_json : finding list -> string
(** Machine-readable report (a small hand-rolled JSON emitter — no
    external dependency). *)

val ledger_to_json : fault_record list -> string

val report_to_json : report -> string
(** Findings, ledger and cell counts in one JSON object — the byte
    string compared across domain counts by the chaos tests. *)
