(** Whole-firmware scanning — the deployment entry point.

    For every database entry and every library image of the firmware, run
    the hybrid pipeline (vulnerable reference) and report the located
    function with its differential verdict.  Matches whose dynamic
    distance exceeds [max_distance] are suppressed (weak matches are
    almost always the static stage's false positives surviving on
    benign behaviour). *)

type finding = {
  cve_id : string;
  description : string;
  image : string;  (** library image name *)
  findex : int;  (** located function index *)
  distance : float;  (** dynamic similarity distance (smaller = closer) *)
  verdict : Differential.verdict;
  confidence : float;
}

val scan_firmware :
  ?dyn_config:Dynamic_stage.config ->
  ?max_distance:float ->
  classifier:Static_stage.classifier ->
  db:Vulndb.t ->
  Loader.Firmware.t ->
  finding list
(** Findings in (CVE, image) order.  [max_distance] defaults to 50.
    The (entry × image) grid is scanned in parallel on the default
    domain pool after the per-image static features are cached once;
    findings are identical whatever the domain count. *)

val finding_to_string : finding -> string
val findings_to_json : finding list -> string
(** Machine-readable report (a small hand-rolled JSON emitter — no
    external dependency). *)
