type config = {
  k_envs : int;
  fuel : int;
  seed : int64;
  p : float;
}

let default_config = { k_envs = 8; fuel = 200_000; seed = 0xD15EA5EL; p = 3.0 }

type result = {
  envs : Vm.Env.t list;
  envs_used : int;
  validated : int list;
  faulted : (int * Robust.Fault.t) list;
  ranking : int Similarity.Rank.entry list;
  reference_profile : Util.Vec.t list;
  profiles : (int * Util.Vec.t list) list;
  executions : int;
  seconds : float;
}

let profile ~fuel img fidx envs =
  List.map (fun env -> (Vm.Exec.run ~fuel img fidx env).Vm.Exec.features) envs

let m_runs = Obs.Metrics.counter "dynamic.runs"
let m_candidates_in = Obs.Metrics.counter "dynamic.candidates_in"
let m_validated = Obs.Metrics.counter "dynamic.validated"
let m_executions = Obs.Metrics.counter "dynamic.executions"
let m_faulted = Obs.Metrics.counter "dynamic.faulted"

(* The reference side of a cell — the surviving environments and the
   reference function's profile over them — depends only on (config,
   reference, shape), never on the target image.  Preparing it once per
   database entry and passing it to [run] for each of the firmware's
   images removes the dominant redundant VM work of a scan (the
   reference used to be re-filtered and re-profiled for every cell of
   its row).  [run ~ctx] is bit-identical to recomputing: environment
   generation is a pure function of the seed and shape, and filtering /
   profiling are pure functions of the reference and fuel. *)
type ref_ctx = {
  ctx_envs : Vm.Env.t list;
  ctx_reference_profile : Util.Vec.t list;
}

let prepare_reference ?(config = default_config)
    ~reference:(ref_img, ref_idx) ~shape () =
  let rng = Util.Prng.create config.seed in
  let raw_envs = Fuzz.Envgen.environments rng shape (config.k_envs * 2) in
  let envs =
    let ok = Fuzz.Validate.filter_envs ~fuel:config.fuel ref_img ref_idx raw_envs in
    let rec take n = function
      | [] -> []
      | e :: rest -> if n = 0 then [] else e :: take (n - 1) rest
    in
    take config.k_envs ok
  in
  {
    ctx_envs = envs;
    ctx_reference_profile = profile ~fuel:config.fuel ref_img ref_idx envs;
  }

let run ?(config = default_config) ?ctx ~reference:(ref_img, ref_idx) ~shape
    ~target ~candidates () =
  Obs.Trace.with_span ~name:"stage.dynamic"
    ~attrs:(fun () ->
      [
        ("image", target.Loader.Image.name);
        ("candidates", string_of_int (List.length candidates));
      ])
  @@ fun () ->
  let start = Util.Clock.now () in
  (* over-generate, then keep environments the reference survives — or
     reuse the per-entry context prepared once by the scanner.  A
     host-level fault while running the *reference* poisons the whole
     cell and propagates to the supervisor. *)
  let envs, reference_profile =
    match ctx with
    | Some c -> (c.ctx_envs, c.ctx_reference_profile)
    | None ->
      let c = prepare_reference ~config ~reference:(ref_img, ref_idx) ~shape () in
      (c.ctx_envs, c.ctx_reference_profile)
  in
  (* per-candidate isolation: a host-level fault (chaos injection, or a
     genuine runtime bug) while validating or profiling one candidate
     drops that candidate only; the rest of the cell proceeds degraded
     instead of losing every candidate to one bad execution *)
  let faulted = ref [] in
  let executions = ref 0 in
  let survivors = ref [] in
  List.iter
    (fun fidx ->
      match Fuzz.Validate.run ~fuel:config.fuel target ~candidates:[ fidx ] envs with
      | report ->
        executions := !executions + report.Fuzz.Validate.executions;
        if report.Fuzz.Validate.survivors <> [] then survivors := fidx :: !survivors
      | exception Robust.Fault.Fault f -> faulted := (fidx, f) :: !faulted)
    candidates;
  let validated = List.rev !survivors in
  let profiles =
    List.filter_map
      (fun fidx ->
        match profile ~fuel:config.fuel target fidx envs with
        | p -> Some (fidx, p)
        | exception Robust.Fault.Fault f ->
          faulted := (fidx, f) :: !faulted;
          None)
      validated
  in
  let ranking =
    Similarity.Rank.by_distance ~p:config.p ~reference:reference_profile profiles
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_candidates_in (List.length candidates);
  Obs.Metrics.add m_validated (List.length validated);
  Obs.Metrics.add m_executions !executions;
  Obs.Metrics.add m_faulted (List.length !faulted);
  {
    envs;
    envs_used = List.length envs;
    validated;
    faulted = List.rev !faulted;
    ranking;
    reference_profile;
    profiles;
    executions = !executions;
    seconds = Util.Clock.since start;
  }
