type config = {
  k_envs : int;
  fuel : int;
  seed : int64;
  p : float;
}

let default_config = { k_envs = 8; fuel = 200_000; seed = 0xD15EA5EL; p = 3.0 }

type result = {
  envs : Vm.Env.t list;
  envs_used : int;
  validated : int list;
  ranking : int Similarity.Rank.entry list;
  reference_profile : Util.Vec.t list;
  profiles : (int * Util.Vec.t list) list;
  executions : int;
  seconds : float;
}

let profile ~fuel img fidx envs =
  List.map (fun env -> (Vm.Exec.run ~fuel img fidx env).Vm.Exec.features) envs

let run ?(config = default_config) ~reference:(ref_img, ref_idx) ~shape ~target
    ~candidates () =
  let start = Util.Clock.now () in
  let rng = Util.Prng.create config.seed in
  (* over-generate, then keep environments the reference survives *)
  let raw_envs = Fuzz.Envgen.environments rng shape (config.k_envs * 2) in
  let envs =
    let ok = Fuzz.Validate.filter_envs ~fuel:config.fuel ref_img ref_idx raw_envs in
    let rec take n = function
      | [] -> []
      | e :: rest -> if n = 0 then [] else e :: take (n - 1) rest
    in
    take config.k_envs ok
  in
  let report = Fuzz.Validate.run ~fuel:config.fuel target ~candidates envs in
  let reference_profile = profile ~fuel:config.fuel ref_img ref_idx envs in
  let profiles =
    List.map
      (fun fidx -> (fidx, profile ~fuel:config.fuel target fidx envs))
      report.Fuzz.Validate.survivors
  in
  let ranking =
    Similarity.Rank.by_distance ~p:config.p ~reference:reference_profile profiles
  in
  {
    envs;
    envs_used = List.length envs;
    validated = report.Fuzz.Validate.survivors;
    ranking;
    reference_profile;
    profiles;
    executions = report.Fuzz.Validate.executions;
    seconds = Util.Clock.since start;
  }
