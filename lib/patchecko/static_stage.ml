type classifier = {
  model : Nn.Model.t;
  normalizer : Nn.Data.normalizer;
  threshold : float;
}

let default_threshold = 0.5

type result = {
  candidates : int list;
  scores : float array;
  seconds : float;
}

let pair_score clf ~reference ~candidate =
  let input = Nn.Data.normalize_vec clf.normalizer (Util.Vec.concat reference candidate) in
  Nn.Model.predict_one clf.model input

(* Rows are scored in fixed-size batches distributed over the domain
   pool.  The network's forward pass is row-independent, so batched
   scoring produces bit-identical probabilities to one whole-image
   matrix, whatever the domain count.  The batch boundaries are fixed
   (not adaptive) so the per-batch metrics below are also independent of
   scheduling. *)
let score_batch = 32

let m_scans = Obs.Metrics.counter "static.scans"
let m_batch_rows = Obs.Metrics.histogram "static.batch_rows"
let m_scores = Obs.Metrics.histogram "static.score_pct"
let m_candidates = Obs.Metrics.counter "static.candidates"

(* Per-domain flat buffers for the batched kernel: one input matrix
   (score_batch × pair width) and the model's per-layer activation
   buffers, reused across batches, references and images — the hot loop
   allocates nothing.  Rebuilt only when the classifier changes. *)
type kernel_scratch = {
  for_model : Nn.Model.t;  (* physical identity key *)
  width : int;
  input : float array;
  mscratch : Nn.Model.scratch;
}

let scratch_key : kernel_scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let kernel_scratch model ~width =
  let slot = Domain.DLS.get scratch_key in
  match !slot with
  | Some s when s.for_model == model && s.width = width -> s
  | _ ->
    let s =
      {
        for_model = model;
        width;
        input = Array.make (score_batch * width) 0.0;
        mscratch = Nn.Model.make_scratch model ~max_rows:score_batch;
      }
    in
    slot := Some s;
    s

(* Score every function of the image against every reference vector in
   one parallel pass.  The image's candidate halves are normalized into
   a flat block once and then scored against each reference (the
   references, being per-CVE, are the cheap side: one normalized row
   each), so scanning an image against a whole database does the
   per-function work once instead of once per CVE. *)
let scan_many ?features clf ~references img =
  (* "nn.score" injection site: a chaos run can make the whole static
     scoring pass of an image fault, keyed by the target image *)
  (match Robust.Inject.fire ~site:"nn.score" ~key:img.Loader.Image.name () with
  | Some _ ->
    raise
      (Robust.Fault.Fault
         (Robust.Fault.Worker_crash
            {
              site = "nn.score";
              detail = "injected scoring fault on " ^ img.Loader.Image.name;
            }))
  | None -> ());
  Obs.Trace.with_span ~name:"stage.static"
    ~attrs:(fun () ->
      [
        ("image", img.Loader.Image.name);
        ("references", string_of_int (Array.length references));
      ])
    (fun () ->
      let start = Util.Clock.now () in
      let feats =
        match features with Some f -> f | None -> Staticfeat.Cache.features img
      in
      let n = Array.length feats in
      let nrefs = Array.length references in
      let pair_width =
        Array.length (fst (Nn.Data.normalizer_stats clf.normalizer))
      in
      let fwidth = pair_width / 2 in
      (* candidate halves, z-scored once into one flat block *)
      let cand = Array.make (n * fwidth) 0.0 in
      for i = 0 to n - 1 do
        Nn.Data.normalize_slice clf.normalizer ~offset:fwidth feats.(i) cand
          ~pos:(i * fwidth)
      done;
      let refs = Array.make (max 1 (nrefs * fwidth)) 0.0 in
      Array.iteri
        (fun r v ->
          Nn.Data.normalize_slice clf.normalizer ~offset:0 v refs
            ~pos:(r * fwidth))
        references;
      let scores = Array.init nrefs (fun _ -> Array.make n 0.0) in
      let nbatches = (n + score_batch - 1) / score_batch in
      (* unit of work: one (reference, batch-of-functions) tile *)
      Parallel.Pool.parallel_for ~chunk:1 (nrefs * nbatches) (fun w ->
          let r = w / nbatches in
          let b = w mod nbatches in
          let lo = b * score_batch in
          let len = min score_batch (n - lo) in
          let s = kernel_scratch clf.model ~width:pair_width in
          for k = 0 to len - 1 do
            let row = k * pair_width in
            Array.blit refs (r * fwidth) s.input row fwidth;
            Array.blit cand ((lo + k) * fwidth) s.input (row + fwidth) fwidth
          done;
          Nn.Model.predict_into clf.model s.mscratch ~rows:len ~input:s.input
            ~dst:scores.(r) ~pos:lo;
          Obs.Metrics.observe m_batch_rows len;
          for k = 0 to len - 1 do
            Obs.Metrics.observe m_scores
              (int_of_float (scores.(r).(lo + k) *. 100.0))
          done);
      let seconds = Util.Clock.since start in
      Obs.Metrics.incr m_scans;
      Array.map
        (fun scores ->
          let candidates = ref [] in
          for i = n - 1 downto 0 do
            if scores.(i) >= clf.threshold then candidates := i :: !candidates
          done;
          Obs.Metrics.add m_candidates (List.length !candidates);
          { candidates = !candidates; scores; seconds })
        scores)

let scan ?features clf ~reference img =
  (scan_many ?features clf ~references:[| reference |] img).(0)
