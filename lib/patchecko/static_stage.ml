type classifier = {
  model : Nn.Model.t;
  normalizer : Nn.Data.normalizer;
  threshold : float;
}

let default_threshold = 0.5

type result = {
  candidates : int list;
  scores : float array;
  seconds : float;
}

let pair_score clf ~reference ~candidate =
  let input = Nn.Data.normalize_vec clf.normalizer (Util.Vec.concat reference candidate) in
  Nn.Model.predict_one clf.model input

(* Rows are scored in fixed-size batches distributed over the domain
   pool.  The network's forward pass is row-independent, so batched
   scoring produces bit-identical probabilities to one whole-image
   matrix, whatever the domain count. *)
let score_batch = 32

let m_scans = Obs.Metrics.counter "static.scans"
let m_batch_rows = Obs.Metrics.histogram "static.batch_rows"
let m_scores = Obs.Metrics.histogram "static.score_pct"
let m_candidates = Obs.Metrics.counter "static.candidates"

let scan ?features clf ~reference img =
  (* "nn.score" injection site: a chaos run can make the whole static
     scoring pass of a cell fault, keyed by the target image *)
  (match Robust.Inject.fire ~site:"nn.score" ~key:img.Loader.Image.name () with
  | Some _ ->
    raise
      (Robust.Fault.Fault
         (Robust.Fault.Worker_crash
            {
              site = "nn.score";
              detail = "injected scoring fault on " ^ img.Loader.Image.name;
            }))
  | None -> ());
  Obs.Trace.with_span ~name:"stage.static"
    ~attrs:(fun () -> [ ("image", img.Loader.Image.name) ])
    (fun () ->
      let start = Util.Clock.now () in
      let feats =
        match features with Some f -> f | None -> Staticfeat.Cache.features img
      in
      let n = Array.length feats in
      let scores = Array.make n 0.0 in
      let nbatches = (n + score_batch - 1) / score_batch in
      Parallel.Pool.parallel_for ~chunk:1 nbatches (fun b ->
          let lo = b * score_batch in
          let len = min score_batch (n - lo) in
          let rows =
            Array.init len (fun k ->
                Nn.Data.normalize_vec clf.normalizer
                  (Util.Vec.concat reference feats.(lo + k)))
          in
          let batch_scores = Nn.Model.predict clf.model (Nn.Matrix.of_rows rows) in
          Obs.Metrics.observe m_batch_rows len;
          Array.blit batch_scores 0 scores lo len);
      let candidates = ref [] in
      for i = n - 1 downto 0 do
        Obs.Metrics.observe m_scores (int_of_float (scores.(i) *. 100.0));
        if scores.(i) >= clf.threshold then candidates := i :: !candidates
      done;
      Obs.Metrics.incr m_scans;
      Obs.Metrics.add m_candidates (List.length !candidates);
      { candidates = !candidates; scores; seconds = Util.Clock.since start })
