(** The vulnerability database (the paper's Dataset II): per CVE, the
    static feature vectors of the vulnerable and patched reference
    functions, the compact reference images to execute them from, and the
    fuzzable prototype. *)

type entry = {
  cve_id : string;
  description : string;
  vuln_image : Loader.Image.t;
  vuln_findex : int;
  patched_image : Loader.Image.t;
  patched_findex : int;
  vuln_static : Util.Vec.t;
  patched_static : Util.Vec.t;
  vuln_struct : Similarity.Structfp.t;
  patched_struct : Similarity.Structfp.t;
  shape : Fuzz.Shape.t;
  signature : Signature.Diffsig.t;
      (** diff-derived signature over every supplied build configuration
          (see {!make_entry}'s [?builds]) *)
}

type t

exception Corrupt of string
(** Raised by {!create} on an inconsistent entry list: empty or
    duplicate CVE ids, or reference function indices outside their
    image's function table. *)

val create : entry list -> t
(** Validates the entries (raises {!Corrupt}) and builds the inverted
    candidate index ({!Signature.Index}) over their signatures. *)

val entries : t -> entry list

val index : t -> Signature.Index.t
(** The anchor-token inverted index the scanner's pruning stage joins
    candidate functions against. *)

val find : t -> string -> entry option
val size : t -> int

val make_entry :
  ?source:Minic.Ast.func * Minic.Ast.func ->
  ?builds:(Loader.Image.t * int) list * (Loader.Image.t * int) list ->
  cve_id:string ->
  description:string ->
  shape:Fuzz.Shape.t ->
  vuln:Loader.Image.t * int ->
  patched:Loader.Image.t * int ->
  unit ->
  entry
(** Computes the static feature vectors from the images.  When
    [?source] supplies the (vulnerable, patched) MinC ASTs, the
    structural fingerprints are folded from the source trees
    ({!Analysis.Struct_enc.of_func}); otherwise they are recovered from
    the reference binaries via {!Staticfeat.Cache.struct_fingerprint}.

    [?builds] supplies extra (vulnerable builds, patched builds) of the
    same references at other (architecture, optimisation) configurations
    for signature extraction ({!Signature.Diffsig.extract}); with no
    extra builds the signature is extracted from the reference pair
    alone and stays unprunable, so the entry is never pruned. *)

val reference_static : entry -> patched:bool -> Util.Vec.t
val reference_image : entry -> patched:bool -> Loader.Image.t * int
