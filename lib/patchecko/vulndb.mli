(** The vulnerability database (the paper's Dataset II): per CVE, the
    static feature vectors of the vulnerable and patched reference
    functions, the compact reference images to execute them from, and the
    fuzzable prototype. *)

type entry = {
  cve_id : string;
  description : string;
  vuln_image : Loader.Image.t;
  vuln_findex : int;
  patched_image : Loader.Image.t;
  patched_findex : int;
  vuln_static : Util.Vec.t;
  patched_static : Util.Vec.t;
  vuln_struct : Similarity.Structfp.t;
  patched_struct : Similarity.Structfp.t;
  shape : Fuzz.Shape.t;
}

type t

val create : entry list -> t
val entries : t -> entry list
val find : t -> string -> entry option
val size : t -> int

val make_entry :
  ?source:Minic.Ast.func * Minic.Ast.func ->
  cve_id:string ->
  description:string ->
  shape:Fuzz.Shape.t ->
  vuln:Loader.Image.t * int ->
  patched:Loader.Image.t * int ->
  unit ->
  entry
(** Computes the static feature vectors from the images.  When
    [?source] supplies the (vulnerable, patched) MinC ASTs, the
    structural fingerprints are folded from the source trees
    ({!Analysis.Struct_enc.of_func}); otherwise they are recovered from
    the reference binaries via {!Staticfeat.Cache.struct_fingerprint}. *)

val reference_static : entry -> patched:bool -> Util.Vec.t
val reference_image : entry -> patched:bool -> Loader.Image.t * int
