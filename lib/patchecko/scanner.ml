type finding = {
  cve_id : string;
  description : string;
  image : string;
  findex : int;
  distance : float;
  verdict : Differential.verdict;
  confidence : float;
}

(* --- fault ledger ----------------------------------------------------- *)

type outcome = Recovered | Degraded | Failed

let outcome_to_string = function
  | Recovered -> "recovered"
  | Degraded -> "degraded"
  | Failed -> "failed"

type fault_record = {
  cve : string;  (* "-" for prefill records *)
  target : string;
  fault : Robust.Fault.t;
  attempts : int;
  outcome : outcome;
}

type report = {
  findings : finding list;
  ledger : fault_record list;
  cells : int;
  failed_cells : int;
  pruned_cells : int;
}

(* --- one (CVE, image) cell -------------------------------------------- *)

let scan_image ~dyn_config ~max_distance ~classifier (entry : Vulndb.entry)
    (image : Loader.Image.t) =
  let static =
    Static_stage.scan ~features:(Staticfeat.Cache.features image) classifier
      ~reference:entry.Vulndb.vuln_static image
  in
  match static.Static_stage.candidates with
  | [] -> (None, [])
  | candidates -> (
    let dyn =
      Dynamic_stage.run ~config:dyn_config
        ~reference:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
        ~shape:entry.Vulndb.shape ~target:image ~candidates ()
    in
    let dropped = dyn.Dynamic_stage.faulted in
    match dyn.Dynamic_stage.ranking with
    | [] -> (None, dropped)
    | best :: _ when best.Similarity.Rank.distance > max_distance ->
      (None, dropped)
    | best :: _ ->
      let evidence =
        Differential.gather
          ~vuln:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
          ~patched:(entry.Vulndb.patched_image, entry.Vulndb.patched_findex)
          ~target:(image, best.Similarity.Rank.candidate)
          ~structs:(entry.Vulndb.vuln_struct, entry.Vulndb.patched_struct)
          ()
      in
      let verdict, confidence = Differential.decide evidence in
      ( Some
          {
            cve_id = entry.Vulndb.cve_id;
            description = entry.Vulndb.description;
            image = image.Loader.Image.name;
            findex = best.Similarity.Rank.candidate;
            distance = best.Similarity.Rank.distance;
            verdict;
            confidence;
          },
        dropped ))

(* The dynamic half of one cell, given the static candidates: validate,
   rank, cut off by distance, gather differential evidence. *)
let dynamic_image ~dyn_config ~ctx ~max_distance (entry : Vulndb.entry)
    (image : Loader.Image.t) candidates =
  let dyn =
    Dynamic_stage.run ~config:dyn_config ?ctx
      ~reference:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
      ~shape:entry.Vulndb.shape ~target:image ~candidates ()
  in
  let dropped = dyn.Dynamic_stage.faulted in
  match dyn.Dynamic_stage.ranking with
  | [] -> (None, dropped)
  | best :: _ when best.Similarity.Rank.distance > max_distance ->
    (None, dropped)
  | best :: _ ->
    let evidence =
      Differential.gather
        ~vuln:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
        ~patched:(entry.Vulndb.patched_image, entry.Vulndb.patched_findex)
        ~target:(image, best.Similarity.Rank.candidate)
        ~structs:(entry.Vulndb.vuln_struct, entry.Vulndb.patched_struct)
        ()
    in
    let verdict, confidence = Differential.decide evidence in
    ( Some
        {
          cve_id = entry.Vulndb.cve_id;
          description = entry.Vulndb.description;
          image = image.Loader.Image.name;
          findex = best.Similarity.Rank.candidate;
          distance = best.Similarity.Rank.distance;
          verdict;
          confidence;
        },
      dropped )

(* Supervised dynamic cell: bounded deterministic retry with escalation.
   A Fuel_exhausted fault retries with 4x fuel — and drops the shared
   reference context, which was prepared at base fuel, so the escalated
   attempt recomputes the reference side at the escalated fuel exactly
   as the pre-amortization engine did.  Permanent faults give up
   immediately. *)
let dyn_cell ~dyn_config ~max_distance ~max_retries ~ctx entry image candidates =
  let key =
    entry.Vulndb.cve_id ^ "@" ^ image.Loader.Image.name
  in
  (* a cell span is deliberately a root: at 1 domain the cell runs on
     the caller's domain inside the scan.firmware span, at N domains on
     a worker — parenting it ambiently would make the trace shape depend
     on the domain count (and cross-domain links are forbidden) *)
  Obs.Trace.root_span ~name:"scan.cell"
    ~attrs:(fun () ->
      [ ("cve", entry.Vulndb.cve_id); ("image", image.Loader.Image.name) ])
  @@ fun () ->
  Robust.Supervisor.run ~max_retries ~key (fun esc ->
      let dyn_config, ctx =
        if esc.Robust.Supervisor.fuel_factor = 1 then (dyn_config, ctx)
        else
          ( {
              dyn_config with
              Dynamic_stage.fuel =
                dyn_config.Dynamic_stage.fuel * esc.Robust.Supervisor.fuel_factor;
            },
            None )
      in
      dynamic_image ~dyn_config ~ctx ~max_distance entry image candidates)

(* --- whole-firmware scan ---------------------------------------------- *)

let m_cells = Obs.Metrics.counter "scan.cells"
let m_failed_cells = Obs.Metrics.counter "scan.failed_cells"
let m_findings = Obs.Metrics.counter "scan.findings"
let m_prune_kept = Obs.Metrics.counter "prune.cells_kept"
let m_prune_pruned = Obs.Metrics.counter "prune.cells_pruned"

(* Supervised cache prefill for one image.  Runs sequentially before the
   parallel grid so that extraction faults resolve (to Ready or a
   permanently Failed entry) in deterministic order — cells then only
   ever observe a settled cache, which keeps the ledger identical
   whatever the domain count. *)
let prefill ~max_retries ledger img =
  let key = "prefill@" ^ img.Loader.Image.name in
  Obs.Trace.with_span ~name:"scan.prefill"
    ~attrs:(fun () -> [ ("image", img.Loader.Image.name) ])
  @@ fun () ->
  let o =
    Robust.Supervisor.run ~max_retries ~key (fun esc ->
        if esc.Robust.Supervisor.attempt > 1 then Staticfeat.Cache.invalidate img;
        ignore (Staticfeat.Cache.features img))
  in
  let record outcome fault =
    ledger :=
      {
        cve = "-";
        target = img.Loader.Image.name;
        fault;
        attempts = o.Robust.Supervisor.attempts;
        outcome;
      }
      :: !ledger
  in
  match o.Robust.Supervisor.result with
  | Ok () -> List.iter (record Recovered) o.Robust.Supervisor.faults
  | Error _ -> List.iter (record Failed) o.Robust.Supervisor.faults

(* The reporting threshold pruning is calibrated against.  On this
   corpus, any function scoring below it against an entry's reference is
   a structural match (same patch family: dynamic distance 0, or the
   same function across build configurations: <= 2.6) and therefore
   covers one of the entry's side anchors; the nearest structural
   cross-family match sits at distance 4.0 and the nearest unrelated
   library function at 5.8.  Above the threshold those cross matches
   appear in the exhaustive report, so pruning — which would skip their
   cells — is automatically disabled to keep the exhaustive path the
   byte-exact oracle at every cutoff. *)
let prune_safe_distance = 3.0

let scan_firmware ?(dyn_config = Dynamic_stage.default_config)
    ?(max_distance = 50.0) ?(max_retries = 2) ?(prune = false) ~classifier ~db
    (fw : Loader.Firmware.t) =
  let prune = prune && max_distance <= prune_safe_distance in
  Obs.Trace.root_span ~name:"scan.firmware"
    ~attrs:(fun () ->
      [
        ("device", fw.Loader.Firmware.device);
        ("images", string_of_int (Array.length fw.Loader.Firmware.images));
        ("cves", string_of_int (Vulndb.size db));
      ])
  @@ fun () ->
  let images = fw.Loader.Firmware.images in
  let entries = Vulndb.entries db in
  let entry_arr = Array.of_list entries in
  let nimg = Array.length images in
  let ledger = ref [] in
  let record ~cve ~target ~attempts outcome fault =
    ledger := { cve; target; fault; attempts; outcome } :: !ledger
  in
  let nentries = Array.length entry_arr in
  let ncells = nentries * nimg in
  (* 1. settle the feature cache up front: the firmware images (scored
     by the static stage) and the database reference images (read by the
     differential stage).  Each extraction is itself parallel inside. *)
  Array.iter (prefill ~max_retries ledger) images;
  (* 1b. candidate pruning: join each image's cached signature-token
     sets against the database's inverted anchor index.  A cell survives
     when its entry is unprunable (single-build signature or empty
     anchor) or some function of the image carries the entry's whole
     anchor.  Pruning is an optimisation, never a correctness gate: a
     permanently failing token extraction keeps the image's whole column
     (recorded under the pseudo-CVE "~" as Degraded).  Runs sequentially
     before the grid so the kept set — and hence everything downstream —
     is identical whatever the domain count. *)
  let keep =
    if not prune then Array.make ncells true
    else begin
      let index = Vulndb.index db in
      let keep = Array.make ncells false in
      Array.iteri
        (fun i img ->
          let key = "prune@" ^ img.Loader.Image.name in
          Obs.Trace.with_span ~name:"scan.prune"
            ~attrs:(fun () -> [ ("image", img.Loader.Image.name) ])
          @@ fun () ->
          let o =
            Robust.Supervisor.run ~max_retries ~key (fun esc ->
                if esc.Robust.Supervisor.attempt > 1 then
                  Staticfeat.Cache.invalidate img;
                Signature.Index.candidate_mask index
                  (Staticfeat.Cache.token_sets img))
          in
          let rec_ outcome fault =
            record ~cve:"~" ~target:img.Loader.Image.name
              ~attempts:o.Robust.Supervisor.attempts outcome fault
          in
          match o.Robust.Supervisor.result with
          | Ok mask ->
            List.iter (rec_ Recovered) o.Robust.Supervisor.faults;
            Array.iteri
              (fun e kept -> if kept then keep.((e * nimg) + i) <- true)
              mask
          | Error _ ->
            List.iter (rec_ Degraded) o.Robust.Supervisor.faults;
            for e = 0 to nentries - 1 do
              keep.((e * nimg) + i) <- true
            done)
        images;
      keep
    end
  in
  let entry_kept e =
    let rec go i = i < nimg && (keep.((e * nimg) + i) || go (i + 1)) in
    go 0
  in
  List.iteri
    (fun e (entry : Vulndb.entry) ->
      if entry_kept e then begin
        prefill ~max_retries ledger entry.Vulndb.vuln_image;
        prefill ~max_retries ledger entry.Vulndb.patched_image
      end)
    entries;
  (* 2. one reference context per database entry, prepared sequentially
     under supervision: the entry's surviving environments and reference
     profile are identical for every image of its row, so they are
     computed once here instead of once per cell.  A permanently failing
     preparation falls back to per-cell recomputation (ctx = None).
     Entries with no surviving cell skip preparation entirely. *)
  let ctx_arr =
    Array.mapi
      (fun eidx (entry : Vulndb.entry) ->
        if not (entry_kept eidx) then None
        else
        let key = "refctx@" ^ entry.Vulndb.cve_id in
        Obs.Trace.with_span ~name:"scan.refctx"
          ~attrs:(fun () -> [ ("cve", entry.Vulndb.cve_id) ])
        @@ fun () ->
        let o =
          Robust.Supervisor.run ~max_retries ~key (fun esc ->
              let config =
                if esc.Robust.Supervisor.fuel_factor = 1 then dyn_config
                else
                  {
                    dyn_config with
                    Dynamic_stage.fuel =
                      dyn_config.Dynamic_stage.fuel
                      * esc.Robust.Supervisor.fuel_factor;
                  }
              in
              Dynamic_stage.prepare_reference ~config
                ~reference:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
                ~shape:entry.Vulndb.shape ())
        in
        let rec_ outcome fault =
          record ~cve:entry.Vulndb.cve_id
            ~target:entry.Vulndb.vuln_image.Loader.Image.name
            ~attempts:o.Robust.Supervisor.attempts outcome fault
        in
        match o.Robust.Supervisor.result with
        | Ok ctx ->
          List.iter (rec_ Recovered) o.Robust.Supervisor.faults;
          Some ctx
        | Error _ ->
          List.iter (rec_ Failed) o.Robust.Supervisor.faults;
          None)
      entry_arr
  in
  (* 3. the static stage, one batched pass per image over the surviving
     database rows: the image's normalized feature block is built once
     and scored against every kept entry's reference row (the
     parallelism is inside scan_many, at function-batch granularity).
     Per-pair scores are bit-identical whatever the batch composition,
     so scoring only the kept subset cannot change any surviving cell's
     result.  A static failure is image-level — it takes out the image's
     whole column, recorded under the pseudo-CVE "*". *)
  let static_results =
    Array.mapi
      (fun i img ->
        let kept_ids =
          Array.of_list
            (List.filter
               (fun e -> keep.((e * nimg) + i))
               (List.init nentries Fun.id))
        in
        if Array.length kept_ids = 0 then Some (Array.make nentries [])
        else begin
          let references =
            Array.map (fun e -> entry_arr.(e).Vulndb.vuln_static) kept_ids
          in
          let key = "static@" ^ img.Loader.Image.name in
          let o =
            Robust.Supervisor.run ~max_retries ~key (fun esc ->
                if esc.Robust.Supervisor.refresh_cache then
                  Staticfeat.Cache.invalidate img;
                Static_stage.scan_many classifier ~references img)
          in
          let rec_ outcome fault =
            record ~cve:"*" ~target:img.Loader.Image.name
              ~attempts:o.Robust.Supervisor.attempts outcome fault
          in
          match o.Robust.Supervisor.result with
          | Ok results ->
            List.iter (rec_ Recovered) o.Robust.Supervisor.faults;
            let full = Array.make nentries [] in
            Array.iteri
              (fun k r -> full.(kept_ids.(k)) <- r.Static_stage.candidates)
              results;
            Some full
          | Error _ ->
            List.iter (rec_ Failed) o.Robust.Supervisor.faults;
            None
        end)
      images
  in
  (* 4. fan the dynamic half of the (CVE entry × image) grid out over
     the domain pool — only cells with static candidates carry work;
     every one is independently supervised, so one faulting cell
     degrades the report instead of aborting the scan *)
  let job_of_cell = Array.make ncells (-1) in
  let jobs = ref [] in
  let njobs = ref 0 in
  let npruned = ref 0 in
  for gi = 0 to ncells - 1 do
    let e = gi / nimg and i = gi mod nimg in
    if not keep.(gi) then begin
      job_of_cell.(gi) <- -3 (* pruned away: no candidate can exist *);
      incr npruned
    end
    else
      match static_results.(i) with
      | None -> job_of_cell.(gi) <- -1 (* static failure: the cell is lost *)
      | Some cands ->
        if cands.(e) = [] then job_of_cell.(gi) <- -2 (* nothing to validate *)
        else begin
          job_of_cell.(gi) <- !njobs;
          incr njobs;
          jobs := (e, i, cands.(e)) :: !jobs
        end
  done;
  let job_arr = Array.of_list (List.rev !jobs) in
  let outcomes =
    Parallel.Pool.map_array_result ~chunk:1
      (fun (e, i, candidates) ->
        dyn_cell ~dyn_config ~max_distance ~max_retries ~ctx:ctx_arr.(e)
          entry_arr.(e) images.(i) candidates)
      job_arr
  in
  let findings = ref [] in
  let failed_cells = ref 0 in
  for gi = 0 to ncells - 1 do
    let e = gi / nimg and i = gi mod nimg in
    let entry = entry_arr.(e) and image = images.(i) in
    let record ~attempts outcome fault =
      record ~cve:entry.Vulndb.cve_id ~target:image.Loader.Image.name
        ~attempts outcome fault
    in
    match job_of_cell.(gi) with
    | -1 -> incr failed_cells
    | -2 | -3 -> ()
    | j -> (
      match outcomes.(j) with
      | Error f ->
        (* the pool worker itself was lost: the cell is gone, unretried *)
        incr failed_cells;
        record ~attempts:1 Failed f
      | Ok o -> (
        let attempts = o.Robust.Supervisor.attempts in
        match o.Robust.Supervisor.result with
        | Ok (finding_opt, dropped) ->
          (match finding_opt with
          | Some f -> findings := f :: !findings
          | None -> ());
          List.iter (record ~attempts Recovered) o.Robust.Supervisor.faults;
          List.iter (fun (_fidx, f) -> record ~attempts Degraded f) dropped
        | Error _ ->
          incr failed_cells;
          List.iter (record ~attempts Failed) o.Robust.Supervisor.faults))
  done;
  Obs.Metrics.add m_cells ncells;
  Obs.Metrics.add m_failed_cells !failed_cells;
  Obs.Metrics.add m_findings (List.length !findings);
  if prune then begin
    Obs.Metrics.add m_prune_kept (ncells - !npruned);
    Obs.Metrics.add m_prune_pruned !npruned
  end;
  {
    findings = List.rev !findings;
    ledger = List.rev !ledger;
    cells = ncells;
    failed_cells = !failed_cells;
    pruned_cells = !npruned;
  }

(* The unsupervised PR-1 grid, kept as the overhead baseline for the
   chaos benchmark: no supervisor, no ledger, faults escape as
   exceptions.  Only meaningful with injection disarmed. *)
let scan_firmware_plain ?(dyn_config = Dynamic_stage.default_config)
    ?(max_distance = 50.0) ~classifier ~db (fw : Loader.Firmware.t) =
  let images = fw.Loader.Firmware.images in
  Array.iter (fun img -> ignore (Staticfeat.Cache.features img)) images;
  let cells =
    Array.concat
      (List.map
         (fun entry -> Array.map (fun img -> (entry, img)) images)
         (Vulndb.entries db))
  in
  Parallel.Pool.map_array ~chunk:1
    (fun (entry, image) ->
      fst (scan_image ~dyn_config ~max_distance ~classifier entry image))
    cells
  |> Array.to_list
  |> List.filter_map Fun.id

let finding_to_string f =
  Printf.sprintf "%-16s %-10s function %-4d distance %8.1f  %s (%.2f)" f.cve_id
    f.image f.findex f.distance
    (Differential.verdict_to_string f.verdict)
    f.confidence

let fault_record_to_string r =
  Printf.sprintf "%-10s %-16s %-10s attempts %d  %s" (outcome_to_string r.outcome)
    r.cve r.target r.attempts
    (Robust.Fault.to_string r.fault)

(* minimal JSON string escaping: the fields we emit are ASCII identifiers
   and free-text descriptions *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let findings_to_json findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"cve\": \"%s\", \"description\": \"%s\", \"image\": \"%s\", \
            \"function\": %d, \"distance\": %.3f, \"verdict\": \"%s\", \
            \"confidence\": %.3f}"
           (json_escape f.cve_id) (json_escape f.description)
           (json_escape f.image) f.findex f.distance
           (Differential.verdict_to_string f.verdict)
           f.confidence))
    findings;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let ledger_to_json ledger =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"cve\": \"%s\", \"image\": \"%s\", \"attempts\": %d, \
            \"outcome\": \"%s\", \"fault\": %s}"
           (json_escape r.cve) (json_escape r.target) r.attempts
           (outcome_to_string r.outcome)
           (Robust.Fault.to_json r.fault)))
    ledger;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let report_to_json r =
  Printf.sprintf
    "{\"cells\": %d, \"failed_cells\": %d,\n\"findings\": %s,\"ledger\": %s}\n"
    r.cells r.failed_cells
    (findings_to_json r.findings)
    (ledger_to_json r.ledger)
