type finding = {
  cve_id : string;
  description : string;
  image : string;
  findex : int;
  distance : float;
  verdict : Differential.verdict;
  confidence : float;
}

let scan_image ~dyn_config ~max_distance ~classifier (entry : Vulndb.entry)
    (image : Loader.Image.t) =
  let static =
    Static_stage.scan ~features:(Staticfeat.Cache.features image) classifier
      ~reference:entry.Vulndb.vuln_static image
  in
  match static.Static_stage.candidates with
  | [] -> None
  | candidates -> (
    let dyn =
      Dynamic_stage.run ~config:dyn_config
        ~reference:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
        ~shape:entry.Vulndb.shape ~target:image ~candidates ()
    in
    match dyn.Dynamic_stage.ranking with
    | [] -> None
    | best :: _ when best.Similarity.Rank.distance > max_distance -> None
    | best :: _ ->
      let evidence =
        Differential.gather
          ~vuln:(entry.Vulndb.vuln_image, entry.Vulndb.vuln_findex)
          ~patched:(entry.Vulndb.patched_image, entry.Vulndb.patched_findex)
          ~target:(image, best.Similarity.Rank.candidate)
          ()
      in
      let verdict, confidence = Differential.decide evidence in
      Some
        {
          cve_id = entry.Vulndb.cve_id;
          description = entry.Vulndb.description;
          image = image.Loader.Image.name;
          findex = best.Similarity.Rank.candidate;
          distance = best.Similarity.Rank.distance;
          verdict;
          confidence;
        })

let scan_firmware ?(dyn_config = Dynamic_stage.default_config)
    ?(max_distance = 50.0) ~classifier ~db (fw : Loader.Firmware.t) =
  let images = fw.Loader.Firmware.images in
  (* fill the feature cache once per image up front (each extraction is
     itself parallel), then fan the (CVE entry × image) grid out over
     the domain pool; every cell is independent and deterministic, and
     results are collected in (CVE, image) order *)
  Array.iter (fun img -> ignore (Staticfeat.Cache.features img)) images;
  let cells =
    Array.concat
      (List.map
         (fun entry -> Array.map (fun img -> (entry, img)) images)
         (Vulndb.entries db))
  in
  Parallel.Pool.map_array ~chunk:1
    (fun (entry, image) ->
      scan_image ~dyn_config ~max_distance ~classifier entry image)
    cells
  |> Array.to_list
  |> List.filter_map Fun.id

let finding_to_string f =
  Printf.sprintf "%-16s %-10s function %-4d distance %8.1f  %s (%.2f)" f.cve_id
    f.image f.findex f.distance
    (Differential.verdict_to_string f.verdict)
    f.confidence

(* minimal JSON string escaping: the fields we emit are ASCII identifiers
   and free-text descriptions *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let findings_to_json findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"cve\": \"%s\", \"description\": \"%s\", \"image\": \"%s\", \
            \"function\": %d, \"distance\": %.3f, \"verdict\": \"%s\", \
            \"confidence\": %.3f}"
           (json_escape f.cve_id) (json_escape f.description)
           (json_escape f.image) f.findex f.distance
           (Differential.verdict_to_string f.verdict)
           f.confidence))
    findings;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
