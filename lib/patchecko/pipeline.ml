type classification = {
  tp : int;
  tn : int;
  fp : int;
  fn : int;
  total : int;
  fp_rate : float;
}

type report = {
  cve_id : string;
  reference_patched : bool;
  static : Static_stage.result;
  classification : classification option;
  dynamic : Dynamic_stage.result option;
  true_rank : int option;
  located : int option;
  verdict : (Differential.verdict * float) option;
}

let classify ~candidates ~total ~ground_truth =
  let flagged_true = List.mem ground_truth candidates in
  let tp = if flagged_true then 1 else 0 in
  let fn = 1 - tp in
  let fp = List.length candidates - tp in
  let tn = total - tp - fn - fp in
  let negatives = fp + tn in
  let fp_rate =
    if negatives = 0 then 0.0 else float_of_int fp /. float_of_int negatives
  in
  { tp; tn; fp; fn; total; fp_rate }

(* Dynamic distances of the located function to BOTH reference versions,
   over the environments of the main dynamic run (both references must
   survive them). *)
let dual_dynamic_distances ~config ~(db_entry : Vulndb.entry)
    ~(dynamic : Dynamic_stage.result) located =
  match List.assoc_opt located dynamic.Dynamic_stage.profiles with
  | None -> None
  | Some target_profile ->
    let envs = dynamic.Dynamic_stage.envs in
    let fuel = config.Dynamic_stage.fuel in
    let profile img fidx =
      if
        List.for_all (fun env -> Vm.Exec.survives ~fuel img fidx env) envs
      then
        Some
          (List.map
             (fun env -> (Vm.Exec.run ~fuel img fidx env).Vm.Exec.features)
             envs)
      else None
    in
    let vp = profile db_entry.Vulndb.vuln_image db_entry.Vulndb.vuln_findex in
    let pp =
      profile db_entry.Vulndb.patched_image db_entry.Vulndb.patched_findex
    in
    (match (vp, pp) with
    | Some vp, Some pp ->
      let p = config.Dynamic_stage.p in
      Some
        ( Similarity.Score.averaged ~p vp target_profile,
          Similarity.Score.averaged ~p pp target_profile )
    | Some _, None | None, Some _ | None, None -> None)

let analyze ?(dyn_config = Dynamic_stage.default_config) ?ground_truth
    ~classifier ~(db_entry : Vulndb.entry) ~reference_patched ~target () =
  let reference = Vulndb.reference_static db_entry ~patched:reference_patched in
  let static =
    Static_stage.scan ~features:(Staticfeat.Cache.features target) classifier
      ~reference target
  in
  let total = Loader.Image.function_count target in
  let classification =
    Option.map
      (fun g -> classify ~candidates:static.Static_stage.candidates ~total ~ground_truth:g)
      ground_truth
  in
  let dynamic =
    match static.Static_stage.candidates with
    | [] -> None
    | candidates ->
      Some
        (Dynamic_stage.run ~config:dyn_config
           ~reference:(Vulndb.reference_image db_entry ~patched:reference_patched)
           ~shape:db_entry.Vulndb.shape ~target ~candidates ())
  in
  let ranking =
    match dynamic with Some d -> d.Dynamic_stage.ranking | None -> []
  in
  let true_rank =
    match ground_truth with
    | None -> None
    | Some g -> Similarity.Rank.rank_of ~equal:Int.equal g ranking
  in
  let located =
    match ranking with
    | [] -> None
    | best :: _ -> Some best.Similarity.Rank.candidate
  in
  let verdict =
    match (located, dynamic) with
    | Some fidx, Some dyn ->
      let dyn_scores =
        dual_dynamic_distances ~config:dyn_config ~db_entry ~dynamic:dyn fidx
      in
      let evidence =
        Differential.gather
          ~vuln:(db_entry.Vulndb.vuln_image, db_entry.Vulndb.vuln_findex)
          ~patched:(db_entry.Vulndb.patched_image, db_entry.Vulndb.patched_findex)
          ~target:(target, fidx) ?dynamic:dyn_scores
          ~structs:(db_entry.Vulndb.vuln_struct, db_entry.Vulndb.patched_struct)
          ~diffsig:db_entry.Vulndb.signature ()
      in
      Some (Differential.decide evidence)
    | None, _ | _, None -> None
  in
  {
    cve_id = db_entry.Vulndb.cve_id;
    reference_patched;
    static;
    classification;
    dynamic;
    true_rank;
    located;
    verdict;
  }
