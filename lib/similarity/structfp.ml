(* Canonical structural fingerprints.

   A fingerprint abstracts a function's *shape* — the nesting of its
   control constructs, the mix of its operators by loop depth, and a
   handful of scalar profile components — into one encoding that can be
   produced from two very different inputs: a MinC AST (the
   vulnerability database knows its own source) and a recovered binary
   CFG (the stripped firmware side).  The two encoders live in
   [Analysis.Struct_enc]; this module owns the representation and the
   distance.

   The skeleton tree keeps only control structure.  Children are stored
   in a canonical order (a deterministic total order on trees), which
   makes the encoding invariant under then/else branch swaps and — since
   identifiers never appear in it — under alpha-renaming.  That mirrors
   the binary side, where branch polarity is a codegen accident and
   names are gone entirely. *)

type tree = { label : int; children : tree list }

(* Skeleton node labels.  [root] wraps a function body; [loop] is a
   while/for on the AST side and a natural-loop header on the binary
   side; [cond] is an if (or one short-circuit connective of a compound
   condition) / a two-way branch block; [multi] is a switch / jump
   table. *)
let root_label = 0
let loop_label = 1
let cond_label = 2
let multi_label = 3

let rec compare_tree a b =
  let c = compare a.label b.label in
  if c <> 0 then c else compare_children a.children b.children

and compare_children a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare_tree x y in
    if c <> 0 then c else compare_children xs ys

let node label children = { label; children = List.sort compare_tree children }

let rec tree_size t =
  List.fold_left (fun acc c -> acc + tree_size c) 1 t.children

let rec tree_height t =
  1 + List.fold_left (fun acc c -> max acc (tree_height c)) 0 t.children

let rec count_label lbl t =
  List.fold_left
    (fun acc c -> acc + count_label lbl c)
    (if t.label = lbl then 1 else 0)
    t.children

(* deepest chain of [lbl]-labelled nodes on any root-to-leaf path *)
let rec label_nesting lbl t =
  let below =
    List.fold_left (fun acc c -> max acc (label_nesting lbl c)) 0 t.children
  in
  if t.label = lbl then below + 1 else below

let rec max_branching t =
  List.fold_left
    (fun acc c -> max acc (max_branching c))
    (List.length t.children)
    t.children

let rec tree_to_string t =
  let name =
    match t.label with
    | 0 -> "root"
    | 1 -> "loop"
    | 2 -> "cond"
    | 3 -> "multi"
    | n -> string_of_int n
  in
  match t.children with
  | [] -> name
  | kids ->
    Printf.sprintf "(%s %s)" name
      (String.concat " " (List.map tree_to_string kids))

(* --- Zhang-Shasha ordered tree edit distance --------------------------- *)

(* Unit costs: insert 1, delete 1, relabel 1 (0 when labels match).
   Skeleton trees are tiny (only control nodes survive the fold), so the
   O(n^2 m^2) worst case is irrelevant in practice. *)

type zs = {
  lab : int array;  (* label per postorder index *)
  lml : int array;  (* leftmost leaf descendant per postorder index *)
  keyroots : int list;
}

let zs_of_tree t =
  let labs = ref [] and lmls = ref [] in
  let count = ref 0 in
  let rec go t =
    let first_lml =
      List.fold_left
        (fun acc c ->
          let l = go c in
          match acc with None -> Some l | Some _ -> acc)
        None t.children
    in
    let idx = !count in
    incr count;
    let lml = match first_lml with None -> idx | Some l -> l in
    labs := t.label :: !labs;
    lmls := lml :: !lmls;
    lml
  in
  ignore (go t : int);
  let lab = Array.of_list (List.rev !labs) in
  let lml = Array.of_list (List.rev !lmls) in
  let n = Array.length lab in
  (* keyroots: the highest-numbered node for each distinct leftmost leaf *)
  let seen = Hashtbl.create 16 in
  let keyroots = ref [] in
  for i = n - 1 downto 0 do
    if not (Hashtbl.mem seen lml.(i)) then begin
      Hashtbl.replace seen lml.(i) ();
      keyroots := i :: !keyroots
    end
  done;
  { lab; lml; keyroots = !keyroots }

let tree_edit_distance ta tb =
  let a = zs_of_tree ta and b = zs_of_tree tb in
  let n = Array.length a.lab and m = Array.length b.lab in
  let td = Array.make_matrix n m 0 in
  let relabel i j = if a.lab.(i) = b.lab.(j) then 0 else 1 in
  let forest_dist i j =
    (* forests a.lml.(i)..i and b.lml.(j)..j; fd is offset by the forest
       starts, with index 0 standing for the empty forest *)
    let la = a.lml.(i) and lb = b.lml.(j) in
    let w = i - la + 2 and h = j - lb + 2 in
    let fd = Array.make_matrix w h 0 in
    for di = 1 to w - 1 do
      fd.(di).(0) <- fd.(di - 1).(0) + 1
    done;
    for dj = 1 to h - 1 do
      fd.(0).(dj) <- fd.(0).(dj - 1) + 1
    done;
    for di = 1 to w - 1 do
      let ai = la + di - 1 in
      for dj = 1 to h - 1 do
        let bj = lb + dj - 1 in
        if a.lml.(ai) = la && b.lml.(bj) = lb then begin
          fd.(di).(dj) <-
            min
              (fd.(di - 1).(dj) + 1)
              (min (fd.(di).(dj - 1) + 1) (fd.(di - 1).(dj - 1) + relabel ai bj));
          td.(ai).(bj) <- fd.(di).(dj)
        end
        else
          fd.(di).(dj) <-
            min
              (fd.(di - 1).(dj) + 1)
              (min
                 (fd.(di).(dj - 1) + 1)
                 (fd.(a.lml.(ai) - la).(b.lml.(bj) - lb) + td.(ai).(bj)))
      done
    done
  in
  List.iter (fun i -> List.iter (fun j -> forest_dist i j) b.keyroots) a.keyroots;
  td.(n - 1).(m - 1)

(* --- the fingerprint ---------------------------------------------------- *)

type t = { ops : float array; skel : float array; tree : tree }

let skel_length = 11

let make ~ops ~skel ~tree =
  let total = Array.fold_left ( +. ) 0.0 ops in
  let ops =
    if total > 0.0 then Array.map (fun v -> v /. total) ops else Array.copy ops
  in
  if Array.length skel <> skel_length then
    invalid_arg "Structfp.make: bad skeleton profile length";
  { ops; skel; tree }

let ops t = t.ops
let skel t = t.skel
let tree t = t.tree

(* the magnitudes are summed before adding 1.0: [(1.0 +. |a|) +. |b|]
   rounds differently from [(1.0 +. |b|) +. |a|], which would make the
   distance asymmetric by an ulp *)
let rel a b = abs_float (a -. b) /. (1.0 +. (abs_float a +. abs_float b))

let distance fa fb =
  if Array.length fa.ops <> Array.length fb.ops then
    invalid_arg "Structfp.distance: operator profiles differ in length";
  let d_ops =
    (* both sides are normalised to sum 1, so half the L1 difference is
       the total variation distance, in [0, 1] *)
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. abs_float (v -. fb.ops.(i))) fa.ops;
    0.5 *. !acc
  in
  let d_skel =
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. rel v fb.skel.(i)) fa.skel;
    !acc /. float_of_int skel_length
  in
  let d_tree =
    float_of_int (tree_edit_distance fa.tree fb.tree)
    /. float_of_int (tree_size fa.tree + tree_size fb.tree)
  in
  (0.35 *. d_ops) +. (0.30 *. d_skel) +. (0.35 *. d_tree)

let summary t =
  Printf.sprintf
    "nodes=%.0f height=%.0f loops=%.0f conds=%.0f multi=%.0f nest=%.0f \
     branch=%.0f deriv=%.0f segs=%.0f consts=%.0f cmag=%.2f"
    t.skel.(0) t.skel.(1) t.skel.(2) t.skel.(3) t.skel.(4) t.skel.(5)
    t.skel.(6) t.skel.(7) t.skel.(8) t.skel.(9) t.skel.(10)
