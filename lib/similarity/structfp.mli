(** Canonical structural fingerprints: one comparable encoding of a
    function's control shape computable from either a MinC AST or a
    recovered binary CFG (see [Analysis.Struct_enc] for the encoders).

    A fingerprint combines a skeleton tree of the control structure
    (children canonically ordered, so then/else polarity and identifier
    names cannot influence it), a loop-depth-bucketed operator-class
    profile, and a small scalar shape profile.  The distance is a
    weighted blend of total-variation distance on the operator profile,
    per-component relative difference on the shape profile, and a
    size-normalised Zhang-Shasha tree edit distance on the skeletons. *)

type tree = { label : int; children : tree list }

val root_label : int
val loop_label : int
val cond_label : int
val multi_label : int

val node : int -> tree list -> tree
(** Build a node with its children in canonical order.  Encoders must
    construct every node through this, or the canonical-order invariants
    (and the distance's branch-swap invariance) are lost. *)

val compare_tree : tree -> tree -> int
(** The canonical total order on trees (label, then children
    lexicographically). *)

val tree_size : tree -> int
val tree_height : tree -> int
val count_label : int -> tree -> int
val label_nesting : int -> tree -> int
(** Deepest chain of nodes with the given label on any path. *)

val max_branching : tree -> int
val tree_to_string : tree -> string
(** S-expression rendering, e.g. ["(root (cond loop))"]. *)

val tree_edit_distance : tree -> tree -> int
(** Zhang-Shasha ordered tree edit distance with unit costs. *)

type t

val skel_length : int
(** Length every skeleton profile must have (currently 11). *)

val make : ops:float array -> skel:float array -> tree:tree -> t
(** Normalises [ops] to sum 1 (all-zero profiles stay zero).  Raises
    [Invalid_argument] if [skel] is not of {!skel_length}. *)

val ops : t -> float array
val skel : t -> float array
val tree : t -> tree

val distance : t -> t -> float
(** Symmetric, zero on identical fingerprints, and bounded by 1.
    Raises [Invalid_argument] on operator profiles of different
    lengths. *)

val summary : t -> string
(** One-line rendering of the shape profile for reports. *)
