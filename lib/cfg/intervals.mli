(** Cocke-Allen interval partition and derived-sequence reduction.

    Computed over the region reachable from the entry block.  The
    derived-sequence length is 0 for a single-block function, 1 for
    loop-free control flow, and grows by one per loop-nesting level on
    reducible graphs; [reducible] is false when a derivation step stops
    shrinking the graph before it reaches a single node. *)

type t = {
  first_intervals : int list list;
      (** the first-level partition: each interval's blocks, header
          first, in header discovery order *)
  derivation_length : int;
  reducible : bool;
}

val analyze : Graph.t -> t
