(** Dominator analysis and natural-loop detection (Cooper-Harvey-Kennedy
    iterative dominators).  Not part of the 48-feature set, but used by
    the loop-aware tooling (e.g. the CLI's function reports) and useful to
    downstream consumers of the CFG library. *)

type t

val compute : Graph.t -> t

val reachable : t -> int -> bool
(** Is the block reachable from the entry?  Dominance, natural loops and
    loop depths are only defined over the reachable region; out-of-range
    ids are simply unreachable. *)

val idom : t -> int -> int option
(** Immediate dominator of a block ([None] for the entry block and
    unreachable blocks). *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive. *)

type loop = {
  header : int;
  body : int list;  (** blocks of the natural loop, header included *)
  back_edges : (int * int) list;  (** (latch, header) pairs *)
}

val natural_loops : Graph.t -> t -> loop list
(** One entry per loop header, sorted by header id.  Only edges between
    blocks reachable from the entry are considered: a self-looping
    unreachable block is dead code, not a loop. *)

val loop_depth : Graph.t -> t -> int array
(** Nesting depth per block (0 = not in any loop). *)
