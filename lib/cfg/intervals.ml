(* Cocke-Allen interval analysis and the derived sequence.

   An interval I(h) is the maximal single-entry region grown from a
   header h by repeatedly absorbing nodes all of whose predecessors are
   already inside.  Collapsing every interval to a node yields the
   derived graph; iterating until the graph is a single node (or stops
   shrinking — irreducibility) gives the derived sequence, whose length
   is a classic structuredness measure: 1 for loop-free code, and one
   extra derivation per loop-nesting level for reducible graphs.  The
   structural-fingerprint encoder uses the length as an
   architecture-independent shape component. *)

type t = {
  first_intervals : int list list;
      (* first-level partition over reachable blocks, header first *)
  derivation_length : int;
  reducible : bool;
}

(* One partition round over [nodes] (sorted), with [preds] restricted to
   the current graph.  Returns the headers in discovery order and the
   node -> header assignment. *)
let partition ~nodes ~preds ~entry =
  let assigned : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let headers = ref [] in
  let queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  Queue.add entry queue;
  Hashtbl.replace queued entry ();
  while not (Queue.is_empty queue) do
    let h = Queue.pop queue in
    if not (Hashtbl.mem assigned h) then begin
      headers := h :: !headers;
      Hashtbl.replace assigned h h;
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun n ->
            if n <> entry && not (Hashtbl.mem assigned n) then begin
              let ps = preds n in
              if
                ps <> []
                && List.for_all
                     (fun p -> Hashtbl.find_opt assigned p = Some h)
                     ps
              then begin
                Hashtbl.replace assigned n h;
                changed := true
              end
            end)
          nodes
      done;
      (* unabsorbed nodes now entered from a completed interval start
         intervals of their own *)
      List.iter
        (fun n ->
          if
            (not (Hashtbl.mem assigned n))
            && (not (Hashtbl.mem queued n))
            && List.exists (fun p -> Hashtbl.mem assigned p) (preds n)
          then begin
            Queue.add n queue;
            Hashtbl.replace queued n ()
          end)
        nodes
    end
  done;
  (List.rev !headers, assigned)

let analyze (g : Graph.t) =
  let n = Graph.block_count g in
  if n = 0 then { first_intervals = []; derivation_length = 0; reducible = true }
  else begin
    let reach = Array.make n false in
    let rec visit b =
      if not reach.(b) then begin
        reach.(b) <- true;
        List.iter visit g.blocks.(b).Block.succs
      end
    in
    visit 0;
    let nodes0 = List.filter (fun b -> reach.(b)) (List.init n Fun.id) in
    let succs0 b =
      List.sort_uniq compare
        (List.filter (fun s -> reach.(s)) g.blocks.(b).Block.succs)
    in
    let first_intervals = ref [] in
    let rec derive nodes succs steps =
      if List.length nodes <= 1 then (steps, true)
      else begin
        let pred_tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun nd -> List.iter (fun s -> Hashtbl.add pred_tbl s nd) (succs nd))
          nodes;
        let preds nd = Hashtbl.find_all pred_tbl nd in
        let headers, assigned = partition ~nodes ~preds ~entry:0 in
        if steps = 0 then
          first_intervals :=
            List.map
              (fun h ->
                h
                :: List.filter
                     (fun nd -> nd <> h && Hashtbl.find_opt assigned nd = Some h)
                     nodes)
              headers;
        if List.length headers = List.length nodes then (steps + 1, false)
        else begin
          let derived : (int, int list) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun nd ->
              match Hashtbl.find_opt assigned nd with
              | None -> ()
              | Some h ->
                List.iter
                  (fun s ->
                    match Hashtbl.find_opt assigned s with
                    | Some h' when h' <> h ->
                      let cur =
                        match Hashtbl.find_opt derived h with
                        | Some l -> l
                        | None -> []
                      in
                      if not (List.mem h' cur) then
                        Hashtbl.replace derived h (h' :: cur)
                    | Some _ | None -> ())
                  (succs nd))
            nodes;
          let succs' h =
            match Hashtbl.find_opt derived h with
            | Some l -> List.sort compare l
            | None -> []
          in
          derive (List.sort compare headers) succs' (steps + 1)
        end
      end
    in
    let derivation_length, reducible = derive nodes0 succs0 0 in
    let first_intervals =
      if !first_intervals = [] then [ nodes0 ] else !first_intervals
    in
    { first_intervals; derivation_length; reducible }
  end
