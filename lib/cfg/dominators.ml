type t = {
  idoms : int array;  (* -1 = undefined / entry *)
  order : int array;  (* reverse postorder position per block; -1 unreachable *)
}

(* reverse postorder over the successor relation *)
let reverse_postorder (g : Graph.t) =
  let n = Graph.block_count g in
  let visited = Array.make n false in
  let out = ref [] in
  let rec visit b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter visit g.blocks.(b).Block.succs;
      out := b :: !out
    end
  in
  if n > 0 then visit 0;
  Array.of_list !out

let compute (g : Graph.t) =
  let n = Graph.block_count g in
  let idoms = Array.make n (-1) in
  let order = Array.make n (-1) in
  if n > 0 then begin
    let rpo = reverse_postorder g in
    Array.iteri (fun pos b -> order.(b) <- pos) rpo;
    let preds = Array.map (fun b -> b.Block.preds) g.blocks in
    idoms.(0) <- 0;
    (* Cooper-Harvey-Kennedy: intersect along the dominator tree in
       reverse postorder until fixpoint. *)
    let rec intersect a b =
      if a = b then a
      else if order.(a) > order.(b) then intersect idoms.(a) b
      else intersect a idoms.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let processed =
              List.filter (fun p -> order.(p) >= 0 && idoms.(p) >= 0) preds.(b)
            in
            match processed with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idoms.(b) <> new_idom then begin
                idoms.(b) <- new_idom;
                changed := true
              end
          end)
        rpo
    done
  end;
  { idoms; order }

let reachable t b = b >= 0 && b < Array.length t.order && t.order.(b) >= 0

let idom t b =
  if b = 0 then None
  else if b < 0 || b >= Array.length t.idoms || t.idoms.(b) < 0 then None
  else Some t.idoms.(b)

let rec dominates t a b =
  if a = b then true
  else if b = 0 || b < 0 || b >= Array.length t.idoms || t.idoms.(b) < 0 then
    false
  else dominates t a t.idoms.(b)

type loop = {
  header : int;
  body : int list;
  back_edges : (int * int) list;
}

let natural_loops (g : Graph.t) t =
  (* only edges between blocks reachable from the entry can form natural
     loops: dominance is undefined off the entry's reachable region, and
     an unreachable block with a self edge would otherwise pass the
     reflexive [dominates] check and fabricate a phantom loop *)
  let back_edges = ref [] in
  Array.iter
    (fun (b : Block.t) ->
      if reachable t b.id then
        List.iter
          (fun s ->
            if reachable t s && dominates t s b.id then
              back_edges := (b.id, s) :: !back_edges)
          b.succs)
    g.blocks;
  (* group back edges by header; the loop body is everything that reaches
     a latch without passing through the header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing =
        match Hashtbl.find_opt by_header header with Some l -> l | None -> []
      in
      Hashtbl.replace by_header header ((latch, header) :: existing))
    !back_edges;
  Hashtbl.fold
    (fun header edges acc ->
      let in_body = Hashtbl.create 8 in
      Hashtbl.replace in_body header ();
      let rec pull b =
        (* an unreachable block jumping into the loop is not part of it *)
        if reachable t b && not (Hashtbl.mem in_body b) then begin
          Hashtbl.replace in_body b ();
          List.iter pull g.blocks.(b).Block.preds
        end
      in
      List.iter (fun (latch, _) -> pull latch) edges;
      let body =
        List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) in_body [])
      in
      { header; body; back_edges = edges } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

let loop_depth g t =
  let n = Graph.block_count g in
  let depth = Array.make n 0 in
  List.iter
    (fun loop -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) loop.body)
    (natural_loops g t);
  depth
