(** Loop-nesting forest: the natural loops of a CFG organised by
    containment.  Each loop's parent is the smallest strictly larger
    loop containing its header ([None] for top-level loops); depths
    start at 1 for top-level loops. *)

type t

val build : Graph.t -> Dominators.t -> t

val loop_count : t -> int
val loop : t -> int -> Dominators.loop
val parent : t -> int -> int option
val children : t -> int -> int list
val depth : t -> int -> int
(** Nesting depth of the loop (top-level = 1). *)

val max_depth : t -> int
(** Deepest nesting in the function (0 when loop-free). *)

val is_header : t -> int -> bool
(** Is the block a natural-loop header?  Out-of-range ids are not. *)

val block_depth : t -> int -> int
(** Nesting depth of the innermost loop containing the block (0 when
    the block is in no loop, or out of range). *)
