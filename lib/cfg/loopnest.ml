(* Loop-nesting forest over the natural loops of a CFG.

   Natural loops of a reducible graph are either disjoint or properly
   nested, so "smallest strictly larger loop containing my header" is a
   well-defined parent; requiring the parent's body to be strictly
   larger also keeps the parent relation acyclic on the irreducible
   graphs the construction may still be handed. *)

type t = {
  loops : Dominators.loop array;
  parent : int array;
  depth : int array;
  block_depth : int array;
  is_header : bool array;
  max_depth : int;
}

let build (g : Graph.t) (dom : Dominators.t) =
  let loops = Array.of_list (Dominators.natural_loops g dom) in
  let nl = Array.length loops in
  let nb = Graph.block_count g in
  let is_header = Array.make nb false in
  Array.iter (fun (l : Dominators.loop) -> is_header.(l.header) <- true) loops;
  let members =
    Array.map
      (fun (l : Dominators.loop) ->
        let h = Hashtbl.create 8 in
        List.iter (fun b -> Hashtbl.replace h b ()) l.body;
        h)
      loops
  in
  let size = Array.map Hashtbl.length members in
  let parent = Array.make nl (-1) in
  for i = 0 to nl - 1 do
    for j = 0 to nl - 1 do
      if
        j <> i
        && size.(j) > size.(i)
        && Hashtbl.mem members.(j) loops.(i).Dominators.header
        && (parent.(i) < 0 || size.(j) < size.(parent.(i)))
      then parent.(i) <- j
    done
  done;
  (* parent chains strictly grow the body, so this terminates *)
  let depth = Array.make nl 0 in
  let rec depth_of i =
    if depth.(i) > 0 then depth.(i)
    else begin
      let d = match parent.(i) with -1 -> 1 | p -> 1 + depth_of p in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to nl - 1 do
    ignore (depth_of i : int)
  done;
  let block_depth = Array.make nb 0 in
  Array.iteri
    (fun i (l : Dominators.loop) ->
      List.iter
        (fun b -> if depth.(i) > block_depth.(b) then block_depth.(b) <- depth.(i))
        l.body)
    loops;
  let max_depth = Array.fold_left max 0 depth in
  { loops; parent; depth; block_depth; is_header; max_depth }

let loop_count t = Array.length t.loops
let max_depth t = t.max_depth
let is_header t b = b >= 0 && b < Array.length t.is_header && t.is_header.(b)

let block_depth t b =
  if b >= 0 && b < Array.length t.block_depth then t.block_depth.(b) else 0

let parent t i = if t.parent.(i) < 0 then None else Some t.parent.(i)
let depth t i = t.depth.(i)
let loop t i = t.loops.(i)

let children t i =
  let out = ref [] in
  for j = Array.length t.parent - 1 downto 0 do
    if t.parent.(j) = i then out := j :: !out
  done;
  !out
