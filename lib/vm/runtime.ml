let names =
  [
    "memcpy"; "memmove"; "memset"; "memcmp"; "strlen"; "strcmp"; "malloc";
    "free"; "print_int"; "print_str"; "fsqrt"; "fabs"; "ffloor"; "exit";
    "abort"; "panic";
  ]

let arg m i = (Machine.regs m).(Isa.Reg.arg i)
let set_ret m v = (Machine.regs m).(Isa.Reg.ret) <- v

let copy_bytes m ~dst ~src n =
  (* memmove semantics: buffer through an OCaml array, so overlapping
     ranges behave as if copied via a temporary.  The guest controls
     [n]: a negative or implausibly large count must trap, not blow up
     [Array.init] with Invalid_argument / Out_of_memory on the host. *)
  if n < 0 || n > 1 lsl 24 then
    raise
      (Machine.Trap
         (Machine.Import_error (Printf.sprintf "memmove: bad length %d" n)));
  let tmp =
    Array.init n (fun i -> Machine.read_u8 m (Int64.add src (Int64.of_int i)))
  in
  Array.iteri
    (fun i v -> Machine.write_u8 m (Int64.add dst (Int64.of_int i)) v)
    tmp

let forward_copy m ~dst ~src n =
  (* memcpy: byte-at-a-time forward copy (undefined for overlap, like the
     real thing — here it just smears) *)
  for i = 0 to n - 1 do
    Machine.write_u8 m
      (Int64.add dst (Int64.of_int i))
      (Machine.read_u8 m (Int64.add src (Int64.of_int i)))
  done

let float_arg m i = Int64.float_of_bits (arg m i)
let set_float_ret m f = set_ret m (Int64.bits_of_float f)

let dispatch m name =
  match name with
  | "memcpy" ->
    forward_copy m ~dst:(arg m 0) ~src:(arg m 1) (Int64.to_int (arg m 2))
  | "memmove" ->
    copy_bytes m ~dst:(arg m 0) ~src:(arg m 1) (Int64.to_int (arg m 2))
  | "memset" ->
    let dst = arg m 0 and v = Int64.to_int (arg m 1) in
    let n = Int64.to_int (arg m 2) in
    for i = 0 to n - 1 do
      Machine.write_u8 m (Int64.add dst (Int64.of_int i)) v
    done
  | "memcmp" ->
    let a = arg m 0 and b = arg m 1 in
    let n = Int64.to_int (arg m 2) in
    let rec loop i =
      if i >= n then 0
      else begin
        let ca = Machine.read_u8 m (Int64.add a (Int64.of_int i)) in
        let cb = Machine.read_u8 m (Int64.add b (Int64.of_int i)) in
        if ca <> cb then compare ca cb else loop (i + 1)
      end
    in
    set_ret m (Int64.of_int (loop 0))
  | "strlen" ->
    set_ret m (Int64.of_int (String.length (Machine.read_cstring m (arg m 0))))
  | "strcmp" ->
    let a = Machine.read_cstring m (arg m 0) in
    let b = Machine.read_cstring m (arg m 1) in
    set_ret m (Int64.of_int (compare a b))
  | "malloc" -> set_ret m (Machine.malloc m (Int64.to_int (arg m 0)))
  | "free" -> Machine.free m (arg m 0)
  | "print_int" -> Machine.print_string m (Int64.to_string (arg m 0))
  | "print_str" -> Machine.print_string m (Machine.read_cstring m (arg m 0))
  | "fsqrt" -> set_float_ret m (sqrt (float_arg m 0))
  | "fabs" -> set_float_ret m (abs_float (float_arg m 0))
  | "ffloor" -> set_float_ret m (floor (float_arg m 0))
  | "exit" -> raise (Machine.Exit_program (Int64.to_int (arg m 0)))
  | "abort" -> raise (Machine.Trap (Machine.Aborted "abort"))
  | "panic" ->
    let msg =
      try Machine.read_cstring m (arg m 0) with Machine.Trap _ -> "panic"
    in
    raise (Machine.Trap (Machine.Aborted msg))
  | other -> raise (Machine.Trap (Machine.Unknown_import other))
