(** Top-level dynamic execution: run one function of an image in one
    execution environment and collect the outcome plus the 21 dynamic
    features of Table II. *)

type outcome =
  | Finished of int64  (** returned normally; payload is r0 *)
  | Exited of int  (** called exit() *)
  | Crashed of Machine.trap

type result = {
  outcome : outcome;
  features : Util.Vec.t;  (** 21 dynamic features *)
  stdout : string;
  instructions : int;  (** total instructions executed *)
}

val run : ?fuel:int -> Loader.Image.t -> int -> Env.t -> result
(** [run img fidx env]: never raises on guest misbehaviour — traps become
    [Crashed].  Hosts the ["vm.step"] fault-injection site (keyed by
    image name and function index), which raises {!Robust.Fault.Fault}
    ([Fuel_exhausted] or [Vm_trap]) when armed — a host-level chaos
    event, distinct from guest misbehaviour. *)

val run_traced :
  ?fuel:int -> ?limit:int -> Loader.Image.t -> int -> Env.t
  -> result * string list
(** Like {!run} but also returns a rendered instruction trace (function
    index, offset, instruction), capped at [limit] lines (default
    10_000). *)

val survives : ?fuel:int -> Loader.Image.t -> int -> Env.t -> bool
(** Did the run finish or exit normally (no trap)?  This is the
    candidate-validation predicate of the paper's dynamic stage. *)

val outcome_to_string : outcome -> string
