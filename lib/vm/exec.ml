type outcome =
  | Finished of int64
  | Exited of int
  | Crashed of Machine.trap

type result = {
  outcome : outcome;
  features : Util.Vec.t;
  stdout : string;
  instructions : int;
}

(* Observability: executions, fuel actually consumed (instructions
   retired, as a histogram so a stats reader sees the distribution), and
   traps.  Counted per execution, not per step, so the cost is noise. *)
let m_executions = Obs.Metrics.counter "vm.executions"
let m_fuel = Obs.Metrics.histogram "vm.fuel_consumed"
let m_traps = Obs.Metrics.counter "vm.traps"
let m_step_limit = Obs.Metrics.counter "vm.traps.step_limit"

let run_machine m fidx =
  let outcome =
    match Machine.call_function m ~handler:Runtime.dispatch fidx with
    | () -> Finished (Machine.regs m).(Isa.Reg.ret)
    | exception Machine.Trap trap -> Crashed trap
    | exception Machine.Exit_program code -> Exited code
    | exception Isa.Encoding.Invalid_encoding msg ->
      Crashed (Machine.Import_error ("invalid encoding: " ^ msg))
  in
  let trace = Machine.trace m in
  let instructions = Trace.instructions_executed trace in
  Obs.Metrics.incr m_executions;
  Obs.Metrics.observe m_fuel instructions;
  (match outcome with
  | Crashed Machine.Step_limit ->
    Obs.Metrics.incr m_traps;
    Obs.Metrics.incr m_step_limit
  | Crashed _ -> Obs.Metrics.incr m_traps
  | Finished _ | Exited _ -> ());
  {
    outcome;
    features = Trace.features trace;
    stdout = Machine.stdout_contents m;
    instructions;
  }

(* "vm.step" injection site: a chaos run can make any (image, function)
   execution fault deterministically.  The hash parity picks the flavour
   so a mixed run exercises both the fuel-escalation and plain-retry
   supervisor paths. *)
let inject_vm_fault img fidx =
  (* [armed] check first: this runs on every execution, and the key
     string must not be built when injection is off *)
  if not (Robust.Inject.armed ()) then ()
  else
    match
      Robust.Inject.fire ~site:"vm.step"
        ~key:(Printf.sprintf "%s/f%d" img.Loader.Image.name fidx)
        ()
    with
    | None -> ()
    | Some h ->
    let site = "vm.step" in
    let detail =
      Printf.sprintf "injected vm fault in %s/f%d" img.Loader.Image.name fidx
    in
    raise
      (Robust.Fault.Fault
         (if Int64.logand h 1L = 0L then
            Robust.Fault.Fuel_exhausted { site; detail }
          else Robust.Fault.Vm_trap { site; detail }))

let run ?fuel img fidx env =
  inject_vm_fault img fidx;
  let m = Machine.create_pooled ?fuel img env in
  Fun.protect ~finally:(fun () -> Machine.release m) (fun () -> run_machine m fidx)

let run_traced ?fuel ?(limit = 10_000) img fidx env =
  let lines = ref [] in
  let count = ref 0 in
  let on_instr ~fidx ~pc ins =
    if !count < limit then begin
      incr count;
      lines :=
        Format.asprintf "f%d+%d: %a" fidx pc
          (Isa.Instr.pp Format.pp_print_int)
          ins
        :: !lines
    end
  in
  let m = Machine.create_pooled ?fuel ~on_instr img env in
  let result =
    Fun.protect ~finally:(fun () -> Machine.release m) (fun () -> run_machine m fidx)
  in
  (result, List.rev !lines)

let survives ?fuel img fidx env =
  match (run ?fuel img fidx env).outcome with
  | Finished _ | Exited _ -> true
  | Crashed _ -> false

let outcome_to_string = function
  | Finished v -> Printf.sprintf "finished (r0=%Ld)" v
  | Exited code -> Printf.sprintf "exited (%d)" code
  | Crashed trap -> "crashed: " ^ Machine.trap_to_string trap
