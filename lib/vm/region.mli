(** Virtual memory regions of the emulated process.

    The classification mirrors what the paper reads out of
    /proc/pid/maps: heap, stack, mapped library (our image data section),
    anonymous mappings (fuzzer-provided input buffers) and "others" (a
    small MMIO-like window some device code pokes).

    A region's [data] may be a pooled scratch buffer larger than the
    region itself: [len] is the logical size used for bounds checks, and
    the dirty range tracks which bytes were written so the machine pool
    can restore pristine content in O(bytes touched) instead of
    reallocating and re-zeroing whole buffers per execution. *)

type kind = Rlib | Rheap | Rstack | Ranon | Rothers

type t = {
  kind : kind;
  base : int64;
  data : bytes;  (** backing storage; capacity may exceed [len] *)
  len : int;  (** logical size — guest accesses are bounded by this *)
  mutable dirty_lo : int;
  mutable dirty_hi : int;
}

val lib_base : int64  (** = {!Loader.Image.data_base_default} *)

val heap_base : int64
val heap_size : int
val anon_base : int64
val mmio_base : int64
val mmio_size : int
val stack_top : int64
val stack_size : int

val make : kind:kind -> base:int64 -> data:bytes -> len:int -> t
(** A clean region (empty dirty range) over [data].  Raises
    [Invalid_argument] if [len] exceeds the capacity of [data]. *)

val contains : t -> int64 -> bool
val offset : t -> int64 -> int

val touch : t -> int -> int -> unit
(** [touch t off len] widens the dirty range to cover
    [\[off, off+len)].  Every write into [data] must be recorded here
    for pooled-buffer restoration to be sound. *)

val dirty_span : t -> (int * int) option
(** The written byte range [(lo, hi))], or [None] if untouched. *)

val kind_to_string : kind -> string
