(** The emulated machine: registers, flags, memory regions, trace hooks
    and the interpreter loop.

    A machine executes one exported function per run (the DLL-injection
    analog): arguments are placed in r0..r5, the callee runs to
    completion, and everything it did is recorded in the {!Trace}.
    Determinism: same image + same {!Env} ⇒ identical trace. *)

type trap =
  | Mem_fault of int64
  | Div_by_zero
  | Step_limit  (** fuel exhausted — the infinite-loop verdict *)
  | Call_depth_exceeded
  | Jump_out_of_range of int
  | Jtable_out_of_range of int64
  | Unknown_import of string
  | Import_error of string
  | Aborted of string

exception Trap of trap
exception Exit_program of int

type t

val create :
  ?fuel:int ->
  ?on_instr:(fidx:int -> pc:int -> int Isa.Instr.t -> unit) ->
  Loader.Image.t ->
  Env.t ->
  t
(** Build the address space: image data (with environment patches) as the
    lib region, fresh heap/stack, argument buffers in the anon region and
    a seeded MMIO window as "others".  [on_instr] is invoked before each
    executed instruction (the gdb-style single-step hook the CLI's trace
    command uses). *)

val create_pooled :
  ?fuel:int ->
  ?on_instr:(fidx:int -> pc:int -> int Isa.Instr.t -> unit) ->
  Loader.Image.t ->
  Env.t ->
  t
(** Like {!create}, but the region buffers are borrowed from a
    per-domain scratch pool instead of freshly allocated — the machine
    is observationally identical, and the caller MUST call {!release}
    when the execution is done (and must not keep two pooled machines
    alive at once on a domain; a nested [create_pooled] silently falls
    back to fresh allocation).  A scan runs tens of thousands of short
    executions, so reusing the ~1.3MB of region storage removes the
    pipeline's dominant allocation — and with it the cross-domain GC
    synchronization that made parallel scans slower than sequential. *)

val release : t -> unit
(** Return a pooled machine's buffers, restoring pristine content for
    exactly the byte ranges the execution dirtied (O(bytes written)).
    A no-op on machines from {!create}. *)

val regs : t -> int64 array
val trace : t -> Trace.t
val stdout_contents : t -> string
val image : t -> Loader.Image.t

(* Memory access for the runtime (not counted as instruction-level
   accesses). *)
val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit
val read_cstring : t -> int64 -> string
(** NUL-terminated string at the address; raises {!Trap} on faults. *)

val read_stdin : t -> int -> bytes
(** Consume up to [n] bytes of the environment's stdin stream. *)

val print_string : t -> string -> unit
val malloc : t -> int -> int64
val free : t -> int64 -> unit

val call_function : t -> handler:(t -> string -> unit) -> int -> unit
(** Execute function [i] of the image to completion; [handler] implements
    imports.  Raises {!Trap} or {!Exit_program}. *)

val trap_to_string : trap -> string
