type trap =
  | Mem_fault of int64
  | Div_by_zero
  | Step_limit
  | Call_depth_exceeded
  | Jump_out_of_range of int
  | Jtable_out_of_range of int64
  | Unknown_import of string
  | Import_error of string
  | Aborted of string

exception Trap of trap
exception Exit_program of int

type t = {
  image : Loader.Image.t;
  regs : int64 array;
  mutable flags : int;
  regions : Region.t list;
  mutable heap_next : int;
  stdout_buf : Buffer.t;
  stdin : bytes;
  mutable stdin_pos : int;
  trace : Trace.t;
  mutable fuel : int;
  mutable depth : int;
  listings : (int, Isa.Disasm.listing) Hashtbl.t;
  params : Isa.Encoding.params;
  on_instr : fidx:int -> pc:int -> int Isa.Instr.t -> unit;
  seed : int64;  (* env seed — needed to restore the mmio window *)
  pooled : bool;  (* regions borrow the domain's scratch buffers *)
}

let default_fuel = 1_000_000
let max_depth = 200

let mmio_pattern seed i =
  (* deterministic per-byte content of the "others" window *)
  let v =
    Int64.mul (Int64.add seed (Int64.of_int i)) 0x9E3779B97F4A7C15L
  in
  Int64.to_int (Int64.shift_right_logical v 56) land 0xff

(* --- per-domain machine scratch ---------------------------------------- *)

(* One machine's worth of address space per domain, reused across
   executions: a scan runs tens of thousands of short VM executions, and
   allocating (and zeroing) ~1.3MB of fresh region buffers for each was
   the dominant allocation of the whole pipeline — on a multi-domain
   runtime those major-heap allocations also serialize the domains on
   the collector.  Invariants while [free] (not in use):
   - [heap]/[stack]/[anon] are all-zero,
   - [lib] holds a pristine copy of [lib_img]'s data section,
   - [mmio] holds the pattern for [mmio_seed] when [mmio_ok].
   [release] re-establishes them by undoing exactly the dirty byte
   ranges the execution touched. *)
type scratch = {
  mutable lib : bytes;
  mutable lib_img : Loader.Image.t option;  (* physical identity *)
  heap : bytes;
  stack : bytes;
  mmio : bytes;
  mutable mmio_seed : int64;
  mutable mmio_ok : bool;
  mutable anon : bytes;
  mutable in_use : bool;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        lib = Bytes.empty;
        lib_img = None;
        heap = Bytes.make Region.heap_size '\000';
        stack = Bytes.make Region.stack_size '\000';
        mmio = Bytes.make Region.mmio_size '\000';
        mmio_seed = 0L;
        mmio_ok = false;
        anon = Bytes.make 16 '\000';
        in_use = false;
      })

(* Disassembly listings are pure per (image, function), so they are
   cached per domain across machines instead of per machine — a scan
   re-executes the same handful of functions thousands of times.  The
   cache is bounded by image count; images are keyed by physical
   identity, so a reloaded image simply misses. *)
let max_cached_images = 8

let listings_key : (Loader.Image.t * (int, Isa.Disasm.listing) Hashtbl.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let listing_table (image : Loader.Image.t) =
  let cache = Domain.DLS.get listings_key in
  match List.find_opt (fun (img, _) -> img == image) !cache with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    let kept = List.filteri (fun i _ -> i < max_cached_images - 1) !cache in
    cache := (image, tbl) :: kept;
    tbl

let build ~pooled ~lib_data ~heap_data ~stack_data ~mmio_data ~anon_data ~fuel
    ~on_instr (image : Loader.Image.t) (env : Env.t) =
  let lib_len = Bytes.length image.data in
  let lib = Region.make ~kind:Rlib ~base:image.data_base ~data:lib_data ~len:lib_len in
  List.iter
    (fun (addr, patch) ->
      let off = Int64.to_int (Int64.sub addr image.data_base) in
      (* checked before [lib_data] was touched, see [create_with] *)
      Bytes.blit patch 0 lib_data off (Bytes.length patch);
      Region.touch lib off (Bytes.length patch))
    env.Env.global_patches;
  let heap =
    Region.make ~kind:Rheap ~base:Region.heap_base ~data:heap_data
      ~len:Region.heap_size
  in
  let stack =
    Region.make ~kind:Rstack
      ~base:(Int64.sub Region.stack_top (Int64.of_int Region.stack_size))
      ~data:stack_data ~len:Region.stack_size
  in
  let mmio =
    Region.make ~kind:Rothers ~base:Region.mmio_base ~data:mmio_data
      ~len:Region.mmio_size
  in
  (* anon region: concatenated argument buffers, 16-byte aligned slices *)
  let total_anon =
    List.fold_left
      (fun acc v ->
        match v with
        | Env.Vint _ -> acc
        | Env.Vbuf b -> acc + ((Bytes.length b + 31) / 16 * 16))
      0 env.Env.args
  in
  let anon =
    Region.make ~kind:Ranon ~base:Region.anon_base ~data:anon_data
      ~len:(max total_anon 16)
  in
  let regs = Array.make Isa.Reg.count 0L in
  regs.(Isa.Reg.sp) <- Region.stack_top;
  let off = ref 0 in
  List.iteri
    (fun i v ->
      match v with
      | Env.Vint n -> regs.(Isa.Reg.arg i) <- n
      | Env.Vbuf b ->
        Bytes.blit b 0 anon_data !off (Bytes.length b);
        Region.touch anon !off (Bytes.length b);
        regs.(Isa.Reg.arg i) <- Int64.add Region.anon_base (Int64.of_int !off);
        off := !off + ((Bytes.length b + 31) / 16 * 16))
    env.Env.args;
  {
    image;
    regs;
    flags = 0;
    regions = [ stack; lib; anon; heap; mmio ];
    heap_next = 0;
    stdout_buf = Buffer.create 64;
    stdin = env.Env.stdin;
    stdin_pos = 0;
    trace = Trace.create ();
    fuel;
    depth = 1;
    listings = listing_table image;
    params = Isa.Encoding.params_of_arch image.arch;
    on_instr;
    seed = env.Env.seed;
    pooled;
  }

let check_patches (image : Loader.Image.t) (env : Env.t) =
  List.iter
    (fun (addr, patch) ->
      let off = Int64.to_int (Int64.sub addr image.data_base) in
      if off < 0 || off + Bytes.length patch > Bytes.length image.data then
        invalid_arg "Machine.create: global patch out of range")
    env.Env.global_patches

let create ?(fuel = default_fuel) ?(on_instr = fun ~fidx:_ ~pc:_ _ -> ())
    (image : Loader.Image.t) (env : Env.t) =
  check_patches image env;
  let total_anon =
    List.fold_left
      (fun acc v ->
        match v with
        | Env.Vint _ -> acc
        | Env.Vbuf b -> acc + ((Bytes.length b + 31) / 16 * 16))
      0 env.Env.args
  in
  build ~pooled:false ~lib_data:(Bytes.copy image.data)
    ~heap_data:(Bytes.make Region.heap_size '\000')
    ~stack_data:(Bytes.make Region.stack_size '\000')
    ~mmio_data:
      (Bytes.init Region.mmio_size (fun i ->
           Char.chr (mmio_pattern env.Env.seed i)))
    ~anon_data:(Bytes.make (max total_anon 16) '\000')
    ~fuel ~on_instr image env

let create_pooled ?(fuel = default_fuel)
    ?(on_instr = fun ~fidx:_ ~pc:_ _ -> ()) (image : Loader.Image.t)
    (env : Env.t) =
  let s = Domain.DLS.get scratch_key in
  if s.in_use then create ~fuel ~on_instr image env
  else begin
    check_patches image env;
    let lib_len = Bytes.length image.data in
    (match s.lib_img with
    | Some img when img == image -> ()  (* scratch already pristine *)
    | _ ->
      if Bytes.length s.lib < lib_len then s.lib <- Bytes.create lib_len;
      Bytes.blit image.data 0 s.lib 0 lib_len;
      s.lib_img <- Some image);
    if not (s.mmio_ok && s.mmio_seed = env.Env.seed) then begin
      for i = 0 to Region.mmio_size - 1 do
        Bytes.set s.mmio i (Char.chr (mmio_pattern env.Env.seed i))
      done;
      s.mmio_seed <- env.Env.seed;
      s.mmio_ok <- true
    end;
    let total_anon =
      List.fold_left
        (fun acc v ->
          match v with
          | Env.Vint _ -> acc
          | Env.Vbuf b -> acc + ((Bytes.length b + 31) / 16 * 16))
        0 env.Env.args
    in
    if Bytes.length s.anon < max total_anon 16 then
      s.anon <- Bytes.make (max total_anon 16) '\000';
    s.in_use <- true;
    build ~pooled:true ~lib_data:s.lib ~heap_data:s.heap ~stack_data:s.stack
      ~mmio_data:s.mmio ~anon_data:s.anon ~fuel ~on_instr image env
  end

let release t =
  if t.pooled then begin
    let s = Domain.DLS.get scratch_key in
    List.iter
      (fun (r : Region.t) ->
        match Region.dirty_span r with
        | None -> ()
        | Some (lo, hi) -> (
          match r.Region.kind with
          | Rheap | Rstack | Ranon -> Bytes.fill r.Region.data lo (hi - lo) '\000'
          | Rlib -> Bytes.blit t.image.Loader.Image.data lo r.Region.data lo (hi - lo)
          | Rothers ->
            for i = lo to hi - 1 do
              Bytes.set r.Region.data i (Char.chr (mmio_pattern t.seed i))
            done))
      t.regions;
    s.in_use <- false
  end

let regs t = t.regs
let trace t = t.trace
let stdout_contents t = Buffer.contents t.stdout_buf
let image t = t.image

let find_region t addr ~len =
  let rec search = function
    | [] -> raise (Trap (Mem_fault addr))
    | r :: rest ->
      if
        Region.contains r addr
        && Region.contains r (Int64.add addr (Int64.of_int (len - 1)))
      then r
      else search rest
  in
  search t.regions

(* --- uncounted accesses (runtime/builtins) --------------------------- *)

let read_u8 t addr =
  let r = find_region t addr ~len:1 in
  Char.code (Bytes.get r.data (Region.offset r addr))

let write_u8 t addr v =
  let r = find_region t addr ~len:1 in
  let off = Region.offset r addr in
  Region.touch r off 1;
  Bytes.set r.data off (Char.chr (v land 0xff))

let read_u64 t addr =
  let r = find_region t addr ~len:8 in
  Bytes.get_int64_le r.data (Region.offset r addr)

let write_u64 t addr v =
  let r = find_region t addr ~len:8 in
  let off = Region.offset r addr in
  Region.touch r off 8;
  Bytes.set_int64_le r.data off v

let read_cstring t addr =
  let buf = Buffer.create 16 in
  let rec loop a =
    let c = read_u8 t a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      if Buffer.length buf > 65536 then raise (Trap (Import_error "unterminated string"))
      else loop (Int64.add a 1L)
    end
  in
  loop addr;
  Buffer.contents buf

let read_stdin t n =
  (* [n] is guest-controlled: clamp from both sides so a negative
     request cannot reach [Bytes.sub] as a negative length *)
  let available = Bytes.length t.stdin - t.stdin_pos in
  let take = max 0 (min n available) in
  let out = Bytes.sub t.stdin t.stdin_pos take in
  t.stdin_pos <- t.stdin_pos + take;
  out

let print_string t s = Buffer.add_string t.stdout_buf s

let malloc t size =
  (* guard before aligning: a size near max_int would overflow the
     alignment arithmetic to a negative [aligned] and slip past the
     heap-bound check below *)
  if size < 0 || size > Region.heap_size then
    raise (Trap (Import_error (Printf.sprintf "malloc: bad size %d" size)));
  let aligned = (max size 1 + 15) / 16 * 16 in
  if t.heap_next + aligned > Region.heap_size then
    raise (Trap (Import_error "out of heap"));
  let addr = Int64.add Region.heap_base (Int64.of_int t.heap_next) in
  t.heap_next <- t.heap_next + aligned;
  addr

let free _t _addr = ()

(* --- counted accesses (instruction-level) ----------------------------- *)

let load t width addr =
  match (width : Isa.Instr.width) with
  | W1 ->
    let r = find_region t addr ~len:1 in
    Trace.record_mem_access t.trace r.kind;
    Int64.of_int (Char.code (Bytes.get r.data (Region.offset r addr)))
  | W8 ->
    let r = find_region t addr ~len:8 in
    Trace.record_mem_access t.trace r.kind;
    Bytes.get_int64_le r.data (Region.offset r addr)

let store t width addr v =
  match (width : Isa.Instr.width) with
  | W1 ->
    let r = find_region t addr ~len:1 in
    Trace.record_mem_access t.trace r.kind;
    let off = Region.offset r addr in
    Region.touch r off 1;
    Bytes.set r.data off (Char.chr (Int64.to_int v land 0xff))
  | W8 ->
    let r = find_region t addr ~len:8 in
    Trace.record_mem_access t.trace r.kind;
    let off = Region.offset r addr in
    Region.touch r off 8;
    Bytes.set_int64_le r.data off v

(* --- ALU ---------------------------------------------------------------- *)

let exec_binop (op : Isa.Instr.binop) a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if b = 0L then raise (Trap Div_by_zero) else Int64.div a b
  | Rem -> if b = 0L then raise (Trap Div_by_zero) else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let exec_fbinop (op : Isa.Instr.fbinop) a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  let r =
    match op with
    | Fadd -> fa +. fb
    | Fsub -> fa -. fb
    | Fmul -> fa *. fb
    | Fdiv -> fa /. fb
  in
  Int64.bits_of_float r

(* --- interpreter --------------------------------------------------------- *)

let listing_of t fidx =
  match Hashtbl.find_opt t.listings fidx with
  | Some l -> l
  | None ->
    let l = Isa.Disasm.disassemble t.params (Loader.Image.function_code t.image fidx) in
    Hashtbl.replace t.listings fidx l;
    l

let syscall t n =
  let reg i = t.regs.(Isa.Reg.arg i) in
  match n with
  | 0 ->
    (* read(fd, buf, n) *)
    let buf = reg 1 and len = Int64.to_int (reg 2) in
    let data = read_stdin t len in
    Bytes.iteri
      (fun i c -> write_u8 t (Int64.add buf (Int64.of_int i)) (Char.code c))
      data;
    t.regs.(Isa.Reg.ret) <- Int64.of_int (Bytes.length data)
  | 1 ->
    (* write(fd, buf, n); a negative guest length is an error return,
       not a Buffer.create crash, and a huge one must not pre-allocate
       (the per-byte reads trap on the first out-of-range address) *)
    let buf = reg 1 and len = Int64.to_int (reg 2) in
    if len < 0 then t.regs.(Isa.Reg.ret) <- Int64.minus_one
    else begin
      let b = Buffer.create (min (max len 16) 65536) in
      for i = 0 to len - 1 do
        Buffer.add_char b (Char.chr (read_u8 t (Int64.add buf (Int64.of_int i))))
      done;
      Buffer.add_buffer t.stdout_buf b;
      t.regs.(Isa.Reg.ret) <- Int64.of_int len
    end
  | 2 -> t.regs.(Isa.Reg.ret) <- 1_600_000_000L  (* deterministic clock *)
  | 3 -> t.regs.(Isa.Reg.ret) <- 4242L
  | _ -> t.regs.(Isa.Reg.ret) <- Int64.minus_one

let rec call_function t ~handler fidx =
  if t.depth >= max_depth then raise (Trap Call_depth_exceeded);
  t.depth <- t.depth + 1;
  Trace.record_depth t.trace t.depth;
  let listing = listing_of t fidx in
  let instrs = listing.Isa.Disasm.instrs in
  let n = Array.length instrs in
  let jump_to off =
    match Isa.Disasm.index_of_offset listing off with
    | Some i -> i
    | None -> raise (Trap (Jump_out_of_range off))
  in
  let rec step pc =
    if pc < 0 || pc >= n then raise (Trap (Jump_out_of_range pc));
    if t.fuel <= 0 then raise (Trap Step_limit);
    t.fuel <- t.fuel - 1;
    let ins = instrs.(pc) in
    t.on_instr ~fidx ~pc ins;
    Trace.record_instr t.trace ~fidx ~pc ins;
    let operand (o : Isa.Instr.operand) =
      match o with Reg r -> t.regs.(r) | Imm v -> v
    in
    match ins with
    | Nop -> step (pc + 1)
    | Mov (d, o) ->
      t.regs.(d) <- operand o;
      step (pc + 1)
    | Binop (op, d, a, o) ->
      t.regs.(d) <- exec_binop op t.regs.(a) (operand o);
      step (pc + 1)
    | Fbinop (op, d, a, b) ->
      t.regs.(d) <- exec_fbinop op t.regs.(a) t.regs.(b);
      step (pc + 1)
    | Neg (d, a) ->
      t.regs.(d) <- Int64.neg t.regs.(a);
      step (pc + 1)
    | Not (d, a) ->
      t.regs.(d) <- Int64.lognot t.regs.(a);
      step (pc + 1)
    | I2f (d, a) ->
      t.regs.(d) <- Int64.bits_of_float (Int64.to_float t.regs.(a));
      step (pc + 1)
    | F2i (d, a) ->
      let f = Int64.float_of_bits t.regs.(a) in
      t.regs.(d) <- (if Float.is_nan f then 0L else Int64.of_float f);
      step (pc + 1)
    | Load (w, d, b, off) ->
      t.regs.(d) <- load t w (Int64.add t.regs.(b) (Int64.of_int off));
      step (pc + 1)
    | Store (w, s, b, off) ->
      store t w (Int64.add t.regs.(b) (Int64.of_int off)) t.regs.(s);
      step (pc + 1)
    | Lea (d, addr) ->
      t.regs.(d) <- addr;
      step (pc + 1)
    | Cmp (a, o) ->
      t.flags <- compare t.regs.(a) (operand o);
      step (pc + 1)
    | Fcmp (a, b) ->
      t.flags <-
        compare (Int64.float_of_bits t.regs.(a)) (Int64.float_of_bits t.regs.(b));
      step (pc + 1)
    | Jmp off -> step (jump_to off)
    | Jcc (c, off) ->
      if Isa.Cond.holds c t.flags then step (jump_to off) else step (pc + 1)
    | Jtable (r, offs) ->
      let idx = t.regs.(r) in
      if idx < 0L || idx >= Int64.of_int (Array.length offs) then
        raise (Trap (Jtable_out_of_range idx))
      else step (jump_to offs.(Int64.to_int idx))
    | Call idx -> begin
      match Loader.Image.call_target t.image idx with
      | Some (Loader.Image.Internal j) ->
        Trace.record_internal_call t.trace;
        call_function t ~handler j;
        step (pc + 1)
      | Some (Loader.Image.Import name) ->
        Trace.record_library_call t.trace;
        handler t name;
        step (pc + 1)
      | None -> raise (Trap (Import_error (Printf.sprintf "bad call index %d" idx)))
    end
    | Ret -> ()
    | Push r ->
      t.regs.(Isa.Reg.sp) <- Int64.sub t.regs.(Isa.Reg.sp) 8L;
      store t W8 t.regs.(Isa.Reg.sp) t.regs.(r);
      step (pc + 1)
    | Pop r ->
      t.regs.(r) <- load t W8 t.regs.(Isa.Reg.sp);
      t.regs.(Isa.Reg.sp) <- Int64.add t.regs.(Isa.Reg.sp) 8L;
      step (pc + 1)
    | Syscall num ->
      Trace.record_syscall t.trace;
      syscall t num;
      step (pc + 1)
  in
  step 0;
  t.depth <- t.depth - 1

let trap_to_string = function
  | Mem_fault addr -> Printf.sprintf "memory fault at 0x%Lx" addr
  | Div_by_zero -> "division by zero"
  | Step_limit -> "step limit exceeded (possible infinite loop)"
  | Call_depth_exceeded -> "call depth exceeded"
  | Jump_out_of_range off -> Printf.sprintf "jump out of range (%d)" off
  | Jtable_out_of_range v -> Printf.sprintf "jump table index out of range (%Ld)" v
  | Unknown_import name -> "unknown import " ^ name
  | Import_error msg -> "import error: " ^ msg
  | Aborted msg -> "aborted: " ^ msg
