type kind = Rlib | Rheap | Rstack | Ranon | Rothers

type t = {
  kind : kind;
  base : int64;
  data : bytes;
  len : int;
  mutable dirty_lo : int;
  mutable dirty_hi : int;
}

let lib_base = Loader.Image.data_base_default
let heap_base = 0x0100_0000L
let heap_size = 1 lsl 20
let anon_base = 0x2000_0000L
let mmio_base = 0x4000_0000L
let mmio_size = 4096
let stack_top = 0x7000_0000L
let stack_size = 1 lsl 18

let make ~kind ~base ~data ~len =
  if len > Bytes.length data then invalid_arg "Region.make: len > capacity";
  { kind; base; data; len; dirty_lo = max_int; dirty_hi = 0 }

let contains t addr =
  addr >= t.base && addr < Int64.add t.base (Int64.of_int t.len)

let offset t addr = Int64.to_int (Int64.sub addr t.base)

let touch t off len =
  if off < t.dirty_lo then t.dirty_lo <- off;
  if off + len > t.dirty_hi then t.dirty_hi <- off + len

let dirty_span t =
  if t.dirty_hi > t.dirty_lo then Some (t.dirty_lo, t.dirty_hi) else None

let kind_to_string = function
  | Rlib -> "lib"
  | Rheap -> "heap"
  | Rstack -> "stack"
  | Ranon -> "anon"
  | Rothers -> "others"
