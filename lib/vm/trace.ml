type t = {
  mutable internal_calls : int;
  mutable depth_samples : int list;
  mutable instr_count : int;
  unique : (int, int) Hashtbl.t;  (** fidx*2^20+pc -> executions *)
  mutable call_count : int;
  mutable arith_count : int;
  mutable branch_count : int;
  mutable load_count : int;
  mutable store_count : int;
  branch_freq : (int, int) Hashtbl.t;
  arith_freq : (int, int) Hashtbl.t;
  mutable heap_access : int;
  mutable stack_access : int;
  mutable lib_access : int;
  mutable anon_access : int;
  mutable others_access : int;
  mutable lib_calls : int;
  mutable syscalls : int;
}

let create () =
  {
    internal_calls = 0;
    depth_samples = [];
    instr_count = 0;
    unique = Hashtbl.create 256;
    call_count = 0;
    arith_count = 0;
    branch_count = 0;
    load_count = 0;
    store_count = 0;
    branch_freq = Hashtbl.create 64;
    arith_freq = Hashtbl.create 64;
    heap_access = 0;
    stack_access = 0;
    lib_access = 0;
    anon_access = 0;
    others_access = 0;
    lib_calls = 0;
    syscalls = 0;
  }

(* int keys are immediate, so the per-instruction bump allocates
   nothing (a tuple key + option box per retired instruction used to be
   the interpreter's only steady-state allocation) *)
let bump table key =
  let v = match Hashtbl.find table key with v -> v | exception Not_found -> 0 in
  Hashtbl.replace table key (v + 1)

let record_instr t ~fidx ~pc ins =
  t.instr_count <- t.instr_count + 1;
  let key = (fidx lsl 20) lor pc in
  bump t.unique key;
  if Isa.Instr.is_call ins then t.call_count <- t.call_count + 1;
  if Isa.Instr.is_arith ins then begin
    t.arith_count <- t.arith_count + 1;
    bump t.arith_freq key
  end;
  if Isa.Instr.is_branch ins then begin
    t.branch_count <- t.branch_count + 1;
    bump t.branch_freq key
  end;
  if Isa.Instr.is_load ins then t.load_count <- t.load_count + 1;
  if Isa.Instr.is_store ins then t.store_count <- t.store_count + 1

let record_depth t d = t.depth_samples <- d :: t.depth_samples

let record_internal_call t = t.internal_calls <- t.internal_calls + 1
let record_library_call t = t.lib_calls <- t.lib_calls + 1
let record_syscall t = t.syscalls <- t.syscalls + 1

let record_mem_access t kind =
  match kind with
  | Region.Rheap -> t.heap_access <- t.heap_access + 1
  | Region.Rstack -> t.stack_access <- t.stack_access + 1
  | Region.Rlib -> t.lib_access <- t.lib_access + 1
  | Region.Ranon -> t.anon_access <- t.anon_access + 1
  | Region.Rothers -> t.others_access <- t.others_access + 1

let instructions_executed t = t.instr_count

let max_freq table =
  Hashtbl.fold (fun _ v acc -> max v acc) table 0

let features t =
  let depths = Array.of_list (List.map float_of_int t.depth_samples) in
  let dmin, dmax, davg, dstd = Util.Stats.min_max_avg_std depths in
  let f = float_of_int in
  [|
    f t.internal_calls;
    dmin;
    dmax;
    davg;
    dstd;
    f t.instr_count;
    f (Hashtbl.length t.unique);
    f t.call_count;
    f t.arith_count;
    f t.branch_count;
    f t.load_count;
    f t.store_count;
    f (max_freq t.branch_freq);
    f (max_freq t.arith_freq);
    f t.heap_access;
    f t.stack_access;
    f t.lib_access;
    f t.anon_access;
    f t.others_access;
    f t.lib_calls;
    f t.syscalls;
  |]
