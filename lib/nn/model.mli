(** The sequential model: the paper's 6-layer network over 96-dimensional
    inputs (a pair of 48-feature static vectors), sigmoid output giving
    the probability that the two functions come from the same source. *)

type t

val paper_architecture : input:int -> (int * Activation.t) list
(** The 6-layer stack used throughout: 96→64→32→16→8→1 with ReLU hidden
    layers and a sigmoid head. *)

val create :
  Util.Prng.t -> input:int -> layers:(int * Activation.t) list -> t

val layer_sizes : t -> int list

val predict : t -> Matrix.t -> Util.Vec.t
(** Batch of inputs to per-row probabilities. *)

val predict_one : t -> Util.Vec.t -> float

type scratch
(** Preallocated per-layer activation buffers for {!predict_into}.  A
    scratch is tied to the model shape it was built from and a maximum
    batch size; one per domain is the intended usage. *)

val make_scratch : t -> max_rows:int -> scratch

val predict_into :
  t ->
  scratch ->
  rows:int ->
  input:float array ->
  dst:float array ->
  pos:int ->
  unit
(** Allocation-free {!predict}: [input] is a row-major [rows × input]
    flat buffer, the per-row probabilities are written to
    [dst.(pos) .. dst.(pos + rows - 1)].  Bit-identical to {!predict} on
    the same values; raises [Invalid_argument] if [rows] exceeds the
    scratch capacity or the head layer is not 1-wide. *)

val train_batch : t -> Matrix.t -> Util.Vec.t -> t * float
(** One optimisation step on a mini-batch; returns the updated model and
    the batch loss.  The optimiser state is threaded inside [t]. *)

val export : t -> int * (Matrix.t * Util.Vec.t * Activation.t) list
(** (input width, per-layer weights/bias/activation) — for persistence. *)

val import : input:int -> (Matrix.t * Util.Vec.t * Activation.t) list -> t
(** Rebuild a model from exported parameters.  Optimiser state is fresh,
    so resuming training restarts Adam's moments; inference is exact. *)
