(** Labelled datasets of feature vectors: shuffling, splitting, batching
    and z-score normalisation (fit on the training split, apply
    everywhere, exactly as the paper's pipeline requires to avoid test
    leakage). *)

type t = { features : Util.Vec.t array; labels : float array }

val make : (Util.Vec.t * float) list -> t
val size : t -> int
val shuffle : Util.Prng.t -> t -> t

val split3 : t -> train:float -> validation:float -> t * t * t
(** Fractions of the whole; the remainder is the test split (the paper
    uses 60/20/20). *)

val batches : t -> int -> (Matrix.t * Util.Vec.t) list
(** Mini-batches of (features, labels); the last batch may be smaller. *)

type normalizer

val fit_normalizer : t -> normalizer
val normalize : normalizer -> t -> t
val normalize_vec : normalizer -> Util.Vec.t -> Util.Vec.t

val normalize_slice :
  normalizer -> offset:int -> Util.Vec.t -> float array -> pos:int -> unit
(** [normalize_slice nz ~offset v dst ~pos] writes [v] z-scored against
    the normalizer coordinates starting at [offset] into [dst] at [pos]
    — the fused write-into-buffer form of [normalize_vec nz
    (Vec.concat ...)], bit-identical per coordinate, allocation-free. *)

val normalizer_stats : normalizer -> Util.Vec.t * Util.Vec.t
(** (means, standard deviations). *)

val normalizer_of_stats : means:Util.Vec.t -> stds:Util.Vec.t -> normalizer
(** Rebuild a normalizer from persisted statistics. *)
