(** Dense row-major float matrices — the minimal linear algebra the
    network needs (the TensorFlow substitute's kernel layer). *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val of_rows : Util.Vec.t array -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Util.Vec.t
val copy : t -> t

val matmul : t -> t -> t
(** [matmul a b] with [a.cols = b.rows]; raises otherwise. *)

val matmul_into :
  m:int -> k:int -> src:float array -> t -> dst:float array -> unit
(** [matmul_into ~m ~k ~src b ~dst] writes [src × b] into [dst], where
    [src] is a row-major [m × k] flat buffer ([k = b.rows]) and [dst]
    holds at least [m * b.cols] floats.  No allocation; bit-identical to
    {!matmul} on the same values (same loop nest and accumulation
    order). *)

val matmul_transpose_a : t -> t -> t
(** aᵀ·b without materialising the transpose. *)

val matmul_transpose_b : t -> t -> t
(** a·bᵀ without materialising the transpose. *)

val add_row_vector : t -> Util.Vec.t -> t
(** Broadcast-add a bias row to every row. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val col_sums : t -> Util.Vec.t
val scale : float -> t -> t
val frobenius : t -> float
