type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length rows_arr.(0) in
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let row m i = Array.sub m.data (i * m.cols) m.cols

let copy m = { m with data = Array.copy m.data }

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul: dimension mismatch";
  let out = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then begin
        let arow = i * b.cols in
        let brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(arow + j) <- out.data.(arow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done;
  out

(* Allocation-free matmul over caller-owned flat buffers: [dst], of at
   least [m * b.cols] floats, receives [src] (row-major [m * k], with
   [k = b.rows]) times [b].  Same loop nest, accumulation order and
   zero-skip as {!matmul}, so the result is bit-identical to the
   allocating path on the same inputs. *)
let matmul_into ~m ~k ~src b ~dst =
  if k <> b.rows then invalid_arg "Matrix.matmul_into: dimension mismatch";
  let cols = b.cols in
  Array.fill dst 0 (m * cols) 0.0;
  for i = 0 to m - 1 do
    for kk = 0 to k - 1 do
      let aik = src.((i * k) + kk) in
      if aik <> 0.0 then begin
        let arow = i * cols in
        let brow = kk * cols in
        for j = 0 to cols - 1 do
          dst.(arow + j) <- dst.(arow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done

let matmul_transpose_a a b =
  (* (aᵀ b) : a is (n×r), result (r × b.cols); requires a.rows = b.rows *)
  if a.rows <> b.rows then invalid_arg "Matrix.matmul_transpose_a: mismatch";
  let out = create a.cols b.cols in
  for k = 0 to a.rows - 1 do
    for i = 0 to a.cols - 1 do
      let aki = a.data.((k * a.cols) + i) in
      if aki <> 0.0 then begin
        let orow = i * b.cols in
        let brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(orow + j) <- out.data.(orow + j) +. (aki *. b.data.(brow + j))
        done
      end
    done
  done;
  out

let matmul_transpose_b a b =
  (* (a bᵀ) : requires a.cols = b.cols; result (a.rows × b.rows) *)
  if a.cols <> b.cols then invalid_arg "Matrix.matmul_transpose_b: mismatch";
  let out = create a.rows b.rows in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.rows - 1 do
      let acc = ref 0.0 in
      let arow = i * a.cols and brow = j * b.cols in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(arow + k) *. b.data.(brow + k))
      done;
      out.data.((i * b.rows) + j) <- !acc
    done
  done;
  out

let add_row_vector m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.add_row_vector: mismatch";
  let out = copy m in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      out.data.((i * m.cols) + j) <- out.data.((i * m.cols) + j) +. v.(j)
    done
  done;
  out

let map f m = { m with data = Array.map f m.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.map2: mismatch";
  { a with data = Array.map2 f a.data b.data }

let col_sums m =
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      out.(j) <- out.(j) +. m.data.((i * m.cols) + j)
    done
  done;
  out

let scale k m = map (fun x -> k *. x) m

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)
