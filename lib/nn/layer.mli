(** One dense layer (weights, bias, activation) with forward and backward
    passes over mini-batches. *)

type t = {
  weights : Matrix.t;  (** (in × out) *)
  bias : Util.Vec.t;  (** (out) *)
  activation : Activation.t;
}

type cache
(** Forward-pass intermediates needed by backward. *)

val create : Util.Prng.t -> inputs:int -> outputs:int -> Activation.t -> t
(** He-initialised weights, zero bias. *)

val forward : t -> Matrix.t -> Matrix.t * cache
(** Batch (n × in) to batch (n × out). *)

val forward_into :
  t -> rows:int -> src:float array -> dst:float array -> unit
(** Inference-only {!forward} over caller-owned row-major flat buffers
    ([src]: rows × in, [dst]: at least rows × out floats).  No cache, no
    allocation; bit-identical outputs. *)

type gradients = { gw : Matrix.t; gb : Util.Vec.t; ginput : Matrix.t }

val backward : t -> cache -> Matrix.t -> gradients
(** [backward t cache dout] with [dout] the loss gradient at the layer's
    output. *)

val apply_update : t -> Matrix.t -> Util.Vec.t -> t
(** Add weight/bias deltas (as produced by an optimiser step). *)
