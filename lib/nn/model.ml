type slot = {
  layer : Layer.t;
  opt_w : Optimizer.state;
  opt_b : Optimizer.state;
}

type t = { slots : slot list; input : int }

let paper_architecture ~input =
  [
    (input, Activation.Relu);
    (64, Activation.Relu);
    (32, Activation.Relu);
    (16, Activation.Relu);
    (8, Activation.Relu);
    (1, Activation.Sigmoid);
  ]

let create rng ~input ~layers =
  let _, slots =
    List.fold_left
      (fun (fan_in, acc) (size, activation) ->
        let layer = Layer.create rng ~inputs:fan_in ~outputs:size activation in
        let opt_w = Optimizer.create Optimizer.default_adam ~rows:fan_in ~cols:size in
        let opt_b = Optimizer.create Optimizer.default_adam ~rows:1 ~cols:size in
        (size, { layer; opt_w; opt_b } :: acc))
      (input, []) layers
  in
  { slots = List.rev slots; input }

let layer_sizes t =
  List.map (fun s -> s.layer.Layer.weights.Matrix.cols) t.slots

let forward_all t batch =
  let out, caches =
    List.fold_left
      (fun (x, caches) slot ->
        let y, cache = Layer.forward slot.layer x in
        (y, cache :: caches))
      (batch, []) t.slots
  in
  (out, caches)

let predict t batch =
  let out, _ = forward_all t batch in
  Array.init out.Matrix.rows (fun i -> Matrix.get out i 0)

let predict_one t v =
  (predict t (Matrix.of_rows [| v |])).(0)

(* --- allocation-free inference over reused buffers -------------------- *)

type scratch = { bufs : float array array; max_rows : int }

let make_scratch t ~max_rows =
  let bufs =
    List.map
      (fun s -> Array.make (max_rows * s.layer.Layer.weights.Matrix.cols) 0.0)
      t.slots
  in
  { bufs = Array.of_list bufs; max_rows }

let predict_into t scratch ~rows ~input ~dst ~pos =
  if rows > scratch.max_rows then invalid_arg "Model.predict_into: batch too big";
  (match List.rev t.slots with
  | head :: _ when head.layer.Layer.weights.Matrix.cols = 1 -> ()
  | _ -> invalid_arg "Model.predict_into: head layer must be 1-wide");
  let cur = ref input in
  List.iteri
    (fun i slot ->
      Layer.forward_into slot.layer ~rows ~src:!cur ~dst:scratch.bufs.(i);
      cur := scratch.bufs.(i))
    t.slots;
  (* the head layer is 1-wide: its column is the per-row probability *)
  let out = !cur in
  Array.blit out 0 dst pos rows

let train_batch t batch labels =
  let out, caches = forward_all t batch in
  let predictions = Array.init out.Matrix.rows (fun i -> Matrix.get out i 0) in
  let loss = Loss.bce ~predictions ~labels in
  let dpred = Loss.bce_gradient ~predictions ~labels in
  let dout = Matrix.init out.Matrix.rows 1 (fun i _ -> dpred.(i)) in
  (* backward through the reversed layer list (caches are already
     innermost-last) *)
  let rev_slots = List.rev t.slots in
  let _, updated_rev =
    List.fold_left2
      (fun (dout, acc) slot cache ->
        let grads = Layer.backward slot.layer cache dout in
        let dw = Optimizer.step slot.opt_w grads.Layer.gw in
        let db = Optimizer.step_vec slot.opt_b grads.Layer.gb in
        let layer = Layer.apply_update slot.layer dw db in
        (grads.Layer.ginput, { slot with layer } :: acc))
      (dout, []) rev_slots caches
  in
  ({ t with slots = updated_rev }, loss)

let export t =
  ( t.input,
    List.map
      (fun s -> (s.layer.Layer.weights, s.layer.Layer.bias, s.layer.Layer.activation))
      t.slots )

let import ~input layers =
  let slots =
    List.map
      (fun (weights, bias, activation) ->
        let layer = { Layer.weights; bias; activation } in
        let opt_w =
          Optimizer.create Optimizer.default_adam ~rows:weights.Matrix.rows
            ~cols:weights.Matrix.cols
        in
        let opt_b =
          Optimizer.create Optimizer.default_adam ~rows:1
            ~cols:(Array.length bias)
        in
        { layer; opt_w; opt_b })
      layers
  in
  { slots; input }
