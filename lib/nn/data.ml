type t = { features : Util.Vec.t array; labels : float array }

let make pairs =
  {
    features = Array.of_list (List.map fst pairs);
    labels = Array.of_list (List.map snd pairs);
  }

let size t = Array.length t.labels

let shuffle rng t =
  let idx = Array.init (size t) Fun.id in
  Util.Prng.shuffle rng idx;
  {
    features = Array.map (fun i -> t.features.(i)) idx;
    labels = Array.map (fun i -> t.labels.(i)) idx;
  }

let slice t lo hi =
  {
    features = Array.sub t.features lo (hi - lo);
    labels = Array.sub t.labels lo (hi - lo);
  }

let split3 t ~train ~validation =
  let n = size t in
  let ntrain = int_of_float (float_of_int n *. train) in
  let nval = int_of_float (float_of_int n *. validation) in
  (slice t 0 ntrain, slice t ntrain (ntrain + nval), slice t (ntrain + nval) n)

let batches t batch_size =
  let n = size t in
  let rec loop start acc =
    if start >= n then List.rev acc
    else begin
      let stop = min (start + batch_size) n in
      let feats = Matrix.of_rows (Array.sub t.features start (stop - start)) in
      let labels = Array.sub t.labels start (stop - start) in
      loop stop ((feats, labels) :: acc)
    end
  in
  loop 0 []

type normalizer = { means : Util.Vec.t; stds : Util.Vec.t }

let fit_normalizer t =
  let n = size t in
  if n = 0 then invalid_arg "Data.fit_normalizer: empty dataset";
  let dim = Array.length t.features.(0) in
  let means = Array.make dim 0.0 in
  Array.iter (fun v -> Array.iteri (fun j x -> means.(j) <- means.(j) +. x) v) t.features;
  Array.iteri (fun j s -> means.(j) <- s /. float_of_int n) means;
  let vars = Array.make dim 0.0 in
  Array.iter
    (fun v ->
      Array.iteri
        (fun j x -> vars.(j) <- vars.(j) +. ((x -. means.(j)) *. (x -. means.(j))))
        v)
    t.features;
  let stds =
    Array.map (fun v -> max (sqrt (v /. float_of_int n)) 1e-9) vars
  in
  { means; stds }

let normalize_vec nz v =
  Array.mapi (fun j x -> (x -. nz.means.(j)) /. nz.stds.(j)) v

(* Fused concat + normalize kernel: write [v], z-scored against the
   normalizer's statistics starting at coordinate [offset], into [dst]
   at [pos].  Normalization is per-coordinate affine, so normalizing the
   two halves of a concatenated pair separately (reference at offset 0,
   candidate at offset [length v]) is bit-identical to
   [normalize_vec nz (Vec.concat a b)] — without materialising the
   concatenation. *)
let normalize_slice nz ~offset v dst ~pos =
  for j = 0 to Array.length v - 1 do
    dst.(pos + j) <- (v.(j) -. nz.means.(offset + j)) /. nz.stds.(offset + j)
  done

let normalize nz t = { t with features = Array.map (normalize_vec nz) t.features }

let normalizer_stats nz = (nz.means, nz.stds)

let normalizer_of_stats ~means ~stds = { means; stds }
