type t = {
  weights : Matrix.t;
  bias : Util.Vec.t;
  activation : Activation.t;
}

type cache = { input : Matrix.t; pre : Matrix.t }

let create rng ~inputs ~outputs activation =
  let scale = sqrt (2.0 /. float_of_int inputs) in
  {
    weights = Matrix.init inputs outputs (fun _ _ -> Util.Prng.gaussian rng *. scale);
    bias = Util.Vec.zeros outputs;
    activation;
  }

let forward t input =
  let pre = Matrix.add_row_vector (Matrix.matmul input t.weights) t.bias in
  let out = Matrix.map (Activation.apply t.activation) pre in
  (out, { input; pre })

(* Inference-only forward over caller-owned flat buffers: no cache, no
   allocation.  The per-element float operations (accumulate, + bias,
   activation) happen in the same order as {!forward}'s
   matmul/add_row_vector/map composition, so the outputs are
   bit-identical. *)
let forward_into t ~rows ~src ~dst =
  let k = t.weights.Matrix.rows and cols = t.weights.Matrix.cols in
  Matrix.matmul_into ~m:rows ~k ~src t.weights ~dst;
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      dst.(base + j) <-
        Activation.apply t.activation (dst.(base + j) +. t.bias.(j))
    done
  done

type gradients = { gw : Matrix.t; gb : Util.Vec.t; ginput : Matrix.t }

let backward t cache dout =
  (* dpre = dout ⊙ act'(pre) *)
  let dpre =
    Matrix.map2
      (fun d p -> d *. Activation.derivative t.activation p)
      dout cache.pre
  in
  let gw = Matrix.matmul_transpose_a cache.input dpre in
  let gb = Matrix.col_sums dpre in
  let ginput = Matrix.matmul_transpose_b dpre t.weights in
  { gw; gb; ginput }

let apply_update t dw db =
  {
    t with
    weights = Matrix.map2 ( +. ) t.weights dw;
    bias = Util.Vec.add t.bias db;
  }
