(** Diff-derived vulnerability signatures (the VulMatch idea).

    For one vuln-DB entry, the vulnerable and patched reference
    functions are compiled at several (architecture, optimisation)
    configurations and their token sets are diffed:

    - [vuln_anchor] / [patched_anchor] — tokens present in *every* build
      of that side.  A function matching the entry resembles one of the
      two sides, so "some function covers the vulnerable anchor or the
      patched anchor" is the candidate test the inverted index
      evaluates.  Immediates are excluded: two functions differing only
      in constants (same patch family, different seeds) are
      indistinguishable to the scoring stages — their dynamic distance
      is 0 on this corpus — so an immediate-bearing anchor could prune a
      cell the exhaustive scan scores as a match.  The anchors are
      restricted to the shape/loop/import/alarm granularity the scorer
      can tell apart.
    - [anchor] — the intersection of the two side anchors: tokens that
      locate the function whatever its patch state.  Kept for display
      and for callers that want a single patch-state-independent locator;
      note a patch that changes control flow removes the whole-function
      shape hash from this shared set while both side anchors keep
      theirs.
    - [vuln_only] — tokens in every vulnerable build and no patched
      build: evidence the scanned function is the unpatched version.
      Unlike the anchors these do keep immediates (the clamp constant a
      one-integer patch changes is the whole point).
    - [patched_only] — the mirror image: evidence of the patch.

    A signature is only [prunable] when it was extracted from at least
    two configurations per side *and* both side anchors are non-empty: a
    single-build signature has seen no compiler variance, so treating
    its tokens as stable would over-prune — such entries are always kept
    as candidates. *)

type t = private {
  anchor : Token.t list;
  vuln_anchor : Token.t list;
  patched_anchor : Token.t list;
  vuln_only : Token.t list;
  patched_only : Token.t list;
  configs : int;  (** build configurations per side (the minimum) *)
}

val extract :
  vuln:(Loader.Image.t * int) list ->
  patched:(Loader.Image.t * int) list ->
  t
(** Raises [Invalid_argument] when either build list is empty. *)

val make :
  ?vuln_anchor:Token.t list ->
  ?patched_anchor:Token.t list ->
  anchor:Token.t list ->
  vuln_only:Token.t list ->
  patched_only:Token.t list ->
  configs:int ->
  unit ->
  t
(** Assemble a signature from explicit token lists (tests, tools); lists
    are sorted and deduplicated.  The side anchors default to [anchor]. *)

val prunable : t -> bool
val anchor_hashes : t -> int array
val vuln_anchor_hashes : t -> int array
val patched_anchor_hashes : t -> int array
val vuln_only_hashes : t -> int array
val patched_only_hashes : t -> int array

val summary : t -> string
(** e.g. ["anchor=1/3/3 vuln_only=2 patched_only=1 configs=9 prunable"]
    — shared/vulnerable/patched anchor sizes, then the differential
    evidence counts. *)
