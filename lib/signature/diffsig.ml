type t = {
  anchor : Token.t list;
  vuln_anchor : Token.t list;
  patched_anchor : Token.t list;
  vuln_only : Token.t list;
  patched_only : Token.t list;
  configs : int;
}

(* sorted-list set algebra (all token lists are sorted + deduped) *)
let rec inter2 a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
    let c = Token.compare x y in
    if c = 0 then x :: inter2 xs ys
    else if c < 0 then inter2 xs b
    else inter2 a ys

let rec union2 a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
    let c = Token.compare x y in
    if c = 0 then x :: union2 xs ys
    else if c < 0 then x :: union2 xs b
    else y :: union2 a ys

let rec diff2 a b =
  match (a, b) with
  | [], _ -> []
  | l, [] -> l
  | x :: xs, y :: ys ->
    let c = Token.compare x y in
    if c = 0 then diff2 xs ys
    else if c < 0 then x :: diff2 xs b
    else diff2 a ys

let inter_all = function
  | [] -> []
  | s :: rest -> List.fold_left inter2 s rest

let union_all sets = List.fold_left union2 [] sets

let make ?vuln_anchor ?patched_anchor ~anchor ~vuln_only ~patched_only ~configs
    () =
  let norm l = List.sort_uniq Token.compare l in
  let anchor = norm anchor in
  {
    anchor;
    vuln_anchor = (match vuln_anchor with Some l -> norm l | None -> anchor);
    patched_anchor =
      (match patched_anchor with Some l -> norm l | None -> anchor);
    vuln_only = norm vuln_only;
    patched_only = norm patched_only;
    configs;
  }

let extract ~vuln ~patched =
  if vuln = [] || patched = [] then
    invalid_arg "Diffsig.extract: empty build list";
  let sets builds = List.map (fun (img, i) -> Tokens.of_binary img i) builds in
  let vsets = sets vuln and psets = sets patched in
  (* the side anchors deliberately exclude immediates.  Two functions
     that differ only in constants (same patch family, different seeds)
     are indistinguishable to the scoring stages — the dynamic distance
     between them is 0 on this corpus — so an immediate-bearing anchor
     would prune cells the exhaustive scan still scores as matches and
     break the byte-parity oracle.  Shape / loop / import / alarm tokens
     are exactly the granularity the NN and dynamic stages can tell
     apart; the immediates stay below as vuln_only/patched_only
     differential evidence. *)
  let structural = List.filter (function Token.Imm _ -> false | _ -> true) in
  let vuln_anchor = structural (inter_all vsets) in
  let patched_anchor = structural (inter_all psets) in
  let vuln_only = diff2 (inter_all vsets) (union_all psets) in
  let patched_only = diff2 (inter_all psets) (union_all vsets) in
  {
    anchor = inter2 vuln_anchor patched_anchor;
    vuln_anchor;
    patched_anchor;
    vuln_only;
    patched_only;
    configs = min (List.length vuln) (List.length patched);
  }

let prunable t =
  t.configs >= 2 && t.vuln_anchor <> [] && t.patched_anchor <> []

let anchor_hashes t = Tokens.hash_set t.anchor
let vuln_anchor_hashes t = Tokens.hash_set t.vuln_anchor
let patched_anchor_hashes t = Tokens.hash_set t.patched_anchor
let vuln_only_hashes t = Tokens.hash_set t.vuln_only
let patched_only_hashes t = Tokens.hash_set t.patched_only

let summary t =
  Printf.sprintf
    "anchor=%d/%d/%d vuln_only=%d patched_only=%d configs=%d %s"
    (List.length t.anchor)
    (List.length t.vuln_anchor)
    (List.length t.patched_anchor)
    (List.length t.vuln_only)
    (List.length t.patched_only)
    t.configs
    (if prunable t then "prunable" else "unprunable")
