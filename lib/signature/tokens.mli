(** Token extraction — a binary function's signature-token set.

    Reuses the pipeline's own recovery passes: the disassembler and CFG
    ([Cfg.Dominators] / [Cfg.Loopnest] for the loop profile), the
    canonical control-shape skeleton ([Analysis.Struct_enc], whose
    subtrees become {!Token.Shape} hashes), and the static bound-check
    facts ([Analysis.Boundcheck] alarm classes).  The result is a
    deterministic, alpha-renaming-invariant token *set*. *)

val min_shape_size : int
(** Only canonical subtrees of at least this many nodes become
    {!Token.Shape} tokens — one-node [cond]/[loop] leaves appear in
    almost every function and would drown the index.  The whole-function
    skeleton is the one exception: its hash is always emitted, so even a
    tiny guard-only function carries a distinctive shape token. *)

val of_binary :
  ?tree:Similarity.Structfp.tree -> Loader.Image.t -> int -> Token.t list
(** Sorted, duplicate-free token set of function [fidx].  [?tree]
    supplies an already-computed canonical skeleton (e.g. from
    [Staticfeat.Cache.struct_fingerprint]) so callers holding one avoid
    re-encoding it. *)

val hash_set : Token.t list -> int array
(** Sorted, duplicate-free {!Token.hash} image of a token list — the
    form the inverted index joins against. *)
