(** Signature tokens — the alphabet of the diff-derived vulnerability
    signatures.

    A token is a small, position-independent fact about a binary
    function that survives recompilation: a distinctive instruction
    immediate, an imported callee, the hash of a canonical control-shape
    subtree, a loop-nesting profile entry, or a static alarm class.
    Token *sets* (not sequences) are compared, so instruction
    scheduling, register allocation and block layout cannot perturb
    them. *)

type t =
  | Imm of int64
      (** a distinctive instruction immediate (|v| >= 2; 0 and +-1 are
          ubiquitous and carry no signal) *)
  | Import of string  (** name of an imported callee *)
  | Shape of int
      (** hash of a canonical control-skeleton subtree
          ({!Similarity.Structfp.tree}, canonical child order) *)
  | Loops of int * int  (** (nesting depth, number of loops at it) *)
  | Alarm of string
      (** a {!Analysis.Boundcheck} alarm class the function trips *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Deterministic (process-independent) non-negative hash.  Collisions
    merely enlarge candidate sets — the index compares hashes on both
    sides, so a collision can never cause a sound entry to be pruned. *)

val tree_hash : Similarity.Structfp.tree -> int
(** Deterministic structural hash of a canonical skeleton tree. *)

val to_string : t -> string
