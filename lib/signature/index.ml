(* Inverted index over per-side anchors.  Each prunable entry posts two
   pseudo-entries — side 2e is its vulnerable anchor, side 2e+1 its
   patched anchor — and an entry is a candidate for an image when some
   single function covers either side (a matching function resembles
   one of the two reference builds, whichever patch state the firmware
   shipped).  The subset test is a counting join; hash collisions can
   only enlarge candidate sets, never shrink them. *)

type t = {
  n : int;
  side_sizes : int array;  (* length 2n; 0 for unprunable entries *)
  unprunable : int list;  (* sorted ids always kept as candidates *)
  table : (int, int list) Hashtbl.t;  (* token hash -> side ids *)
  npostings : int;
}

let vuln_side e = 2 * e
let patched_side e = (2 * e) + 1

let build sigs =
  let n = Array.length sigs in
  let side_sizes = Array.make (2 * n) 0 in
  let table = Hashtbl.create (max 16 (n * 8)) in
  let npostings = ref 0 in
  let unprunable = ref [] in
  let post side hashes =
    side_sizes.(side) <- Array.length hashes;
    Array.iter
      (fun h ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt table h) in
        Hashtbl.replace table h (side :: prev);
        incr npostings)
      hashes
  in
  for e = n - 1 downto 0 do
    if Diffsig.prunable sigs.(e) then begin
      post (vuln_side e) (Diffsig.vuln_anchor_hashes sigs.(e));
      post (patched_side e) (Diffsig.patched_anchor_hashes sigs.(e))
    end
    else unprunable := e :: !unprunable
  done;
  {
    n;
    side_sizes;
    unprunable = !unprunable;
    table;
    npostings = !npostings;
  }

let entry_count t = t.n
let prunable_count t = t.n - List.length t.unprunable
let distinct_tokens t = Hashtbl.length t.table
let postings t = t.npostings
let vuln_anchor_size t e = t.side_sizes.(vuln_side e)
let patched_anchor_size t e = t.side_sizes.(patched_side e)

let count_join t hashes counts =
  Array.iter
    (fun h ->
      match Hashtbl.find_opt t.table h with
      | Some sides -> List.iter (fun s -> counts.(s) <- counts.(s) + 1) sides
      | None -> ())
    hashes

let side_covered t counts side =
  t.side_sizes.(side) > 0 && counts.(side) = t.side_sizes.(side)

let matches t hashes =
  let counts = Array.make (max (2 * t.n) 1) 0 in
  count_join t hashes counts;
  let hits = ref [] in
  for e = t.n - 1 downto 0 do
    if side_covered t counts (vuln_side e) || side_covered t counts (patched_side e)
    then hits := e :: !hits
  done;
  List.merge Int.compare t.unprunable !hits

let candidate_mask t func_sets =
  let mask = Array.make t.n false in
  List.iter (fun e -> mask.(e) <- true) t.unprunable;
  let counts = Array.make (max (2 * t.n) 1) 0 in
  Array.iter
    (fun hashes ->
      Array.fill counts 0 (2 * t.n) 0;
      count_join t hashes counts;
      for e = 0 to t.n - 1 do
        if
          side_covered t counts (vuln_side e)
          || side_covered t counts (patched_side e)
        then mask.(e) <- true
      done)
    func_sets;
  mask

let mean_anchor t =
  let prunable = prunable_count t in
  if prunable = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 t.side_sizes)
    /. float_of_int (2 * prunable)
