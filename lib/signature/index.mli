(** Inverted candidate index: anchor-token hash → posting list of
    per-side entry ids, with a counting-join subset test.

    A function (given as its sorted token-hash set) is a *candidate* for
    entry [e] iff it covers one of [e]'s side anchors — every hash of
    the vulnerable anchor occurs in the set, or every hash of the
    patched anchor does.  A function matching the entry resembles one of
    the two reference builds, so testing the sides separately keeps the
    discrimination a patch-perturbed shared intersection would lose.
    Entries whose signature is not {!Diffsig.prunable} are always
    candidates — the index can narrow work, never lose it.  Hash
    collisions only ever enlarge candidate sets (both sides hash with
    {!Token.hash}), so the subset test is sound by construction. *)

type t

val build : Diffsig.t array -> t
(** Entry ids are the array indices. *)

val entry_count : t -> int
val prunable_count : t -> int

val distinct_tokens : t -> int
(** Number of distinct anchor-token hashes indexed. *)

val postings : t -> int
(** Total posting-list length (sum over tokens of anchor sides listing
    them). *)

val vuln_anchor_size : t -> int -> int
(** Vulnerable-side anchor size of entry [i]; [0] for unprunable
    entries. *)

val patched_anchor_size : t -> int -> int
(** Patched-side anchor size of entry [i]; [0] for unprunable
    entries. *)

val matches : t -> int array -> int list
(** Sorted entry ids the given sorted hash set is a candidate for
    (unprunable entries always included). *)

val candidate_mask : t -> int array array -> bool array
(** Per-entry: does *any* of the given function hash sets match?  The
    per-image test the scanner's pruning stage evaluates — one hash set
    per function of the image. *)

val mean_anchor : t -> float
(** Mean side-anchor size over prunable entries (0 when none). *)
