let min_shape_size = 3

(* distinctive instruction immediates, mirroring
   [Analysis.Struct_enc.instr_imm]: the operand positions where source
   constants survive lowering *)
let instr_imm (ins : int Isa.Instr.t) =
  match ins with
  | Isa.Instr.Mov (_, Isa.Instr.Imm v)
  | Isa.Instr.Binop (_, _, _, Isa.Instr.Imm v)
  | Isa.Instr.Cmp (_, Isa.Instr.Imm v) ->
    if Int64.compare (Int64.abs v) 2L >= 0 then Some v else None
  | Isa.Instr.Mov (_, Isa.Instr.Reg _)
  | Isa.Instr.Binop (_, _, _, Isa.Instr.Reg _)
  | Isa.Instr.Cmp (_, Isa.Instr.Reg _)
  | Isa.Instr.Nop | Isa.Instr.Fbinop _ | Isa.Instr.Neg _ | Isa.Instr.Not _
  | Isa.Instr.I2f _ | Isa.Instr.F2i _ | Isa.Instr.Load _ | Isa.Instr.Store _
  | Isa.Instr.Lea _ | Isa.Instr.Fcmp _ | Isa.Instr.Jmp _ | Isa.Instr.Jcc _
  | Isa.Instr.Jtable _ | Isa.Instr.Call _ | Isa.Instr.Ret | Isa.Instr.Push _
  | Isa.Instr.Pop _ | Isa.Instr.Syscall _ ->
    None

let alarm_classes =
  [
    Analysis.Boundcheck.Oob_load;
    Analysis.Boundcheck.Oob_store;
    Analysis.Boundcheck.Div_zero;
    Analysis.Boundcheck.Bad_builtin;
  ]

let of_binary ?tree img fidx =
  let listing = Loader.Image.disassemble img fidx in
  let instrs = listing.Isa.Disasm.instrs in
  let acc = ref [] in
  let add t = acc := t :: !acc in
  (* immediates and import callees straight off the listing *)
  Array.iter
    (fun (ins : int Isa.Instr.t) ->
      (match instr_imm ins with Some v -> add (Token.Imm v) | None -> ());
      match ins with
      | Isa.Instr.Call idx -> (
        match Loader.Image.call_target img idx with
        | Some (Loader.Image.Import name) -> add (Token.Import name)
        | Some (Loader.Image.Internal _) | None -> ())
      | Isa.Instr.Nop | Isa.Instr.Mov _ | Isa.Instr.Binop _
      | Isa.Instr.Fbinop _ | Isa.Instr.Neg _ | Isa.Instr.Not _
      | Isa.Instr.I2f _ | Isa.Instr.F2i _ | Isa.Instr.Load _
      | Isa.Instr.Store _ | Isa.Instr.Lea _ | Isa.Instr.Cmp _
      | Isa.Instr.Fcmp _ | Isa.Instr.Jmp _ | Isa.Instr.Jcc _
      | Isa.Instr.Jtable _ | Isa.Instr.Ret | Isa.Instr.Push _
      | Isa.Instr.Pop _ | Isa.Instr.Syscall _ ->
        ())
    instrs;
  (* loop-nesting profile from the recovered CFG *)
  let g = Cfg.Graph.build listing in
  let dom = Cfg.Dominators.compute g in
  let nest = Cfg.Loopnest.build g dom in
  let nloops = Cfg.Loopnest.loop_count nest in
  if nloops > 0 then begin
    let per_depth = Hashtbl.create 4 in
    for l = 0 to nloops - 1 do
      let d = Cfg.Loopnest.depth nest l in
      Hashtbl.replace per_depth d
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_depth d))
    done;
    Hashtbl.iter (fun d c -> add (Token.Loops (d, c))) per_depth
  end;
  (* canonical control-shape subtrees *)
  let tree =
    match tree with
    | Some t -> t
    | None -> Similarity.Structfp.tree (Analysis.Struct_enc.of_graph g)
  in
  (* the whole-function skeleton is always emitted, even below
     [min_shape_size]: tiny functions (a lone clamp or guard) have no
     subtree of 3+ nodes, and the full-tree hash is what lets the index
     tell them apart from loop-bearing library code *)
  let rec subtrees ~root (t : Similarity.Structfp.tree) =
    if root || Similarity.Structfp.tree_size t >= min_shape_size then
      add (Token.Shape (Token.tree_hash t));
    List.iter (subtrees ~root:false) t.Similarity.Structfp.children
  in
  subtrees ~root:true tree;
  (* static alarm classes *)
  let alarms = Analysis.Boundcheck.signature img fidx in
  List.iter
    (fun cls ->
      if alarms.(Analysis.Boundcheck.class_index cls) > 0 then
        add (Token.Alarm (Analysis.Boundcheck.class_name cls)))
    alarm_classes;
  List.sort_uniq Token.compare !acc

let hash_set tokens =
  List.map Token.hash tokens
  |> List.sort_uniq Int.compare
  |> Array.of_list
