type t =
  | Imm of int64
  | Import of string
  | Shape of int
  | Loops of int * int
  | Alarm of string

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* 64-bit avalanche (splitmix64 finalizer): every token class gets its
   own salt so [Imm 3] and [Shape 3] cannot collide structurally *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let finish salt v =
  Int64.to_int (mix64 (Int64.logxor (Int64.of_int salt) v)) land max_int

let string_hash s =
  (* FNV-1a, 64-bit *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let hash = function
  | Imm v -> finish 0x51 v
  | Import s -> finish 0x52 (string_hash s)
  | Shape h -> finish 0x53 (Int64.of_int h)
  | Loops (d, c) -> finish 0x54 (Int64.of_int ((d * 0x3ffff) + c))
  | Alarm s -> finish 0x55 (string_hash s)

let tree_hash tree =
  (* children are already in canonical order (Structfp.node), so a plain
     left fold is branch-swap invariant by construction *)
  let rec go (t : Similarity.Structfp.tree) =
    List.fold_left
      (fun acc kid -> mix64 (Int64.add acc (Int64.of_int (go kid))))
      (mix64 (Int64.of_int ((t.Similarity.Structfp.label * 2) + 1)))
      t.Similarity.Structfp.children
    |> Int64.to_int
    |> ( land ) max_int
  in
  go tree

let to_string = function
  | Imm v -> Printf.sprintf "imm:%Ld" v
  | Import s -> Printf.sprintf "import:%s" s
  | Shape h -> Printf.sprintf "shape:%x" h
  | Loops (d, c) -> Printf.sprintf "loops:%d@depth%d" c d
  | Alarm s -> Printf.sprintf "alarm:%s" s
