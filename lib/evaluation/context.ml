type device_eval = {
  device : Corpus.Devices.device;
  named_firmware : Loader.Firmware.t;
  firmware : Loader.Firmware.t;
  truths : Corpus.Devices.truth list;
}

type t = {
  classifier : Patchecko.Static_stage.classifier;
  history : Nn.Train.epoch_stats list;
  test_accuracy : float;
  test_auc : float;
  db : Patchecko.Vulndb.t;
  devices : device_eval list;
  dyn_config : Patchecko.Dynamic_stage.config;
}

let build_db ?(cves = Corpus.Cves.all) ?(signatures = true) () =
  Patchecko.Vulndb.create
    (List.map
       (fun (c : Corpus.Cves.t) ->
         let vimg = Corpus.Dataset.compile_cve c ~patched:false in
         let pimg = Corpus.Dataset.compile_cve c ~patched:true in
         (* the extra signature builds make the diff signatures prunable
            (>= 2 configurations per side); without them every entry
            stays an always-kept candidate *)
         let builds =
           if signatures then
             ( Corpus.Dataset.signature_builds c ~patched:false,
               Corpus.Dataset.signature_builds c ~patched:true )
           else ([], [])
         in
         Patchecko.Vulndb.make_entry
           ~source:(Corpus.Cves.vulnerable_func c, Corpus.Cves.patched_func c)
           ~builds ~cve_id:c.id ~description:c.description ~shape:c.shape
           ~vuln:(vimg, 0) ~patched:(pimg, 0) ())
       cves)

let build_device ?(nlibs = 6) ?(nfuncs_base = 36) device =
  let named_firmware, truths =
    Corpus.Devices.build_firmware ~nlibs ~nfuncs_base device
  in
  {
    device;
    named_firmware;
    firmware = Loader.Firmware.strip named_firmware;
    truths;
  }

let train_classifier ?(fast = false) ?dataset ?epochs ?(progress = fun _ -> ())
    () =
  let dataset_config =
    match dataset with
    | Some c -> c
    | None ->
      if fast then Corpus.Dataset.small_config else Corpus.Dataset.default_config
  in
  let epochs = match epochs with Some e -> e | None -> if fast then 4 else 14 in
  progress "building Dataset I (compile + feature extraction)";
  let pairs = Corpus.Dataset.build_pairs dataset_config in
  let train, validation, test = Nn.Data.split3 pairs ~train:0.6 ~validation:0.2 in
  progress
    (Printf.sprintf "training on %d pairs (%d validation, %d test)"
       (Nn.Data.size train) (Nn.Data.size validation) (Nn.Data.size test));
  let normalizer = Nn.Data.fit_normalizer train in
  let train_n = Nn.Data.normalize normalizer train in
  let val_n = Nn.Data.normalize normalizer validation in
  let test_n = Nn.Data.normalize normalizer test in
  let rng = Util.Prng.create 0xBEEFL in
  let model =
    Nn.Model.create rng ~input:(2 * Staticfeat.Names.count)
      ~layers:(Nn.Model.paper_architecture ~input:(2 * Staticfeat.Names.count))
  in
  let config = { Nn.Train.default_config with epochs } in
  let model, history =
    Nn.Train.fit ~config
      ~progress:(fun s ->
        progress
          (Printf.sprintf "epoch %d: loss %.4f acc %.4f (val %.4f)"
             s.Nn.Train.epoch s.Nn.Train.train_loss s.Nn.Train.train_accuracy
             s.Nn.Train.val_accuracy))
      model ~train:train_n ~validation:val_n
  in
  let predictions =
    Nn.Model.predict model (Nn.Matrix.of_rows test_n.Nn.Data.features)
  in
  let test_accuracy =
    Nn.Metrics.accuracy ~predictions ~labels:test_n.Nn.Data.labels ()
  in
  let test_auc = Nn.Metrics.auc ~predictions ~labels:test_n.Nn.Data.labels in
  progress (Printf.sprintf "test accuracy %.4f, AUC %.4f" test_accuracy test_auc);
  let classifier =
    {
      Patchecko.Static_stage.model;
      normalizer;
      threshold = Patchecko.Static_stage.default_threshold;
    }
  in
  (classifier, history, (test_accuracy, test_auc))

let build ?(fast = false) ?dataset ?epochs ?(progress = fun _ -> ()) () =
  let classifier, history, (test_accuracy, test_auc) =
    train_classifier ~fast ?dataset ?epochs ~progress ()
  in
  progress "building vulnerability database (Dataset II)";
  let db = build_db () in
  progress "compiling device firmware images (Dataset III)";
  let nlibs = if fast then 5 else 6 in
  let nfuncs_base = if fast then 16 else 36 in
  let devices =
    List.map (build_device ~nlibs ~nfuncs_base) Corpus.Devices.all
  in
  let dyn_config =
    if fast then
      { Patchecko.Dynamic_stage.default_config with k_envs = 4; fuel = 100_000 }
    else Patchecko.Dynamic_stage.default_config
  in
  {
    classifier;
    history;
    test_accuracy;
    test_auc;
    db;
    devices;
    dyn_config;
  }

let function_name dev ~image fidx =
  match Loader.Firmware.find_image dev.named_firmware image with
  | None -> Printf.sprintf "fun_%d" fidx
  | Some img -> (
    match Loader.Image.function_name img fidx with
    | Some name -> name
    | None -> Printf.sprintf "fun_%d" fidx)

let db_entry t id =
  match Patchecko.Vulndb.find t.db id with
  | Some e -> e
  | None -> raise Not_found

let device_by_name t name =
  List.find_opt (fun d -> d.device.Corpus.Devices.device_name = name) t.devices
