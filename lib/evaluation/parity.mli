(** Pruned-vs-exhaustive parity grid.

    For each device, run the whole-firmware scan twice — exhaustive
    (the correctness oracle) and with index pruning — and compare the
    serialized reports byte for byte.  The candidate index's no-false-
    prune property plus the batched static kernel's bit-identical
    per-pair scores make exact parity the expected outcome on a
    fault-free corpus; any divergence is a bug, not noise. *)

type row = {
  device : string;
  cells : int;  (** entries × images *)
  pruned_cells : int;  (** cells the index skipped *)
  findings : int;  (** findings of the pruned scan *)
  identical : bool;  (** pruned report bytes = exhaustive report bytes *)
  reduction : float;  (** cells / surviving cells (candidate-set reduction) *)
}

val run_device : Context.t -> Context.device_eval -> row
val run : ?progress:(string -> unit) -> Context.t -> row list
val all_identical : row list -> bool
val render : Format.formatter -> row list -> unit
