(** The evaluation grid: every (device, CVE, reference version) pipeline
    run, from which every table and figure of §V is derived. *)

type run = {
  device_name : string;
  truth : Corpus.Devices.truth;
  vuln_report : Patchecko.Pipeline.report;  (** vulnerable-reference query *)
  patched_report : Patchecko.Pipeline.report;  (** patched-reference query *)
}

val run_cve :
  Context.t -> Context.device_eval -> Corpus.Devices.truth -> run
(** Both reference-version queries for one CVE on one device. *)

val run_device : ?progress:(string -> unit) -> Context.t -> Context.device_eval -> run list

val run_all : ?progress:(string -> unit) -> Context.t -> run list
(** Every device.  Cells run in parallel on the default domain pool
    (each cell is deterministic, so results match the sequential order);
    [progress] is serialised behind a mutex. *)

val final_verdict : run -> Patchecko.Differential.verdict option
(** The patch-presence decision reported in Table VIII: the
    vulnerable-reference verdict, falling back to the patched-reference
    one if that pipeline located nothing. *)
