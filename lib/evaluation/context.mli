(** Shared evaluation context: the trained classifier, the 25-entry
    vulnerability database and the two device firmwares — everything the
    per-table experiments consume.  Building it is the expensive part
    (Dataset I extraction + model training + firmware compilation), so the
    bench harness builds it once. *)

type device_eval = {
  device : Corpus.Devices.device;
  named_firmware : Loader.Firmware.t;  (** with symbol tables *)
  firmware : Loader.Firmware.t;  (** stripped; what the pipeline sees *)
  truths : Corpus.Devices.truth list;
}

type t = {
  classifier : Patchecko.Static_stage.classifier;
  history : Nn.Train.epoch_stats list;
  test_accuracy : float;
  test_auc : float;
  db : Patchecko.Vulndb.t;
  devices : device_eval list;
  dyn_config : Patchecko.Dynamic_stage.config;
}

val build :
  ?fast:bool ->
  ?dataset:Corpus.Dataset.config ->
  ?epochs:int ->
  ?progress:(string -> unit) ->
  unit ->
  t
(** [fast] shrinks the dataset and firmware for tests/CI (minutes →
    seconds); defaults to the full configuration. *)

val train_classifier :
  ?fast:bool ->
  ?dataset:Corpus.Dataset.config ->
  ?epochs:int ->
  ?progress:(string -> unit) ->
  unit ->
  Patchecko.Static_stage.classifier * Nn.Train.epoch_stats list * (float * float)
(** Just the similarity model: (classifier, history, (test accuracy,
    test AUC)).  Pair with {!Nn.Serialize.write_classifier} to ship a
    trained model. *)

val build_db :
  ?cves:Corpus.Cves.t list -> ?signatures:bool -> unit -> Patchecko.Vulndb.t
(** Just the vulnerability database (Dataset II) — by default the 25
    Table VI entries with prunable diff signatures extracted over
    {!Corpus.Dataset.signature_configs}.  [~cves] substitutes another
    entry list (e.g. enlarged with {!Corpus.Cves.synthetic});
    [~signatures:false] skips the extra signature builds, leaving every
    entry unprunable (the pre-index behaviour). *)

val function_name : device_eval -> image:string -> int -> string
(** Ground-truth name from the named firmware ("fun_N" fallback). *)

val db_entry : t -> string -> Patchecko.Vulndb.entry
(** Raises [Not_found]. *)

val device_by_name : t -> string -> device_eval option
