(* Pruned-vs-exhaustive parity: the index is an optimisation with a hard
   correctness contract — on a fault-free corpus a pruned scan must
   serialize to exactly the bytes of the exhaustive scan.  This grid
   runs both scans per device and compares the JSON reports, which is
   the same oracle the chaos suite uses across domain counts. *)

type row = {
  device : string;
  cells : int;
  pruned_cells : int;
  findings : int;
  identical : bool;
  reduction : float;
}

let run_device ctx (dev : Context.device_eval) =
  (* the production reporting threshold: pruning is calibrated against
     it and auto-disables above it, so this is the configuration in
     which the parity contract is meaningful (and the one the scan CLI
     defaults to) *)
  let scan ~prune =
    Patchecko.Scanner.scan_firmware ~dyn_config:ctx.Context.dyn_config
      ~max_distance:Patchecko.Scanner.prune_safe_distance
      ~classifier:ctx.Context.classifier ~db:ctx.Context.db ~prune
      dev.Context.firmware
  in
  let exhaustive = scan ~prune:false in
  let pruned = scan ~prune:true in
  let kept = pruned.Patchecko.Scanner.cells - pruned.Patchecko.Scanner.pruned_cells in
  {
    device = dev.Context.device.Corpus.Devices.device_name;
    cells = pruned.Patchecko.Scanner.cells;
    pruned_cells = pruned.Patchecko.Scanner.pruned_cells;
    findings = List.length pruned.Patchecko.Scanner.findings;
    identical =
      String.equal
        (Patchecko.Scanner.report_to_json exhaustive)
        (Patchecko.Scanner.report_to_json pruned);
    reduction =
      (if kept = 0 then float_of_int pruned.Patchecko.Scanner.cells
       else
         float_of_int pruned.Patchecko.Scanner.cells /. float_of_int kept);
  }

let run ?(progress = fun _ -> ()) (ctx : Context.t) =
  List.map
    (fun dev ->
      progress
        (Printf.sprintf "parity scan (pruned + exhaustive): %s"
           dev.Context.device.Corpus.Devices.device_name);
      run_device ctx dev)
    ctx.Context.devices

let all_identical rows = List.for_all (fun r -> r.identical) rows

let render ppf rows =
  Format.fprintf ppf "Pruned-vs-exhaustive parity@.";
  Format.fprintf ppf "%-16s %8s %8s %10s %10s %10s@." "device" "cells"
    "pruned" "findings" "reduction" "identical";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %8d %8d %10d %9.1fx %10s@." r.device r.cells
        r.pruned_cells r.findings r.reduction
        (if r.identical then "yes" else "NO"))
    rows
