let compare_detection ppf (ctx : Context.t) runs =
  Format.fprintf ppf
    "Baseline comparison: rank of the true function per method@.";
  Format.fprintf ppf "%-16s %8s %8s %10s %8s %8s %8s@." "CVE" "kNN" "graph"
    "NN-static" "alarm" "struct" "hybrid";
  let top1 = Array.make 6 0 and top3 = Array.make 6 0 in
  let n = ref 0 in
  let bump k rank =
    match rank with
    | Some 1 ->
      top1.(k) <- top1.(k) + 1;
      top3.(k) <- top3.(k) + 1
    | Some r when r <= 3 -> top3.(k) <- top3.(k) + 1
    | Some _ | None -> ()
  in
  List.iter
    (fun (r : Grid.run) ->
      if
        r.Grid.device_name
        = Corpus.Devices.android_things.Corpus.Devices.device_name
        && not r.Grid.truth.Corpus.Devices.patched
      then begin
        let truth = r.Grid.truth in
        let entry = Context.db_entry ctx truth.cve.Corpus.Cves.id in
        let dev =
          match Context.device_by_name ctx r.Grid.device_name with
          | Some d -> d
          | None -> invalid_arg "baselines: unknown device"
        in
        let target =
          match
            Loader.Firmware.find_image dev.Context.firmware truth.image_name
          with
          | Some img -> img
          | None -> invalid_arg "baselines: missing image"
        in
        incr n;
        (* 1. feature kNN *)
        let knn_rank =
          Baseline.Knn.rank_of truth.findex
            (Baseline.Knn.rank_image ~reference:entry.Patchecko.Vulndb.vuln_static
               target)
        in
        (* 2. CFG bipartite matching *)
        let ref_blocks =
          Baseline.Graphmatch.block_attributes entry.Patchecko.Vulndb.vuln_image
            entry.Patchecko.Vulndb.vuln_findex
        in
        let gm_rank =
          Baseline.Graphmatch.rank_of truth.findex
            (Baseline.Graphmatch.rank ~reference:ref_blocks target)
        in
        (* 3. learned static stage: rank by classifier score *)
        let scores =
          r.Grid.vuln_report.Patchecko.Pipeline.static
            .Patchecko.Static_stage.scores
        in
        let nn_rank =
          if truth.findex >= Array.length scores then None
          else begin
            let my = scores.(truth.findex) in
            let better = ref 0 in
            Array.iteri
              (fun i s -> if i <> truth.findex && s > my then incr better)
              scores;
            Some (!better + 1)
          end
        in
        (* 4. memory-safety alarm signatures: rank by distance of each
           candidate's Boundcheck alarm vector to the vulnerable
           reference's.  Mostly-zero signatures make this a weak locator
           on its own — which is exactly the point of the comparison. *)
        let alarm_rank =
          let reference =
            Analysis.Boundcheck.signature entry.Patchecko.Vulndb.vuln_image
              entry.Patchecko.Vulndb.vuln_findex
          in
          List.init (Loader.Image.function_count target) (fun i ->
              ( i,
                Analysis.Boundcheck.distance reference
                  (Analysis.Boundcheck.signature target i) ))
          |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
          |> Baseline.Knn.rank_of truth.findex
        in
        (* 5. structural fingerprints: rank by Structfp distance of each
           candidate's CFG-shape encoding to the vulnerable reference's
           AST-side fingerprint (cross-representation matching). *)
        let struct_rank =
          let fps = Staticfeat.Cache.struct_fingerprints target in
          List.init (Loader.Image.function_count target) (fun i ->
              ( i,
                Similarity.Structfp.distance
                  entry.Patchecko.Vulndb.vuln_struct fps.(i) ))
          |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
          |> Baseline.Knn.rank_of truth.findex
        in
        (* 6. full hybrid *)
        let hybrid_rank = r.Grid.vuln_report.Patchecko.Pipeline.true_rank in
        bump 0 knn_rank;
        bump 1 gm_rank;
        bump 2 nn_rank;
        bump 3 alarm_rank;
        bump 4 struct_rank;
        bump 5 hybrid_rank;
        let show = function Some k -> string_of_int k | None -> "-" in
        Format.fprintf ppf "%-16s %8s %8s %10s %8s %8s %8s@."
          truth.cve.Corpus.Cves.id (show knn_rank) (show gm_rank)
          (show nn_rank) (show alarm_rank) (show struct_rank)
          (show hybrid_rank)
      end)
    runs;
  if !n > 0 then begin
    let pct v = 100 * v / !n in
    Format.fprintf ppf "top-1:           %7d%% %7d%% %9d%% %7d%% %7d%% %7d%%@."
      (pct top1.(0)) (pct top1.(1)) (pct top1.(2)) (pct top1.(3))
      (pct top1.(4)) (pct top1.(5));
    Format.fprintf ppf "top-3:           %7d%% %7d%% %9d%% %7d%% %7d%% %7d%%@.@."
      (pct top3.(0)) (pct top3.(1)) (pct top3.(2)) (pct top3.(3))
      (pct top3.(4)) (pct top3.(5))
  end
