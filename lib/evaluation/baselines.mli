(** Baseline comparison (the related-work methods of §VI): where does the
    true function rank under feature-kNN, CFG graph matching, and a
    VulMatch-style memory-safety alarm-signature match versus PATCHECKO's
    learned static stage and full hybrid pipeline? *)

val compare_detection : Format.formatter -> Context.t -> Grid.run list -> unit
(** Per-CVE ranks on Android Things (unpatched CVEs, vulnerable
    reference) plus top-1/top-3 summary per method. *)
