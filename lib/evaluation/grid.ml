type run = {
  device_name : string;
  truth : Corpus.Devices.truth;
  vuln_report : Patchecko.Pipeline.report;
  patched_report : Patchecko.Pipeline.report;
}

let target_image (dev : Context.device_eval) (truth : Corpus.Devices.truth) =
  match Loader.Firmware.find_image dev.Context.firmware truth.image_name with
  | Some img -> img
  | None -> invalid_arg ("grid: missing image " ^ truth.image_name)

let run_cve (ctx : Context.t) (dev : Context.device_eval)
    (truth : Corpus.Devices.truth) =
  (* a root span for the same reason as the scanner's cells: the trace
     shape must not depend on which domain the cell lands on *)
  Obs.Trace.root_span ~name:"grid.cell"
    ~attrs:(fun () ->
      [
        ("device", dev.Context.device.Corpus.Devices.device_name);
        ("cve", truth.Corpus.Devices.cve.Corpus.Cves.id);
      ])
  @@ fun () ->
  let entry = Context.db_entry ctx truth.cve.Corpus.Cves.id in
  let target = target_image dev truth in
  let analyze reference_patched =
    Patchecko.Pipeline.analyze ~dyn_config:ctx.dyn_config
      ~ground_truth:truth.findex ~classifier:ctx.classifier ~db_entry:entry
      ~reference_patched ~target ()
  in
  {
    device_name = dev.device.Corpus.Devices.device_name;
    truth;
    vuln_report = analyze false;
    patched_report = analyze true;
  }

let run_device ?(progress = fun _ -> ()) ctx dev =
  List.map
    (fun truth ->
      progress
        (Printf.sprintf "  %s / %s"
           dev.Context.device.Corpus.Devices.device_name
           truth.Corpus.Devices.cve.Corpus.Cves.id);
      run_cve ctx dev truth)
    dev.Context.truths

let run_all ?progress ctx =
  Obs.Trace.root_span ~name:"grid.run_all"
    ~attrs:(fun () ->
      [ ("devices", string_of_int (List.length ctx.Context.devices)) ])
  @@ fun () ->
  (* pre-extract the features of every targeted image once (parallel
     within each image) so the parallel cells below only read the cache *)
  List.iter
    (fun (dev : Context.device_eval) ->
      List.iter
        (fun (truth : Corpus.Devices.truth) ->
          ignore (Staticfeat.Cache.features (target_image dev truth)))
        dev.Context.truths)
    ctx.Context.devices;
  let cells =
    Array.of_list
      (List.concat_map
         (fun (dev : Context.device_eval) ->
           List.map (fun truth -> (dev, truth)) dev.Context.truths)
         ctx.Context.devices)
  in
  let progress_mutex = Mutex.create () in
  let note dev truth =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock progress_mutex)
        (fun () ->
          f
            (Printf.sprintf "  %s / %s"
               dev.Context.device.Corpus.Devices.device_name
               truth.Corpus.Devices.cve.Corpus.Cves.id))
  in
  (* every (device, CVE) cell runs both reference queries independently;
     cell order (and so every derived table) matches the sequential run *)
  Parallel.Pool.map_array ~chunk:1
    (fun (dev, truth) ->
      note dev truth;
      run_cve ctx dev truth)
    cells
  |> Array.to_list

(* The paper runs the whole search twice — once from the vulnerable
   reference, once from the patched one — and the differential engine
   judges whichever located function matches best.  When the two queries
   locate different functions, the query whose top candidate sits at the
   smaller dynamic distance wins; when they agree, the differential
   verdict on that function (already computed in the vulnerable-reference
   report) is used directly. *)
let final_verdict run =
  let top (r : Patchecko.Pipeline.report) =
    match r.Patchecko.Pipeline.dynamic with
    | Some d -> (
      match d.Patchecko.Dynamic_stage.ranking with
      | best :: _ ->
        Some (best.Similarity.Rank.candidate, best.Similarity.Rank.distance)
      | [] -> None)
    | None -> None
  in
  let verdict_of (r : Patchecko.Pipeline.report) =
    Option.map fst r.Patchecko.Pipeline.verdict
  in
  match (top run.vuln_report, top run.patched_report) with
  | None, None -> None
  | Some _, None -> verdict_of run.vuln_report
  | None, Some _ -> verdict_of run.patched_report
  | Some (fv, dv), Some (fp, dp) ->
    if fv = fp then verdict_of run.vuln_report
    else if dv <= dp then verdict_of run.vuln_report
    else verdict_of run.patched_report
