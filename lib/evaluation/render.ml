let things_runs runs =
  List.filter
    (fun r ->
      r.Grid.device_name
      = Corpus.Devices.android_things.Corpus.Devices.device_name)
    runs

let fig8 ppf (ctx : Context.t) =
  Format.fprintf ppf "Figure 8: deep learning training curves@.";
  Format.fprintf ppf "%-6s %12s %12s %12s %12s@." "epoch" "train-loss"
    "train-acc" "val-loss" "val-acc";
  List.iter
    (fun (s : Nn.Train.epoch_stats) ->
      Format.fprintf ppf "%-6d %12.4f %12.4f %12.4f %12.4f@." s.epoch
        s.train_loss s.train_accuracy s.val_loss s.val_accuracy)
    ctx.history;
  Format.fprintf ppf "held-out test: accuracy %.4f, AUC %.4f@.@."
    ctx.test_accuracy ctx.test_auc

let fp_rate (report : Patchecko.Pipeline.report) =
  match report.Patchecko.Pipeline.classification with
  | Some c -> c.Patchecko.Pipeline.fp_rate
  | None -> 0.0

let fig7 ppf runs =
  Format.fprintf ppf
    "Figure 7: false positive rate, vulnerable vs patched reference@.";
  Format.fprintf ppf "%-16s %-22s %10s %10s@." "CVE" "device" "vuln-ref"
    "patch-ref";
  List.iter
    (fun (r : Grid.run) ->
      Format.fprintf ppf "%-16s %-22s %9.2f%% %9.2f%%@."
        r.Grid.truth.Corpus.Devices.cve.Corpus.Cves.id r.Grid.device_name
        (100.0 *. fp_rate r.Grid.vuln_report)
        (100.0 *. fp_rate r.Grid.patched_report))
    runs;
  Format.fprintf ppf "@."

let case_study_id = "CVE-2018-9412"

let find_case_study runs =
  List.find_opt
    (fun r -> r.Grid.truth.Corpus.Devices.cve.Corpus.Cves.id = case_study_id)
    (things_runs runs)

let tab3 ppf (_ctx : Context.t) runs =
  Format.fprintf ppf
    "Table III: dynamic feature profiling of %s candidates (Android Things)@."
    case_study_id;
  match find_case_study runs with
  | None -> Format.fprintf ppf "  (case study CVE missing from grid)@.@."
  | Some run -> (
    match run.Grid.vuln_report.Patchecko.Pipeline.dynamic with
    | None -> Format.fprintf ppf "  (no candidates reached the dynamic stage)@.@."
    | Some dyn ->
      Format.fprintf ppf "%-16s" "Candidate";
      for i = 1 to Vm.Dynfeat.count do
        Format.fprintf ppf "%6s" (Printf.sprintf "F%d" i)
      done;
      Format.fprintf ppf "@.";
      let print_vec name feats =
        Format.fprintf ppf "%-16s" name;
        Array.iter (fun x -> Format.fprintf ppf "%6.0f" x) feats;
        Format.fprintf ppf "@."
      in
      List.iter
        (fun (fidx, profiles) ->
          match profiles with
          | first_env :: _ ->
            print_vec (Printf.sprintf "candidate_%d" fidx) first_env
          | [] -> ())
        dyn.Patchecko.Dynamic_stage.profiles;
      (match dyn.Patchecko.Dynamic_stage.reference_profile with
      | first_env :: _ -> print_vec "Vulnerable fn" first_env
      | [] -> ());
      Format.fprintf ppf "@.")

let print_ranking ppf (ctx : Context.t) run (report : Patchecko.Pipeline.report)
    label =
  Format.fprintf ppf "%s@." label;
  match report.Patchecko.Pipeline.dynamic with
  | None -> Format.fprintf ppf "  (no dynamic stage)@.@."
  | Some dyn ->
    let dev =
      match Context.device_by_name ctx run.Grid.device_name with
      | Some d -> d
      | None -> invalid_arg "render: unknown device"
    in
    Format.fprintf ppf "%-16s %10s  %s@." "Candidate" "Sim" "Ground truth";
    List.iter
      (fun (e : int Similarity.Rank.entry) ->
        Format.fprintf ppf "candidate_%-6d %10.1f  %s@." e.candidate e.distance
          (Context.function_name dev
             ~image:run.Grid.truth.Corpus.Devices.image_name e.candidate))
      (Similarity.Rank.top 10 dyn.Patchecko.Dynamic_stage.ranking);
    Format.fprintf ppf "@."

let tab45 ppf ctx runs =
  match find_case_study runs with
  | None -> Format.fprintf ppf "Tables IV/V: case study CVE missing@.@."
  | Some run ->
    print_ranking ppf ctx run run.Grid.vuln_report
      (Printf.sprintf
         "Table IV: function similarity for %s (vulnerable-based), top 10"
         case_study_id);
    print_ranking ppf ctx run run.Grid.patched_report
      (Printf.sprintf
         "Table V: function similarity for %s (patched-based), top 10"
         case_study_id)

let accuracy_table ppf runs ~title ~select =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "%-16s %3s %5s %4s %3s %6s %7s %5s %5s %8s %8s@." "CVE"
    "TP" "TN" "FP" "FN" "Total" "FP(%)" "Exec" "Rank" "DP(s)" "DA(s)";
  let fp_sum = ref 0.0 and dp_sum = ref 0.0 and da_sum = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun (r : Grid.run) ->
      let report : Patchecko.Pipeline.report = select r in
      match report.Patchecko.Pipeline.classification with
      | None -> ()
      | Some c ->
        let exec, rank, da =
          match report.Patchecko.Pipeline.dynamic with
          | Some d ->
            ( List.length d.Patchecko.Dynamic_stage.validated,
              (match report.Patchecko.Pipeline.true_rank with
              | Some k -> string_of_int k
              | None -> "N/A"),
              d.Patchecko.Dynamic_stage.seconds )
          | None -> (0, "N/A", 0.0)
        in
        incr n;
        fp_sum := !fp_sum +. c.Patchecko.Pipeline.fp_rate;
        dp_sum := !dp_sum +. report.Patchecko.Pipeline.static.Patchecko.Static_stage.seconds;
        da_sum := !da_sum +. da;
        Format.fprintf ppf "%-16s %3d %5d %4d %3d %6d %6.2f%% %5d %5s %8.3f %8.3f@."
          r.Grid.truth.Corpus.Devices.cve.Corpus.Cves.id
          c.Patchecko.Pipeline.tp c.Patchecko.Pipeline.tn
          c.Patchecko.Pipeline.fp c.Patchecko.Pipeline.fn
          c.Patchecko.Pipeline.total
          (100.0 *. c.Patchecko.Pipeline.fp_rate)
          exec rank
          report.Patchecko.Pipeline.static.Patchecko.Static_stage.seconds da)
    runs;
  if !n > 0 then
    Format.fprintf ppf "%-16s %36s %6.2f%% %11s %8.3f %8.3f@." "Average" ""
      (100.0 *. !fp_sum /. float_of_int !n)
      ""
      (!dp_sum /. float_of_int !n)
      (!da_sum /. float_of_int !n);
  Format.fprintf ppf "@."

let tab6 ppf runs =
  accuracy_table ppf (things_runs runs)
    ~title:
      "Table VI: deep learning + dynamic execution accuracy (Android Things, vulnerable-based)"
    ~select:(fun r -> r.Grid.vuln_report)

let tab7 ppf runs =
  accuracy_table ppf (things_runs runs)
    ~title:
      "Table VII: deep learning + dynamic execution accuracy (Android Things, patched-based)"
    ~select:(fun r -> r.Grid.patched_report)

let tab8 ppf runs =
  Format.fprintf ppf "Table VIII: final patch detection results (Android Things)@.";
  Format.fprintf ppf "%-16s %20s %22s@." "CVE" "PATCHECKO patched?"
    "Ground truth patched?";
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun (r : Grid.run) ->
      let mark = function true -> "Y" | false -> "0" in
      let predicted =
        match Grid.final_verdict r with
        | Some Patchecko.Differential.Patched -> Some true
        | Some Patchecko.Differential.Vulnerable -> Some false
        | None -> None
      in
      let truth = r.Grid.truth.Corpus.Devices.patched in
      incr total;
      (match predicted with
      | Some p when p = truth -> incr correct
      | Some _ | None -> ());
      Format.fprintf ppf "%-16s %20s %22s@."
        r.Grid.truth.Corpus.Devices.cve.Corpus.Cves.id
        (match predicted with Some p -> mark p | None -> "?")
        (mark truth))
    (things_runs runs);
  if !total > 0 then
    Format.fprintf ppf "accuracy: %d/%d (%.0f%%)@.@." !correct !total
      (100.0 *. float_of_int !correct /. float_of_int !total)

let speed ppf runs =
  Format.fprintf ppf "Processing time (section V-E; wall-clock seconds)@.";
  let stats select =
    let times =
      List.filter_map
        (fun (r : Grid.run) -> select r)
        runs
    in
    let arr = Array.of_list times in
    Util.Stats.min_max_avg_std arr
  in
  let smin, smax, savg, _ =
    stats (fun r ->
        Some r.Grid.vuln_report.Patchecko.Pipeline.static.Patchecko.Static_stage.seconds)
  in
  let dmin, dmax, davg, _ =
    stats (fun r ->
        Option.map
          (fun (d : Patchecko.Dynamic_stage.result) ->
            d.Patchecko.Dynamic_stage.seconds)
          r.Grid.vuln_report.Patchecko.Pipeline.dynamic)
  in
  Format.fprintf ppf "static stage  (s): min %.4f  max %.4f  avg %.4f@." smin
    smax savg;
  Format.fprintf ppf "dynamic stage (s): min %.4f  max %.4f  avg %.4f@.@." dmin
    dmax davg

let simcheck ppf (ctx : Context.t) =
  Format.fprintf ppf
    "Similarity of vulnerable vs patched versions (deep learning model)@.";
  Format.fprintf ppf "%-16s %12s %10s@." "CVE" "similarity" "similar?";
  let below = ref 0 and total = ref 0 in
  List.iter
    (fun (e : Patchecko.Vulndb.entry) ->
      let score =
        Patchecko.Static_stage.pair_score ctx.classifier
          ~reference:e.Patchecko.Vulndb.vuln_static
          ~candidate:e.Patchecko.Vulndb.patched_static
      in
      incr total;
      if score < 0.5 then incr below;
      Format.fprintf ppf "%-16s %12.4f %10s@." e.Patchecko.Vulndb.cve_id score
        (if score >= 0.5 then "yes" else "NO"))
    (Patchecko.Vulndb.entries ctx.db);
  Format.fprintf ppf
    "%d of %d pairs fall below the similarity threshold — searches driven by@."
    !below !total;
  Format.fprintf ppf
    "the wrong version can miss the target, as the paper observes for \
     CVE-2018-9345.@.@."
