let unpatched_things runs =
  List.filter
    (fun (r : Grid.run) ->
      r.Grid.device_name
      = Corpus.Devices.android_things.Corpus.Devices.device_name
      && not r.Grid.truth.Corpus.Devices.patched)
    runs

(* --- Minkowski exponent -------------------------------------------------- *)

let rank_with_p (report : Patchecko.Pipeline.report) ~truth_index p =
  match report.Patchecko.Pipeline.dynamic with
  | None -> None
  | Some dyn ->
    let ranking =
      Similarity.Rank.by_distance ~p
        ~reference:dyn.Patchecko.Dynamic_stage.reference_profile
        dyn.Patchecko.Dynamic_stage.profiles
    in
    Similarity.Rank.rank_of ~equal:Int.equal truth_index ranking

let minkowski_p ppf runs =
  Format.fprintf ppf "Ablation: Minkowski exponent p (rank of true function)@.";
  Format.fprintf ppf "%-16s %8s %8s %8s@." "CVE" "p=1" "p=2" "p=3";
  let totals = Array.make 3 0 in
  let hits = Array.make 3 0 in
  List.iter
    (fun (r : Grid.run) ->
      let truth_index = r.Grid.truth.Corpus.Devices.findex in
      let ranks =
        List.map
          (fun p -> rank_with_p r.Grid.vuln_report ~truth_index p)
          [ 1.0; 2.0; 3.0 ]
      in
      List.iteri
        (fun k rank ->
          match rank with
          | Some rk ->
            totals.(k) <- totals.(k) + rk;
            if rk <= 3 then hits.(k) <- hits.(k) + 1
          | None -> ())
        ranks;
      let show = function Some k -> string_of_int k | None -> "-" in
      match ranks with
      | [ r1; r2; r3 ] ->
        Format.fprintf ppf "%-16s %8s %8s %8s@."
          r.Grid.truth.Corpus.Devices.cve.Corpus.Cves.id (show r1) (show r2)
          (show r3)
      | _ -> ())
    (unpatched_things runs);
  Format.fprintf ppf "top-3 hits:      %8d %8d %8d@.@." hits.(0) hits.(1) hits.(2)

(* --- static-only vs hybrid ----------------------------------------------- *)

let static_rank (report : Patchecko.Pipeline.report) ~truth_index =
  let scores = report.Patchecko.Pipeline.static.Patchecko.Static_stage.scores in
  if truth_index >= Array.length scores then None
  else begin
    let my = scores.(truth_index) in
    let better = ref 0 in
    Array.iteri (fun i s -> if i <> truth_index && s > my then incr better) scores;
    Some (!better + 1)
  end

let static_vs_hybrid ppf runs =
  Format.fprintf ppf
    "Ablation: static-only ranking vs hybrid (static+dynamic) ranking@.";
  Format.fprintf ppf "%-16s %12s %12s@." "CVE" "static-only" "hybrid";
  let s3 = ref 0 and h3 = ref 0 and n = ref 0 in
  List.iter
    (fun (r : Grid.run) ->
      let truth_index = r.Grid.truth.Corpus.Devices.findex in
      let s = static_rank r.Grid.vuln_report ~truth_index in
      let h = r.Grid.vuln_report.Patchecko.Pipeline.true_rank in
      incr n;
      (match s with Some k when k <= 3 -> incr s3 | Some _ | None -> ());
      (match h with Some k when k <= 3 -> incr h3 | Some _ | None -> ());
      let show = function Some k -> string_of_int k | None -> "-" in
      Format.fprintf ppf "%-16s %12s %12s@."
        r.Grid.truth.Corpus.Devices.cve.Corpus.Cves.id (show s) (show h))
    (unpatched_things runs);
  if !n > 0 then
    Format.fprintf ppf "top-3 rate:      %11d%% %11d%%@.@." (100 * !s3 / !n)
      (100 * !h3 / !n)

(* --- environment count ---------------------------------------------------- *)

let env_count ppf (ctx : Context.t) ~ks ~cve_ids =
  Format.fprintf ppf "Ablation: number of execution environments K@.";
  Format.fprintf ppf "%-16s %6s %8s %12s %10s@." "CVE" "K" "rank" "executions"
    "DA(s)";
  let dev =
    match
      Context.device_by_name ctx
        Corpus.Devices.android_things.Corpus.Devices.device_name
    with
    | Some d -> d
    | None -> invalid_arg "ablation: missing device"
  in
  List.iter
    (fun cve_id ->
      match
        List.find_opt
          (fun (t : Corpus.Devices.truth) -> t.cve.Corpus.Cves.id = cve_id)
          dev.Context.truths
      with
      | None -> ()
      | Some truth ->
        List.iter
          (fun k ->
            let dyn_config =
              { ctx.Context.dyn_config with Patchecko.Dynamic_stage.k_envs = k }
            in
            let entry = Context.db_entry ctx cve_id in
            let target =
              match
                Loader.Firmware.find_image dev.Context.firmware
                  truth.Corpus.Devices.image_name
              with
              | Some img -> img
              | None -> invalid_arg "ablation: missing image"
            in
            let report =
              Patchecko.Pipeline.analyze ~dyn_config
                ~ground_truth:truth.Corpus.Devices.findex
                ~classifier:ctx.Context.classifier ~db_entry:entry
                ~reference_patched:false ~target ()
            in
            let rank =
              match report.Patchecko.Pipeline.true_rank with
              | Some r -> string_of_int r
              | None -> "-"
            in
            let execs, secs =
              match report.Patchecko.Pipeline.dynamic with
              | Some d ->
                ( d.Patchecko.Dynamic_stage.executions,
                  d.Patchecko.Dynamic_stage.seconds )
              | None -> (0, 0.0)
            in
            Format.fprintf ppf "%-16s %6d %8s %12d %10.3f@." cve_id k rank
              execs secs)
          ks)
    cve_ids;
  Format.fprintf ppf "@."

(* --- feature groups -------------------------------------------------------- *)

let feature_group_names =
  [
    ("scalars", [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]);
    ("block-shape", [ 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19 ]);
    ("block-classes", [ 20; 21; 22; 23; 24; 25; 26; 27 ]);
    ("instruction-mix", [ 28; 29; 30; 31; 32; 33; 34; 35; 36; 37; 38; 39; 40; 41; 42 ]);
    ("centrality", [ 43; 44; 45; 46; 47 ]);
  ]

let mask_pairs (data : Nn.Data.t) indices =
  let nfeat = Staticfeat.Names.count in
  let features =
    Array.map
      (fun v ->
        let v = Array.copy v in
        List.iter
          (fun j ->
            v.(j) <- 0.0;
            v.(j + nfeat) <- 0.0)
          indices;
        v)
      data.Nn.Data.features
  in
  { data with Nn.Data.features }

let feature_groups ppf ?dataset ?(epochs = 8) () =
  let dataset_config =
    match dataset with Some c -> c | None -> Corpus.Dataset.default_config
  in
  Format.fprintf ppf
    "Ablation: static feature groups (test accuracy with group removed)@.";
  let pairs = Corpus.Dataset.build_pairs dataset_config in
  let evaluate masked_indices =
    let pairs =
      match masked_indices with
      | [] -> pairs
      | indices -> mask_pairs pairs indices
    in
    let train, validation, test = Nn.Data.split3 pairs ~train:0.6 ~validation:0.2 in
    let normalizer = Nn.Data.fit_normalizer train in
    let train_n = Nn.Data.normalize normalizer train in
    let val_n = Nn.Data.normalize normalizer validation in
    let test_n = Nn.Data.normalize normalizer test in
    let rng = Util.Prng.create 0xBEEFL in
    let model =
      Nn.Model.create rng ~input:(2 * Staticfeat.Names.count)
        ~layers:(Nn.Model.paper_architecture ~input:(2 * Staticfeat.Names.count))
    in
    let config = { Nn.Train.default_config with epochs } in
    let model, _ = Nn.Train.fit ~config model ~train:train_n ~validation:val_n in
    let predictions =
      Nn.Model.predict model (Nn.Matrix.of_rows test_n.Nn.Data.features)
    in
    Nn.Metrics.accuracy ~predictions ~labels:test_n.Nn.Data.labels ()
  in
  let baseline = evaluate [] in
  Format.fprintf ppf "%-18s %12s %10s@." "group removed" "test acc" "delta";
  Format.fprintf ppf "%-18s %12.4f %10s@." "(none)" baseline "";
  List.iter
    (fun (name, indices) ->
      let acc = evaluate indices in
      Format.fprintf ppf "%-18s %12.4f %+10.4f@." name acc (acc -. baseline))
    feature_group_names;
  Format.fprintf ppf "@."

(* --- database build configuration ----------------------------------------- *)

let db_build ppf (ctx : Context.t) ~opts ~cve_ids =
  Format.fprintf ppf
    "Ablation: vulnerability-database build level (static hit / dynamic rank)@.";
  Format.fprintf ppf "%-16s" "CVE";
  List.iter
    (fun opt -> Format.fprintf ppf " %12s" (Minic.Optlevel.to_string opt))
    opts;
  Format.fprintf ppf "@.";
  let dev =
    match
      Context.device_by_name ctx
        Corpus.Devices.android_things.Corpus.Devices.device_name
    with
    | Some d -> d
    | None -> invalid_arg "ablation: missing device"
  in
  List.iter
    (fun cve_id ->
      match
        ( Corpus.Cves.find cve_id,
          List.find_opt
            (fun (t : Corpus.Devices.truth) -> t.cve.Corpus.Cves.id = cve_id)
            dev.Context.truths )
      with
      | Some cve, Some truth when not truth.Corpus.Devices.patched ->
        Format.fprintf ppf "%-16s" cve_id;
        List.iter
          (fun opt ->
            let entry =
              Patchecko.Vulndb.make_entry
                ~source:
                  (Corpus.Cves.vulnerable_func cve, Corpus.Cves.patched_func cve)
                ~cve_id ~description:"" ~shape:cve.shape
                ~vuln:(Corpus.Dataset.compile_cve ~opt cve ~patched:false, 0)
                ~patched:(Corpus.Dataset.compile_cve ~opt cve ~patched:true, 0)
                ()
            in
            let target =
              match
                Loader.Firmware.find_image dev.Context.firmware
                  truth.Corpus.Devices.image_name
              with
              | Some img -> img
              | None -> invalid_arg "ablation: missing image"
            in
            let report =
              Patchecko.Pipeline.analyze ~dyn_config:ctx.Context.dyn_config
                ~ground_truth:truth.Corpus.Devices.findex
                ~classifier:ctx.Context.classifier ~db_entry:entry
                ~reference_patched:false ~target ()
            in
            let hit =
              match report.Patchecko.Pipeline.classification with
              | Some c -> c.Patchecko.Pipeline.tp = 1
              | None -> false
            in
            let rank =
              match report.Patchecko.Pipeline.true_rank with
              | Some k -> string_of_int k
              | None -> "-"
            in
            Format.fprintf ppf " %8s/%-3s" (if hit then "hit" else "miss") rank)
          opts;
        Format.fprintf ppf "@."
      | _, _ -> ())
    cve_ids;
  Format.fprintf ppf "@."
