exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

(* Deterministic call-table construction: entries in order of first
   appearance across functions in program order. *)
let build_call_table (prog : Ast.program) (fundefs : Ir.fundef list) =
  let fun_index = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ast.func) -> Hashtbl.replace fun_index f.fname i)
    prog.Ast.funcs;
  let entries = ref [] in
  let index_of = Hashtbl.create 16 in
  let intern (callee : Ir.callee) =
    let key =
      match callee with
      | Ir.Cinternal n -> "i:" ^ n
      | Ir.Cimport n -> "e:" ^ n
    in
    if not (Hashtbl.mem index_of key) then begin
      let target =
        match callee with
        | Ir.Cinternal n -> (
          match Hashtbl.find_opt fun_index n with
          | Some i -> Loader.Image.Internal i
          | None -> fail "undefined internal function %s" n)
        | Ir.Cimport n -> Loader.Image.Import n
      in
      Hashtbl.replace index_of key (List.length !entries);
      entries := target :: !entries
    end
  in
  List.iter
    (fun (f : Ir.fundef) ->
      Array.iter
        (fun (blk : Ir.block) ->
          List.iter
            (fun (ins : Ir.ins) ->
              match ins with
              | Icall (_, callee, _) -> intern callee
              | Imov _ | Ibin _ | Ifbin _ | Ineg _ | Inot _ | Ii2f _ | If2i _
              | Iload _ | Istore _ | Ilea_slot _ | Ilea_data _ | Isyscall _ ->
                ())
            blk.body)
        f.blocks)
    fundefs;
  let calls = Array.of_list (List.rev !entries) in
  let call_index (callee : Ir.callee) =
    let key =
      match callee with
      | Ir.Cinternal n -> "i:" ^ n
      | Ir.Cimport n -> "e:" ^ n
    in
    Hashtbl.find index_of key
  in
  (calls, call_index)

let compile ~arch ~opt (prog : Ast.program) =
  (try Typecheck.check_program prog
   with Typecheck.Type_error msg -> fail "type error: %s" msg);
  let opts = Optlevel.of_level opt in
  let layout = Layout.create prog in
  let fundefs =
    try List.map (Lower.lower_function prog layout opts) prog.Ast.funcs
    with Lower.Unsupported msg -> fail "lowering: %s" msg
  in
  List.iter (Opt.run_check "lower") fundefs;
  let by_name = Hashtbl.create 16 in
  List.iter (fun (f : Ir.fundef) -> Hashtbl.replace by_name f.name f) fundefs;
  let resolve name = Hashtbl.find_opt by_name name in
  List.iter (Opt.run opts ~resolve) fundefs;
  let calls, call_index = build_call_table prog fundefs in
  let params = Isa.Encoding.params_of_arch arch in
  let functions =
    List.map
      (fun (f : Ir.fundef) ->
        let assignment = Regalloc.allocate ~spill_all:opts.spill_all f in
        let items =
          try Codegen.generate ~call_index assignment f
          with Codegen.Codegen_error msg -> fail "%s: %s" f.name msg
        in
        let items = if opts.peephole then Peephole.run items else items in
        try Isa.Asm.assemble params items with
        | Isa.Asm.Undefined_label l -> fail "%s: undefined label %s" f.name l
        | Isa.Asm.Duplicate_label l -> fail "%s: duplicate label %s" f.name l)
      fundefs
  in
  let data, strings, global_syms = Layout.finish layout in
  let symtab =
    {
      Loader.Symtab.functions =
        Array.of_list (List.map (fun (f : Ast.func) -> f.fname) prog.Ast.funcs);
      globals = global_syms;
    }
  in
  {
    Loader.Image.name = prog.Ast.pname;
    arch;
    functions = Array.of_list functions;
    calls;
    data;
    data_base = Loader.Image.data_base_default;
    strings;
    symtab = Some symtab;
  }

let compile_source ~arch ~opt src =
  let prog =
    try Parser.parse src with
    | Parser.Parse_error (line, msg) -> fail "parse error at line %d: %s" line msg
    | Lexer.Lex_error (line, msg) -> fail "lex error at line %d: %s" line msg
  in
  compile ~arch ~opt prog

let compile_matrix ~archs ~opts prog =
  List.concat_map
    (fun arch ->
      List.map (fun opt -> ((arch, opt), compile ~arch ~opt prog)) opts)
    archs
