(** IR optimisation passes.  All passes mutate the fundef in place.

    [run] applies the passes selected by the options in a fixed order:
    inlining (callee lookup via [resolve]), then two rounds of constant
    folding / copy propagation, CSE, strength reduction, dead-code
    elimination and CFG simplification. *)

val eval_binop : Isa.Instr.binop -> int64 -> int64 -> int64 option
(** Compile-time semantics of the integer binops ([None] for a trapping
    division/remainder by zero); shared with the constant-propagation
    domain of [Analysis] so both layers fold identically. *)

val eval_fbinop : Isa.Instr.fbinop -> int64 -> int64 -> int64
(** Float binop over IEEE-754 bit patterns. *)

val check_hook : (stage:string -> Ir.fundef -> unit) ref
(** Invoked after lowering and after every optimisation pass with the
    pass name; a no-op until [Analysis.Sanitize.install] replaces it
    (the IR sanitizer cannot live in this library — it is built on the
    [Analysis] dataflow engine, which depends on this IR). *)

val run_check : string -> Ir.fundef -> unit
(** Apply the installed {!check_hook}. *)

val fold_constants : Ir.fundef -> unit
val strength_reduce : Ir.fundef -> unit
val cse : Ir.fundef -> unit
val dce : Ir.fundef -> unit
val simplify_cfg : Ir.fundef -> unit
val inline_calls : limit:int -> resolve:(string -> Ir.fundef option) -> Ir.fundef -> unit
val licm : Ir.fundef -> unit
(** Loop-invariant code motion: hoists pure, non-trapping, single-definition
    computations whose operands are loop-invariant into a fresh preheader. *)

val run :
  Optlevel.options -> resolve:(string -> Ir.fundef option) -> Ir.fundef -> unit
