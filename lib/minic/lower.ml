exception Unsupported of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type binding =
  | Bvreg of Ir.vreg * Ast.ty
  | Bslot of int * Ast.ty  (* scalar local kept in a stack slot (O0) *)
  | Barray of int * Ast.elem  (* stack array; value is the slot address *)

(* Growable basic-block builder over Ir.block. *)
type bblock = { mutable body_rev : Ir.ins list; mutable term : Ir.terminator option }

type ctx = {
  prog : Ast.program;
  layout : Layout.t;
  opts : Optlevel.options;
  fname : string;
  mutable nvregs : int;
  mutable blocks : bblock array;
  mutable slot_sizes : int list;  (* reversed *)
  mutable nslots : int;
  mutable cur : int;
  mutable env : (string * binding) list;
  mutable loop_stack : (int * int) list;  (* (break target, continue target) *)
}

let fresh ctx =
  let v = ctx.nvregs in
  ctx.nvregs <- v + 1;
  v

let new_block ctx =
  let id = Array.length ctx.blocks in
  ctx.blocks <-
    Array.append ctx.blocks [| { body_rev = []; term = None } |];
  id

let new_slot ctx size =
  let id = ctx.nslots in
  ctx.nslots <- id + 1;
  ctx.slot_sizes <- size :: ctx.slot_sizes;
  id

let emit ctx ins =
  let b = ctx.blocks.(ctx.cur) in
  match b.term with
  | None -> b.body_rev <- ins :: b.body_rev
  | Some _ -> ()  (* unreachable code after return/break: drop *)

let set_term ctx term =
  let b = ctx.blocks.(ctx.cur) in
  match b.term with None -> b.term <- Some term | Some _ -> ()

let terminated ctx = ctx.blocks.(ctx.cur).term <> None

let switch_to ctx id = ctx.cur <- id

let mov_const ctx v =
  let d = fresh ctx in
  emit ctx (Ir.Imov (d, Ir.Oimm v));
  d

(* --- name resolution ------------------------------------------------- *)

let find_global ctx name =
  List.find_opt (fun (g : Ast.global) -> g.gname = name) ctx.prog.Ast.globals

let global_binding ctx (g : Ast.global) =
  let addr = Layout.global_addr ctx.layout g.gname in
  match g.gini with
  | Ast.Gint _ -> `Scalar (addr, Ast.Tint)
  | Ast.Gfloat _ -> `Scalar (addr, Ast.Tfloat)
  | Ast.Gbytes _ -> `Array (addr, Ast.Byte)
  | Ast.Gwords _ -> `Array (addr, Ast.Word)

(* --- operator mapping ------------------------------------------------- *)

let int_binop : Ast.binop -> Isa.Instr.binop option = function
  | Badd -> Some Add
  | Bsub -> Some Sub
  | Bmul -> Some Mul
  | Bdiv -> Some Div
  | Brem -> Some Rem
  | Bandb -> Some And
  | Borb -> Some Or
  | Bxor -> Some Xor
  | Bshl -> Some Shl
  | Bshr -> Some Shr
  | Beq | Bne | Blt | Ble | Bgt | Bge | Bland | Blor -> None

let float_binop : Ast.binop -> Isa.Instr.fbinop option = function
  | Badd -> Some Fadd
  | Bsub -> Some Fsub
  | Bmul -> Some Fmul
  | Bdiv -> Some Fdiv
  | Brem | Bandb | Borb | Bxor | Bshl | Bshr | Beq | Bne | Blt | Ble | Bgt
  | Bge | Bland | Blor ->
    None

let cmp_cond : Ast.binop -> Isa.Cond.t option = function
  | Beq -> Some Eq
  | Bne -> Some Ne
  | Blt -> Some Lt
  | Ble -> Some Le
  | Bgt -> Some Gt
  | Bge -> Some Ge
  | Badd | Bsub | Bmul | Bdiv | Brem | Bandb | Borb | Bxor | Bshl | Bshr
  | Bland | Blor ->
    None

(* --- expressions ------------------------------------------------------ *)

let rec lower_expr ctx (e : Ast.expr) : Ir.vreg * Ast.ty =
  match e with
  | Eint v -> (mov_const ctx v, Tint)
  | Efloat f -> (mov_const ctx (Int64.bits_of_float f), Tfloat)
  | Estr s ->
    let addr = Layout.intern_string ctx.layout s in
    let d = fresh ctx in
    emit ctx (Ir.Ilea_data (d, addr));
    (d, Tptr Byte)
  | Evar name -> lower_var ctx name
  | Eindex (base, idx) ->
    let addr, off, width, _elem = lower_address ctx base idx in
    let d = fresh ctx in
    emit ctx (Ir.Iload (width, d, addr, off));
    (d, Tint)
  | Eaddr (base, idx) ->
    let addr, off, _width, elem = lower_address ctx base idx in
    if off = 0 then (addr, Tptr elem)
    else begin
      let d = fresh ctx in
      emit ctx (Ir.Ibin (Add, d, addr, Ir.Oimm (Int64.of_int off)));
      (d, Tptr elem)
    end
  | Eunop (Uneg, e) ->
    let v, _ = lower_expr ctx e in
    let d = fresh ctx in
    emit ctx (Ir.Ineg (d, v));
    (d, Tint)
  | Eunop (Ubnot, e) ->
    let v, _ = lower_expr ctx e in
    let d = fresh ctx in
    emit ctx (Ir.Inot (d, v));
    (d, Tint)
  | Ebinop ((Bland | Blor), _, _) | Ebinop ((Beq | Bne | Blt | Ble | Bgt | Bge), _, _)
    ->
    lower_bool_value ctx e
  | Ebinop (op, a, b) -> begin
    let va, ta = lower_expr ctx a in
    match ta with
    | Tfloat -> begin
      match float_binop op with
      | Some fop -> begin
        (* Ofast: division by a non-zero constant becomes multiplication
           by its reciprocal. *)
        match (fop, b, ctx.opts.fast_float) with
        | Isa.Instr.Fdiv, Ast.Efloat c, true when c <> 0.0 ->
          let vb = mov_const ctx (Int64.bits_of_float (1.0 /. c)) in
          let d = fresh ctx in
          emit ctx (Ir.Ifbin (Fmul, d, va, vb));
          (d, Tfloat)
        | _, _, _ ->
          let vb, _ = lower_expr ctx b in
          let d = fresh ctx in
          emit ctx (Ir.Ifbin (fop, d, va, vb));
          (d, Tfloat)
      end
      | None -> fail "%s: bad float operator" ctx.fname
    end
    | Tint | Tptr _ | Tvoid -> begin
      match int_binop op with
      | Some iop -> begin
        let d = fresh ctx in
        match b with
        | Ast.Eint c ->
          emit ctx (Ir.Ibin (iop, d, va, Ir.Oimm c));
          (d, ta)
        | Ast.Efloat _ | Ast.Estr _ | Ast.Evar _ | Ast.Eindex _ | Ast.Eaddr _
        | Ast.Eunop _ | Ast.Ebinop _ | Ast.Ecall _ ->
          let vb, _ = lower_expr ctx b in
          emit ctx (Ir.Ibin (iop, d, va, Ir.Ovreg vb));
          (d, ta)
      end
      | None -> fail "%s: bad int operator" ctx.fname
    end
  end
  | Ecall (name, args) -> lower_call ctx name args ~need_result:true

and lower_var ctx name =
  match List.assoc_opt name ctx.env with
  | Some (Bvreg (v, ty)) -> (v, ty)
  | Some (Bslot (slot, ty)) ->
    let addr = fresh ctx in
    emit ctx (Ir.Ilea_slot (addr, slot));
    let d = fresh ctx in
    emit ctx (Ir.Iload (W8, d, addr, 0));
    (d, ty)
  | Some (Barray (slot, elem)) ->
    let d = fresh ctx in
    emit ctx (Ir.Ilea_slot (d, slot));
    (d, Tptr elem)
  | None -> (
    match find_global ctx name with
    | None -> fail "%s: unknown variable %s" ctx.fname name
    | Some g -> (
      match global_binding ctx g with
      | `Scalar (addr, ty) ->
        let a = fresh ctx in
        emit ctx (Ir.Ilea_data (a, addr));
        let d = fresh ctx in
        emit ctx (Ir.Iload (W8, d, a, 0));
        (d, ty)
      | `Array (addr, elem) ->
        let d = fresh ctx in
        emit ctx (Ir.Ilea_data (d, addr));
        (d, Tptr elem)))

(* Address of base[idx]: returns (address vreg, static byte offset, width,
   element kind).  Constant indices fold into the static offset. *)
and lower_address ctx base idx =
  let vbase, tbase = lower_expr ctx base in
  let elem =
    match tbase with
    | Tptr e -> e
    | Tint | Tfloat | Tvoid -> fail "%s: indexing a non-pointer" ctx.fname
  in
  let width : Isa.Instr.width = match elem with Ast.Byte -> W1 | Ast.Word -> W8 in
  let scale = match elem with Ast.Byte -> 1 | Ast.Word -> 8 in
  match idx with
  | Ast.Eint c -> (vbase, Int64.to_int c * scale, width, elem)
  | Ast.Efloat _ | Ast.Estr _ | Ast.Evar _ | Ast.Eindex _ | Ast.Eaddr _
  | Ast.Eunop _ | Ast.Ebinop _ | Ast.Ecall _ ->
    let vidx, _ = lower_expr ctx idx in
    let scaled =
      if scale = 1 then vidx
      else begin
        let s = fresh ctx in
        emit ctx (Ir.Ibin (Shl, s, vidx, Ir.Oimm 3L));
        s
      end
    in
    let addr = fresh ctx in
    emit ctx (Ir.Ibin (Add, addr, vbase, Ir.Ovreg scaled));
    (addr, 0, width, elem)

(* Comparison / logical expression used as a value: materialise 0/1. *)
and lower_bool_value ctx e =
  let d = fresh ctx in
  let btrue = new_block ctx in
  let bfalse = new_block ctx in
  let join = new_block ctx in
  lower_cond ctx e ~ktrue:btrue ~kfalse:bfalse;
  switch_to ctx btrue;
  emit ctx (Ir.Imov (d, Ir.Oimm 1L));
  set_term ctx (Ir.Tjmp join);
  switch_to ctx bfalse;
  emit ctx (Ir.Imov (d, Ir.Oimm 0L));
  set_term ctx (Ir.Tjmp join);
  switch_to ctx join;
  (d, Ast.Tint)

(* Lower a condition directly to branches. *)
and lower_cond ctx (e : Ast.expr) ~ktrue ~kfalse =
  match e with
  | Ebinop (Bland, a, b) ->
    let mid = new_block ctx in
    lower_cond ctx a ~ktrue:mid ~kfalse;
    switch_to ctx mid;
    lower_cond ctx b ~ktrue ~kfalse
  | Ebinop (Blor, a, b) ->
    let mid = new_block ctx in
    lower_cond ctx a ~ktrue ~kfalse:mid;
    switch_to ctx mid;
    lower_cond ctx b ~ktrue ~kfalse
  | Ebinop (op, a, b) when cmp_cond op <> None -> begin
    let cond =
      match cmp_cond op with
      | Some c -> c
      | None ->
        fail "lower_cond: operator %s is not a comparison"
          (Ast.binop_to_string op)
    in
    let va, ta = lower_expr ctx a in
    match ta with
    | Tfloat ->
      let vb, _ = lower_expr ctx b in
      set_term ctx (Ir.Tfbr (cond, va, vb, ktrue, kfalse))
    | Tint | Tptr _ | Tvoid -> begin
      match b with
      | Ast.Eint c -> set_term ctx (Ir.Tbr (cond, va, Ir.Oimm c, ktrue, kfalse))
      | Ast.Efloat _ | Ast.Estr _ | Ast.Evar _ | Ast.Eindex _ | Ast.Eaddr _
      | Ast.Eunop _ | Ast.Ebinop _ | Ast.Ecall _ ->
        let vb, _ = lower_expr ctx b in
        set_term ctx (Ir.Tbr (cond, va, Ir.Ovreg vb, ktrue, kfalse))
    end
  end
  | Eint v ->
    (* constant condition folds to an unconditional jump *)
    set_term ctx (Ir.Tjmp (if v <> 0L then ktrue else kfalse))
  | Efloat _ | Estr _ | Evar _ | Eindex _ | Eaddr _ | Eunop _ | Ebinop _
  | Ecall _ ->
    let v, _ = lower_expr ctx e in
    set_term ctx (Ir.Tbr (Ne, v, Ir.Oimm 0L, ktrue, kfalse))

and lower_call ctx name args ~need_result =
  (* compiler intrinsics *)
  match (name, args) with
  | "int_to_float", [ a ] ->
    let v, _ = lower_expr ctx a in
    let d = fresh ctx in
    emit ctx (Ir.Ii2f (d, v));
    (d, Tfloat)
  | "float_to_int", [ a ] ->
    let v, _ = lower_expr ctx a in
    let d = fresh ctx in
    emit ctx (Ir.If2i (d, v));
    (d, Tint)
  | "as_ptr", [ a ] ->
    let v, _ = lower_expr ctx a in
    (v, Tptr Byte)
  | "as_wptr", [ a ] ->
    let v, _ = lower_expr ctx a in
    (v, Tptr Word)
  | "alloc_words", [ n ] ->
    let vn, _ = lower_expr ctx n in
    let bytes = fresh ctx in
    emit ctx (Ir.Ibin (Shl, bytes, vn, Ir.Oimm 3L));
    let d = fresh ctx in
    emit ctx (Ir.Icall (Some d, Ir.Cimport "malloc", [ bytes ]));
    (d, Tptr Word)
  | "alloc_bytes", [ n ] ->
    let vn, _ = lower_expr ctx n in
    let d = fresh ctx in
    emit ctx (Ir.Icall (Some d, Ir.Cimport "malloc", [ vn ]));
    (d, Tptr Byte)
  | _, _ -> (
    match Builtins.syscall_signature name with
    | Some (num, sg) ->
      let vargs = List.map (fun a -> fst (lower_expr ctx a)) args in
      let dst = if sg.Builtins.ret = Ast.Tvoid then None else Some (fresh ctx) in
      emit ctx (Ir.Isyscall (dst, num, vargs));
      let d = match dst with Some d -> d | None -> mov_const ctx 0L in
      (d, sg.Builtins.ret)
    | None -> (
      let vargs = List.map (fun a -> fst (lower_expr ctx a)) args in
      match Builtins.import_signature name with
      | Some sg ->
        let dst =
          if sg.Builtins.ret = Ast.Tvoid then None else Some (fresh ctx)
        in
        emit ctx (Ir.Icall (dst, Ir.Cimport name, vargs));
        if List.mem name Builtins.noret then set_term ctx Ir.Tunreachable;
        let d = match dst with Some d -> d | None -> mov_const ctx 0L in
        (d, sg.Builtins.ret)
      | None -> (
        match
          List.find_opt (fun (f : Ast.func) -> f.fname = name) ctx.prog.Ast.funcs
        with
        | Some f ->
          ignore need_result;
          let dst = if f.ret = Ast.Tvoid then None else Some (fresh ctx) in
          emit ctx (Ir.Icall (dst, Ir.Cinternal name, vargs));
          let d = match dst with Some d -> d | None -> mov_const ctx 0L in
          (d, f.ret)
        | None -> fail "%s: call to unknown function %s" ctx.fname name)))

(* --- statements ------------------------------------------------------- *)

let assign_binding ctx name value =
  match List.assoc_opt name ctx.env with
  | Some (Bvreg (v, _)) -> emit ctx (Ir.Imov (v, Ir.Ovreg value))
  | Some (Bslot (slot, _)) ->
    let addr = fresh ctx in
    emit ctx (Ir.Ilea_slot (addr, slot));
    emit ctx (Ir.Istore (W8, value, addr, 0))
  | Some (Barray _) -> fail "%s: cannot assign to array %s" ctx.fname name
  | None -> (
    match find_global ctx name with
    | None -> fail "%s: unknown variable %s" ctx.fname name
    | Some g -> (
      match global_binding ctx g with
      | `Scalar (gaddr, _) ->
        let addr = fresh ctx in
        emit ctx (Ir.Ilea_data (addr, gaddr));
        emit ctx (Ir.Istore (W8, value, addr, 0))
      | `Array _ -> fail "%s: cannot assign to array %s" ctx.fname name))

let declare_scalar ctx name ty init_vreg =
  if ctx.opts.locals_in_slots then begin
    let slot = new_slot ctx 8 in
    ctx.env <- (name, Bslot (slot, ty)) :: ctx.env;
    match init_vreg with
    | None -> ()
    | Some v ->
      let addr = fresh ctx in
      emit ctx (Ir.Ilea_slot (addr, slot));
      emit ctx (Ir.Istore (W8, v, addr, 0))
  end
  else begin
    let home = fresh ctx in
    ctx.env <- (name, Bvreg (home, ty)) :: ctx.env;
    match init_vreg with
    | None -> ()
    | Some v -> emit ctx (Ir.Imov (home, Ir.Ovreg v))
  end

let rec stmt_has_jump (s : Ast.stmt) =
  match s with
  | Sbreak | Scontinue | Sreturn _ -> true
  | Sif (_, a, b) -> List.exists stmt_has_jump a || List.exists stmt_has_jump b
  | Sswitch (_, cases, default) ->
    List.exists (fun (_, body) -> List.exists stmt_has_jump body) cases
    || List.exists stmt_has_jump default
  | Sdecl _ | Sarray _ | Sassign _ | Sindexset _ | Sexpr _ -> false
  | Swhile _ | Sfor _ -> false
(* nested loops capture their own break/continue *)

let rec lower_stmt ctx (s : Ast.stmt) =
  if not (terminated ctx) then begin
    match s with
    | Sdecl (name, ty, init) ->
      let init_vreg =
        match init with
        | None -> None
        | Some e -> Some (fst (lower_expr ctx e))
      in
      declare_scalar ctx name ty init_vreg
    | Sarray (name, elem, n) ->
      let size = n * (match elem with Ast.Byte -> 1 | Ast.Word -> 8) in
      let size = (size + 7) / 8 * 8 in
      let slot = new_slot ctx size in
      ctx.env <- (name, Barray (slot, elem)) :: ctx.env
    | Sassign (name, e) ->
      let v, _ = lower_expr ctx e in
      assign_binding ctx name v
    | Sindexset (base, idx, e) ->
      let v, _ = lower_expr ctx e in
      let addr, off, width, _ = lower_address ctx base idx in
      emit ctx (Ir.Istore (width, v, addr, off))
    | Sif (cond, thens, elses) ->
      let bthen = new_block ctx in
      let belse = new_block ctx in
      let join = new_block ctx in
      lower_cond ctx cond ~ktrue:bthen ~kfalse:belse;
      switch_to ctx bthen;
      lower_body ctx thens;
      set_term ctx (Ir.Tjmp join);
      switch_to ctx belse;
      lower_body ctx elses;
      set_term ctx (Ir.Tjmp join);
      switch_to ctx join
    | Swhile (cond, body) ->
      let head = new_block ctx in
      let bbody = new_block ctx in
      let exit = new_block ctx in
      set_term ctx (Ir.Tjmp head);
      switch_to ctx head;
      lower_cond ctx cond ~ktrue:bbody ~kfalse:exit;
      switch_to ctx bbody;
      ctx.loop_stack <- (exit, head) :: ctx.loop_stack;
      lower_body ctx body;
      ctx.loop_stack <- List.tl ctx.loop_stack;
      set_term ctx (Ir.Tjmp head);
      switch_to ctx exit
    | Sfor (v, start, bound, step, body) -> lower_for ctx v start bound step body
    | Sswitch (e, cases, default) -> lower_switch ctx e cases default
    | Sreturn None -> set_term ctx (Ir.Tret None)
    | Sreturn (Some e) ->
      let v, _ = lower_expr ctx e in
      set_term ctx (Ir.Tret (Some v))
    | Sbreak -> begin
      match ctx.loop_stack with
      | (brk, _) :: _ -> set_term ctx (Ir.Tjmp brk)
      | [] -> fail "%s: break outside loop" ctx.fname
    end
    | Scontinue -> begin
      match ctx.loop_stack with
      | (_, cont) :: _ -> set_term ctx (Ir.Tjmp cont)
      | [] -> fail "%s: continue outside loop" ctx.fname
    end
    | Sexpr e -> ignore (lower_expr ctx e)
  end

and lower_body ctx body =
  let saved = ctx.env in
  List.iter (lower_stmt ctx) body;
  ctx.env <- saved

and lower_for ctx v start bound step body =
  (* Full unrolling of small constant-trip-count loops without control
     transfers out of the body (O3/Ofast). *)
  let unrollable =
    match (start, bound, step) with
    | Ast.Eint s, Ast.Eint b, Ast.Eint st
      when ctx.opts.unroll_limit > 0 && st > 0L
           && not (List.exists stmt_has_jump body) ->
      let trip =
        Int64.to_int
          (Int64.div (Int64.add (Int64.sub b s) (Int64.sub st 1L)) st)
      in
      if trip >= 0 && trip <= ctx.opts.unroll_limit then Some (s, st, trip)
      else None
    | _, _, _ -> None
  in
  match unrollable with
  | Some (s, st, trip) ->
    let saved = ctx.env in
    let home = fresh ctx in
    ctx.env <- (v, Bvreg (home, Ast.Tint)) :: ctx.env;
    for k = 0 to trip - 1 do
      let value = Int64.add s (Int64.mul (Int64.of_int k) st) in
      emit ctx (Ir.Imov (home, Ir.Oimm value));
      List.iter (lower_stmt ctx) body
    done;
    ctx.env <- saved
  | None ->
    let saved = ctx.env in
    let vstart, _ = lower_expr ctx start in
    declare_scalar ctx v Ast.Tint (Some vstart);
    let head = new_block ctx in
    let bbody = new_block ctx in
    let bstep = new_block ctx in
    let exit = new_block ctx in
    set_term ctx (Ir.Tjmp head);
    switch_to ctx head;
    lower_cond ctx
      (Ast.Ebinop (Ast.Blt, Ast.Evar v, bound))
      ~ktrue:bbody ~kfalse:exit;
    switch_to ctx bbody;
    ctx.loop_stack <- (exit, bstep) :: ctx.loop_stack;
    lower_body ctx body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    set_term ctx (Ir.Tjmp bstep);
    switch_to ctx bstep;
    let vstep, _ =
      lower_expr ctx (Ast.Ebinop (Ast.Badd, Ast.Evar v, step))
    in
    assign_binding ctx v vstep;
    set_term ctx (Ir.Tjmp head);
    switch_to ctx exit;
    ctx.env <- saved

and lower_switch ctx e cases default =
  let v, _ = lower_expr ctx e in
  let join = new_block ctx in
  let bdefault = new_block ctx in
  let case_blocks = List.map (fun (value, body) -> (value, new_block ctx, body)) cases in
  let ncases = List.length cases in
  let values = List.map (fun (value, _, _) -> value) case_blocks in
  let dense =
    ncases >= 3
    &&
    let lo = List.fold_left min (List.hd values) values in
    let hi = List.fold_left max (List.hd values) values in
    let span = Int64.to_int (Int64.sub hi lo) + 1 in
    span <= (2 * ncases) + 8 && span <= 512
  in
  if ctx.opts.use_jtable && dense then begin
    let lo = List.fold_left min (List.hd values) values in
    let hi = List.fold_left max (List.hd values) values in
    let span = Int64.to_int (Int64.sub hi lo) + 1 in
    let norm = fresh ctx in
    emit ctx (Ir.Ibin (Sub, norm, v, Ir.Oimm lo));
    let bcheck = new_block ctx in
    set_term ctx (Ir.Tbr (Lt, norm, Ir.Oimm 0L, bdefault, bcheck));
    switch_to ctx bcheck;
    let btable = new_block ctx in
    set_term ctx
      (Ir.Tbr (Gt, norm, Ir.Oimm (Int64.of_int (span - 1)), bdefault, btable));
    switch_to ctx btable;
    let table = Array.make span bdefault in
    List.iter
      (fun (value, blk, _) ->
        table.(Int64.to_int (Int64.sub value lo)) <- blk)
      case_blocks;
    set_term ctx (Ir.Tswitch (norm, table, bdefault))
  end
  else begin
    (* compare chain *)
    List.iter
      (fun (value, blk, _) ->
        let next = new_block ctx in
        set_term ctx (Ir.Tbr (Eq, v, Ir.Oimm value, blk, next));
        switch_to ctx next)
      case_blocks;
    set_term ctx (Ir.Tjmp bdefault)
  end;
  List.iter
    (fun (_, blk, body) ->
      switch_to ctx blk;
      lower_body ctx body;
      set_term ctx (Ir.Tjmp join))
    case_blocks;
  switch_to ctx bdefault;
  lower_body ctx default;
  set_term ctx (Ir.Tjmp join);
  switch_to ctx join

(* --- function --------------------------------------------------------- *)

let lower_function prog layout opts (f : Ast.func) =
  let ctx =
    {
      prog;
      layout;
      opts;
      fname = f.fname;
      nvregs = 0;
      blocks = [||];
      slot_sizes = [];
      nslots = 0;
      cur = 0;
      env = [];
      loop_stack = [];
    }
  in
  let entry = new_block ctx in
  switch_to ctx entry;
  (* parameters arrive in the first nparams vregs *)
  let param_vregs =
    List.map (fun (_ : Ast.param) -> fresh ctx) f.params
  in
  List.iter2
    (fun (p : Ast.param) v ->
      if ctx.opts.locals_in_slots then begin
        let slot = new_slot ctx 8 in
        ctx.env <- (p.pname, Bslot (slot, p.pty)) :: ctx.env;
        let addr = fresh ctx in
        emit ctx (Ir.Ilea_slot (addr, slot));
        emit ctx (Ir.Istore (W8, v, addr, 0))
      end
      else ctx.env <- (p.pname, Bvreg (v, p.pty)) :: ctx.env)
    f.params param_vregs;
  List.iter (lower_stmt ctx) f.body;
  (* implicit return *)
  if not (terminated ctx) then begin
    match f.ret with
    | Ast.Tvoid -> set_term ctx (Ir.Tret None)
    | Ast.Tint | Ast.Tfloat | Ast.Tptr _ ->
      let z = mov_const ctx 0L in
      set_term ctx (Ir.Tret (Some z))
  end;
  let blocks =
    Array.map
      (fun b ->
        {
          Ir.body = List.rev b.body_rev;
          term = (match b.term with Some t -> t | None -> Ir.Tret None);
        })
      ctx.blocks
  in
  {
    Ir.name = f.fname;
    nparams = List.length f.params;
    param_vregs;
    nvregs = ctx.nvregs;
    blocks;
    slot_sizes = Array.of_list (List.rev ctx.slot_sizes);
  }
