(** Abstract syntax of MinC, the small procedural language standing in for
    the C/C++ sources of the paper's 100 Android libraries.

    MinC has 64-bit integers, doubles, byte and word arrays (stack, global
    or heap-allocated), the usual control flow including [switch], calls to
    library-internal functions, libc-like imports and raw syscall
    intrinsics.  Programs are compiled by {!Compiler} to SFF images for any
    of the four architectures at six optimisation levels. *)

type elem = Byte | Word

type ty = Tint | Tfloat | Tptr of elem | Tvoid

type unop = Uneg | Ubnot  (** arithmetic negation, bitwise not *)

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Bandb
  | Borb
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Bland  (** short-circuit and *)
  | Blor  (** short-circuit or *)

type expr =
  | Eint of int64
  | Efloat of float
  | Estr of string  (** string literal; value is its data address *)
  | Evar of string  (** local, parameter or global *)
  | Eindex of expr * expr  (** [base\[idx\]]; width from base type *)
  | Eaddr of expr * expr  (** [&base\[idx\]] *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list

type stmt =
  | Sdecl of string * ty * expr option  (** [var x: ty = e;] *)
  | Sarray of string * elem * int  (** [var buf: byte\[64\];] stack array *)
  | Sassign of string * expr
  | Sindexset of expr * expr * expr  (** [base\[idx\] = e;] *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of string * expr * expr * expr * stmt list
      (** [for (i = e0; i < e1; i = i + e2)] — counted loop with
          var, start, bound (exclusive), step; eligible for unrolling *)
  | Sswitch of expr * (int64 * stmt list) list * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sexpr of expr

type param = { pname : string; pty : ty }

type func = {
  fname : string;
  params : param list;
  ret : ty;
  body : stmt list;
}

type ginit =
  | Gint of int64
  | Gfloat of float
  | Gbytes of int * string  (** size; initial prefix bytes *)
  | Gwords of int * int64 list  (** size in words; initial prefix *)

type global = { gname : string; gini : ginit }

type program = { pname : string; globals : global list; funcs : func list }

val ty_to_string : ty -> string
val binop_to_string : binop -> string
val pp_program : Format.formatter -> program -> unit
(** Render back to concrete MinC syntax; [Parser.parse] of the output
    yields an equal AST. *)

val program_to_string : program -> string
