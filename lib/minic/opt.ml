(* --- IR sanitizer hook -------------------------------------------------- *)

(* Replaced by Analysis.Sanitize.install when PATCHECKO_CHECK_IR=1: every
   pass boundary then gets a full well-formedness check. *)
let check_hook : (stage:string -> Ir.fundef -> unit) ref =
  ref (fun ~stage:_ _ -> ())

let run_check stage f = !check_hook ~stage f

(* --- constant folding + copy propagation (block-local) ---------------- *)

type abstract = Const of int64 | Copy of Ir.vreg

let eval_binop (op : Isa.Instr.binop) a b =
  match op with
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Div -> if b = 0L then None else Some (Int64.div a b)
  | Rem -> if b = 0L then None else Some (Int64.rem a b)
  | And -> Some (Int64.logand a b)
  | Or -> Some (Int64.logor a b)
  | Xor -> Some (Int64.logxor a b)
  | Shl ->
    let s = Int64.to_int b land 63 in
    Some (Int64.shift_left a s)
  | Shr ->
    let s = Int64.to_int b land 63 in
    Some (Int64.shift_right_logical a s)

let eval_fbinop (op : Isa.Instr.fbinop) a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  let r =
    match op with
    | Fadd -> fa +. fb
    | Fsub -> fa -. fb
    | Fmul -> fa *. fb
    | Fdiv -> fa /. fb
  in
  Int64.bits_of_float r

let fold_constants (f : Ir.fundef) =
  Array.iter
    (fun (blk : Ir.block) ->
      let env : (Ir.vreg, abstract) Hashtbl.t = Hashtbl.create 16 in
      (* invalidate every fact about [d] and every copy of [d] *)
      let kill d =
        Hashtbl.remove env d;
        let stale =
          Hashtbl.fold
            (fun v a acc ->
              match a with Copy s when s = d -> v :: acc | Copy _ | Const _ -> acc)
            env []
        in
        List.iter (Hashtbl.remove env) stale
      in
      let resolve_vreg v =
        match Hashtbl.find_opt env v with Some (Copy w) -> w | Some (Const _) | None -> v
      in
      let const_of v =
        match Hashtbl.find_opt env v with Some (Const c) -> Some c | Some (Copy _) | None -> None
      in
      let resolve_operand (o : Ir.operand) =
        match o with
        | Ir.Oimm _ -> o
        | Ir.Ovreg v -> (
          match Hashtbl.find_opt env v with
          | Some (Const c) -> Ir.Oimm c
          | Some (Copy w) -> Ir.Ovreg w
          | None -> o)
      in
      let rewrite (ins : Ir.ins) : Ir.ins =
        match ins with
        | Imov (d, o) -> begin
          let o = resolve_operand o in
          kill d;
          (match o with
          | Ir.Oimm c -> Hashtbl.replace env d (Const c)
          | Ir.Ovreg s -> if s <> d then Hashtbl.replace env d (Copy s));
          Imov (d, o)
        end
        | Ibin (op, d, a, o) -> begin
          let a = resolve_vreg a in
          let o = resolve_operand o in
          let folded =
            match (const_of a, o) with
            | Some ca, Ir.Oimm cb -> eval_binop op ca cb
            | Some _, Ir.Ovreg _ | None, _ -> None
          in
          kill d;
          match folded with
          | Some c ->
            Hashtbl.replace env d (Const c);
            Imov (d, Ir.Oimm c)
          | None -> Ibin (op, d, a, o)
        end
        | Ifbin (op, d, a, b) -> begin
          let a = resolve_vreg a and b = resolve_vreg b in
          let folded =
            match (const_of a, const_of b) with
            | Some ca, Some cb -> Some (eval_fbinop op ca cb)
            | Some _, None | None, Some _ | None, None -> None
          in
          kill d;
          match folded with
          | Some c ->
            Hashtbl.replace env d (Const c);
            Imov (d, Ir.Oimm c)
          | None -> Ifbin (op, d, a, b)
        end
        | Ineg (d, a) -> begin
          let a = resolve_vreg a in
          let folded = const_of a in
          kill d;
          match folded with
          | Some c ->
            let r = Int64.neg c in
            Hashtbl.replace env d (Const r);
            Imov (d, Ir.Oimm r)
          | None -> Ineg (d, a)
        end
        | Inot (d, a) -> begin
          let a = resolve_vreg a in
          let folded = const_of a in
          kill d;
          match folded with
          | Some c ->
            let r = Int64.lognot c in
            Hashtbl.replace env d (Const r);
            Imov (d, Ir.Oimm r)
          | None -> Inot (d, a)
        end
        | Ii2f (d, a) -> begin
          let a = resolve_vreg a in
          let folded = const_of a in
          kill d;
          match folded with
          | Some c ->
            let r = Int64.bits_of_float (Int64.to_float c) in
            Hashtbl.replace env d (Const r);
            Imov (d, Ir.Oimm r)
          | None -> Ii2f (d, a)
        end
        | If2i (d, a) -> begin
          let a = resolve_vreg a in
          let folded = const_of a in
          kill d;
          match folded with
          | Some c ->
            let fv = Int64.float_of_bits c in
            let r =
              if Float.is_nan fv then 0L else Int64.of_float fv
            in
            Hashtbl.replace env d (Const r);
            Imov (d, Ir.Oimm r)
          | None -> If2i (d, a)
        end
        | Iload (w, d, addr, off) ->
          let addr = resolve_vreg addr in
          kill d;
          Iload (w, d, addr, off)
        | Istore (w, src, addr, off) ->
          Istore (w, resolve_vreg src, resolve_vreg addr, off)
        | Ilea_slot (d, slot) ->
          kill d;
          Ilea_slot (d, slot)
        | Ilea_data (d, a) ->
          kill d;
          Ilea_data (d, a)
        | Icall (dst, callee, args) ->
          let args = List.map resolve_vreg args in
          (match dst with Some d -> kill d | None -> ());
          Icall (dst, callee, args)
        | Isyscall (dst, n, args) ->
          let args = List.map resolve_vreg args in
          (match dst with Some d -> kill d | None -> ());
          Isyscall (dst, n, args)
      in
      blk.body <- List.map rewrite blk.body;
      blk.term <-
        (match blk.term with
        | Tbr (c, v, o, b1, b2) -> begin
          let v = resolve_vreg v in
          let o = resolve_operand o in
          match (const_of v, o) with
          | Some cv, Ir.Oimm co ->
            let sign = compare cv co in
            Ir.Tjmp (if Isa.Cond.holds c sign then b1 else b2)
          | Some _, Ir.Ovreg _ | None, _ -> Tbr (c, v, o, b1, b2)
        end
        | Tfbr (c, a, b, b1, b2) -> begin
          let a = resolve_vreg a and b = resolve_vreg b in
          match (const_of a, const_of b) with
          | Some ca, Some cb ->
            let fa = Int64.float_of_bits ca and fb = Int64.float_of_bits cb in
            let sign = compare fa fb in
            Ir.Tjmp (if Isa.Cond.holds c sign then b1 else b2)
          | Some _, None | None, Some _ | None, None -> Tfbr (c, a, b, b1, b2)
        end
        | Tswitch (v, targets, default) -> begin
          let v = resolve_vreg v in
          match const_of v with
          | Some c ->
            let i = Int64.to_int c in
            if i >= 0 && i < Array.length targets then Ir.Tjmp targets.(i)
            else Ir.Tjmp default
          | None -> Tswitch (v, targets, default)
        end
        | Tret (Some v) -> Tret (Some (resolve_vreg v))
        | (Tjmp _ | Tret None | Tunreachable) as t -> t))
    f.blocks

(* --- strength reduction ----------------------------------------------- *)

let log2_exact v =
  if v <= 0L then None
  else begin
    let rec loop k =
      if k > 62 then None
      else if Int64.shift_left 1L k = v then Some k
      else loop (k + 1)
    in
    loop 0
  end

let strength_reduce (f : Ir.fundef) =
  Array.iter
    (fun (blk : Ir.block) ->
      blk.body <-
        List.map
          (fun (ins : Ir.ins) : Ir.ins ->
            match ins with
            | Ibin (Mul, d, a, Oimm c) ->
              if c = 0L then Imov (d, Oimm 0L)
              else if c = 1L then Imov (d, Ovreg a)
              else begin
                match log2_exact c with
                | Some k -> Ibin (Shl, d, a, Oimm (Int64.of_int k))
                | None -> ins
              end
            | Ibin ((Add | Sub | Shl | Shr | Or | Xor), d, a, Oimm 0L) ->
              Imov (d, Ovreg a)
            | Ibin (And, d, _, Oimm 0L) -> Imov (d, Oimm 0L)
            | Ibin (Div, d, a, Oimm 1L) -> Imov (d, Ovreg a)
            | Ibin (Rem, d, _, Oimm 1L) -> Imov (d, Oimm 0L)
            | Ibin _ | Imov _ | Ifbin _ | Ineg _ | Inot _ | Ii2f _ | If2i _
            | Iload _ | Istore _ | Ilea_slot _ | Ilea_data _ | Icall _
            | Isyscall _ ->
              ins)
          blk.body)
    f.blocks

(* --- common-subexpression elimination (block-local) -------------------- *)

let cse (f : Ir.fundef) =
  Array.iter
    (fun (blk : Ir.block) ->
      let version : (Ir.vreg, int) Hashtbl.t = Hashtbl.create 16 in
      let ver v = match Hashtbl.find_opt version v with Some k -> k | None -> 0 in
      let bump v = Hashtbl.replace version v (ver v + 1) in
      let table : (string, Ir.vreg) Hashtbl.t = Hashtbl.create 16 in
      let operand_key (o : Ir.operand) =
        match o with
        | Oimm c -> Printf.sprintf "#%Ld" c
        | Ovreg v -> Printf.sprintf "v%d.%d" v (ver v)
      in
      let key_of (ins : Ir.ins) =
        match ins with
        | Ibin (op, _, a, o) ->
          Some
            (Printf.sprintf "bin:%s:v%d.%d:%s"
               (Isa.Instr.mnemonic (Binop (op, 0, 0, Reg 0)))
               a (ver a) (operand_key o))
        | Ifbin (op, _, a, b) ->
          Some
            (Printf.sprintf "fbin:%s:v%d.%d:v%d.%d"
               (Isa.Instr.mnemonic (Fbinop (op, 0, 0, 0)))
               a (ver a) b (ver b))
        | Ineg (_, a) -> Some (Printf.sprintf "neg:v%d.%d" a (ver a))
        | Inot (_, a) -> Some (Printf.sprintf "not:v%d.%d" a (ver a))
        | Ii2f (_, a) -> Some (Printf.sprintf "i2f:v%d.%d" a (ver a))
        | If2i (_, a) -> Some (Printf.sprintf "f2i:v%d.%d" a (ver a))
        | Ilea_slot (_, s) -> Some (Printf.sprintf "slot:%d" s)
        | Ilea_data (_, a) -> Some (Printf.sprintf "data:%Ld" a)
        | Imov _ | Iload _ | Istore _ | Icall _ | Isyscall _ -> None
      in
      blk.body <-
        List.map
          (fun (ins : Ir.ins) : Ir.ins ->
            let replacement =
              match key_of ins with
              | None -> None
              | Some key -> (
                match Hashtbl.find_opt table key with
                | Some v -> (
                  match Ir.defs ins with [ d ] -> Some (Ir.Imov (d, Ir.Ovreg v)) | _ -> None)
                | None -> (
                  match Ir.defs ins with
                  | [ d ] ->
                    Hashtbl.replace table key d;
                    None
                  | _ -> None))
            in
            let out = match replacement with Some r -> r | None -> ins in
            List.iter bump (Ir.defs out);
            out)
          blk.body)
    f.blocks

(* --- dead-code elimination --------------------------------------------- *)

let dce (f : Ir.fundef) =
  let changed = ref true in
  while !changed do
    changed := false;
    let live = Hashtbl.create 64 in
    let mark v = Hashtbl.replace live v () in
    Array.iter
      (fun (blk : Ir.block) -> List.iter mark (Ir.term_uses blk.term))
      f.blocks;
    (* fixpoint: uses of live-defining and effectful instructions are live *)
    let stable = ref false in
    while not !stable do
      stable := true;
      Array.iter
        (fun (blk : Ir.block) ->
          List.iter
            (fun ins ->
              let needed =
                Ir.has_side_effect ins
                || List.exists (Hashtbl.mem live) (Ir.defs ins)
              in
              if needed then
                List.iter
                  (fun v ->
                    if not (Hashtbl.mem live v) then begin
                      mark v;
                      stable := false
                    end)
                  (Ir.uses ins))
            blk.body)
        f.blocks
    done;
    Array.iter
      (fun (blk : Ir.block) ->
        let before = List.length blk.body in
        blk.body <-
          List.filter
            (fun ins ->
              Ir.has_side_effect ins
              || List.exists (Hashtbl.mem live) (Ir.defs ins))
            blk.body;
        if List.length blk.body <> before then changed := true)
      f.blocks
  done

(* --- CFG simplification ------------------------------------------------ *)

let simplify_cfg (f : Ir.fundef) =
  let n = Array.length f.blocks in
  if n > 0 then begin
    (* 1. thread through empty forwarding blocks *)
    let forward = Array.init n (fun i -> i) in
    let rec chase seen i =
      let blk = f.blocks.(i) in
      if blk.body = [] && not (List.mem i seen) then begin
        match blk.term with
        | Ir.Tjmp j -> chase (i :: seen) j
        | Ir.Tbr _ | Tfbr _ | Tswitch _ | Tret _ | Tunreachable -> i
      end
      else i
    in
    for i = 0 to n - 1 do
      forward.(i) <- chase [] i
    done;
    Array.iter
      (fun (blk : Ir.block) ->
        blk.term <- Ir.map_successors (fun j -> forward.(j)) blk.term)
      f.blocks;
    (* collapse branches whose arms coincide *)
    Array.iter
      (fun (blk : Ir.block) ->
        match blk.term with
        | Ir.Tbr (_, _, _, a, b) when a = b -> blk.term <- Ir.Tjmp a
        | Ir.Tfbr (_, _, _, a, b) when a = b -> blk.term <- Ir.Tjmp a
        | Ir.Tjmp _ | Tbr _ | Tfbr _ | Tswitch _ | Tret _ | Tunreachable -> ())
      f.blocks;
    (* 2. merge straight-line pairs; only reachable blocks count as
       predecessors (threaded-out forwarders still carry stale edges) *)
    let entry_target = forward.(0) in
    let reachable_now = Array.make n false in
    let rec mark i =
      if not reachable_now.(i) then begin
        reachable_now.(i) <- true;
        List.iter mark (Ir.successors f.blocks.(i).term)
      end
    in
    mark entry_target;
    let pred_count = Array.make n 0 in
    Array.iteri
      (fun i (blk : Ir.block) ->
        if reachable_now.(i) then
          List.iter
            (fun s -> pred_count.(s) <- pred_count.(s) + 1)
            (Ir.successors blk.term))
      f.blocks;
    pred_count.(entry_target) <- pred_count.(entry_target) + 1;
    let merged = ref true in
    while !merged do
      merged := false;
      Array.iteri
        (fun i (blk : Ir.block) ->
          match blk.term with
          | Ir.Tjmp j
            when reachable_now.(i) && j <> i && pred_count.(j) = 1
                 && j <> entry_target ->
            let target = f.blocks.(j) in
            blk.body <- blk.body @ target.body;
            blk.term <- target.term;
            target.body <- [];
            target.term <- Ir.Tunreachable;
            reachable_now.(j) <- false;
            pred_count.(j) <- 0;
            merged := true
          | Ir.Tjmp _ | Tbr _ | Tfbr _ | Tswitch _ | Tret _ | Tunreachable -> ())
        f.blocks
    done;
    (* 3. drop unreachable blocks and renumber *)
    let reachable = Array.make n false in
    let rec visit i =
      if not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter visit (Ir.successors f.blocks.(i).term)
      end
    in
    visit entry_target;
    let remap = Array.make n (-1) in
    let kept = ref [] in
    let next = ref 0 in
    (* keep the (possibly forwarded) entry block first *)
    let order =
      entry_target :: List.filter (fun i -> i <> entry_target) (List.init n Fun.id)
    in
    List.iter
      (fun i ->
        if reachable.(i) then begin
          remap.(i) <- !next;
          incr next;
          kept := i :: !kept
        end)
      order;
    let kept = Array.of_list (List.rev !kept) in
    let blocks =
      Array.map
        (fun i ->
          let blk = f.blocks.(i) in
          {
            Ir.body = blk.body;
            term = Ir.map_successors (fun j -> remap.(j)) blk.term;
          })
        kept
    in
    f.blocks <- blocks
  end

(* --- inlining ----------------------------------------------------------- *)

let is_leaf (g : Ir.fundef) =
  Array.for_all
    (fun (blk : Ir.block) ->
      List.for_all
        (fun (ins : Ir.ins) ->
          match ins with
          | Icall (_, Ir.Cinternal _, _) -> false
          | Icall (_, Ir.Cimport _, _) | Imov _ | Ibin _ | Ifbin _ | Ineg _
          | Inot _ | Ii2f _ | If2i _ | Iload _ | Istore _ | Ilea_slot _
          | Ilea_data _ | Isyscall _ ->
            true)
        blk.body)
    g.blocks

(* Inline small leaf callees.  The callee's blocks are appended with vreg,
   slot and block-id offsets; its returns become jumps to the continuation
   block holding the instructions that followed the call. *)
let inline_calls ~limit ~resolve (f : Ir.fundef) =
  if limit > 0 then begin
    let work = ref (Array.to_list (Array.mapi (fun i _ -> i) f.blocks)) in
    while !work <> [] do
      let bid = List.hd !work in
      work := List.tl !work;
      let blk = f.blocks.(bid) in
      let rec find_site before after =
        match after with
        | [] -> None
        | (Ir.Icall (dst, Ir.Cinternal gname, args) as site) :: rest -> (
          match resolve gname with
          | Some g
            when g.Ir.name <> f.Ir.name
                 && Ir.instruction_count g <= limit
                 && is_leaf g ->
            Some (List.rev before, dst, g, args, rest)
          | Some _ | None -> find_site (site :: before) rest)
        | ins :: rest -> find_site (ins :: before) rest
      in
      match find_site [] blk.body with
      | None -> ()
      | Some (prefix, dst, g, args, suffix) ->
        let voff = f.nvregs in
        f.nvregs <- f.nvregs + g.Ir.nvregs;
        let soff = Array.length f.slot_sizes in
        f.slot_sizes <- Array.append f.slot_sizes g.Ir.slot_sizes;
        let boff = Array.length f.blocks in
        let cont = boff + Array.length g.Ir.blocks in
        let shift_ins (ins : Ir.ins) : Ir.ins =
          let sv v = v + voff in
          match ins with
          | Imov (d, Ovreg s) -> Imov (sv d, Ovreg (sv s))
          | Imov (d, (Oimm _ as o)) -> Imov (sv d, o)
          | Ibin (op, d, a, Ovreg b) -> Ibin (op, sv d, sv a, Ovreg (sv b))
          | Ibin (op, d, a, (Oimm _ as o)) -> Ibin (op, sv d, sv a, o)
          | Ifbin (op, d, a, b) -> Ifbin (op, sv d, sv a, sv b)
          | Ineg (d, a) -> Ineg (sv d, sv a)
          | Inot (d, a) -> Inot (sv d, sv a)
          | Ii2f (d, a) -> Ii2f (sv d, sv a)
          | If2i (d, a) -> If2i (sv d, sv a)
          | Iload (w, d, a, off) -> Iload (w, sv d, sv a, off)
          | Istore (w, s, a, off) -> Istore (w, sv s, sv a, off)
          | Ilea_slot (d, slot) -> Ilea_slot (sv d, slot + soff)
          | Ilea_data (d, a) -> Ilea_data (sv d, a)
          | Icall (dst, callee, args) ->
            Icall (Option.map sv dst, callee, List.map sv args)
          | Isyscall (dst, n, args) ->
            Isyscall (Option.map sv dst, n, List.map sv args)
        in
        let callee_blocks =
          Array.map
            (fun (gb : Ir.block) ->
              let sv v = v + voff in
              let body = List.map shift_ins gb.body in
              let term =
                match gb.term with
                | Ir.Tret _ -> Ir.Tjmp cont
                | Ir.Tjmp b -> Ir.Tjmp (b + boff)
                | Ir.Tbr (c, v, Ir.Ovreg o, b1, b2) ->
                  Ir.Tbr (c, sv v, Ir.Ovreg (sv o), b1 + boff, b2 + boff)
                | Ir.Tbr (c, v, (Ir.Oimm _ as o), b1, b2) ->
                  Ir.Tbr (c, sv v, o, b1 + boff, b2 + boff)
                | Ir.Tfbr (c, a, b, b1, b2) ->
                  Ir.Tfbr (c, sv a, sv b, b1 + boff, b2 + boff)
                | Ir.Tswitch (v, targets, default) ->
                  Ir.Tswitch
                    (sv v, Array.map (fun b -> b + boff) targets, default + boff)
                | Ir.Tunreachable -> Ir.Tunreachable
              in
              (* append the return-value move when needed *)
              let body =
                match (gb.term, dst) with
                | Ir.Tret (Some v), Some d ->
                  body @ [ Ir.Imov (d, Ir.Ovreg (sv v)) ]
                | _, _ -> body
              in
              { Ir.body; term })
            g.Ir.blocks
        in
        let cont_block = { Ir.body = suffix; term = blk.term } in
        (* argument moves into the callee's parameter vregs *)
        let arg_moves =
          List.map2
            (fun pv a -> Ir.Imov (pv + voff, Ir.Ovreg a))
            g.Ir.param_vregs args
        in
        blk.body <- prefix @ arg_moves;
        blk.term <- Ir.Tjmp boff;
        f.blocks <- Array.concat [ f.blocks; callee_blocks; [| cont_block |] ];
        (* revisit this block (it may contain no further calls) and scan the
           continuation for more call sites *)
        work := cont :: !work
    done
  end

(* --- loop-invariant code motion -------------------------------------------- *)

(* Iterative dominators over IR blocks (Cooper-Harvey-Kennedy). *)
let ir_dominators (f : Ir.fundef) =
  let n = Array.length f.blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun i (blk : Ir.block) ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (Ir.successors blk.term))
    f.blocks;
  let order = Array.make n (-1) in
  let rpo = ref [] in
  let visited = Array.make n false in
  let rec visit b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter visit (Ir.successors f.blocks.(b).term);
      rpo := b :: !rpo
    end
  in
  if n > 0 then visit 0;
  let rpo = Array.of_list !rpo in
  Array.iteri (fun pos b -> order.(b) <- pos) rpo;
  let idoms = Array.make n (-1) in
  if n > 0 then begin
    idoms.(0) <- 0;
    let rec intersect a b =
      if a = b then a
      else if order.(a) > order.(b) then intersect idoms.(a) b
      else intersect a idoms.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let ready =
              List.filter (fun p -> order.(p) >= 0 && idoms.(p) >= 0) preds.(b)
            in
            match ready with
            | [] -> ()
            | first :: rest ->
              let d = List.fold_left intersect first rest in
              if idoms.(b) <> d then begin
                idoms.(b) <- d;
                changed := true
              end
          end)
        rpo
    done
  end;
  let rec dominates a b =
    a = b || (b <> 0 && idoms.(b) >= 0 && dominates a idoms.(b))
  in
  (preds, dominates)

(* Hoisting safety: pure, cannot trap (so no Div/Rem — speculating one in
   the preheader could fault where the loop body would not have) and not
   a load (memory may change inside the loop). *)
let hoistable (ins : Ir.ins) =
  match ins with
  | Imov (_, Oimm _)
  | Ibin ((Add | Sub | Mul | And | Or | Xor | Shl | Shr), _, _, _)
  | Ifbin _ | Ineg _ | Inot _ | Ii2f _ | If2i _ | Ilea_slot _ | Ilea_data _ ->
    true
  | Imov (_, Ovreg _)
  | Ibin ((Div | Rem), _, _, _)
  | Iload _ | Istore _ | Icall _ | Isyscall _ ->
    false

let licm (f : Ir.fundef) =
  let n = Array.length f.blocks in
  if n > 1 then begin
    let preds, dominates = ir_dominators f in
    (* definition counts over the whole function: hoisting is only safe
       for vregs with a single definition (no SSA here) *)
    let def_count = Hashtbl.create 64 in
    Array.iter
      (fun (blk : Ir.block) ->
        List.iter
          (fun ins ->
            List.iter
              (fun d ->
                Hashtbl.replace def_count d
                  (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d)))
              (Ir.defs ins))
          blk.body)
      f.blocks;
    List.iter (fun p -> Hashtbl.replace def_count p 99) f.param_vregs;
    (* loop headers via back edges *)
    let headers = Hashtbl.create 4 in
    Array.iteri
      (fun b (blk : Ir.block) ->
        List.iter
          (fun s -> if s <> 0 && dominates s b then Hashtbl.replace headers s ())
          (Ir.successors blk.term))
      f.blocks;
    let extra_blocks = ref [] in
    let next_block = ref n in
    Hashtbl.iter
      (fun header () ->
        (* loop body: header plus the pred-closure of its latches *)
        let in_body = Hashtbl.create 8 in
        Hashtbl.replace in_body header ();
        let rec pull b =
          if not (Hashtbl.mem in_body b) then begin
            Hashtbl.replace in_body b ();
            List.iter pull preds.(b)
          end
        in
        Array.iteri
          (fun b (blk : Ir.block) ->
            if List.mem header (Ir.successors blk.term) && dominates header b
            then pull b)
          f.blocks;
        (* vregs defined inside the loop *)
        let defined_inside = Hashtbl.create 16 in
        Hashtbl.iter
          (fun b () ->
            List.iter
              (fun ins ->
                List.iter
                  (fun d -> Hashtbl.replace defined_inside d ())
                  (Ir.defs ins))
              f.blocks.(b).body)
          in_body;
        (* iterate: an instruction is invariant when every use is defined
           outside the loop or by an already-hoisted instruction *)
        let hoisted = ref [] in
        let hoisted_defs = Hashtbl.create 8 in
        let changed = ref true in
        while !changed do
          changed := false;
          Hashtbl.iter
            (fun b () ->
              let blk = f.blocks.(b) in
              let keep, moved =
                List.partition
                  (fun ins ->
                    not
                      (hoistable ins
                      && (match Ir.defs ins with
                         | [ d ] -> Hashtbl.find_opt def_count d = Some 1
                         | _ -> false)
                      && List.for_all
                           (fun u ->
                             (not (Hashtbl.mem defined_inside u))
                             || Hashtbl.mem hoisted_defs u)
                           (Ir.uses ins)))
                  blk.body
              in
              if moved <> [] then begin
                changed := true;
                blk.body <- keep;
                List.iter
                  (fun ins ->
                    List.iter
                      (fun d -> Hashtbl.replace hoisted_defs d ())
                      (Ir.defs ins))
                  moved;
                hoisted := !hoisted @ moved
              end)
            in_body
        done;
        if !hoisted <> [] then begin
          (* preheader: every non-loop predecessor of the header is
             redirected to it *)
          let pre = !next_block in
          incr next_block;
          extra_blocks := { Ir.body = !hoisted; term = Ir.Tjmp header } :: !extra_blocks;
          Array.iteri
            (fun b (blk : Ir.block) ->
              if not (Hashtbl.mem in_body b) then
                blk.term <-
                  Ir.map_successors (fun s -> if s = header then pre else s) blk.term)
            f.blocks
        end)
      headers;
    if !extra_blocks <> [] then
      f.blocks <- Array.append f.blocks (Array.of_list (List.rev !extra_blocks))
  end

let run (opts : Optlevel.options) ~resolve (f : Ir.fundef) =
  let pass name apply =
    apply f;
    run_check name f
  in
  if opts.inline_limit > 0 then
    pass "inline" (inline_calls ~limit:opts.inline_limit ~resolve);
  if opts.licm then begin
    (* clean copies first so invariants are visible, then hoist *)
    if opts.fold then pass "fold" fold_constants;
    pass "licm" licm
  end;
  for _ = 1 to 2 do
    if opts.fold then pass "fold" fold_constants;
    if opts.cse then pass "cse" cse;
    if opts.strength then pass "strength" strength_reduce;
    if opts.fold then pass "fold" fold_constants;
    if opts.dce then pass "dce" dce;
    if opts.simplify then pass "simplify" simplify_cfg
  done
