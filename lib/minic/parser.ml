exception Parse_error of int * string

type state = { lx : Lexer.t }

let fail st fmt =
  Format.kasprintf (fun s -> raise (Parse_error (Lexer.line st.lx, s))) fmt

let expect_punct st p =
  match Lexer.next st.lx with
  | Lexer.Tpunct q when q = p -> ()
  | tok -> fail st "expected %S, got %s" p (Lexer.token_to_string tok)

let expect_kw st kw =
  match Lexer.next st.lx with
  | Lexer.Tkw k when k = kw -> ()
  | tok -> fail st "expected keyword %S, got %s" kw (Lexer.token_to_string tok)

let expect_ident st =
  match Lexer.next st.lx with
  | Lexer.Tident name -> name
  | tok -> fail st "expected identifier, got %s" (Lexer.token_to_string tok)

let accept_punct st p =
  match Lexer.peek st.lx with
  | Lexer.Tpunct q when q = p ->
    ignore (Lexer.next st.lx);
    true
  | _ -> false

let accept_kw st kw =
  match Lexer.peek st.lx with
  | Lexer.Tkw k when k = kw ->
    ignore (Lexer.next st.lx);
    true
  | _ -> false

(* Types: int | float | byte* | word* | void; bare byte/word only occur in
   array declarations which are handled separately. *)
let parse_ty st =
  match Lexer.next st.lx with
  | Lexer.Tkw "int" -> Ast.Tint
  | Lexer.Tkw "float" -> Ast.Tfloat
  | Lexer.Tkw "void" -> Ast.Tvoid
  | Lexer.Tkw "byte" ->
    expect_punct st "*";
    Ast.Tptr Ast.Byte
  | Lexer.Tkw "word" ->
    expect_punct st "*";
    Ast.Tptr Ast.Word
  | tok -> fail st "expected type, got %s" (Lexer.token_to_string tok)

(* --- expressions: precedence climbing ------------------------------- *)

let binop_of_punct = function
  | "*" -> Some (Ast.Bmul, 7)
  | "/" -> Some (Ast.Bdiv, 7)
  | "%" -> Some (Ast.Brem, 7)
  | "+" -> Some (Ast.Badd, 6)
  | "-" -> Some (Ast.Bsub, 6)
  | "<<" -> Some (Ast.Bshl, 5)
  | ">>" -> Some (Ast.Bshr, 5)
  | "<" -> Some (Ast.Blt, 4)
  | "<=" -> Some (Ast.Ble, 4)
  | ">" -> Some (Ast.Bgt, 4)
  | ">=" -> Some (Ast.Bge, 4)
  | "==" -> Some (Ast.Beq, 3)
  | "!=" -> Some (Ast.Bne, 3)
  | "&" -> Some (Ast.Bandb, 2)
  | "^" -> Some (Ast.Bxor, 2)
  | "|" -> Some (Ast.Borb, 2)
  | "&&" -> Some (Ast.Bland, 1)
  | "||" -> Some (Ast.Blor, 0)
  | _ -> None

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match Lexer.peek st.lx with
  | Lexer.Tpunct p -> (
    match binop_of_punct p with
    | Some (op, prec) when prec >= min_prec ->
      ignore (Lexer.next st.lx);
      let rhs = parse_expr_prec st (prec + 1) in
      climb st (Ast.Ebinop (op, lhs, rhs)) min_prec
    | Some _ | None -> lhs)
  | Lexer.Tident _ | Lexer.Tint_lit _ | Lexer.Tfloat_lit _ | Lexer.Tstring_lit _
  | Lexer.Tkw _ | Lexer.Teof ->
    lhs

and parse_unary st =
  match Lexer.peek st.lx with
  | Lexer.Tpunct "-" ->
    ignore (Lexer.next st.lx);
    Ast.Eunop (Ast.Uneg, parse_unary st)
  | Lexer.Tpunct "~" ->
    ignore (Lexer.next st.lx);
    Ast.Eunop (Ast.Ubnot, parse_unary st)
  | Lexer.Tpunct "&" ->
    ignore (Lexer.next st.lx);
    let base = parse_postfix st in
    (match base with
    | Ast.Eindex (b, i) -> Ast.Eaddr (b, i)
    | Ast.Eint _ | Ast.Efloat _ | Ast.Estr _ | Ast.Evar _ | Ast.Eaddr _
    | Ast.Eunop _ | Ast.Ebinop _ | Ast.Ecall _ ->
      fail st "& applies only to an indexed expression")
  | Lexer.Tident _ | Lexer.Tint_lit _ | Lexer.Tfloat_lit _ | Lexer.Tstring_lit _
  | Lexer.Tpunct _ | Lexer.Tkw _ | Lexer.Teof ->
    parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  parse_indexes st base

and parse_indexes st base =
  if accept_punct st "[" then begin
    let idx = parse_expr_prec st 0 in
    expect_punct st "]";
    parse_indexes st (Ast.Eindex (base, idx))
  end
  else base

and parse_primary st =
  match Lexer.next st.lx with
  | Lexer.Tint_lit v -> Ast.Eint v
  | Lexer.Tfloat_lit f -> Ast.Efloat f
  | Lexer.Tstring_lit s -> Ast.Estr s
  | Lexer.Tident name ->
    if accept_punct st "(" then begin
      let args = parse_args st in
      Ast.Ecall (name, args)
    end
    else Ast.Evar name
  | Lexer.Tpunct "(" ->
    let e = parse_expr_prec st 0 in
    expect_punct st ")";
    e
  | tok -> fail st "expected expression, got %s" (Lexer.token_to_string tok)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr_prec st 0 in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

let parse_expression st = parse_expr_prec st 0

(* --- statements ------------------------------------------------------ *)

let rec parse_stmt st =
  match Lexer.peek st.lx with
  | Lexer.Tkw "var" -> parse_var st
  | Lexer.Tkw "if" -> parse_if st
  | Lexer.Tkw "while" -> parse_while st
  | Lexer.Tkw "for" -> parse_for st
  | Lexer.Tkw "switch" -> parse_switch st
  | Lexer.Tkw "return" ->
    ignore (Lexer.next st.lx);
    if accept_punct st ";" then Ast.Sreturn None
    else begin
      let e = parse_expression st in
      expect_punct st ";";
      Ast.Sreturn (Some e)
    end
  | Lexer.Tkw "break" ->
    ignore (Lexer.next st.lx);
    expect_punct st ";";
    Ast.Sbreak
  | Lexer.Tkw "continue" ->
    ignore (Lexer.next st.lx);
    expect_punct st ";";
    Ast.Scontinue
  | Lexer.Tident _ | Lexer.Tint_lit _ | Lexer.Tfloat_lit _ | Lexer.Tstring_lit _
  | Lexer.Tpunct _ | Lexer.Tkw _ | Lexer.Teof ->
    parse_assign_or_expr st

and parse_var st =
  expect_kw st "var";
  let name = expect_ident st in
  expect_punct st ":";
  match Lexer.peek st.lx with
  | Lexer.Tkw ("byte" | "word") -> begin
    let elem_kw = Lexer.next st.lx in
    let elem =
      match elem_kw with
      | Lexer.Tkw "byte" -> Ast.Byte
      | Lexer.Tkw "word" -> Ast.Word
      | tok ->
        fail st "expected element type 'byte' or 'word', got %s"
          (Lexer.token_to_string tok)
    in
    match Lexer.peek st.lx with
    | Lexer.Tpunct "[" ->
      ignore (Lexer.next st.lx);
      let size =
        match Lexer.next st.lx with
        | Lexer.Tint_lit v -> Int64.to_int v
        | tok -> fail st "expected array size, got %s" (Lexer.token_to_string tok)
      in
      expect_punct st "]";
      expect_punct st ";";
      Ast.Sarray (name, elem, size)
    | Lexer.Tpunct "*" ->
      ignore (Lexer.next st.lx);
      let init = if accept_punct st "=" then Some (parse_expression st) else None in
      expect_punct st ";";
      Ast.Sdecl (name, Ast.Tptr elem, init)
    | tok -> fail st "expected [ or * after %s" (Lexer.token_to_string tok)
  end
  | Lexer.Tkw _ | Lexer.Tident _ | Lexer.Tint_lit _ | Lexer.Tfloat_lit _
  | Lexer.Tstring_lit _ | Lexer.Tpunct _ | Lexer.Teof ->
    let ty = parse_ty st in
    let init = if accept_punct st "=" then Some (parse_expression st) else None in
    expect_punct st ";";
    Ast.Sdecl (name, ty, init)

and parse_if st =
  expect_kw st "if";
  expect_punct st "(";
  let cond = parse_expression st in
  expect_punct st ")";
  let thens = parse_block st in
  let elses =
    if accept_kw st "else" then begin
      match Lexer.peek st.lx with
      | Lexer.Tkw "if" -> [ parse_if st ]
      | Lexer.Tpunct "{" -> parse_block st
      | tok -> fail st "expected block or if after else, got %s" (Lexer.token_to_string tok)
    end
    else []
  in
  Ast.Sif (cond, thens, elses)

and parse_while st =
  expect_kw st "while";
  expect_punct st "(";
  let cond = parse_expression st in
  expect_punct st ")";
  let body = parse_block st in
  Ast.Swhile (cond, body)

(* for (v = start; v < bound; v = v + step) { ... } *)
and parse_for st =
  expect_kw st "for";
  expect_punct st "(";
  let v = expect_ident st in
  expect_punct st "=";
  let start = parse_expression st in
  expect_punct st ";";
  let v2 = expect_ident st in
  if v2 <> v then fail st "for-loop condition must test %s" v;
  expect_punct st "<";
  let bound = parse_expression st in
  expect_punct st ";";
  let v3 = expect_ident st in
  if v3 <> v then fail st "for-loop step must update %s" v;
  expect_punct st "=";
  let v4 = expect_ident st in
  if v4 <> v then fail st "for-loop step must be %s = %s + e" v v;
  expect_punct st "+";
  let step = parse_expression st in
  expect_punct st ")";
  let body = parse_block st in
  Ast.Sfor (v, start, bound, step, body)

and parse_switch st =
  expect_kw st "switch";
  expect_punct st "(";
  let e = parse_expression st in
  expect_punct st ")";
  expect_punct st "{";
  let cases = ref [] in
  let default = ref [] in
  let rec loop () =
    if accept_kw st "case" then begin
      let v =
        match Lexer.next st.lx with
        | Lexer.Tint_lit v -> v
        | Lexer.Tpunct "-" -> (
          match Lexer.next st.lx with
          | Lexer.Tint_lit v -> Int64.neg v
          | tok -> fail st "expected case value, got %s" (Lexer.token_to_string tok))
        | tok -> fail st "expected case value, got %s" (Lexer.token_to_string tok)
      in
      expect_punct st ":";
      let body = parse_block st in
      cases := (v, body) :: !cases;
      loop ()
    end
    else if accept_kw st "default" then begin
      expect_punct st ":";
      default := parse_block st;
      loop ()
    end
    else expect_punct st "}"
  in
  loop ();
  Ast.Sswitch (e, List.rev !cases, !default)

and parse_assign_or_expr st =
  let e = parse_expression st in
  match Lexer.peek st.lx with
  | Lexer.Tpunct "=" -> begin
    ignore (Lexer.next st.lx);
    let rhs = parse_expression st in
    expect_punct st ";";
    match e with
    | Ast.Evar name -> Ast.Sassign (name, rhs)
    | Ast.Eindex (base, idx) -> Ast.Sindexset (base, idx, rhs)
    | Ast.Eint _ | Ast.Efloat _ | Ast.Estr _ | Ast.Eaddr _ | Ast.Eunop _
    | Ast.Ebinop _ | Ast.Ecall _ ->
      fail st "left-hand side must be a variable or index"
  end
  | Lexer.Tpunct ";" ->
    ignore (Lexer.next st.lx);
    Ast.Sexpr e
  | tok -> fail st "expected = or ;, got %s" (Lexer.token_to_string tok)

and parse_block st =
  expect_punct st "{";
  let rec loop acc =
    if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

(* --- top level ------------------------------------------------------- *)

let parse_param st =
  let pname = expect_ident st in
  expect_punct st ":";
  let pty = parse_ty st in
  { Ast.pname; pty }

let parse_func st =
  expect_kw st "fn";
  let fname = expect_ident st in
  expect_punct st "(";
  let params =
    if accept_punct st ")" then []
    else begin
      let rec loop acc =
        let p = parse_param st in
        if accept_punct st "," then loop (p :: acc)
        else begin
          expect_punct st ")";
          List.rev (p :: acc)
        end
      in
      loop []
    end
  in
  let ret = if accept_punct st ":" then parse_ty st else Ast.Tvoid in
  let body = parse_block st in
  { Ast.fname; params; ret; body }

let parse_global st =
  expect_kw st "global";
  let gname = expect_ident st in
  expect_punct st ":";
  match Lexer.next st.lx with
  | Lexer.Tkw "int" ->
    expect_punct st "=";
    let v =
      match Lexer.next st.lx with
      | Lexer.Tint_lit v -> v
      | Lexer.Tpunct "-" -> (
        match Lexer.next st.lx with
        | Lexer.Tint_lit v -> Int64.neg v
        | tok -> fail st "expected integer, got %s" (Lexer.token_to_string tok))
      | tok -> fail st "expected integer, got %s" (Lexer.token_to_string tok)
    in
    expect_punct st ";";
    { Ast.gname; gini = Ast.Gint v }
  | Lexer.Tkw "float" ->
    expect_punct st "=";
    let v =
      match Lexer.next st.lx with
      | Lexer.Tfloat_lit f -> f
      | Lexer.Tint_lit v -> Int64.to_float v
      | tok -> fail st "expected float, got %s" (Lexer.token_to_string tok)
    in
    expect_punct st ";";
    { Ast.gname; gini = Ast.Gfloat v }
  | Lexer.Tkw "byte" ->
    expect_punct st "[";
    let size =
      match Lexer.next st.lx with
      | Lexer.Tint_lit v -> Int64.to_int v
      | tok -> fail st "expected size, got %s" (Lexer.token_to_string tok)
    in
    expect_punct st "]";
    let init =
      if accept_punct st "=" then begin
        match Lexer.next st.lx with
        | Lexer.Tstring_lit s -> s
        | tok -> fail st "expected string, got %s" (Lexer.token_to_string tok)
      end
      else ""
    in
    expect_punct st ";";
    { Ast.gname; gini = Ast.Gbytes (size, init) }
  | Lexer.Tkw "word" ->
    expect_punct st "[";
    let size =
      match Lexer.next st.lx with
      | Lexer.Tint_lit v -> Int64.to_int v
      | tok -> fail st "expected size, got %s" (Lexer.token_to_string tok)
    in
    expect_punct st "]";
    let init =
      if accept_punct st "=" then begin
        expect_punct st "{";
        let rec loop acc =
          match Lexer.next st.lx with
          | Lexer.Tint_lit v ->
            if accept_punct st "," then loop (v :: acc)
            else begin
              expect_punct st "}";
              List.rev (v :: acc)
            end
          | tok -> fail st "expected integer, got %s" (Lexer.token_to_string tok)
        in
        loop []
      end
      else []
    in
    expect_punct st ";";
    { Ast.gname; gini = Ast.Gwords (size, init) }
  | tok -> fail st "expected global type, got %s" (Lexer.token_to_string tok)

let parse src =
  let st = { lx = Lexer.of_string src } in
  expect_kw st "lib";
  let pname = expect_ident st in
  expect_punct st ";";
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match Lexer.peek st.lx with
    | Lexer.Teof -> ()
    | Lexer.Tkw "global" ->
      globals := parse_global st :: !globals;
      loop ()
    | Lexer.Tkw "fn" ->
      funcs := parse_func st :: !funcs;
      loop ()
    | tok -> fail st "expected global or fn, got %s" (Lexer.token_to_string tok)
  in
  loop ();
  { Ast.pname; globals = List.rev !globals; funcs = List.rev !funcs }

let parse_expr src =
  let st = { lx = Lexer.of_string src } in
  let e = parse_expression st in
  (match Lexer.peek st.lx with
  | Lexer.Teof -> ()
  | tok -> fail st "trailing input: %s" (Lexer.token_to_string tok));
  e
