(** The MinC runtime interface: libc-like imports (resolved through the
    image call table and implemented by the VM runtime) and raw syscall
    intrinsics (compiled to [Syscall] instructions inline). *)

type signature = { args : Ast.ty list; ret : Ast.ty }

val imports : (string * signature) list
(** Name and signature of every import, e.g. memcpy, strlen, malloc. *)

val import_signature : string -> signature option

val runtime_import_signature : string -> signature option
(** Like {!import_signature} but also covering imports that only
    lowering introduces (malloc, which alloc_bytes/alloc_words compile
    to) — the full namespace of an image's call table. *)

val noret : string list
(** Imports that never return (exit, abort, panic). *)

val syscalls : (string * (int * signature)) list
(** Intrinsics compiled to [Syscall n]: sys_read, sys_write, sys_time,
    sys_getpid. *)

val syscall_signature : string -> (int * signature) option

val intrinsics : (string * signature) list
(** Pure compiler intrinsics lowered to single instructions:
    int_to_float, float_to_int, and the unchecked pointer casts
    as_ptr/as_wptr (an integer reinterpreted as an address — how device
    code reaches fixed MMIO windows). *)

val intrinsic_signature : string -> signature option
