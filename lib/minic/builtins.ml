type signature = { args : Ast.ty list; ret : Ast.ty }

open Ast

let imports =
  [
    ("memcpy", { args = [ Tptr Byte; Tptr Byte; Tint ]; ret = Tvoid });
    ("memmove", { args = [ Tptr Byte; Tptr Byte; Tint ]; ret = Tvoid });
    ("memset", { args = [ Tptr Byte; Tint; Tint ]; ret = Tvoid });
    ("memcmp", { args = [ Tptr Byte; Tptr Byte; Tint ]; ret = Tint });
    ("strlen", { args = [ Tptr Byte ]; ret = Tint });
    ("strcmp", { args = [ Tptr Byte; Tptr Byte ]; ret = Tint });
    ("alloc_bytes", { args = [ Tint ]; ret = Tptr Byte });
    ("alloc_words", { args = [ Tint ]; ret = Tptr Word });
    ("free", { args = [ Tptr Byte ]; ret = Tvoid });
    ("print_int", { args = [ Tint ]; ret = Tvoid });
    ("print_str", { args = [ Tptr Byte ]; ret = Tvoid });
    ("fsqrt", { args = [ Tfloat ]; ret = Tfloat });
    ("fabs", { args = [ Tfloat ]; ret = Tfloat });
    ("ffloor", { args = [ Tfloat ]; ret = Tfloat });
    ("exit", { args = [ Tint ]; ret = Tvoid });
    ("abort", { args = []; ret = Tvoid });
    ("panic", { args = [ Tptr Byte ]; ret = Tvoid });
  ]

let import_signature name = List.assoc_opt name imports

(* Names that appear in image call tables but are not source-callable:
   lowering rewrites both alloc_bytes and alloc_words (after scaling the
   count to bytes) into calls to the runtime allocator. *)
let runtime_imports = [ ("malloc", { args = [ Tint ]; ret = Tptr Byte }) ]

let runtime_import_signature name =
  match List.assoc_opt name runtime_imports with
  | Some _ as s -> s
  | None -> import_signature name

let noret = [ "exit"; "abort"; "panic" ]

let syscalls =
  [
    ("sys_read", (0, { args = [ Tint; Tptr Byte; Tint ]; ret = Tint }));
    ("sys_write", (1, { args = [ Tint; Tptr Byte; Tint ]; ret = Tint }));
    ("sys_time", (2, { args = []; ret = Tint }));
    ("sys_getpid", (3, { args = []; ret = Tint }));
  ]

let syscall_signature name = List.assoc_opt name syscalls

let intrinsics =
  [
    ("int_to_float", { args = [ Tint ]; ret = Tfloat });
    ("float_to_int", { args = [ Tfloat ]; ret = Tint });
    ("as_ptr", { args = [ Tint ]; ret = Tptr Byte });
    ("as_wptr", { args = [ Tint ]; ret = Tptr Word });
  ]

let intrinsic_signature name = List.assoc_opt name intrinsics
