(* Per-image static-feature cache.

   The pipeline scores every firmware function against every CVE
   reference, so without memoisation the 48-feature extraction of every
   function re-runs once per database entry.  Keying by physical image
   identity (images are built once and shared by reference) makes the
   extraction happen exactly once per image.

   The [Pending] state lets concurrent scanners of the same image block
   until the first one finishes instead of extracting twice; the
   computing domain itself never blocks, so there is no deadlock even
   when the computation happens on a pool worker. *)

module H = Hashtbl.Make (struct
  type t = Loader.Image.t

  let equal = ( == )

  (* structural hash is consistent with physical equality *)
  let hash (img : Loader.Image.t) = Hashtbl.hash img
end)

type state = Ready of Util.Vec.t array | Pending

let mutex = Mutex.create ()
let filled = Condition.create ()
let table : state H.t = H.create 64
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0

let rec features img =
  Mutex.lock mutex;
  match H.find_opt table img with
  | Some (Ready v) ->
    Mutex.unlock mutex;
    Atomic.incr hit_count;
    v
  | Some Pending ->
    Condition.wait filled mutex;
    Mutex.unlock mutex;
    features img
  | None ->
    H.replace table img Pending;
    Mutex.unlock mutex;
    Atomic.incr miss_count;
    let v =
      try Extract.of_image img
      with e ->
        Mutex.lock mutex;
        H.remove table img;
        Condition.broadcast filled;
        Mutex.unlock mutex;
        raise e
    in
    Mutex.lock mutex;
    H.replace table img (Ready v);
    Condition.broadcast filled;
    Mutex.unlock mutex;
    v

let feature img i = (features img).(i)

let clear () =
  Mutex.lock mutex;
  H.reset table;
  Mutex.unlock mutex

let cached_images () =
  Mutex.lock mutex;
  let n = H.length table in
  Mutex.unlock mutex;
  n

let stats () = (Atomic.get hit_count, Atomic.get miss_count)

let reset_stats () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0
