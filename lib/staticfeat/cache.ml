(* Per-image static-feature cache.

   The pipeline scores every firmware function against every CVE
   reference, so without memoisation the 48-feature extraction of every
   function re-runs once per database entry.  Keying by physical image
   identity (images are built once and shared by reference) makes the
   extraction happen exactly once per image.

   The [Pending] state lets concurrent scanners of the same image block
   until the first one finishes instead of extracting twice; the
   computing domain itself never blocks, so there is no deadlock even
   when the computation happens on a pool worker.

   Fault handling: if extraction raises (or the "staticfeat.extract"
   injection site fires), the entry becomes [Failed] — waiters are
   released immediately and later readers fail fast with
   [Cache_poisoned] instead of wedging on a Pending entry or silently
   re-extracting in racy order.  Recovery is explicit: [invalidate]
   drops the entry so a supervised retry can re-extract.  Extraction
   attempts are numbered per image name (monotonic until [clear]), and
   the injection draw is keyed by (name, attempt) with the supervisor
   context excluded — the decision must not depend on which scan cell
   happens to trigger the extraction, or chaos runs would not be
   reproducible across domain counts. *)

module H = Hashtbl.Make (struct
  type t = Loader.Image.t

  let equal = ( == )

  (* structural hash is consistent with physical equality *)
  let hash (img : Loader.Image.t) = Hashtbl.hash img
end)

type state =
  | Ready of Util.Vec.t array
  | Pending
  | Failed of Robust.Fault.t

(* the structural-fingerprint table mirrors the feature table: one
   encoding pass per physical image, shared across every CVE reference
   the image is compared against *)
type sstate =
  | Sready of Similarity.Structfp.t array
  | Spending
  | Sfailed of Robust.Fault.t

(* signature-token sets (the pruning stage's per-function hash sets)
   live in a third table under the same protocol; their extraction has
   its own injection site and attempt counter so chaos draws stay
   independent of the feature table's *)
type tstate =
  | Tready of int array array
  | Tpending
  | Tfailed of Robust.Fault.t

let mutex = Mutex.create ()
let filled = Condition.create ()
let table : state H.t = H.create 64
let stable : sstate H.t = H.create 64
let ttable : tstate H.t = H.create 64
let attempts : (string, int) Hashtbl.t = Hashtbl.create 64
let tattempts : (string, int) Hashtbl.t = Hashtbl.create 64
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0

(* the same counts, exported to the observability registry so a scan's
   metric snapshot includes cache behaviour *)
let m_hit = Obs.Metrics.counter "cache.hit"
let m_miss = Obs.Metrics.counter "cache.miss"
let m_invalidate = Obs.Metrics.counter "cache.invalidate"
let m_shit = Obs.Metrics.counter "cache.struct.hit"
let m_smiss = Obs.Metrics.counter "cache.struct.miss"
let m_thit = Obs.Metrics.counter "cache.tokens.hit"
let m_tmiss = Obs.Metrics.counter "cache.tokens.miss"

let next_attempt name =
  (* callers hold [mutex] *)
  let n = (match Hashtbl.find_opt attempts name with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace attempts name n;
  n

let extract img attempt =
  let name = img.Loader.Image.name in
  match
    Robust.Inject.fire ~use_context:false ~site:"staticfeat.extract"
      ~key:(Printf.sprintf "%s#%d" name attempt)
      ()
  with
  | Some _ ->
    Error
      (Robust.Fault.Extract_failure
         {
           site = "staticfeat.extract";
           detail = Printf.sprintf "injected extraction fault on %s (attempt %d)" name attempt;
         })
  | None -> (
    match Extract.of_image img with
    | v -> Ok v
    | exception e -> Error (Robust.Fault.of_exn ~site:"staticfeat.extract" e))

let rec features img =
  Mutex.lock mutex;
  match H.find_opt table img with
  | Some (Ready v) ->
    Mutex.unlock mutex;
    Atomic.incr hit_count;
    Obs.Metrics.incr m_hit;
    v
  | Some (Failed f) ->
    Mutex.unlock mutex;
    raise
      (Robust.Fault.Fault
         (Robust.Fault.Cache_poisoned
            {
              site = "staticfeat.extract";
              detail =
                Printf.sprintf "%s: %s" img.Loader.Image.name
                  (Robust.Fault.to_string f);
            }))
  | Some Pending ->
    Condition.wait filled mutex;
    Mutex.unlock mutex;
    features img
  | None ->
    H.replace table img Pending;
    let attempt = next_attempt img.Loader.Image.name in
    Mutex.unlock mutex;
    Atomic.incr miss_count;
    Obs.Metrics.incr m_miss;
    let outcome = extract img attempt in
    Mutex.lock mutex;
    (match outcome with
    | Ok v -> H.replace table img (Ready v)
    | Error f -> H.replace table img (Failed f));
    Condition.broadcast filled;
    Mutex.unlock mutex;
    (match outcome with
    | Ok v -> v
    | Error f -> raise (Robust.Fault.Fault f))

let features_result img =
  match features img with
  | v -> Ok v
  | exception Robust.Fault.Fault f -> Error f

let feature img i = (features img).(i)

let encode_structs img =
  Obs.Trace.with_span ~name:"structfp.image"
    ~attrs:(fun () -> [ ("image", img.Loader.Image.name) ])
  @@ fun () ->
  Array.init (Loader.Image.function_count img) (fun i ->
      Analysis.Struct_enc.of_binary img i)

let rec struct_fingerprints img =
  Mutex.lock mutex;
  match H.find_opt stable img with
  | Some (Sready v) ->
    Mutex.unlock mutex;
    Obs.Metrics.incr m_shit;
    v
  | Some (Sfailed f) ->
    Mutex.unlock mutex;
    raise
      (Robust.Fault.Fault
         (Robust.Fault.Cache_poisoned
            {
              site = "staticfeat.structfp";
              detail =
                Printf.sprintf "%s: %s" img.Loader.Image.name
                  (Robust.Fault.to_string f);
            }))
  | Some Spending ->
    Condition.wait filled mutex;
    Mutex.unlock mutex;
    struct_fingerprints img
  | None ->
    H.replace stable img Spending;
    Mutex.unlock mutex;
    Obs.Metrics.incr m_smiss;
    let outcome =
      match encode_structs img with
      | v -> Ok v
      | exception e -> Error (Robust.Fault.of_exn ~site:"staticfeat.structfp" e)
    in
    Mutex.lock mutex;
    (match outcome with
    | Ok v -> H.replace stable img (Sready v)
    | Error f -> H.replace stable img (Sfailed f));
    Condition.broadcast filled;
    Mutex.unlock mutex;
    (match outcome with
    | Ok v -> v
    | Error f -> raise (Robust.Fault.Fault f))

let struct_fingerprint img i = (struct_fingerprints img).(i)

let encode_tokens img attempt =
  let name = img.Loader.Image.name in
  match
    Robust.Inject.fire ~use_context:false ~site:"staticfeat.tokens"
      ~key:(Printf.sprintf "%s#%d" name attempt)
      ()
  with
  | Some _ ->
    Error
      (Robust.Fault.Extract_failure
         {
           site = "staticfeat.tokens";
           detail =
             Printf.sprintf "injected token-extraction fault on %s (attempt %d)"
               name attempt;
         })
  | None -> (
    match
      Obs.Trace.with_span ~name:"signature.tokens"
        ~attrs:(fun () -> [ ("image", name) ])
      @@ fun () ->
      (* reuse the cached skeletons: token extraction shares the
         structural encoding pass with the differential channel *)
      let fps = struct_fingerprints img in
      Array.init (Loader.Image.function_count img) (fun i ->
          Signature.Tokens.hash_set
            (Signature.Tokens.of_binary
               ~tree:(Similarity.Structfp.tree fps.(i))
               img i))
    with
    | v -> Ok v
    | exception Robust.Fault.Fault f -> Error f
    | exception e -> Error (Robust.Fault.of_exn ~site:"staticfeat.tokens" e))

let rec token_sets img =
  Mutex.lock mutex;
  match H.find_opt ttable img with
  | Some (Tready v) ->
    Mutex.unlock mutex;
    Obs.Metrics.incr m_thit;
    v
  | Some (Tfailed f) ->
    Mutex.unlock mutex;
    raise
      (Robust.Fault.Fault
         (Robust.Fault.Cache_poisoned
            {
              site = "staticfeat.tokens";
              detail =
                Printf.sprintf "%s: %s" img.Loader.Image.name
                  (Robust.Fault.to_string f);
            }))
  | Some Tpending ->
    Condition.wait filled mutex;
    Mutex.unlock mutex;
    token_sets img
  | None ->
    H.replace ttable img Tpending;
    let attempt =
      let name = img.Loader.Image.name in
      let n =
        (match Hashtbl.find_opt tattempts name with Some n -> n | None -> 0)
        + 1
      in
      Hashtbl.replace tattempts name n;
      n
    in
    Mutex.unlock mutex;
    Obs.Metrics.incr m_tmiss;
    let outcome = encode_tokens img attempt in
    Mutex.lock mutex;
    (match outcome with
    | Ok v -> H.replace ttable img (Tready v)
    | Error f -> H.replace ttable img (Tfailed f));
    Condition.broadcast filled;
    Mutex.unlock mutex;
    (match outcome with
    | Ok v -> v
    | Error f -> raise (Robust.Fault.Fault f))

let token_set img i = (token_sets img).(i)

let invalidate img =
  Mutex.lock mutex;
  (match H.find_opt table img with
  | Some Pending -> ()  (* an extraction is in flight; leave it alone *)
  | Some (Ready _ | Failed _) | None -> H.remove table img);
  (match H.find_opt stable img with
  | Some Spending -> ()
  | Some (Sready _ | Sfailed _) | None -> H.remove stable img);
  (match H.find_opt ttable img with
  | Some Tpending -> ()
  | Some (Tready _ | Tfailed _) | None -> H.remove ttable img);
  Mutex.unlock mutex;
  Obs.Metrics.incr m_invalidate

let clear () =
  Mutex.lock mutex;
  H.reset table;
  H.reset stable;
  H.reset ttable;
  Hashtbl.reset attempts;
  Hashtbl.reset tattempts;
  Mutex.unlock mutex

let cached_images () =
  Mutex.lock mutex;
  let n = H.length table in
  Mutex.unlock mutex;
  n

let stats () = (Atomic.get hit_count, Atomic.get miss_count)

let reset_stats () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0
