(** Per-image static-feature cache.

    Memoises {!Extract.of_image} by physical image identity so that
    every function's 48-feature vector is extracted exactly once per
    image, however many CVE references it is scored against.  Shared by
    the static stage, the whole-firmware scanner, the vulnerability
    database and the kNN baseline.  Safe to use from pool domains.

    The returned arrays are the cached values themselves: callers must
    not mutate them. *)

val features : Loader.Image.t -> Util.Vec.t array
(** Feature table of the image, index-aligned with its function table.
    Extracted (in parallel) on first request, served from the cache
    afterwards. *)

val feature : Loader.Image.t -> int -> Util.Vec.t
(** [feature img i] = [(features img).(i)]. *)

val clear : unit -> unit
(** Drop every cached image (for tests/benchmarks; call only while no
    scan is running). *)

val cached_images : unit -> int

val stats : unit -> int * int
(** [(hits, misses)] since the last {!reset_stats}. *)

val reset_stats : unit -> unit
