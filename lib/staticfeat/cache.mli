(** Per-image static-feature cache.

    Memoises {!Extract.of_image} by physical image identity so that
    every function's 48-feature vector is extracted exactly once per
    image, however many CVE references it is scored against.  Shared by
    the static stage, the whole-firmware scanner, the vulnerability
    database and the kNN baseline.  Safe to use from pool domains.

    Extraction failures (a raising extractor, or the
    ["staticfeat.extract"] fault-injection site) poison the entry
    instead of wedging waiters on a Pending slot: concurrent readers are
    released immediately, and subsequent reads fail fast with
    [Cache_poisoned] until {!invalidate} (or {!clear}) drops the entry
    so a supervised retry can re-extract.

    The returned arrays are the cached values themselves: callers must
    not mutate them. *)

val features : Loader.Image.t -> Util.Vec.t array
(** Feature table of the image, index-aligned with its function table.
    Extracted (in parallel) on first request, served from the cache
    afterwards.  Raises {!Robust.Fault.Fault} — [Extract_failure] (or a
    wrapped extractor exception) on the attempt that failed,
    [Cache_poisoned] on later reads of a failed entry. *)

val features_result : Loader.Image.t -> (Util.Vec.t array, Robust.Fault.t) result
(** Fault-typed variant of {!features}: never raises. *)

val feature : Loader.Image.t -> int -> Util.Vec.t
(** [feature img i] = [(features img).(i)]. *)

val struct_fingerprints : Loader.Image.t -> Similarity.Structfp.t array
(** Structural fingerprints ({!Analysis.Struct_enc.of_binary}) of every
    function of the image, index-aligned with its function table and
    memoised like {!features} (same Pending/Failed protocol, own
    [cache.struct.hit]/[cache.struct.miss] metrics, one
    ["structfp.image"] span per encoding pass).  A failing encoder
    poisons the entry with site ["staticfeat.structfp"]. *)

val struct_fingerprint : Loader.Image.t -> int -> Similarity.Structfp.t
(** [struct_fingerprint img i] = [(struct_fingerprints img).(i)]. *)

val token_sets : Loader.Image.t -> int array array
(** Signature-token hash sets ({!Signature.Tokens}) of every function of
    the image, index-aligned with its function table — what the
    scanner's pruning stage joins against the inverted candidate index.
    Memoised like {!features} (same Pending/Failed protocol, own
    [cache.tokens.hit]/[cache.tokens.miss] metrics and
    ["staticfeat.tokens"] injection site, one ["signature.tokens"] span
    per extraction pass).  Shares the structural encoding pass with
    {!struct_fingerprints}. *)

val token_set : Loader.Image.t -> int -> int array
(** [token_set img i] = [(token_sets img).(i)]. *)

val invalidate : Loader.Image.t -> unit
(** Drop the image's cache entry (whether [Ready] or [Failed]) so the
    next read re-extracts.  The per-image attempt counter is NOT reset,
    so a deterministic fault-injection run draws a fresh decision on the
    retry.  A [Pending] entry (extraction in flight) is left alone. *)

val clear : unit -> unit
(** Drop every cached image and reset attempt counters (for
    tests/benchmarks; call only while no scan is running). *)

val cached_images : unit -> int

val stats : unit -> int * int
(** [(hits, misses)] since the last {!reset_stats}. *)

val reset_stats : unit -> unit
