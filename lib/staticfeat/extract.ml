(* Extraction counter: lets tests assert the per-image cache really
   removes redundant work (at most one extraction per (image, function)
   during a whole-firmware scan).  Atomic — extraction runs on pool
   domains. *)
let extractions = Atomic.make 0

let extraction_count () = Atomic.get extractions
let reset_extraction_count () = Atomic.set extractions 0

let fun_flag_noret = 1
let fun_flag_frame = 2
let fun_flag_leaf = 4

let noret_imports = [ "exit"; "abort"; "panic" ]

module I64set = Set.Make (Int64)
module Iset = Set.Make (Int)

let is_noret_call img idx =
  match Loader.Image.call_target img idx with
  | Some (Loader.Image.Import name) -> List.mem name noret_imports
  | Some (Loader.Image.Internal _) | None -> false

(* size_local: frame allocation found in the prologue, i.e. the first
   [sub sp, sp, #n] before any control transfer. *)
let local_size (instrs : int Isa.Instr.t array) =
  let n = Array.length instrs in
  let rec scan i =
    if i >= n then 0
    else begin
      match instrs.(i) with
      | Binop (Sub, d, a, Imm v) when d = Isa.Reg.sp && a = Isa.Reg.sp ->
        Int64.to_int v
      | ins -> if Isa.Instr.is_terminator ins then 0 else scan (i + 1)
    end
  in
  scan 0

let uses_frame_pointer (instrs : int Isa.Instr.t array) =
  Array.exists
    (fun (ins : int Isa.Instr.t) ->
      match ins with
      | Push r | Pop r -> r = Isa.Reg.fp
      | Mov (d, Reg s) -> d = Isa.Reg.fp || s = Isa.Reg.fp
      | Load (_, _, b, _) | Store (_, _, b, _) -> b = Isa.Reg.fp
      | Nop | Mov (_, Imm _) | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _
      | F2i _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _ | Call _
      | Ret | Syscall _ ->
        false)
    instrs

let per_block_counts (g : Cfg.Graph.t) pred =
  Array.map
    (fun b ->
      List.fold_left
        (fun acc ins -> if pred ins then acc + 1 else acc)
        0
        (Cfg.Block.instructions b g.listing.instrs))
    g.blocks

let of_function img i =
  Atomic.incr extractions;
  let listing = Loader.Image.disassemble img i in
  let g = Cfg.Graph.build ~is_noret_call:(is_noret_call img) listing in
  let instrs = listing.instrs in
  (* constants and string references *)
  let constants =
    Array.fold_left
      (fun acc ins ->
        List.fold_left (fun acc v -> I64set.add v acc) acc (Isa.Instr.constants ins))
      I64set.empty instrs
  in
  let string_refs, _data_refs =
    Array.fold_left
      (fun (strs, datas) ins ->
        List.fold_left
          (fun (strs, datas) addr ->
            if Loader.Image.is_string_addr img addr then
              (I64set.add addr strs, datas)
            else (strs, I64set.add addr datas))
          (strs, datas) (Isa.Instr.data_refs ins))
      (I64set.empty, I64set.empty)
      instrs
  in
  (* call and code references *)
  let call_indices =
    Array.fold_left
      (fun acc (ins : int Isa.Instr.t) ->
        match ins with
        | Call idx -> Iset.add idx acc
        | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
        | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Jmp _ | Jcc _ | Jtable _
        | Ret | Push _ | Pop _ | Syscall _ ->
          acc)
      Iset.empty instrs
  in
  let num_import =
    Iset.fold
      (fun idx acc ->
        match Loader.Image.call_target img idx with
        | Some (Loader.Image.Import _) -> acc + 1
        | Some (Loader.Image.Internal _) | None -> acc)
      call_indices 0
  in
  let branch_targets =
    Array.fold_left
      (fun acc (ins : int Isa.Instr.t) ->
        match ins with
        | Jmp t | Jcc (_, t) -> Iset.add t acc
        | Jtable (_, ts) -> Array.fold_left (fun a t -> Iset.add t a) acc ts
        | Nop | Mov _ | Binop _ | Fbinop _ | Neg _ | Not _ | I2f _ | F2i _
        | Load _ | Store _ | Lea _ | Cmp _ | Fcmp _ | Call _ | Ret | Push _
        | Pop _ | Syscall _ ->
          acc)
      Iset.empty instrs
  in
  let num_ox = Iset.cardinal branch_targets + Iset.cardinal call_indices in
  let num_cx =
    Array.fold_left
      (fun acc ins -> if Isa.Instr.is_call ins then acc + 1 else acc)
      0 instrs
  in
  (* flags *)
  let classes = Cfg.Classify.histogram g in
  let class_count c =
    match List.assoc_opt c classes with Some n -> n | None -> 0
  in
  let flag =
    (if class_count Cfg.Classify.Noret > 0 then fun_flag_noret else 0)
    lor (if uses_frame_pointer instrs then fun_flag_frame else 0)
    lor if num_cx = 0 then fun_flag_leaf else 0
  in
  (* per-block statistics *)
  let instr_counts = Array.map Cfg.Block.instr_count g.blocks in
  let byte_sizes = Array.map (fun b -> b.Cfg.Block.byte_size) g.blocks in
  let i_min, i_max, i_avg, i_std = Util.Stats.of_ints instr_counts in
  let s_min, s_max, s_avg, s_std = Util.Stats.of_ints byte_sizes in
  let call_b = per_block_counts g Isa.Instr.is_call in
  let arith_b = per_block_counts g Isa.Instr.is_arith in
  let fp_b = per_block_counts g Isa.Instr.is_arith_fp in
  let c_min, c_max, c_avg, c_std = Util.Stats.of_ints call_b in
  let a_min, a_max, a_avg, a_std = Util.Stats.of_ints arith_b in
  let f_min, f_max, f_avg, f_std = Util.Stats.of_ints fp_b in
  let sum arr = Array.fold_left ( + ) 0 arr in
  let bc = Cfg.Centrality.betweenness g in
  let b_min, b_max, b_avg, b_std = Util.Stats.min_max_avg_std bc in
  let f = float_of_int in
  [|
    f (I64set.cardinal constants);
    f (I64set.cardinal string_refs);
    f (Array.length instrs);
    f (local_size instrs);
    f flag;
    f num_import;
    f num_ox;
    f num_cx;
    f listing.size;
    i_min;
    i_max;
    i_avg;
    i_std;
    s_min;
    s_max;
    s_avg;
    s_std;
    f (Cfg.Graph.block_count g);
    f (Cfg.Graph.edge_count g);
    f (Cfg.Graph.cyclomatic_complexity g);
    f (class_count Cfg.Classify.Normal);
    f (class_count Cfg.Classify.Indjump);
    f (class_count Cfg.Classify.Ret);
    f (class_count Cfg.Classify.Cndret);
    f (class_count Cfg.Classify.Noret);
    f (class_count Cfg.Classify.Enoret);
    f (class_count Cfg.Classify.Extern);
    f (class_count Cfg.Classify.Error);
    c_min;
    c_max;
    c_avg;
    c_std;
    f (sum call_b);
    a_min;
    a_max;
    a_avg;
    a_std;
    f (sum arith_b);
    f_min;
    f_max;
    f_avg;
    f_std;
    f (sum fp_b);
    b_min;
    b_max;
    b_avg;
    b_std;
    f (Cfg.Centrality.zero_count bc);
  |]

let of_image img =
  let n = Loader.Image.function_count img in
  let out = Array.make n [||] in
  Parallel.Pool.parallel_for n (fun i -> out.(i) <- of_function img i);
  out

let pp ppf v =
  Array.iteri
    (fun i name -> Format.fprintf ppf "%-22s %g@." name v.(i))
    Names.all
