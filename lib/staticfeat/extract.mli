(** Static feature extraction: one 48-element vector per function
    (Table I), computed from the disassembly and recovered CFG of a
    stripped image — never from source or symbols. *)

val of_function : Loader.Image.t -> int -> Util.Vec.t
(** Features of function [i] of the image. *)

val of_image : Loader.Image.t -> Util.Vec.t array
(** Features of every function, index-aligned with the function table.
    Functions are extracted in parallel on the default domain pool. *)

val extraction_count : unit -> int
(** Number of [of_function] invocations since the last reset — a hook
    for tests asserting the feature cache removes redundant work. *)

val reset_extraction_count : unit -> unit

val fun_flag_noret : int
val fun_flag_frame : int
val fun_flag_leaf : int
(** Bit values composing the [fun_flag] feature. *)

val noret_imports : string list
(** Import names treated as no-return (terminate basic blocks). *)

val pp : Format.formatter -> Util.Vec.t -> unit
(** Named rendering of a feature vector. *)
