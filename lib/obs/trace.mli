(** Span-based structured tracing for the scan pipeline.

    [with_span ~name f] times [f] as a span nested under the calling
    domain's innermost open span; [root_span] forces a new root (the
    scanner uses it for per-cell spans so a cell's subtree has the same
    shape whether it runs on the caller's domain or a pool worker).
    Parenting is strictly per-domain — a parent link never crosses a
    domain — and timestamps come from {!Util.Clock.elapsed_ns}.

    With no sink installed (the default) a span is one atomic load: the
    attribute thunk is not forced and no event is built, so
    instrumentation can stay in hot paths.  The JSONL sink is armed at
    program start by [PATCHECKO_TRACE=path]; the ring sink backs the
    golden-trace tests. *)

type event =
  | Start of {
      id : int;  (** process-unique, > 0 *)
      parent : int option;  (** same-domain enclosing span *)
      name : string;
      attrs : (string * string) list;
      domain : int;
      ts_ns : int;
    }
  | End of { id : int; domain : int; ts_ns : int }

type sink = { emit : event -> unit; flush : unit -> unit }

val set_sink : sink option -> unit
(** Install (or with [None] remove) the global sink.  The previous sink
    is flushed.  [None] disables tracing entirely. *)

val current_sink : unit -> sink option
(** The installed sink, if any (so callers can save/restore around a
    temporary sink swap). *)

val flush : unit -> unit

val with_span : name:string -> ?attrs:(unit -> (string * string) list) -> (unit -> 'a) -> 'a
(** Run the body inside a span.  [attrs] is only forced when a sink is
    installed.  The [End] event is emitted even if the body raises. *)

val root_span : name:string -> ?attrs:(unit -> (string * string) list) -> (unit -> 'a) -> 'a
(** Like {!with_span} but never links to an enclosing span. *)

val ring_sink : ?capacity:int -> unit -> sink * (unit -> event list)
(** A bounded in-memory sink (default capacity 65536 events; oldest
    events are overwritten).  The second component snapshots the events
    currently held, oldest first. *)

val with_ring : ?capacity:int -> (unit -> 'a) -> 'a * event list
(** Install a fresh ring sink around the body and return the events it
    captured.  Restores the previously installed sink afterwards. *)

val jsonl_sink : string -> sink
(** Append-to-file sink, one JSON event object per line. *)

val read_jsonl : string -> event list
(** Parse a file written by {!jsonl_sink}.  Raises {!Parse_error} on a
    malformed line (the message names the file and line number — a
    truncated final line from an interrupted run lands here) and on a
    file containing no events at all (empty, or nothing but blank
    lines); blank lines between events are skipped.  Raises [Sys_error]
    when the file cannot be opened. *)

exception Parse_error of string

val event_to_json : event -> string
val event_of_json : string -> event
val event_of_json_opt : string -> event option

(** {2 Span reconstruction} *)

type span = {
  name : string;
  attrs : (string * string) list;
  domain : int;
  path : string list;  (** names from the span's root down to itself *)
  start_ns : int;
  dur_ns : int;
  children : span list;
}

type violation =
  | Unmatched_start of int
  | Unmatched_end of int
  | Cross_domain_parent of int
  | Bad_interleave of int

val violation_to_string : violation -> string

val check : event list -> violation list
(** Replay the stream and report every well-formedness violation: a
    correct trace (however many domains produced it) yields []. *)

val completed : event list -> span list
(** Root spans (with nested children) for which both events are present,
    in start order. *)

val normalize : span list -> string list
(** Sorted, timestamp/domain/id-free one-line renderings
    ("path/to/span{k=v,...}") of every span in the forest — equal for
    two traces of the same logical work whatever the domain count. *)
