(* Process-wide counters, gauges and histograms.

   Write paths are lock-free: a counter or histogram is an array of
   [shards] atomic cells and every update touches only the cell indexed
   by the calling domain's id (mod shards), so pool workers never
   contend on a mutex or on one hot cache line.  Reads aggregate the
   shards; since every shard total is a sum of the updates that landed
   on it, the aggregate is independent of how work was scheduled across
   domains — the golden-trace tests rely on that.

   Metrics are registered by name in a global registry so call sites can
   hold handles ([let c = Metrics.counter "x"] at module level) and the
   CLI / tests can read everything back with [snapshot].  Registering
   the same name twice returns the same metric. *)

let shards = 64

type counter = int Atomic.t array

(* histograms bucket by bit-width: bucket i counts values v with
   2^(i-1) <= v < 2^i (bucket 0 counts v <= 0).  Cheap, deterministic,
   and wide enough for fuel counts. *)
let buckets = 63

type histogram = {
  cells : int Atomic.t array array;  (* shard -> bucket counts *)
  sums : int Atomic.t array;
  counts : int Atomic.t array;
}

type gauge = int Atomic.t

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let register name make cast =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m
  in
  Mutex.unlock registry_mutex;
  cast name m

let counter name =
  register name
    (fun () -> Counter (Array.init shards (fun _ -> Atomic.make 0)))
    (fun name -> function
      | Counter c -> c
      | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter"))

let gauge name =
  register name
    (fun () -> Gauge (Atomic.make 0))
    (fun name -> function
      | Gauge g -> g
      | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge"))

let histogram name =
  register name
    (fun () ->
      Histogram
        {
          cells = Array.init shards (fun _ -> Array.init buckets (fun _ -> Atomic.make 0));
          sums = Array.init shards (fun _ -> Atomic.make 0);
          counts = Array.init shards (fun _ -> Atomic.make 0);
        })
    (fun name -> function
      | Histogram h -> h
      | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram"))

let shard () = (Domain.self () :> int) mod shards

let add c n = ignore (Atomic.fetch_and_add c.(shard ()) n)
let incr c = add c 1
let set g v = Atomic.set g v

let bucket_of v =
  if v <= 0 then 0
  else
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    min (buckets - 1) (width 0 v)

let observe h v =
  let s = shard () in
  ignore (Atomic.fetch_and_add h.cells.(s).(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.sums.(s) v);
  ignore (Atomic.fetch_and_add h.counts.(s) 1)

(* --- aggregation -------------------------------------------------------- *)

let sum_shards a = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a

let counter_value c = sum_shards c
let gauge_value g = Atomic.get g

type histogram_summary = {
  count : int;
  sum : int;
  by_bucket : (int * int) list;  (* (bucket upper bound, count), non-empty buckets *)
}

let histogram_summary h =
  let by_bucket = ref [] in
  for b = buckets - 1 downto 0 do
    let n =
      Array.fold_left (fun acc row -> acc + Atomic.get row.(b)) 0 h.cells
    in
    if n > 0 then
      by_bucket := ((if b = 0 then 0 else 1 lsl b), n) :: !by_bucket
  done;
  { count = sum_shards h.counts; sum = sum_shards h.sums; by_bucket = !by_bucket }

type value =
  | Vcounter of int
  | Vgauge of int
  | Vhistogram of histogram_summary

let snapshot () =
  Mutex.lock registry_mutex;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  entries
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | Counter c -> Vcounter (counter_value c)
           | Gauge g -> Vgauge (gauge_value g)
           | Histogram h -> Vhistogram (histogram_summary h) ))
  |> List.sort compare

let find name = List.assoc_opt name (snapshot ())

let get_counter name =
  match find name with Some (Vcounter n) -> n | _ -> 0

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c
      | Gauge g -> Atomic.set g 0
      | Histogram h ->
        Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.cells;
        Array.iter (fun cell -> Atomic.set cell 0) h.sums;
        Array.iter (fun cell -> Atomic.set cell 0) h.counts)
    registry;
  Mutex.unlock registry_mutex

(* --- rendering ---------------------------------------------------------- *)

let value_to_string = function
  | Vcounter n -> string_of_int n
  | Vgauge n -> string_of_int n
  | Vhistogram { count; sum; by_bucket } ->
    Printf.sprintf "count %d, sum %d%s" count sum
      (if by_bucket = [] then ""
       else
         ", " ^ String.concat " "
           (List.map (fun (ub, n) -> Printf.sprintf "le%d:%d" ub n) by_bucket))

let render () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "%-28s %s\n" name (value_to_string v)))
    (snapshot ());
  Buffer.contents b
