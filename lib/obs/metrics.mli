(** Process-wide counters, gauges and histograms with lock-free
    per-domain shards.

    Updates touch one atomic cell chosen by the calling domain's id, so
    pool workers never contend; reads aggregate the shards, and because
    each aggregate is a plain sum of updates, the result is independent
    of how work was scheduled across domains.

    Metrics are registered by name; requesting an existing name returns
    the same underlying metric (requesting it as a different kind
    raises [Invalid_argument]).  Hold the handle at module level —
    registration takes a mutex, updates do not. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record one value: bucketed by bit width ([2^(i-1) <= v < 2^i];
    values [<= 0] land in bucket 0), with exact running count and sum. *)

(** {2 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

type histogram_summary = {
  count : int;
  sum : int;
  by_bucket : (int * int) list;
      (** (bucket upper bound, count) for non-empty buckets, ascending *)
}

val histogram_summary : histogram -> histogram_summary

type value =
  | Vcounter of int
  | Vgauge of int
  | Vhistogram of histogram_summary

val snapshot : unit -> (string * value) list
(** Every registered metric with its aggregated value, sorted by name. *)

val value_to_string : value -> string

val find : string -> value option

val get_counter : string -> int
(** The named counter's aggregate, or 0 if absent / not a counter. *)

val reset : unit -> unit
(** Zero every registered metric (registration survives).  For tests and
    benchmarks; call only while no scan is running. *)

val render : unit -> string
(** Human-readable one-line-per-metric table. *)
