(* Span-based structured tracing.

   A span is a named, timed region of the pipeline opened by [with_span]
   (child of the domain's innermost open span) or [root_span] (always a
   root).  Parenting is per-domain: each domain keeps its own stack of
   open spans, so spans emitted from pool workers interleave safely and
   a parent link never crosses a domain.  The scanner deliberately opens
   its per-cell spans with [root_span] — a cell must have the same shape
   whether it runs on the caller's domain (1-domain pool) or a worker.

   Events go to the installed sink.  With no sink installed (the
   default) [with_span] is one atomic load plus the call to the body, so
   instrumentation left in hot paths is effectively free; the attribute
   thunk is never forced.  Sinks:
   - ring buffer ([with_ring]) — bounded, in-memory, for tests;
   - JSONL ([jsonl_sink], armed at startup by [PATCHECKO_TRACE=path]) —
     one event object per line, read back by [read_jsonl]. *)

type event =
  | Start of {
      id : int;
      parent : int option;
      name : string;
      attrs : (string * string) list;
      domain : int;
      ts_ns : int;
    }
  | End of { id : int; domain : int; ts_ns : int }

type sink = { emit : event -> unit; flush : unit -> unit }

let enabled = Atomic.make false
let sink : sink option ref = ref None
let sink_mutex = Mutex.create ()

let set_sink s =
  Mutex.lock sink_mutex;
  (match !sink with Some old -> old.flush () | None -> ());
  sink := s;
  Atomic.set enabled (s <> None);
  Mutex.unlock sink_mutex

let current_sink () = !sink
let flush () = match !sink with Some s -> s.flush () | None -> ()
let emit ev = match !sink with Some s -> s.emit ev | None -> ()

(* --- span lifecycle ---------------------------------------------------- *)

let next_id = Atomic.make 1

(* innermost open span of the current domain, [0] meaning "none" *)
let current : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let domain_id () = (Domain.self () :> int)

let span_scope ~root ~name ~attrs f =
  let id = Atomic.fetch_and_add next_id 1 in
  let dom = domain_id () in
  let saved = Domain.DLS.get current in
  let parent = if root || saved = 0 then None else Some saved in
  emit
    (Start
       {
         id;
         parent;
         name;
         attrs = (match attrs with Some a -> a () | None -> []);
         domain = dom;
         ts_ns = Util.Clock.elapsed_ns ();
       });
  Domain.DLS.set current id;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current saved;
      emit (End { id; domain = domain_id (); ts_ns = Util.Clock.elapsed_ns () }))
    f

let with_span ~name ?attrs f =
  if not (Atomic.get enabled) then f ()
  else span_scope ~root:false ~name ~attrs f

let root_span ~name ?attrs f =
  if not (Atomic.get enabled) then f ()
  else span_scope ~root:true ~name ~attrs f

(* --- ring-buffer sink -------------------------------------------------- *)

let ring_sink ?(capacity = 65536) () =
  let buf = Array.make (max 1 capacity) None in
  let head = ref 0 in
  let count = ref 0 in
  let m = Mutex.create () in
  let emit ev =
    Mutex.lock m;
    buf.((!head + !count) mod Array.length buf) <- Some ev;
    if !count < Array.length buf then incr count
    else head := (!head + 1) mod Array.length buf;
    Mutex.unlock m
  in
  let events () =
    Mutex.lock m;
    let out =
      List.init !count (fun i ->
          match buf.((!head + i) mod Array.length buf) with
          | Some ev -> ev
          | None -> assert false)
    in
    Mutex.unlock m;
    out
  in
  ({ emit; flush = ignore }, events)

let with_ring ?capacity f =
  let s, events = ring_sink ?capacity () in
  let saved = !sink in
  set_sink (Some s);
  let v = Fun.protect ~finally:(fun () -> set_sink saved) f in
  (v, events ())

(* --- JSONL sink and reader --------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json = function
  | Start { id; parent; name; attrs; domain; ts_ns } ->
    let attrs_json =
      String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           attrs)
    in
    Printf.sprintf
      "{\"ev\":\"start\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"domain\":%d,\"ts\":%d,\"attrs\":{%s}}"
      id
      (match parent with Some p -> p | None -> 0)
      (json_escape name) domain ts_ns attrs_json
  | End { id; domain; ts_ns } ->
    Printf.sprintf "{\"ev\":\"end\",\"id\":%d,\"domain\":%d,\"ts\":%d}" id
      domain ts_ns

(* A minimal recursive-descent parser for exactly the object shape the
   sink emits (flat fields, one nested string-to-string "attrs" map).
   No external JSON dependency. *)
exception Parse_error of string

let event_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c at %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape"
           else
             match line.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub line (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
               | Some _ | None -> fail "bad \\u escape");
               pos := !pos + 5
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      advance ()
    done;
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail (Printf.sprintf "expected integer at %d" start)
  in
  let parse_attrs () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin advance (); [] end
    else begin
      let out = ref [] in
      let rec go () =
        let k = parse_string () in
        expect ':';
        let v = parse_string () in
        out := (k, v) :: !out;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); skip_ws (); go ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or } in attrs"
      in
      go ();
      List.rev !out
    end
  in
  (* fields, in any order *)
  let ev = ref "" and id = ref 0 and parent = ref 0 and name = ref "" in
  let domain = ref 0 and ts = ref 0 and attrs = ref [] in
  expect '{';
  skip_ws ();
  if peek () <> Some '}' then begin
    let rec field () =
      let k = parse_string () in
      expect ':';
      (match k with
      | "ev" -> ev := parse_string ()
      | "id" -> id := parse_int ()
      | "parent" -> parent := parse_int ()
      | "name" -> name := parse_string ()
      | "domain" -> domain := parse_int ()
      | "ts" -> ts := parse_int ()
      | "attrs" -> attrs := parse_attrs ()
      | other -> fail ("unknown field " ^ other));
      skip_ws ();
      match peek () with
      | Some ',' -> advance (); skip_ws (); field ()
      | Some '}' -> advance ()
      | _ -> fail "expected , or }"
    in
    field ()
  end
  else advance ();
  match !ev with
  | "start" ->
    Start
      {
        id = !id;
        parent = (if !parent = 0 then None else Some !parent);
        name = !name;
        attrs = !attrs;
        domain = !domain;
        ts_ns = !ts;
      }
  | "end" -> End { id = !id; domain = !domain; ts_ns = !ts }
  | other -> fail ("unknown event type " ^ other)

let event_of_json_opt line =
  match event_of_json line with v -> Some v | exception Parse_error _ -> None

let jsonl_sink path =
  let oc = open_out path in
  let m = Mutex.create () in
  let emit ev =
    Mutex.lock m;
    output_string oc (event_to_json ev);
    output_char oc '\n';
    Mutex.unlock m
  in
  let flush () =
    Mutex.lock m;
    Stdlib.flush oc;
    Mutex.unlock m
  in
  { emit; flush }

let read_jsonl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let out = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match event_of_json line with
         | ev -> out := ev :: !out
         | exception Parse_error msg ->
           (* a truncated write leaves a partial last line; a corrupt file
              fails earlier — either way, say where *)
           raise
             (Parse_error (Printf.sprintf "%s, line %d: %s" path !lineno msg))
     done
   with End_of_file -> ());
  if !out = [] then
    raise
      (Parse_error
         (Printf.sprintf "%s: no trace events (%s)" path
            (if !lineno = 0 then "empty file" else "only blank lines")));
  List.rev !out

(* arm the JSONL sink from the environment, mirroring PATCHECKO_FAULTS *)
let () =
  match Sys.getenv_opt "PATCHECKO_TRACE" with
  | None | Some "" -> ()
  | Some path ->
    set_sink (Some (jsonl_sink path));
    at_exit flush

(* --- span reconstruction ------------------------------------------------ *)

type span = {
  name : string;
  attrs : (string * string) list;
  domain : int;
  path : string list;
  start_ns : int;
  dur_ns : int;
  children : span list;
}

type violation =
  | Unmatched_start of int
  | Unmatched_end of int
  | Cross_domain_parent of int
  | Bad_interleave of int

let violation_to_string = function
  | Unmatched_start id -> Printf.sprintf "span %d started but never ended" id
  | Unmatched_end id -> Printf.sprintf "end event for unknown span %d" id
  | Cross_domain_parent id ->
    Printf.sprintf "span %d has a parent on another domain" id
  | Bad_interleave id ->
    Printf.sprintf "span %d ended out of stack order on its domain" id

(* Replay the event stream: per-domain stacks check LIFO nesting, parent
   links must point at the opener's domain-local enclosing span. *)
let check events =
  let open_tbl = Hashtbl.create 64 in
  (* id -> domain of Start *)
  let stacks = Hashtbl.create 8 in
  (* domain -> id list (innermost first) *)
  let stack dom = match Hashtbl.find_opt stacks dom with Some s -> s | None -> [] in
  let violations = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Start { id; parent; domain; _ } ->
        Hashtbl.replace open_tbl id domain;
        (match parent with
        | None -> ()
        | Some p -> (
          match stack domain with
          | top :: _ when top = p -> ()
          | _ ->
            violations :=
              (if Hashtbl.find_opt open_tbl p <> Some domain then
                 Cross_domain_parent id
               else Bad_interleave id)
              :: !violations));
        Hashtbl.replace stacks domain (id :: stack domain)
      | End { id; domain; _ } -> (
        match Hashtbl.find_opt open_tbl id with
        | None -> violations := Unmatched_end id :: !violations
        | Some _ -> (
          Hashtbl.remove open_tbl id;
          match stack domain with
          | top :: rest when top = id -> Hashtbl.replace stacks domain rest
          | _ ->
            violations := Bad_interleave id :: !violations;
            Hashtbl.replace stacks domain
              (List.filter (fun x -> x <> id) (stack domain)))))
    events;
  Hashtbl.iter (fun id _ -> violations := Unmatched_start id :: !violations) open_tbl;
  List.rev !violations

type start_info = {
  s_parent : int option;
  s_name : string;
  s_attrs : (string * string) list;
  s_domain : int;
  s_ts : int;
}

let completed events =
  let starts = Hashtbl.create 64 in
  let ends = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Start { id; parent; name; attrs; domain; ts_ns } ->
        Hashtbl.replace starts id
          { s_parent = parent; s_name = name; s_attrs = attrs;
            s_domain = domain; s_ts = ts_ns };
        order := id :: !order
      | End { id; ts_ns; _ } -> Hashtbl.replace ends id ts_ns)
    events;
  let order = List.rev !order in
  (* name path from the parent chain *)
  let rec path_of id =
    match Hashtbl.find_opt starts id with
    | None -> []
    | Some s -> (
      match s.s_parent with
      | None -> [ s.s_name ]
      | Some p -> path_of p @ [ s.s_name ])
  in
  let children_of id =
    List.filter_map
      (fun cid ->
        match Hashtbl.find_opt starts cid with
        | Some c when c.s_parent = Some id -> Some cid
        | _ -> None)
      order
  in
  let rec build id =
    match (Hashtbl.find_opt starts id, Hashtbl.find_opt ends id) with
    | Some s, Some end_ns ->
      Some
        {
          name = s.s_name;
          attrs = s.s_attrs;
          domain = s.s_domain;
          path = path_of id;
          start_ns = s.s_ts;
          dur_ns = end_ns - s.s_ts;
          children = List.filter_map build (children_of id);
        }
    | _ -> None
  in
  List.filter_map
    (fun id ->
      match Hashtbl.find_opt starts id with
      | Some s when s.s_parent = None -> build id
      | _ -> None)
    order

(* Timestamp/domain/id-free rendering: one line per span, sorted, so two
   traces of the same logical work compare equal whatever the domain
   count or scheduling.  Golden tests pin the exact output. *)
let normalize spans =
  let lines = ref [] in
  let rec walk s =
    let attrs =
      match s.attrs with
      | [] -> ""
      | attrs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> k ^ "=" ^ v)
               (List.sort compare attrs))
        ^ "}"
    in
    lines := (String.concat "/" s.path ^ attrs) :: !lines;
    List.iter walk s.children
  in
  List.iter walk spans;
  List.sort compare !lines
