(** Interval analysis over MinC IR vregs (forward, with widening).

    Environments map vregs to {!Interval.t}; absence means top (any
    value).  Conditional branches narrow both compared operands on each
    outgoing edge, so loop counters bounded by a constant-clamped limit
    get finite ranges while unguarded ones widen to infinity. *)

module IntMap : Map.S with type key = int

type env = Unreachable | Env of Interval.t IntMap.t

type t = {
  block_in : env array;
  block_out : env array;
  iterations : int;
}

val analyze : Minic.Ir.fundef -> t

val interval_at_entry : t -> int -> int -> Interval.t
(** [interval_at_entry t block vreg]; top when unknown, bot when the
    block is unreachable. *)
