module IntSet = Set.Make (Int)

module L = struct
  type t = IntSet.t

  let bottom = IntSet.empty
  let equal = IntSet.equal
  let join = IntSet.union
  let widen = IntSet.union
end

module Solver = Dataflow.Make (L)

type t = {
  live_in : IntSet.t array;
  live_out : IntSet.t array;
  iterations : int;
}

(* live-in(b) = gen(b) ∪ (live-out(b) \ kill(b)), instruction by
   instruction from the block's end *)
let block_transfer (blk : Minic.Ir.block) out =
  let after_term =
    List.fold_left
      (fun acc v -> IntSet.add v acc)
      out
      (Minic.Ir.term_uses blk.term)
  in
  List.fold_right
    (fun ins acc ->
      let acc =
        List.fold_left (fun s d -> IntSet.remove d s) acc (Minic.Ir.defs ins)
      in
      List.fold_left (fun s u -> IntSet.add u s) acc (Minic.Ir.uses ins))
    blk.body after_term

let analyze (f : Minic.Ir.fundef) =
  let g = Dataflow.graph_of_fundef f in
  let sol =
    Solver.solve
      {
        Solver.graph = g;
        direction = Dataflow.Backward;
        init = IntSet.empty;
        transfer = (fun b out -> block_transfer f.Minic.Ir.blocks.(b) out);
        refine = None;
      }
  in
  (* for a backward problem the solver's input is the block's exit state *)
  { live_in = sol.Solver.output; live_out = sol.Solver.input;
    iterations = sol.Solver.iterations }

let dead_stores (f : Minic.Ir.fundef) t =
  let dead = ref [] in
  Array.iteri
    (fun b (blk : Minic.Ir.block) ->
      let live =
        ref
          (List.fold_left
             (fun acc v -> IntSet.add v acc)
             t.live_out.(b)
             (Minic.Ir.term_uses blk.term))
      in
      let body = Array.of_list blk.body in
      for i = Array.length body - 1 downto 0 do
        let ins = body.(i) in
        let defs = Minic.Ir.defs ins in
        if
          (not (Minic.Ir.has_side_effect ins))
          && defs <> []
          && List.for_all (fun d -> not (IntSet.mem d !live)) defs
        then dead := (b, i) :: !dead;
        live := List.fold_left (fun s d -> IntSet.remove d s) !live defs;
        live := List.fold_left (fun s u -> IntSet.add u s) !live (Minic.Ir.uses ins)
      done)
    f.Minic.Ir.blocks;
  !dead
