module IntMap = Map.Make (Int)

type env = Unreachable | Env of int64 IntMap.t

module L = struct
  type t = env

  let bottom = Unreachable

  let equal a b =
    match (a, b) with
    | Unreachable, Unreachable -> true
    | Env x, Env y -> IntMap.equal Int64.equal x y
    | Unreachable, Env _ | Env _, Unreachable -> false

  (* pointwise: only bindings present and equal on both sides survive *)
  let join a b =
    match (a, b) with
    | Unreachable, x | x, Unreachable -> x
    | Env x, Env y ->
      Env
        (IntMap.merge
           (fun _ l r ->
             match (l, r) with
             | Some u, Some v when Int64.equal u v -> Some u
             | _ -> None)
           x y)

  let widen = join
end

module Solver = Dataflow.Make (L)

type t = { block_in : env array; block_out : env array; iterations : int }

let eval_binop = Minic.Opt.eval_binop

let transfer_ins env (ins : Minic.Ir.ins) =
  let find v = IntMap.find_opt v env in
  let operand (o : Minic.Ir.operand) =
    match o with Oimm c -> Some c | Ovreg v -> find v
  in
  let set d v env = match v with Some c -> IntMap.add d c env | None -> IntMap.remove d env in
  match ins with
  | Imov (d, o) -> set d (operand o) env
  | Ibin (op, d, a, o) ->
    let v =
      match (find a, operand o) with
      | Some ca, Some cb -> eval_binop op ca cb
      | _ -> None
    in
    set d v env
  | Ifbin (op, d, a, b) ->
    let v =
      match (find a, find b) with
      | Some ca, Some cb -> Some (Minic.Opt.eval_fbinop op ca cb)
      | _ -> None
    in
    set d v env
  | Ineg (d, a) -> set d (Option.map Int64.neg (find a)) env
  | Inot (d, a) -> set d (Option.map Int64.lognot (find a)) env
  | Ii2f (d, a) ->
    set d (Option.map (fun c -> Int64.bits_of_float (Int64.to_float c)) (find a)) env
  | If2i (d, a) ->
    set d
      (Option.map
         (fun c ->
           let fv = Int64.float_of_bits c in
           if Float.is_nan fv then 0L else Int64.of_float fv)
         (find a))
      env
  | Iload (_, d, _, _) | Ilea_slot (d, _) -> IntMap.remove d env
  | Ilea_data (d, a) -> IntMap.add d a env
  | Istore _ -> env
  | Icall (dst, _, _) | Isyscall (dst, _, _) -> (
    match dst with Some d -> IntMap.remove d env | None -> env)

let analyze (f : Minic.Ir.fundef) =
  let transfer b state =
    match state with
    | Unreachable -> Unreachable
    | Env env ->
      Env (List.fold_left transfer_ins env f.Minic.Ir.blocks.(b).body)
  in
  (* branch edges on a known constant condition make the dead arm
     unreachable *)
  let refine ~src ~dst state =
    match state with
    | Unreachable -> Unreachable
    | Env env -> (
      let value v = IntMap.find_opt v env in
      match f.Minic.Ir.blocks.(src).term with
      | Minic.Ir.Tbr (c, v, o, btrue, bfalse) when btrue <> bfalse -> (
        let ov =
          match o with Minic.Ir.Oimm x -> Some x | Ovreg w -> value w
        in
        match (value v, ov) with
        | Some cv, Some co ->
          let holds = Isa.Cond.holds c (Int64.compare cv co) in
          let taken = if holds then btrue else bfalse in
          if dst = taken then state else Unreachable
        | _ -> state)
      | _ -> state)
  in
  let g = Dataflow.graph_of_fundef f in
  let sol =
    Solver.solve
      {
        Solver.graph = g;
        direction = Dataflow.Forward;
        init = Env IntMap.empty;
        transfer;
        refine = Some refine;
      }
  in
  { block_in = sol.Solver.input; block_out = sol.Solver.output;
    iterations = sol.Solver.iterations }

let constant_at_entry t block vreg =
  match t.block_in.(block) with
  | Unreachable -> None
  | Env env -> IntMap.find_opt vreg env

let count_constants t =
  Array.fold_left
    (fun acc e ->
      match e with Unreachable -> acc | Env m -> acc + IntMap.cardinal m)
    0 t.block_in
