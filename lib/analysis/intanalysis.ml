module IntMap = Map.Make (Int)

type env = Unreachable | Env of Interval.t IntMap.t

(* absent key = top; bot-valued bindings never enter the map *)
let lookup env v =
  match IntMap.find_opt v env with Some i -> i | None -> Interval.top

let bind d i env =
  if Interval.equal i Interval.top then IntMap.remove d env
  else IntMap.add d i env

module L = struct
  type t = env

  let bottom = Unreachable

  let equal a b =
    match (a, b) with
    | Unreachable, Unreachable -> true
    | Env x, Env y -> IntMap.equal Interval.equal x y
    | Unreachable, Env _ | Env _, Unreachable -> false

  let merge_with f a b =
    match (a, b) with
    | Unreachable, x | x, Unreachable -> x
    | Env x, Env y ->
      Env
        (IntMap.merge
           (fun _ l r ->
             match (l, r) with
             | Some u, Some v ->
               let m = f u v in
               if Interval.equal m Interval.top then None else Some m
             | _ -> None)
           x y)

  let join = merge_with Interval.join
  let widen = merge_with (fun old next -> Interval.widen old next)
end

module Solver = Dataflow.Make (L)

type t = { block_in : env array; block_out : env array; iterations : int }

let transfer_ins env (ins : Minic.Ir.ins) =
  let operand (o : Minic.Ir.operand) =
    match o with Oimm c -> Interval.of_const c | Ovreg v -> lookup env v
  in
  match ins with
  | Imov (d, o) -> bind d (operand o) env
  | Ibin (op, d, a, o) ->
    let ia = lookup env a and ib = operand o in
    let r =
      match op with
      | Isa.Instr.Add -> Interval.add ia ib
      | Sub -> Interval.sub ia ib
      | Mul -> Interval.mul ia ib
      | Div -> Interval.div ia ib
      | Rem -> Interval.rem ia ib
      | Shl -> Interval.shift_left ia ib
      | Shr -> Interval.shift_right ia ib
      | And | Or | Xor -> Interval.top
    in
    bind d r env
  | Ineg (d, a) -> bind d (Interval.neg (lookup env a)) env
  | Inot (d, a) -> bind d (Interval.lognot (lookup env a)) env
  | Ifbin (_, d, _, _) | Ii2f (d, _) | If2i (d, _)
  | Iload (_, d, _, _) | Ilea_slot (d, _) | Ilea_data (d, _) ->
    bind d Interval.top env
  | Istore _ -> env
  | Icall (dst, _, _) | Isyscall (dst, _, _) -> (
    match dst with Some d -> bind d Interval.top env | None -> env)

let analyze (f : Minic.Ir.fundef) =
  let transfer b state =
    match state with
    | Unreachable -> Unreachable
    | Env env ->
      Env (List.fold_left transfer_ins env f.Minic.Ir.blocks.(b).body)
  in
  let refine ~src ~dst state =
    match state with
    | Unreachable -> Unreachable
    | Env env -> (
      match f.Minic.Ir.blocks.(src).term with
      | Minic.Ir.Tbr (c, v, o, btrue, bfalse) when btrue <> bfalse ->
        let cond = if dst = btrue then c else Isa.Cond.negate c in
        let iv = lookup env v in
        let io =
          match o with
          | Minic.Ir.Oimm x -> Interval.of_const x
          | Ovreg w -> lookup env w
        in
        let iv', io' = Interval.refine cond iv io in
        if Interval.is_bot iv' || Interval.is_bot io' then Unreachable
        else begin
          let env = bind v iv' env in
          let env =
            match o with Minic.Ir.Ovreg w -> bind w io' env | Oimm _ -> env
          in
          Env env
        end
      | _ -> state)
  in
  let g = Dataflow.graph_of_fundef f in
  let sol =
    Solver.solve
      {
        Solver.graph = g;
        direction = Dataflow.Forward;
        init = Env IntMap.empty;
        transfer;
        refine = Some refine;
      }
  in
  { block_in = sol.Solver.input; block_out = sol.Solver.output;
    iterations = sol.Solver.iterations }

let interval_at_entry t block vreg =
  match t.block_in.(block) with
  | Unreachable -> Interval.bot
  | Env env -> lookup env vreg
