type bound = NegInf | Fin of int64 | PosInf

type t = { lo : bound; hi : bound }

let bot = { lo = PosInf; hi = NegInf }
let top = { lo = NegInf; hi = PosInf }
let is_bot t = t == bot || t.lo = PosInf || t.hi = NegInf
let of_const c = { lo = Fin c; hi = Fin c }

let make lo hi =
  if lo > hi then bot else { lo = Fin lo; hi = Fin hi }

let bound_compare a b =
  match (a, b) with
  | NegInf, NegInf | PosInf, PosInf -> 0
  | NegInf, _ -> -1
  | _, NegInf -> 1
  | PosInf, _ -> 1
  | _, PosInf -> -1
  | Fin x, Fin y -> Int64.compare x y

let bmin a b = if bound_compare a b <= 0 then a else b
let bmax a b = if bound_compare a b >= 0 then a else b

let equal a b =
  (is_bot a && is_bot b) || (a.lo = b.lo && a.hi = b.hi)

let join a b =
  if is_bot a then b
  else if is_bot b then a
  else { lo = bmin a.lo b.lo; hi = bmax a.hi b.hi }

let meet a b =
  if is_bot a || is_bot b then bot
  else
    let lo = bmax a.lo b.lo and hi = bmin a.hi b.hi in
    if bound_compare lo hi > 0 then bot else { lo; hi }

let widen old next =
  if is_bot old then next
  else if is_bot next then old
  else
    {
      lo = (if bound_compare next.lo old.lo < 0 then NegInf else old.lo);
      hi = (if bound_compare next.hi old.hi > 0 then PosInf else old.hi);
    }

let contains t v = not (is_bot t) && bound_compare t.lo (Fin v) <= 0
                   && bound_compare (Fin v) t.hi <= 0

let may_be_negative t = (not (is_bot t)) && bound_compare t.lo (Fin 0L) < 0
let is_bounded_above t = match t.hi with Fin _ -> true | PosInf -> false | NegInf -> true

let singleton t =
  match (t.lo, t.hi) with
  | Fin a, Fin b when Int64.equal a b -> Some a
  | _ -> None

(* saturating bound arithmetic: finite overflow escapes to infinity *)

let badd a b =
  match (a, b) with
  | NegInf, PosInf | PosInf, NegInf -> invalid_arg "Interval.badd"
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y ->
    let s = Int64.add x y in
    (* overflow iff operands share a sign the sum does not *)
    if x >= 0L && y >= 0L && s < 0L then PosInf
    else if x < 0L && y < 0L && s >= 0L then NegInf
    else Fin s

let bneg = function NegInf -> PosInf | PosInf -> NegInf | Fin x ->
  if Int64.equal x Int64.min_int then PosInf else Fin (Int64.neg x)

let bmul a b =
  let sign_of = function
    | NegInf -> -1
    | PosInf -> 1
    | Fin x -> compare x 0L
  in
  match (a, b) with
  | Fin x, Fin y ->
    let p = Int64.mul x y in
    if x <> 0L && (Int64.div p x <> y || (Int64.equal x (-1L) && Int64.equal y Int64.min_int))
    then if sign_of a * sign_of b >= 0 then PosInf else NegInf
    else Fin p
  | _ ->
    let s = sign_of a * sign_of b in
    if s > 0 then PosInf else if s < 0 then NegInf else Fin 0L

let add a b =
  if is_bot a || is_bot b then bot
  else { lo = badd a.lo b.lo; hi = badd a.hi b.hi }

let neg a =
  if is_bot a then bot else { lo = bneg a.hi; hi = bneg a.lo }

let sub a b = add a (neg b)

let lognot a = sub (of_const (-1L)) a

let of_bound_list l =
  List.fold_left (fun acc b -> { lo = bmin acc.lo b; hi = bmax acc.hi b })
    bot l

let mul a b =
  if is_bot a || is_bot b then bot
  else
    of_bound_list
      [ bmul a.lo b.lo; bmul a.lo b.hi; bmul a.hi b.lo; bmul a.hi b.hi ]

(* Division/shift results are bounded by the operands' magnitudes; rather
   than enumerate sign cases exactly, bound the magnitude of the result
   conservatively by the dividend's. *)
let magnitude_bound a =
  match (a.lo, a.hi) with
  | Fin lo, Fin hi -> Some (bmax (bneg (Fin lo)) (Fin hi))
  | _ -> None

let sym_of_magnitude = function
  | Some (Fin m) -> { lo = bneg (Fin m); hi = Fin m }
  | Some NegInf | Some PosInf | None -> top

let div a b =
  if is_bot a || is_bot b then bot
  else sym_of_magnitude (magnitude_bound a)

let rem a b =
  if is_bot a || is_bot b then bot
  else begin
    (* |a rem b| < |b|, sign follows a *)
    let mag =
      match magnitude_bound b with
      | Some (Fin m) when m > 0L -> Some (Fin (Int64.sub m 1L))
      | _ -> None
    in
    let r = sym_of_magnitude mag in
    (* a non-negative dividend keeps the remainder non-negative *)
    if not (may_be_negative a) then meet r { lo = Fin 0L; hi = PosInf } else r
  end

let shift_left a b =
  if is_bot a || is_bot b then bot
  else
    match (singleton b, a.lo, a.hi) with
    | Some s, Fin lo, Fin hi when s >= 0L && s < 63L ->
      let k = Int64.to_int s in
      join (of_const (Int64.shift_left lo k)) (of_const (Int64.shift_left hi k))
      |> fun r ->
      (* recheck for overflow: shift may wrap *)
      if Int64.shift_right (Int64.shift_left lo k) k = lo
         && Int64.shift_right (Int64.shift_left hi k) k = hi
      then r
      else top
    | _ -> top

let shift_right a b =
  if is_bot a || is_bot b then bot
  else if not (may_be_negative a) then
    (* logical shift of a non-negative value shrinks it *)
    match a.hi with Fin hi -> { lo = Fin 0L; hi = Fin hi } | _ -> { lo = Fin 0L; hi = PosInf }
  else top

let bpred = function Fin x when x > Int64.min_int -> Fin (Int64.sub x 1L) | b -> b
let bsucc = function Fin x when x < Int64.max_int -> Fin (Int64.add x 1L) | b -> b

let refine (c : Isa.Cond.t) a b =
  if is_bot a || is_bot b then (bot, bot)
  else
    match c with
    | Eq -> let m = meet a b in (m, m)
    | Ne ->
      (* only singleton exclusion at the ends is representable *)
      let shrink x y =
        match singleton y with
        | Some v ->
          if x.lo = Fin v then { x with lo = bsucc x.lo }
          else if x.hi = Fin v then { x with hi = bpred x.hi }
          else x
        | None -> x
      in
      let a' = shrink a b and b' = shrink b a in
      ((if bound_compare a'.lo a'.hi > 0 then bot else a'),
       if bound_compare b'.lo b'.hi > 0 then bot else b')
    | Lt ->
      ( meet a { lo = NegInf; hi = bpred b.hi },
        meet b { lo = bsucc a.lo; hi = PosInf } )
    | Le ->
      (meet a { lo = NegInf; hi = b.hi }, meet b { lo = a.lo; hi = PosInf })
    | Gt ->
      ( meet a { lo = bsucc b.lo; hi = PosInf },
        meet b { lo = NegInf; hi = bpred a.hi } )
    | Ge ->
      (meet a { lo = b.lo; hi = PosInf }, meet b { lo = NegInf; hi = a.hi })

let bound_to_string = function
  | NegInf -> "-inf"
  | PosInf -> "+inf"
  | Fin x -> Int64.to_string x

let to_string t =
  if is_bot t then "bot"
  else Printf.sprintf "[%s, %s]" (bound_to_string t.lo) (bound_to_string t.hi)

let pp ppf t = Format.pp_print_string ppf (to_string t)
