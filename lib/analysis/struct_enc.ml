(* Structural-fingerprint encoders: the same canonical encoding
   ([Similarity.Structfp]) computed from two very different inputs.

   AST side — a recursive fold over the MinC AST that mirrors what the
   lowering pipeline does to control flow.  The skeleton uses
   *dominance-style nesting*: statements after an if/while nest inside
   the construct's node, because in the recovered binary the join/exit
   block is dominated by the condition/loop header and therefore lands
   inside its dominator subtree.  Short-circuit connectives add one
   nested [cond] per extra leaf test, matching their lowering into a
   chain of branch blocks; a comparison materialised as a value adds the
   diamond [lower_bool_value] emits.

   Binary side — the dominator tree of the recovered CFG pruned to
   control nodes: natural-loop headers become [loop] nodes (the header's
   own branch is the loop test, so it is swallowed), remaining
   conditional-branch blocks become [cond], jump tables [multi], and
   plain blocks pass their dominated subtrees through.

   Both sides fill the same operator-class profile (bucketed by
   loop-nesting depth) and the same scalar shape profile, so the
   weighted distance in [Similarity.Structfp] is directly comparable
   across the AST/CFG divide. *)

module A = Minic.Ast
module S = Similarity.Structfp

(* operator classes *)
let c_arith = 0
let c_muldiv = 1
let c_bitwise = 2
let c_compare = 3
let c_mem_read = 4
let c_mem_write = 5
let c_call = 6
let c_other = 7
let op_classes = 8
let depth_buckets = 3
let ops_length = op_classes * depth_buckets

type acc = {
  ops : float array;
  mutable consts : int;
  mutable cmag : float;  (* sum of log2 (1 + |const|) *)
}

let fresh_acc () = { ops = Array.make ops_length 0.0; consts = 0; cmag = 0.0 }

let bump st cls depth =
  let b = if depth >= depth_buckets then depth_buckets - 1 else depth in
  let b = if b < 0 then 0 else b in
  st.ops.((cls * depth_buckets) + b) <- st.ops.((cls * depth_buckets) + b) +. 1.0

let const64 st v =
  st.consts <- st.consts + 1;
  st.cmag <- st.cmag +. (log (1.0 +. Int64.to_float (Int64.abs v)) /. log 2.0)

let profile ~deriv ~segments ~tree st =
  let cmean =
    if st.consts = 0 then 0.0 else st.cmag /. float_of_int st.consts
  in
  [|
    float_of_int (S.tree_size tree);
    float_of_int (S.tree_height tree);
    float_of_int (S.count_label S.loop_label tree);
    float_of_int (S.count_label S.cond_label tree);
    float_of_int (S.count_label S.multi_label tree);
    float_of_int (S.label_nesting S.loop_label tree);
    float_of_int (S.max_branching tree);
    float_of_int deriv;
    float_of_int segments;
    float_of_int st.consts;
    cmean;
  |]

(* --- AST side ----------------------------------------------------------- *)

let int_class = function
  | A.Badd | A.Bsub -> c_arith
  | A.Bmul | A.Bdiv | A.Brem -> c_muldiv
  | A.Bandb | A.Borb | A.Bxor | A.Bshl | A.Bshr -> c_bitwise
  | A.Beq | A.Bne | A.Blt | A.Ble | A.Bgt | A.Bge | A.Bland | A.Blor ->
    c_compare

let is_bool_root = function
  | A.Ebinop
      ( (A.Beq | A.Bne | A.Blt | A.Ble | A.Bgt | A.Bge | A.Bland | A.Blor),
        _,
        _ ) ->
    true
  | A.Eint _ | A.Efloat _ | A.Estr _ | A.Evar _ | A.Eindex _ | A.Eaddr _
  | A.Eunop _ | A.Ebinop _ | A.Ecall _ ->
    false

let rec chain n inner =
  if n <= 0 then inner else [ S.node S.cond_label (chain (n - 1) inner) ]

(* value context: ops, consts, and the skeleton nodes of any boolean
   subexpression materialised as 0/1 *)
let rec value st depth e : S.tree list =
  match e with
  | A.Eint v ->
    const64 st v;
    []
  | A.Efloat _ | A.Estr _ | A.Evar _ -> []
  | A.Eindex (b, i) ->
    bump st c_mem_read depth;
    bump st c_arith depth;
    value st depth b @ value st depth i
  | A.Eaddr (b, i) ->
    bump st c_arith depth;
    value st depth b @ value st depth i
  | A.Eunop (A.Uneg, e) ->
    bump st c_arith depth;
    value st depth e
  | A.Eunop (A.Ubnot, e) ->
    bump st c_bitwise depth;
    value st depth e
  | A.Ebinop (_, _, _) when is_bool_root e ->
    let tests, kids = cond st depth e in
    (* lower_bool_value: one branch block per leaf test, each dominating
       the rest of the diamond *)
    chain tests kids
  | A.Ebinop (op, a, b) ->
    bump st (int_class op) depth;
    value st depth a @ value st depth b
  | A.Ecall (_, args) ->
    bump st c_call depth;
    List.concat_map (value st depth) args

(* branch context: the number of leaf tests the condition lowers to (one
   Cmp+Jcc each), plus skeleton nodes from operand evaluation *)
and cond st depth e : int * S.tree list =
  match e with
  | A.Ebinop ((A.Bland | A.Blor), a, b) ->
    let ta, ka = cond st depth a in
    let tb, kb = cond st depth b in
    (ta + tb, ka @ kb)
  | A.Ebinop ((A.Beq | A.Bne | A.Blt | A.Ble | A.Bgt | A.Bge), a, b) ->
    bump st c_compare depth;
    (1, value st depth a @ value st depth b)
  | A.Eint v ->
    (* constant condition folds to an unconditional jump *)
    const64 st v;
    (0, [])
  | A.Efloat _ | A.Estr _ | A.Evar _ | A.Eindex _ | A.Eaddr _ | A.Eunop _
  | A.Ebinop _ | A.Ecall _ ->
    (* truthiness test against zero *)
    bump st c_compare depth;
    (1, value st depth e)

let rec stmts st depth = function
  | [] -> []
  | s :: rest -> (
    match s with
    | A.Sif (c, thens, elses) ->
      let tests, ck = cond st depth c in
      if tests = 0 then
        ck @ stmts st depth thens @ stmts st depth elses @ stmts st depth rest
      else
        [
          S.node S.cond_label
            (chain (tests - 1) (stmts st depth thens)
            @ ck @ stmts st depth elses @ stmts st depth rest);
        ]
    | A.Swhile (c, body) ->
      (* the test re-runs every iteration; the header's own branch is
         the loop node, extra leaf tests nest inside it *)
      let tests, ck = cond st (depth + 1) c in
      [
        S.node S.loop_label
          (chain
             (max 0 (tests - 1))
             (stmts st (depth + 1) body)
          @ ck @ stmts st depth rest);
      ]
    | A.Sfor (_, start, bound, step, body) ->
      let sk = value st depth start in
      bump st c_compare (depth + 1);
      let bk = value st (depth + 1) bound in
      bump st c_arith (depth + 1);
      let stk = value st (depth + 1) step in
      sk
      @ [
          S.node S.loop_label
            (stmts st (depth + 1) body @ bk @ stk @ stmts st depth rest);
        ]
    | A.Sswitch (e, cases, default) ->
      let ek = value st depth e in
      (* jump-table form: normalise (Sub), two range checks, dispatch *)
      bump st c_arith depth;
      bump st c_compare depth;
      bump st c_compare depth;
      let inner =
        List.concat_map (fun (_, b) -> stmts st depth b) cases
        @ stmts st depth default @ stmts st depth rest
      in
      ek
      @ [
          S.node S.cond_label
            [ S.node S.cond_label [ S.node S.multi_label inner ] ];
        ]
    | A.Sindexset (b, i, e) ->
      bump st c_mem_write depth;
      bump st c_arith depth;
      value st depth b @ value st depth i @ value st depth e
      @ stmts st depth rest
    | A.Sdecl (_, _, Some e) | A.Sassign (_, e) | A.Sexpr e ->
      value st depth e @ stmts st depth rest
    | A.Sreturn (Some e) -> value st depth e @ stmts st depth rest
    | A.Sdecl (_, _, None) | A.Sarray _ | A.Sreturn None | A.Sbreak
    | A.Scontinue ->
      stmts st depth rest)

(* op-bearing straight segments: maximal runs of simple statements that
   contribute at least one counted operator — each run ends up as one
   basic block's worth of straight code, so the binary-side equivalent
   is the count of reachable blocks with a counted op *)
let rec expr_has_op = function
  | A.Eint _ | A.Efloat _ | A.Estr _ | A.Evar _ -> false
  | A.Eindex _ | A.Eaddr _ | A.Eunop _ | A.Ebinop _ | A.Ecall _ -> true

and segments_of stmts =
  let total = ref 0 in
  let has_op = ref false in
  let close () =
    if !has_op then incr total;
    has_op := false
  in
  List.iter
    (fun s ->
      match s with
      | A.Sif (c, thens, elses) ->
        (* the test's compare closes the current block *)
        (match c with A.Eint _ -> () | _ -> has_op := true);
        close ();
        total := !total + segments_of thens + segments_of elses
      | A.Swhile (c, body) ->
        close ();
        (match c with A.Eint _ -> () | _ -> incr total);
        total := !total + segments_of body
      | A.Sfor (_, start, _, _, body) ->
        if expr_has_op start then has_op := true;
        close ();
        (* head block (compare) and step block (increment) *)
        total := !total + 2 + segments_of body
      | A.Sswitch (e, cases, default) ->
        ignore (expr_has_op e : bool);
        has_op := true;  (* the normalising subtract + range checks *)
        close ();
        List.iter (fun (_, b) -> total := !total + segments_of b) cases;
        total := !total + segments_of default
      | A.Sreturn e ->
        (match e with Some e when expr_has_op e -> has_op := true | _ -> ());
        close ()
      | A.Sbreak | A.Scontinue -> close ()
      | A.Sindexset _ -> has_op := true
      | A.Sdecl (_, _, Some e) | A.Sassign (_, e) | A.Sexpr e ->
        if expr_has_op e then has_op := true
      | A.Sdecl (_, _, None) | A.Sarray _ -> ())
    stmts;
  close ();
  !total

let of_func (f : A.func) =
  let st = fresh_acc () in
  let tree = S.node S.root_label (stmts st 0 f.A.body) in
  let deriv =
    (* single-block functions have derivation length 0; loop-free
       control flow collapses in one step; each loop-nesting level costs
       one more *)
    if
      S.count_label S.loop_label tree = 0
      && S.count_label S.cond_label tree = 0
      && S.count_label S.multi_label tree = 0
    then 0
    else S.label_nesting S.loop_label tree + 1
  in
  S.make ~ops:st.ops
    ~skel:(profile ~deriv ~segments:(segments_of f.A.body) ~tree st)
    ~tree

(* --- binary side -------------------------------------------------------- *)

let instr_class (ins : int Isa.Instr.t) =
  match ins with
  | Isa.Instr.Binop ((Isa.Instr.Add | Isa.Instr.Sub), _, _, _)
  | Isa.Instr.Neg _ ->
    Some c_arith
  | Isa.Instr.Binop ((Isa.Instr.Mul | Isa.Instr.Div | Isa.Instr.Rem), _, _, _)
    ->
    Some c_muldiv
  | Isa.Instr.Binop
      ( ( Isa.Instr.And | Isa.Instr.Or | Isa.Instr.Xor | Isa.Instr.Shl
        | Isa.Instr.Shr ),
        _,
        _,
        _ )
  | Isa.Instr.Not _ ->
    Some c_bitwise
  | Isa.Instr.Cmp _ | Isa.Instr.Fcmp _ -> Some c_compare
  | Isa.Instr.Load _ -> Some c_mem_read
  | Isa.Instr.Store _ -> Some c_mem_write
  | Isa.Instr.Call _ -> Some c_call
  | Isa.Instr.Fbinop _ | Isa.Instr.I2f _ | Isa.Instr.F2i _ -> Some c_other
  | Isa.Instr.Nop | Isa.Instr.Mov _ | Isa.Instr.Lea _ | Isa.Instr.Jmp _
  | Isa.Instr.Jcc _ | Isa.Instr.Jtable _ | Isa.Instr.Ret | Isa.Instr.Push _
  | Isa.Instr.Pop _ | Isa.Instr.Syscall _ ->
    None

let instr_imm (ins : int Isa.Instr.t) =
  match ins with
  | Isa.Instr.Mov (_, Isa.Instr.Imm v)
  | Isa.Instr.Binop (_, _, _, Isa.Instr.Imm v)
  | Isa.Instr.Cmp (_, Isa.Instr.Imm v) ->
    Some v
  | Isa.Instr.Mov (_, Isa.Instr.Reg _)
  | Isa.Instr.Binop (_, _, _, Isa.Instr.Reg _)
  | Isa.Instr.Cmp (_, Isa.Instr.Reg _)
  | Isa.Instr.Nop | Isa.Instr.Fbinop _ | Isa.Instr.Neg _ | Isa.Instr.Not _
  | Isa.Instr.I2f _ | Isa.Instr.F2i _ | Isa.Instr.Load _ | Isa.Instr.Store _
  | Isa.Instr.Lea _ | Isa.Instr.Fcmp _ | Isa.Instr.Jmp _ | Isa.Instr.Jcc _
  | Isa.Instr.Jtable _ | Isa.Instr.Call _ | Isa.Instr.Ret | Isa.Instr.Push _
  | Isa.Instr.Pop _ | Isa.Instr.Syscall _ ->
    None

let of_graph (g : Cfg.Graph.t) =
  let st = fresh_acc () in
  let dom = Cfg.Dominators.compute g in
  let nest = Cfg.Loopnest.build g dom in
  let instrs = g.Cfg.Graph.listing.Isa.Disasm.instrs in
  let n = Cfg.Graph.block_count g in
  (* operator profile and op-bearing blocks over the reachable region *)
  let segments = ref 0 in
  for b = 0 to n - 1 do
    if Cfg.Dominators.reachable dom b then begin
      let blk = g.Cfg.Graph.blocks.(b) in
      let depth = Cfg.Loopnest.block_depth nest b in
      let bearing = ref false in
      for i = blk.Cfg.Block.first to blk.Cfg.Block.last do
        (match instr_class instrs.(i) with
        | Some cls ->
          bump st cls depth;
          bearing := true
        | None -> ());
        match instr_imm instrs.(i) with
        | Some v -> const64 st v
        | None -> ()
      done;
      if !bearing then incr segments
    end
  done;
  (* skeleton: the dominator tree pruned to control nodes *)
  let children = Array.make (max n 1) [] in
  for b = n - 1 downto 1 do
    match Cfg.Dominators.idom dom b with
    | Some p -> children.(p) <- b :: children.(p)
    | None -> ()
  done;
  let rec walk b =
    let kids = List.concat_map walk children.(b) in
    if Cfg.Loopnest.is_header nest b then [ S.node S.loop_label kids ]
    else begin
      let blk = g.Cfg.Graph.blocks.(b) in
      match instrs.(blk.Cfg.Block.last) with
      | Isa.Instr.Jcc _ -> [ S.node S.cond_label kids ]
      | Isa.Instr.Jtable _ -> [ S.node S.multi_label kids ]
      | Isa.Instr.Nop | Isa.Instr.Mov _ | Isa.Instr.Binop _
      | Isa.Instr.Fbinop _ | Isa.Instr.Neg _ | Isa.Instr.Not _
      | Isa.Instr.I2f _ | Isa.Instr.F2i _ | Isa.Instr.Load _
      | Isa.Instr.Store _ | Isa.Instr.Lea _ | Isa.Instr.Cmp _
      | Isa.Instr.Fcmp _ | Isa.Instr.Jmp _ | Isa.Instr.Call _
      | Isa.Instr.Ret | Isa.Instr.Push _ | Isa.Instr.Pop _
      | Isa.Instr.Syscall _ ->
        kids
    end
  in
  let tree = S.node S.root_label (if n > 0 then walk 0 else []) in
  let iv = Cfg.Intervals.analyze g in
  S.make ~ops:st.ops
    ~skel:
      (profile ~deriv:iv.Cfg.Intervals.derivation_length ~segments:!segments
         ~tree st)
    ~tree

let of_binary img fidx =
  of_graph (Cfg.Graph.build (Loader.Image.disassemble img fidx))
