(** Integer intervals with infinities — the abstract value of the
    interval domain and of the binary bound checker.

    Arithmetic is conservative: bounds saturate to infinity rather than
    modelling 64-bit wraparound, so every concrete result is contained in
    the abstract one for the value ranges the corpus exercises. *)

type bound = NegInf | Fin of int64 | PosInf

type t = { lo : bound; hi : bound }
(** Invariant: [lo <= hi]; the empty interval is represented by {!bot}. *)

val bot : t
val top : t
val is_bot : t -> bool
val of_const : int64 -> t
val make : int64 -> int64 -> t

val equal : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
(** [widen old next]: bounds that grew jump to infinity. *)

val contains : t -> int64 -> bool
val may_be_negative : t -> bool
val is_bounded_above : t -> bool
val singleton : t -> int64 option

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val lognot : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
(** OCaml [Int64.rem] semantics: result sign follows the dividend and
    magnitude stays below the divisor's. *)

val shift_left : t -> t -> t
val shift_right : t -> t -> t

val refine : Isa.Cond.t -> t -> t -> t * t
(** [refine c a b] narrows both operand intervals under the assumption
    that [compare a b] satisfies [c] (signed comparison), as established
    by a conditional branch. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
