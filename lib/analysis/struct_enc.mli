(** Structural-fingerprint encoders (see {!Similarity.Structfp} for the
    representation and distance).

    [of_func] folds a MinC AST into the canonical encoding using
    dominance-style nesting (statements after a control construct nest
    inside it, matching where the join block lands in the binary's
    dominator tree); [of_binary] computes the same encoding from a
    stripped binary via dominator-tree pruning, the loop-nesting forest
    and interval derived-sequence reduction of the recovered CFG.  Both
    are pure and total on well-formed inputs. *)

val op_classes : int
val depth_buckets : int
val ops_length : int
(** Layout of the operator profile: [op_classes] operator classes, each
    bucketed by loop-nesting depth (0, 1, >= 2). *)

val of_func : Minic.Ast.func -> Similarity.Structfp.t

val of_graph : Cfg.Graph.t -> Similarity.Structfp.t
(** Encoder over an already-recovered CFG (used by {!of_binary} and by
    callers that hold a graph). *)

val of_binary : Loader.Image.t -> int -> Similarity.Structfp.t
(** Fingerprint of function [fidx] of a loaded image. *)
