exception Ir_violation of string

let violation ~stage (f : Minic.Ir.fundef) fmt =
  Format.kasprintf
    (fun s ->
      raise (Ir_violation (Printf.sprintf "%s (after %s): %s" f.name stage s)))
    fmt

let check_structure ~stage (f : Minic.Ir.fundef) =
  let fail fmt = violation ~stage f fmt in
  let nblocks = Array.length f.blocks in
  if nblocks = 0 then fail "function has no blocks";
  if List.length f.param_vregs <> f.nparams then
    fail "param_vregs has %d entries for %d parameters"
      (List.length f.param_vregs) f.nparams;
  let check_vreg what v =
    if v < 0 || v >= f.nvregs then
      fail "%s names vreg v%d outside [0, %d)" what v f.nvregs
  in
  List.iter (check_vreg "parameter list") f.param_vregs;
  Array.iteri
    (fun b (blk : Minic.Ir.block) ->
      List.iteri
        (fun i ins ->
          let where = Printf.sprintf "B%d/%d" b i in
          List.iter (check_vreg where) (Minic.Ir.defs ins);
          List.iter (check_vreg where) (Minic.Ir.uses ins);
          match ins with
          | Minic.Ir.Ilea_slot (_, slot) ->
            if slot < 0 || slot >= Array.length f.slot_sizes then
              fail "%s takes the address of slot %d but only %d exist" where
                slot
                (Array.length f.slot_sizes)
          | _ -> ())
        blk.body;
      List.iter
        (check_vreg (Printf.sprintf "B%d terminator" b))
        (Minic.Ir.term_uses blk.term);
      List.iter
        (fun s ->
          if s < 0 || s >= nblocks then
            fail "B%d terminator targets B%d but only %d blocks exist" b s
              nblocks)
        (Minic.Ir.successors blk.term))
    f.blocks

let check_defs ~stage (f : Minic.Ir.fundef) =
  match Reachdef.unreached_uses f (Reachdef.analyze f) with
  | [] -> ()
  | (b, i, v) :: _ ->
    violation ~stage f
      "use of v%d at B%d/%d has no reaching definition (miscompiled or \
       dead-code-eliminated def)"
      v b i

let check_calls ?resolve ~stage (f : Minic.Ir.fundef) =
  let fail fmt = violation ~stage f fmt in
  Array.iteri
    (fun b (blk : Minic.Ir.block) ->
      List.iter
        (fun (ins : Minic.Ir.ins) ->
          match ins with
          | Icall (dst, Cimport name, args) -> (
            match Minic.Builtins.runtime_import_signature name with
            | None -> fail "B%d calls unknown import %s" b name
            | Some { Minic.Builtins.args = decl; ret } ->
              if List.length args <> List.length decl then
                fail "B%d calls import %s with %d args (declared %d)" b name
                  (List.length args) (List.length decl);
              if dst <> None && ret = Minic.Ast.Tvoid then
                fail "B%d binds the result of void import %s" b name)
          | Icall (_, Cinternal name, args) -> (
            match resolve with
            | None -> ()
            | Some resolve -> (
              match resolve name with
              | None -> ()
              | Some callee ->
                if List.length args <> callee.Minic.Ir.nparams then
                  fail "B%d calls %s with %d args (takes %d)" b name
                    (List.length args) callee.Minic.Ir.nparams))
          | _ -> ())
        blk.body)
    f.blocks

let check ?resolve ~stage (f : Minic.Ir.fundef) =
  check_structure ~stage f;
  check_calls ?resolve ~stage f;
  check_defs ~stage f

let enabled () =
  match Sys.getenv_opt "PATCHECKO_CHECK_IR" with
  | Some "1" -> true
  | _ -> false

let install () =
  if enabled () then Minic.Opt.check_hook := fun ~stage f -> check ~stage f
