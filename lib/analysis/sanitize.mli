(** IR sanitizer: structural and semantic well-formedness checks run
    after lowering and after every optimisation pass when the
    [PATCHECKO_CHECK_IR] environment variable is set to [1].

    Checks performed by {!check}:
    - CFG well-formedness: every terminator successor indexes an
      existing block;
    - index ranges: every vreg (def, use, terminator use, param) is
      [< nvregs], every [Ilea_slot] names an existing stack slot;
    - def-before-use: reaching-definition analysis proves every use in
      an entry-reachable block is dominated by at least one definition
      (parameters count as definitions at entry);
    - call consistency: import callees exist in {!Minic.Builtins} and
      are invoked with the declared arity (and a result vreg only when
      the import returns one); internal callees resolved through
      [resolve] must match the callee's [nparams].

    A violation raises {!Ir_violation} naming the function, the pass
    that produced the broken IR, and the offending construct — turning
    a silent miscompile into a loud failure at the pass boundary. *)

exception Ir_violation of string

val check :
  ?resolve:(string -> Minic.Ir.fundef option) ->
  stage:string ->
  Minic.Ir.fundef ->
  unit
(** Raise {!Ir_violation} if the fundef is malformed.  [stage] is the
    name of the pass that just ran (for the error message). *)

val enabled : unit -> bool
(** True when [PATCHECKO_CHECK_IR=1] in the environment. *)

val install : unit -> unit
(** Point {!Minic.Opt.check_hook} at {!check} when {!enabled}; no-op
    otherwise.  Call once at program start (tests, bench, CLI). *)
