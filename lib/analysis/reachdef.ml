module IntSet = Set.Make (Int)

module L = struct
  type t = IntSet.t

  let bottom = IntSet.empty
  let equal = IntSet.equal
  let join = IntSet.union
  let widen = IntSet.union
end

module Solver = Dataflow.Make (L)

type def = { id : int; vreg : int; block : int; pos : int }

type t = {
  defs : def array;
  reach_in : IntSet.t array;
  reach_out : IntSet.t array;
  iterations : int;
}

let collect_defs (f : Minic.Ir.fundef) =
  let defs = ref [] in
  let n = ref 0 in
  let add vreg block pos =
    defs := { id = !n; vreg; block; pos } :: !defs;
    incr n
  in
  List.iter (fun p -> add p (-1) (-1)) f.Minic.Ir.param_vregs;
  Array.iteri
    (fun b (blk : Minic.Ir.block) ->
      List.iteri
        (fun i ins -> List.iter (fun d -> add d b i) (Minic.Ir.defs ins))
        blk.body)
    f.Minic.Ir.blocks;
  Array.of_list (List.rev !defs)

let analyze (f : Minic.Ir.fundef) =
  let defs = collect_defs f in
  (* per-vreg def-id sets drive the kill sets *)
  let by_vreg = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let cur =
        Option.value ~default:IntSet.empty (Hashtbl.find_opt by_vreg d.vreg)
      in
      Hashtbl.replace by_vreg d.vreg (IntSet.add d.id cur))
    defs;
  let defs_of_vreg v =
    Option.value ~default:IntSet.empty (Hashtbl.find_opt by_vreg v)
  in
  let entry_state =
    Array.fold_left
      (fun acc d -> if d.block = -1 then IntSet.add d.id acc else acc)
      IntSet.empty defs
  in
  (* def ids grouped per (block, pos) for the transfer *)
  let at_site = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      if d.block >= 0 then begin
        let key = (d.block, d.pos) in
        let cur =
          Option.value ~default:IntSet.empty (Hashtbl.find_opt at_site key)
        in
        Hashtbl.replace at_site key (IntSet.add d.id cur)
      end)
    defs;
  let transfer b state =
    let blk = f.Minic.Ir.blocks.(b) in
    let _, out =
      List.fold_left
        (fun (i, acc) ins ->
          let killed =
            List.fold_left
              (fun s v -> IntSet.union s (defs_of_vreg v))
              IntSet.empty (Minic.Ir.defs ins)
          in
          let gen =
            Option.value ~default:IntSet.empty
              (Hashtbl.find_opt at_site (b, i))
          in
          (i + 1, IntSet.union gen (IntSet.diff acc killed)))
        (0, state) blk.body
    in
    out
  in
  let g = Dataflow.graph_of_fundef f in
  let sol =
    Solver.solve
      {
        Solver.graph = g;
        direction = Dataflow.Forward;
        init = entry_state;
        transfer;
        refine = None;
      }
  in
  { defs; reach_in = sol.Solver.input; reach_out = sol.Solver.output;
    iterations = sol.Solver.iterations }

let reachable_blocks (f : Minic.Ir.fundef) =
  let n = Array.length f.Minic.Ir.blocks in
  let seen = Array.make n false in
  let rec visit i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit (Minic.Ir.successors f.Minic.Ir.blocks.(i).term)
    end
  in
  if n > 0 then visit 0;
  seen

let unreached_uses (f : Minic.Ir.fundef) t =
  let reachable = reachable_blocks f in
  let by_vreg = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let cur =
        Option.value ~default:IntSet.empty (Hashtbl.find_opt by_vreg d.vreg)
      in
      Hashtbl.replace by_vreg d.vreg (IntSet.add d.id cur))
    t.defs;
  let defs_of_vreg v =
    Option.value ~default:IntSet.empty (Hashtbl.find_opt by_vreg v)
  in
  let bad = ref [] in
  Array.iteri
    (fun b (blk : Minic.Ir.block) ->
      if reachable.(b) then begin
        (* replay the block transfer, checking each use on the way *)
        let live = ref t.reach_in.(b) in
        List.iteri
          (fun i ins ->
            List.iter
              (fun u ->
                if IntSet.is_empty (IntSet.inter !live (defs_of_vreg u)) then
                  bad := (b, i, u) :: !bad)
              (Minic.Ir.uses ins);
            let killed =
              List.fold_left
                (fun s v -> IntSet.union s (defs_of_vreg v))
                IntSet.empty (Minic.Ir.defs ins)
            in
            let gen =
              List.fold_left
                (fun s v ->
                  IntSet.union s
                    (IntSet.filter
                       (fun id -> t.defs.(id).block = b && t.defs.(id).pos = i)
                       (defs_of_vreg v)))
                IntSet.empty (Minic.Ir.defs ins)
            in
            live := IntSet.union gen (IntSet.diff !live killed))
          blk.body;
        List.iter
          (fun u ->
            if IntSet.is_empty (IntSet.inter !live (defs_of_vreg u)) then
              bad := (b, List.length blk.body, u) :: !bad)
          (Minic.Ir.term_uses blk.term)
      end)
    f.Minic.Ir.blocks;
  List.rev !bad
