(** Flow-sensitive constant propagation over MinC IR (forward).

    The per-block environment maps vregs to known [int64] constants;
    absence means "not constant here".  Unlike the block-local
    [Minic.Opt.fold_constants] rewriter, this domain reasons across
    blocks and join points, so it also measures what the optimiser left
    on the table. *)

module IntMap : Map.S with type key = int

type env = Unreachable | Env of int64 IntMap.t

type t = {
  block_in : env array;
  block_out : env array;
  iterations : int;
}

val analyze : Minic.Ir.fundef -> t

val constant_at_entry : t -> int -> int -> int64 option
(** [constant_at_entry t block vreg] *)

val count_constants : t -> int
(** Total constant bindings across all reachable block entries — a
    coarse effectiveness metric used by reports and tests. *)
