(** Signature-based memory-safety checker over recovered binary CFGs.

    An abstract interpreter in the VulMatch/IoTSeeker mould: it runs an
    interval analysis directly on disassembled functions — tracking
    frame-pointer-relative addresses, value ranges and "known non-zero"
    facts through registers and spill slots — and raises an alarm wherever
    it cannot prove an access safe:

    - {b OOB load/store}: a [Load]/[Store] whose base is a frame address
      and whose access window may leave the function's own frame
      ([fp - frame_size, fp)), as in an unclamped index into a stack
      buffer;
    - {b division by zero}: a [Div]/[Rem] whose divisor may be zero
      (missing [== 0] guard);
    - {b bad builtin call}: memcpy/memmove/memset/memcmp whose length may
      be negative or has no upper bound, or whose frame-address
      destination may overflow the frame.

    The per-function alarm counts form a 4-component {e alarm signature}.
    A patch that inserts the missing guard kills the corresponding alarm
    (conditional-branch refinement proves the access safe), so the
    signature separates vulnerable from patched builds of guard-style
    CVEs — a purely static vulnerable/patched signal that needs no
    emulation, used as a detection baseline and as an extra evidence
    channel in the differential engine. *)

type alarm_class = Oob_load | Oob_store | Div_zero | Bad_builtin

val nclasses : int
val class_index : alarm_class -> int
val class_name : alarm_class -> string

type alarm = {
  cls : alarm_class;
  block : int;  (** CFG block id *)
  index : int;  (** instruction index within the listing *)
  detail : string;
}

type report = {
  alarms : alarm list;  (** deduplicated, in program order *)
  counts : int array;  (** per-class totals, indexed by {!class_index} *)
  blocks : int;
  iterations : int;  (** solver node visits *)
}

val analyze : Loader.Image.t -> int -> report
(** Disassemble and check function [i] of the image. *)

val signature : Loader.Image.t -> int -> int array
(** Just the per-class alarm counts of {!analyze}. *)

val total : int array -> int
(** Sum of a signature's components. *)

val distance : int array -> int array -> float
(** Mean per-class relative difference in [0, 1]; 0 for identical
    signatures.  The ranking metric of the alarm-signature baseline. *)
