module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

type graph = {
  nnodes : int;
  succs : int -> int list;
  preds : int -> int list;
  entries : int list;
}

type direction = Forward | Backward

let graph_of_fundef (f : Minic.Ir.fundef) =
  let n = Array.length f.Minic.Ir.blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i (blk : Minic.Ir.block) ->
      let ss = Minic.Ir.successors blk.term in
      succs.(i) <- ss;
      List.iter (fun s -> if s >= 0 && s < n then preds.(s) <- i :: preds.(s)) ss)
    f.Minic.Ir.blocks;
  Array.iteri (fun i p -> preds.(i) <- List.rev p) preds;
  {
    nnodes = n;
    succs = (fun i -> succs.(i));
    preds = (fun i -> preds.(i));
    entries = (if n > 0 then [ 0 ] else []);
  }

let graph_of_cfg (g : Cfg.Graph.t) =
  let n = Array.length g.Cfg.Graph.blocks in
  {
    nnodes = n;
    succs = (fun i -> g.Cfg.Graph.blocks.(i).Cfg.Block.succs);
    preds = (fun i -> g.Cfg.Graph.blocks.(i).Cfg.Block.preds);
    entries = (if n > 0 then [ 0 ] else []);
  }

let exit_nodes g =
  let out = ref [] in
  for i = g.nnodes - 1 downto 0 do
    if g.succs i = [] then out := i :: !out
  done;
  !out

let reverse g =
  let entries =
    match exit_nodes g with
    | [] -> List.init g.nnodes Fun.id
    | exits -> exits
  in
  { nnodes = g.nnodes; succs = g.preds; preds = g.succs; entries }

(* Reverse postorder of the oriented graph; nodes unreachable from the
   entries are appended afterwards so every node still gets a position. *)
let rpo_order g =
  let n = g.nnodes in
  let visited = Array.make n false in
  let acc = ref [] in
  let rec visit i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter (fun s -> if s >= 0 && s < n then visit s) (g.succs i);
      acc := i :: !acc
    end
  in
  List.iter visit g.entries;
  for i = n - 1 downto 0 do
    if not visited.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

module Make (L : LATTICE) = struct
  type problem = {
    graph : graph;
    direction : direction;
    init : L.t;
    transfer : int -> L.t -> L.t;
    refine : (src:int -> dst:int -> L.t -> L.t) option;
  }

  type solution = { input : L.t array; output : L.t array; iterations : int }

  let solve ?(widen_delay = 3) ?max_visits p =
    let g =
      match p.direction with Forward -> p.graph | Backward -> reverse p.graph
    in
    let n = g.nnodes in
    let max_visits =
      match max_visits with Some m -> m | None -> 1000 * max 1 n
    in
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    if n = 0 then { input; output; iterations = 0 }
    else begin
      let order = rpo_order g in
      let pos = Array.make n 0 in
      Array.iteri (fun k i -> pos.(i) <- k) order;
      (* widening points: targets of retreating edges in the oriented graph *)
      let widen_at = Array.make n false in
      for i = 0 to n - 1 do
        List.iter
          (fun s -> if s >= 0 && s < n && pos.(s) <= pos.(i) then widen_at.(s) <- true)
          (g.succs i)
      done;
      let is_entry = Array.make n false in
      List.iter (fun e -> is_entry.(e) <- true) g.entries;
      let visits = Array.make n 0 in
      let total = ref 0 in
      let in_work = Array.make n false in
      (* worklist ordered by RPO position so inner loops stabilise before
         the rest of the function is revisited *)
      let module Q = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let work = ref Q.empty in
      let push i =
        if not in_work.(i) then begin
          in_work.(i) <- true;
          work := Q.add (pos.(i), i) !work
        end
      in
      Array.iter push order;
      let edge_value src dst v =
        match p.refine with
        | None -> v
        | Some f -> f ~src ~dst v
      in
      while not (Q.is_empty !work) do
        let _, node = Q.min_elt !work in
        work := Q.remove (pos.(node), node) !work;
        in_work.(node) <- false;
        incr total;
        if !total > max_visits then
          failwith "Dataflow.solve: no fixpoint (widening too weak?)";
        visits.(node) <- visits.(node) + 1;
        let incoming =
          List.fold_left
            (fun acc pred -> L.join acc (edge_value pred node output.(pred)))
            (if is_entry.(node) then p.init else L.bottom)
            (g.preds node)
        in
        let incoming =
          if widen_at.(node) && visits.(node) > widen_delay then
            L.widen input.(node) incoming
          else L.join input.(node) incoming
        in
        let first = visits.(node) = 1 in
        if first || not (L.equal incoming input.(node)) then begin
          input.(node) <- incoming;
          let out = p.transfer node incoming in
          if first || not (L.equal out output.(node)) then begin
            output.(node) <- out;
            List.iter (fun s -> if s >= 0 && s < n then push s) (g.succs node)
          end
        end
      done;
      { input; output; iterations = !total }
    end
end
