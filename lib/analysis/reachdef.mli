(** Reaching definitions over MinC IR (forward, may).

    Definition sites are numbered densely: parameters first (position
    [-1]), then instruction definitions in (block, position) order. *)

module IntSet : Set.S with type elt = int

type def = {
  id : int;
  vreg : int;
  block : int;  (** [-1] for parameter definitions *)
  pos : int;  (** instruction index within the block, [-1] for parameters *)
}

type t = {
  defs : def array;  (** indexed by [id] *)
  reach_in : IntSet.t array;  (** def ids reaching each block's entry *)
  reach_out : IntSet.t array;
  iterations : int;
}

val analyze : Minic.Ir.fundef -> t

val unreached_uses : Minic.Ir.fundef -> t -> (int * int * int) list
(** [(block, position, vreg)] for uses no definition reaches on any path
    — reads of garbage, which a well-formed lowering never produces.
    Uses in blocks unreachable from the entry are skipped. *)
