(** Live-variable analysis over MinC IR (backward, may). *)

module IntSet : Set.S with type elt = int

type t = {
  live_in : IntSet.t array;  (** vregs live on entry to each block *)
  live_out : IntSet.t array;  (** vregs live on exit of each block *)
  iterations : int;
}

val analyze : Minic.Ir.fundef -> t

val dead_stores : Minic.Ir.fundef -> t -> (int * int) list
(** [(block, position)] of pure instructions whose definition is dead
    after the instruction — candidates the DCE pass should have removed. *)
