type alarm_class = Oob_load | Oob_store | Div_zero | Bad_builtin

let nclasses = 4

let class_index = function
  | Oob_load -> 0
  | Oob_store -> 1
  | Div_zero -> 2
  | Bad_builtin -> 3

let class_name = function
  | Oob_load -> "oob-load"
  | Oob_store -> "oob-store"
  | Div_zero -> "div-zero"
  | Bad_builtin -> "bad-builtin"

type alarm = { cls : alarm_class; block : int; index : int; detail : string }

type report = {
  alarms : alarm list;
  counts : int array;
  blocks : int;
  iterations : int;
}

(* ------------------------------------------------------------------ *)
(* Abstract values.

   [Vfp itv] is an address [fp + o] for some [o] in [itv], where fp is
   the frame pointer established by the prologue; the function's own
   frame occupies [fp - frame_size, fp).  [Vint] carries a value range
   plus a "known non-zero" bit so a [!= 0] guard is remembered even
   when the range itself stays unbounded.

   Each register/spill-slot entry also carries an optional value-number
   tag: two locations with the same tag hold the same runtime value
   (the tag is the instruction index of the copy that last linked
   them), so a conditional-branch refinement of one register narrows
   its copies too — compilers routinely compare one copy of a value
   and index/divide with another. *)

module OffMap = Map.Make (Int)

type value =
  | Vtop
  | Vint of { itv : Interval.t; nz : bool }
  | Vfp of Interval.t

type tagged = { v : value; vid : int option }

type cmp_operand = Creg of int | Cimm of int64

type st = {
  regs : tagged array;  (** one per machine register *)
  frame : tagged OffMap.t;  (** word-sized spill slots, by fp offset *)
  cmp : (int * cmp_operand) option;  (** operands of the live [Cmp] *)
}

type state = Unreachable | Reach of st

let mk_int ?(nz = false) itv =
  if Interval.equal itv Interval.top && not nz then Vtop
  else Vint { itv; nz = nz || not (Interval.contains itv 0L) }

let untagged v = { v; vid = None }

let value_equal a b =
  match (a, b) with
  | Vtop, Vtop -> true
  | Vint x, Vint y -> Interval.equal x.itv y.itv && x.nz = y.nz
  | Vfp x, Vfp y -> Interval.equal x y
  | (Vtop | Vint _ | Vfp _), _ -> false

let value_merge f a b =
  match (a, b) with
  | Vtop, _ | _, Vtop -> Vtop
  | Vint x, Vint y -> mk_int ~nz:(x.nz && y.nz) (f x.itv y.itv)
  | Vfp x, Vfp y -> Vfp (f x y)
  | Vint _, Vfp _ | Vfp _, Vint _ -> Vtop

let tagged_equal a b = value_equal a.v b.v && a.vid = b.vid

let tagged_merge f a b =
  {
    v = value_merge f a.v b.v;
    vid = (match (a.vid, b.vid) with
          | Some i, Some j when i = j -> Some i
          | _ -> None);
  }

let cmp_equal a b =
  match (a, b) with
  | None, None -> true
  | Some (r, Creg s), Some (r', Creg s') -> r = r' && s = s'
  | Some (r, Cimm i), Some (r', Cimm i') -> r = r' && Int64.equal i i'
  | _ -> false

let st_merge f a b =
  {
    regs =
      Array.init (Array.length a.regs) (fun i ->
          tagged_merge f a.regs.(i) b.regs.(i));
    frame =
      OffMap.merge
        (fun _ l r ->
          match (l, r) with
          | Some u, Some v ->
            let m = tagged_merge f u v in
            if m.v = Vtop && m.vid = None then None else Some m
          | _ -> None)
        a.frame b.frame;
    cmp = (if cmp_equal a.cmp b.cmp then a.cmp else None);
  }

module L = struct
  type t = state

  let bottom = Unreachable

  let equal a b =
    match (a, b) with
    | Unreachable, Unreachable -> true
    | Reach x, Reach y ->
      Array.length x.regs = Array.length y.regs
      && Array.for_all2 tagged_equal x.regs y.regs
      && OffMap.equal tagged_equal x.frame y.frame
      && cmp_equal x.cmp y.cmp
    | (Unreachable | Reach _), _ -> false

  let join a b =
    match (a, b) with
    | Unreachable, x | x, Unreachable -> x
    | Reach x, Reach y -> Reach (st_merge Interval.join x y)

  let widen a b =
    match (a, b) with
    | Unreachable, x | x, Unreachable -> x
    | Reach x, Reach y -> Reach (st_merge Interval.widen x y)
end

module Solver = Dataflow.Make (L)

(* ------------------------------------------------------------------ *)
(* Transfer *)

let width_bytes : Isa.Instr.width -> int = function W1 -> 1 | W8 -> 8

let as_itv = function
  | Vtop -> Some Interval.top
  | Vint { itv; _ } -> Some itv
  | Vfp _ -> None

let may_be_zero = function
  | Vtop -> true
  | Vint { itv; nz } -> (not nz) && Interval.contains itv 0L
  | Vfp _ -> false

let set_reg st r t =
  let regs = Array.copy st.regs in
  regs.(r) <- t;
  let cmp =
    match st.cmp with
    | Some (cr, _) when cr = r -> None
    | Some (_, Creg o) when o = r -> None
    | c -> c
  in
  { st with regs; cmp }

let operand_value st (o : Isa.Instr.operand) =
  match o with
  | Reg r -> st.regs.(r).v
  | Imm i -> mk_int (Interval.of_const i)

(* Retire every tag [Some i] before instruction [i] issues it afresh:
   stale copies from a previous loop iteration must not keep claiming
   equality with the new value. *)
let kill_vid st i =
  let stale t = t.vid = Some i in
  let regs =
    if Array.exists stale st.regs then
      Array.map (fun t -> if stale t then { t with vid = None } else t) st.regs
    else st.regs
  in
  let frame =
    if OffMap.exists (fun _ t -> stale t) st.frame then
      OffMap.map (fun t -> if stale t then { t with vid = None } else t)
        st.frame
    else st.frame
  in
  if regs == st.regs && frame == st.frame then st else { st with regs; frame }

(* Drop spill slots overlapping the byte window [lo, hi). *)
let invalidate_frame frame lo hi =
  OffMap.filter (fun k _ -> k + 8 <= lo || k >= hi) frame

(* In-bounds iff [fp+lo, fp+hi+w) stays inside [fp-frame_size, fp). *)
let fp_access_ok ~frame_size itv w =
  match (itv.Interval.lo, itv.Interval.hi) with
  | Interval.Fin l, Interval.Fin h ->
    l >= Int64.of_int (-frame_size) && Int64.add h (Int64.of_int w) <= 0L
  | _ -> false

let checked_imports = [ "memcpy"; "memmove"; "memset"; "memcmp" ]

let binop_itv (op : Isa.Instr.binop) a b =
  match op with
  | Add -> Interval.add a b
  | Sub -> Interval.sub a b
  | Mul -> Interval.mul a b
  | Div -> Interval.div a b
  | Rem -> Interval.rem a b
  | Shl -> Interval.shift_left a b
  | Shr -> Interval.shift_right a b
  | And | Or | Xor -> Interval.top

let clobber_range st lo hi =
  let regs = Array.copy st.regs in
  for r = lo to hi do
    regs.(r) <- untagged Vtop
  done;
  regs

let transfer_ins ~img ~frame_size ~record index st (ins : int Isa.Instr.t) =
  match ins with
  | Nop | Jmp _ | Jcc _ | Ret | Fcmp _ | Jtable _ -> st
  | Mov (d, Reg s) ->
    if d = s then st
    else (
      match st.regs.(s).vid with
      | Some _ -> set_reg st d st.regs.(s)
      | None ->
        let st = kill_vid st index in
        let src = { st.regs.(s) with vid = Some index } in
        let st = set_reg st s src in
        set_reg st d src)
  | Mov (d, Imm i) -> set_reg st d (untagged (mk_int (Interval.of_const i)))
  | Lea (d, addr) -> set_reg st d (untagged (mk_int (Interval.of_const addr)))
  | Binop (op, d, a, o) ->
    let va = st.regs.(a).v and vo = operand_value st o in
    (match op with
    | Div | Rem ->
      if may_be_zero vo then
        record Div_zero index
          (Printf.sprintf "divisor %s may be zero"
             (match o with
             | Isa.Instr.Reg r -> Printf.sprintf "r%d" r
             | Imm i -> Int64.to_string i))
    | Add | Sub | Mul | And | Or | Xor | Shl | Shr -> ());
    let result =
      match (op, va, vo) with
      | Isa.Instr.Add, Vfp p, Vint { itv; _ } -> Vfp (Interval.add p itv)
      | Isa.Instr.Add, Vint { itv; _ }, Vfp p -> Vfp (Interval.add itv p)
      | Isa.Instr.Sub, Vfp p, Vint { itv; _ } -> Vfp (Interval.sub p itv)
      | Isa.Instr.Sub, Vfp p, Vfp q -> mk_int (Interval.sub p q)
      | _ -> (
        match (as_itv va, as_itv vo) with
        | Some ia, Some ib -> mk_int (binop_itv op ia ib)
        | _ -> Vtop)
    in
    set_reg st d (untagged result)
  | Neg (d, a) ->
    let v =
      match as_itv st.regs.(a).v with
      | Some ia -> mk_int (Interval.neg ia)
      | None -> Vtop
    in
    set_reg st d (untagged v)
  | Not (d, a) ->
    let v =
      match as_itv st.regs.(a).v with
      | Some ia -> mk_int (Interval.lognot ia)
      | None -> Vtop
    in
    set_reg st d (untagged v)
  | Fbinop (_, d, _, _) | I2f (d, _) | F2i (d, _) ->
    set_reg st d (untagged Vtop)
  | Load (w, d, base, off) -> (
    match st.regs.(base).v with
    | Vfp p -> (
      let acc = Interval.add p (Interval.of_const (Int64.of_int off)) in
      let wb = width_bytes w in
      let ok = fp_access_ok ~frame_size acc wb in
      if not ok then
        record Oob_load index
          (Printf.sprintf "frame load at fp%s width %d outside [-%d, 0)"
             (Interval.to_string acc) wb frame_size);
      match (w, Interval.singleton acc) with
      | Isa.Instr.W1, _ ->
        set_reg st d (untagged (mk_int (Interval.make 0L 255L)))
      | Isa.Instr.W8, Some o when ok -> (
        let o = Int64.to_int o in
        match OffMap.find_opt o st.frame with
        | Some ({ vid = Some _; _ } as slot) -> set_reg st d slot
        | Some { v; vid = None } ->
          (* link the slot and the loaded register *)
          let st = kill_vid st index in
          let slot = { v; vid = Some index } in
          let st = { st with frame = OffMap.add o slot st.frame } in
          set_reg st d slot
        | None ->
          let st = kill_vid st index in
          let slot = { v = Vtop; vid = Some index } in
          let st = { st with frame = OffMap.add o slot st.frame } in
          set_reg st d slot)
      | Isa.Instr.W8, _ -> set_reg st d (untagged Vtop))
    | Vtop | Vint _ ->
      let v =
        match w with
        | Isa.Instr.W1 -> mk_int (Interval.make 0L 255L)
        | Isa.Instr.W8 -> Vtop
      in
      set_reg st d (untagged v))
  | Store (w, src, base, off) -> (
    match st.regs.(base).v with
    | Vfp p -> (
      let acc = Interval.add p (Interval.of_const (Int64.of_int off)) in
      let wb = width_bytes w in
      if not (fp_access_ok ~frame_size acc wb) then
        record Oob_store index
          (Printf.sprintf "frame store at fp%s width %d outside [-%d, 0)"
             (Interval.to_string acc) wb frame_size);
      match Interval.singleton acc with
      | Some o ->
        let o = Int64.to_int o in
        let frame = invalidate_frame st.frame o (o + wb) in
        if w = Isa.Instr.W8 then (
          match st.regs.(src).vid with
          | Some _ ->
            { st with frame = OffMap.add o st.regs.(src) frame }
          | None ->
            let st = kill_vid st index in
            let t = { st.regs.(src) with vid = Some index } in
            let st = set_reg st src t in
            (* re-fetch: set_reg copied the array *)
            let frame = invalidate_frame st.frame o (o + wb) in
            { st with frame = OffMap.add o t frame })
        else { st with frame }
      | None -> { st with frame = OffMap.empty })
    | Vtop | Vint _ ->
      (* Writes through non-frame pointers cannot legally reach this
         function's own frame window, so spill slots survive. *)
      st)
  | Cmp (r, o) ->
    let cop = match o with Isa.Instr.Reg s -> Creg s | Imm i -> Cimm i in
    { st with cmp = Some (r, cop) }
  | Push r ->
    if r = Isa.Reg.sp then st
    else (
      match st.regs.(Isa.Reg.sp).v with
      | Vfp p ->
        set_reg st Isa.Reg.sp
          (untagged (Vfp (Interval.sub p (Interval.of_const 8L))))
      | _ -> st)
  | Pop r ->
    let st =
      match st.regs.(Isa.Reg.sp).v with
      | Vfp p ->
        set_reg st Isa.Reg.sp
          (untagged (Vfp (Interval.add p (Interval.of_const 8L))))
      | _ -> st
    in
    if r = Isa.Reg.sp then st else set_reg st r (untagged Vtop)
  | Call idx ->
    (match Loader.Image.call_target img idx with
    | Some (Loader.Image.Import name) when List.mem name checked_imports -> (
      let len = st.regs.(Isa.Reg.arg 2).v in
      (match as_itv len with
      | None ->
        record Bad_builtin index
          (Printf.sprintf "%s length is an address" name)
      | Some itv ->
        if Interval.may_be_negative itv || not (Interval.is_bounded_above itv)
        then
          record Bad_builtin index
            (Printf.sprintf "%s length %s may be negative or unbounded" name
               (Interval.to_string itv)));
      match st.regs.(Isa.Reg.arg 0).v with
      | Vfp p -> (
        match as_itv len with
        | Some { Interval.hi = Fin n; _ }
          when fp_access_ok ~frame_size p (Int64.to_int (Int64.max 1L n)) ->
          ()
        | _ ->
          record Bad_builtin index
            (Printf.sprintf "%s destination fp%s may overflow the frame" name
               (Interval.to_string p)))
      | Vtop | Vint _ -> ())
    | Some (Internal _) | Some (Import _) | None -> ());
    (* caller-saved registers die; the frame survives unless its address
       escaped through an argument register *)
    let escapes =
      List.exists
        (fun i -> match st.regs.(i).v with Vfp _ -> true | _ -> false)
        [ 0; 1; 2; 3; 4; 5 ]
    in
    {
      regs = clobber_range st 0 13;
      frame = (if escapes then OffMap.empty else st.frame);
      cmp = None;
    }
  | Syscall _ ->
    let escapes =
      List.exists
        (fun i -> match st.regs.(i).v with Vfp _ -> true | _ -> false)
        [ 0; 1; 2 ]
    in
    {
      regs = clobber_range st 0 5;
      frame = (if escapes then OffMap.empty else st.frame);
      cmp = None;
    }

let transfer_block ~img ~frame_size ~record (g : Cfg.Graph.t) b state =
  match state with
  | Unreachable -> Unreachable
  | Reach st ->
    let blk = g.Cfg.Graph.blocks.(b) in
    let st = ref st in
    for i = blk.Cfg.Block.first to blk.Cfg.Block.last do
      st :=
        transfer_ins ~img ~frame_size ~record i !st
          g.Cfg.Graph.listing.Isa.Disasm.instrs.(i)
    done;
    Reach !st

(* ------------------------------------------------------------------ *)
(* Edge refinement: conditional branches narrow the compared values —
   and all their tagged copies — on each outgoing edge; table jumps
   bound the selector. *)

let block_starting_at (g : Cfg.Graph.t) index =
  let n = Array.length g.Cfg.Graph.blocks in
  let rec find b =
    if b >= n then None
    else if g.Cfg.Graph.blocks.(b).Cfg.Block.first = index then Some b
    else find (b + 1)
  in
  find 0

exception Edge_dead

(* Narrow one location to the assumption [value cond rhs]; copies of the
   compared register hold the same runtime value, so the same fact
   applies to each of them (their own abstract value, re-refined). *)
let refine_value cond rhs t =
  match t.v with
  | Vfp _ -> t
  | v -> (
    match as_itv v with
    | None -> t
    | Some itv ->
      let itv', _ = Interval.refine cond itv rhs in
      if Interval.is_bot itv' then raise Edge_dead
      else
        let nz_before = match v with Vint { nz; _ } -> nz | _ -> false in
        let explicit =
          cond = Isa.Cond.Ne && Interval.equal rhs (Interval.of_const 0L)
        in
        { t with v = mk_int ~nz:(nz_before || explicit) itv' })

let refine_class st vid cond rhs =
  let matches t = match vid with Some i -> t.vid = Some i | None -> false in
  let regs =
    Array.map (fun t -> if matches t then refine_value cond rhs t else t)
      st.regs
  in
  let frame =
    OffMap.map (fun t -> if matches t then refine_value cond rhs t else t)
      st.frame
  in
  { st with regs; frame }

let apply_cond st cond r cop =
  let vr = st.regs.(r).v in
  let rhs_itv =
    match cop with
    | Cimm i -> Interval.of_const i
    | Creg s -> (
      match as_itv st.regs.(s).v with Some i -> i | None -> Interval.top)
  in
  match as_itv vr with
  | None -> st  (* frame pointers are not refined *)
  | Some _ ->
    (* the compared register itself *)
    let regs = Array.copy st.regs in
    regs.(r) <- refine_value cond rhs_itv st.regs.(r);
    let st = { st with regs } in
    (* its copies *)
    let st = refine_class st st.regs.(r).vid cond rhs_itv in
    (* and the other side, with the swapped relation *)
    (match cop with
    | Cimm _ -> st
    | Creg s -> (
      let lhs_itv =
        match as_itv st.regs.(r).v with Some i -> i | None -> Interval.top
      in
      let swapped : Isa.Cond.t =
        match cond with
        | Eq -> Eq
        | Ne -> Ne
        | Lt -> Gt
        | Le -> Ge
        | Gt -> Lt
        | Ge -> Le
      in
      match as_itv st.regs.(s).v with
      | None -> st
      | Some _ ->
        let regs = Array.copy st.regs in
        regs.(s) <- refine_value swapped lhs_itv st.regs.(s);
        let st = { st with regs } in
        refine_class st st.regs.(s).vid swapped lhs_itv))

let refine_edge (g : Cfg.Graph.t) ~src ~dst state =
  match state with
  | Unreachable -> Unreachable
  | Reach st -> (
    let blk = g.Cfg.Graph.blocks.(src) in
    let listing = g.Cfg.Graph.listing in
    match listing.Isa.Disasm.instrs.(blk.Cfg.Block.last) with
    | Isa.Instr.Jcc (c, target) -> (
      match st.cmp with
      | None -> state
      | Some (r, cop) -> (
        let taken =
          Option.bind (Isa.Disasm.index_of_offset listing target)
            (block_starting_at g)
        in
        let fallthrough = block_starting_at g (blk.Cfg.Block.last + 1) in
        if taken = fallthrough then state
        else
          let cond =
            if taken = Some dst then Some c
            else if fallthrough = Some dst then Some (Isa.Cond.negate c)
            else None
          in
          match cond with
          | None -> state
          | Some cond -> (
            try Reach (apply_cond st cond r cop)
            with Edge_dead -> Unreachable)))
    | Isa.Instr.Jtable (r, targets) -> (
      let bound = Interval.make 0L (Int64.of_int (Array.length targets - 1)) in
      match st.regs.(r).v with
      | Vtop -> Reach (set_reg st r (untagged (mk_int bound)))
      | Vint { itv; nz } ->
        let m = Interval.meet itv bound in
        if Interval.is_bot m then Unreachable
        else Reach (set_reg st r { st.regs.(r) with v = mk_int ~nz m })
      | Vfp _ -> state)
    | _ -> state)

(* ------------------------------------------------------------------ *)

(* Frame size from the prologue: the first [sp := sp - imm] of block 0. *)
let find_frame_size (g : Cfg.Graph.t) =
  match Cfg.Graph.entry g with
  | None -> 0
  | Some blk ->
    let instrs = g.Cfg.Graph.listing.Isa.Disasm.instrs in
    let rec scan i =
      if i > blk.Cfg.Block.last then 0
      else
        match instrs.(i) with
        | Isa.Instr.Binop (Sub, r, r', Imm f)
          when r = Isa.Reg.sp && r' = Isa.Reg.sp ->
          Int64.to_int f
        | _ -> scan (i + 1)
    in
    scan blk.Cfg.Block.first

let initial_state () =
  let regs = Array.make Isa.Reg.count (untagged Vtop) in
  (* on entry sp sits one saved-fp slot above what the prologue will
     establish as fp: [Push fp; Mov fp, sp] lands fp at entry_sp - 8 *)
  regs.(Isa.Reg.sp) <- untagged (Vfp (Interval.of_const 8L));
  Reach { regs; frame = OffMap.empty; cmp = None }

let analyze img fidx =
  let listing = Loader.Image.disassemble img fidx in
  let noret idx =
    match Loader.Image.call_target img idx with
    | Some (Loader.Image.Import name) -> List.mem name Minic.Builtins.noret
    | _ -> false
  in
  let g = Cfg.Graph.build ~is_noret_call:noret listing in
  let nblocks = Cfg.Graph.block_count g in
  if nblocks = 0 then
    { alarms = []; counts = Array.make nclasses 0; blocks = 0; iterations = 0 }
  else begin
    let frame_size = find_frame_size g in
    let silent _ _ _ = () in
    let sol =
      Solver.solve
        {
          Solver.graph = Dataflow.graph_of_cfg g;
          direction = Dataflow.Forward;
          init = initial_state ();
          transfer = transfer_block ~img ~frame_size ~record:silent g;
          refine = Some (refine_edge g);
        }
    in
    (* replay reachable blocks on the fixpoint, collecting alarms *)
    let alarms = ref [] in
    let seen = Hashtbl.create 16 in
    Array.iteri
      (fun b input ->
        let record cls index detail =
          if not (Hashtbl.mem seen (cls, index)) then begin
            Hashtbl.replace seen (cls, index) ();
            alarms := { cls; block = b; index; detail } :: !alarms
          end
        in
        ignore (transfer_block ~img ~frame_size ~record g b input))
      sol.Solver.input;
    let alarms =
      List.sort (fun a b -> compare (a.index, a.cls) (b.index, b.cls)) !alarms
    in
    let counts = Array.make nclasses 0 in
    List.iter
      (fun a ->
        let i = class_index a.cls in
        counts.(i) <- counts.(i) + 1)
      alarms;
    { alarms; counts; blocks = nblocks; iterations = sol.Solver.iterations }
  end

let signature img fidx = (analyze img fidx).counts

let total sig_ = Array.fold_left ( + ) 0 sig_

let distance a b =
  let acc = ref 0.0 in
  for i = 0 to nclasses - 1 do
    let x = float_of_int a.(i) and y = float_of_int b.(i) in
    if x <> y then acc := !acc +. (abs_float (x -. y) /. Float.max x y)
  done;
  !acc /. float_of_int nclasses
