(** Generic worklist dataflow solver.

    The solver is functorised over a join-semilattice with widening and is
    direction-agnostic: a backward problem is solved by orienting the same
    graph edges the other way round.  Widening is applied at the targets of
    retreating edges (loop heads) once a node has been revisited more than
    [widen_delay] times, so domains of infinite height (intervals) still
    reach a fixpoint. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of [join]; the state of unvisited/unreachable nodes. *)

  val equal : t -> t -> bool

  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old next] must eventually stabilise any ascending chain;
      lattices of finite height can use [join]. *)
end

type graph = {
  nnodes : int;
  succs : int -> int list;
  preds : int -> int list;
  entries : int list;  (** boundary nodes (exits for a backward problem) *)
}

type direction = Forward | Backward

val graph_of_fundef : Minic.Ir.fundef -> graph
(** MinC IR control-flow graph (entry = block 0). *)

val graph_of_cfg : Cfg.Graph.t -> graph
(** Recovered binary control-flow graph (entry = block 0). *)

val exit_nodes : graph -> int list
(** Nodes without successors — the boundary of a backward problem. *)

val reverse : graph -> graph
(** Swap successors and predecessors; [entries] becomes {!exit_nodes} of
    the original graph (falling back to all nodes when none exist, so
    infinite loops still converge). *)

module Make (L : LATTICE) : sig
  type problem = {
    graph : graph;
    direction : direction;
    init : L.t;  (** state at the boundary nodes *)
    transfer : int -> L.t -> L.t;
    refine : (src:int -> dst:int -> L.t -> L.t) option;
        (** Edge-sensitive narrowing applied to the value a node
            propagates along one outgoing (oriented) edge — conditional
            branch refinement.  [None] propagates unchanged. *)
  }

  type solution = {
    input : L.t array;
        (** Fixpoint state on entry to each node (exit for backward). *)
    output : L.t array;  (** [transfer] applied to [input]. *)
    iterations : int;  (** Node visits until the fixpoint — solver cost. *)
  }

  val solve : ?widen_delay:int -> ?max_visits:int -> problem -> solution
  (** [widen_delay] (default 3) is the number of visits before widening
      kicks in at loop heads; [max_visits] (default [1000 * nnodes]) is a
      termination backstop — exceeding it raises [Failure], which a
      correct widening operator makes unreachable. *)
end
