let distance a b =
  if Array.length a <> Array.length b then invalid_arg "Knn.distance";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc :=
      !acc
      +. (abs_float (a.(i) -. b.(i)) /. (1.0 +. abs_float a.(i) +. abs_float b.(i)))
  done;
  !acc

let rank ~reference feats =
  Array.to_list (Array.mapi (fun i f -> (i, distance reference f)) feats)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)

let rank_image ~reference img =
  rank ~reference (Staticfeat.Cache.features img)

let rank_of target ranking =
  let rec loop k = function
    | [] -> None
    | (i, _) :: rest -> if i = target then Some k else loop (k + 1) rest
  in
  loop 1 ranking
