type block_attrs = float array

let block_attributes img fidx =
  let listing = Loader.Image.disassemble img fidx in
  let g = Cfg.Graph.build listing in
  Array.map
    (fun b ->
      let count pred =
        List.fold_left
          (fun acc ins -> if pred ins then acc + 1 else acc)
          0
          (Cfg.Block.instructions b g.Cfg.Graph.listing.Isa.Disasm.instrs)
      in
      [|
        float_of_int (Cfg.Block.instr_count b);
        float_of_int b.Cfg.Block.byte_size /. 8.0;
        float_of_int (count Isa.Instr.is_arith);
        float_of_int (count Isa.Instr.is_call);
        float_of_int (count Isa.Instr.is_load);
        float_of_int (count Isa.Instr.is_store);
        float_of_int (List.length b.Cfg.Block.succs);
        float_of_int (List.length b.Cfg.Block.preds);
      |])
    g.Cfg.Graph.blocks

let attr_distance a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (abs_float (a.(i) -. b.(i)) /. (1.0 +. a.(i) +. b.(i)))
  done;
  !acc

(* Greedy bipartite matching: repeatedly take the globally cheapest
   unmatched pair.  Unmatched leftovers pay a fixed penalty each. *)
let unmatched_penalty = 4.0

let similarity blocks_a blocks_b =
  let na = Array.length blocks_a and nb = Array.length blocks_b in
  if na = 0 || nb = 0 then float_of_int (abs (na - nb)) *. unmatched_penalty
  else begin
    let pairs = ref [] in
    for i = 0 to na - 1 do
      for j = 0 to nb - 1 do
        pairs := (attr_distance blocks_a.(i) blocks_b.(j), i, j) :: !pairs
      done
    done;
    let sorted = List.sort compare !pairs in
    let used_a = Array.make na false and used_b = Array.make nb false in
    let cost = ref 0.0 in
    let matched = ref 0 in
    List.iter
      (fun (d, i, j) ->
        if (not used_a.(i)) && not used_b.(j) then begin
          used_a.(i) <- true;
          used_b.(j) <- true;
          cost := !cost +. d;
          incr matched
        end)
      sorted;
    !cost +. (float_of_int (na + nb - (2 * !matched)) *. unmatched_penalty)
  end

let rank ~reference img =
  let n = Loader.Image.function_count img in
  let sims = Array.make n 0.0 in
  Parallel.Pool.parallel_for n (fun i ->
      sims.(i) <- similarity reference (block_attributes img i));
  List.init n (fun i -> (i, sims.(i)))
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)

let rank_of = Knn.rank_of
